// Campus-fleet scenario: builds a heterogeneous MEC fleet *directly through
// the public API* (no ExperimentConfig) — three device classes with
// different CPUs, radio conditions, and dataset sizes — and trains a global
// model with HELCFL vs Classic FL.
//
// This is the intended embedding path for downstream users: bring your own
// devices, channel, datasets, and strategy; the trainer does the rest.
#include <cstdio>
#include <memory>

#include "core/helcfl_scheduler.h"
#include "data/partition.h"
#include "data/synthetic_cifar.h"
#include "fl/trainer.h"
#include "mec/channel.h"
#include "nn/models.h"
#include "nn/serialize.h"
#include "sched/random_selection.h"
#include "sim/report.h"

using namespace helcfl;

namespace {

/// Three device tiers of a university campus deployment.
struct Tier {
  const char* name;
  double f_max_ghz;
  double gain_sq;      // radio quality (distance to the base station)
  std::size_t count;
};

std::vector<mec::Device> build_campus_fleet(std::span<const std::size_t> samples) {
  const Tier tiers[] = {
      {"flagship phones", 2.0, 3e-7, 12},   // fast CPU, great link
      {"budget phones", 1.0, 1e-7, 24},     // mid everything
      {"smart cameras", 0.45, 4e-8, 24},    // slow CPU, weak link
  };
  std::vector<mec::Device> fleet;
  std::size_t id = 0;
  for (const auto& tier : tiers) {
    for (std::size_t i = 0; i < tier.count; ++i, ++id) {
      mec::Device d;
      d.id = id;
      d.f_min_hz = 0.3e9;
      d.f_max_hz = tier.f_max_ghz * 1e9;
      d.switched_capacitance = 2e-28;
      d.cycles_per_sample = 1e7;
      d.num_samples = samples[id];
      d.tx_power_w = 0.2;
      d.channel_gain_sq = tier.gain_sq;
      fleet.push_back(d);
    }
  }
  return fleet;
}

}  // namespace

int main() {
  constexpr std::size_t kUsers = 60;
  constexpr std::size_t kRounds = 120;

  // Workload: a synthetic 10-class vision task, non-IID across the campus.
  util::Rng rng(31);
  data::SyntheticCifarOptions dataset_options;
  dataset_options.train_samples = 2400;
  dataset_options.test_samples = 600;
  const data::TrainTestSplit split = data::make_synthetic_cifar(dataset_options, rng);

  util::Rng partition_rng = rng.fork(1);
  const data::Partition partition = data::shard_noniid_partition(
      split.train.labels(), kUsers, /*shards_per_user=*/4, partition_rng);

  std::vector<std::size_t> samples;
  for (const auto& slice : partition) samples.push_back(slice.size());
  const std::vector<mec::Device> fleet = build_campus_fleet(samples);
  const mec::Channel channel{2e6, 1e-9};  // the campus base station uplink

  std::printf("campus fleet: %zu devices over 3 tiers, %zu training samples\n\n",
              fleet.size(), split.train.size());

  fl::TrainerOptions options;
  options.max_rounds = kRounds;
  options.eval_every = 10;
  options.client = {.learning_rate = 0.05F, .local_steps = 5, .batch_size = 20,
                    .momentum = 0.5F};
  options.model_size_bits = 4e6;

  auto run = [&](sched::SelectionStrategy& strategy) {
    util::Rng model_rng(32);
    const auto model =
        nn::make_mlp(split.train.spec(), 64, dataset_options.num_classes, model_rng);
    fl::FederatedTrainer trainer(*model, split.train, split.test, partition, fleet,
                                 channel, strategy, options);
    return trainer.run();
  };

  core::HelcflScheduler helcfl({.fraction = 0.1, .eta = 0.9});
  const fl::TrainingHistory helcfl_history = run(helcfl);

  sched::RandomSelection classic(0.1, util::Rng(33));
  const fl::TrainingHistory classic_history = run(classic);

  const std::string labels[] = {"HELCFL", "ClassicFL"};
  const fl::TrainingHistory histories[] = {helcfl_history, classic_history};
  sim::print_accuracy_curves(labels, histories, 6);

  std::printf("\n%-12s %10s %12s %12s %10s\n", "scheme", "best acc", "total delay",
              "total energy", "fairness");
  for (const auto& [label, history] :
       {std::pair{"HELCFL", &helcfl_history}, {"ClassicFL", &classic_history}}) {
    std::printf("%-12s %9.2f%% %12s %11.2fJ %10.3f\n", label,
                history->best_accuracy() * 100.0,
                sim::format_minutes(history->total_delay_s()).c_str(),
                history->total_energy_j(), history->selection_fairness(kUsers));
  }

  // How often did each tier participate under HELCFL's greedy decay?
  const auto counts = helcfl_history.selection_counts(kUsers);
  const std::size_t tier_bounds[] = {12, 36, 60};
  const char* tier_names[] = {"flagship phones", "budget phones", "smart cameras"};
  std::printf("\nHELCFL selections per tier (greedy-decay keeps slow tiers in):\n");
  std::size_t begin = 0;
  for (std::size_t t = 0; t < 3; ++t) {
    std::size_t total = 0;
    for (std::size_t i = begin; i < tier_bounds[t]; ++i) total += counts[i];
    std::printf("  %-16s %5zu selections over %zu devices (%.1f each)\n",
                tier_names[t], total, tier_bounds[t] - begin,
                static_cast<double>(total) / static_cast<double>(tier_bounds[t] - begin));
    begin = tier_bounds[t];
  }
  return 0;
}
