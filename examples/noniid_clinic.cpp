// Non-IID clinic: diagnoses *why* greedy client selection caps accuracy on
// non-IID data (the paper's Section V-A argument) using the partitioning
// tools directly.
//
//  1. Compares class coverage per user under IID, sort-and-shard (the
//     paper's scheme), and Dirichlet partitions.
//  2. Shows which classes the fastest 10/20 devices jointly hold — the data
//     FedCS can ever train on.
//  3. Runs short FedCS vs HELCFL trainings on the same workload to connect
//     coverage to the accuracy ceiling.
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "data/partition.h"
#include "data/synthetic_cifar.h"
#include "sim/fleet.h"
#include "sim/report.h"
#include "sim/simulation.h"

using namespace helcfl;

namespace {

void print_coverage(const char* name, const data::Partition& partition,
                    std::span<const std::int32_t> labels, std::size_t n_classes) {
  const auto coverage = data::classes_per_user(partition, labels, n_classes);
  std::vector<std::size_t> histogram(n_classes + 1, 0);
  for (const auto c : coverage) ++histogram[c];
  const double mean = std::accumulate(coverage.begin(), coverage.end(), 0.0) /
                      static_cast<double>(coverage.size());
  std::printf("  %-14s mean classes/user = %4.1f   distribution:", name, mean);
  for (std::size_t c = 0; c <= n_classes; ++c) {
    if (histogram[c] > 0) std::printf("  %zu classes x%zu", c, histogram[c]);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  constexpr std::size_t kUsers = 100;
  constexpr std::size_t kClasses = 10;

  util::Rng rng(41);
  data::SyntheticCifarOptions dataset_options;
  dataset_options.train_samples = 4000;
  dataset_options.test_samples = 500;
  const data::TrainTestSplit split = data::make_synthetic_cifar(dataset_options, rng);
  const auto labels = split.train.labels();

  std::printf("=== 1. class coverage per user under three partitioners ===\n");
  util::Rng r1 = rng.fork(1);
  const data::Partition iid = data::iid_partition(labels.size(), kUsers, r1);
  print_coverage("IID", iid, labels, kClasses);

  util::Rng r2 = rng.fork(2);
  const data::Partition shard =
      data::shard_noniid_partition(labels, kUsers, /*shards_per_user=*/4, r2);
  print_coverage("shard (paper)", shard, labels, kClasses);

  util::Rng r3 = rng.fork(3);
  const data::Partition dirichlet =
      data::dirichlet_partition(labels, kUsers, kClasses, /*alpha=*/0.3, r3);
  print_coverage("dirichlet 0.3", dirichlet, labels, kClasses);

  // 2. What data can a greedy scheme ever see?  Build the paper fleet and
  // take the fastest users by total delay at f_max.
  std::printf("\n=== 2. classes held by the fastest devices (FedCS's world) ===\n");
  sim::ExperimentConfig config = sim::paper_config();
  std::vector<std::size_t> samples;
  for (const auto& slice : shard) samples.push_back(slice.size());
  util::Rng fleet_rng = rng.fork(4);
  const auto devices = sim::make_fleet(config, samples, fleet_rng);
  const auto users = sched::build_user_info(devices, sim::make_channel(config),
                                            config.trainer.model_size_bits);
  std::vector<std::size_t> order(kUsers);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return users[a].total_delay_max_s() < users[b].total_delay_max_s();
  });
  for (const std::size_t cohort : {std::size_t{10}, std::size_t{20}, std::size_t{50}}) {
    std::vector<bool> seen(kClasses, false);
    std::size_t sample_count = 0;
    for (std::size_t k = 0; k < cohort; ++k) {
      for (const auto i : shard[order[k]]) {
        seen[static_cast<std::size_t>(labels[i])] = true;
        ++sample_count;
      }
    }
    const auto classes =
        static_cast<std::size_t>(std::count(seen.begin(), seen.end(), true));
    // Per-class sample counts of the cohort, to expose the skew.
    std::vector<std::size_t> per_class(kClasses, 0);
    for (std::size_t k = 0; k < cohort; ++k) {
      for (const auto i : shard[order[k]]) {
        ++per_class[static_cast<std::size_t>(labels[i])];
      }
    }
    const auto [min_it, max_it] = std::minmax_element(per_class.begin(), per_class.end());
    std::printf("  fastest %3zu users: %zu/%zu classes, %4zu/%zu samples, "
                "class skew %zu..%zu samples\n",
                cohort, classes, kClasses, sample_count, labels.size(), *min_it,
                *max_it);
  }

  // 3. Connect coverage to accuracy: short FedCS vs HELCFL runs.
  std::printf("\n=== 3. the resulting accuracy ceiling (120 rounds, non-IID) ===\n");
  config.noniid = true;
  config.trainer.max_rounds = 120;
  config.trainer.eval_every = 10;
  config.seed = 41;
  for (const auto scheme : {sim::Scheme::kFedCs, sim::Scheme::kHelcfl}) {
    config.scheme = scheme;
    const sim::ExperimentResult result = sim::run_experiment(config);
    std::printf("  %-8s best accuracy %6.2f%%  (fairness %.3f)\n",
                result.scheme.c_str(), result.history.best_accuracy() * 100.0,
                result.history.selection_fairness(config.n_users));
  }
  std::printf("\nFedCS trains forever on the same fast cohort: a fixed ~10-20%% slice\n"
              "of the data with heavily skewed class proportions (see the skew\n"
              "column above), which caps its global accuracy. HELCFL's decay term\n"
              "rotates slow users in, so every shard eventually contributes.\n");
  return 0;
}
