// Quickstart: run HELCFL against Classic FL on the paper's MEC setup and
// print per-checkpoint accuracy plus the final delay/energy totals.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "sim/report.h"
#include "sim/simulation.h"

int main() {
  using namespace helcfl;

  // The paper's Section VII-A setup, shrunk to a few seconds of runtime:
  // 100 heterogeneous users, C = 0.1, non-IID shards, 120 rounds.
  sim::ExperimentConfig config = sim::paper_config();
  config.noniid = true;
  config.trainer.max_rounds = 120;
  config.trainer.eval_every = 5;
  config.seed = 7;

  std::printf("HELCFL quickstart: Q=%zu users, C=%.2f, %s, %zu rounds\n",
              config.n_users, config.fraction, config.noniid ? "non-IID" : "IID",
              config.trainer.max_rounds);

  config.scheme = sim::Scheme::kHelcfl;
  const sim::ExperimentResult helcfl = sim::run_experiment(config);

  config.scheme = sim::Scheme::kClassicFl;
  const sim::ExperimentResult classic = sim::run_experiment(config);

  const std::string labels[] = {helcfl.scheme, classic.scheme};
  const fl::TrainingHistory histories[] = {helcfl.history, classic.history};
  sim::print_accuracy_curves(labels, histories, /*checkpoints=*/8);

  std::printf("\n%-12s %10s %12s %12s\n", "scheme", "best acc", "total delay",
              "total energy");
  for (const auto& result : {&helcfl, &classic}) {
    std::printf("%-12s %9.2f%% %12s %12s\n", result->scheme.c_str(),
                result->history.best_accuracy() * 100.0,
                sim::format_minutes(result->history.total_delay_s()).c_str(),
                sim::format_joules(result->history.total_energy_j()).c_str());
  }
  std::printf("\nmodel parameters: %zu (uploaded as %.1f Mb per round per user)\n",
              helcfl.model_parameters, 4e6 / 1e6);
  return 0;
}
