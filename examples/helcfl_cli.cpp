// General-purpose experiment driver: every knob of ExperimentConfig on the
// command line, summary on stdout, optional per-round CSV.
//
//   helcfl_cli [--scheme=helcfl|helcfl_nodvfs|classic|fedcs|fedl|sl|oort]
//              [--setting=iid|noniid] [--rounds=N] [--users=N] [--seed=N]
//              [--fraction=C] [--eta=E] [--model=mlp|logistic|small_cnn|mini_squeezenet]
//              [--lr=F] [--local-steps=N] [--batch-size=N]
//              [--deadline-min=F] [--target-acc=F]
//              [--battery-j=F] [--fading-sigma-db=F]
//              [--compress=none|quantization|sparsification]
//              [--quant-bits=N] [--keep-ratio=F]
//              [--crash-rate=F] [--upload-fail-rate=F]
//              [--straggler-rate=F] [--straggler-slowdown=F]
//              [--churn-leave=F] [--churn-rejoin=F]
//              [--max-retries=N] [--retry-backoff-s=F]
//              [--straggler-cutoff-s=F] [--min-clients=N]
//              [--mode=sync|async] [--buffer-k=N]
//              [--staleness-beta=F] [--staleness-bound=N]
//              [--threads=N] [--kernel-threads=N] [--csv=path] [--quiet]
//              [--trace-out=path] [--trace-level=round|decision|debug]
//              [--profile] [--chrome-trace=path]
//              [--checkpoint-every=N] [--checkpoint-path=path]
//              [--resume-from=path]
//
// --threads=0 (the default) uses every hardware thread; --threads=1 forces
// the sequential reference path.  Results are bitwise identical either way
// (the parallel engine's determinism guarantee, DESIGN.md §7) — including
// with faults enabled, whose draws are forked per (round, user).
//
// --kernel-threads=N shards large GEMMs over N dedicated kernel workers
// (default 1; 0 = every hardware thread); orthogonal to --threads and
// likewise bitwise invariant (docs/KERNELS.md).  Prefer --threads on
// many-client workloads and --kernel-threads when a single large model
// dominates.
//
// Observability (docs/OBSERVABILITY.md): --trace-out writes one JSON event
// per line (selection decisions, DVFS assignments, TDMA spans, faults,
// round summaries) at --trace-level (default "decision"); --profile prints
// end-of-run phase-timing and counter tables; --chrome-trace writes the
// phase spans as a chrome://tracing JSON.  Tracing never perturbs the run:
// the model trajectory is bitwise identical with or without these flags.
//
// Round engine (docs/ASYNC.md): --mode=async replaces the round barrier
// with event-driven FedBuff aggregation — the server integrates the first
// --buffer-k arrivals (0 = the first cohort's size), each discounted by
// 1/(1+staleness)^beta (--staleness-beta), dropping arrivals staler than
// --staleness-bound server steps (0 = keep every arrival).  --mode=sync
// (the default) is bitwise identical to the classic barrier engine.
//
// Checkpoint/resume (docs/CHECKPOINT.md): --checkpoint-every=N saves a
// snapshot every N completed rounds to --checkpoint-path (default
// "helcfl.ckpt"; "{round}" in the path expands to the completed-round
// count).  --resume-from continues an interrupted run; the resumed
// trajectory is bitwise identical to one that never stopped.
//
// Two-process scheduler sessions (docs/SERVICE.md): the `serve` and
// `connect` subcommands put the FLCC scheduler service behind a real
// socket so two processes on one machine (or LAN) run a live session:
//
//   helcfl_cli serve   [--listen=tcp:127.0.0.1:7000 | --listen=unix:/path]
//                      [--users=N] [--seed=N] [--fraction=C] [--eta=E]
//                      [--ingress-threads=N] [--lease-ticks=N]
//                      [--max-decisions=N] [--snapshot-every=N]
//                      [--snapshot-path=path]
//   helcfl_cli connect [--connect=tcp:127.0.0.1:7000 | --connect=unix:/path]
//                      [--users=N] [--seed=N] [--rounds=N]
//
// The fleet is derived deterministically from (--users, --seed), so a
// connect with the same values as the serve side impersonates exactly the
// devices the service was constructed for.  `serve` runs until SIGINT or
// --max-decisions; `connect` drives N report-then-decide rounds as every
// device plus the controller and prints each decision.
//
// Examples:
//   helcfl_cli --scheme=helcfl --setting=noniid --rounds=300 --csv=run.csv
//   helcfl_cli --scheme=classic --battery-j=20 --rounds=2000
//   helcfl_cli serve --listen=unix:/tmp/helcfl.sock --users=32 &
//   helcfl_cli connect --connect=unix:/tmp/helcfl.sock --users=32 --rounds=5
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <optional>
#include <thread>

#include "sched/scheduler.h"
#include "sim/config.h"
#include "sim/fleet.h"
#include "sim/report.h"
#include "sim/simulation.h"
#include "svc/client.h"
#include "svc/listener.h"
#include "svc/service.h"
#include "svc/transport.h"
#include "tensor/ops.h"
#include "util/args.h"
#include "util/log.h"
#include "util/rng.h"

using namespace helcfl;

namespace {

std::atomic<bool> g_interrupted{false};
void handle_sigint(int) { g_interrupted.store(true); }

/// Both sides of a session derive the fleet from (--users, --seed) alone,
/// so the connect side impersonates exactly the devices the serve side's
/// service was constructed for.
std::vector<sched::UserInfo> session_fleet(std::size_t users,
                                           std::uint64_t seed) {
  sim::ExperimentConfig config = sim::paper_config();
  config.n_users = users;
  util::Rng rng(seed);
  const std::vector<std::size_t> samples(users, 40);
  return sched::build_user_info(sim::make_fleet(config, samples, rng),
                                sim::make_channel(config), 4e6);
}

void warn_unused(const util::ArgParser& args) {
  for (const auto& name : args.unused()) {
    std::fprintf(stderr, "warning: unknown option --%s\n", name.c_str());
  }
}

int run_serve(const util::ArgParser& args) {
  const auto users = static_cast<std::size_t>(args.get_int_or("users", 64));
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 7));
  svc::ServiceOptions options;
  options.fraction = args.get_double_or("fraction", 0.25);
  options.eta = args.get_double_or("eta", 0.9);
  // Ticks are milliseconds of server uptime (ServerOptions default).
  options.lease_ticks =
      static_cast<std::uint64_t>(args.get_int_or("lease-ticks", 10'000));
  options.queue_capacity = static_cast<std::size_t>(
      args.get_int_or("queue-capacity", static_cast<std::int64_t>(4 * users)));
  options.snapshot_every =
      static_cast<std::uint64_t>(args.get_int_or("snapshot-every", 0));
  options.snapshot_path = args.get_or("snapshot-path", "");
  const std::int64_t max_decisions = args.get_int_or("max-decisions", 0);
  const svc::Endpoint endpoint =
      svc::Endpoint::parse(args.get_or("listen", "tcp:127.0.0.1:7000"));

  svc::SchedulerService service(session_fleet(users, seed), options);
  svc::ServerOptions server_options;
  server_options.ingress_threads =
      static_cast<std::size_t>(args.get_int_or("ingress-threads", 1));
  svc::SocketServer server(service, endpoint, server_options);
  warn_unused(args);
  server.start();
  std::printf("helcfl_cli serve: %zu devices on %s (C=%.2f, lease %llu ms, "
              "%zu ingress threads)\n",
              users, server.endpoint().to_string().c_str(), options.fraction,
              static_cast<unsigned long long>(options.lease_ticks),
              server_options.ingress_threads);
  std::signal(SIGINT, handle_sigint);

  while (!g_interrupted.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (max_decisions > 0 &&
        server.stats().decisions_issued >=
            static_cast<std::uint64_t>(max_decisions)) {
      break;
    }
  }
  server.stop();
  const svc::ServerStats stats = server.stats();
  std::printf("helcfl_cli serve: done — %llu decisions, %llu conns accepted, "
              "%llu ingress frames, %llu shed, %llu stalled\n",
              static_cast<unsigned long long>(stats.decisions_issued),
              static_cast<unsigned long long>(stats.conns_accepted),
              static_cast<unsigned long long>(stats.ingress_frames),
              static_cast<unsigned long long>(stats.ingress_shed),
              static_cast<unsigned long long>(stats.conns_stalled));
  return 0;
}

int run_connect(const util::ArgParser& args) {
  const auto users = static_cast<std::size_t>(args.get_int_or("users", 64));
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 7));
  const auto rounds =
      static_cast<std::uint64_t>(args.get_int_or("rounds", 10));
  const svc::Endpoint endpoint =
      svc::Endpoint::parse(args.get_or("connect", "tcp:127.0.0.1:7000"));
  warn_unused(args);

  const auto fleet = session_fleet(users, seed);
  svc::RetryOptions retry;
  retry.base_delay_ticks = 64;
  retry.max_delay_ticks = 1024;
  retry.max_attempts = 64;
  svc::ServiceClient client(retry, util::Rng(seed).fork(100));
  std::optional<svc::ClientChannel> channel;
  std::uint64_t tick = 0;

  auto pump = [&] {
    if (!channel.has_value() || !channel->connected()) {
      channel.emplace(endpoint);  // throws if the server is unreachable
    }
    for (const auto& frame : client.poll(tick)) {
      if (!channel->send_frame(frame)) break;  // retry re-sends after reconnect
    }
    std::vector<svc::Frame> inbox;
    channel->poll_frames(inbox, /*timeout_ms=*/1);
    for (const svc::Frame& frame : inbox) {
      client.deliver(svc::encode_frame(frame));
    }
    ++tick;
  };

  for (std::uint64_t round = 0; round < rounds; ++round) {
    for (std::size_t d = 0; d < fleet.size(); ++d) {
      svc::DeviceReport report;
      report.device_id = d;
      report.report_seq = round + 1;
      report.t_cal_max_s = fleet[d].t_cal_max_s;
      report.t_com_s = fleet[d].t_com_s;
      client.send_report(report, tick);
    }
    const std::uint64_t report_deadline = tick + 200'000;
    while (client.pending_reports() > 0 && tick < report_deadline) pump();
    if (client.pending_reports() > 0) {
      std::fprintf(stderr, "error: report barrier stalled at round %llu\n",
                   static_cast<unsigned long long>(round));
      return 1;
    }
    client.request_decision(round, tick);
    const std::uint64_t decide_deadline = tick + 200'000;
    std::optional<svc::DecisionResponse> decision;
    while (!(decision = client.take_decision()).has_value() &&
           tick < decide_deadline) {
      pump();
    }
    if (!decision.has_value()) {
      std::fprintf(stderr, "error: decision stalled at round %llu\n",
                   static_cast<unsigned long long>(round));
      return 1;
    }
    std::printf("round %llu: %zu selected%s —",
                static_cast<unsigned long long>(decision->round),
                decision->selected.size(),
                decision->degraded ? " (degraded)" : "");
    const std::size_t shown = std::min<std::size_t>(decision->selected.size(), 8);
    for (std::size_t i = 0; i < shown; ++i) {
      std::printf(" %zu", decision->selected[i]);
    }
    if (shown < decision->selected.size()) std::printf(" ...");
    std::printf("\n");
  }
  std::printf("helcfl_cli connect: %llu rounds complete, %llu retries\n",
              static_cast<unsigned long long>(rounds),
              static_cast<unsigned long long>(client.retries()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  if (!args.positional().empty()) {
    const std::string& command = args.positional().front();
    try {
      if (command == "serve") return run_serve(args);
      if (command == "connect") return run_connect(args);
      std::fprintf(stderr, "error: unknown subcommand '%s'\n", command.c_str());
      return 1;
    } catch (const std::exception& error) {
      std::fprintf(stderr, "error: %s\n", error.what());
      return 1;
    }
  }
  try {
    sim::ExperimentConfig config = sim::paper_config();
    config.scheme = sim::parse_scheme(args.get_or("scheme", "helcfl"));
    const std::string setting = args.get_or("setting", "noniid");
    if (setting != "iid" && setting != "noniid") {
      throw std::invalid_argument("--setting must be iid or noniid");
    }
    config.noniid = setting == "noniid";
    config.trainer.max_rounds =
        static_cast<std::size_t>(args.get_int_or("rounds", 300));
    config.n_users = static_cast<std::size_t>(args.get_int_or("users", 100));
    config.seed = static_cast<std::uint64_t>(args.get_int_or("seed", 7));
    config.fraction = args.get_double_or("fraction", config.fraction);
    config.eta = args.get_double_or("eta", config.eta);
    config.model = nn::parse_model_kind(args.get_or("model", "mlp"));
    config.trainer.client.learning_rate = static_cast<float>(
        args.get_double_or("lr", config.trainer.client.learning_rate));
    config.trainer.client.local_steps = static_cast<std::size_t>(args.get_int_or(
        "local-steps", static_cast<std::int64_t>(config.trainer.client.local_steps)));
    config.trainer.client.batch_size = static_cast<std::size_t>(args.get_int_or(
        "batch-size", static_cast<std::int64_t>(config.trainer.client.batch_size)));
    const double deadline_min = args.get_double_or("deadline-min", 0.0);
    if (deadline_min > 0.0) config.trainer.deadline_s = deadline_min * 60.0;
    config.trainer.target_accuracy = args.get_double_or("target-acc", -1.0);
    config.trainer.battery_capacity_j = args.get_double_or("battery-j", 0.0);
    const double sigma_db = args.get_double_or("fading-sigma-db", 0.0);
    if (sigma_db > 0.0) {
      config.trainer.fading = {.enabled = true, .rho = 0.8, .sigma_db = sigma_db};
    }
    config.trainer.compression.kind =
        nn::parse_compression_kind(args.get_or("compress", "none"));
    config.trainer.compression.quantization_bits =
        static_cast<unsigned>(args.get_int_or("quant-bits", 8));
    config.trainer.compression.sparsify_keep_ratio =
        args.get_double_or("keep-ratio", 0.1);
    config.trainer.eval_every =
        static_cast<std::size_t>(args.get_int_or("eval-every", 5));
    // Failure-aware execution (DESIGN.md §8).  Any non-zero fault rate
    // switches the injector on; the robustness policies work regardless.
    config.trainer.faults.crash_rate = args.get_double_or("crash-rate", 0.0);
    config.trainer.faults.upload_failure_rate =
        args.get_double_or("upload-fail-rate", 0.0);
    config.trainer.faults.straggler_rate = args.get_double_or("straggler-rate", 0.0);
    config.trainer.faults.straggler_slowdown =
        args.get_double_or("straggler-slowdown", 4.0);
    config.trainer.faults.leave_rate = args.get_double_or("churn-leave", 0.0);
    config.trainer.faults.rejoin_rate = args.get_double_or("churn-rejoin", 0.25);
    config.trainer.faults.enabled = config.trainer.faults.any_fault_possible();
    config.trainer.max_upload_retries =
        static_cast<std::size_t>(args.get_int_or("max-retries", 0));
    config.trainer.retry_backoff_s = args.get_double_or("retry-backoff-s", 0.0);
    const double cutoff_s = args.get_double_or("straggler-cutoff-s", 0.0);
    if (cutoff_s > 0.0) config.trainer.straggler_cutoff_s = cutoff_s;
    config.trainer.min_clients =
        static_cast<std::size_t>(args.get_int_or("min-clients", 1));
    // Round engine (docs/ASYNC.md): --mode=async drops the round barrier
    // for FedBuff-style buffered aggregation.
    config.async.mode = fl::parse_async_mode(args.get_or("mode", "sync"));
    config.async.buffer_k =
        static_cast<std::size_t>(args.get_int_or("buffer-k", 0));
    config.async.staleness_beta = args.get_double_or("staleness-beta", 0.5);
    config.async.staleness_bound =
        static_cast<std::size_t>(args.get_int_or("staleness-bound", 0));
    const std::int64_t threads = args.get_int_or("threads", 0);
    if (threads < 0) throw std::invalid_argument("--threads must be >= 0");
    config.trainer.num_threads = static_cast<std::size_t>(threads);
    const std::int64_t kernel_threads = args.get_int_or("kernel-threads", 1);
    if (kernel_threads < 0) {
      throw std::invalid_argument("--kernel-threads must be >= 0");
    }
    tensor::set_kernel_threads(static_cast<std::size_t>(kernel_threads));
    config.trainer.checkpoint_every =
        static_cast<std::size_t>(args.get_int_or("checkpoint-every", 0));
    config.trainer.checkpoint_path = args.get_or("checkpoint-path", "");
    if (config.trainer.checkpoint_every > 0 && config.trainer.checkpoint_path.empty()) {
      config.trainer.checkpoint_path = "helcfl.ckpt";
    }
    config.trainer.resume_from = args.get_or("resume-from", "");
    const std::string csv_path = args.get_or("csv", "");
    if (args.get_bool_or("quiet", false)) util::set_log_level(util::LogLevel::kWarn);

    sim::Observability observability(
        args.get_or("trace-out", ""), args.get_or("trace-level", "decision"),
        args.get_bool_or("profile", false), args.get_or("chrome-trace", ""));
    config.trainer.obs = observability.instruments();

    for (const auto& name : args.unused()) {
      std::fprintf(stderr, "warning: unknown option --%s\n", name.c_str());
    }

    const sim::ExperimentResult result = sim::run_experiment(config);

    std::printf("scheme          %s\n", result.scheme.c_str());
    std::printf("setting         %s, Q=%zu, C=%.2f, seed=%llu\n",
                config.noniid ? "non-IID" : "IID", config.n_users, config.fraction,
                static_cast<unsigned long long>(config.seed));
    std::printf("rounds run      %zu\n", result.history.size());
    std::printf("best accuracy   %s\n",
                sim::format_percent(result.history.best_accuracy()).c_str());
    std::printf("total delay     %s\n",
                sim::format_minutes(result.history.total_delay_s()).c_str());
    std::printf("total energy    %s\n",
                sim::format_joules(result.history.total_energy_j()).c_str());
    std::printf("fairness        %.3f\n",
                result.history.selection_fairness(config.n_users));
    if (config.trainer.battery_capacity_j > 0.0 && !result.history.empty()) {
      std::printf("fleet alive     %zu / %zu devices at the end\n",
                  result.history.back().alive_users, config.n_users);
    }
    if (config.trainer.faults.enabled) {
      std::printf("failed rounds   %zu / %zu (quorum < %zu survivors)\n",
                  result.history.failed_round_count(), result.history.size(),
                  config.trainer.min_clients);
      std::printf("crashes         %zu   upload failures %zu   dropped late %zu\n",
                  result.history.total_crashes(),
                  result.history.total_upload_failures(),
                  result.history.total_dropped_late());
      std::printf("retries         %zu\n", result.history.total_retries());
      std::printf("wasted energy   %s of %s\n",
                  sim::format_joules(result.history.total_wasted_energy_j()).c_str(),
                  sim::format_joules(result.history.total_energy_j()).c_str());
    }
    for (const double target : {0.5, 0.58, 0.65}) {
      std::printf("time to %2.0f%%     %s\n", target * 100.0,
                  sim::format_minutes_or_x(result.history.time_to_accuracy(target))
                      .c_str());
    }
    if (!csv_path.empty()) {
      sim::write_history_csv(csv_path, result.history);
      std::printf("per-round CSV   %s\n", csv_path.c_str());
    }
    observability.finish();
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
