// Energy audit: where does the energy of an FL training run go, and what
// exactly does HELCFL's Algorithm 3 save?
//
// Runs HELCFL with and without DVFS on the paper's setup and breaks the
// energy down per round and per component (compute vs upload), then audits
// one round in detail: each selected user's frequency, slack, and energy.
#include <cstdio>

#include "core/dvfs.h"
#include "core/greedy_decay_selection.h"
#include "mec/cost_model.h"
#include "sched/scheduler.h"
#include "sim/fleet.h"
#include "sim/report.h"
#include "sim/simulation.h"

using namespace helcfl;

int main() {
  sim::ExperimentConfig config = sim::paper_config();
  config.noniid = true;
  config.trainer.max_rounds = 100;
  config.trainer.eval_every = 10;
  config.seed = 11;

  std::printf("energy audit: Q=%zu users, C=%.2f, %zu rounds, non-IID\n\n",
              config.n_users, config.fraction, config.trainer.max_rounds);

  config.scheme = sim::Scheme::kHelcfl;
  const sim::ExperimentResult with_dvfs = sim::run_experiment(config);
  config.scheme = sim::Scheme::kHelcflNoDvfs;
  const sim::ExperimentResult without_dvfs = sim::run_experiment(config);

  std::printf("%-16s %14s %14s %12s\n", "", "with DVFS", "without DVFS", "saved");
  std::printf("%-16s %13.2fJ %13.2fJ %11.2f%%\n", "total energy",
              with_dvfs.history.total_energy_j(), without_dvfs.history.total_energy_j(),
              (1.0 - with_dvfs.history.total_energy_j() /
                         without_dvfs.history.total_energy_j()) * 100.0);
  std::printf("%-16s %14s %14s %12s\n", "total delay",
              sim::format_minutes(with_dvfs.history.total_delay_s()).c_str(),
              sim::format_minutes(without_dvfs.history.total_delay_s()).c_str(),
              "0.00% (invariant)");
  std::printf("%-16s %13.2f%% %13.2f%% %12s\n", "best accuracy",
              with_dvfs.history.best_accuracy() * 100.0,
              without_dvfs.history.best_accuracy() * 100.0, "identical");

  // Energy trajectory at a few checkpoints.
  std::printf("\ncumulative energy by round:\n%-8s %14s %14s %10s\n", "round",
              "with DVFS", "without", "saved");
  for (const std::size_t checkpoint : {std::size_t{19}, std::size_t{39}, std::size_t{59},
                                       std::size_t{79}, std::size_t{99}}) {
    const auto& a = with_dvfs.history.rounds()[checkpoint];
    const auto& b = without_dvfs.history.rounds()[checkpoint];
    std::printf("%-8zu %13.2fJ %13.2fJ %9.2f%%\n", checkpoint + 1, a.cum_energy_j,
                b.cum_energy_j, (1.0 - a.cum_energy_j / b.cum_energy_j) * 100.0);
  }

  // Single-round anatomy: rebuild the fleet the simulation used and audit
  // the frequency plan of one mid-training round.
  const util::Rng master(config.seed);
  util::Rng fleet_rng = master.fork(3);
  std::vector<std::size_t> samples(config.n_users, 40);
  const auto devices = sim::make_fleet(config, samples, fleet_rng);
  const auto channel = sim::make_channel(config);
  const auto users =
      sched::build_user_info(devices, channel, config.trainer.model_size_bits);

  core::GreedyDecaySelector selector(config.fraction, config.eta);
  std::vector<std::size_t> selected;
  for (int round = 0; round < 25; ++round) selected = selector.select({users});
  const core::FrequencyPlan plan = core::determine_frequencies({users}, selected);

  std::printf("\nround-25 frequency plan (upload order):\n");
  std::printf("%-6s %8s %9s %9s %12s %12s\n", "user", "f_max", "f_dvfs", "slowdown",
              "E compute", "E upload");
  for (const auto& a : plan.assignments) {
    const auto& device = users[a.user].device;
    std::printf("%-6zu %6.2fGHz %6.2fGHz %8.2fx %11.4fJ %11.4fJ\n", a.user,
                device.f_max_hz / 1e9, a.frequency_hz / 1e9,
                device.f_max_hz / a.frequency_hz,
                mec::compute_energy_j(device, a.frequency_hz),
                mec::upload_energy_j(device, channel, config.trainer.model_size_bits));
  }
  std::printf("\nupload energy is untouched by DVFS (Eq. 8 depends only on the\n"
              "channel); all savings come from the f^2 term of Eq. (5).\n");
  return 0;
}
