// Micro-benchmarks (M1, DESIGN.md) of the FLCC-side scheduling path: the
// per-round cost of Algorithm 2, Algorithm 3, the TDMA solver, the FedCS
// greedy, and FedAvg aggregation.  These run on the controller every round,
// so they must stay far below the simulated round times (seconds).
#include <benchmark/benchmark.h>

#include "bench_json.h"

#include "core/dvfs.h"
#include "core/greedy_decay_selection.h"
#include "core/helcfl_scheduler.h"
#include "fl/server.h"
#include "mec/tdma.h"
#include "sched/fedcs.h"
#include "sched/scheduler.h"
#include "sim/config.h"
#include "sim/fleet.h"
#include "util/rng.h"

namespace {

using namespace helcfl;

std::vector<sched::UserInfo> make_users(std::size_t q) {
  sim::ExperimentConfig config = sim::paper_config();
  config.n_users = q;
  util::Rng rng(1);
  const std::vector<std::size_t> samples(q, 40);
  const auto devices = sim::make_fleet(config, samples, rng);
  return sched::build_user_info(devices, sim::make_channel(config), 4e6);
}

void BM_GreedyDecaySelect(benchmark::State& state) {
  const auto users = make_users(static_cast<std::size_t>(state.range(0)));
  core::GreedyDecaySelector selector(0.1, 0.9);
  std::size_t picked = 0;
  for (auto _ : state) {
    auto selected = selector.select({users});
    picked = selected.size();
    benchmark::DoNotOptimize(selected.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(picked));
}
BENCHMARK(BM_GreedyDecaySelect)->Arg(100)->Arg(1000)->Arg(10000);

void BM_Algorithm3Dvfs(benchmark::State& state) {
  const auto users = make_users(static_cast<std::size_t>(state.range(0)));
  std::vector<std::size_t> selected(users.size() / 10);
  for (std::size_t i = 0; i < selected.size(); ++i) selected[i] = i * 10;
  for (auto _ : state) {
    core::FrequencyPlan plan = core::determine_frequencies({users}, selected);
    benchmark::DoNotOptimize(plan.round_delay_s);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(selected.size()));
}
BENCHMARK(BM_Algorithm3Dvfs)->Arg(100)->Arg(1000);

void BM_HelcflFullDecision(benchmark::State& state) {
  const auto users = make_users(static_cast<std::size_t>(state.range(0)));
  core::HelcflScheduler scheduler({.fraction = 0.1, .eta = 0.9});
  std::size_t round = 0;
  std::size_t picked = 0;
  for (auto _ : state) {
    sched::Decision d = scheduler.decide({users}, round++);
    picked = d.selected.size();
    benchmark::DoNotOptimize(d.selected.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(picked));
}
BENCHMARK(BM_HelcflFullDecision)->Arg(100)->Arg(1000);

void BM_TdmaSchedule(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  std::vector<double> compute(n);
  std::vector<double> upload(n);
  for (std::size_t i = 0; i < n; ++i) {
    compute[i] = rng.uniform(0.1, 3.0);
    upload[i] = rng.uniform(0.1, 1.0);
  }
  for (auto _ : state) {
    mec::TdmaSchedule schedule = mec::schedule_uploads(compute, upload);
    benchmark::DoNotOptimize(schedule.round_delay_s);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TdmaSchedule)->Arg(10)->Arg(100)->Arg(1000);

void BM_FedCsDecision(benchmark::State& state) {
  const auto users = make_users(static_cast<std::size_t>(state.range(0)));
  sched::FedCsSelection strategy(/*deadline_s=*/8.0);
  std::size_t picked = 0;
  for (auto _ : state) {
    sched::Decision d = strategy.decide({users}, 0);
    picked = d.selected.size();
    benchmark::DoNotOptimize(d.selected.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(picked));
}
BENCHMARK(BM_FedCsDecision)->Arg(100)->Arg(1000);

void BM_FedAvg(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  std::vector<std::vector<float>> weights(10, std::vector<float>(dim));
  for (auto& w : weights) {
    for (auto& v : w) v = static_cast<float>(rng.normal());
  }
  std::vector<fl::WeightedModel> uploads;
  for (auto& w : weights) uploads.push_back({w, 40});
  for (auto _ : state) {
    std::vector<float> avg = fl::fedavg(uploads);
    benchmark::DoNotOptimize(avg.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dim * 10));
}
BENCHMARK(BM_FedAvg)->Arg(13002)->Arg(1250000);  // our MLP / SqueezeNet-scale

}  // namespace

HELCFL_BENCH_JSON_MAIN("BENCH_micro_sched.json")
