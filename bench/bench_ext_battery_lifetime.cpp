// Extension experiment E6 (DESIGN.md): fleet lifetime under a per-device
// energy budget.
//
// The paper motivates energy optimization with battery exhaustion and
// device shutdown (Section I) but never closes the loop.  This bench does:
// every device gets the same battery budget; depleted devices leave the
// fleet; training ends when nobody is left.  Compared across HELCFL,
// HELCFL-without-DVFS, and Classic FL: rounds survived, accuracy reached
// before the fleet dies, and the survivor curve.
#include "bench_common.h"
#include "util/csv.h"

int main(int argc, char** argv) {
  using namespace helcfl;
  sim::Observability observability = bench::parse_observability(argc, argv);
  constexpr double kBudgetJ = 20.0;  // a few dozen participations per device

  util::CsvWriter csv(bench::csv_path("ext_battery_lifetime.csv"),
                      {"scheme", "round", "alive", "cum_energy_j", "accuracy"});

  std::printf("=== E6: fleet lifetime under a %.0f J per-device budget (non-IID) ===\n\n",
              kBudgetJ);
  std::printf("%-16s %8s %12s %12s %14s\n", "scheme", "rounds", "best acc",
              "first death", "fleet dead at");

  struct Arm {
    sim::Scheme scheme;
  };
  for (const auto scheme : {sim::Scheme::kHelcfl, sim::Scheme::kHelcflNoDvfs,
                            sim::Scheme::kClassicFl}) {
    sim::ExperimentConfig config = bench::evaluation_config(/*noniid=*/true);
    config.scheme = scheme;
    config.trainer.max_rounds = 3000;  // run until the batteries decide
    config.trainer.eval_every = 10;
    config.trainer.battery_capacity_j = kBudgetJ;
    config.trainer.obs = observability.instruments();
    const sim::ExperimentResult result = sim::run_experiment(config);

    const auto first_death =
        result.history.round_of_first_depletion(config.n_users);
    std::string fleet_dead = "-";
    if (!result.history.empty() && result.history.back().alive_users == 0) {
      fleet_dead = std::to_string(result.history.back().round + 1);
    }
    std::printf("%-16s %8zu %11.2f%% %12s %14s\n", result.scheme.c_str(),
                result.history.size(), result.history.best_accuracy() * 100.0,
                first_death ? std::to_string(*first_death).c_str() : "-",
                fleet_dead.c_str());

    for (const auto& r : result.history.rounds()) {
      if (r.round % 10 == 0 || r.alive_users == 0) {
        csv.write_row({result.scheme, util::CsvWriter::field(r.round),
                       util::CsvWriter::field(r.alive_users),
                       util::CsvWriter::field(r.cum_energy_j),
                       r.evaluated ? util::CsvWriter::field(r.test_accuracy) : ""});
      }
    }
  }

  std::printf("\nAlgorithm 3 stretches compute into TDMA slack, so each round\n"
              "withdraws less from every battery: the same budget funds more\n"
              "rounds and a higher final accuracy.\n");
  std::printf("rows written to bench_results/ext_battery_lifetime.csv\n");
  observability.finish();
  return 0;
}
