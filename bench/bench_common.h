// Shared helpers for the reproduction benches.
#pragma once

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "sim/report.h"
#include "sim/simulation.h"
#include "util/args.h"

namespace helcfl::bench {

/// The evaluation setup of the paper's Section VII-A, with our documented
/// substitutions (DESIGN.md): Q = 100 users, C = 0.1, J = 300 rounds,
/// synthetic CIFAR-10, MLP, C_model = 4 Mb.
inline sim::ExperimentConfig evaluation_config(bool noniid, std::uint64_t seed = 7) {
  sim::ExperimentConfig config = sim::paper_config();
  config.noniid = noniid;
  config.trainer.max_rounds = 300;
  config.trainer.eval_every = 5;
  // All hardware threads: the parallel round engine is bitwise
  // deterministic, so sweep CSVs are unchanged by the worker count.
  config.trainer.num_threads = 0;
  config.sl_eval_every = 25;
  config.sl_eval_users = 10;
  config.seed = seed;
  return config;
}

/// Ensures ./bench_results exists and returns the CSV path inside it.
inline std::string csv_path(const std::string& name) {
  std::filesystem::create_directories("bench_results");
  return "bench_results/" + name;
}

/// Parses the shared observability flags — --trace-out, --trace-level,
/// --profile, --chrome-trace (docs/OBSERVABILITY.md) — every bench
/// accepts.  Attach the sinks to each run with
/// `config.trainer.obs = observability.instruments()` (or pass them to
/// run_scheme); when a bench runs several experiments, all of their events
/// land in one trace, separated by `run_start` events.  Call `finish()` on
/// the returned object once after the last run; with no flags given
/// everything is inert.
inline sim::Observability parse_observability(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  return sim::Observability(
      args.get_or("trace-out", ""), args.get_or("trace-level", "decision"),
      args.get_bool_or("profile", false), args.get_or("chrome-trace", ""));
}

/// Shared checkpoint/resume flags (docs/CHECKPOINT.md).  Benches run
/// several schemes, so the flags carry path *prefixes*: each scheme's
/// checkpoint lands at `<prefix>_<scheme>.ckpt`, and a scheme resumes only
/// when its own file already exists (a sweep interrupted halfway restarts
/// the unfinished scheme from its last cadence point and re-skips the
/// finished ones instantly via their final checkpoints).
struct CheckpointFlags {
  std::size_t every = 0;       ///< --checkpoint-every (0 = off)
  std::string path_prefix;     ///< --checkpoint-prefix
  std::string resume_prefix;   ///< --resume-prefix
};

/// Parses --checkpoint-every, --checkpoint-prefix (default
/// "bench_results/ckpt" when a cadence is given), and --resume-prefix.
inline CheckpointFlags parse_checkpoint(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  CheckpointFlags flags;
  flags.every =
      static_cast<std::size_t>(args.get_int_or("checkpoint-every", 0));
  flags.path_prefix = args.get_or("checkpoint-prefix", "");
  if (flags.every > 0 && flags.path_prefix.empty()) {
    flags.path_prefix = csv_path("ckpt");
  }
  flags.resume_prefix = args.get_or("resume-prefix", "");
  return flags;
}

/// The checkpoint file `scheme` uses under `prefix` (see CheckpointFlags).
inline std::string scheme_checkpoint_path(const std::string& prefix,
                                          sim::Scheme scheme) {
  return prefix + "_" + sim::scheme_name(scheme) + ".ckpt";
}

/// Runs one scheme of the evaluation setup and logs progress.
/// `instruments` (optional) attaches the bench's observability sinks;
/// `checkpoint` (optional) enables per-scheme snapshot/resume.
inline sim::ExperimentResult run_scheme(sim::ExperimentConfig config,
                                        sim::Scheme scheme,
                                        const obs::Instruments& instruments = {},
                                        const CheckpointFlags& checkpoint = {}) {
  config.scheme = scheme;
  config.trainer.obs = instruments;
  if (checkpoint.every > 0 && scheme != sim::Scheme::kSl) {
    config.trainer.checkpoint_every = checkpoint.every;
    config.trainer.checkpoint_path =
        scheme_checkpoint_path(checkpoint.path_prefix, scheme);
  }
  if (!checkpoint.resume_prefix.empty() && scheme != sim::Scheme::kSl) {
    const std::string resume =
        scheme_checkpoint_path(checkpoint.resume_prefix, scheme);
    if (std::filesystem::exists(resume)) config.trainer.resume_from = resume;
  }
  std::printf("  running %-14s ...", sim::scheme_name(scheme).c_str());
  std::fflush(stdout);
  sim::ExperimentResult result = sim::run_experiment(config);
  std::printf(" best=%.2f%%  delay=%s  energy=%s\n",
              result.history.best_accuracy() * 100.0,
              sim::format_minutes(result.history.total_delay_s()).c_str(),
              sim::format_joules(result.history.total_energy_j()).c_str());
  return result;
}

}  // namespace helcfl::bench
