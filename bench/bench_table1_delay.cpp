// Reproduces Table I of the paper: training delay to obtain desired
// accuracy, for HELCFL and the four baselines, in both data settings.
//
// The paper's absolute targets (60/70/80% IID, 40/50/60% non-IID) belong to
// SqueezeNet-on-CIFAR-10; our synthetic task plateaus near 72%, so the
// targets are rescaled to probe the same three regimes (easy / mid / near-
// plateau) — see EXPERIMENTS.md.  "X" = the scheme never reaches the target
// within 300 rounds, exactly as in the paper.
#include "bench_common.h"
#include "util/csv.h"

int main(int argc, char** argv) {
  using namespace helcfl;
  sim::Observability observability = bench::parse_observability(argc, argv);
  const bench::CheckpointFlags checkpoint = bench::parse_checkpoint(argc, argv);
  const sim::Scheme schemes[] = {sim::Scheme::kHelcfl, sim::Scheme::kClassicFl,
                                 sim::Scheme::kFedCs, sim::Scheme::kFedl,
                                 sim::Scheme::kSl};
  const double iid_targets[] = {0.55, 0.62, 0.68};
  const double noniid_targets[] = {0.50, 0.58, 0.65};

  util::CsvWriter csv(bench::csv_path("table1_delay.csv"),
                      {"setting", "scheme", "target", "delay_min"});

  for (const bool noniid : {false, true}) {
    const auto& targets = noniid ? noniid_targets : iid_targets;
    // Both settings sweep the same schemes: keep their checkpoints apart.
    bench::CheckpointFlags setting_ckpt = checkpoint;
    const char* setting = noniid ? "_noniid" : "_iid";
    if (!setting_ckpt.path_prefix.empty()) setting_ckpt.path_prefix += setting;
    if (!setting_ckpt.resume_prefix.empty()) setting_ckpt.resume_prefix += setting;
    std::printf("=== Table I (%s): training delay to desired accuracy ===\n",
                noniid ? "non-IID" : "IID");

    std::vector<std::string> labels;
    std::vector<fl::TrainingHistory> histories;
    for (const auto scheme : schemes) {
      sim::ExperimentResult result =
          bench::run_scheme(bench::evaluation_config(noniid), scheme,
                            observability.instruments(), setting_ckpt);
      labels.push_back(result.scheme);
      histories.push_back(std::move(result.history));
    }

    std::printf("\n%-16s", "desired acc");
    for (const double t : targets) std::printf("  %9.0f%%", t * 100.0);
    std::printf("\n");
    for (std::size_t i = 0; i < labels.size(); ++i) {
      std::printf("%-16s", labels[i].c_str());
      for (const double target : targets) {
        const auto delay = histories[i].time_to_accuracy(target);
        std::printf("  %10s", sim::format_minutes_or_x(delay).c_str());
        csv.write_row({noniid ? "noniid" : "iid", labels[i],
                       util::CsvWriter::field(target),
                       delay ? util::CsvWriter::field(*delay / 60.0) : "X"});
      }
      std::printf("\n");
    }

    // Speedups of HELCFL at the hardest reached target (paper style).
    const double hardest = targets[2];
    const auto t_helcfl = histories[0].time_to_accuracy(hardest);
    if (t_helcfl) {
      std::printf("\nHELCFL speedups at the %.0f%% target:\n", hardest * 100.0);
      for (std::size_t i = 1; i < labels.size(); ++i) {
        const auto t = histories[i].time_to_accuracy(hardest);
        if (t) {
          std::printf("  vs %-10s %.2f%%\n", labels[i].c_str(), *t / *t_helcfl * 100.0);
        } else {
          std::printf("  vs %-10s X (target unreached)\n", labels[i].c_str());
        }
      }
    }
    std::printf("\n");
  }
  std::printf("rows written to bench_results/table1_delay.csv\n");
  observability.finish();
  return 0;
}
