// Micro-benchmarks (M1, DESIGN.md) of the numerical kernels behind the
// training substrate: GEMM variants, convolution forward/backward, dense
// layers, softmax cross-entropy, and a full MLP/CNN training step.
#include <benchmark/benchmark.h>

#include "bench_json.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/models.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace {

using namespace helcfl;
using tensor::Shape;
using tensor::Tensor;

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  tensor::set_kernel_threads(threads);
  util::Rng rng(1);
  std::vector<float> a(n * n);
  std::vector<float> b(n * n);
  std::vector<float> c(n * n);
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    tensor::gemm(n, n, n, a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  const auto flops = static_cast<std::int64_t>(state.iterations()) *
                     static_cast<std::int64_t>(2 * n * n * n);
  state.SetItemsProcessed(flops);
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["flops"] = benchmark::Counter(static_cast<double>(flops),
                                               benchmark::Counter::kIsRate);
  tensor::set_kernel_threads(1);
}
// The 512-point sweep is the scaling curve CI records (1/2/4 kernel
// threads); smaller sizes stay single-threaded (below the parallel
// threshold anyway) to track per-core kernel regressions.  UseRealTime:
// the sharded work runs on pool threads, which the default CPU-time
// pacing cannot see.
BENCHMARK(BM_Gemm)
    ->Args({32, 1})
    ->Args({64, 1})
    ->Args({128, 1})
    ->Args({256, 1})
    ->Args({512, 1})
    ->Args({512, 2})
    ->Args({512, 4})
    ->UseRealTime();

void BM_GemmABt(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  std::vector<float> a(n * n);
  std::vector<float> b(n * n);
  std::vector<float> c(n * n);
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    tensor::gemm_a_bt(n, n, n, a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmABt)->Arg(64);

void BM_DenseForward(benchmark::State& state) {
  util::Rng rng(3);
  nn::Dense layer(192, 64, rng);
  Tensor x(Shape{static_cast<std::size_t>(state.range(0)), 192});
  x.fill_normal(rng, 0.0F, 1.0F);
  for (auto _ : state) {
    Tensor y = layer.forward(x, false);
    benchmark::DoNotOptimize(y.data().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_DenseForward)->Arg(1)->Arg(32)->Arg(128);

void BM_DenseTrainStep(benchmark::State& state) {
  util::Rng rng(4);
  nn::Dense layer(192, 64, rng);
  Tensor x(Shape{32, 192});
  x.fill_normal(rng, 0.0F, 1.0F);
  Tensor dy(Shape{32, 64});
  dy.fill(0.01F);
  for (auto _ : state) {
    layer.zero_grad();
    Tensor y = layer.forward(x, true);
    Tensor dx = layer.backward(dy);
    benchmark::DoNotOptimize(dx.data().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_DenseTrainStep);

void BM_Conv2DForward(benchmark::State& state) {
  util::Rng rng(5);
  nn::Conv2D conv(3, 8, 3, 1, 1, rng);
  Tensor x(Shape{static_cast<std::size_t>(state.range(0)), 3, 8, 8});
  x.fill_normal(rng, 0.0F, 1.0F);
  for (auto _ : state) {
    Tensor y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Conv2DForward)->Arg(1)->Arg(32);

void BM_Conv2DTrainStep(benchmark::State& state) {
  util::Rng rng(6);
  nn::Conv2D conv(3, 8, 3, 1, 1, rng);
  Tensor x(Shape{8, 3, 8, 8});
  x.fill_normal(rng, 0.0F, 1.0F);
  Tensor dy(Shape{8, 8, 8, 8});
  dy.fill(0.01F);
  // Warm-up sizes the im2col scratch; the timed loop must then run
  // allocation-free (the no-alloc steady-state contract, docs/KERNELS.md).
  conv.zero_grad();
  conv.backward(conv.forward(x, true));
  const std::uint64_t reallocs_before = tensor::scratch_realloc_count();
  for (auto _ : state) {
    conv.zero_grad();
    Tensor y = conv.forward(x, true);
    Tensor dx = conv.backward(dy);
    benchmark::DoNotOptimize(dx.data().data());
  }
  if (tensor::scratch_realloc_count() != reallocs_before) {
    state.SkipWithError("scratch grew during steady-state Conv2D training");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8);
}
BENCHMARK(BM_Conv2DTrainStep);

void BM_SoftmaxCrossEntropy(benchmark::State& state) {
  util::Rng rng(7);
  Tensor logits(Shape{static_cast<std::size_t>(state.range(0)), 10});
  logits.fill_normal(rng, 0.0F, 2.0F);
  std::vector<std::int32_t> labels(state.range(0));
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<std::int32_t>(i % 10);
  }
  for (auto _ : state) {
    nn::LossResult loss = nn::softmax_cross_entropy(logits, labels);
    benchmark::DoNotOptimize(loss.loss);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SoftmaxCrossEntropy)->Arg(32)->Arg(256);

void BM_ModelTrainStep(benchmark::State& state) {
  // One full-batch client update of the default experiment model on a
  // 40-sample local dataset — the per-client unit of Algorithm 1 line 7.
  util::Rng rng(8);
  const nn::ImageSpec spec{3, 8, 8};
  const auto kind = static_cast<nn::ModelKind>(state.range(0));
  auto model = nn::make_model(kind, spec, 10, rng);
  Tensor x(Shape{40, 3, 8, 8});
  x.fill_normal(rng, 0.0F, 1.0F);
  std::vector<std::int32_t> labels(40);
  for (std::size_t i = 0; i < 40; ++i) labels[i] = static_cast<std::int32_t>(i % 10);
  nn::Sgd sgd({.learning_rate = 0.05F});
  for (auto _ : state) {
    model->zero_grad();
    Tensor logits = model->forward(x, true);
    nn::LossResult loss = nn::softmax_cross_entropy(logits, labels);
    model->backward(loss.grad_logits);
    sgd.step(model->params());
    benchmark::DoNotOptimize(loss.loss);
  }
  state.SetLabel(nn::model_kind_name(kind));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 40);
}
BENCHMARK(BM_ModelTrainStep)
    ->Arg(static_cast<int>(nn::ModelKind::kMlp))
    ->Arg(static_cast<int>(nn::ModelKind::kSmallCnn))
    ->Arg(static_cast<int>(nn::ModelKind::kMiniSqueezeNet));

void BM_RoundForward(benchmark::State& state) {
  // The FedAvg inner loop in miniature: every selected client forwards the
  // same global model.  With prepacking (arg = 1) the Dense weight panels
  // are packed once and reused by all clients; arg = 0 simulates the naive
  // pack-per-client alternative by dirtying the panels before each client,
  // so the delta between the two rows is the per-round packing amortization.
  const bool prepack = state.range(0) != 0;
  const bool saved_prepack = tensor::weight_prepack_enabled();
  tensor::set_weight_prepack(true);
  util::Rng rng(10);
  nn::Sequential model;
  model.emplace<nn::Dense>(256, 256, rng);
  model.emplace<nn::Dense>(256, 256, rng);
  model.emplace<nn::Dense>(256, 10, rng);
  constexpr std::size_t kClients = 32;
  constexpr std::size_t kBatch = 4;
  Tensor x(Shape{kBatch, 256});
  x.fill_normal(rng, 0.0F, 1.0F);
  for (auto _ : state) {
    for (std::size_t client = 0; client < kClients; ++client) {
      if (!prepack) model.mark_weights_dirty();
      Tensor y = model.forward(x, false);
      benchmark::DoNotOptimize(y.data().data());
    }
  }
  state.SetLabel(prepack ? "prepack" : "repack_per_client");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kClients * kBatch));
  tensor::set_weight_prepack(saved_prepack);
}
BENCHMARK(BM_RoundForward)->Arg(0)->Arg(1);

void BM_ExtractLoadParameters(benchmark::State& state) {
  util::Rng rng(9);
  const nn::ImageSpec spec{3, 8, 8};
  auto model = nn::make_mlp(spec, 64, 10, rng);
  std::size_t n_params = 0;
  for (auto _ : state) {
    std::vector<float> flat = nn::extract_parameters(*model);
    nn::load_parameters(*model, flat);
    n_params = flat.size();
    benchmark::DoNotOptimize(flat.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n_params));
}
BENCHMARK(BM_ExtractLoadParameters);

}  // namespace

HELCFL_BENCH_JSON_MAIN("BENCH_micro_kernels.json")
