// Reproduces the mechanism illustrated by Fig. 1 of the paper: the TDMA
// upload timeline of one training round, showing the slack (idle wait)
// each user accumulates at maximum frequency, and how Algorithm 3 stretches
// computation into that slack without moving any upload.
//
// Prints an ASCII timeline and a per-user table (frequency, slack, compute
// energy) for both arms; writes bench_results/fig1_slack.csv.
#include <algorithm>
#include <cmath>

#include "bench_common.h"
#include "core/greedy_decay_selection.h"
#include "util/csv.h"
#include "core/dvfs.h"
#include "mec/cost_model.h"
#include "mec/tdma.h"
#include "sim/fleet.h"

namespace {

void draw_bar(const char* label, double compute_end, double upload_start,
              double upload_end, double horizon) {
  constexpr int kWidth = 58;
  auto col = [&](double t) {
    return std::min(kWidth, static_cast<int>(std::lround(t / horizon * kWidth)));
  };
  std::string bar(kWidth, ' ');
  for (int i = 0; i < col(compute_end); ++i) bar[i] = '#';              // computing
  for (int i = col(compute_end); i < col(upload_start); ++i) bar[i] = '.';  // slack
  for (int i = col(upload_start); i < col(upload_end); ++i) bar[i] = '=';   // upload
  std::printf("  %-8s |%s|\n", label, bar.c_str());
}

}  // namespace

int main() {
  using namespace helcfl;

  // One round of the paper's setup: the 10 users HELCFL selects first.
  sim::ExperimentConfig config = bench::evaluation_config(/*noniid=*/false);
  util::Rng fleet_rng = util::Rng(config.seed).fork(3);
  std::vector<std::size_t> samples(config.n_users, 40);
  const auto devices = sim::make_fleet(config, samples, fleet_rng);
  const auto channel = sim::make_channel(config);
  const auto users =
      sched::build_user_info(devices, channel, config.trainer.model_size_bits);

  core::GreedyDecaySelector selector(config.fraction, config.eta);
  const auto selected = selector.select({users});

  // Arm 1: everyone at f_max (the "traditional TDMA FL" of Fig. 1).
  std::vector<double> compute_max;
  std::vector<double> upload;
  for (const auto i : selected) {
    compute_max.push_back(users[i].t_cal_max_s);
    upload.push_back(users[i].t_com_s);
  }
  const mec::TdmaSchedule max_schedule = mec::schedule_uploads(compute_max, upload);

  // Arm 2: Algorithm 3.
  const core::FrequencyPlan plan = core::determine_frequencies({users}, selected);

  const double horizon = std::max(max_schedule.round_delay_s, plan.round_delay_s);
  std::printf("=== Fig. 1: TDMA round timeline (# compute, . slack, = upload) ===\n\n");
  std::printf("traditional (all users at f_max), round delay %.2fs, total slack %.2fs:\n",
              max_schedule.round_delay_s, max_schedule.total_slack_s);
  for (const auto& slot : max_schedule.slots) {
    draw_bar(("user " + std::to_string(selected[slot.index])).c_str(),
             slot.compute_end, slot.upload_start, slot.upload_end, horizon);
  }

  double slack_after = 0.0;
  for (const auto& a : plan.assignments) {
    slack_after += a.upload_start_s - a.compute_end_s;
  }
  std::printf("\nHELCFL Algorithm 3 (DVFS), round delay %.2fs, total slack %.2fs:\n",
              plan.round_delay_s, slack_after);
  for (const auto& a : plan.assignments) {
    draw_bar(("user " + std::to_string(a.user)).c_str(), a.compute_end_s,
             a.upload_start_s, a.upload_end_s, horizon);
  }

  util::CsvWriter csv(bench::csv_path("fig1_slack.csv"),
                      {"user", "f_max_ghz", "f_dvfs_ghz", "slack_before_s",
                       "slack_after_s", "energy_before_j", "energy_after_j"});
  std::printf("\n%-6s %10s %11s %13s %12s %14s %13s\n", "user", "f_max", "f_dvfs",
              "slack before", "slack after", "energy before", "energy after");
  double energy_before = 0.0;
  double energy_after = 0.0;
  for (const auto& a : plan.assignments) {
    const auto& device = users[a.user].device;
    double slack_before = 0.0;
    for (const auto& slot : max_schedule.slots) {
      if (selected[slot.index] == a.user) slack_before = slot.slack_s;
    }
    const double e_before = mec::compute_energy_j(device, device.f_max_hz);
    const double e_after = mec::compute_energy_j(device, a.frequency_hz);
    energy_before += e_before;
    energy_after += e_after;
    std::printf("%-6zu %8.2fG %9.2fG %12.2fs %11.2fs %13.4fJ %12.4fJ\n", a.user,
                device.f_max_hz / 1e9, a.frequency_hz / 1e9, slack_before,
                a.upload_start_s - a.compute_end_s, e_before, e_after);
    csv.write_row({util::CsvWriter::field(a.user),
                   util::CsvWriter::field(device.f_max_hz / 1e9),
                   util::CsvWriter::field(a.frequency_hz / 1e9),
                   util::CsvWriter::field(slack_before),
                   util::CsvWriter::field(a.upload_start_s - a.compute_end_s),
                   util::CsvWriter::field(e_before), util::CsvWriter::field(e_after)});
  }
  std::printf("\nround compute energy: %.4fJ -> %.4fJ (%.2f%% saved), delay unchanged "
              "(%.2fs vs %.2fs)\n",
              energy_before, energy_after,
              (1.0 - energy_after / energy_before) * 100.0,
              max_schedule.round_delay_s, plan.round_delay_s);
  std::printf("rows written to bench_results/fig1_slack.csv\n");
  return 0;
}
