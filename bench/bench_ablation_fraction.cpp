// Ablation A2 (DESIGN.md): user selection fraction C.  The paper fixes
// C = 0.1 (Section VII-A); this bench sweeps C and reports the accuracy /
// delay / energy trade-off for HELCFL.
//
// Expected shape: larger C covers more data per round (better accuracy per
// round) but serializes more uploads on the shared TDMA uplink, so rounds
// get much longer and energy grows linearly — the reason the paper's C
// stays small under insufficient communication resources.
#include "bench_common.h"
#include "util/csv.h"

int main(int argc, char** argv) {
  using namespace helcfl;
  sim::Observability observability = bench::parse_observability(argc, argv);
  const double fractions[] = {0.05, 0.1, 0.2, 0.3};
  constexpr double kTarget = 0.58;

  util::CsvWriter csv(bench::csv_path("ablation_fraction.csv"),
                      {"fraction", "best_accuracy", "time_to_target_min",
                       "total_delay_min", "total_energy_j", "mean_round_delay_s"});

  std::printf("=== Ablation A2: selection fraction C (non-IID, %.0f%% target) ===\n\n",
              kTarget * 100.0);
  std::printf("%-10s %10s %12s %13s %13s %12s\n", "C", "best acc", "t@target",
              "total delay", "total energy", "round delay");
  for (const double fraction : fractions) {
    sim::ExperimentConfig config = bench::evaluation_config(/*noniid=*/true);
    config.trainer.max_rounds = 150;
    config.fraction = fraction;
    config.scheme = sim::Scheme::kHelcfl;
    config.trainer.obs = observability.instruments();
    const sim::ExperimentResult result = sim::run_experiment(config);

    const auto t = result.history.time_to_accuracy(kTarget);
    const double mean_round =
        result.history.total_delay_s() / static_cast<double>(result.history.size());
    std::printf("%-10.2f %9.2f%% %12s %13s %12.2fJ %11.2fs\n", fraction,
                result.history.best_accuracy() * 100.0,
                sim::format_minutes_or_x(t).c_str(),
                sim::format_minutes(result.history.total_delay_s()).c_str(),
                result.history.total_energy_j(), mean_round);
    csv.write_row({util::CsvWriter::field(fraction),
                   util::CsvWriter::field(result.history.best_accuracy()),
                   t ? util::CsvWriter::field(*t / 60.0) : "X",
                   util::CsvWriter::field(result.history.total_delay_s() / 60.0),
                   util::CsvWriter::field(result.history.total_energy_j()),
                   util::CsvWriter::field(mean_round)});
  }
  std::printf("\nrows written to bench_results/ablation_fraction.csv\n");
  observability.finish();
  return 0;
}
