// Machine-readable benchmark output.
//
// The micro benches report to the console as usual and additionally write
// a small JSON file (one object per benchmark: name, ns/op, items/sec,
// iterations, plus any user counters such as p99 latencies) so CI and
// before/after comparisons can diff numbers without scraping console
// tables.  Override the output path with --bench-json=<path>.
#pragma once

#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "tensor/ops.h"

namespace helcfl::bench {

/// Display reporter that forwards to the stock console reporter while
/// collecting per-run rows, then writes them as JSON in Finalize().
/// (google-benchmark's dedicated file-reporter slot insists on
/// --benchmark_out, so the JSON lives on the display path instead.)
class JsonTeeReporter : public benchmark::BenchmarkReporter {
 public:
  explicit JsonTeeReporter(std::string path) : path_(std::move(path)) {}

  bool ReportContext(const Context& context) override {
    return console_.ReportContext(context);
  }

  void ReportRuns(const std::vector<Run>& report) override {
    console_.ReportRuns(report);
    for (const Run& run : report) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      Row row;
      row.name = run.benchmark_name();
      row.iterations = static_cast<double>(run.iterations);
      row.ns_per_op = run.iterations > 0
                          ? run.real_accumulated_time /
                                static_cast<double>(run.iterations) * 1e9
                          : 0.0;
      // Wall-clock seconds the measured iterations actually took — a rate
      // (items_per_second) without its measurement window is unauditable.
      row.duration_s = run.real_accumulated_time;
      // Per-row kernel context: benchmarks that sweep the kernel thread
      // count publish a "threads" counter; everything else ran at the
      // process default.  The ISA is resolved once per process but recorded
      // per row so scaling-curve diffs are self-describing.
      row.threads = static_cast<double>(tensor::kernel_threads());
      row.isa = tensor::kernel_isa();
      for (const auto& [name, counter] : run.counters) {
        if (name == "items_per_second") {
          row.items_per_sec = static_cast<double>(counter);
        } else if (name == "threads") {
          row.threads = static_cast<double>(counter);
        } else if (name == "flops") {
          // Rate counter: flops/sec over the measurement window.
          row.gflops = static_cast<double>(counter) / 1e9;
        } else {
          row.counters.emplace_back(name, static_cast<double>(counter));
        }
      }
      rows_.push_back(std::move(row));
    }
  }

  void Finalize() override {
    console_.Finalize();
    std::ofstream out(path_);
    if (!out) {
      std::cerr << "bench_json: cannot open " << path_ << "\n";
      return;
    }
    out << "{\n  \"kernel_isa\": \"" << tensor::kernel_isa() << "\",\n"
        << "  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      out << "    {\"name\": \"" << escape(r.name) << "\", \"ns_per_op\": "
          << r.ns_per_op << ", \"items_per_sec\": " << r.items_per_sec
          << ", \"duration_s\": " << r.duration_s
          << ", \"iterations\": " << r.iterations
          << ", \"threads\": " << r.threads
          << ", \"isa\": \"" << escape(r.isa) << "\"";
      if (r.gflops > 0.0) out << ", \"gflops\": " << r.gflops;
      for (const auto& [name, value] : r.counters) {
        out << ", \"" << escape(name) << "\": " << value;
      }
      out << "}" << (i + 1 < rows_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "wrote " << rows_.size() << " benchmark rows to " << path_
              << "\n";
  }

 private:
  struct Row {
    std::string name;
    double ns_per_op = 0.0;
    double items_per_sec = 0.0;
    double duration_s = 0.0;
    double iterations = 0.0;
    double threads = 1.0;   ///< kernel threads the row ran with
    double gflops = 0.0;    ///< from the "flops" rate counter; 0 = not set
    std::string isa;        ///< kernel ISA the row ran with
    /// Every other user counter (e.g. p99 latencies), in counter order.
    std::vector<std::pair<std::string, double>> counters;
  };

  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  benchmark::ConsoleReporter console_;
  std::string path_;
  std::vector<Row> rows_;
};

/// Drop-in replacement for benchmark_main: console output plus a JSON file.
/// Recognizes and strips a leading `--bench-json=<path>` argument.
inline int run_benchmarks_with_json(int argc, char** argv,
                                    const char* default_path) {
  std::string path = default_path;
  std::vector<char*> args(argv, argv + argc);
  for (auto it = args.begin(); it != args.end();) {
    constexpr const char* kFlag = "--bench-json=";
    if (std::strncmp(*it, kFlag, std::strlen(kFlag)) == 0) {
      path = *it + std::strlen(kFlag);
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  JsonTeeReporter reporter(path);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}

}  // namespace helcfl::bench

#define HELCFL_BENCH_JSON_MAIN(default_path)                             \
  int main(int argc, char** argv) {                                      \
    return helcfl::bench::run_benchmarks_with_json(argc, argv,           \
                                                   default_path);        \
  }
