// Ablation A3 (DESIGN.md): what each ingredient of the Eq. (20) utility
// contributes.  Four selection rules, all with Algorithm 3 DVFS:
//   * greedy-decay     — the full HELCFL utility (eta = 0.9);
//   * near-pure-greedy — eta = 0.999: decay is negligible, selection
//                        degenerates toward FedCS-style "fastest forever";
//   * delay-blind      — numerator only (least-selected first): a fair
//                        round-robin that ignores delays entirely;
//   * random           — Classic FL selection.
// Expected shape: greedy-decay matches round-robin/random accuracy while
// being meaningfully faster; near-pure-greedy is fastest per round but hits
// the accuracy ceiling (Section V-A).
#include <algorithm>
#include <numeric>

#include "bench_common.h"
#include "util/csv.h"
#include "core/dvfs.h"
#include "data/partition.h"
#include "data/synthetic_cifar.h"
#include "fl/trainer.h"
#include "nn/models.h"
#include "nn/serialize.h"
#include "sched/random_selection.h"
#include "sim/fleet.h"

namespace {

using namespace helcfl;

/// "Delay-blind" rule: eta^alpha alone — i.e. always pick the users with
/// the fewest appearances (ties by index).  With the delay term removed,
/// the selection is a fair rotation that never favours fast devices.
class RoundRobinSelection : public sched::SelectionStrategy {
 public:
  explicit RoundRobinSelection(double fraction) : fraction_(fraction) {}

  sched::Decision decide(const sched::FleetView& fleet, std::size_t /*round*/) override {
    if (counts_.size() != fleet.users.size()) counts_.assign(fleet.users.size(), 0);
    std::vector<std::size_t> order(fleet.users.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return counts_[a] < counts_[b];
    });
    order.resize(sched::selection_count(fleet.users.size(), fraction_));
    sched::Decision decision;
    decision.selected = order;
    const core::FrequencyPlan plan = core::determine_frequencies(fleet, order);
    for (const auto user : order) {
      decision.frequencies_hz.push_back(plan.frequency_of(user));
      ++counts_[user];
    }
    return decision;
  }

  void reset() override { counts_.clear(); }
  std::string name() const override { return "delay-blind"; }

 private:
  double fraction_;
  std::vector<std::size_t> counts_;
};

}  // namespace

int main(int argc, char** argv) {
  sim::Observability observability = bench::parse_observability(argc, argv);
  constexpr double kTarget = 0.58;
  util::CsvWriter csv(bench::csv_path("ablation_utility.csv"),
                      {"rule", "best_accuracy", "time_to_target_min", "total_delay_min",
                       "fairness"});

  std::printf("=== Ablation A3: utility-function variants (non-IID) ===\n\n");
  std::printf("%-18s %10s %12s %13s %10s\n", "rule", "best acc", "t@target",
              "total delay", "fairness");

  struct Row {
    std::string label;
    sim::ExperimentConfig config;
  };
  std::vector<Row> rows;
  for (const auto& [label, eta] :
       std::initializer_list<std::pair<const char*, double>>{
           {"greedy-decay 0.9", 0.9}, {"near-pure-greedy", 0.999}}) {
    Row row{label, bench::evaluation_config(/*noniid=*/true)};
    row.config.trainer.max_rounds = 200;
    row.config.eta = eta;
    row.config.scheme = sim::Scheme::kHelcfl;
    rows.push_back(row);
  }
  {
    Row row{"random", bench::evaluation_config(/*noniid=*/true)};
    row.config.trainer.max_rounds = 200;
    row.config.scheme = sim::Scheme::kClassicFl;
    rows.push_back(row);
  }

  auto report = [&](const std::string& label, const fl::TrainingHistory& history,
                    std::size_t n_users) {
    const auto t = history.time_to_accuracy(kTarget);
    const double fairness = history.selection_fairness(n_users);
    std::printf("%-18s %9.2f%% %12s %13s %10.3f\n", label.c_str(),
                history.best_accuracy() * 100.0, sim::format_minutes_or_x(t).c_str(),
                sim::format_minutes(history.total_delay_s()).c_str(), fairness);
    csv.write_row({label, util::CsvWriter::field(history.best_accuracy()),
                   t ? util::CsvWriter::field(*t / 60.0) : "X",
                   util::CsvWriter::field(history.total_delay_s() / 60.0),
                   util::CsvWriter::field(fairness)});
  };

  for (auto& row : rows) {
    row.config.trainer.obs = observability.instruments();
    const sim::ExperimentResult result = sim::run_experiment(row.config);
    report(row.label, result.history, row.config.n_users);
  }

  // The delay-blind rule needs a custom strategy, so drive the trainer
  // directly with the same seed-derived workload as run_experiment uses.
  {
    sim::ExperimentConfig config = bench::evaluation_config(/*noniid=*/true);
    config.trainer.max_rounds = 200;
    const util::Rng master(config.seed);
    util::Rng dataset_rng = master.fork(1);
    const data::TrainTestSplit split =
        data::make_synthetic_cifar(config.dataset, dataset_rng);
    util::Rng partition_rng = master.fork(2);
    const data::Partition partition = data::shard_noniid_partition(
        split.train.labels(), config.n_users, config.shards_per_user, partition_rng);
    std::vector<std::size_t> samples;
    for (const auto& s : partition) samples.push_back(s.size());
    util::Rng fleet_rng = master.fork(3);
    const auto devices = sim::make_fleet(config, samples, fleet_rng);
    util::Rng model_rng = master.fork(4);
    const auto model = nn::make_model(config.model, split.train.spec(),
                                      config.dataset.num_classes, model_rng);
    RoundRobinSelection strategy(config.fraction);
    fl::TrainerOptions options = config.trainer;
    options.seed = master.fork(6).next_u64();
    fl::FederatedTrainer trainer(*model, split.train, split.test, partition, devices,
                                 sim::make_channel(config), strategy, options);
    report("delay-blind", trainer.run(), config.n_users);
  }

  std::printf("\nrows written to bench_results/ablation_utility.csv\n");
  observability.finish();
  return 0;
}
