// Scheduler scale benchmark (ISSUE 6): selections/sec and p99 pick latency
// of Algorithm 2 at fleet sizes Q ∈ {1k, 10k, 100k, 1M}, comparing the
// incremental utility index (O(N log Q) per round) against the retained
// naive re-sort reference (O(Q log Q)).  Each round also revokes a few
// appearances so the index pays its real churn cost, not a read-only
// fast path.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <map>
#include <vector>

#include "bench_json.h"
#include "core/greedy_decay_reference.h"
#include "core/greedy_decay_selection.h"
#include "sched/scheduler.h"
#include "sim/config.h"
#include "sim/fleet.h"
#include "util/rng.h"

namespace {

using namespace helcfl;

constexpr double kFraction = 0.01;  // N = Q/100 picks per round
constexpr double kEta = 0.9;

// Fleet construction at Q = 1M is far more expensive than the selections
// themselves; cache one fleet per size across benchmark registrations.
const std::vector<sched::UserInfo>& cached_users(std::size_t q) {
  static std::map<std::size_t, std::vector<sched::UserInfo>> cache;
  auto it = cache.find(q);
  if (it == cache.end()) {
    sim::ExperimentConfig config = sim::paper_config();
    config.n_users = q;
    util::Rng rng(1);
    const std::vector<std::size_t> samples(q, 40);
    const auto devices = sim::make_fleet(config, samples, rng);
    it = cache.emplace(q, sched::build_user_info(devices, sim::make_channel(config),
                                                 4e6))
             .first;
  }
  return it->second;
}

// Runs the shared round loop: select, then every 4th round revoke the
// first few picks (failure feedback churns α_q both directions).  Reports
// per-select p99 latency and selections/sec (items == picks).
template <typename Selector>
void run_rounds(benchmark::State& state, Selector& selector,
                const std::vector<sched::UserInfo>& users) {
  const sched::FleetView fleet{users};
  std::vector<double> select_us;
  std::size_t rounds = 0;
  std::size_t picked = 0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    const std::vector<std::size_t> selected = selector.select(fleet);
    const auto end = std::chrono::steady_clock::now();
    select_us.push_back(
        std::chrono::duration<double, std::micro>(end - start).count());
    picked = selected.size();
    benchmark::DoNotOptimize(selected.data());
    if (++rounds % 4 == 0) {
      for (std::size_t k = 0; k < std::min<std::size_t>(8, selected.size()); ++k) {
        selector.revoke_appearance(selected[k]);
      }
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(picked));
  std::sort(select_us.begin(), select_us.end());
  if (!select_us.empty()) {
    const std::size_t p99 = (select_us.size() * 99) / 100;
    state.counters["p99_select_us"] =
        select_us[std::min(p99, select_us.size() - 1)];
  }
}

void BM_IndexSelect(benchmark::State& state) {
  const auto& users = cached_users(static_cast<std::size_t>(state.range(0)));
  core::GreedyDecaySelector selector(kFraction, kEta);
  run_rounds(state, selector, users);
}
BENCHMARK(BM_IndexSelect)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000)
    ->Iterations(100)
    ->Unit(benchmark::kMicrosecond);

void BM_ReferenceSelect(benchmark::State& state) {
  const auto& users = cached_users(static_cast<std::size_t>(state.range(0)));
  core::GreedyDecayReference selector(kFraction, kEta);
  run_rounds(state, selector, users);
}
BENCHMARK(BM_ReferenceSelect)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Iterations(100)
    ->Unit(benchmark::kMicrosecond);
// The reference at Q = 1M takes ~1 s per round; a handful of iterations
// is enough to pin the comparison point without a minute-long run.
BENCHMARK(BM_ReferenceSelect)
    ->Arg(1000000)
    ->Iterations(5)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

// Scale rows land in the scheduler micro-bench JSON so one file carries
// all FLCC-side throughput numbers.
HELCFL_BENCH_JSON_MAIN("BENCH_micro_sched.json")
