// Ablation A1 (DESIGN.md): sensitivity of HELCFL to the decay coefficient
// eta of Eq. (20).  The paper does not report its eta; this bench sweeps it
// and reports best accuracy, time to the mid target, total delay, and
// Jain's fairness of user participation.
//
// Expected shape: small eta decays fast-user utility quickly (round-robin-
// like: fair but slow rounds); eta -> 1 degenerates toward FedCS-style pure
// greed (fast rounds, unfair, accuracy ceiling).  Intermediate eta wins.
#include "bench_common.h"
#include "util/csv.h"

int main(int argc, char** argv) {
  using namespace helcfl;
  sim::Observability observability = bench::parse_observability(argc, argv);
  const double etas[] = {0.5, 0.7, 0.8, 0.9, 0.95, 0.99};
  constexpr double kTarget = 0.58;

  util::CsvWriter csv(bench::csv_path("ablation_eta.csv"),
                      {"eta", "best_accuracy", "time_to_target_min", "total_delay_min",
                       "fairness"});

  std::printf("=== Ablation A1: decay coefficient eta (non-IID, %.0f%% target) ===\n\n",
              kTarget * 100.0);
  std::printf("%-8s %10s %14s %13s %10s\n", "eta", "best acc", "t@target", "total delay",
              "fairness");
  for (const double eta : etas) {
    sim::ExperimentConfig config = bench::evaluation_config(/*noniid=*/true);
    config.trainer.max_rounds = 200;
    config.eta = eta;
    config.scheme = sim::Scheme::kHelcfl;
    config.trainer.obs = observability.instruments();
    const sim::ExperimentResult result = sim::run_experiment(config);

    const auto t = result.history.time_to_accuracy(kTarget);
    const double fairness = result.history.selection_fairness(config.n_users);
    std::printf("%-8.2f %9.2f%% %14s %13s %10.3f\n", eta,
                result.history.best_accuracy() * 100.0,
                sim::format_minutes_or_x(t).c_str(),
                sim::format_minutes(result.history.total_delay_s()).c_str(), fairness);
    csv.write_row({util::CsvWriter::field(eta),
                   util::CsvWriter::field(result.history.best_accuracy()),
                   t ? util::CsvWriter::field(*t / 60.0) : "X",
                   util::CsvWriter::field(result.history.total_delay_s() / 60.0),
                   util::CsvWriter::field(fairness)});
  }
  std::printf("\nrows written to bench_results/ablation_eta.csv\n");
  observability.finish();
  return 0;
}
