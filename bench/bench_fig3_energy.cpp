// Reproduces Fig. 3 of the paper: training energy-cost reduction brought by
// the DVFS-enabled frequency determination (Algorithm 3).
//
// Both arms use the same greedy-decay selection, so their accuracy
// trajectories are identical round by round; the only difference is the
// operating frequency of the selected devices.  We report, per desired
// accuracy, the cumulative energy to reach it with and without DVFS and
// the resulting reduction — the bars of Fig. 3.
#include "bench_common.h"
#include "util/csv.h"

int main(int argc, char** argv) {
  using namespace helcfl;
  sim::Observability observability = bench::parse_observability(argc, argv);
  const bench::CheckpointFlags checkpoint = bench::parse_checkpoint(argc, argv);
  const double iid_targets[] = {0.55, 0.62, 0.68};
  const double noniid_targets[] = {0.50, 0.58, 0.65};

  util::CsvWriter csv(bench::csv_path("fig3_energy.csv"),
                      {"setting", "target", "energy_dvfs_j", "energy_nodvfs_j",
                       "reduction_pct"});

  for (const bool noniid : {false, true}) {
    const auto& targets = noniid ? noniid_targets : iid_targets;
    // Both settings run the same two schemes: keep their checkpoints apart.
    bench::CheckpointFlags setting_ckpt = checkpoint;
    const char* setting = noniid ? "_noniid" : "_iid";
    if (!setting_ckpt.path_prefix.empty()) setting_ckpt.path_prefix += setting;
    if (!setting_ckpt.resume_prefix.empty()) setting_ckpt.resume_prefix += setting;
    std::printf("=== Fig. 3 (%s): energy reduction via DVFS ===\n",
                noniid ? "non-IID" : "IID");

    const sim::ExperimentResult with_dvfs =
        bench::run_scheme(bench::evaluation_config(noniid), sim::Scheme::kHelcfl,
                          observability.instruments(), setting_ckpt);
    const sim::ExperimentResult without_dvfs = bench::run_scheme(
        bench::evaluation_config(noniid), sim::Scheme::kHelcflNoDvfs,
        observability.instruments(), setting_ckpt);

    std::printf("\n%-14s %14s %14s %12s\n", "desired acc", "HELCFL (J)",
                "w/o DVFS (J)", "reduction");
    for (const double target : targets) {
      const auto e_dvfs = with_dvfs.history.energy_to_accuracy(target);
      const auto e_max = without_dvfs.history.energy_to_accuracy(target);
      if (e_dvfs && e_max) {
        const double reduction = (1.0 - *e_dvfs / *e_max) * 100.0;
        std::printf("%13.0f%% %14.2f %14.2f %11.2f%%\n", target * 100.0, *e_dvfs,
                    *e_max, reduction);
        csv.write_row({noniid ? "noniid" : "iid", util::CsvWriter::field(target),
                       util::CsvWriter::field(*e_dvfs), util::CsvWriter::field(*e_max),
                       util::CsvWriter::field(reduction)});
      } else {
        std::printf("%13.0f%% %14s %14s %12s\n", target * 100.0, "X", "X", "-");
        csv.write_row({noniid ? "noniid" : "iid", util::CsvWriter::field(target), "X",
                       "X", "X"});
      }
    }

    // Whole-run reduction (all 300 rounds).
    const double total_reduction = (1.0 - with_dvfs.history.total_energy_j() /
                                              without_dvfs.history.total_energy_j()) *
                                   100.0;
    std::printf("full 300-round training: %.2fJ vs %.2fJ (%.2f%% saved)\n\n",
                with_dvfs.history.total_energy_j(),
                without_dvfs.history.total_energy_j(), total_reduction);
  }
  std::printf("rows written to bench_results/fig3_energy.csv\n");
  observability.finish();
  return 0;
}
