// Extension experiment E7 (DESIGN.md): HELCFL vs upload compression.
//
// The paper's introduction argues model compression (sparsification [5],
// quantization [6]) reduces communication "at the expense of model
// accuracy".  This bench quantifies the trade on our substrate: Classic FL
// with 8/4/1-bit quantization and top-10%/top-5% sparsification against
// plain Classic FL and HELCFL, reporting accuracy, delay, and energy.
#include "bench_common.h"
#include "util/csv.h"

int main(int argc, char** argv) {
  using namespace helcfl;
  sim::Observability observability = bench::parse_observability(argc, argv);
  constexpr double kTarget = 0.58;

  util::CsvWriter csv(bench::csv_path("ext_compression.csv"),
                      {"arm", "best_accuracy", "time_to_target_min",
                       "total_delay_min", "total_energy_j"});

  struct Arm {
    const char* label;
    sim::Scheme scheme;
    nn::CompressionOptions compression;
  };
  const Arm arms[] = {
      {"HELCFL (fp32)", sim::Scheme::kHelcfl, {}},
      {"Classic (fp32)", sim::Scheme::kClassicFl, {}},
      {"Classic +q8", sim::Scheme::kClassicFl,
       {.kind = nn::CompressionKind::kQuantization, .quantization_bits = 8}},
      {"Classic +q4", sim::Scheme::kClassicFl,
       {.kind = nn::CompressionKind::kQuantization, .quantization_bits = 4}},
      {"Classic +q1", sim::Scheme::kClassicFl,
       {.kind = nn::CompressionKind::kQuantization, .quantization_bits = 1}},
      {"Classic +top10%", sim::Scheme::kClassicFl,
       {.kind = nn::CompressionKind::kSparsification, .sparsify_keep_ratio = 0.10}},
      {"Classic +top5%", sim::Scheme::kClassicFl,
       {.kind = nn::CompressionKind::kSparsification, .sparsify_keep_ratio = 0.05}},
  };

  std::printf("=== E7: selection vs compression (non-IID, %.0f%% target) ===\n\n",
              kTarget * 100.0);
  std::printf("%-16s %10s %12s %13s %13s\n", "arm", "best acc", "t@target",
              "total delay", "total energy");
  for (const Arm& arm : arms) {
    sim::ExperimentConfig config = bench::evaluation_config(/*noniid=*/true);
    config.scheme = arm.scheme;
    config.trainer.max_rounds = 200;
    config.trainer.compression = arm.compression;
    config.trainer.obs = observability.instruments();
    const sim::ExperimentResult result = sim::run_experiment(config);

    const auto t = result.history.time_to_accuracy(kTarget);
    std::printf("%-16s %9.2f%% %12s %13s %12.2fJ\n", arm.label,
                result.history.best_accuracy() * 100.0,
                sim::format_minutes_or_x(t).c_str(),
                sim::format_minutes(result.history.total_delay_s()).c_str(),
                result.history.total_energy_j());
    csv.write_row({arm.label, util::CsvWriter::field(result.history.best_accuracy()),
                   t ? util::CsvWriter::field(*t / 60.0) : "X",
                   util::CsvWriter::field(result.history.total_delay_s() / 60.0),
                   util::CsvWriter::field(result.history.total_energy_j())});
  }
  std::printf("\nModerate quantization is nearly free in accuracy and compounds\n"
              "with selection; extreme compression (1-bit, top-5%%) trades the\n"
              "remaining accuracy for speed — the paper's Section-I claim.\n");
  std::printf("rows written to bench_results/ext_compression.csv\n");
  observability.finish();
  return 0;
}
