// Reproduces Fig. 2 of the paper: test-accuracy curves of HELCFL and the
// four baselines (Classic FL, FedCS, FEDL, SL) over 300 training rounds,
// in the IID setting (Fig. 2a) and the non-IID setting (Fig. 2b).
//
// Prints checkpointed curves to stdout and writes the full per-round series
// to bench_results/fig2_{iid,noniid}_<scheme>.csv.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace helcfl;
  sim::Observability observability = bench::parse_observability(argc, argv);
  const bench::CheckpointFlags checkpoint = bench::parse_checkpoint(argc, argv);
  const sim::Scheme schemes[] = {sim::Scheme::kHelcfl, sim::Scheme::kClassicFl,
                                 sim::Scheme::kFedCs, sim::Scheme::kFedl,
                                 sim::Scheme::kSl};

  for (const bool noniid : {false, true}) {
    const char* setting = noniid ? "noniid" : "iid";
    // Both settings sweep the same schemes: keep their checkpoints apart.
    bench::CheckpointFlags setting_ckpt = checkpoint;
    if (!setting_ckpt.path_prefix.empty()) setting_ckpt.path_prefix += std::string("_") + setting;
    if (!setting_ckpt.resume_prefix.empty()) setting_ckpt.resume_prefix += std::string("_") + setting;
    std::printf("=== Fig. 2%s: accuracy vs training round (%s) ===\n",
                noniid ? "b" : "a", noniid ? "non-IID" : "IID");

    std::vector<std::string> labels;
    std::vector<fl::TrainingHistory> histories;
    for (const auto scheme : schemes) {
      sim::ExperimentResult result =
          bench::run_scheme(bench::evaluation_config(noniid), scheme,
                            observability.instruments(), setting_ckpt);
      sim::write_history_csv(
          bench::csv_path(std::string("fig2_") + setting + "_" + result.scheme + ".csv"),
          result.history);
      labels.push_back(result.scheme);
      histories.push_back(std::move(result.history));
    }

    std::printf("\n");
    sim::print_accuracy_curves(labels, histories, /*checkpoints=*/10);

    // The paper's headline: accuracy improvement of HELCFL over each
    // baseline at the end of training.
    const double helcfl_best = histories[0].best_accuracy();
    std::printf("\nHELCFL best accuracy: %.2f%%; improvement over baselines:\n",
                helcfl_best * 100.0);
    for (std::size_t i = 1; i < labels.size(); ++i) {
      std::printf("  vs %-10s %+.2f pp\n", labels[i].c_str(),
                  (helcfl_best - histories[i].best_accuracy()) * 100.0);
    }
    std::printf("\n");
  }
  std::printf("series written to bench_results/fig2_*.csv\n");
  observability.finish();
  return 0;
}
