// Scheduler-service load generator (ISSUE 7 + 8): decisions/sec and p99
// decision latency of the full framed protocol — reports in, acks out,
// decision request/response — at wire fault rates 0, 1%, and 10%, and over
// real loopback TCP at 1/2/4 ingress threads.  Faults exercise the
// rejection, retry, and dedup paths, so the delta between the arms is the
// price of robustness, not of scheduling; the TCP arms price the socket
// transport (syscalls, stream reassembly, thread handoff) against the
// in-process wire.
//
//   --transport=tcp     run only the loopback-TCP arms
//   --transport=inproc  run only the in-process arms
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "bench_json.h"
#include "sched/scheduler.h"
#include "sim/config.h"
#include "sim/fleet.h"
#include "svc/client.h"
#include "svc/frame.h"
#include "svc/listener.h"
#include "svc/service.h"
#include "svc/transport.h"
#include "svc/wire_faults.h"
#include "util/rng.h"

namespace {

using namespace helcfl;

constexpr std::size_t kQ = 256;
constexpr std::uint64_t kSeed = 20260808;

const std::vector<sched::UserInfo>& cached_users() {
  static const std::vector<sched::UserInfo> users = [] {
    sim::ExperimentConfig config = sim::paper_config();
    config.n_users = kQ;
    util::Rng rng(1);
    const std::vector<std::size_t> samples(kQ, 40);
    const auto devices = sim::make_fleet(config, samples, rng);
    return sched::build_user_info(devices, sim::make_channel(config), 4e6);
  }();
  return users;
}

svc::FaultyLink make_link(double fault_rate, std::uint64_t stream) {
  svc::WireFaultOptions faults;
  faults.drop_rate = fault_rate;
  faults.corrupt_rate = fault_rate;
  faults.duplicate_rate = fault_rate;
  faults.delay_rate = fault_rate > 0.0 ? 0.25 : 0.0;
  faults.max_delay_ticks = 6;
  return svc::FaultyLink(
      svc::WireFaultInjector(faults, util::Rng(kSeed).fork(stream)));
}

// One report-then-decide round through the faulty wire; the protocol is
// the same barrier exchange the differential test proves correct.
struct Harness {
  svc::SchedulerService service;
  svc::ServiceClient client;
  svc::FaultyLink to_service;
  svc::FaultyLink to_client;
  std::uint64_t tick = 0;
  std::uint64_t round = 0;

  explicit Harness(double fault_rate)
      : service(cached_users(),
                [] {
                  svc::ServiceOptions options;
                  options.fraction = 0.1;
                  options.lease_ticks = 1'000'000'000;
                  options.queue_capacity = 4 * kQ;
                  return options;
                }()),
        client(
            [] {
              svc::RetryOptions retry;
              retry.base_delay_ticks = 1;
              retry.max_delay_ticks = 8;
              retry.max_attempts = 32;
              return retry;
            }(),
            util::Rng(kSeed).fork(100)),
        to_service(make_link(fault_rate, 1)),
        to_client(make_link(fault_rate, 2)) {}

  void pump() {
    for (const auto& frame : client.poll(tick)) to_service.send(frame, tick);
    for (const auto& datagram : to_service.advance(tick)) {
      service.ingest(datagram, tick);
    }
    service.poll(tick);
    for (const auto& datagram : service.take_outbox()) {
      to_client.send(datagram, tick);
    }
    for (const auto& datagram : to_client.advance(tick)) {
      client.deliver(datagram);
    }
    ++tick;
  }

  void run_round() {
    for (std::size_t d = 0; d < kQ; ++d) {
      svc::DeviceReport report;
      report.device_id = d;
      report.report_seq = round + 1;
      report.t_cal_max_s = cached_users()[d].t_cal_max_s;
      report.t_com_s = cached_users()[d].t_com_s;
      client.send_report(report, tick);
    }
    while (client.pending_reports() > 0) pump();
    client.request_decision(round, tick);
    while (!client.take_decision().has_value()) pump();
    ++round;
  }
};

// Full-protocol rounds; items == decisions, p99 over per-round wall time.
void BM_SvcDecisions(benchmark::State& state) {
  const double fault_rate = static_cast<double>(state.range(0)) / 1000.0;
  Harness harness(fault_rate);
  std::vector<double> round_us;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    harness.run_round();
    const auto end = std::chrono::steady_clock::now();
    round_us.push_back(
        std::chrono::duration<double, std::micro>(end - start).count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  std::sort(round_us.begin(), round_us.end());
  if (!round_us.empty()) {
    const std::size_t p99 = (round_us.size() * 99) / 100;
    state.counters["p99_decision_us"] =
        round_us[std::min(p99, round_us.size() - 1)];
  }
  state.counters["frames_rejected"] =
      static_cast<double>(harness.service.stats().frames_rejected);
  state.counters["client_retries"] =
      static_cast<double>(harness.client.retries());
}
BENCHMARK(BM_SvcDecisions)->Arg(0)->Arg(10)->Arg(100)->ArgName("faults_permille");

// Raw framed-ingress throughput: how fast the service chews validated
// report frames (decode + checksum + queue + apply), no wire in the way.
void BM_SvcIngest(benchmark::State& state) {
  svc::ServiceOptions options;
  options.fraction = 0.1;
  options.lease_ticks = 1'000'000'000;
  options.queue_capacity = kQ;
  svc::SchedulerService service(cached_users(), options);
  // Pre-encode one frame per device; bump the seq each lap so every
  // ingest exercises the apply path, not the dedup path.
  std::uint64_t seq = 0;
  std::uint64_t tick = 0;
  std::uint64_t frames = 0;
  for (auto _ : state) {
    ++seq;
    for (std::size_t d = 0; d < kQ; ++d) {
      svc::DeviceReport report;
      report.device_id = d;
      report.report_seq = seq;
      report.t_cal_max_s = cached_users()[d].t_cal_max_s;
      report.t_com_s = cached_users()[d].t_com_s;
      service.ingest(svc::encode_frame(svc::encode(report)), tick);
      ++frames;
    }
    service.poll(tick);
    service.take_outbox();
    ++tick;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(frames));
}
BENCHMARK(BM_SvcIngest);

// The same barrier protocol as BM_SvcDecisions, but over a real loopback
// TCP connection into a SocketServer — syscalls, per-connection stream
// reassembly, the bounded ingress queue, and the reader→service thread
// handoff are all on the measured path.  Clean wire: the TCP arms price
// the transport, the fault arms above price robustness.
struct TcpHarness {
  svc::SchedulerService service;
  svc::SocketServer server;
  svc::ServiceClient client;
  svc::ClientChannel channel;
  std::uint64_t tick = 0;
  std::uint64_t round = 0;

  explicit TcpHarness(std::size_t ingress_threads)
      : service(cached_users(),
                [] {
                  svc::ServiceOptions options;
                  options.fraction = 0.1;
                  options.lease_ticks = 1'000'000'000;
                  options.queue_capacity = 4 * kQ;
                  return options;
                }()),
        server(service, svc::Endpoint::parse("tcp:127.0.0.1:0"),
               [ingress_threads] {
                 svc::ServerOptions options;
                 options.ingress_threads = ingress_threads;
                 return options;
               }()),
        client(
            [] {
              // Ticks advance per pump (microseconds), not per wire
              // round-trip — back off far enough that retransmits mean
              // lost frames, not an impatient clock.
              svc::RetryOptions retry;
              retry.base_delay_ticks = 64;
              retry.max_delay_ticks = 1024;
              retry.max_attempts = 64;
              return retry;
            }(),
            util::Rng(kSeed).fork(100)),
        channel((server.start(), server.endpoint())) {}

  ~TcpHarness() { server.stop(); }

  void pump() {
    for (const auto& frame : client.poll(tick)) channel.send_frame(frame);
    std::vector<svc::Frame> inbox;
    channel.poll_frames(inbox, /*timeout_ms=*/1);
    for (const svc::Frame& frame : inbox) {
      client.deliver(svc::encode_frame(frame));
    }
    ++tick;
  }

  void run_round() {
    for (std::size_t d = 0; d < kQ; ++d) {
      svc::DeviceReport report;
      report.device_id = d;
      report.report_seq = round + 1;
      report.t_cal_max_s = cached_users()[d].t_cal_max_s;
      report.t_com_s = cached_users()[d].t_com_s;
      client.send_report(report, tick);
    }
    while (client.pending_reports() > 0) pump();
    client.request_decision(round, tick);
    while (!client.take_decision().has_value()) pump();
    ++round;
  }
};

void BM_SvcTcpDecisions(benchmark::State& state) {
  TcpHarness harness(static_cast<std::size_t>(state.range(0)));
  std::vector<double> round_us;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    harness.run_round();
    const auto end = std::chrono::steady_clock::now();
    round_us.push_back(
        std::chrono::duration<double, std::micro>(end - start).count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  std::sort(round_us.begin(), round_us.end());
  if (!round_us.empty()) {
    const std::size_t p99 = (round_us.size() * 99) / 100;
    state.counters["p99_decision_us"] =
        round_us[std::min(p99, round_us.size() - 1)];
  }
  state.counters["ingress_frames"] =
      static_cast<double>(harness.server.stats().ingress_frames);
  state.counters["client_retries"] =
      static_cast<double>(harness.client.retries());
}
BENCHMARK(BM_SvcTcpDecisions)->Arg(1)->Arg(2)->Arg(4)->ArgName("ingress_threads")
    ->Unit(benchmark::kMicrosecond)->MinTime(0.2);

}  // namespace

// Custom main: --transport=tcp|inproc selects the benchmark family by
// rewriting itself into a --benchmark_filter before the stock JSON main.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string filter;
  for (auto it = args.begin(); it != args.end();) {
    constexpr const char* kFlag = "--transport=";
    if (std::strncmp(*it, kFlag, std::strlen(kFlag)) == 0) {
      const std::string value = *it + std::strlen(kFlag);
      if (value == "tcp") {
        filter = "--benchmark_filter=Tcp";
      } else if (value == "inproc") {
        filter = "--benchmark_filter=-Tcp";
      } else {
        std::cerr << "unknown --transport value: " << value
                  << " (expected tcp|inproc)\n";
        return 1;
      }
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  if (!filter.empty()) args.insert(args.begin() + 1, filter.data());
  return helcfl::bench::run_benchmarks_with_json(
      static_cast<int>(args.size()), args.data(), "BENCH_micro_svc.json");
}
