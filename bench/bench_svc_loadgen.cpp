// Scheduler-service load generator (ISSUE 7): decisions/sec and p99
// decision latency of the full framed protocol — reports in, acks out,
// decision request/response — at wire fault rates 0, 1%, and 10%.  Faults
// exercise the rejection, retry, and dedup paths, so the delta between the
// arms is the price of robustness, not of scheduling.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

#include "bench_json.h"
#include "sched/scheduler.h"
#include "sim/config.h"
#include "sim/fleet.h"
#include "svc/client.h"
#include "svc/frame.h"
#include "svc/service.h"
#include "svc/wire_faults.h"
#include "util/rng.h"

namespace {

using namespace helcfl;

constexpr std::size_t kQ = 256;
constexpr std::uint64_t kSeed = 20260808;

const std::vector<sched::UserInfo>& cached_users() {
  static const std::vector<sched::UserInfo> users = [] {
    sim::ExperimentConfig config = sim::paper_config();
    config.n_users = kQ;
    util::Rng rng(1);
    const std::vector<std::size_t> samples(kQ, 40);
    const auto devices = sim::make_fleet(config, samples, rng);
    return sched::build_user_info(devices, sim::make_channel(config), 4e6);
  }();
  return users;
}

svc::FaultyLink make_link(double fault_rate, std::uint64_t stream) {
  svc::WireFaultOptions faults;
  faults.drop_rate = fault_rate;
  faults.corrupt_rate = fault_rate;
  faults.duplicate_rate = fault_rate;
  faults.delay_rate = fault_rate > 0.0 ? 0.25 : 0.0;
  faults.max_delay_ticks = 6;
  return svc::FaultyLink(
      svc::WireFaultInjector(faults, util::Rng(kSeed).fork(stream)));
}

// One report-then-decide round through the faulty wire; the protocol is
// the same barrier exchange the differential test proves correct.
struct Harness {
  svc::SchedulerService service;
  svc::ServiceClient client;
  svc::FaultyLink to_service;
  svc::FaultyLink to_client;
  std::uint64_t tick = 0;
  std::uint64_t round = 0;

  explicit Harness(double fault_rate)
      : service(cached_users(),
                [] {
                  svc::ServiceOptions options;
                  options.fraction = 0.1;
                  options.lease_ticks = 1'000'000'000;
                  options.queue_capacity = 4 * kQ;
                  return options;
                }()),
        client(
            [] {
              svc::RetryOptions retry;
              retry.base_delay_ticks = 1;
              retry.max_delay_ticks = 8;
              retry.max_attempts = 32;
              return retry;
            }(),
            util::Rng(kSeed).fork(100)),
        to_service(make_link(fault_rate, 1)),
        to_client(make_link(fault_rate, 2)) {}

  void pump() {
    for (const auto& frame : client.poll(tick)) to_service.send(frame, tick);
    for (const auto& datagram : to_service.advance(tick)) {
      service.ingest(datagram, tick);
    }
    service.poll(tick);
    for (const auto& datagram : service.take_outbox()) {
      to_client.send(datagram, tick);
    }
    for (const auto& datagram : to_client.advance(tick)) {
      client.deliver(datagram);
    }
    ++tick;
  }

  void run_round() {
    for (std::size_t d = 0; d < kQ; ++d) {
      svc::DeviceReport report;
      report.device_id = d;
      report.report_seq = round + 1;
      report.t_cal_max_s = cached_users()[d].t_cal_max_s;
      report.t_com_s = cached_users()[d].t_com_s;
      client.send_report(report, tick);
    }
    while (client.pending_reports() > 0) pump();
    client.request_decision(round, tick);
    while (!client.take_decision().has_value()) pump();
    ++round;
  }
};

// Full-protocol rounds; items == decisions, p99 over per-round wall time.
void BM_SvcDecisions(benchmark::State& state) {
  const double fault_rate = static_cast<double>(state.range(0)) / 1000.0;
  Harness harness(fault_rate);
  std::vector<double> round_us;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    harness.run_round();
    const auto end = std::chrono::steady_clock::now();
    round_us.push_back(
        std::chrono::duration<double, std::micro>(end - start).count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  std::sort(round_us.begin(), round_us.end());
  if (!round_us.empty()) {
    const std::size_t p99 = (round_us.size() * 99) / 100;
    state.counters["p99_decision_us"] =
        round_us[std::min(p99, round_us.size() - 1)];
  }
  state.counters["frames_rejected"] =
      static_cast<double>(harness.service.stats().frames_rejected);
  state.counters["client_retries"] =
      static_cast<double>(harness.client.retries());
}
BENCHMARK(BM_SvcDecisions)->Arg(0)->Arg(10)->Arg(100)->ArgName("faults_permille");

// Raw framed-ingress throughput: how fast the service chews validated
// report frames (decode + checksum + queue + apply), no wire in the way.
void BM_SvcIngest(benchmark::State& state) {
  svc::ServiceOptions options;
  options.fraction = 0.1;
  options.lease_ticks = 1'000'000'000;
  options.queue_capacity = kQ;
  svc::SchedulerService service(cached_users(), options);
  // Pre-encode one frame per device; bump the seq each lap so every
  // ingest exercises the apply path, not the dedup path.
  std::uint64_t seq = 0;
  std::uint64_t tick = 0;
  std::uint64_t frames = 0;
  for (auto _ : state) {
    ++seq;
    for (std::size_t d = 0; d < kQ; ++d) {
      svc::DeviceReport report;
      report.device_id = d;
      report.report_seq = seq;
      report.t_cal_max_s = cached_users()[d].t_cal_max_s;
      report.t_com_s = cached_users()[d].t_com_s;
      service.ingest(svc::encode_frame(svc::encode(report)), tick);
      ++frames;
    }
    service.poll(tick);
    service.take_outbox();
    ++tick;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(frames));
}
BENCHMARK(BM_SvcIngest);

}  // namespace

HELCFL_BENCH_JSON_MAIN("BENCH_micro_svc.json")
