// Extension experiment E8 (DESIGN.md): robustness to channel fading.
//
// The paper's schedulers rank users by delays measured once at
// initialization.  Under Gauss-Markov fading the actual upload times drift
// every round, so those rankings go stale.  This bench sweeps the fading
// severity and reports how much each scheme's delay/energy degrade — and
// whether HELCFL's advantage survives imperfect information.
#include "bench_common.h"
#include "util/csv.h"

int main(int argc, char** argv) {
  using namespace helcfl;
  sim::Observability observability = bench::parse_observability(argc, argv);
  constexpr double kTarget = 0.58;

  util::CsvWriter csv(bench::csv_path("ext_fading.csv"),
                      {"sigma_db", "scheme", "best_accuracy", "time_to_target_min",
                       "total_delay_min"});

  std::printf("=== E8: stale delay information under channel fading (non-IID) ===\n\n");
  std::printf("%-10s %-12s %10s %12s %13s\n", "sigma_db", "scheme", "best acc",
              "t@target", "total delay");
  for (const double sigma_db : {0.0, 2.0, 4.0, 8.0}) {
    for (const auto scheme : {sim::Scheme::kHelcfl, sim::Scheme::kClassicFl}) {
      sim::ExperimentConfig config = bench::evaluation_config(/*noniid=*/true);
      config.scheme = scheme;
      config.trainer.max_rounds = 200;
      config.trainer.obs = observability.instruments();
      if (sigma_db > 0.0) {
        config.trainer.fading = {.enabled = true, .rho = 0.8, .sigma_db = sigma_db};
      }
      const sim::ExperimentResult result = sim::run_experiment(config);
      const auto t = result.history.time_to_accuracy(kTarget);
      std::printf("%-10.1f %-12s %9.2f%% %12s %13s\n", sigma_db,
                  result.scheme.c_str(), result.history.best_accuracy() * 100.0,
                  sim::format_minutes_or_x(t).c_str(),
                  sim::format_minutes(result.history.total_delay_s()).c_str());
      csv.write_row({util::CsvWriter::field(sigma_db), result.scheme,
                     util::CsvWriter::field(result.history.best_accuracy()),
                     t ? util::CsvWriter::field(*t / 60.0) : "X",
                     util::CsvWriter::field(result.history.total_delay_s() / 60.0)});
    }
  }
  std::printf("\nFading stretches some uploads and shrinks others; with rho = 0.8\n"
              "the per-round noise partially averages out, so HELCFL's ranking\n"
              "stays useful even though it was computed once at initialization.\n");
  std::printf("rows written to bench_results/ext_fading.csv\n");
  observability.finish();
  return 0;
}
