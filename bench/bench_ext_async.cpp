// Extension experiment E8 (DESIGN.md §16, docs/ASYNC.md): the round-engine
// comparison under stragglers.
//
// The barrier engine pays the paper's Eq.-(10) round delay: every round is
// gated by its slowest member, so a 10% population of 4x-slowed stragglers
// stretches *every* cohort that draws one.  The FedBuff-style engine
// aggregates the first K arrivals and lets stragglers finish late (their
// updates enter a later step, staleness-discounted), so the wall-clock
// between model updates stays near the fast quantile.  This bench runs the
// same workload through sync, async, and semi-async (buffer_k = 0) engines
// and reports time-to-target-accuracy, per-step delay, and the energy spent
// on updates that never entered the model.
//
//   bench_ext_async [--rounds=N] [--users=Q] [--buffer-k=K]
//                   [--straggler-rate=F] [--bench-json=PATH]
//
// Defaults: 60 rounds, Q = 100, K = 3/4 cohort, 10% stragglers.  CI smoke
// runs a few rounds and asserts async time-to-target <= sync from the JSON
// (BENCH_ext_async.json).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fl/async_trainer.h"
#include "sched/scheduler.h"
#include "util/args.h"
#include "util/csv.h"

namespace {

struct EngineResult {
  std::string name;
  std::string mode;
  std::size_t buffer_k = 0;
  helcfl::fl::TrainingHistory history;
};

/// Earliest simulated time at which an evaluated record reached `target`
/// accuracy; falls back to the full trajectory's end when never reached.
struct TimeToTarget {
  double seconds = 0.0;
  bool reached = false;
};

TimeToTarget time_to_target(const helcfl::fl::TrainingHistory& history,
                            double target) {
  for (const auto& record : history.rounds()) {
    if (record.evaluated && record.test_accuracy >= target) {
      return {record.cum_delay_s, true};
    }
  }
  return {history.total_delay_s(), false};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace helcfl;
  const util::ArgParser args(argc, argv);
  sim::Observability observability = bench::parse_observability(argc, argv);
  const auto rounds = static_cast<std::size_t>(args.get_int_or("rounds", 60));
  const auto users = static_cast<std::size_t>(args.get_int_or("users", 100));
  const double straggler_rate = args.get_double_or("straggler-rate", 0.10);
  // Per-straggler slowdown is drawn U(1, this); 10x is the deep tail of a
  // backgrounded / thermally-throttled handset, the regime FedBuff targets.
  const double straggler_slowdown = args.get_double_or("straggler-slowdown", 10.0);
  const std::string json_path = args.get_or("bench-json", "BENCH_ext_async.json");

  sim::ExperimentConfig base = bench::evaluation_config(/*noniid=*/false);
  base.scheme = sim::Scheme::kHelcfl;
  base.n_users = users;
  base.trainer.max_rounds = rounds;
  base.trainer.eval_every = 2;
  // The straggler regime async exists for: a slow tail, no cutoff, so the
  // barrier engine eats the full tail every time it draws one.
  base.trainer.faults.straggler_rate = straggler_rate;
  base.trainer.faults.straggler_slowdown = straggler_slowdown;
  base.trainer.faults.enabled = straggler_rate > 0.0;
  base.trainer.obs = observability.instruments();

  const std::size_t cohort = sched::selection_count(users, base.fraction);
  const std::size_t buffer_k = static_cast<std::size_t>(args.get_int_or(
      "buffer-k", static_cast<long long>(std::max<std::size_t>(
                      base.trainer.min_clients, (3 * cohort) / 4))));

  std::printf("=== E8: sync vs async round engine (%zu users, cohort %zu, "
              "%zu rounds, %.0f%% stragglers, slowdown U(1,%.0f)) ===\n\n",
              users, cohort, rounds, straggler_rate * 100.0, straggler_slowdown);

  std::vector<EngineResult> results;
  const auto run_engine = [&](const std::string& name, fl::AsyncOptions::Mode mode,
                              std::size_t k) {
    sim::ExperimentConfig config = base;
    config.async.mode = mode;
    config.async.buffer_k = k;
    config.async.staleness_beta = 0.5;
    std::printf("  running %-10s ...", name.c_str());
    std::fflush(stdout);
    const sim::ExperimentResult result = sim::run_experiment(config);
    std::printf(" steps=%zu best=%.2f%% delay=%s wasted=%s\n",
                result.history.size(), result.history.best_accuracy() * 100.0,
                sim::format_minutes(result.history.total_delay_s()).c_str(),
                sim::format_joules(result.history.total_wasted_energy_j()).c_str());
    results.push_back({name, fl::async_mode_name(mode), k, result.history});
  };

  run_engine("sync", fl::AsyncOptions::Mode::kSync, 0);
  run_engine("async", fl::AsyncOptions::Mode::kAsync, buffer_k);
  run_engine("semiasync", fl::AsyncOptions::Mode::kAsync, 0);

  // Target: 95% of the *worst* engine's best accuracy, so every engine
  // reaches it and time-to-target compares like against like.
  double floor_accuracy = 1.0;
  for (const EngineResult& r : results) {
    floor_accuracy = std::min(floor_accuracy, r.history.best_accuracy());
  }
  const double target = 0.95 * floor_accuracy;

  util::CsvWriter csv(bench::csv_path("ext_async.csv"),
                      {"engine", "mode", "buffer_k", "steps", "time_to_target_s",
                       "reached_target", "best_accuracy", "total_delay_s",
                       "delay_per_step_s", "total_energy_j", "wasted_energy_j"});

  std::printf("\n  target accuracy %.2f%% (0.95 x weakest engine)\n\n", target * 100.0);
  std::printf("  %-10s %8s %16s %10s %14s %12s\n", "engine", "steps",
              "t->target", "best acc", "delay/step", "wasted E");

  std::ofstream json(json_path);
  json << "{\n  \"straggler_rate\": " << straggler_rate
       << ",\n  \"target_accuracy\": " << target << ",\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const EngineResult& r = results[i];
    const TimeToTarget ttt = time_to_target(r.history, target);
    const double steps = static_cast<double>(std::max<std::size_t>(r.history.size(), 1));
    const double per_step = r.history.total_delay_s() / steps;

    std::printf("  %-10s %8zu %14.1fs%s %9.2f%% %13.2fs %11.1fJ\n",
                r.name.c_str(), r.history.size(), ttt.seconds,
                ttt.reached ? " " : "*", r.history.best_accuracy() * 100.0,
                per_step, r.history.total_wasted_energy_j());

    csv.write_row({r.name, r.mode, util::CsvWriter::field(r.buffer_k),
                   util::CsvWriter::field(r.history.size()),
                   util::CsvWriter::field(ttt.seconds),
                   util::CsvWriter::field(ttt.reached ? 1 : 0),
                   util::CsvWriter::field(r.history.best_accuracy()),
                   util::CsvWriter::field(r.history.total_delay_s()),
                   util::CsvWriter::field(per_step),
                   util::CsvWriter::field(r.history.total_energy_j()),
                   util::CsvWriter::field(r.history.total_wasted_energy_j())});

    json << "    {\"name\": \"ext_async/" << r.name << "\", \"mode\": \""
         << r.mode << "\", \"buffer_k\": " << r.buffer_k
         << ", \"steps\": " << r.history.size()
         << ", \"time_to_target_s\": " << ttt.seconds
         << ", \"reached_target\": " << (ttt.reached ? "true" : "false")
         << ", \"best_accuracy\": " << r.history.best_accuracy()
         << ", \"total_delay_s\": " << r.history.total_delay_s()
         << ", \"delay_per_step_s\": " << per_step
         << ", \"total_energy_j\": " << r.history.total_energy_j()
         << ", \"wasted_energy_j\": " << r.history.total_wasted_energy_j()
         << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  std::printf("\n(* = target not reached; time shown is the full trajectory)\n"
              "The async engine's step clock follows the K-th fastest arrival\n"
              "instead of the slowest cohort member, so under a straggler tail\n"
              "its time-to-target stays at or below the barrier engine's.\n");
  std::printf("rows written to bench_results/ext_async.csv and %s\n",
              json_path.c_str());
  observability.finish();
  return 0;
}
