// Extension experiment E7 (DESIGN.md §8): training under injected failures.
//
// The paper's evaluation assumes every selected user finishes its local
// update and upload; mobile fleets do not.  This bench sweeps fault
// intensity (client crashes + transient stragglers + upload losses) across
// HELCFL, Classic FL, and FedCS, with the robustness policies of the
// failure-aware trainer switched on (bounded retries, straggler cutoff,
// quorum aggregation): accuracy still reached, rounds lost to quorum
// failures, and the energy wasted on updates that never entered the model.
//
//   bench_ext_resilience [--rounds=N]   (default 150; CI smoke uses 5)
#include "bench_common.h"
#include "util/args.h"
#include "util/csv.h"

int main(int argc, char** argv) {
  using namespace helcfl;
  const util::ArgParser args(argc, argv);
  sim::Observability observability = bench::parse_observability(argc, argv);
  const bench::CheckpointFlags checkpoint = bench::parse_checkpoint(argc, argv);
  const auto rounds = static_cast<std::size_t>(args.get_int_or("rounds", 150));

  struct FaultLevel {
    const char* label;
    double crash_rate;
    double straggler_rate;
    double upload_failure_rate;
  };
  constexpr FaultLevel kLevels[] = {
      {"none", 0.0, 0.0, 0.0},
      {"mild", 0.05, 0.10, 0.05},
      {"harsh", 0.20, 0.30, 0.20},
  };

  util::CsvWriter csv(bench::csv_path("ext_resilience.csv"),
                      {"scheme", "faults", "rounds", "failed_rounds", "crashes",
                       "upload_failures", "dropped_late", "retries", "best_accuracy",
                       "total_energy_j", "wasted_energy_j", "fairness"});

  std::printf("=== E7: resilience under injected failures (non-IID, %zu rounds) ===\n\n",
              rounds);
  std::printf("%-12s %-7s %8s %8s %10s %10s %12s %12s\n", "scheme", "faults",
              "rounds", "failed", "crashes", "retries", "best acc", "wasted E");

  for (const auto scheme :
       {sim::Scheme::kHelcfl, sim::Scheme::kClassicFl, sim::Scheme::kFedCs}) {
    for (const FaultLevel& level : kLevels) {
      sim::ExperimentConfig config = bench::evaluation_config(/*noniid=*/true);
      config.scheme = scheme;
      config.trainer.max_rounds = rounds;
      config.trainer.eval_every = 5;
      config.trainer.faults.crash_rate = level.crash_rate;
      config.trainer.faults.straggler_rate = level.straggler_rate;
      config.trainer.faults.straggler_slowdown = 4.0;
      config.trainer.faults.upload_failure_rate = level.upload_failure_rate;
      config.trainer.faults.enabled = config.trainer.faults.any_fault_possible();
      config.trainer.max_upload_retries = 2;
      config.trainer.retry_backoff_s = 0.5;
      config.trainer.min_clients = 3;
      config.trainer.obs = observability.instruments();
      // Each (scheme, fault level) cell is an independent run and needs its
      // own checkpoint file (run_scheme's per-scheme paths would collide
      // across the three levels, and resuming a "harsh" run from a "none"
      // checkpoint would silently mix trajectories).
      if (checkpoint.every > 0) {
        config.trainer.checkpoint_every = checkpoint.every;
        config.trainer.checkpoint_path = bench::scheme_checkpoint_path(
            checkpoint.path_prefix + "_" + level.label, scheme);
      }
      if (!checkpoint.resume_prefix.empty()) {
        const std::string resume = bench::scheme_checkpoint_path(
            checkpoint.resume_prefix + "_" + level.label, scheme);
        if (std::filesystem::exists(resume)) config.trainer.resume_from = resume;
      }
      const sim::ExperimentResult result = sim::run_experiment(config);
      const auto& h = result.history;

      std::printf("%-12s %-7s %8zu %8zu %10zu %10zu %11.2f%% %11.1fJ\n",
                  result.scheme.c_str(), level.label, h.size(),
                  h.failed_round_count(), h.total_crashes(), h.total_retries(),
                  h.best_accuracy() * 100.0, h.total_wasted_energy_j());

      csv.write_row({result.scheme, level.label, util::CsvWriter::field(h.size()),
                     util::CsvWriter::field(h.failed_round_count()),
                     util::CsvWriter::field(h.total_crashes()),
                     util::CsvWriter::field(h.total_upload_failures()),
                     util::CsvWriter::field(h.total_dropped_late()),
                     util::CsvWriter::field(h.total_retries()),
                     util::CsvWriter::field(h.best_accuracy()),
                     util::CsvWriter::field(h.total_energy_j()),
                     util::CsvWriter::field(h.total_wasted_energy_j()),
                     util::CsvWriter::field(h.selection_fairness(config.n_users))});
    }
  }

  std::printf("\nCompletion feedback keeps the schedulers honest under faults:\n"
              "HELCFL's decay counters only advance for clients whose update\n"
              "entered the model, and FedCS/Oort demote chronically failing\n"
              "devices, so accuracy degrades gracefully as fault rates rise.\n");
  std::printf("rows written to bench_results/ext_resilience.csv\n");
  observability.finish();
  return 0;
}
