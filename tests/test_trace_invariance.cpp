// Observability must never perturb the simulation (DESIGN.md §9): with any
// combination of tracing / profiling / counters attached, the training
// trace and final weights must stay bitwise identical to an uninstrumented
// run — and identical across worker counts — because the sinks only read
// values the round already computed (no RNG draws, no reordering).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "core/helcfl_scheduler.h"
#include "fl/trainer.h"
#include "fl_fixtures.h"
#include "nn/models.h"
#include "nn/serialize.h"
#include "obs/instruments.h"
#include "obs/profiler.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace helcfl::fl {
namespace {

constexpr std::size_t kUsers = 12;

struct RunResult {
  TrainingHistory history;
  std::vector<float> final_weights;
  std::uint64_t trace_events = 0;
};

class TraceInvarianceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    split_ = testing::tiny_split(300, 80, 90);
    util::Rng prng(91);
    partition_ = data::iid_partition(split_.train.size(), kUsers, prng);
    devices_ = testing::linear_fleet(kUsers, partition_[0].size());
    for (std::size_t i = 0; i < kUsers; ++i) {
      devices_[i].num_samples = partition_[i].size();
    }
  }

  TrainerOptions base_options(std::size_t num_threads) const {
    TrainerOptions options;
    options.max_rounds = 6;
    options.client.learning_rate = 0.1F;
    options.client.local_steps = 2;
    options.client.batch_size = 16;
    options.model_size_bits = 4e6;
    options.num_threads = num_threads;
    // Faults exercise the churn / fault / quorum / retry emission paths.
    options.faults.enabled = true;
    options.faults.crash_rate = 0.15;
    options.faults.straggler_rate = 0.2;
    options.faults.upload_failure_rate = 0.1;
    options.faults.leave_rate = 0.1;
    options.faults.rejoin_rate = 0.5;
    options.max_upload_retries = 1;
    options.min_clients = 1;
    return options;
  }

  RunResult run(const TrainerOptions& options) {
    util::Rng model_rng(92);
    const std::unique_ptr<nn::Sequential> model =
        nn::make_mlp(split_.train.spec(), 16, 10, model_rng);
    core::HelcflScheduler strategy({.fraction = 0.3, .eta = 0.9});
    FederatedTrainer trainer(*model, split_.train, split_.test, partition_,
                             devices_, testing::paper_channel(), strategy,
                             options);
    RunResult result;
    result.history = trainer.run();
    result.final_weights = nn::extract_parameters(*model);
    if (options.obs.tracer != nullptr) {
      result.trace_events = options.obs.tracer->event_count();
    }
    return result;
  }

  /// Bitwise comparison: EXPECT_EQ on doubles is equality, not tolerance.
  static void expect_identical(const RunResult& a, const RunResult& b) {
    EXPECT_EQ(a.final_weights, b.final_weights);
    ASSERT_EQ(a.history.size(), b.history.size());
    for (std::size_t i = 0; i < a.history.size(); ++i) {
      const RoundRecord& ra = a.history.rounds()[i];
      const RoundRecord& rb = b.history.rounds()[i];
      EXPECT_EQ(ra.selected, rb.selected) << "round " << i;
      EXPECT_EQ(ra.aggregated, rb.aggregated) << "round " << i;
      EXPECT_EQ(ra.round_delay_s, rb.round_delay_s) << "round " << i;
      EXPECT_EQ(ra.round_energy_j, rb.round_energy_j) << "round " << i;
      EXPECT_EQ(ra.train_loss, rb.train_loss) << "round " << i;
      EXPECT_EQ(ra.test_loss, rb.test_loss) << "round " << i;
      EXPECT_EQ(ra.test_accuracy, rb.test_accuracy) << "round " << i;
      EXPECT_EQ(ra.crashed, rb.crashed) << "round " << i;
      EXPECT_EQ(ra.retries, rb.retries) << "round " << i;
      EXPECT_EQ(ra.quorum_failed, rb.quorum_failed) << "round " << i;
      EXPECT_EQ(ra.wasted_energy_j, rb.wasted_energy_j) << "round " << i;
    }
  }

  data::TrainTestSplit split_;
  data::Partition partition_;
  std::vector<mec::Device> devices_;
};

/// A full set of sinks at the chattiest level, over an in-memory stream.
struct Sinks {
  Sinks()
      : tracer(std::make_unique<std::ostringstream>(), obs::TraceLevel::kDebug),
        profiler(&tracer) {}
  obs::Instruments instruments() { return {&tracer, &profiler, &registry}; }
  obs::Tracer tracer;
  obs::PhaseProfiler profiler;
  obs::Registry registry;
};

TEST_F(TraceInvarianceTest, TracingOnVsOffIsBitwiseIdentical) {
  const RunResult plain = run(base_options(1));

  Sinks sinks;
  TrainerOptions traced = base_options(1);
  traced.obs = sinks.instruments();
  const RunResult instrumented = run(traced);

  expect_identical(plain, instrumented);
  // The instrumented run really did trace and count.
  EXPECT_GT(instrumented.trace_events, 0U);
  EXPECT_GT(sinks.profiler.span_count(), 0U);
  EXPECT_GT(sinks.registry.counter("rounds.completed"), 0U);
}

TEST_F(TraceInvarianceTest, ThreadCountInvariantWithTracingEnabled) {
  Sinks sinks1;
  TrainerOptions sequential = base_options(1);
  sequential.obs = sinks1.instruments();
  const RunResult threads1 = run(sequential);

  Sinks sinks4;
  TrainerOptions parallel = base_options(4);
  parallel.obs = sinks4.instruments();
  const RunResult threads4 = run(parallel);

  expect_identical(threads1, threads4);
  // Emission happens on the coordinator in deterministic order except the
  // per-client debug spans, whose completion order may differ — but every
  // event both runs emit must exist in both (same count per event type is
  // implied by identical outcomes; spot-check the totals).
  EXPECT_GT(threads1.trace_events, 0U);
  EXPECT_GT(threads4.trace_events, 0U);
  EXPECT_EQ(sinks1.registry.counter("clients.selected"),
            sinks4.registry.counter("clients.selected"));
  EXPECT_EQ(sinks1.registry.counter("clients.crashed"),
            sinks4.registry.counter("clients.crashed"));
  EXPECT_EQ(sinks1.registry.counter("uploads.retries"),
            sinks4.registry.counter("uploads.retries"));
}

TEST_F(TraceInvarianceTest, FaultFreeRunAlsoInvariant) {
  TrainerOptions options = base_options(2);
  options.faults = {};  // injector inactive: no churn/fault events
  const RunResult plain = run(options);

  Sinks sinks;
  TrainerOptions traced = options;
  traced.obs = sinks.instruments();
  const RunResult instrumented = run(traced);

  expect_identical(plain, instrumented);
}

}  // namespace
}  // namespace helcfl::fl
