// The checkpoint/resume equivalence matrix (docs/CHECKPOINT.md): for every
// selection strategy, with faults off and with every fault class enabled,
// sequentially and on a 4-thread pool, a run that saves at round k and
// resumes must be bitwise identical to one that never stopped — final
// weights, per-round records, the metrics CSV bytes, and the trace suffix
// from the stored trace_seq.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <tuple>

#include "fl/checkpoint.h"
#include "resume_fixtures.h"

namespace helcfl::fl {
namespace {

const testing::ResumeWorld& world() {
  static const testing::ResumeWorld kWorld;
  return kWorld;
}

// (strategy name, faults enabled, worker threads)
using MatrixParam = std::tuple<std::string, bool, std::size_t>;

class ResumeEquivalence : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(ResumeEquivalence, SaveKillResumeIsBitwiseIdentical) {
  const auto& [strategy, faults, threads] = GetParam();
  const std::filesystem::path dir = testing::resume_tmp_dir(
      strategy + (faults ? "_faults" : "_clean") + "_t" + std::to_string(threads));

  // Golden: one uninterrupted run that drops a checkpoint every 2 rounds.
  TrainerOptions golden_options = testing::resume_options(faults, threads);
  golden_options.checkpoint_every = 2;
  golden_options.checkpoint_path = (dir / "ckpt_r{round}.bin").string();
  const testing::ResumeRun golden =
      testing::run_resume_case(world(), strategy, golden_options);
  ASSERT_EQ(golden.history.size(), testing::kResumeRounds);

  // Resume from the mid-run cadence point (4 completed rounds).
  const std::string ckpt_path = (dir / "ckpt_r4.bin").string();
  ASSERT_TRUE(std::filesystem::exists(ckpt_path));
  const Checkpoint ckpt = Checkpoint::read_file(ckpt_path);
  EXPECT_EQ(ckpt.next_round, 4U);
  // Validate against name(), not the fixture key — configuration variants
  // like "HELCFL-eta1" still checkpoint under "HELCFL".
  EXPECT_EQ(ckpt.strategy_name, testing::make_resume_strategy(strategy)->name());
  EXPECT_EQ(ckpt.records.size(), 4U);

  TrainerOptions resumed_options = testing::resume_options(faults, threads);
  resumed_options.resume_from = ckpt_path;
  const testing::ResumeRun resumed =
      testing::run_resume_case(world(), strategy, resumed_options);

  testing::expect_bitwise_resume(dir, golden, resumed, ckpt.trace_seq);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, ResumeEquivalence,
    ::testing::Combine(::testing::ValuesIn(testing::resume_strategies()),
                       ::testing::Bool(), ::testing::Values(1, 4)),
    [](const ::testing::TestParamInfo<MatrixParam>& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + (std::get<1>(info.param) ? "_faults" : "_clean") + "_threads" +
             std::to_string(std::get<2>(info.param));
    });

// Every cadence point is a valid resume origin, not just the middle one.
TEST(ResumeCadence, EveryCadencePointResumesIdentically) {
  const std::filesystem::path dir = testing::resume_tmp_dir("cadence");
  TrainerOptions golden_options = testing::resume_options(/*faults=*/true, 1);
  golden_options.checkpoint_every = 2;
  golden_options.checkpoint_path = (dir / "ckpt_r{round}.bin").string();
  const testing::ResumeRun golden =
      testing::run_resume_case(world(), "HELCFL", golden_options);

  for (const std::size_t completed : {2U, 4U, 6U}) {
    const std::string path =
        (dir / ("ckpt_r" + std::to_string(completed) + ".bin")).string();
    ASSERT_TRUE(std::filesystem::exists(path)) << path;
    const Checkpoint ckpt = Checkpoint::read_file(path);
    EXPECT_EQ(ckpt.next_round, completed);

    TrainerOptions resumed_options = testing::resume_options(/*faults=*/true, 1);
    resumed_options.resume_from = path;
    const testing::ResumeRun resumed =
        testing::run_resume_case(world(), "HELCFL", resumed_options);
    testing::expect_bitwise_resume(dir, golden, resumed, ckpt.trace_seq);
  }
}

// A checkpoint saved by a sequential run resumes bitwise-identically on a
// 4-thread pool and vice versa (the parallel engine's determinism
// guarantee extends across the save/restore boundary).
TEST(ResumeCrossThreads, CheckpointsAreThreadCountPortable) {
  const std::filesystem::path dir = testing::resume_tmp_dir("cross_threads");
  TrainerOptions golden_options = testing::resume_options(/*faults=*/true, 1);
  golden_options.checkpoint_every = 3;
  golden_options.checkpoint_path = (dir / "ckpt_r{round}.bin").string();
  const testing::ResumeRun golden =
      testing::run_resume_case(world(), "HELCFL", golden_options);

  const std::string path = (dir / "ckpt_r3.bin").string();
  const Checkpoint ckpt = Checkpoint::read_file(path);
  for (const std::size_t threads : {1U, 4U}) {
    TrainerOptions resumed_options = testing::resume_options(/*faults=*/true, threads);
    resumed_options.resume_from = path;
    const testing::ResumeRun resumed =
        testing::run_resume_case(world(), "HELCFL", resumed_options);
    testing::expect_bitwise_resume(dir, golden, resumed, ckpt.trace_seq);
  }
}

// Mismatched trainer configurations are rejected with actionable errors
// before any state is touched.
TEST(ResumeValidation, MismatchedRunsAreRejected) {
  const std::filesystem::path dir = testing::resume_tmp_dir("validation");
  TrainerOptions golden_options = testing::resume_options(/*faults=*/false, 1);
  golden_options.checkpoint_every = 2;
  golden_options.checkpoint_path = (dir / "ckpt_r{round}.bin").string();
  testing::run_resume_case(world(), "HELCFL", golden_options);
  const std::string path = (dir / "ckpt_r2.bin").string();

  {  // Wrong strategy.
    TrainerOptions options = testing::resume_options(/*faults=*/false, 1);
    options.resume_from = path;
    EXPECT_THROW(testing::run_resume_case(world(), "FedCS", options),
                 CheckpointError);
  }
  {  // Wrong seed.
    TrainerOptions options = testing::resume_options(/*faults=*/false, 1);
    options.seed = testing::kResumeSeed + 1;
    options.resume_from = path;
    try {
      testing::run_resume_case(world(), "HELCFL", options);
      FAIL() << "seed mismatch accepted";
    } catch (const CheckpointError& error) {
      EXPECT_NE(std::string(error.what()).find("seed"), std::string::npos)
          << error.what();
    }
  }
  {  // Missing file.
    TrainerOptions options = testing::resume_options(/*faults=*/false, 1);
    options.resume_from = (dir / "nope.bin").string();
    EXPECT_THROW(testing::run_resume_case(world(), "HELCFL", options),
                 CheckpointError);
  }
}

// TrainerOptions::validate rejects inconsistent checkpoint flags.
TEST(ResumeValidation, OptionValidation) {
  {
    TrainerOptions options = testing::resume_options(/*faults=*/false, 1);
    options.checkpoint_every = 2;  // no path
    EXPECT_THROW(testing::run_resume_case(world(), "HELCFL", options),
                 std::invalid_argument);
  }
  {
    TrainerOptions options = testing::resume_options(/*faults=*/false, 1);
    options.checkpoint_path = "somewhere.bin";  // no cadence
    EXPECT_THROW(testing::run_resume_case(world(), "HELCFL", options),
                 std::invalid_argument);
  }
}

}  // namespace
}  // namespace helcfl::fl
