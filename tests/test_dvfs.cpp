#include "core/dvfs.h"

#include <gtest/gtest.h>

#include "fl_fixtures.h"
#include "mec/cost_model.h"
#include "mec/tdma.h"

namespace helcfl::core {
namespace {

/// Builds consistent UserInfo entries where t_cal_max really is
/// total_cycles / f_max (unlike users_with_delays, which fakes delays).
std::vector<sched::UserInfo> consistent_fleet(
    const std::vector<std::pair<double, std::size_t>>& fmax_samples,
    double model_bits = 4e6) {
  std::vector<mec::Device> devices;
  for (std::size_t i = 0; i < fmax_samples.size(); ++i) {
    devices.push_back(
        testing::make_device(i, fmax_samples[i].first, fmax_samples[i].second));
  }
  return sched::build_user_info(devices, testing::paper_channel(), model_bits);
}

std::vector<std::size_t> all_indices(std::size_t n) {
  std::vector<std::size_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = i;
  return v;
}

TEST(Dvfs, EmptySelection) {
  const auto users = consistent_fleet({{2.0, 40}});
  const FrequencyPlan plan = determine_frequencies({users}, {});
  EXPECT_TRUE(plan.assignments.empty());
  EXPECT_DOUBLE_EQ(plan.round_delay_s, 0.0);
}

TEST(Dvfs, SingleUserRunsAtMax) {
  const auto users = consistent_fleet({{1.5, 40}});
  const FrequencyPlan plan = determine_frequencies({users}, all_indices(1));
  ASSERT_EQ(plan.assignments.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.assignments[0].frequency_hz, 1.5e9);
  EXPECT_DOUBLE_EQ(plan.round_delay_s,
                   users[0].t_cal_max_s + users[0].t_com_s);
}

TEST(Dvfs, FastestUserKeepsMaxFrequency) {
  const auto users = consistent_fleet({{0.5, 40}, {2.0, 40}, {1.0, 40}});
  const FrequencyPlan plan = determine_frequencies({users}, all_indices(3));
  // Ascending t_cal at f_max: user 1 (2 GHz) is fastest.
  EXPECT_EQ(plan.assignments[0].user, 1u);
  EXPECT_DOUBLE_EQ(plan.assignments[0].frequency_hz, 2.0e9);
}

TEST(Dvfs, SubsequentUsersAreSlowedIntoSlack) {
  const auto users = consistent_fleet({{2.0, 40}, {1.8, 40}, {1.6, 40}});
  const FrequencyPlan plan = determine_frequencies({users}, all_indices(3));
  // Users 2 and 3 in the chain get f < f_max (they have slack).
  for (std::size_t k = 1; k < plan.assignments.size(); ++k) {
    const auto& a = plan.assignments[k];
    EXPECT_LT(a.frequency_hz, users[a.user].device.f_max_hz);
    EXPECT_GE(a.frequency_hz, users[a.user].device.f_min_hz);
  }
}

TEST(Dvfs, ComputeEndsExactlyAtPredecessorUploadEndWhenUnclamped) {
  const auto users = consistent_fleet({{2.0, 40}, {1.8, 40}, {1.6, 40}});
  const FrequencyPlan plan = determine_frequencies({users}, all_indices(3));
  for (std::size_t k = 1; k < plan.assignments.size(); ++k) {
    const auto& prev = plan.assignments[k - 1];
    const auto& cur = plan.assignments[k];
    if (cur.frequency_hz > users[cur.user].device.f_min_hz &&
        cur.frequency_hz < users[cur.user].device.f_max_hz) {
      EXPECT_NEAR(cur.compute_end_s, prev.upload_end_s, 1e-9);
      EXPECT_NEAR(cur.upload_start_s, cur.compute_end_s, 1e-9);
    }
  }
}

TEST(Dvfs, RoundDelayEqualsMaxFrequencySchedule) {
  // The headline invariant: Algorithm 3 never lengthens the round.
  const auto users =
      consistent_fleet({{2.0, 40}, {1.5, 35}, {1.0, 45}, {0.6, 40}, {0.4, 30}});
  const auto selected = all_indices(5);
  const FrequencyPlan plan = determine_frequencies({users}, selected);

  std::vector<double> compute_max;
  std::vector<double> upload;
  for (const auto i : selected) {
    compute_max.push_back(users[i].t_cal_max_s);
    upload.push_back(users[i].t_com_s);
  }
  const double baseline = mec::schedule_uploads(compute_max, upload).round_delay_s;
  EXPECT_NEAR(plan.round_delay_s, baseline, 1e-9);
}

TEST(Dvfs, EnergyIsNeverWorseThanMaxFrequency) {
  const auto users =
      consistent_fleet({{2.0, 40}, {1.5, 35}, {1.0, 45}, {0.6, 40}, {0.4, 30}});
  const auto selected = all_indices(5);
  const FrequencyPlan plan = determine_frequencies({users}, selected);
  double dvfs_energy = 0.0;
  double max_energy = 0.0;
  for (const auto& a : plan.assignments) {
    const auto& device = users[a.user].device;
    dvfs_energy += mec::compute_energy_j(device, a.frequency_hz);
    max_energy += mec::compute_energy_j(device, device.f_max_hz);
  }
  EXPECT_LT(dvfs_energy, max_energy);
}

TEST(Dvfs, FrequenciesAlwaysWithinDvfsRange) {
  const auto users = consistent_fleet(
      {{2.0, 10}, {1.9, 80}, {0.31, 40}, {1.2, 5}, {0.5, 70}, {1.7, 40}});
  const FrequencyPlan plan = determine_frequencies({users}, all_indices(6));
  for (const auto& a : plan.assignments) {
    const auto& device = users[a.user].device;
    EXPECT_GE(a.frequency_hz, device.f_min_hz);
    EXPECT_LE(a.frequency_hz, device.f_max_hz);
  }
}

TEST(Dvfs, ClampAtFminLeavesResidualSlack) {
  // A very fast device later in the chain would need f < f_min to stretch
  // that far; it clamps at f_min and still waits for the link.
  const auto users = consistent_fleet({{0.35, 400}, {2.0, 4}});
  // User 0: t_cal = 4e9/0.35e9 = 11.4 s (slow).  User 1 at f_max: 0.02 s.
  const FrequencyPlan plan = determine_frequencies({users}, all_indices(2));
  EXPECT_EQ(plan.assignments[0].user, 1u);  // fastest first
  const auto& second = plan.assignments[1];
  EXPECT_EQ(second.user, 0u);
  // Second user is the slow one; its ideal frequency (stretching to the
  // first upload's end) would exceed... actually it's slower, so clamped at
  // f_max?  total_cycles/prev_total is large -> clamp to f_max.
  EXPECT_DOUBLE_EQ(second.frequency_hz, users[0].device.f_max_hz);

  // Reverse case: fast device second in chain behind a long upload.
  const auto users2 = consistent_fleet({{0.35, 100}, {2.0, 1}});
  const FrequencyPlan plan2 = determine_frequencies({users2}, all_indices(2));
  const auto& fast_second = plan2.assignments[0];
  EXPECT_EQ(fast_second.user, 1u);
  (void)fast_second;
}

TEST(Dvfs, FminClampKeepsUploadStartAtLinkFree) {
  // Chain where the second user's stretch target exceeds what f_min allows:
  // compute ends early, upload still starts when the link frees.
  const auto users = consistent_fleet({{2.0, 400}, {1.9, 1}});
  // User 1 has 1 sample: t_cal tiny; user 0 has 400 samples.
  const FrequencyPlan plan = determine_frequencies({users}, all_indices(2));
  EXPECT_EQ(plan.assignments[0].user, 1u);
  const auto& second = plan.assignments[1];
  EXPECT_EQ(second.user, 0u);
  EXPECT_GE(second.upload_start_s, plan.assignments[0].upload_end_s - 1e-9);
}

TEST(Dvfs, FrequencyOfLooksUpByUser) {
  const auto users = consistent_fleet({{2.0, 40}, {1.0, 40}});
  const FrequencyPlan plan = determine_frequencies({users}, all_indices(2));
  EXPECT_DOUBLE_EQ(plan.frequency_of(0), plan.assignments[0].user == 0
                                             ? plan.assignments[0].frequency_hz
                                             : plan.assignments[1].frequency_hz);
  EXPECT_THROW(plan.frequency_of(99), std::out_of_range);
}

TEST(Dvfs, UploadOrderIsAscendingComputeDelay) {
  const auto users = consistent_fleet({{0.5, 40}, {2.0, 40}, {1.0, 40}});
  const FrequencyPlan plan = determine_frequencies({users}, all_indices(3));
  for (std::size_t k = 1; k < plan.assignments.size(); ++k) {
    EXPECT_LE(users[plan.assignments[k - 1].user].t_cal_max_s,
              users[plan.assignments[k].user].t_cal_max_s);
  }
}

TEST(Dvfs, EveryFollowerBelowFminClampsToFminExactly) {
  // Single-sample devices compute in ~5 ms but uploads take ~0.46 s, so
  // every follower's ideal stretch frequency (total_cycles / predecessor's
  // upload end) lands far below f_min: the whole tail of the chain must
  // clamp to f_min exactly, uploads must still wait for the link, and the
  // round delay must stay at the max-frequency baseline.
  const auto users = consistent_fleet({{2.0, 1}, {1.8, 1}, {1.6, 1}});
  const auto selected = all_indices(3);
  const FrequencyPlan plan = determine_frequencies({users}, selected);
  ASSERT_EQ(plan.assignments.size(), 3u);

  const auto& first = plan.assignments[0];
  EXPECT_EQ(first.user, 0u);  // fastest compute goes first
  EXPECT_DOUBLE_EQ(first.frequency_hz, users[0].device.f_max_hz);
  for (std::size_t k = 1; k < plan.assignments.size(); ++k) {
    const auto& a = plan.assignments[k];
    const auto& prev = plan.assignments[k - 1];
    EXPECT_DOUBLE_EQ(a.frequency_hz, users[a.user].device.f_min_hz)
        << "follower " << k << " should clamp to f_min";
    // Compute finished before the link freed; upload waits for the link.
    EXPECT_LE(a.compute_end_s, prev.upload_end_s);
    EXPECT_DOUBLE_EQ(a.upload_start_s, prev.upload_end_s);
  }

  std::vector<double> compute_max;
  std::vector<double> upload;
  for (const auto i : selected) {
    compute_max.push_back(users[i].t_cal_max_s);
    upload.push_back(users[i].t_com_s);
  }
  const double baseline = mec::schedule_uploads(compute_max, upload).round_delay_s;
  EXPECT_NEAR(plan.round_delay_s, baseline, 1e-9);
}

}  // namespace
}  // namespace helcfl::core
