#include "fl/separated.h"

#include <gtest/gtest.h>

#include "fl_fixtures.h"
#include "nn/models.h"
#include "nn/serialize.h"
#include "util/rng.h"

namespace helcfl::fl {
namespace {

class SeparatedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    split_ = testing::tiny_split(200, 80, 60);
    util::Rng prng(61);
    partition_ = data::iid_partition(split_.train.size(), kUsers, prng);
    devices_ = testing::linear_fleet(kUsers, 200 / kUsers);
    util::Rng model_rng(62);
    model_ = nn::make_mlp(split_.train.spec(), 12, 10, model_rng);
  }

  SeparatedOptions quick_options() {
    SeparatedOptions options;
    options.max_rounds = 6;
    options.eval_every = 2;
    options.client.learning_rate = 0.1F;
    return options;
  }

  static constexpr std::size_t kUsers = 5;
  data::TrainTestSplit split_;
  data::Partition partition_;
  std::vector<mec::Device> devices_;
  std::unique_ptr<nn::Sequential> model_;
};

TEST_F(SeparatedTest, RunsAllRounds) {
  const TrainingHistory history = train_separated(*model_, split_.train, split_.test,
                                                  partition_, devices_, quick_options());
  EXPECT_EQ(history.size(), 6u);
}

TEST_F(SeparatedTest, EvaluatesOnConfiguredCadence) {
  const TrainingHistory history = train_separated(*model_, split_.train, split_.test,
                                                  partition_, devices_, quick_options());
  for (const auto& r : history.rounds()) {
    const bool expected = r.round % 2 == 0 || r.round == 5;
    EXPECT_EQ(r.evaluated, expected);
  }
}

TEST_F(SeparatedTest, NoUploadsMeansComputeOnlyDelay) {
  const TrainingHistory history = train_separated(*model_, split_.train, split_.test,
                                                  partition_, devices_, quick_options());
  // Round delay equals the slowest device's compute time at f_max.
  double slowest = 0.0;
  for (const auto& d : devices_) {
    slowest = std::max(slowest, d.total_cycles() / d.f_max_hz);
  }
  for (const auto& r : history.rounds()) {
    EXPECT_NEAR(r.round_delay_s, slowest, 1e-9);
  }
}

TEST_F(SeparatedTest, EnergyIsSumOfComputeEnergies) {
  const TrainingHistory history = train_separated(*model_, split_.train, split_.test,
                                                  partition_, devices_, quick_options());
  double expected = 0.0;
  for (const auto& d : devices_) {
    expected += d.switched_capacitance / 2.0 * d.total_cycles() * d.f_max_hz *
                d.f_max_hz;
  }
  EXPECT_NEAR(history.rounds()[0].round_energy_j, expected, 1e-12);
}

TEST_F(SeparatedTest, LearnsAboveChanceButBelowFederated) {
  SeparatedOptions options = quick_options();
  options.max_rounds = 60;
  options.eval_every = 20;
  options.client.local_steps = 3;
  const TrainingHistory history = train_separated(*model_, split_.train, split_.test,
                                                  partition_, devices_, options);
  const double accuracy = history.best_accuracy();
  EXPECT_GT(accuracy, 0.12);  // above chance
  EXPECT_LT(accuracy, 0.70);  // far below what FL reaches on this task
}

TEST_F(SeparatedTest, EvalUserSampleRestrictsEvaluation) {
  SeparatedOptions options = quick_options();
  options.eval_user_sample = 2;
  const TrainingHistory history = train_separated(*model_, split_.train, split_.test,
                                                  partition_, devices_, options);
  EXPECT_TRUE(history.rounds()[0].evaluated);
  EXPECT_GT(history.rounds()[0].test_accuracy, 0.0);
}

TEST_F(SeparatedTest, DeterministicGivenSeed) {
  // train_separated seeds every user from the weights currently loaded in
  // the scratch model, so restore them between runs.
  const std::vector<float> init = nn::extract_parameters(*model_);
  const TrainingHistory a = train_separated(*model_, split_.train, split_.test,
                                            partition_, devices_, quick_options());
  nn::load_parameters(*model_, init);
  const TrainingHistory b = train_separated(*model_, split_.train, split_.test,
                                            partition_, devices_, quick_options());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.rounds()[i].test_accuracy, b.rounds()[i].test_accuracy);
  }
}

TEST_F(SeparatedTest, RejectsSizeMismatch) {
  devices_.pop_back();
  EXPECT_THROW(train_separated(*model_, split_.train, split_.test, partition_,
                               devices_, quick_options()),
               std::invalid_argument);
}

}  // namespace
}  // namespace helcfl::fl
