#include "nn/models.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "util/rng.h"

namespace helcfl::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

constexpr ImageSpec kSpec{3, 8, 8};
constexpr std::size_t kClasses = 10;

class ModelZooTest : public ::testing::TestWithParam<ModelKind> {};

TEST_P(ModelZooTest, ForwardProducesClassLogits) {
  util::Rng rng(1);
  auto model = make_model(GetParam(), kSpec, kClasses, rng);
  const Tensor y = model->forward(Tensor(Shape{4, 3, 8, 8}), false);
  EXPECT_EQ(y.shape(), Shape({4, kClasses}));
}

TEST_P(ModelZooTest, ForwardIsFinite) {
  util::Rng rng(2);
  auto model = make_model(GetParam(), kSpec, kClasses, rng);
  Tensor x(Shape{2, 3, 8, 8});
  x.fill_normal(rng, 0.0F, 1.0F);
  const Tensor y = model->forward(x, false);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_TRUE(std::isfinite(y[i]));
}

TEST_P(ModelZooTest, HasTrainableParameters) {
  util::Rng rng(3);
  auto model = make_model(GetParam(), kSpec, kClasses, rng);
  EXPECT_GT(parameter_count(*model), 0u);
}

TEST_P(ModelZooTest, OneTrainingStepReducesLoss) {
  util::Rng rng(4);
  auto model = make_model(GetParam(), kSpec, kClasses, rng);
  Tensor x(Shape{8, 3, 8, 8});
  x.fill_normal(rng, 0.0F, 1.0F);
  std::vector<std::int32_t> labels;
  for (int i = 0; i < 8; ++i) labels.push_back(i % kClasses);

  Sgd sgd({.learning_rate = 0.05F});
  model->zero_grad();
  const Tensor logits0 = model->forward(x, true);
  const LossResult loss0 = softmax_cross_entropy(logits0, labels);
  model->backward(loss0.grad_logits);
  sgd.step(model->params());

  const Tensor logits1 = model->forward(x, false);
  const LossResult loss1 = softmax_cross_entropy(logits1, labels);
  EXPECT_LT(loss1.loss, loss0.loss);
}

TEST_P(ModelZooTest, DeterministicGivenSeed) {
  util::Rng rng_a(5);
  util::Rng rng_b(5);
  auto a = make_model(GetParam(), kSpec, kClasses, rng_a);
  auto b = make_model(GetParam(), kSpec, kClasses, rng_b);
  EXPECT_EQ(extract_parameters(*a), extract_parameters(*b));
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ModelZooTest,
                         ::testing::Values(ModelKind::kLogistic, ModelKind::kMlp,
                                           ModelKind::kSmallCnn,
                                           ModelKind::kMiniSqueezeNet),
                         [](const auto& info) { return model_kind_name(info.param); });

TEST(ModelZoo, ParseRoundTrip) {
  for (const auto kind : {ModelKind::kLogistic, ModelKind::kMlp, ModelKind::kSmallCnn,
                          ModelKind::kMiniSqueezeNet}) {
    EXPECT_EQ(parse_model_kind(model_kind_name(kind)), kind);
  }
  EXPECT_THROW(parse_model_kind("resnet152"), std::invalid_argument);
}

TEST(ModelZoo, MlpParameterCount) {
  util::Rng rng(6);
  auto model = make_mlp(kSpec, 64, kClasses, rng);
  const std::size_t flat = kSpec.flat_features();
  EXPECT_EQ(parameter_count(*model), (flat * 64 + 64) + (64 * kClasses + kClasses));
}

TEST(ModelZoo, LogisticIsSingleAffineLayer) {
  util::Rng rng(7);
  auto model = make_logistic(kSpec, kClasses, rng);
  EXPECT_EQ(parameter_count(*model),
            kSpec.flat_features() * kClasses + kClasses);
}

TEST(ModelZoo, ImageSpecFlatFeatures) {
  EXPECT_EQ(kSpec.flat_features(), 3u * 8 * 8);
}

TEST(ModelZoo, MiniSqueezeNetIsSmallerThanMlp) {
  util::Rng rng(8);
  auto squeeze = make_mini_squeezenet(kSpec, kClasses, rng);
  auto mlp = make_mlp(kSpec, 64, kClasses, rng);
  EXPECT_LT(parameter_count(*squeeze), parameter_count(*mlp));
}

}  // namespace
}  // namespace helcfl::nn
