#include "fl/client.h"

#include <gtest/gtest.h>

#include "fl_fixtures.h"
#include "nn/loss.h"
#include "nn/models.h"
#include "nn/serialize.h"

namespace helcfl::fl {
namespace {

class ClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    split_ = testing::tiny_split();
    util::Rng model_rng(1);
    model_ = nn::make_mlp(split_.train.spec(), 16, 10, model_rng);
    global_ = nn::extract_parameters(*model_);
    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < 60; ++i) indices.push_back(i);
    local_ = split_.train.gather(indices);
  }

  data::TrainTestSplit split_;
  std::unique_ptr<nn::Sequential> model_;
  std::vector<float> global_;
  data::Batch local_;
};

TEST_F(ClientTest, ReturnsUpdatedWeightsOfRightSize) {
  util::Rng rng(2);
  const ClientUpdate update = local_update(*model_, global_, local_, {}, rng);
  EXPECT_EQ(update.weights.size(), global_.size());
  EXPECT_EQ(update.num_samples, 60u);
}

TEST_F(ClientTest, WeightsActuallyChange) {
  util::Rng rng(3);
  const ClientUpdate update =
      local_update(*model_, global_, local_, {.learning_rate = 0.1F}, rng);
  std::size_t changed = 0;
  for (std::size_t i = 0; i < global_.size(); ++i) {
    if (update.weights[i] != global_[i]) ++changed;
  }
  EXPECT_GT(changed, global_.size() / 2);
}

TEST_F(ClientTest, SingleFullBatchStepMatchesManualGd) {
  // Eq. (3): the client's one-step full-batch update must equal
  // w - lr * dL/dw computed by hand.
  const float lr = 0.05F;
  util::Rng rng(4);
  const ClientUpdate update = local_update(
      *model_, global_, local_, {.learning_rate = lr, .local_steps = 1}, rng);

  nn::load_parameters(*model_, global_);
  model_->zero_grad();
  const auto logits = model_->forward(local_.images, true);
  const auto loss = nn::softmax_cross_entropy(logits, local_.labels);
  model_->backward(loss.grad_logits);
  const std::vector<float> grads = nn::extract_gradients(*model_);

  for (std::size_t i = 0; i < global_.size(); ++i) {
    EXPECT_NEAR(update.weights[i], global_[i] - lr * grads[i], 1e-6F);
  }
}

TEST_F(ClientTest, TrainLossIsPreStepLoss) {
  util::Rng rng(5);
  const ClientUpdate update = local_update(*model_, global_, local_, {}, rng);

  nn::load_parameters(*model_, global_);
  const auto logits = model_->forward(local_.images, false);
  const auto loss = nn::softmax_cross_entropy(logits, local_.labels);
  EXPECT_NEAR(update.train_loss, loss.loss, 1e-9);
}

TEST_F(ClientTest, MoreStepsReduceLocalLossFurther) {
  util::Rng rng1(6);
  util::Rng rng2(6);
  const ClientUpdate one = local_update(
      *model_, global_, local_, {.learning_rate = 0.05F, .local_steps = 1}, rng1);
  const ClientUpdate ten = local_update(
      *model_, global_, local_, {.learning_rate = 0.05F, .local_steps = 10}, rng2);

  auto loss_with = [&](const std::vector<float>& w) {
    nn::load_parameters(*model_, w);
    const auto logits = model_->forward(local_.images, false);
    return nn::softmax_cross_entropy(logits, local_.labels).loss;
  };
  EXPECT_LT(loss_with(ten.weights), loss_with(one.weights));
}

TEST_F(ClientTest, MiniBatchStepsAreDeterministicGivenRng) {
  util::Rng rng1(7);
  util::Rng rng2(7);
  const ClientOptions options{.learning_rate = 0.05F, .local_steps = 3,
                              .batch_size = 16};
  const ClientUpdate a = local_update(*model_, global_, local_, options, rng1);
  const ClientUpdate b = local_update(*model_, global_, local_, options, rng2);
  EXPECT_EQ(a.weights, b.weights);
}

TEST_F(ClientTest, BatchSizeLargerThanDataFallsBackToFullBatch) {
  util::Rng rng1(8);
  util::Rng rng2(9);  // different RNG must not matter for full batch
  const ClientOptions big{.learning_rate = 0.05F, .local_steps = 1,
                          .batch_size = 10000};
  const ClientOptions full{.learning_rate = 0.05F, .local_steps = 1, .batch_size = 0};
  const ClientUpdate a = local_update(*model_, global_, local_, big, rng1);
  const ClientUpdate b = local_update(*model_, global_, local_, full, rng2);
  EXPECT_EQ(a.weights, b.weights);
}

TEST_F(ClientTest, RejectsEmptyLocalData) {
  util::Rng rng(10);
  data::Batch empty;
  EXPECT_THROW(local_update(*model_, global_, empty, {}, rng), std::invalid_argument);
}

TEST_F(ClientTest, RejectsZeroSteps) {
  util::Rng rng(11);
  EXPECT_THROW(local_update(*model_, global_, local_, {.local_steps = 0}, rng),
               std::invalid_argument);
}

TEST_F(ClientTest, GlobalWeightsAreNotMutated) {
  util::Rng rng(12);
  const std::vector<float> saved = global_;
  (void)local_update(*model_, global_, local_, {.learning_rate = 0.5F}, rng);
  EXPECT_EQ(global_, saved);
}

}  // namespace
}  // namespace helcfl::fl
