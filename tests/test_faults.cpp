// Unit tests of the fault-injection subsystem (DESIGN.md §8): option
// validation, the per-(round, user) determinism contract, and the
// statistical behaviour of each fault mode.
#include "mec/faults.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace helcfl::mec {
namespace {

FaultOptions enabled_options() {
  FaultOptions options;
  options.enabled = true;
  return options;
}

// --- option validation -----------------------------------------------------

TEST(FaultOptions, DefaultIsValidAndInert) {
  FaultOptions options;
  EXPECT_NO_THROW(options.validate());
  EXPECT_FALSE(options.enabled);
  EXPECT_FALSE(options.any_fault_possible());
}

TEST(FaultOptions, RejectsOutOfRangeRates) {
  for (auto setter : {+[](FaultOptions& o, double v) { o.crash_rate = v; },
                      +[](FaultOptions& o, double v) { o.upload_failure_rate = v; },
                      +[](FaultOptions& o, double v) { o.straggler_rate = v; },
                      +[](FaultOptions& o, double v) { o.leave_rate = v; },
                      +[](FaultOptions& o, double v) { o.rejoin_rate = v; }}) {
    FaultOptions options;
    setter(options, -0.1);
    EXPECT_THROW(options.validate(), std::invalid_argument);
    setter(options, 1.1);
    EXPECT_THROW(options.validate(), std::invalid_argument);
    setter(options, 0.5);
    EXPECT_NO_THROW(options.validate());
  }
}

TEST(FaultOptions, RejectsBadSlowdown) {
  FaultOptions options;
  options.straggler_slowdown = 0.5;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options.straggler_slowdown = std::numeric_limits<double>::infinity();
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options.straggler_slowdown = 1.0;  // exactly no slowdown is allowed
  EXPECT_NO_THROW(options.validate());
}

TEST(FaultOptions, RejectsChurnWithoutRejoin) {
  FaultOptions options;
  options.leave_rate = 0.1;
  options.rejoin_rate = 0.0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options.rejoin_rate = 0.2;
  EXPECT_NO_THROW(options.validate());
}

// --- inactive injector -----------------------------------------------------

TEST(FaultInjector, DisabledInjectorIsStrictNoOp) {
  FaultOptions options;  // enabled = false even with hot rates
  options.crash_rate = 1.0;
  options.upload_failure_rate = 1.0;
  options.leave_rate = 1.0;
  FaultInjector injector(8, options, util::Rng(1));
  EXPECT_FALSE(injector.active());
  injector.begin_round();
  EXPECT_TRUE(injector.availability().empty());
  EXPECT_EQ(injector.away_count(), 0u);
  const ClientFaults faults = injector.draw(0, 3, 1);
  EXPECT_FALSE(faults.crashed);
  EXPECT_TRUE(faults.upload_ok);
  EXPECT_EQ(faults.slowdown, 1.0);
  EXPECT_EQ(faults.attempts(), 1u);
}

// --- determinism -----------------------------------------------------------

TEST(FaultInjector, DrawIsDeterministicPerRoundAndUser) {
  FaultOptions options = enabled_options();
  options.crash_rate = 0.3;
  options.straggler_rate = 0.4;
  options.upload_failure_rate = 0.3;
  const FaultInjector a(16, options, util::Rng(7));
  const FaultInjector b(16, options, util::Rng(7));

  for (std::size_t round = 0; round < 5; ++round) {
    // Draw in opposite user orders: outcomes must not depend on call order.
    for (std::size_t user = 0; user < 16; ++user) {
      const ClientFaults fa = a.draw(round, user, 3);
      const ClientFaults fb = b.draw(round, 15 - user, 3);
      const ClientFaults fb_same = b.draw(round, user, 3);
      (void)fb;
      EXPECT_EQ(fa.crashed, fb_same.crashed);
      EXPECT_EQ(fa.crash_fraction, fb_same.crash_fraction);
      EXPECT_EQ(fa.slowdown, fb_same.slowdown);
      EXPECT_EQ(fa.failed_attempts, fb_same.failed_attempts);
      EXPECT_EQ(fa.upload_ok, fb_same.upload_ok);
    }
  }
}

TEST(FaultInjector, DifferentRoundsGiveDifferentDraws) {
  FaultOptions options = enabled_options();
  options.crash_rate = 0.5;
  options.straggler_rate = 0.5;
  const FaultInjector injector(4, options, util::Rng(9));
  bool any_difference = false;
  for (std::size_t round = 1; round < 50 && !any_difference; ++round) {
    const ClientFaults now = injector.draw(round, 2, 1);
    const ClientFaults before = injector.draw(round - 1, 2, 1);
    any_difference = now.crashed != before.crashed || now.slowdown != before.slowdown;
  }
  EXPECT_TRUE(any_difference);
}

TEST(FaultInjector, DrawRejectsZeroAttempts) {
  const FaultInjector injector(4, enabled_options(), util::Rng(1));
  EXPECT_THROW(injector.draw(0, 0, 0), std::invalid_argument);
}

// --- fault modes -----------------------------------------------------------

TEST(FaultInjector, CertainCrashAlwaysCrashes) {
  FaultOptions options = enabled_options();
  options.crash_rate = 1.0;
  const FaultInjector injector(8, options, util::Rng(11));
  for (std::size_t user = 0; user < 8; ++user) {
    const ClientFaults faults = injector.draw(0, user, 2);
    EXPECT_TRUE(faults.crashed);
    EXPECT_GE(faults.crash_fraction, 0.0);
    EXPECT_LT(faults.crash_fraction, 1.0);
    // A crashed client never transmits, so upload draws are skipped.
    EXPECT_EQ(faults.failed_attempts, 0u);
  }
}

TEST(FaultInjector, UploadAttemptsAreBoundedByBudget) {
  FaultOptions options = enabled_options();
  options.upload_failure_rate = 0.9;
  const FaultInjector injector(32, options, util::Rng(13));
  constexpr std::size_t kMaxAttempts = 3;
  bool saw_give_up = false;
  bool saw_success = false;
  for (std::size_t round = 0; round < 20; ++round) {
    for (std::size_t user = 0; user < 32; ++user) {
      const ClientFaults faults = injector.draw(round, user, kMaxAttempts);
      EXPECT_LE(faults.failed_attempts, kMaxAttempts);
      EXPECT_LE(faults.attempts(), kMaxAttempts);
      EXPECT_EQ(faults.upload_ok, faults.failed_attempts < kMaxAttempts);
      saw_give_up = saw_give_up || !faults.upload_ok;
      saw_success = saw_success || faults.upload_ok;
    }
  }
  EXPECT_TRUE(saw_give_up);
  EXPECT_TRUE(saw_success);
}

TEST(FaultInjector, SlowdownStaysInConfiguredRange) {
  FaultOptions options = enabled_options();
  options.straggler_rate = 1.0;
  options.straggler_slowdown = 3.0;
  const FaultInjector injector(16, options, util::Rng(17));
  for (std::size_t user = 0; user < 16; ++user) {
    const ClientFaults faults = injector.draw(0, user, 1);
    EXPECT_GE(faults.slowdown, 1.0);
    EXPECT_LE(faults.slowdown, 3.0);
  }
}

TEST(FaultInjector, RatesRoughlyMatchFrequencies) {
  FaultOptions options = enabled_options();
  options.crash_rate = 0.25;
  const FaultInjector injector(100, options, util::Rng(19));
  std::size_t crashes = 0;
  constexpr std::size_t kRounds = 40;
  for (std::size_t round = 0; round < kRounds; ++round) {
    for (std::size_t user = 0; user < 100; ++user) {
      crashes += injector.draw(round, user, 1).crashed ? 1 : 0;
    }
  }
  const double observed =
      static_cast<double>(crashes) / static_cast<double>(kRounds * 100);
  EXPECT_NEAR(observed, 0.25, 0.03);
}

// --- churn -----------------------------------------------------------------

TEST(FaultInjector, ChurnRemovesAndReturnsDevices) {
  FaultOptions options = enabled_options();
  options.leave_rate = 0.3;
  options.rejoin_rate = 0.5;
  FaultInjector injector(50, options, util::Rng(23));
  EXPECT_EQ(injector.away_count(), 0u);  // everyone starts present

  bool saw_departure = false;
  bool saw_return = false;
  std::vector<std::uint8_t> previous(injector.availability().begin(),
                                     injector.availability().end());
  for (std::size_t round = 0; round < 30; ++round) {
    injector.begin_round();
    const auto mask = injector.availability();
    ASSERT_EQ(mask.size(), 50u);
    for (std::size_t i = 0; i < mask.size(); ++i) {
      if (previous[i] != 0 && mask[i] == 0) saw_departure = true;
      if (previous[i] == 0 && mask[i] != 0) saw_return = true;
    }
    previous.assign(mask.begin(), mask.end());
  }
  EXPECT_TRUE(saw_departure);
  EXPECT_TRUE(saw_return);
}

TEST(FaultInjector, ChurnIsDeterministicGivenSeed) {
  FaultOptions options = enabled_options();
  options.leave_rate = 0.4;
  options.rejoin_rate = 0.4;
  FaultInjector a(20, options, util::Rng(29));
  FaultInjector b(20, options, util::Rng(29));
  for (std::size_t round = 0; round < 10; ++round) {
    a.begin_round();
    b.begin_round();
    const auto ma = a.availability();
    const auto mb = b.availability();
    EXPECT_TRUE(std::equal(ma.begin(), ma.end(), mb.begin(), mb.end()))
        << "round " << round;
  }
}

}  // namespace
}  // namespace helcfl::mec
