#include "nn/fire.h"

#include <gtest/gtest.h>

#include <cmath>

#include "gradcheck.h"
#include "nn/serialize.h"
#include "util/rng.h"

namespace helcfl::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(Fire, OutputShapeConcatenatesExpandBranches) {
  util::Rng rng(1);
  Fire fire(8, 4, 6, 10, rng);
  EXPECT_EQ(fire.out_channels(), 16u);
  const Tensor y = fire.forward(Tensor(Shape{2, 8, 5, 5}), false);
  EXPECT_EQ(y.shape(), Shape({2, 16, 5, 5}));
}

TEST(Fire, SpatialSizeIsPreserved) {
  util::Rng rng(2);
  Fire fire(3, 2, 4, 4, rng);
  const Tensor y = fire.forward(Tensor(Shape{1, 3, 7, 9}), false);
  EXPECT_EQ(y.shape(), Shape({1, 8, 7, 9}));
}

TEST(Fire, ParamsCoverAllThreeConvolutions) {
  util::Rng rng(3);
  Fire fire(8, 4, 6, 10, rng);
  // squeeze: 8*4*1*1 + 4; expand1: 4*6 + 6; expand3: 4*10*9 + 10.
  const std::size_t expected = (8 * 4 + 4) + (4 * 6 + 6) + (4 * 10 * 9 + 10);
  EXPECT_EQ(parameter_count(fire), expected);
  EXPECT_EQ(fire.params().size(), 6u);
}

TEST(Fire, OutputsAreNonNegative) {
  util::Rng rng(4);
  Fire fire(4, 2, 3, 3, rng);
  const Tensor y = fire.forward(testing::random_input(Shape{2, 4, 4, 4}, 5), false);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_GE(y[i], 0.0F);
}

TEST(Fire, BackwardMatchesExplicitComposition) {
  // Finite differences are unreliable at ReLU kinks (a bias perturbation
  // shifts the activation boundary of a whole channel), so instead verify
  // Fire exactly against a reference composition built from the already
  // gradient-checked Conv2D primitive plus manual ReLU and concat.
  util::Rng rng(6);
  Fire fire(2, 2, 2, 2, rng);
  const auto params = extract_parameters(fire);

  util::Rng scratch_rng(999);
  Conv2D squeeze(2, 2, 1, 1, 0, scratch_rng);
  Conv2D expand1(2, 2, 1, 1, 0, scratch_rng);
  Conv2D expand3(2, 2, 3, 1, 1, scratch_rng);
  // Fire's parameter layout: squeeze (4+2), expand1 (4+2), expand3 (36+2).
  load_parameters(squeeze, std::span<const float>(params).subspan(0, 6));
  load_parameters(expand1, std::span<const float>(params).subspan(6, 6));
  load_parameters(expand3, std::span<const float>(params).subspan(12, 38));

  const Tensor x = testing::random_input(Shape{1, 2, 3, 3}, 7);
  auto relu = [](Tensor t) {
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i] < 0.0F) t[i] = 0.0F;
    }
    return t;
  };

  fire.zero_grad();
  const Tensor y_fire = fire.forward(x, true);

  const Tensor s = relu(squeeze.forward(x, true));
  const Tensor a = relu(expand1.forward(s, true));
  const Tensor b = relu(expand3.forward(s, true));
  const std::size_t area = 9;
  Tensor y_ref(Shape{1, 4, 3, 3});
  for (std::size_t c = 0; c < 2; ++c) {
    for (std::size_t i = 0; i < area; ++i) {
      y_ref[c * area + i] = a[c * area + i];
      y_ref[(2 + c) * area + i] = b[c * area + i];
    }
  }
  ASSERT_EQ(y_fire.shape(), y_ref.shape());
  for (std::size_t i = 0; i < y_fire.size(); ++i) {
    EXPECT_FLOAT_EQ(y_fire[i], y_ref[i]);
  }

  // Backward with a fixed upstream gradient.
  Tensor dy(y_fire.shape());
  for (std::size_t i = 0; i < dy.size(); ++i) {
    dy[i] = 0.1F * static_cast<float>(i % 7) - 0.3F;
  }
  const Tensor dx_fire = fire.backward(dy);

  Tensor g1(Shape{1, 2, 3, 3});
  Tensor g3(Shape{1, 2, 3, 3});
  for (std::size_t c = 0; c < 2; ++c) {
    for (std::size_t i = 0; i < area; ++i) {
      g1[c * area + i] = a[c * area + i] > 0.0F ? dy[c * area + i] : 0.0F;
      g3[c * area + i] = b[c * area + i] > 0.0F ? dy[(2 + c) * area + i] : 0.0F;
    }
  }
  Tensor gs = expand1.backward(g1);
  const Tensor gs3 = expand3.backward(g3);
  for (std::size_t i = 0; i < gs.size(); ++i) {
    gs[i] = s[i] > 0.0F ? gs[i] + gs3[i] : 0.0F;
  }
  const Tensor dx_ref = squeeze.backward(gs);

  for (std::size_t i = 0; i < dx_fire.size(); ++i) {
    EXPECT_NEAR(dx_fire[i], dx_ref[i], 1e-6F);
  }
  const auto fire_grads = extract_gradients(fire);
  std::vector<float> ref_grads = extract_gradients(squeeze);
  for (const float g : extract_gradients(expand1)) ref_grads.push_back(g);
  for (const float g : extract_gradients(expand3)) ref_grads.push_back(g);
  ASSERT_EQ(fire_grads.size(), ref_grads.size());
  for (std::size_t i = 0; i < fire_grads.size(); ++i) {
    EXPECT_NEAR(fire_grads[i], ref_grads[i], 1e-5F);
  }
}

TEST(Fire, TrainingReducesLossOnTinyTask) {
  // Sanity: a Fire module + pooling head can fit a two-class toy problem.
  util::Rng rng(8);
  Fire fire(1, 2, 2, 2, rng);
  // Just check forward/backward run and produce finite values over steps.
  Tensor x = testing::random_input(Shape{2, 1, 4, 4}, 9);
  for (int step = 0; step < 3; ++step) {
    fire.zero_grad();
    const Tensor y = fire.forward(x, true);
    Tensor dy(y.shape());
    dy.fill(0.01F);
    const Tensor dx = fire.backward(dy);
    for (std::size_t i = 0; i < dx.size(); ++i) EXPECT_TRUE(std::isfinite(dx[i]));
  }
}

TEST(Fire, NameListsChannelCounts) {
  util::Rng rng(10);
  EXPECT_EQ(Fire(8, 4, 6, 10, rng).name(), "Fire(s=4, e1=6, e3=10)");
}

}  // namespace
}  // namespace helcfl::nn
