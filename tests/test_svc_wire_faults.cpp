// Tests for the deterministic wire-fault injector and the FaultyLink
// (svc/wire_faults.h): seed-for-seed reproducibility, rate extremes,
// delivery ordering under delays, and single-byte corruption semantics.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "svc/frame.h"
#include "svc/wire_faults.h"
#include "util/rng.h"

namespace svc = helcfl::svc;
using helcfl::util::Rng;

namespace {

std::vector<std::uint8_t> test_frame(std::uint64_t tag) {
  svc::DeviceReport report;
  report.device_id = tag;
  report.report_seq = tag + 1;
  report.t_cal_max_s = 0.5;
  report.t_com_s = 0.25;
  return svc::encode_frame(svc::encode(report));
}

}  // namespace

TEST(WireFaults, OptionsValidate) {
  svc::WireFaultOptions options;
  options.drop_rate = 1.5;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options.drop_rate = 0.1;
  options.max_delay_ticks = 0;
  options.delay_rate = 0.5;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options.max_delay_ticks = 4;
  EXPECT_NO_THROW(options.validate());
}

TEST(WireFaults, PlansAreSeedDeterministic) {
  svc::WireFaultOptions options;
  options.drop_rate = 0.2;
  options.corrupt_rate = 0.2;
  options.duplicate_rate = 0.2;
  options.delay_rate = 0.5;
  svc::WireFaultInjector a(options, Rng(99).fork(1));
  svc::WireFaultInjector b(options, Rng(99).fork(1));
  for (int i = 0; i < 500; ++i) {
    const auto pa = a.plan_frame();
    const auto pb = b.plan_frame();
    EXPECT_EQ(pa.dropped, pb.dropped);
    ASSERT_EQ(pa.copies, pb.copies);
    for (std::size_t c = 0; c < pa.copies; ++c) {
      EXPECT_EQ(pa.delivery[c].delay_ticks, pb.delivery[c].delay_ticks);
      EXPECT_EQ(pa.delivery[c].corrupted, pb.delivery[c].corrupted);
      EXPECT_EQ(pa.delivery[c].corrupt_index, pb.delivery[c].corrupt_index);
      EXPECT_EQ(pa.delivery[c].corrupt_mask, pb.delivery[c].corrupt_mask);
    }
  }
}

TEST(WireFaults, DefaultLinkIsPerfectAndInstant) {
  svc::FaultyLink link;
  const auto frame = test_frame(7);
  link.send(frame, 5);
  const auto delivered = link.advance(5);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], frame);
  EXPECT_EQ(link.frames_dropped(), 0u);
  EXPECT_EQ(link.frames_corrupted(), 0u);
}

TEST(WireFaults, DropRateOneLosesEverything) {
  svc::WireFaultOptions options;
  options.drop_rate = 1.0;
  svc::FaultyLink link(svc::WireFaultInjector(options, Rng(1).fork(0)));
  for (std::uint64_t i = 0; i < 20; ++i) link.send(test_frame(i), i);
  EXPECT_TRUE(link.advance(1000).empty());
  EXPECT_EQ(link.frames_dropped(), 20u);
  EXPECT_EQ(link.in_flight(), 0u);
}

TEST(WireFaults, DuplicateRateOneDeliversTwoCopies) {
  svc::WireFaultOptions options;
  options.duplicate_rate = 1.0;
  svc::FaultyLink link(svc::WireFaultInjector(options, Rng(2).fork(0)));
  link.send(test_frame(3), 0);
  const auto delivered = link.advance(0);
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0], delivered[1]);
  EXPECT_EQ(link.frames_duplicated(), 1u);
}

TEST(WireFaults, CorruptionFlipsExactlyOneByte) {
  svc::WireFaultOptions options;
  options.corrupt_rate = 1.0;
  svc::FaultyLink link(svc::WireFaultInjector(options, Rng(3).fork(0)));
  const auto original = test_frame(11);
  link.send(original, 0);
  const auto delivered = link.advance(0);
  ASSERT_EQ(delivered.size(), 1u);
  ASSERT_EQ(delivered[0].size(), original.size());
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    diffs += delivered[0][i] != original[i] ? 1 : 0;
  }
  EXPECT_EQ(diffs, 1u);
  EXPECT_EQ(link.frames_corrupted(), 1u);
}

TEST(WireFaults, DelaysHoldAndReorderFrames) {
  svc::WireFaultOptions options;
  options.delay_rate = 1.0;
  options.max_delay_ticks = 8;
  svc::FaultyLink link(svc::WireFaultInjector(options, Rng(4).fork(0)));
  for (std::uint64_t i = 0; i < 16; ++i) link.send(test_frame(i), 0);
  EXPECT_EQ(link.in_flight(), 16u);
  // Nothing is due at tick 0 (every delivery was postponed >= 1 tick).
  EXPECT_TRUE(link.advance(0).empty());
  // Releasing tick by tick yields everything, in nondecreasing due order.
  std::size_t total = 0;
  for (std::uint64_t tick = 1; tick <= options.max_delay_ticks; ++tick) {
    total += link.advance(tick).size();
  }
  EXPECT_EQ(total, 16u);
  EXPECT_EQ(link.frames_delayed(), 16u);
  EXPECT_EQ(link.in_flight(), 0u);
}

TEST(WireFaults, TickOrderBreaksTiesBySendOrder) {
  // A perfect link delivers in FIFO order even when everything shares one
  // due tick — the (tick, order) heap must not scramble equal keys.
  svc::FaultyLink link;
  std::vector<std::vector<std::uint8_t>> sent;
  for (std::uint64_t i = 0; i < 10; ++i) {
    sent.push_back(test_frame(i));
    link.send(sent.back(), 42);
  }
  const auto delivered = link.advance(42);
  ASSERT_EQ(delivered.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(delivered[i], sent[i]) << "reordered at " << i;
  }
}
