// Tests for the client retry policy (svc/retry.h): exponential growth,
// ceiling, jitter bounds, option validation, and an end-to-end lossy-link
// exercise proving bounded attempts actually bound the traffic.
#include <gtest/gtest.h>

#include <cstdint>

#include "svc/client.h"
#include "svc/retry.h"
#include "svc/wire_faults.h"
#include "util/rng.h"

namespace svc = helcfl::svc;
using helcfl::util::Rng;

TEST(Retry, OptionsValidate) {
  svc::RetryOptions options;
  options.base_delay_ticks = 0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options.base_delay_ticks = 4;
  options.max_delay_ticks = 2;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options.max_delay_ticks = 64;
  options.backoff_multiplier = 0.5;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options.backoff_multiplier = 2.0;
  options.jitter = 1.0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options.jitter = 0.25;
  options.max_attempts = 0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options.max_attempts = 8;
  EXPECT_NO_THROW(options.validate());
}

TEST(Retry, JitterFreeDelaysDoubleThenSaturate) {
  svc::RetryOptions options;
  options.base_delay_ticks = 2;
  options.backoff_multiplier = 2.0;
  options.max_delay_ticks = 16;
  options.jitter = 0.0;
  svc::RetryPolicy policy(options);
  Rng rng(7);
  EXPECT_EQ(policy.delay_before_retry(1, rng), 2u);
  EXPECT_EQ(policy.delay_before_retry(2, rng), 4u);
  EXPECT_EQ(policy.delay_before_retry(3, rng), 8u);
  EXPECT_EQ(policy.delay_before_retry(4, rng), 16u);
  EXPECT_EQ(policy.delay_before_retry(5, rng), 16u);   // ceiling
  EXPECT_EQ(policy.delay_before_retry(60, rng), 16u);  // no overflow
}

TEST(Retry, JitterStaysWithinBand) {
  svc::RetryOptions options;
  options.base_delay_ticks = 8;
  options.backoff_multiplier = 1.0;  // isolate the jitter factor
  options.max_delay_ticks = 8;
  options.jitter = 0.25;
  svc::RetryPolicy policy(options);
  Rng rng(11);
  bool saw_below = false;
  bool saw_above = false;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t d = policy.delay_before_retry(1, rng);
    EXPECT_GE(d, 6u);   // 8 * 0.75
    EXPECT_LE(d, 10u);  // 8 * 1.25
    saw_below = saw_below || d < 8;
    saw_above = saw_above || d > 8;
  }
  EXPECT_TRUE(saw_below);
  EXPECT_TRUE(saw_above);
}

TEST(Retry, DelayIsAtLeastOneTickAndOneBased) {
  svc::RetryOptions options;
  options.base_delay_ticks = 1;
  options.max_delay_ticks = 1;
  options.jitter = 0.9;  // jittered value can round toward 0
  svc::RetryPolicy policy(options);
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    EXPECT_GE(policy.delay_before_retry(1, rng), 1u);
  }
  EXPECT_THROW(policy.delay_before_retry(0, rng), std::invalid_argument);
}

TEST(Retry, ClientGivesUpAfterBoundedAttempts) {
  // A client sending into a 100%-loss link must stop at max_attempts and
  // count the give-up instead of retrying forever.
  svc::RetryOptions retry;
  retry.base_delay_ticks = 1;
  retry.backoff_multiplier = 1.0;
  retry.max_delay_ticks = 1;
  retry.jitter = 0.0;
  retry.max_attempts = 5;
  svc::ServiceClient client(retry, Rng(17).fork(0));

  svc::DeviceReport report;
  report.device_id = 0;
  report.report_seq = 1;
  report.t_cal_max_s = 0.5;
  report.t_com_s = 0.25;
  client.send_report(report, 0);

  std::uint64_t transmissions = 0;
  for (std::uint64_t tick = 0; tick < 50 && !client.idle(); ++tick) {
    transmissions += client.poll(tick).size();  // frames go nowhere
  }
  EXPECT_TRUE(client.idle());
  EXPECT_EQ(transmissions, 5u);
  EXPECT_EQ(client.retries(), 4u);  // transmissions beyond the first
  EXPECT_EQ(client.exhausted(), 1u);
}
