#include "sched/fedl.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "fl_fixtures.h"

namespace helcfl::sched {
namespace {

std::vector<UserInfo> fleet_of(std::size_t n) {
  const auto devices = testing::linear_fleet(n, 20);
  return build_user_info(devices, testing::paper_channel(), 4e6);
}

TEST(Fedl, RejectsNonPositiveKappa) {
  EXPECT_THROW(FedlSelection(0.1, 0.0, util::Rng(1)), std::invalid_argument);
  EXPECT_THROW(FedlSelection(0.1, -1.0, util::Rng(1)), std::invalid_argument);
}

TEST(Fedl, ClosedFormFrequency) {
  // f* = (kappa / alpha)^(1/3); kappa = 0.2, alpha = 2e-28 -> 1e9.
  EXPECT_NEAR(FedlSelection::unconstrained_frequency(0.2, 2e-28), 1e9, 1.0);
}

TEST(Fedl, FrequencyGrowsWithKappa) {
  EXPECT_LT(FedlSelection::unconstrained_frequency(0.1, 2e-28),
            FedlSelection::unconstrained_frequency(1.0, 2e-28));
}

TEST(Fedl, SelectsRequestedFraction) {
  const auto users = fleet_of(50);
  FedlSelection strategy(0.2, 0.2, util::Rng(2));
  const Decision d = strategy.decide({users}, 0);
  EXPECT_EQ(d.selected.size(), 10u);
  const std::set<std::size_t> unique(d.selected.begin(), d.selected.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Fedl, FrequenciesAreClampedIntoDvfsRange) {
  const auto users = fleet_of(50);
  // Huge kappa: f* far above every f_max -> all clamp to f_max.
  FedlSelection fast(0.2, 1e6, util::Rng(3));
  const Decision d_fast = fast.decide({users}, 0);
  for (std::size_t k = 0; k < d_fast.selected.size(); ++k) {
    EXPECT_DOUBLE_EQ(d_fast.frequencies_hz[k],
                     users[d_fast.selected[k]].device.f_max_hz);
  }
  // Tiny kappa: f* below f_min -> all clamp to f_min.
  FedlSelection slow(0.2, 1e-6, util::Rng(4));
  const Decision d_slow = slow.decide({users}, 0);
  for (std::size_t k = 0; k < d_slow.selected.size(); ++k) {
    EXPECT_DOUBLE_EQ(d_slow.frequencies_hz[k],
                     users[d_slow.selected[k]].device.f_min_hz);
  }
}

TEST(Fedl, MidKappaGivesInteriorFrequency) {
  const auto users = fleet_of(20);
  FedlSelection strategy(0.5, 0.2, util::Rng(5));  // f* = 1 GHz
  const Decision d = strategy.decide({users}, 0);
  bool found_interior = false;
  for (std::size_t k = 0; k < d.selected.size(); ++k) {
    const auto& device = users[d.selected[k]].device;
    if (device.f_max_hz > 1e9) {
      EXPECT_NEAR(d.frequencies_hz[k], 1e9, 1.0);
      found_interior = true;
    }
  }
  EXPECT_TRUE(found_interior);
}

TEST(Fedl, SelectionMatchesClassicFlWithSameRng) {
  // The paper: "FEDL takes the same user selection method as Classic FL".
  const auto users = fleet_of(40);
  FedlSelection fedl(0.25, 0.2, util::Rng(6));
  sched::Decision d_fedl = fedl.decide({users}, 0);

  util::Rng rng(6);
  const auto expected = rng.sample_without_replacement(40, 10);
  EXPECT_EQ(d_fedl.selected, expected);
}

TEST(Fedl, ResetReplaysSequence) {
  const auto users = fleet_of(30);
  FedlSelection strategy(0.2, 0.2, util::Rng(7));
  const Decision first = strategy.decide({users}, 0);
  (void)strategy.decide({users}, 1);
  strategy.reset();
  EXPECT_EQ(strategy.decide({users}, 0).selected, first.selected);
}

TEST(Fedl, NameIsFEDL) {
  FedlSelection strategy(0.1, 0.2, util::Rng(8));
  EXPECT_EQ(strategy.name(), "FEDL");
}

}  // namespace
}  // namespace helcfl::sched
