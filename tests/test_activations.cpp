#include "nn/activations.h"

#include <gtest/gtest.h>

#include <cmath>

#include "gradcheck.h"

namespace helcfl::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

Tensor away_from_kinks(Shape shape, std::uint64_t seed) {
  // Inputs bounded away from 0 so finite differences don't straddle the
  // ReLU kink.
  Tensor x = testing::random_input(std::move(shape), seed);
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (std::abs(x[i]) < 0.05F) x[i] = x[i] < 0.0F ? -0.05F : 0.05F;
  }
  return x;
}

TEST(ReLU, ClampsNegatives) {
  ReLU relu;
  Tensor x(Shape{4}, {-1.0F, 0.0F, 0.5F, 2.0F});
  const Tensor y = relu.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 0.0F);
  EXPECT_FLOAT_EQ(y[1], 0.0F);
  EXPECT_FLOAT_EQ(y[2], 0.5F);
  EXPECT_FLOAT_EQ(y[3], 2.0F);
}

TEST(ReLU, BackwardMasks) {
  ReLU relu;
  Tensor x(Shape{3}, {-1.0F, 1.0F, 2.0F});
  (void)relu.forward(x, true);
  Tensor dy(Shape{3}, {10.0F, 10.0F, 10.0F});
  const Tensor dx = relu.backward(dy);
  EXPECT_FLOAT_EQ(dx[0], 0.0F);
  EXPECT_FLOAT_EQ(dx[1], 10.0F);
  EXPECT_FLOAT_EQ(dx[2], 10.0F);
}

TEST(ReLU, GradientCheck) {
  ReLU relu;
  testing::check_gradients(relu, away_from_kinks(Shape{2, 8}, 1));
}

TEST(ReLU, PreservesShape) {
  ReLU relu;
  const Tensor y = relu.forward(Tensor(Shape{2, 3, 4, 5}), false);
  EXPECT_EQ(y.shape(), Shape({2, 3, 4, 5}));
}

TEST(LeakyReLU, AppliesSlopeToNegatives) {
  LeakyReLU leaky(0.1F);
  Tensor x(Shape{2}, {-2.0F, 3.0F});
  const Tensor y = leaky.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], -0.2F);
  EXPECT_FLOAT_EQ(y[1], 3.0F);
}

TEST(LeakyReLU, BackwardScalesNegatives) {
  LeakyReLU leaky(0.1F);
  Tensor x(Shape{2}, {-2.0F, 3.0F});
  (void)leaky.forward(x, true);
  Tensor dy(Shape{2}, {1.0F, 1.0F});
  const Tensor dx = leaky.backward(dy);
  EXPECT_FLOAT_EQ(dx[0], 0.1F);
  EXPECT_FLOAT_EQ(dx[1], 1.0F);
}

TEST(LeakyReLU, GradientCheck) {
  LeakyReLU leaky(0.2F);
  testing::check_gradients(leaky, away_from_kinks(Shape{3, 5}, 2));
}

TEST(Tanh, MatchesStdTanh) {
  Tanh tanh_layer;
  Tensor x(Shape{3}, {-1.0F, 0.0F, 2.0F});
  const Tensor y = tanh_layer.forward(x, false);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(y[i], std::tanh(x[i]), 1e-6F);
  }
}

TEST(Tanh, SaturatesToUnitRange) {
  Tanh tanh_layer;
  Tensor x(Shape{2}, {-100.0F, 100.0F});
  const Tensor y = tanh_layer.forward(x, false);
  EXPECT_NEAR(y[0], -1.0F, 1e-6F);
  EXPECT_NEAR(y[1], 1.0F, 1e-6F);
}

TEST(Tanh, GradientCheck) {
  Tanh tanh_layer;
  testing::check_gradients(tanh_layer, testing::random_input(Shape{2, 6}, 3));
}

TEST(Activations, StatelessLayersHaveNoParams) {
  ReLU relu;
  LeakyReLU leaky(0.1F);
  Tanh tanh_layer;
  EXPECT_TRUE(relu.params().empty());
  EXPECT_TRUE(leaky.params().empty());
  EXPECT_TRUE(tanh_layer.params().empty());
}

}  // namespace
}  // namespace helcfl::nn
