// Property-based sweeps (TEST_P) over randomized inputs: invariants of the
// TDMA scheduler, Algorithm 3, Algorithm 2, FedAvg, and the partitioners
// must hold for every draw.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <set>
#include <string>

#include "core/dvfs.h"
#include "core/greedy_decay_selection.h"
#include "core/helcfl_scheduler.h"
#include "data/partition.h"
#include "mec/battery.h"
#include "nn/compression.h"
#include "nn/models.h"
#include "nn/serialize.h"
#include "fl/server.h"
#include "fl/trainer.h"
#include "mec/cost_model.h"
#include "mec/tdma.h"
#include "sched/scheduler.h"
#include "fl_fixtures.h"
#include "resume_fixtures.h"
#include "util/rng.h"

namespace helcfl {
namespace {

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  util::Rng rng() const { return util::Rng(GetParam()); }
};

// --- TDMA invariants -------------------------------------------------------

class TdmaProperty : public SeededProperty {};

TEST_P(TdmaProperty, ScheduleInvariants) {
  util::Rng r = rng();
  const std::size_t n = 1 + static_cast<std::size_t>(r.uniform_int(0, 19));
  std::vector<double> compute(n);
  std::vector<double> upload(n);
  for (std::size_t i = 0; i < n; ++i) {
    compute[i] = r.uniform(0.0, 5.0);
    upload[i] = r.uniform(0.0, 2.0);
  }
  const mec::TdmaSchedule s = mec::schedule_uploads(compute, upload);
  ASSERT_EQ(s.slots.size(), n);

  std::set<std::size_t> seen;
  double prev_end = 0.0;
  double sum_slack = 0.0;
  for (const auto& slot : s.slots) {
    // Every user scheduled exactly once.
    EXPECT_TRUE(seen.insert(slot.index).second);
    // Upload cannot start before computing ends or before the link frees.
    EXPECT_GE(slot.upload_start, slot.compute_end - 1e-12);
    EXPECT_GE(slot.upload_start, prev_end - 1e-12);
    // Slack is exactly the wait.
    EXPECT_NEAR(slot.slack_s, slot.upload_start - slot.compute_end, 1e-12);
    EXPECT_GE(slot.slack_s, 0.0);
    // Durations are preserved.
    EXPECT_NEAR(slot.upload_end - slot.upload_start, upload[slot.index], 1e-12);
    prev_end = slot.upload_end;
    sum_slack += slot.slack_s;
  }
  EXPECT_NEAR(s.total_slack_s, sum_slack, 1e-9);
  EXPECT_NEAR(s.round_delay_s, prev_end, 1e-12);

  // Lower bounds: round cannot beat the slowest compute or the sum of
  // uploads after the earliest compute finisher.
  double max_compute = 0.0;
  double sum_upload = 0.0;
  double min_compute = compute[0];
  for (std::size_t i = 0; i < n; ++i) {
    max_compute = std::max(max_compute, compute[i] + upload[i]);
    sum_upload += upload[i];
    min_compute = std::min(min_compute, compute[i]);
  }
  EXPECT_GE(s.round_delay_s, max_compute - 1e-12);
  EXPECT_GE(s.round_delay_s, min_compute + sum_upload - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TdmaProperty, ::testing::Range<std::uint64_t>(1, 26));

// --- Algorithm 3 invariants --------------------------------------------------

class DvfsProperty : public SeededProperty {};

TEST_P(DvfsProperty, DelayPreservedEnergyReducedFrequenciesLegal) {
  util::Rng r = rng();
  const std::size_t n = 2 + static_cast<std::size_t>(r.uniform_int(0, 10));
  std::vector<mec::Device> devices;
  for (std::size_t i = 0; i < n; ++i) {
    devices.push_back(testing::make_device(
        i, r.uniform(0.31, 2.0),
        static_cast<std::size_t>(r.uniform_int(5, 120)),
        std::exp(r.uniform(std::log(3e-8), std::log(3e-7)))));
  }
  const auto users =
      sched::build_user_info(devices, testing::paper_channel(), 4e6);
  std::vector<std::size_t> selected(n);
  for (std::size_t i = 0; i < n; ++i) selected[i] = i;

  const core::FrequencyPlan plan = core::determine_frequencies({users}, selected);
  ASSERT_EQ(plan.assignments.size(), n);

  // (1) Frequencies within DVFS range (constraint 15).
  double dvfs_energy = 0.0;
  double max_energy = 0.0;
  for (const auto& a : plan.assignments) {
    const auto& device = users[a.user].device;
    EXPECT_GE(a.frequency_hz, device.f_min_hz - 1e-6);
    EXPECT_LE(a.frequency_hz, device.f_max_hz + 1e-6);
    dvfs_energy += mec::compute_energy_j(device, a.frequency_hz);
    max_energy += mec::compute_energy_j(device, device.f_max_hz);
  }
  // (2) Never more energy than running everyone at f_max.
  EXPECT_LE(dvfs_energy, max_energy + 1e-12);

  // (3) Round delay identical to the all-max TDMA schedule.
  std::vector<double> compute_max;
  std::vector<double> upload;
  for (const auto i : selected) {
    compute_max.push_back(users[i].t_cal_max_s);
    upload.push_back(users[i].t_com_s);
  }
  const double baseline = mec::schedule_uploads(compute_max, upload).round_delay_s;
  EXPECT_NEAR(plan.round_delay_s, baseline, 1e-6);

  // (4) The plan's own timeline is consistent: uploads serialized.
  for (std::size_t k = 1; k < plan.assignments.size(); ++k) {
    EXPECT_GE(plan.assignments[k].upload_start_s,
              plan.assignments[k - 1].upload_end_s - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DvfsProperty, ::testing::Range<std::uint64_t>(1, 26));

// --- Algorithm 2 invariants --------------------------------------------------

class GreedyDecayProperty : public SeededProperty {};

TEST_P(GreedyDecayProperty, SelectionInvariants) {
  util::Rng r = rng();
  const std::size_t q = 5 + static_cast<std::size_t>(r.uniform_int(0, 45));
  std::vector<std::pair<double, double>> delays;
  for (std::size_t i = 0; i < q; ++i) {
    delays.push_back({r.uniform(0.1, 10.0), r.uniform(0.1, 3.0)});
  }
  const auto users = testing::users_with_delays(delays);
  const double fraction = r.uniform(0.05, 0.5);
  const double eta = r.uniform(0.5, 0.95);
  core::GreedyDecaySelector selector(fraction, eta);

  const std::size_t expected_n = sched::selection_count(q, fraction);
  std::vector<std::size_t> total_counts(q, 0);
  for (std::size_t round = 0; round < 60; ++round) {
    const auto selected = selector.select({users});
    // Always exactly N distinct users.
    EXPECT_EQ(selected.size(), expected_n);
    const std::set<std::size_t> unique(selected.begin(), selected.end());
    EXPECT_EQ(unique.size(), expected_n);
    for (const auto i : selected) {
      EXPECT_LT(i, q);
      ++total_counts[i];
    }
  }
  // Counters equal observed selections.
  const auto counters = selector.appearance_counts();
  for (std::size_t i = 0; i < q; ++i) EXPECT_EQ(counters[i], total_counts[i]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyDecayProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

// --- FedAvg properties -------------------------------------------------------

class FedAvgProperty : public SeededProperty {};

TEST_P(FedAvgProperty, AverageIsWithinComponentwiseHull) {
  util::Rng r = rng();
  const std::size_t dim = 1 + static_cast<std::size_t>(r.uniform_int(0, 30));
  const std::size_t k = 1 + static_cast<std::size_t>(r.uniform_int(0, 7));
  std::vector<std::vector<float>> weights(k, std::vector<float>(dim));
  std::vector<fl::WeightedModel> uploads;
  std::vector<std::size_t> counts(k);
  for (std::size_t j = 0; j < k; ++j) {
    for (auto& w : weights[j]) w = static_cast<float>(r.normal());
    counts[j] = 1 + static_cast<std::size_t>(r.uniform_int(0, 99));
  }
  for (std::size_t j = 0; j < k; ++j) uploads.push_back({weights[j], counts[j]});

  const std::vector<float> avg = fl::fedavg(uploads);
  ASSERT_EQ(avg.size(), dim);
  for (std::size_t i = 0; i < dim; ++i) {
    float lo = weights[0][i];
    float hi = weights[0][i];
    for (std::size_t j = 1; j < k; ++j) {
      lo = std::min(lo, weights[j][i]);
      hi = std::max(hi, weights[j][i]);
    }
    EXPECT_GE(avg[i], lo - 1e-5F);
    EXPECT_LE(avg[i], hi + 1e-5F);
  }
}

TEST_P(FedAvgProperty, IdenticalUploadsAreFixedPoint) {
  util::Rng r = rng();
  const std::size_t dim = 1 + static_cast<std::size_t>(r.uniform_int(0, 20));
  std::vector<float> w(dim);
  for (auto& v : w) v = static_cast<float>(r.normal());
  std::vector<fl::WeightedModel> uploads = {{w, 3}, {w, 17}, {w, 1}};
  const std::vector<float> avg = fl::fedavg(uploads);
  for (std::size_t i = 0; i < dim; ++i) EXPECT_NEAR(avg[i], w[i], 1e-6F);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FedAvgProperty, ::testing::Range<std::uint64_t>(1, 16));

// --- Staleness-discounted FedAvg (docs/ASYNC.md) -----------------------------

class FedAvgDiscountedProperty : public SeededProperty {};

TEST_P(FedAvgDiscountedProperty, UnitDiscountDegeneratesToFedAvgBitwise) {
  // discount == 1.0 for every upload must reproduce fedavg() *bitwise*:
  // x * 1.0 is x in IEEE-754 and the accumulation order is identical.  This
  // is the arithmetic half of the sync-equivalence contract.
  util::Rng r = rng();
  const std::size_t dim = 1 + static_cast<std::size_t>(r.uniform_int(0, 40));
  const std::size_t k = 1 + static_cast<std::size_t>(r.uniform_int(0, 7));
  std::vector<std::vector<float>> weights(k, std::vector<float>(dim));
  std::vector<fl::WeightedModel> plain;
  std::vector<fl::DiscountedModel> discounted;
  for (std::size_t j = 0; j < k; ++j) {
    for (auto& w : weights[j]) w = static_cast<float>(r.normal());
    const std::size_t count = 1 + static_cast<std::size_t>(r.uniform_int(0, 99));
    plain.push_back({weights[j], count});
    discounted.push_back({weights[j], count, 1.0});
  }
  EXPECT_EQ(fl::fedavg_discounted(discounted), fl::fedavg(plain));
}

TEST_P(FedAvgDiscountedProperty, AverageIsWithinComponentwiseHull) {
  // Any positive discounts: still a convex combination per component.
  util::Rng r = rng();
  const std::size_t dim = 1 + static_cast<std::size_t>(r.uniform_int(0, 30));
  const std::size_t k = 1 + static_cast<std::size_t>(r.uniform_int(0, 7));
  std::vector<std::vector<float>> weights(k, std::vector<float>(dim));
  std::vector<fl::DiscountedModel> uploads;
  for (std::size_t j = 0; j < k; ++j) {
    for (auto& w : weights[j]) w = static_cast<float>(r.normal());
    uploads.push_back({weights[j],
                       1 + static_cast<std::size_t>(r.uniform_int(0, 99)),
                       r.uniform(0.01, 1.0)});
  }
  const std::vector<float> avg = fl::fedavg_discounted(uploads);
  ASSERT_EQ(avg.size(), dim);
  for (std::size_t i = 0; i < dim; ++i) {
    float lo = weights[0][i];
    float hi = weights[0][i];
    for (std::size_t j = 1; j < k; ++j) {
      lo = std::min(lo, weights[j][i]);
      hi = std::max(hi, weights[j][i]);
    }
    EXPECT_GE(avg[i], lo - 1e-5F);
    EXPECT_LE(avg[i], hi + 1e-5F);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FedAvgDiscountedProperty,
                         ::testing::Range<std::uint64_t>(1, 16));

TEST(FedAvgDiscountedValidation, DegenerateBuffersAreRejected) {
  const std::vector<float> w = {1.0F, 2.0F};
  const std::vector<float> short_w = {1.0F};
  {  // Empty buffer.
    EXPECT_THROW(fl::fedavg_discounted({}), std::invalid_argument);
  }
  {  // Dimension mismatch.
    const std::vector<fl::DiscountedModel> uploads = {{w, 3, 1.0},
                                                      {short_w, 3, 1.0}};
    EXPECT_THROW(fl::fedavg_discounted(uploads), std::invalid_argument);
  }
  {  // Non-finite and negative discounts.
    const std::vector<fl::DiscountedModel> nan_uploads = {
        {w, 3, std::numeric_limits<double>::quiet_NaN()}};
    EXPECT_THROW(fl::fedavg_discounted(nan_uploads), std::invalid_argument);
    const std::vector<fl::DiscountedModel> neg_uploads = {{w, 3, -0.5}};
    EXPECT_THROW(fl::fedavg_discounted(neg_uploads), std::invalid_argument);
  }
  {  // The division-by-zero guard: every entry discounted or sampled to
     // zero leaves no mass to average.
    const std::vector<fl::DiscountedModel> zero_discount = {{w, 3, 0.0},
                                                            {w, 9, 0.0}};
    EXPECT_THROW(fl::fedavg_discounted(zero_discount), std::invalid_argument);
    const std::vector<fl::DiscountedModel> zero_samples = {{w, 0, 1.0},
                                                           {w, 0, 0.7}};
    EXPECT_THROW(fl::fedavg_discounted(zero_samples), std::invalid_argument);
  }
  {  // But any positive mass among zeros is fine (survivor defines it).
    const std::vector<fl::DiscountedModel> one_alive = {{w, 3, 0.0},
                                                        {w, 5, 0.25}};
    EXPECT_EQ(fl::fedavg_discounted(one_alive), std::vector<float>(w));
  }
}

// --- Zero-survivor rounds ----------------------------------------------------

// A straggler cutoff tighter than every arrival drops the entire cohort:
// every round fails its quorum with zero survivors, report_completion
// receives an all-zero mask, and no aggregation (hence no division by a
// zero total weight) is ever attempted.  The run must complete cleanly
// with the global model untouched.
TEST(ZeroSurvivorRound, CutoffDroppingEveryArrivalCompletesCleanly) {
  const data::TrainTestSplit split = testing::tiny_split(48, 24, 90);
  constexpr std::size_t kUsers = 6;
  util::Rng partition_rng(91);
  const data::Partition partition =
      data::iid_partition(split.train.size(), kUsers, partition_rng);
  std::vector<mec::Device> devices =
      testing::linear_fleet(kUsers, partition[0].size());
  for (std::size_t i = 0; i < kUsers; ++i) {
    devices[i].num_samples = partition[i].size();
  }
  util::Rng model_rng(92);
  const std::unique_ptr<nn::Sequential> model = nn::make_model(
      nn::ModelKind::kLogistic, split.train.spec(), 10, model_rng);
  const std::vector<float> initial = nn::extract_parameters(*model);

  core::HelcflScheduler strategy({.fraction = 0.5, .eta = 0.9});
  fl::TrainerOptions options;
  options.max_rounds = 3;
  options.client.learning_rate = 0.1F;
  options.client.local_steps = 1;
  options.client.batch_size = 4;
  options.model_size_bits = 4e6;
  options.seed = 7;
  options.straggler_cutoff_s = 1e-9;  // tighter than any compute+upload
  options.min_clients = 1;

  fl::FederatedTrainer trainer(*model, split.train, split.test, partition,
                               devices, testing::paper_channel(), strategy,
                               options);
  const fl::TrainingHistory history = trainer.run();

  ASSERT_EQ(history.size(), 3U);
  for (const fl::RoundRecord& record : history.rounds()) {
    EXPECT_FALSE(record.selected.empty());
    EXPECT_EQ(record.survivors, 0U);
    EXPECT_EQ(record.dropped_late, record.selected.size());
    EXPECT_TRUE(record.quorum_failed);
    EXPECT_TRUE(record.aggregated.empty());
    // The cohort's energy was spent for nothing — and accounted as such.
    EXPECT_GT(record.wasted_energy_j, 0.0);
  }
  // No aggregation ever ran: the global model is still the initial one.
  EXPECT_EQ(nn::extract_parameters(*model), initial);
  // The strategy absorbed three all-zero completion masks and still
  // produces a well-formed next decision.
  const auto users =
      sched::build_user_info(devices, testing::paper_channel(), 4e6);
  const sched::Decision next = strategy.decide({users}, 3);
  EXPECT_EQ(next.selected.size(), sched::selection_count(kUsers, 0.5));
}

// Strategy-level contract: an all-zero completion mask must be accepted by
// every stateful strategy without corrupting its later decisions.
TEST(ZeroSurvivorRound, AllZeroCompletionMaskIsAbsorbedByStrategies) {
  const auto users = testing::users_with_delays(
      {{1.0, 0.3}, {2.0, 0.3}, {3.0, 0.3}, {4.0, 0.3}, {5.0, 0.3}, {6.0, 0.3}});
  for (const std::string& name : testing::resume_strategies()) {
    SCOPED_TRACE(name);
    const auto strategy = testing::make_resume_strategy(name);
    for (std::size_t round = 0; round < 4; ++round) {
      const sched::Decision decision = strategy->decide({users}, round);
      ASSERT_FALSE(decision.selected.empty());
      const std::vector<std::uint8_t> none(decision.selected.size(), 0);
      strategy->report_completion(round, decision, none);
    }
    const sched::Decision after = strategy->decide({users}, 4);
    EXPECT_FALSE(after.selected.empty());
    for (const std::size_t user : after.selected) EXPECT_LT(user, users.size());
  }
}

// --- Partition properties ----------------------------------------------------

class PartitionProperty : public SeededProperty {};

TEST_P(PartitionProperty, BothPartitionersAreExactCovers) {
  util::Rng r = rng();
  const std::size_t users = 2 + static_cast<std::size_t>(r.uniform_int(0, 48));
  const std::size_t shards_per_user = 1 + static_cast<std::size_t>(r.uniform_int(0, 4));
  const std::size_t samples =
      users * shards_per_user * (1 + static_cast<std::size_t>(r.uniform_int(0, 20)));

  std::vector<std::int32_t> labels(samples);
  for (auto& l : labels) l = static_cast<std::int32_t>(r.uniform_int(0, 9));

  util::Rng r1 = r.fork(1);
  const data::Partition iid = data::iid_partition(samples, users, r1);
  EXPECT_TRUE(data::is_exact_cover(iid, samples));

  util::Rng r2 = r.fork(2);
  const data::Partition shard =
      data::shard_noniid_partition(labels, users, shards_per_user, r2);
  EXPECT_TRUE(data::is_exact_cover(shard, samples));

  // Non-IID class coverage: each of the 9 label boundaries lies inside at
  // most one shard, so total coverage <= total shards + (classes - 1).
  const auto coverage = data::classes_per_user(shard, labels, 10);
  std::size_t total_coverage = 0;
  for (const auto c : coverage) total_coverage += c;
  EXPECT_LE(total_coverage, users * shards_per_user + 9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

// --- Compression properties ---------------------------------------------------

class CompressionProperty : public SeededProperty {};

TEST_P(CompressionProperty, QuantizationInvariants) {
  util::Rng r = rng();
  const std::size_t n = 1 + static_cast<std::size_t>(r.uniform_int(0, 499));
  std::vector<float> w(n);
  for (auto& v : w) v = static_cast<float>(r.normal(0.0, 2.0));
  float max_abs = 0.0F;
  for (const float v : w) max_abs = std::max(max_abs, std::abs(v));

  double prev_error = -1.0;
  for (const unsigned bits : {2u, 4u, 8u, 12u}) {
    const nn::CompressedModel c = nn::compress_uniform_quantization(w, bits);
    // Wire size is exact and monotone in bits.
    EXPECT_EQ(c.wire_bits, 32u + static_cast<std::size_t>(bits) * n);
    // Reconstruction stays within the grid and within half a step.
    const float levels = static_cast<float>((1u << (bits - 1)) - 1u);
    const float step = levels > 0.0F ? max_abs / levels : max_abs;
    double error = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_LE(std::abs(c.reconstructed[i]), max_abs + 1e-5F);
      EXPECT_LE(std::abs(c.reconstructed[i] - w[i]), step / 2.0F + 1e-5F);
      error += std::abs(c.reconstructed[i] - w[i]);
    }
    // Total error is non-increasing in bits.
    if (prev_error >= 0.0) EXPECT_LE(error, prev_error + 1e-6);
    prev_error = error;
  }
}

TEST_P(CompressionProperty, SparsificationInvariants) {
  util::Rng r = rng();
  const std::size_t n = 2 + static_cast<std::size_t>(r.uniform_int(0, 499));
  std::vector<float> w(n);
  for (auto& v : w) v = static_cast<float>(r.normal(0.0, 1.0));
  const double keep_ratio = r.uniform(0.01, 1.0);
  const nn::CompressedModel c = nn::compress_topk_sparsification(w, keep_ratio);

  std::size_t kept = 0;
  float min_kept = 1e30F;
  float max_dropped = 0.0F;
  for (std::size_t i = 0; i < n; ++i) {
    if (c.reconstructed[i] != 0.0F) {
      EXPECT_EQ(c.reconstructed[i], w[i]);  // survivors exact
      ++kept;
      min_kept = std::min(min_kept, std::abs(w[i]));
    } else if (w[i] != 0.0F) {
      max_dropped = std::max(max_dropped, std::abs(w[i]));
    }
  }
  EXPECT_GE(kept, 1u);
  EXPECT_EQ(c.wire_bits, kept * 64);
  // Every kept magnitude >= every dropped magnitude.
  if (kept < n) EXPECT_GE(min_kept, max_dropped);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressionProperty,
                         ::testing::Range<std::uint64_t>(1, 16));

// --- Battery properties --------------------------------------------------------

class BatteryProperty : public SeededProperty {};

TEST_P(BatteryProperty, DrainConservation) {
  util::Rng r = rng();
  const double capacity = r.uniform(0.5, 20.0);
  mec::Battery battery(capacity);
  double total_drained = 0.0;
  while (!battery.depleted()) {
    total_drained += battery.drain(r.uniform(0.0, 2.0));
  }
  // Exactly the capacity was handed out, no more.
  EXPECT_NEAR(total_drained, capacity, 1e-9);
  EXPECT_DOUBLE_EQ(battery.drain(1.0), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatteryProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

// --- Cost model properties ---------------------------------------------------

class CostProperty : public SeededProperty {};

TEST_P(CostProperty, DelayEnergyMonotoneInFrequency) {
  util::Rng r = rng();
  const auto device = testing::make_device(
      0, r.uniform(0.31, 2.0), static_cast<std::size_t>(r.uniform_int(1, 200)));
  const double f1 = r.uniform(device.f_min_hz, device.f_max_hz);
  const double f2 = r.uniform(device.f_min_hz, device.f_max_hz);
  const double lo = std::min(f1, f2);
  const double hi = std::max(f1, f2);
  if (lo == hi) return;
  EXPECT_GE(mec::compute_delay_s(device, lo), mec::compute_delay_s(device, hi));
  EXPECT_LE(mec::compute_energy_j(device, lo), mec::compute_energy_j(device, hi));
  // Energy-delay product is monotone in f as well: E*T = alpha/2 (piD)^2 f.
  EXPECT_LE(mec::compute_energy_j(device, lo) * mec::compute_delay_s(device, lo),
            mec::compute_energy_j(device, hi) * mec::compute_delay_s(device, hi) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostProperty, ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace helcfl
