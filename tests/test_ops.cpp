#include "tensor/ops.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "util/rng.h"

namespace helcfl::tensor {
namespace {

TEST(Ops, AddInplace) {
  std::vector<float> y = {1, 2, 3};
  const std::vector<float> x = {10, 20, 30};
  add_inplace(y, x);
  EXPECT_EQ(y, (std::vector<float>{11, 22, 33}));
}

TEST(Ops, SubInplace) {
  std::vector<float> y = {10, 20, 30};
  const std::vector<float> x = {1, 2, 3};
  sub_inplace(y, x);
  EXPECT_EQ(y, (std::vector<float>{9, 18, 27}));
}

TEST(Ops, ScaleInplace) {
  std::vector<float> y = {1, -2, 3};
  scale_inplace(y, -2.0F);
  EXPECT_EQ(y, (std::vector<float>{-2, 4, -6}));
}

TEST(Ops, Axpy) {
  std::vector<float> y = {1, 1, 1};
  const std::vector<float> x = {1, 2, 3};
  axpy(0.5F, x, y);
  EXPECT_EQ(y, (std::vector<float>{1.5F, 2.0F, 2.5F}));
}

TEST(Ops, Dot) {
  const std::vector<float> a = {1, 2, 3};
  const std::vector<float> b = {4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
}

TEST(Ops, SquaredNorm) {
  const std::vector<float> a = {3, 4};
  EXPECT_DOUBLE_EQ(squared_norm(a), 25.0);
}

TEST(Ops, GemmIdentity) {
  // A * I = A
  const std::vector<float> a = {1, 2, 3, 4, 5, 6};          // 2x3
  const std::vector<float> eye = {1, 0, 0, 0, 1, 0, 0, 0, 1};  // 3x3
  std::vector<float> c(6, -1.0F);
  gemm(2, 3, 3, a, eye, c);
  EXPECT_EQ(c, a);
}

TEST(Ops, GemmKnownProduct) {
  const std::vector<float> a = {1, 2, 3, 4};  // 2x2
  const std::vector<float> b = {5, 6, 7, 8};  // 2x2
  std::vector<float> c(4);
  gemm(2, 2, 2, a, b, c);
  EXPECT_EQ(c, (std::vector<float>{19, 22, 43, 50}));
}

TEST(Ops, GemmOverwritesOutput) {
  const std::vector<float> a = {1};
  const std::vector<float> b = {2};
  std::vector<float> c = {100};
  gemm(1, 1, 1, a, b, c);
  EXPECT_EQ(c[0], 2.0F);
}

TEST(Ops, GemmAccumulateAddsToOutput) {
  const std::vector<float> a = {1};
  const std::vector<float> b = {2};
  std::vector<float> c = {100};
  gemm_accumulate(1, 1, 1, a, b, c);
  EXPECT_EQ(c[0], 102.0F);
}

TEST(Ops, GemmAtBMatchesExplicitTranspose) {
  util::Rng rng(1);
  const std::size_t m = 4, k = 5, n = 3;
  std::vector<float> a_t(k * m);  // stores A as [k, m]; logical A^T is [m, k]... A^T[m,k] where A is [k,m]
  std::vector<float> b(k * n);
  for (auto& v : a_t) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());

  // Reference: build A_explicit[m, k] with A_explicit[i][kk] = a_t[kk*m + i].
  std::vector<float> a_explicit(m * k);
  for (std::size_t kk = 0; kk < k; ++kk) {
    for (std::size_t i = 0; i < m; ++i) a_explicit[i * k + kk] = a_t[kk * m + i];
  }
  std::vector<float> expected(m * n);
  gemm(m, k, n, a_explicit, b, expected);

  std::vector<float> actual(m * n);
  gemm_at_b(m, k, n, a_t, b, actual);
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], 1e-5F);
  }
}

TEST(Ops, GemmABtMatchesExplicitTranspose) {
  util::Rng rng(2);
  const std::size_t m = 3, k = 4, n = 5;
  std::vector<float> a(m * k);
  std::vector<float> b_t(n * k);  // B stored as [n, k]; logical B is [k, n]
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b_t) v = static_cast<float>(rng.normal());

  std::vector<float> b_explicit(k * n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t kk = 0; kk < k; ++kk) b_explicit[kk * n + j] = b_t[j * k + kk];
  }
  std::vector<float> expected(m * n);
  gemm(m, k, n, a, b_explicit, expected);

  std::vector<float> actual(m * n);
  gemm_a_bt(m, k, n, a, b_t, actual);
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], 1e-5F);
  }
}

// ---------------------------------------------------------------------------
// Blocked-kernel validation: every GEMM variant against a naive reference,
// over shape sweeps that cross the micro-tile boundaries (generic 4x8,
// AVX2 6x16), plus the k=0 / m=1 / n=1 degenerate cases and checks that
// the kernels neither modify their inputs nor behave differently on a
// second identical call (bitwise determinism).

struct GemmCase {
  std::size_t m, k, n;
};

// Crosses both micro-tile geometries (4x8 and 6x16), the k-block boundary
// at 256, and the degenerate edges.
const GemmCase kSweep[] = {
    {1, 1, 1},   {1, 0, 1},    {1, 5, 1},    {1, 7, 23},  {2, 3, 2},
    {4, 8, 8},   {5, 9, 17},   {6, 16, 16},  {7, 17, 15}, {8, 300, 9},
    {13, 31, 29}, {16, 257, 33}, {31, 64, 1}, {64, 64, 64}, {97, 5, 41},
};

/// Naive double-precision reference for C = op(A)*op(B) [+ C0] [+ bias].
std::vector<float> reference_gemm(const GemmCase& c, std::span<const float> a,
                                  std::span<const float> b, bool trans_a,
                                  bool trans_b, const std::vector<float>* c0,
                                  const std::vector<float>* bias_rows,
                                  const std::vector<float>* bias_cols) {
  std::vector<float> out(c.m * c.n);
  for (std::size_t i = 0; i < c.m; ++i) {
    for (std::size_t j = 0; j < c.n; ++j) {
      double sum = 0.0;
      if (c0 != nullptr) sum = (*c0)[i * c.n + j];
      if (bias_rows != nullptr) sum += (*bias_rows)[i];
      if (bias_cols != nullptr) sum += (*bias_cols)[j];
      for (std::size_t kk = 0; kk < c.k; ++kk) {
        const float av = trans_a ? a[kk * c.m + i] : a[i * c.k + kk];
        const float bv = trans_b ? b[j * c.k + kk] : b[kk * c.n + j];
        sum += static_cast<double>(av) * bv;
      }
      out[i * c.n + j] = static_cast<float>(sum);
    }
  }
  return out;
}

std::vector<float> random_vec(std::size_t size, util::Rng& rng) {
  std::vector<float> v(size);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

/// Error budget: float accumulation over k terms of N(0,1) products.
double tolerance_for(std::size_t k) {
  return 1e-5 * (std::sqrt(static_cast<double>(k)) + 1.0) * 8.0;
}

void expect_near_all(std::span<const float> actual, std::span<const float> expected,
                     double tol, const char* label, const GemmCase& c) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    ASSERT_NEAR(actual[i], expected[i], tol)
        << label << " mismatch at " << i << " for m=" << c.m << " k=" << c.k
        << " n=" << c.n;
  }
}

TEST(OpsKernel, AllVariantsMatchNaiveReferenceAcrossShapeSweep) {
  util::Rng rng(0xBEEF);
  for (const GemmCase& c : kSweep) {
    const double tol = tolerance_for(c.k);
    const std::vector<float> a = random_vec(c.m * c.k, rng);       // [m,k]
    const std::vector<float> a_t = random_vec(c.k * c.m, rng);     // [k,m]
    const std::vector<float> b = random_vec(c.k * c.n, rng);       // [k,n]
    const std::vector<float> b_t = random_vec(c.n * c.k, rng);     // [n,k]
    const std::vector<float> bias_m = random_vec(c.m, rng);
    const std::vector<float> bias_n = random_vec(c.n, rng);
    const std::vector<float> seed_c = random_vec(c.m * c.n, rng);

    // Inputs must come back bit-identical: the kernels only read A/B.
    const auto a_copy = a;
    const auto b_copy = b;

    std::vector<float> out(c.m * c.n, -7.0F);
    gemm(c.m, c.k, c.n, a, b, out);
    expect_near_all(out, reference_gemm(c, a, b, false, false, nullptr, nullptr, nullptr),
                    tol, "gemm", c);

    std::vector<float> acc = seed_c;
    gemm_accumulate(c.m, c.k, c.n, a, b, acc);
    expect_near_all(acc, reference_gemm(c, a, b, false, false, &seed_c, nullptr, nullptr),
                    tol, "gemm_accumulate", c);

    std::vector<float> with_bias(c.m * c.n, -7.0F);
    gemm_bias_rows(c.m, c.k, c.n, a, b, bias_m, with_bias);
    expect_near_all(with_bias,
                    reference_gemm(c, a, b, false, false, nullptr, &bias_m, nullptr),
                    tol, "gemm_bias_rows", c);

    std::vector<float> at_b(c.m * c.n, -7.0F);
    gemm_at_b(c.m, c.k, c.n, a_t, b, at_b);
    expect_near_all(at_b, reference_gemm(c, a_t, b, true, false, nullptr, nullptr, nullptr),
                    tol, "gemm_at_b", c);

    std::vector<float> at_b_acc = seed_c;
    gemm_at_b_accumulate(c.m, c.k, c.n, a_t, b, at_b_acc);
    expect_near_all(at_b_acc,
                    reference_gemm(c, a_t, b, true, false, &seed_c, nullptr, nullptr),
                    tol, "gemm_at_b_accumulate", c);

    std::vector<float> a_bt(c.m * c.n, -7.0F);
    gemm_a_bt(c.m, c.k, c.n, a, b_t, a_bt);
    expect_near_all(a_bt, reference_gemm(c, a, b_t, false, true, nullptr, nullptr, nullptr),
                    tol, "gemm_a_bt", c);

    std::vector<float> a_bt_acc = seed_c;
    gemm_a_bt_accumulate(c.m, c.k, c.n, a, b_t, a_bt_acc);
    expect_near_all(a_bt_acc,
                    reference_gemm(c, a, b_t, false, true, &seed_c, nullptr, nullptr),
                    tol, "gemm_a_bt_accumulate", c);

    std::vector<float> a_bt_bias(c.m * c.n, -7.0F);
    gemm_a_bt_bias_cols(c.m, c.k, c.n, a, b_t, bias_n, a_bt_bias);
    expect_near_all(a_bt_bias,
                    reference_gemm(c, a, b_t, false, true, nullptr, nullptr, &bias_n),
                    tol, "gemm_a_bt_bias_cols", c);

    EXPECT_EQ(a, a_copy) << "gemm kernels must not modify A";
    EXPECT_EQ(b, b_copy) << "gemm kernels must not modify B";

    // Bitwise determinism: an identical second call reproduces every bit.
    std::vector<float> out2(c.m * c.n, 3.0F);
    gemm(c.m, c.k, c.n, a, b, out2);
    EXPECT_EQ(out, out2) << "gemm must be bitwise deterministic";
  }
}

TEST(OpsKernel, KZeroOverwritesWithZeroOrBias) {
  const std::vector<float> empty;
  const std::vector<float> bias = {5.0F, -1.0F};
  std::vector<float> c = {9.0F, 9.0F, 9.0F, 9.0F};
  gemm(2, 0, 2, empty, empty, c);
  EXPECT_EQ(c, (std::vector<float>{0, 0, 0, 0}));

  c = {9.0F, 9.0F, 9.0F, 9.0F};
  gemm_bias_rows(2, 0, 2, empty, empty, bias, c);
  EXPECT_EQ(c, (std::vector<float>{5.0F, 5.0F, -1.0F, -1.0F}));

  c = {9.0F, 9.0F, 9.0F, 9.0F};
  gemm_a_bt_bias_cols(2, 0, 2, empty, empty, bias, c);
  EXPECT_EQ(c, (std::vector<float>{5.0F, -1.0F, 5.0F, -1.0F}));

  c = {1.0F, 2.0F, 3.0F, 4.0F};
  gemm_accumulate(2, 0, 2, empty, empty, c);
  EXPECT_EQ(c, (std::vector<float>{1.0F, 2.0F, 3.0F, 4.0F}));
}

TEST(OpsKernel, KernelIsaIsReported) {
  const std::string_view isa = kernel_isa();
  EXPECT_TRUE(isa == "generic" || isa == "avx2_fma" || isa == "avx512") << isa;
}

TEST(OpsKernel, ScratchIsReusedInSteadyState) {
  util::Rng rng(0xFEED);
  const std::size_t m = 48, k = 96, n = 56;
  const std::vector<float> a = random_vec(m * k, rng);
  const std::vector<float> b = random_vec(k * n, rng);
  std::vector<float> c(m * n);
  gemm(m, k, n, a, b, c);  // warm the packing buffers for this shape
  const std::uint64_t before = scratch_realloc_count();
  for (int i = 0; i < 5; ++i) gemm(m, k, n, a, b, c);
  EXPECT_EQ(scratch_realloc_count(), before)
      << "steady-state gemm must not grow scratch";
}

TEST(Ops, TensorAdd) {
  const Tensor a(Shape{2}, {1, 2});
  const Tensor b(Shape{2}, {10, 20});
  const Tensor c = add(a, b);
  EXPECT_EQ(c[0], 11.0F);
  EXPECT_EQ(c[1], 22.0F);
}

TEST(Ops, TensorSub) {
  const Tensor a(Shape{2}, {10, 20});
  const Tensor b(Shape{2}, {1, 2});
  const Tensor c = sub(a, b);
  EXPECT_EQ(c[0], 9.0F);
  EXPECT_EQ(c[1], 18.0F);
}

TEST(Ops, TensorScale) {
  const Tensor a(Shape{2}, {1, -2});
  const Tensor c = scale(a, 3.0F);
  EXPECT_EQ(c[0], 3.0F);
  EXPECT_EQ(c[1], -6.0F);
}

TEST(Ops, TensorAddShapeMismatchThrows) {
  const Tensor a(Shape{2});
  const Tensor b(Shape{3});
  EXPECT_THROW(add(a, b), std::invalid_argument);
  EXPECT_THROW(sub(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace helcfl::tensor
