#include "tensor/ops.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace helcfl::tensor {
namespace {

TEST(Ops, AddInplace) {
  std::vector<float> y = {1, 2, 3};
  const std::vector<float> x = {10, 20, 30};
  add_inplace(y, x);
  EXPECT_EQ(y, (std::vector<float>{11, 22, 33}));
}

TEST(Ops, SubInplace) {
  std::vector<float> y = {10, 20, 30};
  const std::vector<float> x = {1, 2, 3};
  sub_inplace(y, x);
  EXPECT_EQ(y, (std::vector<float>{9, 18, 27}));
}

TEST(Ops, ScaleInplace) {
  std::vector<float> y = {1, -2, 3};
  scale_inplace(y, -2.0F);
  EXPECT_EQ(y, (std::vector<float>{-2, 4, -6}));
}

TEST(Ops, Axpy) {
  std::vector<float> y = {1, 1, 1};
  const std::vector<float> x = {1, 2, 3};
  axpy(0.5F, x, y);
  EXPECT_EQ(y, (std::vector<float>{1.5F, 2.0F, 2.5F}));
}

TEST(Ops, Dot) {
  const std::vector<float> a = {1, 2, 3};
  const std::vector<float> b = {4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
}

TEST(Ops, SquaredNorm) {
  const std::vector<float> a = {3, 4};
  EXPECT_DOUBLE_EQ(squared_norm(a), 25.0);
}

TEST(Ops, GemmIdentity) {
  // A * I = A
  const std::vector<float> a = {1, 2, 3, 4, 5, 6};          // 2x3
  const std::vector<float> eye = {1, 0, 0, 0, 1, 0, 0, 0, 1};  // 3x3
  std::vector<float> c(6, -1.0F);
  gemm(2, 3, 3, a, eye, c);
  EXPECT_EQ(c, a);
}

TEST(Ops, GemmKnownProduct) {
  const std::vector<float> a = {1, 2, 3, 4};  // 2x2
  const std::vector<float> b = {5, 6, 7, 8};  // 2x2
  std::vector<float> c(4);
  gemm(2, 2, 2, a, b, c);
  EXPECT_EQ(c, (std::vector<float>{19, 22, 43, 50}));
}

TEST(Ops, GemmOverwritesOutput) {
  const std::vector<float> a = {1};
  const std::vector<float> b = {2};
  std::vector<float> c = {100};
  gemm(1, 1, 1, a, b, c);
  EXPECT_EQ(c[0], 2.0F);
}

TEST(Ops, GemmAccumulateAddsToOutput) {
  const std::vector<float> a = {1};
  const std::vector<float> b = {2};
  std::vector<float> c = {100};
  gemm_accumulate(1, 1, 1, a, b, c);
  EXPECT_EQ(c[0], 102.0F);
}

TEST(Ops, GemmAtBMatchesExplicitTranspose) {
  util::Rng rng(1);
  const std::size_t m = 4, k = 5, n = 3;
  std::vector<float> a_t(k * m);  // stores A as [k, m]; logical A^T is [m, k]... A^T[m,k] where A is [k,m]
  std::vector<float> b(k * n);
  for (auto& v : a_t) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());

  // Reference: build A_explicit[m, k] with A_explicit[i][kk] = a_t[kk*m + i].
  std::vector<float> a_explicit(m * k);
  for (std::size_t kk = 0; kk < k; ++kk) {
    for (std::size_t i = 0; i < m; ++i) a_explicit[i * k + kk] = a_t[kk * m + i];
  }
  std::vector<float> expected(m * n);
  gemm(m, k, n, a_explicit, b, expected);

  std::vector<float> actual(m * n);
  gemm_at_b(m, k, n, a_t, b, actual);
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], 1e-5F);
  }
}

TEST(Ops, GemmABtMatchesExplicitTranspose) {
  util::Rng rng(2);
  const std::size_t m = 3, k = 4, n = 5;
  std::vector<float> a(m * k);
  std::vector<float> b_t(n * k);  // B stored as [n, k]; logical B is [k, n]
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b_t) v = static_cast<float>(rng.normal());

  std::vector<float> b_explicit(k * n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t kk = 0; kk < k; ++kk) b_explicit[kk * n + j] = b_t[j * k + kk];
  }
  std::vector<float> expected(m * n);
  gemm(m, k, n, a, b_explicit, expected);

  std::vector<float> actual(m * n);
  gemm_a_bt(m, k, n, a, b_t, actual);
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], 1e-5F);
  }
}

TEST(Ops, TensorAdd) {
  const Tensor a(Shape{2}, {1, 2});
  const Tensor b(Shape{2}, {10, 20});
  const Tensor c = add(a, b);
  EXPECT_EQ(c[0], 11.0F);
  EXPECT_EQ(c[1], 22.0F);
}

TEST(Ops, TensorSub) {
  const Tensor a(Shape{2}, {10, 20});
  const Tensor b(Shape{2}, {1, 2});
  const Tensor c = sub(a, b);
  EXPECT_EQ(c[0], 9.0F);
  EXPECT_EQ(c[1], 18.0F);
}

TEST(Ops, TensorScale) {
  const Tensor a(Shape{2}, {1, -2});
  const Tensor c = scale(a, 3.0F);
  EXPECT_EQ(c[0], 3.0F);
  EXPECT_EQ(c[1], -6.0F);
}

TEST(Ops, TensorAddShapeMismatchThrows) {
  const Tensor a(Shape{2});
  const Tensor b(Shape{3});
  EXPECT_THROW(add(a, b), std::invalid_argument);
  EXPECT_THROW(sub(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace helcfl::tensor
