// Determinism harness for the thread-parallel GEMM driver and the prepacked
// weight-panel cache (docs/KERNELS.md).  The contracts under test:
//
//  1. Every GEMM variant is bitwise identical for any kernel-thread count,
//     because row sharding never changes an element's ascending-k
//     accumulation order.
//  2. Packing is a pure data rearrangement: packed and unpacked products
//     are bitwise identical, at any thread count.
//  3. The layer-level invalidation contract (nn/layer.h) keeps prepacked
//     forwards tracking fresh weights through every mutation path —
//     optimizer steps, load_parameters, and zero_grad.
//  4. End to end: a federated training run produces bitwise-identical
//     weights and metrics CSV bytes whatever the kernel-thread count, with
//     threading and prepacking both enabled.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "fl/client.h"
#include "fl/trainer.h"
#include "fl_fixtures.h"
#include "gradcheck.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/models.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "sched/random_selection.h"
#include "sim/report.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace helcfl {
namespace {

/// Restores the process-wide kernel configuration on scope exit so tests
/// cannot leak thread/prepack settings into each other.
struct KernelConfigGuard {
  std::size_t threads = tensor::kernel_threads();
  bool prepack = tensor::weight_prepack_enabled();
  ~KernelConfigGuard() {
    tensor::set_kernel_threads(threads);
    tensor::set_weight_prepack(prepack);
  }
};

std::vector<float> random_vec(std::size_t n, util::Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

/// One (m, k, n) problem with operands sized for every variant's layout.
struct Problem {
  std::size_t m, k, n;
  std::vector<float> a;      // [m, k]
  std::vector<float> at;     // [k, m] (gemm_at_b's A storage)
  std::vector<float> bt;     // [n, k] (gemm_a_bt's B storage)
  std::vector<float> b;      // [k, n]
  std::vector<float> bias_m; // per-row bias, length m
  std::vector<float> bias_n; // per-column bias, length n
};

Problem make_problem(std::size_t m, std::size_t k, std::size_t n,
                     std::uint64_t seed) {
  util::Rng rng(seed);
  Problem p{m, k, n, random_vec(m * k, rng), random_vec(k * m, rng),
            random_vec(n * k, rng), random_vec(k * n, rng),
            random_vec(m, rng), random_vec(n, rng)};
  return p;
}

/// Runs all eight GEMM entry points on `p` and concatenates the outputs, so
/// one vector comparison covers every variant bitwise.
std::vector<float> run_all_variants(const Problem& p) {
  const std::size_t mn = p.m * p.n;
  std::vector<float> out;
  out.reserve(8 * mn);
  std::vector<float> c(mn);

  tensor::gemm(p.m, p.k, p.n, p.a, p.b, c);
  out.insert(out.end(), c.begin(), c.end());

  // Seed C with a deterministic pattern before the accumulate variants.
  for (std::size_t i = 0; i < mn; ++i) c[i] = static_cast<float>(i % 7) * 0.25F;
  tensor::gemm_accumulate(p.m, p.k, p.n, p.a, p.b, c);
  out.insert(out.end(), c.begin(), c.end());

  tensor::gemm_bias_rows(p.m, p.k, p.n, p.a, p.b, p.bias_m, c);
  out.insert(out.end(), c.begin(), c.end());

  tensor::gemm_at_b(p.m, p.k, p.n, p.at, p.b, c);
  out.insert(out.end(), c.begin(), c.end());

  for (std::size_t i = 0; i < mn; ++i) c[i] = static_cast<float>(i % 5) * -0.5F;
  tensor::gemm_at_b_accumulate(p.m, p.k, p.n, p.at, p.b, c);
  out.insert(out.end(), c.begin(), c.end());

  tensor::gemm_a_bt(p.m, p.k, p.n, p.a, p.bt, c);
  out.insert(out.end(), c.begin(), c.end());

  for (std::size_t i = 0; i < mn; ++i) c[i] = static_cast<float>(i % 3) * 1.5F;
  tensor::gemm_a_bt_accumulate(p.m, p.k, p.n, p.a, p.bt, c);
  out.insert(out.end(), c.begin(), c.end());

  tensor::gemm_a_bt_bias_cols(p.m, p.k, p.n, p.a, p.bt, p.bias_n, c);
  out.insert(out.end(), c.begin(), c.end());
  return out;
}

TEST(KernelParallel, AllVariantsAreBitwiseIdenticalAcrossThreadCounts) {
  KernelConfigGuard guard;
  // Shapes straddling the tile geometry: kMc = 96 row blocks, kKc = 256
  // k-blocks, and ragged edges in every dimension.
  const std::vector<Problem> problems = {
      make_problem(257, 301, 190, 0xA1),  // > 2 row chunks, ragged everywhere
      make_problem(512, 96, 33, 0xA2),    // row count divides kMc exactly
      make_problem(96, 300, 96, 0xA3),    // single row block: 1 chunk at any n
      make_problem(7, 5, 3, 0xA4),        // smaller than one micro-tile
  };
  for (const Problem& p : problems) {
    tensor::set_kernel_threads(1);
    const std::vector<float> reference = run_all_variants(p);
    for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
      tensor::set_kernel_threads(threads);
      EXPECT_EQ(run_all_variants(p), reference)
          << "m=" << p.m << " k=" << p.k << " n=" << p.n
          << " threads=" << threads;
    }
  }
}

TEST(KernelParallel, PackedProductsMatchUnpackedBitwise) {
  KernelConfigGuard guard;
  const Problem p = make_problem(130, 270, 85, 0xB1);
  std::vector<float> unpacked(p.m * p.n);
  std::vector<float> packed(p.m * p.n);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    tensor::set_kernel_threads(threads);

    // Conv2D-style: prepacked left operand.
    tensor::gemm_bias_rows(p.m, p.k, p.n, p.a, p.b, p.bias_m, unpacked);
    tensor::PackedWeights wa;
    wa.pack_a(p.m, p.k, p.a);
    ASSERT_TRUE(wa.is_a(p.m, p.k));
    tensor::gemm_bias_rows(p.m, p.k, p.n, wa, p.b, p.bias_m, packed);
    EXPECT_EQ(packed, unpacked) << "packed A, threads=" << threads;

    // Dense-style: prepacked transposed right operand.
    tensor::gemm_a_bt_bias_cols(p.m, p.k, p.n, p.a, p.bt, p.bias_n, unpacked);
    tensor::PackedWeights wb;
    wb.pack_b_trans(p.k, p.n, p.bt);
    ASSERT_TRUE(wb.is_b_trans(p.k, p.n));
    tensor::gemm_a_bt_bias_cols(p.m, p.k, p.n, p.a, wb, p.bias_n, packed);
    EXPECT_EQ(packed, unpacked) << "packed B^T, threads=" << threads;
  }
}

TEST(KernelParallel, PackedWeightsInvalidateAndRepackTracksNewValues) {
  KernelConfigGuard guard;
  tensor::set_kernel_threads(1);
  Problem p = make_problem(64, 48, 40, 0xB2);

  tensor::PackedWeights w;
  w.pack_a(p.m, p.k, p.a);
  EXPECT_TRUE(w.valid());
  w.invalidate();
  EXPECT_FALSE(w.valid());
  EXPECT_FALSE(w.is_a(p.m, p.k));

  // Repack with mutated weights: the product must follow the new values.
  for (float& x : p.a) x *= 2.0F;
  w.pack_a(p.m, p.k, p.a);
  std::vector<float> unpacked(p.m * p.n);
  std::vector<float> packed(p.m * p.n);
  tensor::gemm_bias_rows(p.m, p.k, p.n, p.a, p.b, p.bias_m, unpacked);
  tensor::gemm_bias_rows(p.m, p.k, p.n, w, p.b, p.bias_m, packed);
  EXPECT_EQ(packed, unpacked);

  // A pack for a different shape/side must not satisfy the old query.
  w.pack_b_trans(p.k, p.n, p.bt);
  EXPECT_FALSE(w.is_a(p.m, p.k));
  EXPECT_TRUE(w.is_b_trans(p.k, p.n));
}

TEST(KernelParallel, DenseForwardMatchesUnpackedAndFollowsMutations) {
  KernelConfigGuard guard;
  tensor::set_kernel_threads(1);
  util::Rng rng(0xC1);
  nn::Dense packed_layer(23, 17, rng);
  const tensor::Tensor x = testing::random_input({5, 23}, 0xC2);

  tensor::set_weight_prepack(false);
  const tensor::Tensor y_ref = packed_layer.forward(x, /*training=*/false);
  tensor::set_weight_prepack(true);
  const tensor::Tensor y_packed = packed_layer.forward(x, /*training=*/false);
  ASSERT_EQ(y_ref.size(), y_packed.size());
  for (std::size_t i = 0; i < y_ref.size(); ++i) {
    EXPECT_EQ(y_ref[i], y_packed[i]) << "flat index " << i;
  }

  // An optimizer step must invalidate the panels via the ParamRef owner
  // back-pointer: the next packed forward sees the stepped weights.
  const tensor::Tensor dy = testing::random_input({5, 17}, 0xC3);
  packed_layer.zero_grad();
  packed_layer.forward(x, /*training=*/true);
  packed_layer.backward(dy);
  nn::Sgd sgd({.learning_rate = 0.1F});
  sgd.step(packed_layer.params());

  tensor::set_weight_prepack(false);
  const tensor::Tensor y2_ref = packed_layer.forward(x, false);
  tensor::set_weight_prepack(true);
  const tensor::Tensor y2_packed = packed_layer.forward(x, false);
  for (std::size_t i = 0; i < y2_ref.size(); ++i) {
    EXPECT_EQ(y2_ref[i], y2_packed[i]) << "post-step flat index " << i;
  }
}

TEST(KernelParallel, Conv2dForwardMatchesUnpackedAndFollowsLoadParameters) {
  KernelConfigGuard guard;
  tensor::set_kernel_threads(1);
  util::Rng rng(0xC4);
  nn::Conv2D conv(3, 8, 3, 1, 1, rng);
  const tensor::Tensor x = testing::random_input({2, 3, 9, 9}, 0xC5);

  tensor::set_weight_prepack(false);
  const tensor::Tensor y_ref = conv.forward(x, false);
  tensor::set_weight_prepack(true);
  const tensor::Tensor y_packed = conv.forward(x, false);
  ASSERT_EQ(y_ref.size(), y_packed.size());
  for (std::size_t i = 0; i < y_ref.size(); ++i) {
    EXPECT_EQ(y_ref[i], y_packed[i]) << "flat index " << i;
  }

  // load_parameters must invalidate through Sequential::mark_weights_dirty.
  nn::Sequential model;
  model.emplace<nn::Conv2D>(3, 8, 3, 1, 1, rng);
  const tensor::Tensor before = model.forward(x, false);  // packs panels
  std::vector<float> params = nn::extract_parameters(model);
  for (float& v : params) v += 0.125F;
  nn::load_parameters(model, params);
  tensor::set_weight_prepack(false);
  const tensor::Tensor after_ref = model.forward(x, false);
  tensor::set_weight_prepack(true);
  const tensor::Tensor after_packed = model.forward(x, false);
  for (std::size_t i = 0; i < after_ref.size(); ++i) {
    EXPECT_EQ(after_ref[i], after_packed[i]) << "post-load flat index " << i;
  }
}

TEST(KernelParallel, GradcheckPassesThroughPrepackedForward) {
  KernelConfigGuard guard;
  tensor::set_kernel_threads(1);
  tensor::set_weight_prepack(true);
  util::Rng rng(0xC6);
  nn::Dense dense(6, 4, rng);
  testing::check_gradients(dense, testing::random_input({3, 6}, 0xC7));
  nn::Conv2D conv(2, 3, 3, 1, 0, rng);
  testing::check_gradients(conv, testing::random_input({1, 2, 5, 5}, 0xC8));
}

TEST(KernelParallel, CnnTrainStepIsBitwiseInvariantAcrossThreadsAndPacking) {
  KernelConfigGuard guard;
  const data::TrainTestSplit split = testing::tiny_split(64, 16, 90);
  std::vector<std::size_t> indices(32);
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  const data::Batch batch = split.train.gather(indices);

  const auto run_step = [&](std::size_t threads, bool prepack) {
    tensor::set_kernel_threads(threads);
    tensor::set_weight_prepack(prepack);
    util::Rng model_rng(91);
    auto model = nn::make_small_cnn(split.train.spec(), 10, model_rng);
    const std::vector<float> init = nn::extract_parameters(*model);
    fl::ClientOptions options;
    options.learning_rate = 0.05F;
    options.local_steps = 2;
    options.batch_size = 16;
    util::Rng rng(92);
    return fl::local_update(*model, init, batch, options, rng).weights;
  };

  const std::vector<float> reference = run_step(1, false);
  EXPECT_EQ(run_step(1, true), reference) << "threads=1 prepack=on";
  EXPECT_EQ(run_step(4, false), reference) << "threads=4 prepack=off";
  EXPECT_EQ(run_step(4, true), reference) << "threads=4 prepack=on";
}

TEST(KernelParallel, ScratchStopsGrowingInSteadyStateUnderFourThreads) {
  KernelConfigGuard guard;
  tensor::set_kernel_threads(4);
  util::Rng rng(0xD1);
  const std::size_t m = 384, k = 128, n = 64;
  const std::vector<float> a = random_vec(m * k, rng);
  const std::vector<float> b = random_vec(k * n, rng);
  std::vector<float> c(m * n);
  // Warm every pool worker's thread-local packing scratch: each run shards
  // into 4 row chunks, so a handful of runs reaches all four workers.
  for (int i = 0; i < 16; ++i) tensor::gemm(m, k, n, a, b, c);
  const std::uint64_t before = tensor::scratch_realloc_count();
  for (int i = 0; i < 8; ++i) tensor::gemm(m, k, n, a, b, c);
  EXPECT_EQ(tensor::scratch_realloc_count(), before)
      << "steady-state GEMMs must not grow any worker's scratch";
}

/// End-to-end: a full federated run is bitwise invariant to the kernel
/// thread count with prepacking enabled, down to the metrics CSV bytes.
TEST(KernelParallel, TrainerRunIsBitwiseInvariantAcrossKernelThreads) {
  KernelConfigGuard guard;
  tensor::set_weight_prepack(true);

  const data::TrainTestSplit split = testing::tiny_split(200, 60, 93);
  util::Rng prng(94);
  constexpr std::size_t kUsers = 6;
  const data::Partition partition =
      data::iid_partition(split.train.size(), kUsers, prng);
  std::vector<mec::Device> devices =
      testing::linear_fleet(kUsers, partition[0].size());
  for (std::size_t i = 0; i < kUsers; ++i) {
    devices[i].num_samples = partition[i].size();
  }

  const auto run_with_kernel_threads = [&](std::size_t threads) {
    tensor::set_kernel_threads(threads);
    util::Rng model_rng(95);
    auto model = nn::make_mlp(split.train.spec(), 16, 10, model_rng);
    util::Rng srng(96);
    sched::RandomSelection strategy(0.5, srng);
    fl::TrainerOptions options;
    options.max_rounds = 4;
    options.client.learning_rate = 0.1F;
    options.client.local_steps = 2;
    options.client.batch_size = 16;
    options.model_size_bits = 4e6;
    fl::FederatedTrainer trainer(*model, split.train, split.test, partition,
                                 devices, testing::paper_channel(), strategy,
                                 options);
    const fl::TrainingHistory history = trainer.run();

    const std::string path = ::testing::TempDir() + "kernel_threads_" +
                             std::to_string(threads) + ".csv";
    sim::write_history_csv(path, history);
    std::ifstream in(path, std::ios::binary);
    std::ostringstream csv;
    csv << in.rdbuf();
    std::remove(path.c_str());
    return std::pair(nn::extract_parameters(*model), csv.str());
  };

  const auto [weights1, csv1] = run_with_kernel_threads(1);
  const auto [weights4, csv4] = run_with_kernel_threads(4);
  EXPECT_EQ(weights1, weights4);
  EXPECT_EQ(csv1, csv4);
  EXPECT_FALSE(csv1.empty());
}

}  // namespace
}  // namespace helcfl
