#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "nn/loss.h"
#include "nn/models.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "util/rng.h"

namespace helcfl::nn {
namespace {

std::vector<ParamRef> make_refs(std::vector<float>& value, std::vector<float>& grad) {
  return {{std::span<float>(value), std::span<float>(grad)}};
}

TEST(Adam, RejectsBadHyperparameters) {
  EXPECT_THROW(Adam({.beta1 = 1.0F}), std::invalid_argument);
  EXPECT_THROW(Adam({.beta2 = -0.1F}), std::invalid_argument);
  EXPECT_THROW(Adam({.epsilon = 0.0F}), std::invalid_argument);
}

TEST(Adam, FirstStepMovesByApproximatelyLearningRate) {
  // With bias correction, the very first Adam step is ~lr * sign(grad).
  std::vector<float> w = {0.0F, 0.0F};
  std::vector<float> g = {1.0F, -3.0F};
  Adam adam({.learning_rate = 0.1F});
  adam.step(make_refs(w, g));
  EXPECT_NEAR(w[0], -0.1F, 1e-3F);
  EXPECT_NEAR(w[1], 0.1F, 1e-3F);
}

TEST(Adam, ZeroGradientIsNoOp) {
  std::vector<float> w = {2.0F};
  std::vector<float> g = {0.0F};
  Adam adam({.learning_rate = 0.1F});
  adam.step(make_refs(w, g));
  EXPECT_FLOAT_EQ(w[0], 2.0F);
}

TEST(Adam, ConvergesOnQuadratic) {
  std::vector<float> w = {10.0F};
  std::vector<float> g = {0.0F};
  Adam adam({.learning_rate = 0.3F});
  for (int i = 0; i < 400; ++i) {
    g[0] = 2.0F * (w[0] - 3.0F);
    adam.step(make_refs(w, g));
  }
  EXPECT_NEAR(w[0], 3.0F, 0.01F);
}

TEST(Adam, HandlesIllConditionedScalesBetterThanSgd) {
  // f(x, y) = x^2 + 1000 y^2.  Adam's per-coordinate normalization makes
  // progress on x even with a step size that SGD must keep tiny for y.
  auto run_adam = [] {
    std::vector<float> w = {10.0F, 10.0F};
    std::vector<float> g = {0.0F, 0.0F};
    Adam adam({.learning_rate = 0.5F});
    for (int i = 0; i < 200; ++i) {
      g[0] = 2.0F * w[0];
      g[1] = 2000.0F * w[1];
      adam.step({{std::span<float>(w), std::span<float>(g)}});
    }
    return std::abs(w[0]) + std::abs(w[1]);
  };
  auto run_sgd = [] {
    std::vector<float> w = {10.0F, 10.0F};
    std::vector<float> g = {0.0F, 0.0F};
    Sgd sgd({.learning_rate = 0.0009F});  // largest stable for the y-axis
    for (int i = 0; i < 200; ++i) {
      g[0] = 2.0F * w[0];
      g[1] = 2000.0F * w[1];
      sgd.step({{std::span<float>(w), std::span<float>(g)}});
    }
    return std::abs(w[0]) + std::abs(w[1]);
  };
  EXPECT_LT(run_adam(), run_sgd());
}

TEST(Adam, ResetStateRestartsMoments) {
  std::vector<float> w = {0.0F};
  std::vector<float> g = {1.0F};
  Adam a({.learning_rate = 0.1F});
  Adam b({.learning_rate = 0.1F});
  a.step(make_refs(w, g));
  const float after_one = w[0];
  a.reset_state();
  w[0] = 0.0F;
  a.step(make_refs(w, g));
  EXPECT_FLOAT_EQ(w[0], after_one);
  w[0] = 0.0F;
  b.step(make_refs(w, g));
  EXPECT_FLOAT_EQ(w[0], after_one);
}

TEST(Adam, RejectsChangedParamList) {
  std::vector<float> w = {0.0F};
  std::vector<float> g = {1.0F};
  Adam adam({.learning_rate = 0.1F});
  adam.step(make_refs(w, g));
  std::vector<float> w2 = {0.0F};
  std::vector<float> g2 = {1.0F};
  std::vector<ParamRef> two = {{std::span<float>(w), std::span<float>(g)},
                               {std::span<float>(w2), std::span<float>(g2)}};
  EXPECT_THROW(adam.step(two), std::invalid_argument);
}

TEST(Adam, TrainsMlpBelowInitialLoss) {
  util::Rng rng(1);
  const ImageSpec spec{1, 4, 4};
  auto model = make_mlp(spec, 16, 4, rng);
  tensor::Tensor x(tensor::Shape{16, 1, 4, 4});
  x.fill_normal(rng, 0.0F, 1.0F);
  std::vector<std::int32_t> labels(16);
  for (std::size_t i = 0; i < 16; ++i) labels[i] = static_cast<std::int32_t>(i % 4);

  Adam adam({.learning_rate = 0.01F});
  double first_loss = 0.0;
  double last_loss = 0.0;
  for (int step = 0; step < 100; ++step) {
    model->zero_grad();
    const auto logits = model->forward(x, true);
    const auto loss = softmax_cross_entropy(logits, labels);
    model->backward(loss.grad_logits);
    adam.step(model->params());
    if (step == 0) first_loss = loss.loss;
    last_loss = loss.loss;
  }
  EXPECT_LT(last_loss, first_loss * 0.5);
}

TEST(Schedule, ConstantIsConstant) {
  EXPECT_DOUBLE_EQ(schedule::constant(0.1, 0), 0.1);
  EXPECT_DOUBLE_EQ(schedule::constant(0.1, 1000), 0.1);
}

TEST(Schedule, StepDecayStaircase) {
  EXPECT_DOUBLE_EQ(schedule::step_decay(1.0, 0.5, 10, 0), 1.0);
  EXPECT_DOUBLE_EQ(schedule::step_decay(1.0, 0.5, 10, 9), 1.0);
  EXPECT_DOUBLE_EQ(schedule::step_decay(1.0, 0.5, 10, 10), 0.5);
  EXPECT_DOUBLE_EQ(schedule::step_decay(1.0, 0.5, 10, 25), 0.25);
  EXPECT_THROW(schedule::step_decay(1.0, 0.5, 0, 1), std::invalid_argument);
}

TEST(Schedule, CosineEndpointsAndMonotonicity) {
  EXPECT_DOUBLE_EQ(schedule::cosine(1.0, 0.1, 100, 0), 1.0);
  EXPECT_NEAR(schedule::cosine(1.0, 0.1, 100, 50), 0.55, 1e-3);
  EXPECT_DOUBLE_EQ(schedule::cosine(1.0, 0.1, 100, 100), 0.1);
  EXPECT_DOUBLE_EQ(schedule::cosine(1.0, 0.1, 100, 500), 0.1);
  double prev = 1.1;
  for (std::size_t step = 0; step <= 100; step += 5) {
    const double lr = schedule::cosine(1.0, 0.1, 100, step);
    EXPECT_LT(lr, prev);
    prev = lr;
  }
  EXPECT_THROW(schedule::cosine(1.0, 0.1, 0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace helcfl::nn
