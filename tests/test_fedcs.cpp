#include "sched/fedcs.h"

#include <gtest/gtest.h>

#include "fl_fixtures.h"
#include "mec/tdma.h"

namespace helcfl::sched {
namespace {

using testing::users_with_delays;

TEST(FedCs, RejectsNonPositiveDeadline) {
  EXPECT_THROW(FedCsSelection(0.0), std::invalid_argument);
  EXPECT_THROW(FedCsSelection(-1.0), std::invalid_argument);
}

TEST(FedCs, SelectsFastUsersWithinDeadline) {
  // Users: (t_cal, t_com).  Round time of first two fast users:
  // TDMA = max(0.5, then serialized uploads).
  const auto users = users_with_delays({{0.5, 1.0}, {1.0, 1.0}, {5.0, 1.0}});
  FedCsSelection strategy(/*deadline_s=*/3.5);
  const Decision d = strategy.decide({users}, 0);
  // Estimated round for {0}: 1.5; for {0,1}: uploads serialize -> 3.0;
  // adding user 2 -> >= 6.0 > deadline.
  EXPECT_EQ(d.selected, (std::vector<std::size_t>{0, 1}));
}

TEST(FedCs, GenerousDeadlineAdmitsEveryone) {
  const auto users = users_with_delays({{0.5, 1.0}, {1.0, 1.0}, {5.0, 1.0}});
  FedCsSelection strategy(/*deadline_s=*/100.0);
  const Decision d = strategy.decide({users}, 0);
  EXPECT_EQ(d.selected.size(), 3u);
}

TEST(FedCs, TightDeadlineStillAdmitsFastestUser) {
  const auto users = users_with_delays({{2.0, 3.0}, {4.0, 3.0}});
  FedCsSelection strategy(/*deadline_s=*/0.1);
  const Decision d = strategy.decide({users}, 0);
  EXPECT_EQ(d.selected, (std::vector<std::size_t>{0}));
}

TEST(FedCs, DecisionIsRoundInvariant) {
  // FedCS is deterministic and stateless: every round picks the same set.
  const auto users = users_with_delays({{0.5, 0.5}, {1.0, 0.5}, {2.0, 0.5}});
  FedCsSelection strategy(3.0);
  const Decision d0 = strategy.decide({users}, 0);
  const Decision d100 = strategy.decide({users}, 100);
  EXPECT_EQ(d0.selected, d100.selected);
}

TEST(FedCs, AllAtMaxFrequency) {
  const auto users = users_with_delays({{0.5, 0.5}, {1.0, 0.5}});
  FedCsSelection strategy(10.0);
  const Decision d = strategy.decide({users}, 0);
  for (std::size_t k = 0; k < d.selected.size(); ++k) {
    EXPECT_DOUBLE_EQ(d.frequencies_hz[k], users[d.selected[k]].device.f_max_hz);
  }
}

TEST(FedCs, MaxFractionCapsAdmissions) {
  const auto users = users_with_delays(
      {{0.1, 0.1}, {0.2, 0.1}, {0.3, 0.1}, {0.4, 0.1}, {0.5, 0.1}});
  FedCsSelection strategy(/*deadline_s=*/100.0, /*max_fraction=*/0.4);
  const Decision d = strategy.decide({users}, 0);
  EXPECT_EQ(d.selected.size(), 2u);
  EXPECT_EQ(d.selected, (std::vector<std::size_t>{0, 1}));
}

TEST(FedCs, EstimateRoundTimeMatchesTdma) {
  const auto users = users_with_delays({{0.5, 1.0}, {1.0, 2.0}});
  const std::vector<std::size_t> members = {0, 1};
  const double estimated = estimate_round_time({users}, members);
  const std::vector<double> compute = {0.5, 1.0};
  const std::vector<double> upload = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(estimated, mec::schedule_uploads(compute, upload).round_delay_s);
}

TEST(FedCs, SelectedRoundTimeIsWithinDeadline) {
  const auto users = users_with_delays(
      {{0.3, 0.4}, {0.6, 0.4}, {0.9, 0.4}, {1.2, 0.4}, {1.5, 0.4}, {4.0, 0.4}});
  FedCsSelection strategy(2.5);
  const Decision d = strategy.decide({users}, 0);
  ASSERT_GT(d.selected.size(), 1u);
  EXPECT_LE(estimate_round_time({users}, d.selected), 2.5);
}

TEST(FedCs, ExcludesSlowUsersForever) {
  // The accuracy-ceiling mechanism (Section V-A): the slowest user never
  // appears across many rounds.
  const auto users =
      users_with_delays({{0.3, 0.4}, {0.6, 0.4}, {0.9, 0.4}, {10.0, 0.4}});
  FedCsSelection strategy(3.0);
  for (std::size_t round = 0; round < 50; ++round) {
    const Decision d = strategy.decide({users}, round);
    for (const auto i : d.selected) EXPECT_NE(i, 3u);
  }
}

TEST(FedCs, NameIsFedCS) {
  FedCsSelection strategy(1.0);
  EXPECT_EQ(strategy.name(), "FedCS");
}

}  // namespace
}  // namespace helcfl::sched
