// End-to-end behavioural checks: the qualitative claims of the paper's
// evaluation must hold on a scaled-down workload.  These are the slowest
// tests in the suite (a few seconds).
#include <gtest/gtest.h>

#include "sim/simulation.h"

namespace helcfl::sim {
namespace {

ExperimentConfig medium_config(Scheme scheme, bool noniid) {
  ExperimentConfig c = paper_config();
  c.scheme = scheme;
  c.noniid = noniid;
  c.n_users = 50;
  c.dataset.train_samples = 1000;
  c.dataset.test_samples = 300;
  c.shards_per_user = 4;
  c.trainer.max_rounds = 60;
  c.trainer.eval_every = 5;
  c.sl_eval_every = 20;
  c.sl_eval_users = 8;
  c.seed = 2024;
  return c;
}

class IntegrationShape : public ::testing::TestWithParam<bool> {};

TEST_P(IntegrationShape, HelcflLearnsWellAboveChance) {
  const ExperimentResult r = run_experiment(medium_config(Scheme::kHelcfl, GetParam()));
  EXPECT_GT(r.history.best_accuracy(), 0.40);
}

TEST_P(IntegrationShape, FedCsPlateausBelowHelcfl) {
  const bool noniid = GetParam();
  const ExperimentResult helcfl = run_experiment(medium_config(Scheme::kHelcfl, noniid));
  const ExperimentResult fedcs = run_experiment(medium_config(Scheme::kFedCs, noniid));
  EXPECT_GT(helcfl.history.best_accuracy(), fedcs.history.best_accuracy() + 0.03);
}

TEST_P(IntegrationShape, SlStaysFarBelowFederatedSchemes) {
  const bool noniid = GetParam();
  const ExperimentResult helcfl = run_experiment(medium_config(Scheme::kHelcfl, noniid));
  const ExperimentResult sl = run_experiment(medium_config(Scheme::kSl, noniid));
  EXPECT_GT(helcfl.history.best_accuracy(), sl.history.best_accuracy() + 0.15);
}

TEST_P(IntegrationShape, HelcflTradesLessWallClockForTheSameRounds) {
  // The mechanism behind the Table-I speedups: Classic FL pays
  // max-of-a-random-cohort every round (≈ the 90th-percentile user delay),
  // while greedy-decay groups similar-delay users into the same rounds, so
  // slow users are amortized into a few slow rounds.  Same round count ->
  // strictly less cumulative delay, at comparable accuracy.  (The
  // target-accuracy speedup itself is seed-noisy at this reduced scale;
  // the full-scale Table-I bench reports it.)
  const bool noniid = GetParam();
  const ExperimentResult helcfl = run_experiment(medium_config(Scheme::kHelcfl, noniid));
  const ExperimentResult classic =
      run_experiment(medium_config(Scheme::kClassicFl, noniid));
  ASSERT_EQ(helcfl.history.size(), classic.history.size());
  EXPECT_LT(helcfl.history.total_delay_s(), classic.history.total_delay_s());
  EXPECT_NEAR(helcfl.history.best_accuracy(), classic.history.best_accuracy(), 0.05);
}

TEST_P(IntegrationShape, DvfsSavesEnergyAtEqualDelayAndAccuracy) {
  // The Fig.-3 headline.
  const bool noniid = GetParam();
  const ExperimentResult with_dvfs =
      run_experiment(medium_config(Scheme::kHelcfl, noniid));
  const ExperimentResult without =
      run_experiment(medium_config(Scheme::kHelcflNoDvfs, noniid));
  // Identical selection sequence -> identical accuracy trajectory.
  ASSERT_EQ(with_dvfs.history.size(), without.history.size());
  for (std::size_t i = 0; i < with_dvfs.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(with_dvfs.history.rounds()[i].test_accuracy,
                     without.history.rounds()[i].test_accuracy);
  }
  EXPECT_NEAR(with_dvfs.history.total_delay_s(), without.history.total_delay_s(),
              1e-6);
  EXPECT_LT(with_dvfs.history.total_energy_j(),
            0.95 * without.history.total_energy_j());
}

TEST_P(IntegrationShape, FedlMatchesClassicAccuracyTrajectory) {
  // Section VII-B: "FEDL and Classic FL have equivalent accuracy curves"
  // because they share the selection rule; only delay/energy differ.
  const bool noniid = GetParam();
  const ExperimentResult classic =
      run_experiment(medium_config(Scheme::kClassicFl, noniid));
  const ExperimentResult fedl = run_experiment(medium_config(Scheme::kFedl, noniid));
  ASSERT_EQ(classic.history.size(), fedl.history.size());
  for (std::size_t i = 0; i < classic.history.size(); ++i) {
    EXPECT_EQ(classic.history.rounds()[i].selected, fedl.history.rounds()[i].selected);
    EXPECT_DOUBLE_EQ(classic.history.rounds()[i].test_accuracy,
                     fedl.history.rounds()[i].test_accuracy);
  }
  // FEDL slows devices below f_max, so its compute energy is lower but its
  // rounds are longer.
  EXPECT_LT(fedl.history.total_energy_j(), classic.history.total_energy_j());
  EXPECT_GT(fedl.history.total_delay_s(), classic.history.total_delay_s());
}

INSTANTIATE_TEST_SUITE_P(Settings, IntegrationShape, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "NonIID" : "IID";
                         });

TEST(Integration, HelcflParticipationIsFairerThanFedCs) {
  const ExperimentResult helcfl = run_experiment(medium_config(Scheme::kHelcfl, true));
  const ExperimentResult fedcs = run_experiment(medium_config(Scheme::kFedCs, true));
  EXPECT_GT(helcfl.history.selection_fairness(50),
            fedcs.history.selection_fairness(50));
}

TEST(Integration, NonIidConvergesSlowerThanIid) {
  const ExperimentResult iid = run_experiment(medium_config(Scheme::kClassicFl, false));
  const ExperimentResult noniid =
      run_experiment(medium_config(Scheme::kClassicFl, true));
  const double target = 0.8 * std::min(iid.history.best_accuracy(),
                                       noniid.history.best_accuracy());
  const auto t_iid = iid.history.time_to_accuracy(target);
  const auto t_noniid = noniid.history.time_to_accuracy(target);
  ASSERT_TRUE(t_iid.has_value());
  ASSERT_TRUE(t_noniid.has_value());
  EXPECT_LT(*t_iid, *t_noniid);
}

}  // namespace
}  // namespace helcfl::sim
