// Crash-mid-run recovery (docs/CHECKPOINT.md): a run that is killed right
// after a cadence write — simulated by capping max_rounds at the kill
// round, exactly what a process that died after the write looks like on
// disk — must resume to the same final model, bitwise, as a run that never
// died.  The kill round is picked from the golden run's own fault arrivals
// (the first round in which the injector actually crashed a client), so
// the checkpoint is taken while the injector's streams are mid-flight.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "fl/checkpoint.h"
#include "resume_fixtures.h"

namespace helcfl::fl {
namespace {

const testing::ResumeWorld& world() {
  static const testing::ResumeWorld kWorld;
  return kWorld;
}

// First round with an injected crash, as the kill point; the checkpoint is
// written after it completes, so its injector/RNG cursors sit past draws
// that actually fired.  Clamped to [2, R-1] so both run segments are
// non-trivial.
std::size_t pick_kill_round(const TrainingHistory& golden) {
  std::size_t kill = 3;
  for (const RoundRecord& record : golden.rounds()) {
    if (record.crashed > 0) {
      kill = record.round + 1;  // completed-round count at the write
      break;
    }
  }
  return std::min(std::max<std::size_t>(kill, 2), testing::kResumeRounds - 1);
}

class ResumeCrashTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ResumeCrashTest, KilledRunResumesToGoldenModel) {
  const std::size_t threads = GetParam();
  const std::filesystem::path dir =
      testing::resume_tmp_dir("crash_t" + std::to_string(threads));

  // Golden: uninterrupted, no checkpointing at all.
  const testing::ResumeRun golden = testing::run_resume_case(
      world(), "HELCFL", testing::resume_options(/*faults=*/true, threads));
  const std::size_t kill = pick_kill_round(golden.history);
  ASSERT_GE(kill, 2U);
  ASSERT_LT(kill, testing::kResumeRounds);

  // Crash run: dies at round `kill`, having just written its checkpoint.
  TrainerOptions crashed_options = testing::resume_options(/*faults=*/true, threads);
  crashed_options.max_rounds = kill;
  crashed_options.checkpoint_every = kill;
  crashed_options.checkpoint_path = (dir / "crash.ckpt").string();
  const testing::ResumeRun crashed =
      testing::run_resume_case(world(), "HELCFL", crashed_options);
  ASSERT_EQ(crashed.history.size(), kill);
  const Checkpoint ckpt = Checkpoint::read_file((dir / "crash.ckpt").string());
  EXPECT_EQ(ckpt.next_round, kill);

  // Recovery: resume the dead run to the full horizon.  The final model
  // must match the never-died run bitwise.  (Metrics may not: the capped
  // run force-evaluates its last round, which the golden run may have
  // skipped — evaluation reads the model without perturbing it.)
  TrainerOptions resumed_options = testing::resume_options(/*faults=*/true, threads);
  resumed_options.resume_from = (dir / "crash.ckpt").string();
  const testing::ResumeRun resumed =
      testing::run_resume_case(world(), "HELCFL", resumed_options);

  EXPECT_EQ(golden.final_weights, resumed.final_weights);
  ASSERT_EQ(resumed.history.size(), testing::kResumeRounds);
  // Post-resume rounds carry identical records to the golden run.
  for (std::size_t i = kill; i < testing::kResumeRounds; ++i) {
    const RoundRecord& rg = golden.history.rounds()[i];
    const RoundRecord& rr = resumed.history.rounds()[i];
    EXPECT_EQ(rg.selected, rr.selected) << "round " << i;
    EXPECT_EQ(rg.aggregated, rr.aggregated) << "round " << i;
    EXPECT_EQ(rg.round_delay_s, rr.round_delay_s) << "round " << i;
    EXPECT_EQ(rg.round_energy_j, rr.round_energy_j) << "round " << i;
    EXPECT_EQ(rg.cum_delay_s, rr.cum_delay_s) << "round " << i;
    EXPECT_EQ(rg.cum_energy_j, rr.cum_energy_j) << "round " << i;
    EXPECT_EQ(rg.train_loss, rr.train_loss) << "round " << i;
    EXPECT_EQ(rg.crashed, rr.crashed) << "round " << i;
    EXPECT_EQ(rg.retries, rr.retries) << "round " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ResumeCrashTest, ::testing::Values(1, 4),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return "threads" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace helcfl::fl
