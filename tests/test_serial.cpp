// The serialization substrate of the checkpoint format: fixed-width
// little-endian round-trips, bit-exact float transport (NaN payloads
// included), strict overrun handling, and bounds-checked length prefixes
// that cannot be used to force giant allocations.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/serial.h"

namespace helcfl::util {
namespace {

TEST(ByteWriterReader, ScalarRoundTrip) {
  ByteWriter out;
  out.u8(0x7F);
  out.u32(0xDEADBEEF);
  out.u64(0x0123456789ABCDEFULL);
  out.f32(-1.5F);
  out.f64(3.141592653589793);
  out.boolean(true);
  out.boolean(false);
  out.str("hello");
  out.str("");

  ByteReader in(out.data());
  EXPECT_EQ(in.u8(), 0x7F);
  EXPECT_EQ(in.u32(), 0xDEADBEEFU);
  EXPECT_EQ(in.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(in.f32(), -1.5F);
  EXPECT_EQ(in.f64(), 3.141592653589793);
  EXPECT_TRUE(in.boolean());
  EXPECT_FALSE(in.boolean());
  EXPECT_EQ(in.str(), "hello");
  EXPECT_EQ(in.str(), "");
  EXPECT_TRUE(in.done());
  EXPECT_NO_THROW(in.expect_end("scalars"));
}

TEST(ByteWriterReader, LittleEndianOnTheWire) {
  ByteWriter out;
  out.u32(0x01020304);
  ASSERT_EQ(out.size(), 4U);
  EXPECT_EQ(out.data()[0], 0x04);
  EXPECT_EQ(out.data()[1], 0x03);
  EXPECT_EQ(out.data()[2], 0x02);
  EXPECT_EQ(out.data()[3], 0x01);
}

TEST(ByteWriterReader, FloatsAreBitExact) {
  const float f_nan = std::nanf("0x12345");
  const double d_nan = std::nan("0x6789A");
  ByteWriter out;
  out.f32(f_nan);
  out.f64(d_nan);
  out.f32(-0.0F);
  out.f64(std::numeric_limits<double>::infinity());

  ByteReader in(out.data());
  const float f_back = in.f32();
  const double d_back = in.f64();
  EXPECT_EQ(std::bit_cast<std::uint32_t>(f_back), std::bit_cast<std::uint32_t>(f_nan));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(d_back), std::bit_cast<std::uint64_t>(d_nan));
  EXPECT_TRUE(std::signbit(in.f32()));
  EXPECT_TRUE(std::isinf(in.f64()));
}

TEST(ByteWriterReader, VectorRoundTrip) {
  const std::vector<float> f32s = {1.0F, -2.5F, 0.0F};
  const std::vector<double> f64s = {0.1, -0.2};
  const std::vector<std::uint64_t> u64s = {1, 2, 3, 4};
  const std::vector<std::uint8_t> u8s = {0xAA, 0xBB};
  const std::vector<std::size_t> sizes = {0, 42, 1000000};

  ByteWriter out;
  out.vec_f32(f32s);
  out.vec_f64(f64s);
  out.vec_u64(u64s);
  out.vec_u8(u8s);
  out.vec_size(sizes);
  out.vec_f32({});  // empty vectors round-trip too

  ByteReader in(out.data());
  EXPECT_EQ(in.vec_f32(), f32s);
  EXPECT_EQ(in.vec_f64(), f64s);
  EXPECT_EQ(in.vec_u64(), u64s);
  EXPECT_EQ(in.vec_u8(), u8s);
  EXPECT_EQ(in.vec_size(), sizes);
  EXPECT_TRUE(in.vec_f32().empty());
  EXPECT_TRUE(in.done());
}

TEST(ByteWriterReader, OverrunsThrow) {
  ByteWriter out;
  out.u32(7);
  {
    ByteReader in(out.data());
    EXPECT_THROW(in.u64(), SerialError);  // 8 > 4 available
  }
  {
    ByteReader in(out.data());
    in.u32();
    EXPECT_THROW(in.u8(), SerialError);  // past the end
  }
  {
    ByteReader in({});
    EXPECT_THROW(in.u8(), SerialError);
    EXPECT_THROW(in.f64(), SerialError);
    EXPECT_THROW(in.str(), SerialError);
    EXPECT_THROW(in.vec_f32(), SerialError);
  }
}

TEST(ByteWriterReader, OverrunErrorsNameTheOffendingOffset) {
  // A read past the end must say what was asked, where, and of how much —
  // "read past end" alone is useless when debugging a 2 MB snapshot.
  ByteWriter out;
  out.u32(7);
  {
    ByteReader in(out.data());
    in.u32();
    try {
      in.u64();
      FAIL() << "read past end was accepted";
    } catch (const SerialError& error) {
      const std::string what = error.what();
      EXPECT_NE(what.find("8 byte(s)"), std::string::npos) << what;
      EXPECT_NE(what.find("offset 4"), std::string::npos) << what;
      EXPECT_NE(what.find("4-byte buffer"), std::string::npos) << what;
    }
  }
  // A bad length prefix names the prefix's own offset and the shortfall.
  ByteWriter vec;
  vec.u32(1);  // 4 bytes of preamble so the prefix is not at offset 0
  vec.u64(std::uint64_t{1} << 60);
  ByteReader in(vec.data());
  in.u32();
  try {
    in.vec_u8();
    FAIL() << "huge length prefix was accepted";
  } catch (const SerialError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("length prefix"), std::string::npos) << what;
    EXPECT_NE(what.find("offset 4"), std::string::npos) << what;
    EXPECT_NE(what.find("0 remaining"), std::string::npos) << what;
  }
}

TEST(ByteWriterReader, TrailingBytesAreNamed) {
  ByteWriter out;
  out.u32(1);
  out.u32(2);
  ByteReader in(out.data());
  in.u32();
  try {
    in.expect_end("widget state");
    FAIL() << "expect_end accepted trailing bytes";
  } catch (const SerialError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("widget state"), std::string::npos) << what;
  }
}

TEST(ByteWriterReader, BadBooleanEncodingIsRejected) {
  const std::vector<std::uint8_t> bytes = {2};
  ByteReader in(bytes);
  EXPECT_THROW(in.boolean(), SerialError);
}

// A length prefix larger than the remaining buffer must be rejected
// *before* allocation — a 2^60 count must not attempt a giant vector.
TEST(ByteWriterReader, HugeLengthPrefixesAreRejectedWithoutAllocating) {
  ByteWriter out;
  out.u64(std::uint64_t{1} << 60);
  {
    ByteReader in(out.data());
    EXPECT_THROW(in.vec_f32(), SerialError);
  }
  {
    ByteReader in(out.data());
    EXPECT_THROW(in.vec_u8(), SerialError);
  }
  {
    ByteReader in(out.data());
    EXPECT_THROW(in.str(), SerialError);
  }
}

TEST(Fnv1a64, KnownVectorsAndSensitivity) {
  // FNV-1a offset basis: hash of the empty input.
  EXPECT_EQ(fnv1a64({}), 0xCBF29CE484222325ULL);
  const std::vector<std::uint8_t> a = {'a'};
  EXPECT_EQ(fnv1a64(a), 0xAF63DC4C8601EC8CULL);
  // One flipped bit changes the digest.
  const std::vector<std::uint8_t> x = {1, 2, 3, 4};
  std::vector<std::uint8_t> y = x;
  y[2] ^= 0x01;
  EXPECT_NE(fnv1a64(x), fnv1a64(y));
}

TEST(RngSerialization, WriteReadRoundTripContinuesIdentically) {
  Rng rng(987);
  for (int i = 0; i < 37; ++i) rng.next_u64();
  (void)rng.normal();  // prime the Box-Muller cache so it is carried too

  ByteWriter out;
  write_rng(out, rng);
  ByteReader in(out.data());
  Rng restored = read_rng(in);
  EXPECT_TRUE(in.done());

  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.next_u64(), restored.next_u64());
  }
  EXPECT_EQ(rng.normal(), restored.normal());
}

}  // namespace
}  // namespace helcfl::util
