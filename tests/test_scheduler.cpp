#include "sched/scheduler.h"

#include <gtest/gtest.h>

#include "fl_fixtures.h"
#include "mec/cost_model.h"

namespace helcfl::sched {
namespace {

TEST(SelectionCount, PaperFormulaMaxQc1) {
  EXPECT_EQ(selection_count(100, 0.1), 10u);
  EXPECT_EQ(selection_count(100, 0.05), 5u);
  EXPECT_EQ(selection_count(100, 1.0), 100u);
}

TEST(SelectionCount, AtLeastOne) {
  EXPECT_EQ(selection_count(100, 0.0), 1u);
  EXPECT_EQ(selection_count(3, 0.01), 1u);
}

TEST(SelectionCount, QcBelowHalfRoundsDownToZeroButStillSelectsOne) {
  // Q*C = 0.4 -> llround gives 0; the clamp must lift it to a single user,
  // otherwise the round would train nobody.
  EXPECT_EQ(selection_count(100, 0.004), 1u);
  EXPECT_EQ(selection_count(1, 0.4), 1u);
}

TEST(SelectionCount, NeverExceedsFleet) {
  EXPECT_EQ(selection_count(5, 1.0), 5u);
}

TEST(SelectionCount, RoundsToNearest) {
  EXPECT_EQ(selection_count(10, 0.25), 3u);  // 2.5 rounds to 3 (llround: 3)
  EXPECT_EQ(selection_count(10, 0.24), 2u);
}

TEST(SelectionCount, RejectsBadFraction) {
  EXPECT_THROW(selection_count(10, -0.1), std::invalid_argument);
  EXPECT_THROW(selection_count(10, 1.1), std::invalid_argument);
}

TEST(BuildUserInfo, DerivesDelaysAtMaxFrequency) {
  const auto devices = testing::linear_fleet(4, 30);
  const mec::Channel channel = testing::paper_channel();
  const auto users = build_user_info(devices, channel, 4e6);
  ASSERT_EQ(users.size(), 4u);
  for (std::size_t i = 0; i < users.size(); ++i) {
    EXPECT_DOUBLE_EQ(users[i].t_cal_max_s,
                     mec::compute_delay_s(devices[i], devices[i].f_max_hz));
    EXPECT_DOUBLE_EQ(users[i].t_com_s,
                     mec::upload_delay_s(devices[i], channel, 4e6));
    EXPECT_DOUBLE_EQ(users[i].total_delay_max_s(),
                     users[i].t_cal_max_s + users[i].t_com_s);
    EXPECT_EQ(users[i].device.id, devices[i].id);
  }
}

TEST(BuildUserInfo, FasterDevicesHaveShorterComputeDelay) {
  const auto devices = testing::linear_fleet(10, 30);
  const auto users = build_user_info(devices, testing::paper_channel(), 4e6);
  // linear_fleet orders devices by ascending f_max.
  for (std::size_t i = 1; i < users.size(); ++i) {
    EXPECT_LT(users[i].t_cal_max_s, users[i - 1].t_cal_max_s);
  }
}

TEST(BuildUserInfo, RejectsInvalidDevice) {
  auto devices = testing::linear_fleet(2, 30);
  devices[1].tx_power_w = 0.0;
  EXPECT_THROW(build_user_info(devices, testing::paper_channel(), 4e6),
               std::invalid_argument);
}

TEST(BuildUserInfo, EmptyFleet) {
  EXPECT_TRUE(build_user_info({}, testing::paper_channel(), 4e6).empty());
}

}  // namespace
}  // namespace helcfl::sched
