#include "util/args.h"

#include <gtest/gtest.h>

namespace helcfl::util {
namespace {

ArgParser parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, EmptyCommandLine) {
  const ArgParser args = parse({});
  EXPECT_FALSE(args.has("anything"));
  EXPECT_TRUE(args.positional().empty());
}

TEST(Args, KeyValueOption) {
  const ArgParser args = parse({"--scheme=helcfl"});
  EXPECT_TRUE(args.has("scheme"));
  EXPECT_EQ(args.get("scheme").value(), "helcfl");
}

TEST(Args, BareFlag) {
  const ArgParser args = parse({"--quiet"});
  EXPECT_TRUE(args.has("quiet"));
  EXPECT_FALSE(args.get("quiet").has_value());
  EXPECT_TRUE(args.get_bool_or("quiet", false));
}

TEST(Args, Positional) {
  const ArgParser args = parse({"input.csv", "--flag", "output.csv"});
  EXPECT_EQ(args.positional(),
            (std::vector<std::string>{"input.csv", "output.csv"}));
}

TEST(Args, GetOrFallback) {
  const ArgParser args = parse({"--a=x"});
  EXPECT_EQ(args.get_or("a", "d"), "x");
  EXPECT_EQ(args.get_or("b", "d"), "d");
}

TEST(Args, DoubleParsing) {
  const ArgParser args = parse({"--lr=0.05", "--bad=abc"});
  EXPECT_DOUBLE_EQ(args.get_double_or("lr", 1.0), 0.05);
  EXPECT_DOUBLE_EQ(args.get_double_or("missing", 2.5), 2.5);
  EXPECT_THROW(args.get_double_or("bad", 0.0), std::invalid_argument);
}

TEST(Args, DoubleRejectsTrailingGarbage) {
  const ArgParser args = parse({"--x=1.5abc"});
  EXPECT_THROW(args.get_double_or("x", 0.0), std::invalid_argument);
}

TEST(Args, IntParsing) {
  const ArgParser args = parse({"--rounds=300", "--neg=-5", "--bad=12.5"});
  EXPECT_EQ(args.get_int_or("rounds", 0), 300);
  EXPECT_EQ(args.get_int_or("neg", 0), -5);
  EXPECT_EQ(args.get_int_or("missing", 42), 42);
  EXPECT_THROW(args.get_int_or("bad", 0), std::invalid_argument);
}

TEST(Args, BoolParsing) {
  const ArgParser args =
      parse({"--a=true", "--b=false", "--c=1", "--d=no", "--e=maybe"});
  EXPECT_TRUE(args.get_bool_or("a", false));
  EXPECT_FALSE(args.get_bool_or("b", true));
  EXPECT_TRUE(args.get_bool_or("c", false));
  EXPECT_FALSE(args.get_bool_or("d", true));
  EXPECT_THROW(args.get_bool_or("e", false), std::invalid_argument);
  EXPECT_TRUE(args.get_bool_or("missing", true));
}

TEST(Args, ValueWithEqualsSign) {
  const ArgParser args = parse({"--expr=a=b"});
  EXPECT_EQ(args.get("expr").value(), "a=b");
}

TEST(Args, EmptyValue) {
  const ArgParser args = parse({"--csv="});
  EXPECT_TRUE(args.has("csv"));
  EXPECT_EQ(args.get("csv").value(), "");
}

TEST(Args, UnusedDetectsTypos) {
  const ArgParser args = parse({"--scheme=helcfl", "--shceme=typo", "--verbose"});
  (void)args.get("scheme");
  const auto unused = args.unused();
  EXPECT_EQ(unused.size(), 2u);
}

TEST(Args, QueriedOptionsAreNotUnused) {
  const ArgParser args = parse({"--a=1", "--b"});
  (void)args.get_int_or("a", 0);
  (void)args.get_bool_or("b", false);
  EXPECT_TRUE(args.unused().empty());
}

}  // namespace
}  // namespace helcfl::util
