// Shared helpers for the FL/scheduling tests: tiny datasets, fleets, and
// fleet views with controlled delays.
#pragma once

#include <vector>

#include "data/dataset.h"
#include "data/synthetic_cifar.h"
#include "mec/channel.h"
#include "mec/device.h"
#include "sched/scheduler.h"
#include "util/rng.h"

namespace helcfl::testing {

/// A small learnable dataset (10 classes, 8x8x3) for integration tests.
inline data::TrainTestSplit tiny_split(std::size_t train = 400, std::size_t test = 200,
                                       std::uint64_t seed = 100) {
  data::SyntheticCifarOptions options;
  options.train_samples = train;
  options.test_samples = test;
  util::Rng rng(seed);
  return data::make_synthetic_cifar(options, rng);
}

/// A device with the paper's constants and the given f_max / gain.
inline mec::Device make_device(std::size_t id, double f_max_ghz,
                               std::size_t num_samples, double gain_sq = 1e-7) {
  mec::Device d;
  d.id = id;
  d.f_min_hz = 0.3e9;
  d.f_max_hz = f_max_ghz * 1e9;
  d.switched_capacitance = 2e-28;
  d.cycles_per_sample = 1e7;
  d.num_samples = num_samples;
  d.tx_power_w = 0.2;
  d.channel_gain_sq = gain_sq;
  return d;
}

inline mec::Channel paper_channel() { return {2e6, 1e-9}; }

/// A fleet of n devices with f_max spread linearly over [0.4, 2.0] GHz.
inline std::vector<mec::Device> linear_fleet(std::size_t n,
                                             std::size_t samples_each = 20) {
  std::vector<mec::Device> fleet;
  fleet.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double f_max =
        0.4 + 1.6 * static_cast<double>(i) / std::max<std::size_t>(1, n - 1);
    fleet.push_back(make_device(i, f_max, samples_each));
  }
  return fleet;
}

/// UserInfo entries with directly specified delays (device fields filled
/// with paper constants; t_cal/t_com overridden).
inline std::vector<sched::UserInfo> users_with_delays(
    const std::vector<std::pair<double, double>>& cal_com) {
  std::vector<sched::UserInfo> users;
  users.reserve(cal_com.size());
  for (std::size_t i = 0; i < cal_com.size(); ++i) {
    sched::UserInfo info;
    info.device = make_device(i, 2.0, 20);
    info.t_cal_max_s = cal_com[i].first;
    info.t_com_s = cal_com[i].second;
    users.push_back(info);
  }
  return users;
}

}  // namespace helcfl::testing
