#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace helcfl::util {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/helcfl_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_, {"a", "b"});
    csv.write_row({"1", "2"});
    csv.write_row({"3", "4"});
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  EXPECT_EQ(read_file(path_), "a,b\n1,2\n3,4\n");
}

TEST_F(CsvTest, QuotesSpecialCharacters) {
  {
    CsvWriter csv(path_, {"x"});
    csv.write_row({"has,comma"});
    csv.write_row({"has\"quote"});
    csv.write_row({"has\nnewline"});
  }
  EXPECT_EQ(read_file(path_),
            "x\n\"has,comma\"\n\"has\"\"quote\"\n\"has\nnewline\"\n");
}

TEST_F(CsvTest, PlainFieldsUnquoted) {
  {
    CsvWriter csv(path_, {"x"});
    csv.write_row({"plain text with spaces"});
  }
  EXPECT_EQ(read_file(path_), "x\nplain text with spaces\n");
}

TEST_F(CsvTest, DoubleFieldRoundTrips) {
  const std::string f = CsvWriter::field(0.1);
  EXPECT_EQ(std::stod(f), 0.1);
}

TEST_F(CsvTest, IntegerFields) {
  EXPECT_EQ(CsvWriter::field(std::size_t{42}), "42");
  EXPECT_EQ(CsvWriter::field(-7), "-7");
}

TEST(Csv, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_xyz/file.csv", {"a"}), std::runtime_error);
}

}  // namespace
}  // namespace helcfl::util
