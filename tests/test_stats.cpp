#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace helcfl::util {
namespace {

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_EQ(mean({}), 0.0);
}

TEST(Stats, MeanBasic) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
}

TEST(Stats, VarianceBasic) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(variance(v), 4.0);
  EXPECT_DOUBLE_EQ(stddev(v), 2.0);
}

TEST(Stats, VarianceOfConstantIsZero) {
  const std::vector<double> v = {3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(variance(v), 0.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> v = {3.0, -1.0, 7.0, 2.0};
  EXPECT_DOUBLE_EQ(min_value(v), -1.0);
  EXPECT_DOUBLE_EQ(max_value(v), 7.0);
}

TEST(Stats, PercentileEndpoints) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
}

TEST(Stats, PercentileSingleElement) {
  const std::vector<double> v = {42.0};
  EXPECT_DOUBLE_EQ(percentile(v, 37.0), 42.0);
}

TEST(Stats, PercentileUnsortedInput) {
  const std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
}

TEST(RunningStat, MatchesBatchStatistics) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStat rs;
  for (const double x : v) rs.push(x);
  EXPECT_EQ(rs.count(), v.size());
  EXPECT_NEAR(rs.mean(), mean(v), 1e-12);
  EXPECT_NEAR(rs.variance(), variance(v), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStat, SingleSample) {
  RunningStat rs;
  rs.push(5.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 5.0);
  EXPECT_DOUBLE_EQ(rs.max(), 5.0);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(RunningStat, NegativeValues) {
  RunningStat rs;
  for (const double x : {-5.0, -1.0, -3.0}) rs.push(x);
  EXPECT_DOUBLE_EQ(rs.mean(), -3.0);
  EXPECT_DOUBLE_EQ(rs.min(), -5.0);
  EXPECT_DOUBLE_EQ(rs.max(), -1.0);
}

}  // namespace
}  // namespace helcfl::util
