#include "nn/optimizer.h"

#include <gtest/gtest.h>

#include <vector>

namespace helcfl::nn {
namespace {

std::vector<ParamRef> make_refs(std::vector<float>& value, std::vector<float>& grad) {
  return {{std::span<float>(value), std::span<float>(grad)}};
}

TEST(Sgd, PlainStepIsEq3) {
  // w <- w - lr * grad, exactly the paper's Eq. (3).
  std::vector<float> w = {1.0F, 2.0F};
  std::vector<float> g = {0.5F, -1.0F};
  Sgd sgd({.learning_rate = 0.1F});
  sgd.step(make_refs(w, g));
  EXPECT_FLOAT_EQ(w[0], 0.95F);
  EXPECT_FLOAT_EQ(w[1], 2.1F);
}

TEST(Sgd, ZeroGradientIsNoOp) {
  std::vector<float> w = {3.0F};
  std::vector<float> g = {0.0F};
  Sgd sgd({.learning_rate = 0.5F});
  sgd.step(make_refs(w, g));
  EXPECT_FLOAT_EQ(w[0], 3.0F);
}

TEST(Sgd, MomentumAccumulatesVelocity) {
  std::vector<float> w = {0.0F};
  std::vector<float> g = {1.0F};
  Sgd sgd({.learning_rate = 1.0F, .momentum = 0.5F});
  sgd.step(make_refs(w, g));  // v = 1, w = -1
  EXPECT_FLOAT_EQ(w[0], -1.0F);
  sgd.step(make_refs(w, g));  // v = 1.5, w = -2.5
  EXPECT_FLOAT_EQ(w[0], -2.5F);
  sgd.step(make_refs(w, g));  // v = 1.75, w = -4.25
  EXPECT_FLOAT_EQ(w[0], -4.25F);
}

TEST(Sgd, ResetStateClearsVelocity) {
  std::vector<float> w = {0.0F};
  std::vector<float> g = {1.0F};
  Sgd sgd({.learning_rate = 1.0F, .momentum = 0.9F});
  sgd.step(make_refs(w, g));
  sgd.reset_state();
  w[0] = 0.0F;
  sgd.step(make_refs(w, g));
  EXPECT_FLOAT_EQ(w[0], -1.0F);  // fresh velocity, not 1.9
}

TEST(Sgd, WeightDecayPullsTowardZero) {
  std::vector<float> w = {10.0F};
  std::vector<float> g = {0.0F};
  Sgd sgd({.learning_rate = 0.1F, .weight_decay = 0.5F});
  sgd.step(make_refs(w, g));
  EXPECT_FLOAT_EQ(w[0], 10.0F - 0.1F * 0.5F * 10.0F);
}

TEST(Sgd, MultipleParamTensors) {
  std::vector<float> w1 = {1.0F};
  std::vector<float> g1 = {1.0F};
  std::vector<float> w2 = {2.0F, 3.0F};
  std::vector<float> g2 = {1.0F, 1.0F};
  std::vector<ParamRef> refs = {{std::span<float>(w1), std::span<float>(g1)},
                                {std::span<float>(w2), std::span<float>(g2)}};
  Sgd sgd({.learning_rate = 1.0F});
  sgd.step(refs);
  EXPECT_FLOAT_EQ(w1[0], 0.0F);
  EXPECT_FLOAT_EQ(w2[0], 1.0F);
  EXPECT_FLOAT_EQ(w2[1], 2.0F);
}

TEST(Sgd, MomentumRejectsChangedParamList) {
  std::vector<float> w = {0.0F};
  std::vector<float> g = {1.0F};
  Sgd sgd({.learning_rate = 1.0F, .momentum = 0.5F});
  sgd.step(make_refs(w, g));
  std::vector<float> w2 = {0.0F};
  std::vector<float> g2 = {1.0F};
  std::vector<ParamRef> two = {{std::span<float>(w), std::span<float>(g)},
                               {std::span<float>(w2), std::span<float>(g2)}};
  EXPECT_THROW(sgd.step(two), std::invalid_argument);
}

TEST(Sgd, SetLearningRate) {
  Sgd sgd({.learning_rate = 0.1F});
  sgd.set_learning_rate(0.01F);
  EXPECT_FLOAT_EQ(sgd.options().learning_rate, 0.01F);
}

TEST(Sgd, ConvergesOnQuadratic) {
  // Minimize f(w) = (w - 3)^2; grad = 2(w - 3).
  std::vector<float> w = {0.0F};
  std::vector<float> g = {0.0F};
  Sgd sgd({.learning_rate = 0.1F});
  for (int i = 0; i < 100; ++i) {
    g[0] = 2.0F * (w[0] - 3.0F);
    sgd.step(make_refs(w, g));
  }
  EXPECT_NEAR(w[0], 3.0F, 1e-4F);
}

TEST(Sgd, MomentumConvergesFasterOnIllConditionedQuadratic) {
  auto run = [](float momentum) {
    std::vector<float> w = {10.0F};
    std::vector<float> g = {0.0F};
    Sgd sgd({.learning_rate = 0.02F, .momentum = momentum});
    int steps = 0;
    while (std::abs(w[0]) > 0.01F && steps < 10000) {
      g[0] = 2.0F * w[0];
      sgd.step({{std::span<float>(w), std::span<float>(g)}});
      ++steps;
    }
    return steps;
  };
  EXPECT_LT(run(0.9F), run(0.0F));
}

}  // namespace
}  // namespace helcfl::nn
