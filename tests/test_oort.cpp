#include "sched/oort.h"

#include <gtest/gtest.h>

#include <set>

#include "fl_fixtures.h"

namespace helcfl::sched {
namespace {

std::vector<UserInfo> fleet_of(std::size_t n) {
  const auto devices = testing::linear_fleet(n, 20);
  return build_user_info(devices, testing::paper_channel(), 4e6);
}

TEST(Oort, RejectsBadOptions) {
  EXPECT_THROW(OortSelection({.fraction = 0.0}, util::Rng(1)), std::invalid_argument);
  EXPECT_THROW(OortSelection({.alpha = -1.0}, util::Rng(1)), std::invalid_argument);
  EXPECT_THROW(OortSelection({.explore_ratio = 1.5}, util::Rng(1)),
               std::invalid_argument);
}

TEST(Oort, SelectsRequestedFraction) {
  const auto users = fleet_of(40);
  OortSelection strategy({.fraction = 0.25}, util::Rng(2));
  const Decision d = strategy.decide({users}, 0);
  EXPECT_EQ(d.selected.size(), 10u);
  const std::set<std::size_t> unique(d.selected.begin(), d.selected.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Oort, RunsAtMaxFrequency) {
  const auto users = fleet_of(20);
  OortSelection strategy({.fraction = 0.2}, util::Rng(3));
  const Decision d = strategy.decide({users}, 0);
  for (std::size_t k = 0; k < d.selected.size(); ++k) {
    EXPECT_DOUBLE_EQ(d.frequencies_hz[k], users[d.selected[k]].device.f_max_hz);
  }
}

TEST(Oort, ObserveUpdatesStatisticalUtility) {
  const auto users = fleet_of(10);
  OortSelection strategy({.fraction = 0.2, .explore_ratio = 0.0}, util::Rng(4));
  Decision d = strategy.decide({users}, 0);
  const std::vector<double> losses = {2.5, 0.1};
  strategy.observe(0, d, losses);
  EXPECT_DOUBLE_EQ(strategy.statistical_utility(d.selected[0]), 2.5);
  EXPECT_DOUBLE_EQ(strategy.statistical_utility(d.selected[1]), 0.1);
}

TEST(Oort, UnexploredUsersCarryOptimisticUtility) {
  const auto users = fleet_of(10);
  OortSelection strategy({.fraction = 0.2, .explore_ratio = 0.0}, util::Rng(5));
  Decision d = strategy.decide({users}, 0);
  strategy.observe(0, d, std::vector<double>{5.0, 4.0});
  // An unexplored user's prior equals the maximum loss seen so far.
  for (std::size_t i = 0; i < 10; ++i) {
    if (i != d.selected[0] && i != d.selected[1]) {
      EXPECT_DOUBLE_EQ(strategy.statistical_utility(i), 5.0);
    }
  }
}

TEST(Oort, HighLossUsersArePreferred) {
  const auto users = fleet_of(10);
  OortSelection strategy({.fraction = 0.1, .explore_ratio = 0.0}, util::Rng(6));
  (void)strategy.decide({users}, 0);  // initializes the per-user state
  // Explore everyone once with equal low loss except user 3.
  for (std::size_t i = 0; i < 10; ++i) {
    Decision fake;
    fake.selected = {i};
    strategy.observe(0, fake, std::vector<double>{i == 3 ? 9.0 : 0.5});
  }
  const Decision d = strategy.decide({users}, 1);
  ASSERT_EQ(d.selected.size(), 1u);
  EXPECT_EQ(d.selected[0], 3u);
}

TEST(Oort, SlowUsersArePenalized) {
  // Two users with equal loss; the one far above the preferred duration
  // loses.  linear_fleet orders ascending f_max, so user 0 is slowest.
  const auto users = fleet_of(10);
  OortSelection strategy(
      {.fraction = 0.1, .alpha = 5.0, .explore_ratio = 0.0,
       .preferred_duration_s = users[9].total_delay_max_s()},
      util::Rng(7));
  (void)strategy.decide({users}, 0);  // initializes the per-user state
  for (std::size_t i = 0; i < 10; ++i) {
    Decision fake;
    fake.selected = {i};
    strategy.observe(0, fake, std::vector<double>{1.0});
  }
  const Decision d = strategy.decide({users}, 1);
  ASSERT_EQ(d.selected.size(), 1u);
  EXPECT_EQ(d.selected[0], 9u);  // fastest user wins under equal loss
}

TEST(Oort, ExplorationCoversFleetOverTime) {
  const auto users = fleet_of(30);
  OortSelection strategy({.fraction = 0.1, .explore_ratio = 0.5}, util::Rng(8));
  std::set<std::size_t> ever;
  for (std::size_t round = 0; round < 200; ++round) {
    const Decision d = strategy.decide({users}, round);
    for (const auto i : d.selected) ever.insert(i);
    strategy.observe(round, d, std::vector<double>(d.selected.size(), 0.2));
  }
  EXPECT_GT(ever.size(), 25u);
}

TEST(Oort, RespectsAvailabilityMask) {
  const auto users = fleet_of(10);
  std::vector<std::uint8_t> alive(10, 1);
  alive[9] = 0;  // fastest device is dead
  OortSelection strategy({.fraction = 0.3, .explore_ratio = 0.3}, util::Rng(9));
  for (std::size_t round = 0; round < 20; ++round) {
    const Decision d = strategy.decide({users, alive}, round);
    for (const auto i : d.selected) EXPECT_NE(i, 9u);
    strategy.observe(round, d, std::vector<double>(d.selected.size(), 1.0));
  }
}

TEST(Oort, ObserveRejectsSizeMismatch) {
  const auto users = fleet_of(5);
  OortSelection strategy({.fraction = 0.2}, util::Rng(10));
  Decision d = strategy.decide({users}, 0);
  EXPECT_THROW(strategy.observe(0, d, std::vector<double>{}),
               std::invalid_argument);
}

TEST(Oort, ResetRestoresInitialBehaviour) {
  const auto users = fleet_of(20);
  OortSelection strategy({.fraction = 0.2, .explore_ratio = 0.4}, util::Rng(11));
  const Decision first = strategy.decide({users}, 0);
  strategy.observe(0, first, std::vector<double>(first.selected.size(), 3.0));
  (void)strategy.decide({users}, 1);
  strategy.reset();
  EXPECT_EQ(strategy.decide({users}, 0).selected, first.selected);
}

TEST(Oort, FleetSizeChangeThrows) {
  const auto users_a = fleet_of(10);
  const auto users_b = fleet_of(5);
  OortSelection strategy({.fraction = 0.2}, util::Rng(12));
  (void)strategy.decide({users_a}, 0);
  EXPECT_THROW(strategy.decide({users_b}, 1), std::invalid_argument);
}

}  // namespace
}  // namespace helcfl::sched
