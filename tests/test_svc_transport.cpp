// Stream-level edge cases of the socket transport (ISSUE 8).
//
// The in-process codec tests (test_svc_frame.cpp) prove the framing layer
// against adversarial *bytes*; these prove the transport against
// adversarial *streams*: frames split at every read boundary (1-byte
// reads), short writes under a tiny kernel send buffer, mid-frame
// disconnect, decoder resync on a live connection, slow-client
// backpressure, and lease expiry when a connection dies.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <span>
#include <thread>
#include <vector>

#include "svc/frame.h"
#include "svc/listener.h"
#include "svc/service.h"
#include "svc/transport.h"
#include "svc_workload.h"

namespace svc = helcfl::svc;
using namespace helcfl;

namespace {

std::vector<std::uint8_t> report_frame(std::uint64_t device,
                                       std::uint64_t seq) {
  svc::DeviceReport report;
  report.device_id = device;
  report.report_seq = seq;
  report.t_cal_max_s = 1.5;
  report.t_com_s = 0.5;
  return svc::encode_frame(svc::encode(report));
}

/// Writes `bytes` to a raw fd in slices of `chunk`, retrying EAGAIN.
void write_all(int fd, std::span<const std::uint8_t> bytes,
               std::size_t chunk) {
  std::size_t at = 0;
  while (at < bytes.size()) {
    const std::size_t n = std::min(chunk, bytes.size() - at);
    const ssize_t sent = ::send(fd, bytes.data() + at, n, MSG_NOSIGNAL);
    if (sent < 0) {
      ASSERT_TRUE(errno == EAGAIN || errno == EWOULDBLOCK) << strerror(errno);
      continue;
    }
    at += static_cast<std::size_t>(sent);
  }
}

/// Spins until `predicate` is true or ~5 s pass.
template <typename Fn>
bool eventually(Fn predicate) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return predicate();
}

}  // namespace

TEST(Endpoint, ParseRoundTrips) {
  const svc::Endpoint tcp = svc::Endpoint::parse("tcp:127.0.0.1:8443");
  EXPECT_EQ(tcp.kind, svc::Endpoint::Kind::kTcp);
  EXPECT_EQ(tcp.host, "127.0.0.1");
  EXPECT_EQ(tcp.port, 8443);
  EXPECT_EQ(tcp.to_string(), "tcp:127.0.0.1:8443");

  const svc::Endpoint unix_ep = svc::Endpoint::parse("unix:/tmp/x.sock");
  EXPECT_EQ(unix_ep.kind, svc::Endpoint::Kind::kUnix);
  EXPECT_EQ(unix_ep.path, "/tmp/x.sock");
  EXPECT_EQ(unix_ep.to_string(), "unix:/tmp/x.sock");

  EXPECT_THROW(svc::Endpoint::parse("udp:127.0.0.1:1"), svc::TransportError);
  EXPECT_THROW(svc::Endpoint::parse("tcp:127.0.0.1"), svc::TransportError);
  EXPECT_THROW(svc::Endpoint::parse("tcp:127.0.0.1:99999"),
               svc::TransportError);
  EXPECT_THROW(svc::Endpoint::parse("unix:"), svc::TransportError);
}

TEST(FramedConn, ReassemblesOneByteReads) {
  auto [a, b] = svc::Socket::stream_pair();
  const int writer_fd = a.fd();
  svc::FramedConn reader(std::move(b));

  // Three frames, delivered one byte at a time with a read after each.
  std::vector<std::uint8_t> wire;
  for (std::uint64_t seq = 1; seq <= 3; ++seq) {
    const auto frame = report_frame(7, seq);
    wire.insert(wire.end(), frame.begin(), frame.end());
  }
  std::vector<svc::Frame> frames;
  for (const std::uint8_t byte : wire) {
    write_all(writer_fd, {&byte, 1}, 1);
    ASSERT_EQ(reader.read_frames(frames), svc::FramedConn::IoStatus::kOk);
  }
  ASSERT_EQ(frames.size(), 3u);
  for (std::uint64_t seq = 1; seq <= 3; ++seq) {
    EXPECT_EQ(frames[seq - 1].type, svc::MsgType::kDeviceReport);
    const auto report = svc::decode_device_report(frames[seq - 1].payload);
    EXPECT_EQ(report.device_id, 7u);
    EXPECT_EQ(report.report_seq, seq);
  }
  EXPECT_EQ(reader.decode_stats().rejected, 0u);
  EXPECT_EQ(reader.bytes_read(), wire.size());
}

TEST(FramedConn, ShortWritesKeepFramesIntact) {
  auto [a, b] = svc::Socket::stream_pair();
  a.set_send_buffer(1);  // kernel clamps to its floor — still tiny
  svc::FramedConn writer(std::move(a));
  svc::FramedConn reader(std::move(b));

  // A frame far larger than the send buffer: flush() must take multiple
  // partial writes, and the receiver must still see one intact frame.
  svc::DeviceReport report;
  report.device_id = 3;
  report.report_seq = 1;
  report.t_cal_max_s = 2.0;
  report.t_com_s = 1.0;
  const auto small = svc::encode_frame(svc::encode(report));
  svc::DecisionResponse fat;
  fat.controller_seq = 1;
  fat.round = 9;
  fat.selected.assign(20'000, 5);
  fat.frequencies_hz.assign(20'000, 1e9);
  const auto large = svc::encode_frame(svc::encode(fat));

  ASSERT_TRUE(writer.queue_frame(large));
  ASSERT_TRUE(writer.queue_frame(small));
  std::vector<svc::Frame> frames;
  while (writer.want_write()) {
    ASSERT_EQ(writer.flush(), svc::FramedConn::IoStatus::kOk);
    ASSERT_EQ(reader.read_frames(frames), svc::FramedConn::IoStatus::kOk);
  }
  ASSERT_TRUE(eventually([&] {
    reader.read_frames(frames);
    return frames.size() == 2;
  }));
  EXPECT_GT(writer.short_writes(), 0u) << "send buffer did not force"
                                          " partial writes";
  EXPECT_EQ(frames[0].type, svc::MsgType::kDecisionResponse);
  const auto decoded = svc::decode_decision_response(frames[0].payload);
  EXPECT_EQ(decoded.selected.size(), 20'000u);
  EXPECT_EQ(frames[1].type, svc::MsgType::kDeviceReport);
  EXPECT_EQ(reader.decode_stats().rejected, 0u);
}

TEST(FramedConn, MidFrameDisconnectDeliversCompletePrefix) {
  auto [a, b] = svc::Socket::stream_pair();
  const int writer_fd = a.fd();
  svc::FramedConn reader(std::move(b));

  const auto whole = report_frame(1, 1);
  const auto torn = report_frame(2, 2);
  write_all(writer_fd, whole, whole.size());
  write_all(writer_fd, std::span(torn).subspan(0, torn.size() / 2),
            torn.size());
  a.close();  // peer dies mid-frame

  std::vector<svc::Frame> frames;
  ASSERT_TRUE(eventually([&] {
    return reader.read_frames(frames) == svc::FramedConn::IoStatus::kClosed;
  }));
  // The complete frame before the tear is delivered; the torn tail is not.
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(svc::decode_device_report(frames[0].payload).device_id, 1u);
}

TEST(FramedConn, ResyncsAfterCorruptBytesOnLiveConnection) {
  auto [a, b] = svc::Socket::stream_pair();
  const int writer_fd = a.fd();
  svc::FramedConn reader(std::move(b));

  // Garbage, then a frame whose payload is bit-flipped, then a clean
  // frame — all on the same connection.  The decoder must reject the
  // damage and still deliver the clean frame.
  const std::vector<std::uint8_t> garbage = {0xde, 0xad, 0xbe, 0xef, 0x00};
  auto corrupt = report_frame(4, 1);
  corrupt[svc::kFrameHeaderBytes + 3] ^= 0x40;  // payload bit flip
  const auto clean = report_frame(4, 2);
  write_all(writer_fd, garbage, garbage.size());
  write_all(writer_fd, corrupt, corrupt.size());
  write_all(writer_fd, clean, clean.size());

  std::vector<svc::Frame> frames;
  ASSERT_TRUE(eventually([&] {
    reader.read_frames(frames);
    return !frames.empty();
  }));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(svc::decode_device_report(frames[0].payload).report_seq, 2u);
  EXPECT_GT(reader.decode_stats().rejected, 0u);
  EXPECT_GT(reader.decode_stats().resync_bytes, 0u);
}

TEST(FramedConn, BackpressureBoundsOutputBuffer) {
  auto [a, b] = svc::Socket::stream_pair();
  a.set_send_buffer(1);
  svc::FramedConn writer(std::move(a),
                         svc::FramedConn::Options{
                             .max_output_bytes = 256,
                             .read_chunk_bytes = std::size_t{64} << 10});
  // `b` never reads: the kernel buffer fills, then the bounded output
  // buffer, and queue_frame refuses rather than buffering without bound.
  const auto frame = report_frame(0, 1);
  bool refused = false;
  for (int i = 0; i < 1'000; ++i) {
    if (!writer.queue_frame(frame)) {
      refused = true;
      break;
    }
    writer.flush();
  }
  EXPECT_TRUE(refused);
  EXPECT_LE(writer.output_backlog(), 256u);
}

// --- SocketServer end-to-end ------------------------------------------------

namespace {

svc::ServiceOptions tiny_fleet_options() {
  svc::ServiceOptions options;
  options.fraction = 0.25;
  options.eta = 0.9;
  options.lease_ticks = 50;
  options.queue_capacity = 64;
  return options;
}

}  // namespace

TEST(SocketServer, RoundTripOverUnixSocket) {
  const auto users = svc_test::make_users();
  svc::SchedulerService service(users, tiny_fleet_options());
  svc::ServerOptions server_options;
  server_options.ingress_threads = 2;
  const std::string path = ::testing::TempDir() + "helcfl_svc_rt.sock";
  svc::SocketServer server(service, svc::Endpoint::parse("unix:" + path),
                           server_options);
  server.start();

  svc::ClientChannel channel(server.endpoint());
  // Report for every device, then a decision request.
  for (std::size_t d = 0; d < users.size(); ++d) {
    ASSERT_TRUE(channel.send_frame(report_frame(d, 1)));
  }
  std::vector<svc::Frame> inbox;
  ASSERT_TRUE(eventually([&] {
    channel.poll_frames(inbox, 10);
    std::size_t acks = 0;
    for (const auto& f : inbox) {
      if (f.type == svc::MsgType::kReportAck) ++acks;
    }
    return acks == users.size();
  }));

  svc::DecisionRequest request;
  request.controller_seq = 1;
  request.round = 0;
  ASSERT_TRUE(channel.send_frame(svc::encode_frame(svc::encode(request))));
  inbox.clear();
  ASSERT_TRUE(eventually([&] {
    channel.poll_frames(inbox, 10);
    return !inbox.empty() &&
           inbox.back().type == svc::MsgType::kDecisionResponse;
  }));
  const auto decision = svc::decode_decision_response(inbox.back().payload);
  EXPECT_EQ(decision.controller_seq, 1u);
  EXPECT_FALSE(decision.selected.empty());

  server.stop();
  const svc::ServerStats stats = server.stats();
  EXPECT_EQ(stats.conns_accepted, 1u);
  EXPECT_GE(stats.ingress_frames, users.size() + 1);
  EXPECT_GE(stats.egress_frames, users.size() + 1);
}

TEST(SocketServer, DisconnectExpiresLeaseAndReconnectRevives) {
  const auto users = svc_test::make_users();
  svc::SchedulerService service(users, tiny_fleet_options());
  // Test-controlled logical clock: lease expiry is deterministic.
  std::atomic<std::uint64_t> tick{0};
  svc::ServerOptions server_options;
  server_options.tick_source = [&tick] {
    return tick.load(std::memory_order_relaxed);
  };
  svc::SocketServer server(service, svc::Endpoint::parse("tcp:127.0.0.1:0"),
                           server_options);
  server.start();

  {
    svc::ClientChannel channel(server.endpoint());
    ASSERT_TRUE(channel.send_frame(report_frame(0, 1)));
    std::vector<svc::Frame> inbox;
    ASSERT_TRUE(eventually([&] {
      channel.poll_frames(inbox, 10);
      return !inbox.empty();
    }));
  }  // connection drops here

  ASSERT_TRUE(eventually([&] { return server.open_connections() == 0; }));
  // The device goes silent past its lease; the service loop's poll() at
  // the advanced tick parks it.  (Stop the server before reading the
  // service — the service thread is its only permitted caller while
  // running.)
  tick.store(10'000, std::memory_order_relaxed);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.stop();
  EXPECT_FALSE(service.device_alive(0));
  EXPECT_GE(server.stats().conns_accepted, 1u);
  EXPECT_GE(server.stats().conns_closed, 1u);
  EXPECT_GT(service.stats().leases_expired, 0u);
}

TEST(SocketServer, SlowClientIsStalledNotBufferedForever) {
  const auto users = svc_test::make_users();
  svc::SchedulerService service(users, tiny_fleet_options());
  svc::ServerOptions server_options;
  // Tiny output bound + tiny kernel buffer: a client that never reads its
  // acks must be disconnected, not buffered without bound.
  server_options.max_conn_output_bytes = 512;
  server_options.conn_send_buffer_bytes = 1;
  svc::SocketServer server(service, svc::Endpoint::parse("tcp:127.0.0.1:0"),
                           server_options);
  server.start();

  svc::ClientChannel channel(server.endpoint());
  std::uint64_t seq = 1;
  ASSERT_TRUE(eventually([&] {
    // Keep sending reports without ever reading acks.
    for (int i = 0; i < 32 && channel.connected(); ++i) {
      if (!channel.send_frame(report_frame(0, seq++))) break;
    }
    return server.stats().conns_stalled >= 1;
  }));
  server.stop();
  EXPECT_GE(server.stats().conns_stalled, 1u);
}
