// End-to-end gradient checks of whole models against finite differences of
// the actual training loss (softmax cross-entropy), complementing the
// per-layer checks.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/models.h"
#include "nn/serialize.h"
#include "util/rng.h"

namespace helcfl::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

double loss_at(Sequential& model, const Tensor& x,
               std::span<const std::int32_t> labels) {
  const Tensor logits = model.forward(x, false);
  return softmax_cross_entropy(logits, labels).loss;
}

void check_model_gradients(ModelKind kind, double tolerance) {
  util::Rng rng(17);
  const ImageSpec spec{2, 6, 6};
  auto model = make_model(kind, spec, 4, rng);

  Tensor x(Shape{3, 2, 6, 6});
  x.fill_normal(rng, 0.0F, 1.0F);
  const std::vector<std::int32_t> labels = {0, 2, 3};

  model->zero_grad();
  const Tensor logits = model->forward(x, true);
  const LossResult loss = softmax_cross_entropy(logits, labels);
  model->backward(loss.grad_logits);
  const std::vector<float> analytic = extract_gradients(*model);

  // Check a deterministic stride of parameters (full sweep is slow for the
  // CNNs but the stride covers every tensor).
  auto params = extract_parameters(*model);
  const std::size_t stride = std::max<std::size_t>(1, params.size() / 150);
  const double eps = 1e-3;
  for (std::size_t i = 0; i < params.size(); i += stride) {
    const float saved = params[i];
    params[i] = saved + static_cast<float>(eps);
    load_parameters(*model, params);
    const double plus = loss_at(*model, x, labels);
    params[i] = saved - static_cast<float>(eps);
    load_parameters(*model, params);
    const double minus = loss_at(*model, x, labels);
    params[i] = saved;
    const double numeric = (plus - minus) / (2.0 * eps);
    const double denom = std::max(1.0, std::abs(static_cast<double>(analytic[i])));
    EXPECT_NEAR(analytic[i] / denom, numeric / denom, tolerance)
        << "parameter " << i << " of " << model_kind_name(kind);
  }
  load_parameters(*model, params);
}

TEST(ModelGradients, Logistic) { check_model_gradients(ModelKind::kLogistic, 5e-3); }

TEST(ModelGradients, Mlp) { check_model_gradients(ModelKind::kMlp, 2e-2); }

TEST(ModelGradients, SmallCnn) { check_model_gradients(ModelKind::kSmallCnn, 5e-2); }

TEST(ModelGradients, MiniSqueezeNet) {
  check_model_gradients(ModelKind::kMiniSqueezeNet, 4e-2);
}

TEST(ModelGradients, MlpOverfitsTinyDataset) {
  // A model whose gradients are correct must be able to memorize 12 points.
  util::Rng rng(23);
  const ImageSpec spec{1, 4, 4};
  auto model = make_mlp(spec, 32, 3, rng);

  Tensor x(Shape{12, 1, 4, 4});
  x.fill_normal(rng, 0.0F, 1.0F);
  std::vector<std::int32_t> labels;
  for (int i = 0; i < 12; ++i) labels.push_back(i % 3);

  Sgd sgd({.learning_rate = 0.2F, .momentum = 0.9F});
  double final_loss = 0.0;
  for (int step = 0; step < 300; ++step) {
    model->zero_grad();
    const Tensor logits = model->forward(x, true);
    const LossResult loss = softmax_cross_entropy(logits, labels);
    model->backward(loss.grad_logits);
    sgd.step(model->params());
    final_loss = loss.loss;
  }
  EXPECT_LT(final_loss, 0.05);
  const Tensor logits = model->forward(x, false);
  EXPECT_EQ(count_correct(logits, labels), 12u);
}

}  // namespace
}  // namespace helcfl::nn
