#include "nn/compression.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace helcfl::nn {
namespace {

std::vector<float> random_weights(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> w(n);
  for (auto& v : w) v = static_cast<float>(rng.normal(0.0, 0.5));
  return w;
}

TEST(CompressIdentity, LosslessAndFullSize) {
  const auto w = random_weights(100, 1);
  const CompressedModel c = compress_identity(w);
  EXPECT_EQ(c.reconstructed, w);
  EXPECT_EQ(c.wire_bits, 3200u);
}

TEST(Quantization, WireSizeFormula) {
  const auto w = random_weights(1000, 2);
  const CompressedModel c = compress_uniform_quantization(w, 8);
  EXPECT_EQ(c.wire_bits, 32u + 8u * 1000u);
}

TEST(Quantization, ReconstructionErrorBounded) {
  const auto w = random_weights(1000, 3);
  float max_abs = 0.0F;
  for (const float v : w) max_abs = std::max(max_abs, std::abs(v));
  const CompressedModel c = compress_uniform_quantization(w, 8);
  const float step = max_abs / 127.0F;  // 2^7 - 1 levels
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_LE(std::abs(c.reconstructed[i] - w[i]), step / 2.0F + 1e-6F);
  }
}

TEST(Quantization, MoreBitsLessError) {
  const auto w = random_weights(2000, 4);
  auto error = [&](unsigned bits) {
    const CompressedModel c = compress_uniform_quantization(w, bits);
    double sum = 0.0;
    for (std::size_t i = 0; i < w.size(); ++i) {
      sum += std::abs(c.reconstructed[i] - w[i]);
    }
    return sum;
  };
  EXPECT_LT(error(8), error(4));
  EXPECT_LT(error(4), error(2));
}

TEST(Quantization, OneBitIsSignTimesScale) {
  const std::vector<float> w = {0.5F, -0.3F, 0.9F};
  const CompressedModel c = compress_uniform_quantization(w, 1);
  EXPECT_FLOAT_EQ(c.reconstructed[0], 0.9F);
  EXPECT_FLOAT_EQ(c.reconstructed[1], -0.9F);
  EXPECT_FLOAT_EQ(c.reconstructed[2], 0.9F);
}

TEST(Quantization, AllZerosStayZero) {
  const std::vector<float> w(50, 0.0F);
  const CompressedModel c = compress_uniform_quantization(w, 8);
  for (const float v : c.reconstructed) EXPECT_EQ(v, 0.0F);
}

TEST(Quantization, RejectsBadBits) {
  const auto w = random_weights(10, 5);
  EXPECT_THROW(compress_uniform_quantization(w, 0), std::invalid_argument);
  EXPECT_THROW(compress_uniform_quantization(w, 17), std::invalid_argument);
}

TEST(Sparsification, KeepsExactlyRequestedCount) {
  const auto w = random_weights(1000, 6);
  const CompressedModel c = compress_topk_sparsification(w, 0.1);
  std::size_t nonzero = 0;
  for (const float v : c.reconstructed) {
    if (v != 0.0F) {
      ++nonzero;
    }
  }
  EXPECT_EQ(nonzero, 100u);
  EXPECT_EQ(c.wire_bits, 100u * 64u);
}

TEST(Sparsification, KeepsLargestMagnitudes) {
  const std::vector<float> w = {0.1F, -5.0F, 0.2F, 3.0F, -0.05F};
  const CompressedModel c = compress_topk_sparsification(w, 0.4);  // keep 2
  EXPECT_EQ(c.reconstructed[0], 0.0F);
  EXPECT_EQ(c.reconstructed[1], -5.0F);
  EXPECT_EQ(c.reconstructed[2], 0.0F);
  EXPECT_EQ(c.reconstructed[3], 3.0F);
  EXPECT_EQ(c.reconstructed[4], 0.0F);
}

TEST(Sparsification, KeptValuesAreExact) {
  const auto w = random_weights(500, 7);
  const CompressedModel c = compress_topk_sparsification(w, 0.2);
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (c.reconstructed[i] != 0.0F) EXPECT_EQ(c.reconstructed[i], w[i]);
  }
}

TEST(Sparsification, KeepRatioOneIsLossless) {
  const auto w = random_weights(64, 8);
  const CompressedModel c = compress_topk_sparsification(w, 1.0);
  // Zeros in the input stay zero but everything kept is exact; with random
  // normals there are no exact zeros.
  EXPECT_EQ(c.reconstructed, w);
}

TEST(Sparsification, TiesResolvedDeterministically) {
  const std::vector<float> w = {1.0F, 1.0F, 1.0F, 1.0F};
  const CompressedModel c = compress_topk_sparsification(w, 0.5);
  EXPECT_EQ(c.reconstructed, (std::vector<float>{1.0F, 1.0F, 0.0F, 0.0F}));
}

TEST(Sparsification, AtLeastOneKept) {
  const auto w = random_weights(1000, 9);
  const CompressedModel c = compress_topk_sparsification(w, 1e-9);
  std::size_t nonzero = 0;
  for (const float v : c.reconstructed) {
    if (v != 0.0F) ++nonzero;
  }
  EXPECT_EQ(nonzero, 1u);
}

TEST(Sparsification, RejectsBadRatio) {
  const auto w = random_weights(10, 10);
  EXPECT_THROW(compress_topk_sparsification(w, 0.0), std::invalid_argument);
  EXPECT_THROW(compress_topk_sparsification(w, 1.5), std::invalid_argument);
}

TEST(Compression, DispatchMatchesDirectCalls) {
  const auto w = random_weights(200, 11);
  EXPECT_EQ(compress(w, {.kind = CompressionKind::kNone}).wire_bits,
            compress_identity(w).wire_bits);
  EXPECT_EQ(compress(w, {.kind = CompressionKind::kQuantization,
                         .quantization_bits = 4})
                .wire_bits,
            compress_uniform_quantization(w, 4).wire_bits);
  EXPECT_EQ(compress(w, {.kind = CompressionKind::kSparsification,
                         .sparsify_keep_ratio = 0.25})
                .wire_bits,
            compress_topk_sparsification(w, 0.25).wire_bits);
}

TEST(Compression, ParseRoundTrip) {
  for (const auto kind : {CompressionKind::kNone, CompressionKind::kQuantization,
                          CompressionKind::kSparsification}) {
    EXPECT_EQ(parse_compression_kind(compression_kind_name(kind)), kind);
  }
  EXPECT_THROW(parse_compression_kind("zip"), std::invalid_argument);
}

TEST(Compression, QuantizationCompressesEightFold) {
  const auto w = random_weights(4096, 12);
  const auto c = compress_uniform_quantization(w, 4);
  const double ratio = static_cast<double>(c.wire_bits) /
                       static_cast<double>(compress_identity(w).wire_bits);
  EXPECT_NEAR(ratio, 4.0 / 32.0, 0.01);
}

}  // namespace
}  // namespace helcfl::nn
