// Shared workload harness for the scheduler-service differential tests.
//
// The differential proofs (in-process datagrams in
// test_svc_differential.cpp, loopback TCP in
// test_svc_tcp_differential.cpp) must drive the *same* workload — same
// fleet, same per-round delay evolution, same barrier protocol — so that
// "the decision streams are identical" compares scheduling output and
// nothing else.  This header is that single source of truth.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "sched/scheduler.h"
#include "sim/config.h"
#include "sim/fleet.h"
#include "svc/client.h"
#include "svc/frame.h"
#include "svc/service.h"
#include "svc/wire_faults.h"
#include "util/rng.h"

namespace helcfl::svc_test {

inline constexpr std::size_t kQ = 12;
inline constexpr std::uint64_t kSeed = 20260808;

inline std::vector<sched::UserInfo> make_users() {
  sim::ExperimentConfig config = sim::paper_config();
  config.n_users = kQ;
  util::Rng rng(7);
  const std::vector<std::size_t> samples(kQ, 40);
  const auto devices = sim::make_fleet(config, samples, rng);
  return sched::build_user_info(devices, sim::make_channel(config), 4e6);
}

inline svc::ServiceOptions service_options() {
  svc::ServiceOptions options;
  options.fraction = 0.25;
  options.eta = 0.9;
  // Liveness is out of scope for the fault-transparency proof: retry
  // latency must not be able to kill a lease mid-exchange.
  options.lease_ticks = 1'000'000;
  options.queue_capacity = 4 * kQ;
  return options;
}

inline svc::RetryOptions retry_options() {
  svc::RetryOptions retry;
  retry.base_delay_ticks = 1;
  retry.backoff_multiplier = 2.0;
  retry.max_delay_ticks = 8;
  retry.jitter = 0.25;
  retry.max_attempts = 16;
  return retry;
}

/// Deterministic per-(device, round) delay evolution, identical across
/// runs regardless of wire faults.
inline double t_cal_at(const std::vector<sched::UserInfo>& users,
                       std::size_t d, std::uint64_t round) {
  return users[d].t_cal_max_s *
         (1.0 + 0.05 * static_cast<double>((d * 7 + round * 13) % 10));
}
inline double t_com_at(const std::vector<sched::UserInfo>& users,
                       std::size_t d, std::uint64_t round) {
  return users[d].t_com_s *
         (1.0 + 0.04 * static_cast<double>((d * 5 + round * 11) % 10));
}

/// The report device `d` sends in round `round` — both harnesses build
/// reports only through this.
inline svc::DeviceReport report_at(const std::vector<sched::UserInfo>& users,
                                   std::size_t d, std::uint64_t round) {
  svc::DeviceReport report;
  report.device_id = d;
  report.report_seq = round + 1;  // strictly increasing per device
  report.t_cal_max_s = t_cal_at(users, d, round);
  report.t_com_s = t_com_at(users, d, round);
  return report;
}

/// One recorded decision.
struct Pick {
  std::uint64_t round = 0;
  std::vector<std::size_t> selected;
  std::vector<double> frequencies_hz;
  bool degraded = false;
};

/// Drives report-then-decide rounds through two in-process faulty links.
/// Every round is a barrier: all Q reports must be acked before the
/// decision request goes out, so retries fully mask the wire.  Records the
/// decisions and (optionally) every raw service-outbox datagram.
struct Exchange {
  svc::SchedulerService& service;
  svc::ServiceClient& client;
  svc::FaultyLink& to_service;
  svc::FaultyLink& to_client;
  std::uint64_t tick = 0;
  std::vector<std::vector<std::uint8_t>>* raw_outbox = nullptr;

  /// One full transport round-trip at the current tick.
  void pump() {
    for (const auto& frame : client.poll(tick)) {
      to_service.send(frame, tick);
    }
    for (const auto& datagram : to_service.advance(tick)) {
      service.ingest(datagram, tick);
    }
    service.poll(tick);
    for (auto& datagram : service.take_outbox()) {
      if (raw_outbox != nullptr) raw_outbox->push_back(datagram);
      to_client.send(datagram, tick);
    }
    for (const auto& datagram : to_client.advance(tick)) {
      client.deliver(datagram);
    }
    ++tick;
  }

  Pick run_round(const std::vector<sched::UserInfo>& users,
                 std::uint64_t round) {
    for (std::size_t d = 0; d < users.size(); ++d) {
      client.send_report(report_at(users, d, round), tick);
    }
    const std::uint64_t report_deadline = tick + 10'000;
    while (client.pending_reports() > 0) {
      pump();
      EXPECT_LT(tick, report_deadline) << "report barrier stalled";
      if (tick >= report_deadline) return {};
    }
    client.request_decision(round, tick);
    const std::uint64_t decide_deadline = tick + 10'000;
    std::optional<svc::DecisionResponse> response;
    while (!(response = client.take_decision()).has_value()) {
      pump();
      EXPECT_LT(tick, decide_deadline) << "decision stalled";
      if (tick >= decide_deadline) return {};
    }
    Pick pick;
    pick.round = response->round;
    pick.selected = response->selected;
    pick.frequencies_hz = response->frequencies_hz;
    pick.degraded = response->degraded;
    return pick;
  }
};

inline svc::FaultyLink make_link(double fault_rate, std::uint64_t stream) {
  svc::WireFaultOptions faults;
  faults.drop_rate = fault_rate;
  faults.corrupt_rate = fault_rate;
  faults.duplicate_rate = fault_rate;
  faults.delay_rate = fault_rate > 0.0 ? 0.25 : 0.0;
  faults.max_delay_ticks = 6;
  return svc::FaultyLink(
      svc::WireFaultInjector(faults, util::Rng(kSeed).fork(stream)));
}

/// The full in-process workload: `rounds` barrier rounds over links faulting
/// at `fault_rate`.  The fault_rate == 0 run is the reference decision
/// stream every transport variant must reproduce.
inline std::vector<Pick> run_workload(double fault_rate,
                                      std::uint64_t rounds) {
  const auto users = make_users();
  svc::SchedulerService service(users, service_options());
  svc::ServiceClient client(retry_options(), util::Rng(kSeed).fork(100));
  svc::FaultyLink to_service = make_link(fault_rate, 1);
  svc::FaultyLink to_client = make_link(fault_rate, 2);
  Exchange exchange{service, client, to_service, to_client};

  std::vector<Pick> picks;
  for (std::uint64_t round = 0; round < rounds; ++round) {
    picks.push_back(exchange.run_round(users, round));
  }
  // The retry budget must never have been exhausted — a silently-lost
  // report would invalidate the equality claim rather than prove it.
  EXPECT_EQ(client.exhausted(), 0u);
  EXPECT_EQ(service.stats().decisions, rounds);
  return picks;
}

}  // namespace helcfl::svc_test
