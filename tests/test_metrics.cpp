#include "fl/metrics.h"

#include <gtest/gtest.h>

namespace helcfl::fl {
namespace {

RoundRecord record(std::size_t round, double cum_delay, double cum_energy,
                   double accuracy, bool evaluated = true) {
  RoundRecord r;
  r.round = round;
  r.cum_delay_s = cum_delay;
  r.cum_energy_j = cum_energy;
  r.evaluated = evaluated;
  r.test_accuracy = accuracy;
  return r;
}

TEST(TrainingHistory, EmptyDefaults) {
  const TrainingHistory h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.size(), 0u);
  EXPECT_DOUBLE_EQ(h.best_accuracy(), 0.0);
  EXPECT_FALSE(h.time_to_accuracy(0.5).has_value());
  EXPECT_DOUBLE_EQ(h.total_delay_s(), 0.0);
  EXPECT_DOUBLE_EQ(h.total_energy_j(), 0.0);
}

TEST(TrainingHistory, BestAccuracyIgnoresUnevaluatedRounds) {
  TrainingHistory h;
  h.add(record(0, 1.0, 1.0, 0.5));
  h.add(record(1, 2.0, 2.0, 0.9, /*evaluated=*/false));
  h.add(record(2, 3.0, 3.0, 0.7));
  EXPECT_DOUBLE_EQ(h.best_accuracy(), 0.7);
}

TEST(TrainingHistory, BestAccuracyIsMaxNotLast) {
  TrainingHistory h;
  h.add(record(0, 1.0, 1.0, 0.8));
  h.add(record(1, 2.0, 2.0, 0.6));
  EXPECT_DOUBLE_EQ(h.best_accuracy(), 0.8);
}

TEST(TrainingHistory, TimeToAccuracyFirstCrossing) {
  TrainingHistory h;
  h.add(record(0, 10.0, 1.0, 0.3));
  h.add(record(1, 20.0, 2.0, 0.6));
  h.add(record(2, 30.0, 3.0, 0.8));
  const auto t = h.time_to_accuracy(0.55);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 20.0);
}

TEST(TrainingHistory, TimeToAccuracyUnreachedIsNullopt) {
  TrainingHistory h;
  h.add(record(0, 10.0, 1.0, 0.3));
  EXPECT_FALSE(h.time_to_accuracy(0.9).has_value());
}

TEST(TrainingHistory, TimeToAccuracyExactTargetCounts) {
  TrainingHistory h;
  h.add(record(0, 10.0, 1.0, 0.6));
  const auto t = h.time_to_accuracy(0.6);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 10.0);
}

TEST(TrainingHistory, EnergyToAccuracy) {
  TrainingHistory h;
  h.add(record(0, 10.0, 5.0, 0.3));
  h.add(record(1, 20.0, 12.0, 0.7));
  const auto e = h.energy_to_accuracy(0.65);
  ASSERT_TRUE(e.has_value());
  EXPECT_DOUBLE_EQ(*e, 12.0);
}

TEST(TrainingHistory, SelectionCounts) {
  TrainingHistory h;
  RoundRecord r0 = record(0, 1.0, 1.0, 0.1);
  r0.selected = {0, 2};
  RoundRecord r1 = record(1, 2.0, 2.0, 0.2);
  r1.selected = {2, 3};
  h.add(r0);
  h.add(r1);
  EXPECT_EQ(h.selection_counts(4), (std::vector<std::size_t>{1, 0, 2, 1}));
}

TEST(TrainingHistory, SelectionCountsIgnoresOutOfRange) {
  TrainingHistory h;
  RoundRecord r = record(0, 1.0, 1.0, 0.1);
  r.selected = {0, 9};
  h.add(r);
  EXPECT_EQ(h.selection_counts(2), (std::vector<std::size_t>{1, 0}));
}

TEST(TrainingHistory, FairnessOneWhenUniform) {
  TrainingHistory h;
  RoundRecord r = record(0, 1.0, 1.0, 0.1);
  r.selected = {0, 1, 2, 3};
  h.add(r);
  EXPECT_NEAR(h.selection_fairness(4), 1.0, 1e-12);
}

TEST(TrainingHistory, FairnessLowWhenConcentrated) {
  TrainingHistory h;
  for (std::size_t round = 0; round < 10; ++round) {
    RoundRecord r = record(round, 1.0, 1.0, 0.1);
    r.selected = {0};
    h.add(r);
  }
  // All selections on 1 of 10 users: Jain index = 1/10.
  EXPECT_NEAR(h.selection_fairness(10), 0.1, 1e-12);
}

TEST(TrainingHistory, FairnessOfEmptyHistoryIsOne) {
  const TrainingHistory h;
  EXPECT_DOUBLE_EQ(h.selection_fairness(5), 1.0);
}

TEST(TrainingHistory, TotalsComeFromLastRound) {
  TrainingHistory h;
  h.add(record(0, 10.0, 100.0, 0.1));
  h.add(record(1, 25.0, 180.0, 0.2));
  EXPECT_DOUBLE_EQ(h.total_delay_s(), 25.0);
  EXPECT_DOUBLE_EQ(h.total_energy_j(), 180.0);
  EXPECT_EQ(h.back().round, 1u);
}

}  // namespace
}  // namespace helcfl::fl
