#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace helcfl::util {
namespace {

TEST(ThreadPool, RunsEveryTaskUnderContention) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);

  constexpr std::size_t kTasks = 200;
  std::atomic<std::size_t> started{0};
  std::vector<std::future<std::size_t>> futures;
  futures.reserve(kTasks);
  for (std::size_t k = 0; k < kTasks; ++k) {
    futures.push_back(pool.submit([k, &started] {
      started.fetch_add(1, std::memory_order_relaxed);
      return k * k;
    }));
  }
  // Joining futures in submission order yields deterministic results even
  // though completion order across workers is arbitrary.
  for (std::size_t k = 0; k < kTasks; ++k) {
    EXPECT_EQ(futures[k].get(), k * k);
  }
  EXPECT_EQ(started.load(), kTasks);
}

TEST(ThreadPool, WorkerIndexIsStableAndInRange) {
  ThreadPool pool(3);
  std::vector<std::future<std::size_t>> futures;
  for (std::size_t k = 0; k < 64; ++k) {
    futures.push_back(pool.submit([] { return ThreadPool::worker_index(); }));
  }
  for (auto& future : futures) {
    const std::size_t index = future.get();
    EXPECT_LT(index, 3u);
  }
  // The submitting thread is not a pool worker.
  EXPECT_EQ(ThreadPool::worker_index(), ThreadPool::npos);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 41 + 1; });
  auto bad = pool.submit([]() -> int { throw std::runtime_error("task failed"); });
  EXPECT_EQ(ok.get(), 42);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The pool survives a throwing task and keeps accepting work.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, DestructionDrainsQueuedWork) {
  constexpr std::size_t kTasks = 32;
  std::atomic<std::size_t> completed{0};
  {
    ThreadPool pool(2);
    for (std::size_t k = 0; k < kTasks; ++k) {
      pool.submit([&completed] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        completed.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // Destructor must finish every queued task before joining.
  }
  EXPECT_EQ(completed.load(), kTasks);
}

TEST(ThreadPool, ZeroAndOneThreadDegradeToInlineExecution) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}}) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.worker_count(), 0u);

    const std::thread::id caller = std::this_thread::get_id();
    auto future = pool.submit([caller] {
      // Inline mode runs on the submitting thread, outside any worker.
      EXPECT_EQ(std::this_thread::get_id(), caller);
      EXPECT_EQ(ThreadPool::worker_index(), ThreadPool::npos);
      return 123;
    });
    // The task already ran; get() must not block.
    EXPECT_EQ(future.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_EQ(future.get(), 123);

    auto bad = pool.submit([]() -> int { throw std::invalid_argument("inline"); });
    EXPECT_THROW(bad.get(), std::invalid_argument);
  }
}

TEST(ThreadPool, ResolveThreadCount) {
  EXPECT_EQ(ThreadPool::resolve_thread_count(1), 1u);
  EXPECT_EQ(ThreadPool::resolve_thread_count(8), 8u);
  EXPECT_GE(ThreadPool::resolve_thread_count(0), 1u);  // auto
}

/// Checks that `chunks` tiles [0, total) exactly, in order, with interior
/// boundaries on granularity multiples.
void expect_covers(const std::vector<ThreadPool::Chunk>& chunks,
                   std::size_t total, std::size_t granularity) {
  std::size_t cursor = 0;
  for (const auto& chunk : chunks) {
    EXPECT_EQ(chunk.begin, cursor);
    EXPECT_LT(chunk.begin, chunk.end);
    if (chunk.end != total) {
      EXPECT_EQ(chunk.end % granularity, 0u)
          << "interior boundary " << chunk.end << " off granularity";
    }
    cursor = chunk.end;
  }
  EXPECT_EQ(cursor, total);
}

TEST(ThreadPool, PartitionChunksCoversRangeOnGranularityBoundaries) {
  expect_covers(ThreadPool::partition_chunks(512, 4, 96), 512, 96);
  expect_covers(ThreadPool::partition_chunks(257, 4, 96), 257, 96);
  expect_covers(ThreadPool::partition_chunks(1000, 3, 1), 1000, 1);
  expect_covers(ThreadPool::partition_chunks(96, 4, 96), 96, 96);
  expect_covers(ThreadPool::partition_chunks(95, 4, 96), 95, 96);
}

TEST(ThreadPool, PartitionChunksNeverExceedsPartsAndShrinksWhenSmall) {
  EXPECT_EQ(ThreadPool::partition_chunks(512, 4, 96).size(), 4u);
  // 257 rows = 3 granularity units: only 3 of the 4 parts get work.
  EXPECT_EQ(ThreadPool::partition_chunks(257, 4, 96).size(), 3u);
  // A single unit cannot split at all.
  EXPECT_EQ(ThreadPool::partition_chunks(96, 4, 96).size(), 1u);
  EXPECT_EQ(ThreadPool::partition_chunks(1, 8, 96).size(), 1u);
}

TEST(ThreadPool, PartitionChunksHandlesEdgeCases) {
  EXPECT_TRUE(ThreadPool::partition_chunks(0, 4, 96).empty());
  // Granularity 0 behaves as 1.
  const auto unit = ThreadPool::partition_chunks(10, 3, 0);
  expect_covers(unit, 10, 1);
  EXPECT_EQ(unit.size(), 3u);
  // Larger chunks come first, sizes within one granularity unit.
  const auto chunks = ThreadPool::partition_chunks(512, 4, 96);
  for (std::size_t i = 1; i < chunks.size(); ++i) {
    EXPECT_GE(chunks[i - 1].end - chunks[i - 1].begin,
              chunks[i].end - chunks[i].begin);
  }
}

TEST(ThreadPool, PartitionChunksIsDeterministic) {
  const auto a = ThreadPool::partition_chunks(777, 5, 96);
  const auto b = ThreadPool::partition_chunks(777, 5, 96);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].begin, b[i].begin);
    EXPECT_EQ(a[i].end, b[i].end);
  }
}

}  // namespace
}  // namespace helcfl::util
