#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace helcfl::util {
namespace {

TEST(ThreadPool, RunsEveryTaskUnderContention) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);

  constexpr std::size_t kTasks = 200;
  std::atomic<std::size_t> started{0};
  std::vector<std::future<std::size_t>> futures;
  futures.reserve(kTasks);
  for (std::size_t k = 0; k < kTasks; ++k) {
    futures.push_back(pool.submit([k, &started] {
      started.fetch_add(1, std::memory_order_relaxed);
      return k * k;
    }));
  }
  // Joining futures in submission order yields deterministic results even
  // though completion order across workers is arbitrary.
  for (std::size_t k = 0; k < kTasks; ++k) {
    EXPECT_EQ(futures[k].get(), k * k);
  }
  EXPECT_EQ(started.load(), kTasks);
}

TEST(ThreadPool, WorkerIndexIsStableAndInRange) {
  ThreadPool pool(3);
  std::vector<std::future<std::size_t>> futures;
  for (std::size_t k = 0; k < 64; ++k) {
    futures.push_back(pool.submit([] { return ThreadPool::worker_index(); }));
  }
  for (auto& future : futures) {
    const std::size_t index = future.get();
    EXPECT_LT(index, 3u);
  }
  // The submitting thread is not a pool worker.
  EXPECT_EQ(ThreadPool::worker_index(), ThreadPool::npos);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 41 + 1; });
  auto bad = pool.submit([]() -> int { throw std::runtime_error("task failed"); });
  EXPECT_EQ(ok.get(), 42);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The pool survives a throwing task and keeps accepting work.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, DestructionDrainsQueuedWork) {
  constexpr std::size_t kTasks = 32;
  std::atomic<std::size_t> completed{0};
  {
    ThreadPool pool(2);
    for (std::size_t k = 0; k < kTasks; ++k) {
      pool.submit([&completed] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        completed.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // Destructor must finish every queued task before joining.
  }
  EXPECT_EQ(completed.load(), kTasks);
}

TEST(ThreadPool, ZeroAndOneThreadDegradeToInlineExecution) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}}) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.worker_count(), 0u);

    const std::thread::id caller = std::this_thread::get_id();
    auto future = pool.submit([caller] {
      // Inline mode runs on the submitting thread, outside any worker.
      EXPECT_EQ(std::this_thread::get_id(), caller);
      EXPECT_EQ(ThreadPool::worker_index(), ThreadPool::npos);
      return 123;
    });
    // The task already ran; get() must not block.
    EXPECT_EQ(future.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_EQ(future.get(), 123);

    auto bad = pool.submit([]() -> int { throw std::invalid_argument("inline"); });
    EXPECT_THROW(bad.get(), std::invalid_argument);
  }
}

TEST(ThreadPool, ResolveThreadCount) {
  EXPECT_EQ(ThreadPool::resolve_thread_count(1), 1u);
  EXPECT_EQ(ThreadPool::resolve_thread_count(8), 8u);
  EXPECT_GE(ThreadPool::resolve_thread_count(0), 1u);  // auto
}

}  // namespace
}  // namespace helcfl::util
