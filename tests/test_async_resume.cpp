// Checkpoint/resume for the async engine (docs/ASYNC.md, docs/CHECKPOINT.md).
//
// An async snapshot is *mid-flight* by construction: it is written at a
// resolution cadence, while other clients are still computing, the event
// queue holds their completions, and the aggregation buffer may be partially
// full.  Resuming such a snapshot must continue bitwise identically to the
// run that never stopped — the v3 async frame captures the queue, the
// global clock, the in-flight outcomes, and the partial buffer exactly.
//
// Also covered: the engine-mode firewall (a sync snapshot cannot feed the
// async engine and vice versa), and the parse-then-commit discipline — a
// truncated or gutted async frame is rejected with the trainer (and its
// model) untouched.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "fl/async_trainer.h"
#include "fl/checkpoint.h"
#include "nn/models.h"
#include "nn/serialize.h"
#include "obs/trace.h"
#include "resume_fixtures.h"

namespace helcfl::fl {
namespace {

const testing::ResumeWorld& world() {
  static const testing::ResumeWorld kWorld;
  return kWorld;
}

AsyncOptions fedbuff_engine() {
  AsyncOptions async;
  async.mode = AsyncOptions::Mode::kAsync;
  async.buffer_k = 3;
  async.staleness_beta = 0.5;
  async.staleness_bound = 4;
  return async;
}

/// The resolution-cadence snapshot files a run left under `dir`, sorted by
/// resolution count (the "{round}" token of an async checkpoint path).
std::vector<std::filesystem::path> cadence_files(const std::filesystem::path& dir) {
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("ckpt_r", 0) == 0 && name.find(".bin") != std::string::npos) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end(),
            [](const std::filesystem::path& a, const std::filesystem::path& b) {
              return std::stoull(a.filename().string().substr(6)) <
                     std::stoull(b.filename().string().substr(6));
            });
  return files;
}

/// Extracts an unsigned field from the first `event` line of a JSONL trace.
std::uint64_t trace_field_u64(const std::string& trace, std::string_view event,
                              std::string_view field) {
  std::istringstream in(trace);
  std::string line;
  const std::string needle = "\"event\":\"" + std::string(event) + "\"";
  const std::string key = "\"" + std::string(field) + "\":";
  while (std::getline(in, line)) {
    if (line.find(needle) == std::string::npos) continue;
    const std::size_t pos = line.find(key);
    if (pos == std::string::npos) break;
    return std::stoull(line.substr(pos + key.size()));
  }
  ADD_FAILURE() << "trace has no " << event << " line with field " << field;
  return 0;
}

// Every resolution-cadence point of an async run is a valid resume origin,
// and at least some of them must be genuinely mid-flight (clients in the
// air, a partially filled buffer) or the suite proves nothing.
TEST(AsyncResume, EveryCadencePointResumesBitwiseIdentically) {
  const std::filesystem::path dir = testing::resume_tmp_dir("async_cadence");
  TrainerOptions golden_options = testing::resume_options(/*faults=*/true, 1);
  golden_options.checkpoint_every = 3;
  golden_options.checkpoint_path = (dir / "ckpt_r{round}.bin").string();
  const testing::ResumeRun golden =
      testing::run_async_case(world(), "HELCFL", golden_options, fedbuff_engine());

  const std::vector<std::filesystem::path> snapshots = cadence_files(dir);
  ASSERT_GE(snapshots.size(), 2U) << "cadence produced too few snapshots";

  bool saw_in_flight = false;
  bool saw_buffered = false;
  bool saw_pending_events = false;
  for (const std::filesystem::path& path : snapshots) {
    SCOPED_TRACE(path.filename().string());
    const Checkpoint ckpt = Checkpoint::read_file(path.string());
    EXPECT_TRUE(ckpt.async_enabled);
    EXPECT_FALSE(ckpt.async_state.empty());
    // The async frame opens with five u64 cursors and three f64 clocks;
    // the event queue (next_seq, count, events) follows the busy mask.
    util::ByteReader reader(ckpt.async_state);
    for (int i = 0; i < 5; ++i) reader.u64();
    for (int i = 0; i < 3; ++i) reader.f64();
    reader.vec_u8();     // busy mask
    reader.u64();        // queue next_seq
    saw_pending_events = saw_pending_events || reader.u64() > 0;

    TrainerOptions resumed_options = testing::resume_options(/*faults=*/true, 1);
    resumed_options.resume_from = path.string();
    const testing::ResumeRun resumed = testing::run_async_case(
        world(), "HELCFL", resumed_options, fedbuff_engine());
    testing::expect_bitwise_resume(dir, golden, resumed, ckpt.trace_seq);

    saw_in_flight = saw_in_flight ||
                    trace_field_u64(resumed.trace, "checkpoint_resume", "in_flight") > 0;
    saw_buffered = saw_buffered ||
                   trace_field_u64(resumed.trace, "checkpoint_resume", "buffered") > 0;
  }
  // Non-vacuousness: the matrix really crossed mid-flight state.
  EXPECT_TRUE(saw_pending_events);
  EXPECT_TRUE(saw_in_flight);
  EXPECT_TRUE(saw_buffered);
}

// A snapshot taken by a sequential run must resume bitwise identically on a
// 4-thread pool: worker count is rebuild-time configuration, not state.
TEST(AsyncResume, SnapshotsAreThreadCountPortable) {
  const std::filesystem::path dir = testing::resume_tmp_dir("async_cross_threads");
  TrainerOptions golden_options = testing::resume_options(/*faults=*/true, 1);
  golden_options.checkpoint_every = 4;
  golden_options.checkpoint_path = (dir / "ckpt_r{round}.bin").string();
  const testing::ResumeRun golden =
      testing::run_async_case(world(), "HELCFL", golden_options, fedbuff_engine());

  const std::vector<std::filesystem::path> snapshots = cadence_files(dir);
  ASSERT_FALSE(snapshots.empty());
  const std::filesystem::path mid = snapshots[snapshots.size() / 2];
  const Checkpoint ckpt = Checkpoint::read_file(mid.string());
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    TrainerOptions resumed_options = testing::resume_options(/*faults=*/true, threads);
    resumed_options.resume_from = mid.string();
    const testing::ResumeRun resumed = testing::run_async_case(
        world(), "HELCFL", resumed_options, fedbuff_engine());
    testing::expect_bitwise_resume(dir, golden, resumed, ckpt.trace_seq);
  }
}

// Kill-and-recover, chained: a run resumed from snapshot A writes its own
// cadence snapshots; dying again and resuming from one of *those* must
// still land on the golden model.  (A recovered process is not a special
// process — its checkpoints are as good as the first run's.)
TEST(AsyncResume, ResumedRunsCheckpointsAreValidResumeOrigins) {
  const std::filesystem::path dir_a = testing::resume_tmp_dir("async_chain_a");
  TrainerOptions golden_options = testing::resume_options(/*faults=*/true, 1);
  golden_options.checkpoint_every = 3;
  golden_options.checkpoint_path = (dir_a / "ckpt_r{round}.bin").string();
  const testing::ResumeRun golden =
      testing::run_async_case(world(), "HELCFL", golden_options, fedbuff_engine());

  const std::vector<std::filesystem::path> first = cadence_files(dir_a);
  ASSERT_GE(first.size(), 2U);

  // Second life: resume from the first snapshot, writing its own cadence.
  const std::filesystem::path dir_b = testing::resume_tmp_dir("async_chain_b");
  TrainerOptions second_options = testing::resume_options(/*faults=*/true, 1);
  second_options.resume_from = first.front().string();
  second_options.checkpoint_every = 3;
  second_options.checkpoint_path = (dir_b / "ckpt_r{round}.bin").string();
  const testing::ResumeRun second =
      testing::run_async_case(world(), "HELCFL", second_options, fedbuff_engine());
  EXPECT_EQ(golden.final_weights, second.final_weights);

  const std::vector<std::filesystem::path> chained = cadence_files(dir_b);
  ASSERT_FALSE(chained.empty());
  const Checkpoint ckpt = Checkpoint::read_file(chained.back().string());

  // Third life: resume from the recovered run's own snapshot.
  TrainerOptions third_options = testing::resume_options(/*faults=*/true, 1);
  third_options.resume_from = chained.back().string();
  const testing::ResumeRun third =
      testing::run_async_case(world(), "HELCFL", third_options, fedbuff_engine());

  EXPECT_EQ(golden.final_weights, third.final_weights);
  testing::expect_history_identical(golden.history, third.history);
  EXPECT_EQ(testing::history_csv_bytes(dir_b, "golden", golden.history),
            testing::history_csv_bytes(dir_b, "third", third.history));
  // The third life's whole trace is the second life's suffix.
  const auto suffix = testing::canonical_trace(second.trace, ckpt.trace_seq);
  EXPECT_FALSE(suffix.empty());
  EXPECT_EQ(suffix, testing::canonical_trace(third.trace, 0));
}

// --- engine-mode firewall -------------------------------------------------

TEST(AsyncResume, SyncSnapshotIsRejectedByTheAsyncEngine) {
  const std::filesystem::path dir = testing::resume_tmp_dir("async_mode_firewall");
  TrainerOptions golden_options = testing::resume_options(/*faults=*/false, 1);
  golden_options.checkpoint_every = 2;
  golden_options.checkpoint_path = (dir / "sync_r{round}.bin").string();
  const testing::ResumeRun golden =
      testing::run_resume_case(world(), "HELCFL", golden_options);
  const std::string sync_ckpt = (dir / "sync_r2.bin").string();
  ASSERT_TRUE(std::filesystem::exists(sync_ckpt));
  EXPECT_FALSE(Checkpoint::read_file(sync_ckpt).async_enabled);

  TrainerOptions options = testing::resume_options(/*faults=*/false, 1);
  options.resume_from = sync_ckpt;
  EXPECT_THROW(
      testing::run_async_case(world(), "HELCFL", options, fedbuff_engine()),
      CheckpointError);

  // The sync engine of AsyncTrainer accepts it — and stays bitwise golden.
  const Checkpoint ckpt = Checkpoint::read_file(sync_ckpt);
  const testing::ResumeRun resumed =
      testing::run_async_case(world(), "HELCFL", options, AsyncOptions{});
  testing::expect_bitwise_resume(dir, golden, resumed, ckpt.trace_seq);
}

TEST(AsyncResume, AsyncSnapshotIsRejectedByBothSyncEngines) {
  const std::filesystem::path dir = testing::resume_tmp_dir("async_mode_firewall2");
  TrainerOptions golden_options = testing::resume_options(/*faults=*/false, 1);
  golden_options.checkpoint_every = 3;
  golden_options.checkpoint_path = (dir / "ckpt_r{round}.bin").string();
  testing::run_async_case(world(), "HELCFL", golden_options, fedbuff_engine());
  const std::vector<std::filesystem::path> snapshots = cadence_files(dir);
  ASSERT_FALSE(snapshots.empty());
  ASSERT_TRUE(Checkpoint::read_file(snapshots.front().string()).async_enabled);

  TrainerOptions options = testing::resume_options(/*faults=*/false, 1);
  options.resume_from = snapshots.front().string();
  // FederatedTrainer proper.
  EXPECT_THROW(testing::run_resume_case(world(), "HELCFL", options), CheckpointError);
  // AsyncTrainer degenerated to the barrier engine.
  EXPECT_THROW(testing::run_async_case(world(), "HELCFL", options, AsyncOptions{}),
               CheckpointError);
}

// --- parse-then-commit under corruption -----------------------------------

/// Runs an async resume attempt against `path` on a hand-built trainer and
/// asserts it throws without touching the model.
void expect_rejected_resume_leaves_model_untouched(const std::string& path) {
  util::Rng model_rng(92);
  const std::unique_ptr<nn::Sequential> model = nn::make_model(
      nn::ModelKind::kLogistic, world().split.train.spec(), 10, model_rng);
  const std::vector<float> initial = nn::extract_parameters(*model);
  const std::unique_ptr<sched::SelectionStrategy> strategy =
      testing::make_resume_strategy("HELCFL");
  TrainerOptions options = testing::resume_options(/*faults=*/true, 1);
  options.resume_from = path;
  AsyncTrainer trainer(*model, world().split.train, world().split.test,
                       world().partition, world().devices,
                       testing::paper_channel(), *strategy, options,
                       fedbuff_engine());
  EXPECT_THROW(trainer.run(), CheckpointError);
  EXPECT_EQ(nn::extract_parameters(*model), initial);
}

TEST(AsyncResume, CorruptAsyncFramesAreRejectedWithoutSideEffects) {
  const std::filesystem::path dir = testing::resume_tmp_dir("async_corrupt");
  TrainerOptions golden_options = testing::resume_options(/*faults=*/true, 1);
  golden_options.checkpoint_every = 3;
  golden_options.checkpoint_path = (dir / "ckpt_r{round}.bin").string();
  testing::run_async_case(world(), "HELCFL", golden_options, fedbuff_engine());
  const std::vector<std::filesystem::path> snapshots = cadence_files(dir);
  ASSERT_FALSE(snapshots.empty());
  const Checkpoint good = Checkpoint::read_file(snapshots.front().string());
  ASSERT_FALSE(good.async_state.empty());

  {  // Truncated async frame: the final reads run off the end.
    Checkpoint bad = good;
    bad.async_state.pop_back();
    const std::string path = (dir / "truncated.bin").string();
    bad.write_file(path);
    expect_rejected_resume_leaves_model_untouched(path);
  }
  {  // Gutted frame: async_enabled set with nothing behind it.
    Checkpoint bad = good;
    bad.async_state.clear();
    const std::string path = (dir / "gutted.bin").string();
    bad.write_file(path);
    expect_rejected_resume_leaves_model_untouched(path);
  }
  {  // A flipped bit in the raw file trips the payload checksum first.
    std::ifstream in(snapshots.front(), std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    ASSERT_GT(bytes.size(), 64U);
    bytes[bytes.size() - 9] ^= 0x40;  // anywhere in the payload will do
    const std::string path = (dir / "bitflip.bin").string();
    std::ofstream(path, std::ios::binary).write(bytes.data(), bytes.size());
    EXPECT_THROW(Checkpoint::read_file(path), CheckpointError);
    expect_rejected_resume_leaves_model_untouched(path);
  }
}

}  // namespace
}  // namespace helcfl::fl
