// Determinism harness for the parallel round-execution engine: whatever the
// worker count, a training run must produce bitwise-identical metrics rows,
// selection decisions, and final weights, because each client trains on its
// own pre-forked RNG stream and updates are reduced in selection order
// (DESIGN.md §7).  num_threads = 1 is the inline sequential reference path,
// so these tests also pin the parallel engine to the paper's semantics.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/helcfl_scheduler.h"
#include "fl/server.h"
#include "fl/trainer.h"
#include "fl_fixtures.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/dense.h"
#include "nn/flatten.h"
#include "nn/models.h"
#include "nn/serialize.h"
#include "sched/fedcs.h"
#include "sched/random_selection.h"
#include "sim/simulation.h"
#include "util/thread_pool.h"

namespace helcfl::fl {
namespace {

struct RunResult {
  TrainingHistory history;
  std::vector<float> final_weights;
};

class ParallelTrainerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    split_ = testing::tiny_split(400, 100, 60);
    util::Rng prng(61);
    partition_ = data::iid_partition(split_.train.size(), kUsers, prng);
    devices_ = testing::linear_fleet(kUsers, partition_[0].size());
    for (std::size_t i = 0; i < kUsers; ++i) {
      devices_[i].num_samples = partition_[i].size();
    }
  }

  std::unique_ptr<nn::Sequential> fresh_model(std::uint64_t seed = 62) const {
    util::Rng rng(seed);
    return nn::make_mlp(split_.train.spec(), 16, 10, rng);
  }

  TrainerOptions options_with_threads(std::size_t num_threads) const {
    TrainerOptions options;
    options.max_rounds = 8;
    options.client.learning_rate = 0.1F;
    options.client.local_steps = 2;
    options.client.batch_size = 16;  // exercises per-client RNG streams
    options.model_size_bits = 4e6;
    options.num_threads = num_threads;
    return options;
  }

  RunResult run(nn::Sequential& model, sched::SelectionStrategy& strategy,
                const TrainerOptions& options) {
    FederatedTrainer trainer(model, split_.train, split_.test, partition_, devices_,
                             testing::paper_channel(), strategy, options);
    RunResult result;
    result.history = trainer.run();
    result.final_weights = nn::extract_parameters(model);
    return result;
  }

  /// Bitwise comparison of two training traces: every Metrics row field
  /// must match exactly (EXPECT_EQ on doubles is equality, not tolerance).
  static void expect_identical(const RunResult& a, const RunResult& b) {
    EXPECT_EQ(a.final_weights, b.final_weights);
    ASSERT_EQ(a.history.size(), b.history.size());
    for (std::size_t i = 0; i < a.history.size(); ++i) {
      const RoundRecord& ra = a.history.rounds()[i];
      const RoundRecord& rb = b.history.rounds()[i];
      EXPECT_EQ(ra.round, rb.round);
      EXPECT_EQ(ra.selected, rb.selected) << "round " << i;
      EXPECT_EQ(ra.round_delay_s, rb.round_delay_s) << "round " << i;
      EXPECT_EQ(ra.round_energy_j, rb.round_energy_j) << "round " << i;
      EXPECT_EQ(ra.cum_delay_s, rb.cum_delay_s) << "round " << i;
      EXPECT_EQ(ra.cum_energy_j, rb.cum_energy_j) << "round " << i;
      EXPECT_EQ(ra.train_loss, rb.train_loss) << "round " << i;
      EXPECT_EQ(ra.evaluated, rb.evaluated) << "round " << i;
      EXPECT_EQ(ra.test_loss, rb.test_loss) << "round " << i;
      EXPECT_EQ(ra.test_accuracy, rb.test_accuracy) << "round " << i;
      EXPECT_EQ(ra.alive_users, rb.alive_users) << "round " << i;
      EXPECT_EQ(ra.aggregated, rb.aggregated) << "round " << i;
      EXPECT_EQ(ra.survivors, rb.survivors) << "round " << i;
      EXPECT_EQ(ra.crashed, rb.crashed) << "round " << i;
      EXPECT_EQ(ra.upload_failures, rb.upload_failures) << "round " << i;
      EXPECT_EQ(ra.dropped_late, rb.dropped_late) << "round " << i;
      EXPECT_EQ(ra.retries, rb.retries) << "round " << i;
      EXPECT_EQ(ra.quorum_failed, rb.quorum_failed) << "round " << i;
      EXPECT_EQ(ra.wasted_energy_j, rb.wasted_energy_j) << "round " << i;
      EXPECT_EQ(ra.available_users, rb.available_users) << "round " << i;
    }
  }

  static constexpr std::size_t kUsers = 10;
  data::TrainTestSplit split_;
  data::Partition partition_;
  std::vector<mec::Device> devices_;
};

TEST_F(ParallelTrainerTest, RandomSelectionIsThreadCountInvariant) {
  auto m1 = fresh_model();
  util::Rng rng1(70);
  sched::RandomSelection s1(0.4, rng1);
  const RunResult sequential = run(*m1, s1, options_with_threads(1));

  auto m8 = fresh_model();
  util::Rng rng8(70);
  sched::RandomSelection s8(0.4, rng8);
  const RunResult parallel = run(*m8, s8, options_with_threads(8));

  expect_identical(sequential, parallel);
}

TEST_F(ParallelTrainerTest, HelcflIsThreadCountInvariant) {
  auto m1 = fresh_model();
  core::HelcflScheduler s1({.fraction = 0.3, .eta = 0.9, .enable_dvfs = true});
  const RunResult sequential = run(*m1, s1, options_with_threads(1));

  auto m8 = fresh_model();
  core::HelcflScheduler s8({.fraction = 0.3, .eta = 0.9, .enable_dvfs = true});
  const RunResult parallel = run(*m8, s8, options_with_threads(8));

  expect_identical(sequential, parallel);
}

TEST_F(ParallelTrainerTest, FedCsIsThreadCountInvariant) {
  const auto users =
      sched::build_user_info(devices_, testing::paper_channel(), 4e6);
  const double deadline = sim::auto_fedcs_deadline({users}, 0.3);

  auto m1 = fresh_model();
  sched::FedCsSelection s1(deadline);
  const RunResult sequential = run(*m1, s1, options_with_threads(1));

  auto m8 = fresh_model();
  sched::FedCsSelection s8(deadline);
  const RunResult parallel = run(*m8, s8, options_with_threads(8));

  expect_identical(sequential, parallel);
}

TEST_F(ParallelTrainerTest, AutoThreadCountMatchesSequential) {
  auto m1 = fresh_model();
  util::Rng rng1(71);
  sched::RandomSelection s1(0.4, rng1);
  const RunResult sequential = run(*m1, s1, options_with_threads(1));

  auto mauto = fresh_model();
  util::Rng rng_auto(71);
  sched::RandomSelection sauto(0.4, rng_auto);
  const RunResult automatic = run(*mauto, sauto, options_with_threads(0));

  expect_identical(sequential, automatic);
}

TEST_F(ParallelTrainerTest, BatchNormStateIsThreadCountInvariant) {
  // BatchNorm running statistics are persistent non-FedAvg state; the
  // engine snapshots them at round start and restores them per client, so
  // even a stateful model is bitwise reproducible across worker counts.
  const auto make_bn_model = [this] {
    util::Rng rng(63);
    auto model = std::make_unique<nn::Sequential>();
    model->emplace<nn::Flatten>();
    model->emplace<nn::Dense>(split_.train.spec().flat_features(), 24, rng);
    model->emplace<nn::BatchNorm>(24);
    model->emplace<nn::ReLU>();
    model->emplace<nn::Dense>(24, 10, rng);
    return model;
  };

  auto m1 = make_bn_model();
  util::Rng rng1(72);
  sched::RandomSelection s1(0.4, rng1);
  const RunResult sequential = run(*m1, s1, options_with_threads(1));

  auto m8 = make_bn_model();
  util::Rng rng8(72);
  sched::RandomSelection s8(0.4, rng8);
  const RunResult parallel = run(*m8, s8, options_with_threads(8));

  expect_identical(sequential, parallel);
  EXPECT_EQ(nn::extract_state(*m1), nn::extract_state(*m8));
}

TEST_F(ParallelTrainerTest, ModelCloneIsDeepAndExact) {
  const auto model = fresh_model();
  nn::Sequential copy(*model);
  EXPECT_EQ(nn::extract_parameters(*model), nn::extract_parameters(copy));

  // Mutating the clone must not leak into the original.
  std::vector<float> perturbed = nn::extract_parameters(copy);
  for (float& w : perturbed) w += 1.0F;
  nn::load_parameters(copy, perturbed);
  EXPECT_NE(nn::extract_parameters(*model), nn::extract_parameters(copy));

  // Clones forward identically on the same input.
  nn::Sequential copy2(*model);
  const std::vector<std::size_t> indices{0, 1, 2, 3};
  const data::Batch batch = split_.test.gather(indices);
  const tensor::Tensor a = model->forward(batch.images, /*training=*/false);
  const tensor::Tensor b = copy2.forward(batch.images, /*training=*/false);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST_F(ParallelTrainerTest, ParallelEvaluateMatchesSequential) {
  const auto model = fresh_model();
  const std::vector<float> weights = nn::extract_parameters(*model);
  const Evaluation sequential = evaluate(*model, weights, split_.test, 32);

  util::ThreadPool pool(3);
  std::vector<std::unique_ptr<nn::Sequential>> replicas;
  std::vector<nn::Sequential*> views;
  for (std::size_t i = 0; i < pool.worker_count(); ++i) {
    replicas.push_back(std::make_unique<nn::Sequential>(*model));
    views.push_back(replicas.back().get());
  }
  const Evaluation parallel =
      evaluate_parallel(views, weights, split_.test, 32, pool);
  EXPECT_EQ(sequential.loss, parallel.loss);
  EXPECT_EQ(sequential.accuracy, parallel.accuracy);
}

TEST_F(ParallelTrainerTest, EightThreadsAreMeasurablyFasterThanOne) {
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores < 4) {
    GTEST_SKIP() << "speedup needs >= 4 hardware threads, have " << cores;
  }

  // A compute-heavy cohort: CNN forward/backward dominates, so the client
  // loop is where the time goes and Amdahl losses stay small.
  const auto timed_run = [this](std::size_t num_threads) {
    util::Rng model_rng(64);
    auto model = nn::make_small_cnn(split_.train.spec(), 10, model_rng);
    util::Rng rng(73);
    sched::RandomSelection strategy(0.8, rng);
    TrainerOptions options = options_with_threads(num_threads);
    options.max_rounds = 3;
    options.client.local_steps = 4;
    const auto begin = std::chrono::steady_clock::now();
    run(*model, strategy, options);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
        .count();
  };

  timed_run(1);  // warm caches so the comparison is fair
  const double sequential_s = timed_run(1);
  const double parallel_s = timed_run(8);
  const double speedup = sequential_s / parallel_s;
  // The acceptance bar is 2x on a full CI machine; allow a gentler bar on
  // 4-7 core hosts where 8 workers oversubscribe.
  const double required = cores >= 8 ? 2.0 : 1.5;
  EXPECT_GE(speedup, required)
      << "sequential " << sequential_s << " s vs parallel " << parallel_s << " s";
}

}  // namespace
}  // namespace helcfl::fl
