// Differential robustness proof for the scheduler service (ISSUE 7).
//
// 1. Fault transparency: the same report/decide workload is driven through
//    the full client ↔ service protocol over a perfect wire and over wires
//    dropping/corrupting/duplicating/delaying 1% and 10% of frames.  With
//    retries and dedup absorbing every fault, the decision stream must be
//    pick-for-pick (and frequency-for-frequency) identical to the
//    fault-free run — transport faults are invisible in scheduling output.
//
// 2. Kill-and-recover: a service snapshotted mid-workload and restored
//    into a fresh process (object) must emit byte-identical response
//    datagrams to the never-killed original for the rest of the workload.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sched/scheduler.h"
#include "sim/config.h"
#include "sim/fleet.h"
#include "svc/client.h"
#include "svc/frame.h"
#include "svc/service.h"
#include "svc/wire_faults.h"
#include "util/rng.h"

namespace svc = helcfl::svc;
using namespace helcfl;

namespace {

constexpr std::size_t kQ = 12;
constexpr std::uint64_t kSeed = 20260808;

std::vector<sched::UserInfo> make_users() {
  sim::ExperimentConfig config = sim::paper_config();
  config.n_users = kQ;
  util::Rng rng(7);
  const std::vector<std::size_t> samples(kQ, 40);
  const auto devices = sim::make_fleet(config, samples, rng);
  return sched::build_user_info(devices, sim::make_channel(config), 4e6);
}

svc::ServiceOptions service_options() {
  svc::ServiceOptions options;
  options.fraction = 0.25;
  options.eta = 0.9;
  // Liveness is out of scope for the fault-transparency proof: retry
  // latency must not be able to kill a lease mid-exchange.
  options.lease_ticks = 1'000'000;
  options.queue_capacity = 4 * kQ;
  return options;
}

svc::RetryOptions retry_options() {
  svc::RetryOptions retry;
  retry.base_delay_ticks = 1;
  retry.backoff_multiplier = 2.0;
  retry.max_delay_ticks = 8;
  retry.jitter = 0.25;
  retry.max_attempts = 16;
  return retry;
}

/// Deterministic per-(device, round) delay evolution, identical across
/// runs regardless of wire faults.
double t_cal_at(const std::vector<sched::UserInfo>& users, std::size_t d,
                std::uint64_t round) {
  return users[d].t_cal_max_s *
         (1.0 + 0.05 * static_cast<double>((d * 7 + round * 13) % 10));
}
double t_com_at(const std::vector<sched::UserInfo>& users, std::size_t d,
                std::uint64_t round) {
  return users[d].t_com_s *
         (1.0 + 0.04 * static_cast<double>((d * 5 + round * 11) % 10));
}

/// One recorded decision.
struct Pick {
  std::uint64_t round = 0;
  std::vector<std::size_t> selected;
  std::vector<double> frequencies_hz;
  bool degraded = false;
};

/// Drives `rounds` report-then-decide rounds through the two faulty links.
/// Every round is a barrier: all Q reports must be acked before the
/// decision request goes out, so retries fully mask the wire.  Records the
/// decisions and (optionally) every raw service-outbox datagram.
struct Exchange {
  svc::SchedulerService& service;
  svc::ServiceClient& client;
  svc::FaultyLink& to_service;
  svc::FaultyLink& to_client;
  std::uint64_t tick = 0;
  std::vector<std::vector<std::uint8_t>>* raw_outbox = nullptr;

  /// One full transport round-trip at the current tick.
  void pump() {
    for (const auto& frame : client.poll(tick)) {
      to_service.send(frame, tick);
    }
    for (const auto& datagram : to_service.advance(tick)) {
      service.ingest(datagram, tick);
    }
    service.poll(tick);
    for (auto& datagram : service.take_outbox()) {
      if (raw_outbox != nullptr) raw_outbox->push_back(datagram);
      to_client.send(datagram, tick);
    }
    for (const auto& datagram : to_client.advance(tick)) {
      client.deliver(datagram);
    }
    ++tick;
  }

  Pick run_round(const std::vector<sched::UserInfo>& users,
                 std::uint64_t round) {
    for (std::size_t d = 0; d < users.size(); ++d) {
      svc::DeviceReport report;
      report.device_id = d;
      report.report_seq = round + 1;  // strictly increasing per device
      report.t_cal_max_s = t_cal_at(users, d, round);
      report.t_com_s = t_com_at(users, d, round);
      client.send_report(report, tick);
    }
    const std::uint64_t report_deadline = tick + 10'000;
    while (client.pending_reports() > 0) {
      pump();
      EXPECT_LT(tick, report_deadline) << "report barrier stalled";
      if (tick >= report_deadline) return {};
    }
    client.request_decision(round, tick);
    const std::uint64_t decide_deadline = tick + 10'000;
    std::optional<svc::DecisionResponse> response;
    while (!(response = client.take_decision()).has_value()) {
      pump();
      EXPECT_LT(tick, decide_deadline) << "decision stalled";
      if (tick >= decide_deadline) return {};
    }
    Pick pick;
    pick.round = response->round;
    pick.selected = response->selected;
    pick.frequencies_hz = response->frequencies_hz;
    pick.degraded = response->degraded;
    return pick;
  }
};

svc::FaultyLink make_link(double fault_rate, std::uint64_t stream) {
  svc::WireFaultOptions faults;
  faults.drop_rate = fault_rate;
  faults.corrupt_rate = fault_rate;
  faults.duplicate_rate = fault_rate;
  faults.delay_rate = fault_rate > 0.0 ? 0.25 : 0.0;
  faults.max_delay_ticks = 6;
  return svc::FaultyLink(
      svc::WireFaultInjector(faults, util::Rng(kSeed).fork(stream)));
}

std::vector<Pick> run_workload(double fault_rate, std::uint64_t rounds) {
  const auto users = make_users();
  svc::SchedulerService service(users, service_options());
  svc::ServiceClient client(retry_options(), util::Rng(kSeed).fork(100));
  svc::FaultyLink to_service = make_link(fault_rate, 1);
  svc::FaultyLink to_client = make_link(fault_rate, 2);
  Exchange exchange{service, client, to_service, to_client};

  std::vector<Pick> picks;
  for (std::uint64_t round = 0; round < rounds; ++round) {
    picks.push_back(exchange.run_round(users, round));
  }
  // The retry budget must never have been exhausted — a silently-lost
  // report would invalidate the equality claim rather than prove it.
  EXPECT_EQ(client.exhausted(), 0u);
  EXPECT_EQ(service.stats().decisions, rounds);
  return picks;
}

}  // namespace

TEST(SvcDifferential, FaultyWireYieldsIdenticalDecisions) {
  constexpr std::uint64_t kRounds = 10;
  const std::vector<Pick> clean = run_workload(0.0, kRounds);
  for (const double rate : {0.01, 0.10}) {
    const std::vector<Pick> faulty = run_workload(rate, kRounds);
    ASSERT_EQ(faulty.size(), clean.size());
    for (std::size_t r = 0; r < clean.size(); ++r) {
      EXPECT_EQ(faulty[r].round, clean[r].round);
      EXPECT_EQ(faulty[r].selected, clean[r].selected)
          << "picks diverged at round " << r << " under fault rate " << rate;
      EXPECT_EQ(faulty[r].frequencies_hz, clean[r].frequencies_hz)
          << "frequencies diverged at round " << r;
      EXPECT_FALSE(faulty[r].degraded)
          << "barrier protocol should never overload the queue";
    }
  }
}

TEST(SvcDifferential, FaultsActuallyFired) {
  // Guard against a vacuous differential: at 10% the links must really
  // have dropped/corrupted/duplicated traffic and the client retried.
  const auto users = make_users();
  svc::SchedulerService service(users, service_options());
  svc::ServiceClient client(retry_options(), util::Rng(kSeed).fork(100));
  svc::FaultyLink to_service = make_link(0.10, 1);
  svc::FaultyLink to_client = make_link(0.10, 2);
  Exchange exchange{service, client, to_service, to_client};
  for (std::uint64_t round = 0; round < 10; ++round) {
    exchange.run_round(users, round);
  }
  EXPECT_GT(to_service.frames_dropped() + to_client.frames_dropped(), 0u);
  EXPECT_GT(to_service.frames_corrupted() + to_client.frames_corrupted(), 0u);
  EXPECT_GT(to_service.frames_duplicated() + to_client.frames_duplicated(),
            0u);
  EXPECT_GT(client.retries(), 0u);
  EXPECT_GT(service.stats().frames_rejected, 0u);  // corrupt frames seen
  EXPECT_GT(service.stats().reports_deduped, 0u);  // duplicates absorbed
}

// Phase B of the kill-and-recover proof: a fixed workload (rounds 15..24)
// over a 10%-faulty wire, recording every raw datagram the service emits.
// Both the never-killed and the restored service run it with identically
// seeded clients and links; byte-equal recordings prove the snapshot
// captured every decision-relevant bit.
namespace {
std::vector<std::vector<std::uint8_t>> run_phase_b(
    svc::SchedulerService& service, const std::vector<sched::UserInfo>& users) {
  svc::ServiceClient client(retry_options(), util::Rng(kSeed).fork(200),
                            /*first_controller_seq=*/16);
  svc::FaultyLink to_service = make_link(0.10, 11);
  svc::FaultyLink to_client = make_link(0.10, 12);
  std::vector<std::vector<std::uint8_t>> raw;
  Exchange exchange{service, client, to_service, to_client};
  exchange.raw_outbox = &raw;
  for (std::uint64_t round = 15; round < 25; ++round) {
    exchange.run_round(users, round);
  }
  EXPECT_EQ(client.exhausted(), 0u);
  return raw;
}
}  // namespace

TEST(SvcDifferential, KillAndRecoverEmitsByteIdenticalResponses) {
  const auto users = make_users();
  const std::string path = ::testing::TempDir() + "svc_kill_recover.bin";

  // Phase A: 15 rounds under faults, then snapshot at a quiescent point.
  svc::SchedulerService survivor(users, service_options());
  {
    svc::ServiceClient client(retry_options(), util::Rng(kSeed).fork(100));
    svc::FaultyLink to_service = make_link(0.10, 1);
    svc::FaultyLink to_client = make_link(0.10, 2);
    Exchange exchange{survivor, client, to_service, to_client};
    for (std::uint64_t round = 0; round < 15; ++round) {
      exchange.run_round(users, round);
    }
    EXPECT_EQ(client.exhausted(), 0u);
  }
  survivor.write_snapshot(path);

  // The "crash": a brand-new service object restored from the file.
  svc::SchedulerService recovered(users, service_options());
  recovered.restore_file(path);

  // Phase B on both, identical harness seeds.
  const auto survivor_bytes = run_phase_b(survivor, users);
  const auto recovered_bytes = run_phase_b(recovered, users);
  ASSERT_EQ(survivor_bytes.size(), recovered_bytes.size());
  for (std::size_t i = 0; i < survivor_bytes.size(); ++i) {
    ASSERT_EQ(survivor_bytes[i], recovered_bytes[i])
        << "datagram " << i << " diverged after recovery";
  }
  EXPECT_EQ(survivor.stats().decisions, recovered.stats().decisions + 15);
}
