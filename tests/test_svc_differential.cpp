// Differential robustness proof for the scheduler service (ISSUE 7).
//
// 1. Fault transparency: the same report/decide workload is driven through
//    the full client ↔ service protocol over a perfect wire and over wires
//    dropping/corrupting/duplicating/delaying 1% and 10% of frames.  With
//    retries and dedup absorbing every fault, the decision stream must be
//    pick-for-pick (and frequency-for-frequency) identical to the
//    fault-free run — transport faults are invisible in scheduling output.
//
// 2. Kill-and-recover: a service snapshotted mid-workload and restored
//    into a fresh process (object) must emit byte-identical response
//    datagrams to the never-killed original for the rest of the workload.
//
// The workload itself (fleet, delay evolution, barrier protocol) lives in
// svc_workload.h, shared with the loopback-TCP differential
// (test_svc_tcp_differential.cpp).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "svc_workload.h"

namespace svc = helcfl::svc;
using namespace helcfl;
using namespace helcfl::svc_test;

TEST(SvcDifferential, FaultyWireYieldsIdenticalDecisions) {
  constexpr std::uint64_t kRounds = 10;
  const std::vector<Pick> clean = run_workload(0.0, kRounds);
  for (const double rate : {0.01, 0.10}) {
    const std::vector<Pick> faulty = run_workload(rate, kRounds);
    ASSERT_EQ(faulty.size(), clean.size());
    for (std::size_t r = 0; r < clean.size(); ++r) {
      EXPECT_EQ(faulty[r].round, clean[r].round);
      EXPECT_EQ(faulty[r].selected, clean[r].selected)
          << "picks diverged at round " << r << " under fault rate " << rate;
      EXPECT_EQ(faulty[r].frequencies_hz, clean[r].frequencies_hz)
          << "frequencies diverged at round " << r;
      EXPECT_FALSE(faulty[r].degraded)
          << "barrier protocol should never overload the queue";
    }
  }
}

TEST(SvcDifferential, FaultsActuallyFired) {
  // Guard against a vacuous differential: at 10% the links must really
  // have dropped/corrupted/duplicated traffic and the client retried.
  const auto users = make_users();
  svc::SchedulerService service(users, service_options());
  svc::ServiceClient client(retry_options(), util::Rng(kSeed).fork(100));
  svc::FaultyLink to_service = make_link(0.10, 1);
  svc::FaultyLink to_client = make_link(0.10, 2);
  Exchange exchange{service, client, to_service, to_client};
  for (std::uint64_t round = 0; round < 10; ++round) {
    exchange.run_round(users, round);
  }
  EXPECT_GT(to_service.frames_dropped() + to_client.frames_dropped(), 0u);
  EXPECT_GT(to_service.frames_corrupted() + to_client.frames_corrupted(), 0u);
  EXPECT_GT(to_service.frames_duplicated() + to_client.frames_duplicated(),
            0u);
  EXPECT_GT(client.retries(), 0u);
  EXPECT_GT(service.stats().frames_rejected, 0u);  // corrupt frames seen
  EXPECT_GT(service.stats().reports_deduped, 0u);  // duplicates absorbed
}

// Phase B of the kill-and-recover proof: a fixed workload (rounds 15..24)
// over a 10%-faulty wire, recording every raw datagram the service emits.
// Both the never-killed and the restored service run it with identically
// seeded clients and links; byte-equal recordings prove the snapshot
// captured every decision-relevant bit.
namespace {
std::vector<std::vector<std::uint8_t>> run_phase_b(
    svc::SchedulerService& service, const std::vector<sched::UserInfo>& users) {
  svc::ServiceClient client(retry_options(), util::Rng(kSeed).fork(200),
                            /*first_controller_seq=*/16);
  svc::FaultyLink to_service = make_link(0.10, 11);
  svc::FaultyLink to_client = make_link(0.10, 12);
  std::vector<std::vector<std::uint8_t>> raw;
  Exchange exchange{service, client, to_service, to_client};
  exchange.raw_outbox = &raw;
  for (std::uint64_t round = 15; round < 25; ++round) {
    exchange.run_round(users, round);
  }
  EXPECT_EQ(client.exhausted(), 0u);
  return raw;
}
}  // namespace

TEST(SvcDifferential, KillAndRecoverEmitsByteIdenticalResponses) {
  const auto users = make_users();
  const std::string path = ::testing::TempDir() + "svc_kill_recover.bin";

  // Phase A: 15 rounds under faults, then snapshot at a quiescent point.
  svc::SchedulerService survivor(users, service_options());
  {
    svc::ServiceClient client(retry_options(), util::Rng(kSeed).fork(100));
    svc::FaultyLink to_service = make_link(0.10, 1);
    svc::FaultyLink to_client = make_link(0.10, 2);
    Exchange exchange{survivor, client, to_service, to_client};
    for (std::uint64_t round = 0; round < 15; ++round) {
      exchange.run_round(users, round);
    }
    EXPECT_EQ(client.exhausted(), 0u);
  }
  survivor.write_snapshot(path);

  // The "crash": a brand-new service object restored from the file.
  svc::SchedulerService recovered(users, service_options());
  recovered.restore_file(path);

  // Phase B on both, identical harness seeds.
  const auto survivor_bytes = run_phase_b(survivor, users);
  const auto recovered_bytes = run_phase_b(recovered, users);
  ASSERT_EQ(survivor_bytes.size(), recovered_bytes.size());
  for (std::size_t i = 0; i < survivor_bytes.size(); ++i) {
    ASSERT_EQ(survivor_bytes[i], recovered_bytes[i])
        << "datagram " << i << " diverged after recovery";
  }
  EXPECT_EQ(survivor.stats().decisions, recovered.stats().decisions + 15);
}
