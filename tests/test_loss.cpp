#include "nn/loss.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace helcfl::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogK) {
  Tensor logits(Shape{1, 4});
  const std::vector<std::int32_t> labels = {2};
  const LossResult result = softmax_cross_entropy(logits, labels);
  EXPECT_NEAR(result.loss, std::log(4.0), 1e-6);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(result.probabilities.at(0, c), 0.25F, 1e-6F);
  }
}

TEST(SoftmaxCrossEntropy, ProbabilitiesSumToOne) {
  Tensor logits(Shape{3, 5}, {1, 2, 3, 4, 5, -1, 0, 1, -2, 2, 10, -10, 0, 5, 5});
  const std::vector<std::int32_t> labels = {0, 1, 2};
  const LossResult result = softmax_cross_entropy(logits, labels);
  for (std::size_t b = 0; b < 3; ++b) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 5; ++c) sum += result.probabilities.at(b, c);
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(SoftmaxCrossEntropy, GradientIsProbMinusOneHotOverBatch) {
  Tensor logits(Shape{2, 3}, {1, 2, 3, 0, 0, 0});
  const std::vector<std::int32_t> labels = {0, 2};
  const LossResult result = softmax_cross_entropy(logits, labels);
  for (std::size_t b = 0; b < 2; ++b) {
    for (std::size_t c = 0; c < 3; ++c) {
      const float expected =
          (result.probabilities.at(b, c) -
           (static_cast<std::int32_t>(c) == labels[b] ? 1.0F : 0.0F)) /
          2.0F;
      EXPECT_NEAR(result.grad_logits.at(b, c), expected, 1e-6F);
    }
  }
}

TEST(SoftmaxCrossEntropy, GradientSumsToZeroPerSample) {
  Tensor logits(Shape{2, 4}, {3, 1, -2, 0.5F, 0, 0, 1, 1});
  const std::vector<std::int32_t> labels = {1, 3};
  const LossResult result = softmax_cross_entropy(logits, labels);
  for (std::size_t b = 0; b < 2; ++b) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 4; ++c) sum += result.grad_logits.at(b, c);
    EXPECT_NEAR(sum, 0.0, 1e-6);
  }
}

TEST(SoftmaxCrossEntropy, NumericallyStableForLargeLogits) {
  Tensor logits(Shape{1, 2}, {1000.0F, -1000.0F});
  const std::vector<std::int32_t> labels = {0};
  const LossResult result = softmax_cross_entropy(logits, labels);
  EXPECT_NEAR(result.loss, 0.0, 1e-5);
  EXPECT_TRUE(std::isfinite(result.grad_logits.at(0, 0)));
  EXPECT_TRUE(std::isfinite(result.grad_logits.at(0, 1)));
}

TEST(SoftmaxCrossEntropy, FiniteDifferenceGradient) {
  Tensor logits(Shape{2, 3}, {0.5F, -0.3F, 0.8F, -1.0F, 0.2F, 0.1F});
  const std::vector<std::int32_t> labels = {2, 0};
  const LossResult base = softmax_cross_entropy(logits, labels);
  const double eps = 1e-3;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    Tensor plus = logits;
    Tensor minus = logits;
    plus[i] += static_cast<float>(eps);
    minus[i] -= static_cast<float>(eps);
    const double numeric = (softmax_cross_entropy(plus, labels).loss -
                            softmax_cross_entropy(minus, labels).loss) /
                           (2.0 * eps);
    EXPECT_NEAR(base.grad_logits[i], numeric, 1e-4);
  }
}

TEST(SoftmaxCrossEntropy, CountsCorrectPredictions) {
  Tensor logits(Shape{3, 2}, {2, 1, 0, 5, 3, 3});
  const std::vector<std::int32_t> labels = {0, 1, 1};
  const LossResult result = softmax_cross_entropy(logits, labels);
  // Sample 2 ties (argmax picks class 0), so correct = 2.
  EXPECT_EQ(result.correct, 2u);
}

TEST(SoftmaxCrossEntropy, RejectsLabelCountMismatch) {
  Tensor logits(Shape{2, 3});
  const std::vector<std::int32_t> labels = {0};
  EXPECT_THROW(softmax_cross_entropy(logits, labels), std::invalid_argument);
}

TEST(SoftmaxCrossEntropy, RejectsRank1Logits) {
  Tensor logits(Shape{3});
  const std::vector<std::int32_t> labels = {0, 1, 2};
  EXPECT_THROW(softmax_cross_entropy(logits, labels), std::invalid_argument);
}

TEST(CountCorrect, MatchesLossResult) {
  Tensor logits(Shape{4, 3}, {1, 0, 0, 0, 1, 0, 0, 0, 1, 1, 2, 3});
  const std::vector<std::int32_t> labels = {0, 1, 2, 0};
  EXPECT_EQ(count_correct(logits, labels), 3u);
  EXPECT_EQ(softmax_cross_entropy(logits, labels).correct, 3u);
}

TEST(SoftmaxCrossEntropy, PerfectPredictionHasLowLoss) {
  Tensor logits(Shape{1, 3}, {10.0F, -10.0F, -10.0F});
  const std::vector<std::int32_t> labels = {0};
  EXPECT_LT(softmax_cross_entropy(logits, labels).loss, 1e-6);
}

}  // namespace
}  // namespace helcfl::nn
