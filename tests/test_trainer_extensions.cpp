// Integration tests of the trainer extensions: battery-driven device
// dropout, channel fading, and upload compression (DESIGN.md §6).
#include <gtest/gtest.h>

#include "core/helcfl_scheduler.h"
#include "fl/trainer.h"
#include "fl_fixtures.h"
#include "nn/models.h"
#include "nn/serialize.h"
#include "sched/random_selection.h"

namespace helcfl::fl {
namespace {

class TrainerExtensionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    split_ = testing::tiny_split(300, 80, 70);
    util::Rng prng(71);
    partition_ = data::iid_partition(split_.train.size(), kUsers, prng);
    std::vector<std::size_t> samples;
    for (const auto& s : partition_) samples.push_back(s.size());
    devices_ = testing::linear_fleet(kUsers, samples[0]);
    for (std::size_t i = 0; i < kUsers; ++i) devices_[i].num_samples = samples[i];
    util::Rng model_rng(72);
    model_ = nn::make_mlp(split_.train.spec(), 12, 10, model_rng);
    init_ = nn::extract_parameters(*model_);
  }

  TrainerOptions base_options() {
    TrainerOptions options;
    options.max_rounds = 30;
    options.eval_every = 10;
    options.client.learning_rate = 0.1F;
    return options;
  }

  TrainingHistory run(sched::SelectionStrategy& strategy,
                      const TrainerOptions& options) {
    nn::load_parameters(*model_, init_);
    FederatedTrainer trainer(*model_, split_.train, split_.test, partition_, devices_,
                             testing::paper_channel(), strategy, options);
    return trainer.run();
  }

  static constexpr std::size_t kUsers = 10;
  data::TrainTestSplit split_;
  data::Partition partition_;
  std::vector<mec::Device> devices_;
  std::unique_ptr<nn::Sequential> model_;
  std::vector<float> init_;
};

// --- battery ---------------------------------------------------------------

TEST_F(TrainerExtensionTest, NoBatteryReportsFullFleetAlive) {
  util::Rng rng(1);
  sched::RandomSelection strategy(0.3, rng);
  const TrainingHistory history = run(strategy, base_options());
  for (const auto& r : history.rounds()) EXPECT_EQ(r.alive_users, kUsers);
  EXPECT_FALSE(history.round_of_first_depletion(kUsers).has_value());
}

TEST_F(TrainerExtensionTest, TinyBatteriesDepleteAndStopTraining) {
  util::Rng rng(2);
  sched::RandomSelection strategy(0.3, rng);
  TrainerOptions options = base_options();
  options.max_rounds = 500;
  options.battery_capacity_j = 0.3;  // a couple of rounds per device
  const TrainingHistory history = run(strategy, options);
  EXPECT_LT(history.size(), 500u);  // fleet died before max_rounds
  EXPECT_EQ(history.back().alive_users, 0u);
  EXPECT_TRUE(history.round_of_first_depletion(kUsers).has_value());
}

TEST_F(TrainerExtensionTest, AliveCountIsNonIncreasing) {
  util::Rng rng(3);
  sched::RandomSelection strategy(0.3, rng);
  TrainerOptions options = base_options();
  options.max_rounds = 300;
  options.battery_capacity_j = 1.0;
  const TrainingHistory history = run(strategy, options);
  std::size_t prev = kUsers;
  for (const auto& r : history.rounds()) {
    EXPECT_LE(r.alive_users, prev);
    prev = r.alive_users;
  }
}

TEST_F(TrainerExtensionTest, DvfsExtendsFleetLifetime) {
  // The battery headline: with the same budget, HELCFL's Algorithm 3 keeps
  // devices alive for more rounds than running everyone at f_max.
  TrainerOptions options = base_options();
  options.max_rounds = 2000;
  options.eval_every = 100;
  options.battery_capacity_j = 2.0;

  core::HelcflScheduler dvfs({.fraction = 0.3, .eta = 0.9, .enable_dvfs = true});
  const TrainingHistory with_dvfs = run(dvfs, options);
  core::HelcflScheduler nodvfs({.fraction = 0.3, .eta = 0.9, .enable_dvfs = false});
  const TrainingHistory without = run(nodvfs, options);

  EXPECT_GT(with_dvfs.size(), without.size());
}

TEST_F(TrainerExtensionTest, DepletedDevicesAreNeverSelected) {
  util::Rng rng(4);
  sched::RandomSelection strategy(0.5, rng);
  TrainerOptions options = base_options();
  options.max_rounds = 400;
  options.battery_capacity_j = 0.8;
  const TrainingHistory history = run(strategy, options);
  // Reconstruct per-device cumulative drain; once a device exceeds the
  // budget it must not appear again.  The trainer itself throws on a dead
  // selection, so reaching the end of the run is the assertion; make sure
  // the run actually saw depletions.
  EXPECT_TRUE(history.round_of_first_depletion(kUsers).has_value());
}

// --- fading ------------------------------------------------------------------

TEST_F(TrainerExtensionTest, FadingChangesDelaysButNotAccuracy) {
  TrainerOptions options = base_options();
  util::Rng rng1(5);
  sched::RandomSelection s1(0.3, rng1);
  const TrainingHistory still = run(s1, options);

  options.fading = {.enabled = true, .rho = 0.7, .sigma_db = 6.0};
  util::Rng rng2(5);
  sched::RandomSelection s2(0.3, rng2);
  const TrainingHistory faded = run(s2, options);

  ASSERT_EQ(still.size(), faded.size());
  bool any_delay_diff = false;
  for (std::size_t i = 0; i < still.size(); ++i) {
    // Same selection RNG -> same users and same local updates.
    EXPECT_EQ(still.rounds()[i].selected, faded.rounds()[i].selected);
    EXPECT_DOUBLE_EQ(still.rounds()[i].train_loss, faded.rounds()[i].train_loss);
    if (still.rounds()[i].round_delay_s != faded.rounds()[i].round_delay_s) {
      any_delay_diff = true;
    }
  }
  EXPECT_TRUE(any_delay_diff);
}

TEST_F(TrainerExtensionTest, FadingIsDeterministicGivenSeed) {
  TrainerOptions options = base_options();
  options.fading = {.enabled = true, .rho = 0.7, .sigma_db = 6.0};
  util::Rng rng1(6);
  sched::RandomSelection s1(0.3, rng1);
  const TrainingHistory a = run(s1, options);
  util::Rng rng2(6);
  sched::RandomSelection s2(0.3, rng2);
  const TrainingHistory b = run(s2, options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.rounds()[i].round_delay_s, b.rounds()[i].round_delay_s);
    EXPECT_DOUBLE_EQ(a.rounds()[i].round_energy_j, b.rounds()[i].round_energy_j);
  }
}

// --- compression ---------------------------------------------------------------

TEST_F(TrainerExtensionTest, QuantizationCutsUploadCostsProportionally) {
  TrainerOptions options = base_options();
  util::Rng rng1(7);
  sched::RandomSelection s1(0.3, rng1);
  const TrainingHistory full = run(s1, options);

  options.compression = {.kind = nn::CompressionKind::kQuantization,
                         .quantization_bits = 8};
  util::Rng rng2(7);
  sched::RandomSelection s2(0.3, rng2);
  const TrainingHistory quantized = run(s2, options);

  // 8-bit codes shrink the payload ~4x; uploads dominate these rounds, so
  // delay and energy must drop clearly.
  EXPECT_LT(quantized.total_delay_s(), 0.75 * full.total_delay_s());
  EXPECT_LT(quantized.total_energy_j(), full.total_energy_j());
}

TEST_F(TrainerExtensionTest, AggressiveQuantizationDegradesAccuracy) {
  TrainerOptions options = base_options();
  options.max_rounds = 60;
  options.eval_every = 5;
  util::Rng rng1(8);
  sched::RandomSelection s1(0.4, rng1);
  const TrainingHistory full = run(s1, options);

  options.compression = {.kind = nn::CompressionKind::kQuantization,
                         .quantization_bits = 1};
  util::Rng rng2(8);
  sched::RandomSelection s2(0.4, rng2);
  const TrainingHistory crushed = run(s2, options);

  EXPECT_GT(full.best_accuracy(), crushed.best_accuracy() + 0.02);
}

TEST_F(TrainerExtensionTest, ModerateQuantizationBarelyHurtsAccuracy) {
  TrainerOptions options = base_options();
  options.max_rounds = 60;
  options.eval_every = 5;
  util::Rng rng1(9);
  sched::RandomSelection s1(0.4, rng1);
  const TrainingHistory full = run(s1, options);

  options.compression = {.kind = nn::CompressionKind::kQuantization,
                         .quantization_bits = 8};
  util::Rng rng2(9);
  sched::RandomSelection s2(0.4, rng2);
  const TrainingHistory quantized = run(s2, options);

  EXPECT_NEAR(full.best_accuracy(), quantized.best_accuracy(), 0.05);
}

// --- convergence exit (Algorithm 1) --------------------------------------------

TEST_F(TrainerExtensionTest, ConvergenceCheckStopsFlatTraining) {
  // Zero learning rate: the loss is identical every round, so the
  // convergence window must fire immediately after `window` rounds.
  TrainerOptions options = base_options();
  options.max_rounds = 100;
  options.client.learning_rate = 0.0F;
  options.convergence_window = 5;
  options.convergence_epsilon = 1e-6;
  util::Rng rng(20);
  sched::RandomSelection strategy(1.0, rng);  // same users -> same loss
  const TrainingHistory history = run(strategy, options);
  EXPECT_EQ(history.size(), 5u);
}

TEST_F(TrainerExtensionTest, ConvergenceCheckDisabledByDefault) {
  TrainerOptions options = base_options();
  options.client.learning_rate = 0.0F;
  util::Rng rng(21);
  sched::RandomSelection strategy(1.0, rng);
  const TrainingHistory history = run(strategy, options);
  EXPECT_EQ(history.size(), options.max_rounds);
}

TEST_F(TrainerExtensionTest, ActiveTrainingEventuallyConverges) {
  TrainerOptions options = base_options();
  options.max_rounds = 400;
  options.convergence_window = 8;
  // Loose enough to absorb the round-to-round noise of evaluating the
  // loss on different 5-user subsets.
  options.convergence_epsilon = 0.12;
  util::Rng rng(22);
  sched::RandomSelection strategy(0.5, rng);
  const TrainingHistory history = run(strategy, options);
  EXPECT_LT(history.size(), 400u);   // converged before the cap
  EXPECT_GT(history.size(), 20u);    // but not immediately
}

// --- batteries + injected faults (DESIGN.md §8) -----------------------------

TEST_F(TrainerExtensionTest, BatteryDepletionUnderCrashesStaysConsistent) {
  // Batteries and injected crashes interact: crashed clients still drain
  // their (partial) compute energy, devices deplete mid-run, and the
  // availability the strategy sees is the AND of both masks.  The invariants:
  // the alive count never rises, every joule is accounted for, and HELCFL's
  // α_q counters agree exactly with the aggregated-update counts.
  TrainerOptions options = base_options();
  options.max_rounds = 300;
  options.battery_capacity_j = 0.8;
  options.faults.enabled = true;
  options.faults.crash_rate = 0.3;
  options.faults.straggler_rate = 0.2;
  options.min_clients = 1;

  core::HelcflScheduler scheduler({.fraction = 0.3, .eta = 0.9, .enable_dvfs = true});
  const TrainingHistory history = run(scheduler, options);

  ASSERT_FALSE(history.empty());
  EXPECT_TRUE(history.round_of_first_depletion(kUsers).has_value());
  EXPECT_GT(history.total_crashes(), 0u);
  EXPECT_GT(history.total_wasted_energy_j(), 0.0);

  std::size_t prev_alive = kUsers;
  double cum_energy = 0.0;
  for (const auto& r : history.rounds()) {
    EXPECT_LE(r.alive_users, prev_alive);           // batteries only drain
    prev_alive = r.alive_users;
    EXPECT_LE(r.available_users, kUsers);
    cum_energy += r.round_energy_j;
    EXPECT_DOUBLE_EQ(r.cum_energy_j, cum_energy);   // no joule lost or double-counted
    EXPECT_LE(r.wasted_energy_j, r.round_energy_j);
    EXPECT_LE(r.survivors + r.crashed, r.selected.size());
  }

  // α_q must count exactly the appearances that survived into the model:
  // selection increments, report_completion revokes the casualties.
  const auto aggregated = history.aggregation_counts(kUsers);
  const auto counters = scheduler.selector().appearance_counts();
  ASSERT_EQ(counters.size(), kUsers);
  for (std::size_t i = 0; i < kUsers; ++i) {
    EXPECT_EQ(counters[i], aggregated[i]) << "user " << i;
  }
}

TEST_F(TrainerExtensionTest, SparsificationRunsAndShrinksUploads) {
  TrainerOptions options = base_options();
  options.compression = {.kind = nn::CompressionKind::kSparsification,
                         .sparsify_keep_ratio = 0.05};
  util::Rng rng(10);
  sched::RandomSelection strategy(0.3, rng);
  const TrainingHistory sparse = run(strategy, options);

  TrainerOptions plain = base_options();
  util::Rng rng2(10);
  sched::RandomSelection s2(0.3, rng2);
  const TrainingHistory full = run(s2, plain);
  // keep 5% at 64 bits each = 10% of the float32 payload.
  EXPECT_LT(sparse.total_delay_s(), 0.6 * full.total_delay_s());
}

}  // namespace
}  // namespace helcfl::fl
