#include "sim/fleet.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.h"

namespace helcfl::sim {
namespace {

std::vector<std::size_t> even_samples(std::size_t n, std::size_t each) {
  return std::vector<std::size_t>(n, each);
}

TEST(Fleet, ProducesRequestedCount) {
  ExperimentConfig c = paper_config();
  util::Rng rng(1);
  const auto fleet = make_fleet(c, even_samples(100, 40), rng);
  EXPECT_EQ(fleet.size(), 100u);
}

TEST(Fleet, DevicesAreValidAndInRange) {
  ExperimentConfig c = paper_config();
  util::Rng rng(2);
  const auto fleet = make_fleet(c, even_samples(100, 40), rng);
  for (const auto& d : fleet) {
    EXPECT_TRUE(d.is_valid());
    EXPECT_GE(d.f_max_hz, c.f_max_low_hz);
    EXPECT_LE(d.f_max_hz, c.f_max_high_hz);
    EXPECT_DOUBLE_EQ(d.f_min_hz, c.f_min_hz);
    EXPECT_GE(d.channel_gain_sq, c.gain_sq_low * 0.999);
    EXPECT_LE(d.channel_gain_sq, c.gain_sq_high * 1.001);
    EXPECT_DOUBLE_EQ(d.tx_power_w, c.tx_power_w);
    EXPECT_EQ(d.num_samples, 40u);
  }
}

TEST(Fleet, IdsAreSequential) {
  ExperimentConfig c = paper_config();
  c.n_users = 10;
  util::Rng rng(3);
  const auto fleet = make_fleet(c, even_samples(10, 5), rng);
  for (std::size_t i = 0; i < fleet.size(); ++i) EXPECT_EQ(fleet[i].id, i);
}

TEST(Fleet, SampleCountsComeFromPartition) {
  ExperimentConfig c = paper_config();
  c.n_users = 3;
  util::Rng rng(4);
  const std::vector<std::size_t> samples = {10, 20, 30};
  const auto fleet = make_fleet(c, samples, rng);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(fleet[i].num_samples, samples[i]);
}

TEST(Fleet, RejectsSampleVectorMismatch) {
  ExperimentConfig c = paper_config();
  util::Rng rng(5);
  EXPECT_THROW(make_fleet(c, even_samples(99, 40), rng), std::invalid_argument);
}

TEST(Fleet, FrequenciesAreHeterogeneous) {
  ExperimentConfig c = paper_config();
  util::Rng rng(6);
  const auto fleet = make_fleet(c, even_samples(100, 40), rng);
  std::vector<double> fmax;
  for (const auto& d : fleet) fmax.push_back(d.f_max_hz);
  // Spread should span most of the (0.3, 2.0) GHz interval.
  EXPECT_LT(util::min_value(fmax), 0.5e9);
  EXPECT_GT(util::max_value(fmax), 1.8e9);
  EXPECT_NEAR(util::mean(fmax), (0.3e9 + 2.0e9) / 2.0, 0.1e9);
}

TEST(Fleet, DeterministicGivenRngState) {
  ExperimentConfig c = paper_config();
  c.n_users = 50;
  util::Rng rng_a(7);
  util::Rng rng_b(7);
  const auto a = make_fleet(c, even_samples(50, 40), rng_a);
  const auto b = make_fleet(c, even_samples(50, 40), rng_b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].f_max_hz, b[i].f_max_hz);
    EXPECT_DOUBLE_EQ(a[i].channel_gain_sq, b[i].channel_gain_sq);
  }
}

TEST(Fleet, ChannelMatchesConfig) {
  ExperimentConfig c = paper_config();
  const mec::Channel channel = make_channel(c);
  EXPECT_DOUBLE_EQ(channel.bandwidth_hz, c.bandwidth_hz);
  EXPECT_DOUBLE_EQ(channel.noise_w, c.noise_w);
}

TEST(Fleet, GainsSpanTheLogRange) {
  ExperimentConfig c = paper_config();
  c.n_users = 200;
  util::Rng rng(8);
  const auto fleet = make_fleet(c, even_samples(200, 40), rng);
  std::size_t low_half = 0;
  const double mid = std::sqrt(c.gain_sq_low * c.gain_sq_high);  // log-midpoint
  for (const auto& d : fleet) {
    if (d.channel_gain_sq < mid) ++low_half;
  }
  // Log-uniform: about half the devices below the log midpoint.
  EXPECT_NEAR(static_cast<double>(low_half) / 200.0, 0.5, 0.12);
}

}  // namespace
}  // namespace helcfl::sim
