#include "nn/serialize.h"

#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/sequential.h"
#include "util/rng.h"

namespace helcfl::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

std::unique_ptr<Sequential> make_two_layer(util::Rng& rng) {
  auto model = std::make_unique<Sequential>();
  model->emplace<Dense>(3, 4, rng);
  model->emplace<ReLU>();
  model->emplace<Dense>(4, 2, rng);
  return model;
}

TEST(Serialize, ParameterCount) {
  util::Rng rng(1);
  auto model_ptr = make_two_layer(rng);
  Sequential& model = *model_ptr;
  EXPECT_EQ(parameter_count(model), (3u * 4 + 4) + (4u * 2 + 2));
}

TEST(Serialize, ExtractLoadRoundTrip) {
  util::Rng rng(2);
  auto model_ptr = make_two_layer(rng);
  Sequential& model = *model_ptr;
  const std::vector<float> original = extract_parameters(model);

  std::vector<float> perturbed = original;
  for (auto& w : perturbed) w += 1.0F;
  load_parameters(model, perturbed);
  EXPECT_EQ(extract_parameters(model), perturbed);

  load_parameters(model, original);
  EXPECT_EQ(extract_parameters(model), original);
}

TEST(Serialize, LoadChangesForwardOutput) {
  util::Rng rng(3);
  auto model_ptr = make_two_layer(rng);
  Sequential& model = *model_ptr;
  const Tensor x(Shape{1, 3}, {1.0F, -0.5F, 2.0F});
  const Tensor y_before = model.forward(x, false);

  std::vector<float> zeros(parameter_count(model), 0.0F);
  load_parameters(model, zeros);
  const Tensor y_after = model.forward(x, false);
  for (std::size_t i = 0; i < y_after.size(); ++i) EXPECT_EQ(y_after[i], 0.0F);
  (void)y_before;
}

TEST(Serialize, LoadRejectsWrongSize) {
  util::Rng rng(4);
  auto model_ptr = make_two_layer(rng);
  Sequential& model = *model_ptr;
  std::vector<float> wrong(parameter_count(model) + 1, 0.0F);
  EXPECT_THROW(load_parameters(model, wrong), std::invalid_argument);
}

TEST(Serialize, ExtractGradientsMatchesLayout) {
  util::Rng rng(5);
  auto model_ptr = make_two_layer(rng);
  Sequential& model = *model_ptr;
  model.zero_grad();
  const std::vector<float> grads = extract_gradients(model);
  EXPECT_EQ(grads.size(), parameter_count(model));
  for (const float g : grads) EXPECT_EQ(g, 0.0F);
}

TEST(Serialize, ModelSizeBitsIs32PerParameter) {
  util::Rng rng(6);
  auto model_ptr = make_two_layer(rng);
  Sequential& model = *model_ptr;
  EXPECT_EQ(model_size_bits(model), parameter_count(model) * 32);
}

TEST(Serialize, StatelessModelHasZeroParameters) {
  Sequential model;
  model.emplace<ReLU>();
  EXPECT_EQ(parameter_count(model), 0u);
  EXPECT_TRUE(extract_parameters(model).empty());
  load_parameters(model, std::span<const float>{});  // must not throw
}

TEST(Serialize, TwoModelsWithSameWeightsAgree) {
  util::Rng rng1(7);
  util::Rng rng2(8);
  auto a_ptr = make_two_layer(rng1);
  auto b_ptr = make_two_layer(rng2);
  Sequential& a = *a_ptr;
  Sequential& b = *b_ptr;
  load_parameters(b, extract_parameters(a));
  const Tensor x(Shape{2, 3}, {1, 2, 3, -1, 0, 1});
  const Tensor ya = a.forward(x, false);
  const Tensor yb = b.forward(x, false);
  for (std::size_t i = 0; i < ya.size(); ++i) EXPECT_EQ(ya[i], yb[i]);
}

}  // namespace
}  // namespace helcfl::nn
