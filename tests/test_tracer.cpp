// Tests for the helcfl::obs observability subsystem (docs/OBSERVABILITY.md):
// JSONL validity and escaping, level filtering, zero-event output when
// disabled, seq ordering under concurrent emit from many threads, phase
// profiling spans/summary, and the counters/gauges registry.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/profiler.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace helcfl::obs {
namespace {

/// Splits a JSONL buffer into its lines (the trailing newline dropped).
std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

/// Minimal structural JSON-object check for one emitted line: brace
/// delimited, balanced braces/brackets outside strings, an even number of
/// unescaped quotes, no raw control characters.
void expect_valid_json_object(const std::string& line) {
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.front(), '{') << line;
  EXPECT_EQ(line.back(), '}') << line;
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : line) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20) << "raw control char: " << line;
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0) << line;
  }
  EXPECT_FALSE(in_string) << line;
  EXPECT_EQ(depth, 0) << line;
}

/// Tracer over an in-memory buffer; keeps a borrowed view of the stream.
struct MemoryTrace {
  explicit MemoryTrace(TraceLevel level) {
    auto stream = std::make_unique<std::ostringstream>();
    buffer = stream.get();
    tracer = std::make_unique<Tracer>(std::move(stream), level);
  }
  std::string text() {
    tracer->flush();
    return buffer->str();
  }
  std::ostringstream* buffer = nullptr;
  std::unique_ptr<Tracer> tracer;
};

TEST(TraceLevelTest, ParseAndNameRoundTrip) {
  for (const TraceLevel level : {TraceLevel::kOff, TraceLevel::kRound,
                                 TraceLevel::kDecision, TraceLevel::kDebug}) {
    EXPECT_EQ(parse_trace_level(trace_level_name(level)), level);
  }
  EXPECT_THROW(parse_trace_level("verbose"), std::invalid_argument);
  EXPECT_THROW(parse_trace_level(""), std::invalid_argument);
}

TEST(TracerTest, DisabledTracerEmitsNothing) {
  Tracer tracer;  // default-constructed = disabled
  EXPECT_FALSE(tracer.enabled(TraceLevel::kRound));
  EXPECT_FALSE(tracer.enabled(TraceLevel::kDebug));
  tracer.emit(TraceLevel::kRound, "round_start", {{"round", 0}});
  tracer.flush();
  EXPECT_EQ(tracer.event_count(), 0U);
}

TEST(TracerTest, LevelFilter) {
  MemoryTrace trace(TraceLevel::kRound);
  EXPECT_TRUE(trace.tracer->enabled(TraceLevel::kRound));
  EXPECT_FALSE(trace.tracer->enabled(TraceLevel::kDecision));
  EXPECT_FALSE(trace.tracer->enabled(TraceLevel::kOff));
  trace.tracer->emit(TraceLevel::kRound, "keep", {});
  trace.tracer->emit(TraceLevel::kDecision, "drop", {});
  trace.tracer->emit(TraceLevel::kDebug, "drop", {});
  EXPECT_EQ(trace.tracer->event_count(), 1U);
  const auto lines = lines_of(trace.text());
  ASSERT_EQ(lines.size(), 1U);
  EXPECT_NE(lines[0].find("\"event\":\"keep\""), std::string::npos);
}

TEST(TracerTest, FieldTypesSerializeExactly) {
  MemoryTrace trace(TraceLevel::kDebug);
  trace.tracer->emit(TraceLevel::kRound, "typed",
                     {{"i", -3},
                      {"u", std::size_t{7}},
                      {"d", 0.5},
                      {"b", true},
                      {"s", "text"}});
  const auto lines = lines_of(trace.text());
  ASSERT_EQ(lines.size(), 1U);
  expect_valid_json_object(lines[0]);
  EXPECT_EQ(lines[0],
            "{\"seq\":0,\"event\":\"typed\",\"i\":-3,\"u\":7,\"d\":0.5,"
            "\"b\":true,\"s\":\"text\"}");
}

TEST(TracerTest, NonFiniteDoublesBecomeNull) {
  MemoryTrace trace(TraceLevel::kDebug);
  trace.tracer->emit(TraceLevel::kRound, "edge",
                     {{"inf", std::numeric_limits<double>::infinity()},
                      {"nan", std::nan("")}});
  const auto lines = lines_of(trace.text());
  ASSERT_EQ(lines.size(), 1U);
  expect_valid_json_object(lines[0]);
  EXPECT_NE(lines[0].find("\"inf\":null"), std::string::npos);
  EXPECT_NE(lines[0].find("\"nan\":null"), std::string::npos);
}

TEST(TracerTest, StringsAreEscaped) {
  MemoryTrace trace(TraceLevel::kDebug);
  trace.tracer->emit(TraceLevel::kRound, "esc",
                     {{"s", "a\"b\\c\nd\te"}});
  const auto lines = lines_of(trace.text());
  ASSERT_EQ(lines.size(), 1U);
  expect_valid_json_object(lines[0]);
  EXPECT_NE(lines[0].find("a\\\"b\\\\c\\nd\\te"), std::string::npos);
}

TEST(TracerTest, DoubleRoundTripsThroughShortestForm) {
  MemoryTrace trace(TraceLevel::kDebug);
  const double value = 0.0722606142270555;
  trace.tracer->emit(TraceLevel::kRound, "rt", {{"v", value}});
  const auto lines = lines_of(trace.text());
  ASSERT_EQ(lines.size(), 1U);
  const std::size_t at = lines[0].find("\"v\":");
  ASSERT_NE(at, std::string::npos);
  const std::string digits =
      lines[0].substr(at + 4, lines[0].size() - (at + 4) - 1);
  EXPECT_EQ(std::stod(digits), value);  // std::to_chars is round-trip exact
}

TEST(TracerTest, ConcurrentEmitKeepsLinesAtomicAndSeqOrdered) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 200;
  MemoryTrace trace(TraceLevel::kDebug);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trace, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        trace.tracer->emit(TraceLevel::kDecision, "spam",
                           {{"thread", t}, {"i", i}, {"pi", 3.14159}});
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(trace.tracer->event_count(), kThreads * kPerThread);
  const auto lines = lines_of(trace.text());
  ASSERT_EQ(lines.size(), kThreads * kPerThread);
  // seq order == file order: every line is written while holding the sink
  // mutex that also assigns its seq.
  for (std::size_t i = 0; i < lines.size(); ++i) {
    expect_valid_json_object(lines[i]);
    const std::string prefix = "{\"seq\":" + std::to_string(i) + ",";
    EXPECT_EQ(lines[i].compare(0, prefix.size(), prefix), 0) << lines[i];
  }
}

TEST(TracerTest, ConcurrentWritersRacingFlushAndShutdownLoseNothing) {
  // Writers emitting while another thread hammers flush(), ending in the
  // destructor's shutdown flush: every line must land exactly once, intact,
  // with the full seq range present — no lost, torn, or interleaved lines.
  constexpr std::size_t kThreads = 6;
  constexpr std::size_t kPerThread = 300;
  const std::string path = ::testing::TempDir() + "tracer_shutdown_race.jsonl";
  {
    Tracer tracer(path, TraceLevel::kDebug);
    std::vector<std::thread> threads;
    threads.reserve(kThreads + 1);
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&tracer, t] {
        for (std::size_t i = 0; i < kPerThread; ++i) {
          tracer.emit(TraceLevel::kDecision, "spam",
                      {{"thread", t}, {"i", i}, {"text", "a\"b\\c"}});
          if (i % 64 == 0) tracer.flush();
        }
      });
    }
    threads.emplace_back([&tracer] {
      for (int i = 0; i < 200; ++i) tracer.flush();
    });
    for (auto& thread : threads) thread.join();
    EXPECT_EQ(tracer.event_count(), kThreads * kPerThread);
  }  // ~Tracer: the shutdown flush races with nothing but must finish the job

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto lines = lines_of(buffer.str());
  ASSERT_EQ(lines.size(), kThreads * kPerThread);
  std::vector<bool> seen(lines.size(), false);
  for (const auto& line : lines) {
    expect_valid_json_object(line);
    // Every line leads with its seq; collect them to prove none vanished.
    constexpr const char* kPrefix = "{\"seq\":";
    ASSERT_EQ(line.compare(0, std::strlen(kPrefix), kPrefix), 0) << line;
    const std::size_t seq = std::stoull(line.substr(std::strlen(kPrefix)));
    ASSERT_LT(seq, seen.size()) << line;
    EXPECT_FALSE(seen[seq]) << "duplicate seq " << seq;
    seen[seq] = true;
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_TRUE(seen[i]) << "lost line with seq " << i;
  }
  std::remove(path.c_str());
}

TEST(ScopedSpanTest, NullProfilerIsInert) {
  ScopedSpan span(nullptr, "nothing");
  span.finish();  // no crash, nothing recorded anywhere
}

TEST(PhaseProfilerTest, RecordsSpansAndSummarizes) {
  PhaseProfiler profiler;
  profiler.record("selection", 0, -1, 0, 1000, 0, TraceLevel::kRound);
  profiler.record("selection", 1, -1, 2000, 3000, 0, TraceLevel::kRound);
  profiler.record("client", 0, 4, 100, 500, 1, TraceLevel::kDebug);
  EXPECT_EQ(profiler.span_count(), 3U);

  const auto summary = profiler.summary();
  ASSERT_EQ(summary.size(), 2U);
  // Sorted by descending total time: selection 4ms > client 0.5ms.
  EXPECT_EQ(summary[0].phase, "selection");
  EXPECT_EQ(summary[0].count, 2U);
  EXPECT_DOUBLE_EQ(summary[0].total_s, 0.004);
  EXPECT_DOUBLE_EQ(summary[0].min_s, 0.001);
  EXPECT_DOUBLE_EQ(summary[0].max_s, 0.003);
  EXPECT_DOUBLE_EQ(summary[0].mean_s(), 0.002);
  EXPECT_EQ(summary[1].phase, "client");

  const std::string table = profiler.format_summary();
  EXPECT_NE(table.find("selection"), std::string::npos);
  EXPECT_NE(table.find("client"), std::string::npos);
}

TEST(PhaseProfilerTest, ScopedSpanRecordsElapsedTime) {
  PhaseProfiler profiler;
  { ScopedSpan span = profiler.span("work", 3); }
  ASSERT_EQ(profiler.span_count(), 1U);
  const auto summary = profiler.summary();
  ASSERT_EQ(summary.size(), 1U);
  EXPECT_EQ(summary[0].phase, "work");
  EXPECT_GE(summary[0].total_s, 0.0);
}

TEST(PhaseProfilerTest, MirrorsSpansIntoTracerAtSpanLevel) {
  MemoryTrace trace(TraceLevel::kRound);
  PhaseProfiler profiler(trace.tracer.get());
  { ScopedSpan span = profiler.span("selection", 0); }
  { ScopedSpan span = profiler.span("client", 0, 7, TraceLevel::kDebug); }
  // Only the kRound span passes the filter of a kRound tracer.
  EXPECT_EQ(trace.tracer->event_count(), 1U);
  const auto lines = lines_of(trace.text());
  ASSERT_EQ(lines.size(), 1U);
  expect_valid_json_object(lines[0]);
  EXPECT_NE(lines[0].find("\"event\":\"phase\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"phase\":\"selection\""), std::string::npos);
}

TEST(PhaseProfilerTest, WritesChromeTrace) {
  PhaseProfiler profiler;
  profiler.record("selection", 0, -1, 10, 20, 0, TraceLevel::kRound);
  profiler.record("client", 0, 3, 15, 5, 2, TraceLevel::kDebug);
  const std::string path = ::testing::TempDir() + "helcfl_chrome_trace.json";
  profiler.write_chrome_trace(path);

  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::string text(1 << 12, '\0');
  text.resize(std::fread(text.data(), 1, text.size(), file));
  std::fclose(file);
  std::remove(path.c_str());

  EXPECT_NE(text.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"selection\""), std::string::npos);
  EXPECT_NE(text.find("\"tid\":2"), std::string::npos);
}

TEST(RegistryTest, CountersAndGauges) {
  Registry registry;
  EXPECT_TRUE(registry.empty());
  EXPECT_EQ(registry.counter("clients.crashed"), 0U);
  EXPECT_FALSE(registry.gauge("delay.cum_s").has_value());

  registry.add("clients.crashed");
  registry.add("clients.crashed", 2);
  registry.add("uploads.retries", 5);
  registry.set_gauge("delay.cum_s", 12.5);
  registry.set_gauge("delay.cum_s", 42.0);  // overwrite

  EXPECT_FALSE(registry.empty());
  EXPECT_EQ(registry.counter("clients.crashed"), 3U);
  EXPECT_EQ(registry.counter("uploads.retries"), 5U);
  EXPECT_DOUBLE_EQ(registry.gauge("delay.cum_s").value(), 42.0);

  const auto counters = registry.counters();
  ASSERT_EQ(counters.size(), 2U);
  EXPECT_EQ(counters[0].first, "clients.crashed");  // sorted by name
  EXPECT_EQ(counters[1].first, "uploads.retries");

  const std::string table = registry.format_table();
  EXPECT_NE(table.find("clients.crashed"), std::string::npos);
  EXPECT_NE(table.find("delay.cum_s"), std::string::npos);
}

TEST(RegistryTest, ConcurrentAddsAreLossless) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 1000;
  Registry registry;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (std::size_t i = 0; i < kPerThread; ++i) registry.add("hits");
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.counter("hits"), kThreads * kPerThread);
}

TEST(RegistryTest, EmitsOneEventPerEntry) {
  Registry registry;
  registry.add("a.count", 3);
  registry.add("b.count", 1);
  registry.set_gauge("c.value", 1.5);

  MemoryTrace trace(TraceLevel::kRound);
  registry.emit_to(*trace.tracer);
  EXPECT_EQ(trace.tracer->event_count(), 3U);
  const auto lines = lines_of(trace.text());
  ASSERT_EQ(lines.size(), 3U);
  for (const auto& line : lines) expect_valid_json_object(line);
  EXPECT_NE(lines[0].find("\"event\":\"counter\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"event\":\"gauge\""), std::string::npos);
}

}  // namespace
}  // namespace helcfl::obs
