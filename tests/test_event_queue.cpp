// fl::EventQueue: the deterministically ordered heart of the async engine
// (docs/ASYNC.md).  Pops come out in strict (time_s, seq) order — seq is
// unique, so the order is total and independent of insertion order and of
// how pushes interleave with pops; the canonical serialization round-trips
// byte-identically; and a malformed frame is rejected leaving the target
// queue untouched.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "fl/event_queue.h"
#include "util/rng.h"
#include "util/serial.h"

namespace helcfl::fl {
namespace {

Event make_event(double time_s, std::uint64_t seq, EventKind kind,
                 std::uint64_t user = 0, std::uint64_t tag = 0,
                 double value = 0.0) {
  return Event{time_s, seq, kind, user, tag, value};
}

std::vector<Event> drain(EventQueue& queue) {
  std::vector<Event> events;
  while (!queue.empty()) events.push_back(queue.pop());
  return events;
}

std::vector<std::uint8_t> frame_bytes(const EventQueue& queue) {
  util::ByteWriter writer;
  queue.save_state(writer);
  return writer.take();
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  queue.push(3.0, EventKind::kComputeFinish, 1);
  queue.push(1.0, EventKind::kUploadFinish, 2);
  queue.push(2.0, EventKind::kFault, 3);

  EXPECT_EQ(queue.size(), 3U);
  EXPECT_EQ(queue.top().user, 2U);
  const std::vector<Event> events = drain(queue);
  ASSERT_EQ(events.size(), 3U);
  EXPECT_EQ(events[0].time_s, 1.0);
  EXPECT_EQ(events[1].time_s, 2.0);
  EXPECT_EQ(events[2].time_s, 3.0);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, EqualTimestampsPopInInsertionOrder) {
  // Four events at the same instant: the seq tie-break makes the pop order
  // exactly the push order — the property the sync-equivalence contract
  // leans on (TDMA grants pushed in grant order pop in grant order).
  EventQueue queue;
  for (std::uint64_t user = 0; user < 4; ++user) {
    queue.push(5.0, EventKind::kUploadFinish, user);
  }
  const std::vector<Event> events = drain(queue);
  ASSERT_EQ(events.size(), 4U);
  for (std::uint64_t user = 0; user < 4; ++user) {
    EXPECT_EQ(events[user].user, user);
    EXPECT_EQ(events[user].seq, user);
  }
}

TEST(EventQueue, SeqAssignmentIsSequentialAndSurvivesClear) {
  EventQueue queue;
  EXPECT_EQ(queue.push(1.0, EventKind::kChurn, 0), 0U);
  EXPECT_EQ(queue.push(1.0, EventKind::kChurn, 0), 1U);
  EXPECT_EQ(queue.next_seq(), 2U);
  queue.clear();
  EXPECT_TRUE(queue.empty());
  // clear() empties the heap but never reuses sequence numbers: a reused
  // seq would silently reorder equal-time events across epochs.
  EXPECT_EQ(queue.push(1.0, EventKind::kChurn, 0), 2U);
}

TEST(EventQueue, FuzzedPopOrderMatchesStableSortForAnyInsertionOrder) {
  // Heavily colliding timestamps (8 distinct values for 200 events): the
  // pop sequence must equal the push sequence stably sorted by time.
  util::Rng rng(0xE7E11);
  for (int trial = 0; trial < 20; ++trial) {
    EventQueue queue;
    std::vector<Event> pushed;
    const std::size_t n = 200;
    for (std::size_t i = 0; i < n; ++i) {
      const double time = static_cast<double>(rng.uniform_int(0, 7));
      const auto kind = static_cast<EventKind>(rng.uniform_int(0, 3));
      const auto user = static_cast<std::uint64_t>(rng.uniform_int(0, 15));
      const auto tag = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20));
      const double value = rng.uniform();
      const std::uint64_t seq = queue.push(time, kind, user, tag, value);
      pushed.push_back(make_event(time, seq, kind, user, tag, value));
    }
    std::stable_sort(pushed.begin(), pushed.end(),
                     [](const Event& a, const Event& b) { return a.before(b); });
    EXPECT_EQ(drain(queue), pushed) << "trial " << trial;
  }
}

TEST(EventQueue, FuzzedInterleavedPushPopKeepsHeapInvariant) {
  // Random push/pop interleavings against a reference model: every pop
  // must return the (time, seq)-minimum of the current content.
  util::Rng rng(0xBEEFCAFE);
  for (int trial = 0; trial < 10; ++trial) {
    EventQueue queue;
    std::vector<Event> model;  // kept sorted by before()
    for (int op = 0; op < 500; ++op) {
      const bool do_pop = !model.empty() && rng.bernoulli(0.4);
      if (do_pop) {
        const Event expected = model.front();
        model.erase(model.begin());
        EXPECT_EQ(queue.pop(), expected) << "trial " << trial << " op " << op;
      } else {
        const double time = static_cast<double>(rng.uniform_int(0, 9)) / 2.0;
        const auto user = static_cast<std::uint64_t>(rng.uniform_int(0, 7));
        const std::uint64_t seq =
            queue.push(time, EventKind::kComputeFinish, user);
        const Event event = make_event(time, seq, EventKind::kComputeFinish, user);
        model.insert(std::upper_bound(model.begin(), model.end(), event,
                                      [](const Event& a, const Event& b) {
                                        return a.before(b);
                                      }),
                     event);
      }
      ASSERT_EQ(queue.size(), model.size());
      if (!model.empty()) EXPECT_EQ(queue.top(), model.front());
    }
  }
}

TEST(EventQueue, SortedEventsMatchesPopOrderWithoutDraining) {
  util::Rng rng(77);
  EventQueue queue;
  for (int i = 0; i < 64; ++i) {
    queue.push(static_cast<double>(rng.uniform_int(0, 3)),
               static_cast<EventKind>(rng.uniform_int(0, 3)),
               static_cast<std::uint64_t>(i));
  }
  const std::vector<Event> sorted = queue.sorted_events();
  EXPECT_EQ(queue.size(), 64U);  // sorted_events is non-destructive
  EXPECT_EQ(drain(queue), sorted);
}

TEST(EventQueue, SerializationRoundTripsByteIdentically) {
  util::Rng rng(0x5E41A1);
  EventQueue queue;
  for (int i = 0; i < 100; ++i) {
    queue.push(static_cast<double>(rng.uniform_int(0, 5)),
               static_cast<EventKind>(rng.uniform_int(0, 3)),
               static_cast<std::uint64_t>(rng.uniform_int(0, 30)),
               static_cast<std::uint64_t>(rng.uniform_int(0, 1000)),
               rng.uniform());
  }
  // Pop a few so the serialized heap is a mid-run snapshot, not pristine.
  for (int i = 0; i < 17; ++i) queue.pop();

  const std::vector<std::uint8_t> bytes = frame_bytes(queue);
  EventQueue loaded;
  util::ByteReader reader(bytes);
  loaded.load_state(reader);
  reader.expect_end("event queue frame");

  // Canonical form: re-serializing the loaded queue is byte-identical.
  EXPECT_EQ(frame_bytes(loaded), bytes);
  EXPECT_EQ(loaded.next_seq(), queue.next_seq());
  EXPECT_EQ(loaded.sorted_events(), queue.sorted_events());
  EXPECT_EQ(drain(loaded), drain(queue));
}

TEST(EventQueue, LoadedQueueContinuesSeqAssignment) {
  EventQueue queue;
  queue.push(1.0, EventKind::kChurn, 0);
  queue.push(2.0, EventKind::kChurn, 0);
  const std::vector<std::uint8_t> bytes = frame_bytes(queue);

  EventQueue loaded;
  util::ByteReader reader(bytes);
  loaded.load_state(reader);
  // New pushes must not collide with restored seqs.
  EXPECT_EQ(loaded.push(0.5, EventKind::kChurn, 0), 2U);
  const std::vector<Event> events = drain(loaded);
  ASSERT_EQ(events.size(), 3U);
  EXPECT_EQ(events[0].seq, 2U);  // earliest time wins despite newest seq
}

TEST(EventQueue, PushRejectsNonFiniteAndNegativeTimes) {
  EventQueue queue;
  EXPECT_THROW(queue.push(std::numeric_limits<double>::quiet_NaN(),
                          EventKind::kChurn, 0),
               std::invalid_argument);
  EXPECT_THROW(queue.push(std::numeric_limits<double>::infinity(),
                          EventKind::kChurn, 0),
               std::invalid_argument);
  EXPECT_THROW(queue.push(-1.0, EventKind::kChurn, 0), std::invalid_argument);
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.next_seq(), 0U);  // failed pushes burn no seq
}

TEST(EventQueue, TopAndPopOnEmptyThrow) {
  EventQueue queue;
  EXPECT_THROW(queue.top(), std::logic_error);
  EXPECT_THROW(queue.pop(), std::logic_error);
}

// Builds a hand-crafted frame: next_seq, count, then (time, seq, kind,
// user, tag, value) per event — the canonical layout of save_state.
std::vector<std::uint8_t> craft_frame(
    std::uint64_t next_seq,
    const std::vector<Event>& events) {
  util::ByteWriter writer;
  writer.u64(next_seq);
  writer.u64(events.size());
  for (const Event& e : events) {
    writer.f64(e.time_s);
    writer.u64(e.seq);
    writer.u8(static_cast<std::uint8_t>(e.kind));
    writer.u64(e.user);
    writer.u64(e.tag);
    writer.f64(e.value);
  }
  return writer.take();
}

void expect_load_rejected(const std::vector<std::uint8_t>& bytes) {
  EventQueue target;
  target.push(9.0, EventKind::kChurn, 42);  // pre-existing content
  const std::vector<std::uint8_t> before = frame_bytes(target);
  util::ByteReader reader(bytes);
  EXPECT_ANY_THROW(target.load_state(reader));
  // Parse-then-commit: the rejected frame left the target untouched.
  EXPECT_EQ(frame_bytes(target), before);
}

TEST(EventQueue, LoadRejectsTruncatedFrame) {
  EventQueue queue;
  queue.push(1.0, EventKind::kComputeFinish, 3);
  std::vector<std::uint8_t> bytes = frame_bytes(queue);
  bytes.resize(bytes.size() - 5);
  expect_load_rejected(bytes);
}

TEST(EventQueue, LoadRejectsAbsurdCount) {
  util::ByteWriter writer;
  writer.u64(10);                  // next_seq
  writer.u64(1'000'000'000'000ULL);  // count with no bytes behind it
  expect_load_rejected(writer.take());
}

TEST(EventQueue, LoadRejectsUnknownKind) {
  expect_load_rejected(craft_frame(
      1, {make_event(1.0, 0, static_cast<EventKind>(kEventKindCount))}));
}

TEST(EventQueue, LoadRejectsNonFiniteTime) {
  expect_load_rejected(craft_frame(
      1, {make_event(std::numeric_limits<double>::quiet_NaN(), 0,
                     EventKind::kChurn)}));
}

TEST(EventQueue, LoadRejectsSeqBeyondCursor) {
  // seq 7 with next_seq 3: a future push would collide.
  expect_load_rejected(craft_frame(3, {make_event(1.0, 7, EventKind::kChurn)}));
}

TEST(EventQueue, LoadRejectsOutOfOrderAndDuplicateEvents) {
  // Canonical frames are strictly increasing in (time, seq); both a swap
  // and a duplicate violate that.
  expect_load_rejected(craft_frame(4, {make_event(2.0, 1, EventKind::kChurn),
                                       make_event(1.0, 0, EventKind::kChurn)}));
  expect_load_rejected(craft_frame(4, {make_event(1.0, 2, EventKind::kChurn),
                                       make_event(1.0, 2, EventKind::kChurn)}));
}

TEST(EventQueue, EventBeforeIsStrictTotalOrder) {
  const Event a = make_event(1.0, 0, EventKind::kChurn);
  const Event b = make_event(1.0, 1, EventKind::kChurn);
  const Event c = make_event(2.0, 0, EventKind::kChurn);
  EXPECT_TRUE(a.before(b));
  EXPECT_FALSE(b.before(a));
  EXPECT_TRUE(a.before(c));
  EXPECT_TRUE(b.before(c));
  EXPECT_FALSE(a.before(a));
}

}  // namespace
}  // namespace helcfl::fl
