// The checkpoint format and its failure modes (docs/CHECKPOINT.md):
// save -> load -> save is byte-identical; truncated, bit-flipped,
// wrong-magic, and future-version files are rejected with distinct,
// actionable errors; and a rejected resume leaves the trainer completely
// untouched — a subsequent fresh run is bitwise identical to one that
// never attempted the resume.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "fl/checkpoint.h"
#include "fl_fixtures.h"
#include "resume_fixtures.h"
#include "util/serial.h"

namespace helcfl::fl {
namespace {

const testing::ResumeWorld& world() {
  static const testing::ResumeWorld kWorld;
  return kWorld;
}

// A checkpoint written by a real run, as raw bytes, plus its parse.
struct GoldenCheckpoint {
  std::vector<std::uint8_t> bytes;
  Checkpoint parsed;
};

const GoldenCheckpoint& golden_checkpoint() {
  static const GoldenCheckpoint kGolden = [] {
    const std::filesystem::path dir = testing::resume_tmp_dir("format");
    TrainerOptions options = testing::resume_options(/*faults=*/true, 1);
    options.checkpoint_every = 2;
    options.checkpoint_path = (dir / "golden.ckpt").string();
    testing::run_resume_case(world(), "HELCFL", options);
    std::ifstream in(dir / "golden.ckpt", std::ios::binary);
    GoldenCheckpoint golden;
    golden.bytes.assign(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
    golden.parsed = Checkpoint::deserialize(golden.bytes);
    return golden;
  }();
  return kGolden;
}

TEST(CheckpointFormat, SaveLoadSaveIsByteIdentical) {
  const GoldenCheckpoint& golden = golden_checkpoint();
  EXPECT_FALSE(golden.bytes.empty());
  // deserialize -> serialize reproduces the exact file image.
  EXPECT_EQ(golden.parsed.serialize(), golden.bytes);
  // ... and a second round-trip stays fixed.
  const Checkpoint again = Checkpoint::deserialize(golden.parsed.serialize());
  EXPECT_EQ(again.serialize(), golden.bytes);
}

TEST(CheckpointFormat, CarriesTheRunState) {
  const Checkpoint& ckpt = golden_checkpoint().parsed;
  EXPECT_EQ(ckpt.seed, testing::kResumeSeed);
  EXPECT_EQ(ckpt.n_users, testing::kResumeUsers);
  EXPECT_EQ(ckpt.next_round, testing::kResumeRounds);  // final cadence point
  EXPECT_EQ(ckpt.strategy_name, "HELCFL");
  EXPECT_FALSE(ckpt.global_weights.empty());
  EXPECT_FALSE(ckpt.strategy_state.empty());
  EXPECT_FALSE(ckpt.injector_state.empty());
  EXPECT_EQ(ckpt.records.size(), testing::kResumeRounds);
  EXPECT_GT(ckpt.cum_delay_s, 0.0);
  EXPECT_GT(ckpt.cum_energy_j, 0.0);
}

void expect_rejected(const std::vector<std::uint8_t>& bytes,
                     const std::string& message_piece) {
  try {
    Checkpoint::deserialize(bytes);
    FAIL() << "accepted a corrupt checkpoint (wanted error containing '"
           << message_piece << "')";
  } catch (const CheckpointError& error) {
    EXPECT_NE(std::string(error.what()).find(message_piece), std::string::npos)
        << "got: " << error.what();
  }
}

TEST(CheckpointAdversarial, TruncationsAtEveryRegionAreRejected) {
  const std::vector<std::uint8_t>& bytes = golden_checkpoint().bytes;
  // Inside the 24-byte header: reported as shorter-than-header.
  for (const std::size_t n : {0UL, 1UL, 4UL, 12UL, 23UL}) {
    expect_rejected({bytes.begin(), bytes.begin() + static_cast<long>(n)},
                    "truncated");
  }
  // Inside the payload: reported as truncated (declared size > actual).
  for (const std::size_t n : {24UL, 25UL, bytes.size() / 2, bytes.size() - 1}) {
    expect_rejected({bytes.begin(), bytes.begin() + static_cast<long>(n)},
                    "truncated");
  }
}

TEST(CheckpointAdversarial, WrongMagicIsRejected) {
  std::vector<std::uint8_t> bytes = golden_checkpoint().bytes;
  bytes[0] ^= 0xFF;
  expect_rejected(bytes, "bad magic");
  // A plausible-but-wrong file (all zeros) is not misparsed either.
  expect_rejected(std::vector<std::uint8_t>(bytes.size(), 0), "bad magic");
}

TEST(CheckpointAdversarial, FutureVersionIsRejected) {
  std::vector<std::uint8_t> bytes = golden_checkpoint().bytes;
  bytes[4] = static_cast<std::uint8_t>(Checkpoint::kVersion + 1);
  expect_rejected(bytes, "version");
}

TEST(CheckpointAdversarial, PayloadBitFlipsFailTheChecksum) {
  const std::vector<std::uint8_t>& golden = golden_checkpoint().bytes;
  // Flip one bit at several payload offsets; every flip must be caught.
  for (const std::size_t offset :
       {24UL, 32UL, 24 + (golden.size() - 24) / 2, golden.size() - 1}) {
    std::vector<std::uint8_t> bytes = golden;
    bytes[offset] ^= 0x10;
    expect_rejected(bytes, "corrupted");
  }
}

TEST(CheckpointAdversarial, HugeDeclaredRecordCountIsRejectedBeforeAllocating) {
  // A checksum-VALID file declaring 2^60 round records must be rejected by
  // the record-count bound, not by an attempted multi-GB reserve().  Build
  // it honestly: serialize a record-free checkpoint, overwrite the count
  // (the last 8 payload bytes), and re-seal the checksum.
  Checkpoint ckpt = golden_checkpoint().parsed;
  ckpt.records.clear();
  std::vector<std::uint8_t> bytes = ckpt.serialize();
  const std::uint64_t huge = std::uint64_t{1} << 60;
  for (std::size_t i = 0; i < 8; ++i) {
    bytes[bytes.size() - 8 + i] = static_cast<std::uint8_t>(huge >> (8 * i));
  }
  const std::uint64_t checksum = util::fnv1a64(
      {bytes.data() + 24, bytes.size() - 24});
  for (std::size_t i = 0; i < 8; ++i) {
    bytes[16 + i] = static_cast<std::uint8_t>(checksum >> (8 * i));
  }
  expect_rejected(bytes, "records");
}

TEST(CheckpointAdversarial, TrailingBytesAreRejected) {
  std::vector<std::uint8_t> bytes = golden_checkpoint().bytes;
  bytes.push_back(0);
  expect_rejected(bytes, "trailing");
}

TEST(CheckpointAdversarial, ReadFileNamesThePath) {
  const std::filesystem::path dir = testing::resume_tmp_dir("read_file");
  const std::string path = (dir / "corrupt.ckpt").string();
  std::vector<std::uint8_t> bytes = golden_checkpoint().bytes;
  bytes[bytes.size() / 2] ^= 0x01;
  {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  try {
    Checkpoint::read_file(path);
    FAIL() << "accepted a corrupt file";
  } catch (const CheckpointError& error) {
    EXPECT_NE(std::string(error.what()).find(path), std::string::npos)
        << error.what();
  }
  EXPECT_THROW(Checkpoint::read_file((dir / "missing.ckpt").string()),
               CheckpointError);
}

// A rejected resume must leave the trainer untouched: after the throw, a
// fresh run over the same world produces exactly the golden trajectory.
TEST(CheckpointAdversarial, FailedResumeLeavesNoPartialRestore) {
  const std::filesystem::path dir = testing::resume_tmp_dir("no_partial");
  const testing::ResumeRun golden = testing::run_resume_case(
      world(), "Oort", testing::resume_options(/*faults=*/true, 1));

  // A checkpoint whose strategy payload is internally corrupt: flip bytes
  // near the end so the header checks pass the earlier gates is not
  // possible — the checksum catches any flip.  Instead, build a checkpoint
  // that passes deserialize() but fails the trainer's own gates: a valid
  // file saved by a *different strategy*.
  TrainerOptions save_options = testing::resume_options(/*faults=*/true, 1);
  save_options.checkpoint_every = 2;
  save_options.checkpoint_path = (dir / "other.ckpt").string();
  testing::run_resume_case(world(), "HELCFL", save_options);

  TrainerOptions bad_resume = testing::resume_options(/*faults=*/true, 1);
  bad_resume.resume_from = (dir / "other.ckpt").string();
  EXPECT_THROW(testing::run_resume_case(world(), "Oort", bad_resume),
               CheckpointError);

  // The rejected attempt above ran inside its own trainer; the durable
  // proof is at the strategy level: a strategy that survives a failed
  // load_state() must be byte-identical to before the attempt.
  const std::unique_ptr<sched::SelectionStrategy> strategy =
      testing::make_resume_strategy("Oort");
  util::ByteWriter before;
  strategy->save_state(before);
  util::ByteWriter wrong;
  testing::make_resume_strategy("HELCFL")->save_state(wrong);
  util::ByteReader reader(wrong.data());
  EXPECT_THROW(strategy->load_state(reader), util::SerialError);
  util::ByteWriter after;
  strategy->save_state(after);
  EXPECT_EQ(before.data(), after.data());

  // And end-to-end: a fresh run after the failure reproduces golden.
  const testing::ResumeRun rerun = testing::run_resume_case(
      world(), "Oort", testing::resume_options(/*faults=*/true, 1));
  EXPECT_EQ(golden.final_weights, rerun.final_weights);
  testing::expect_history_identical(golden.history, rerun.history);
}

// --- strategy state property tests -------------------------------------

// Drives a strategy through `rounds` decide/observe/report cycles on a
// small fleet so its cursors and counters move.
void advance_strategy(sched::SelectionStrategy& strategy, std::size_t rounds,
                      std::size_t start_round = 0) {
  static const std::vector<sched::UserInfo> kUsers = testing::users_with_delays(
      {{5, 1}, {9, 2}, {3, 1}, {14, 2}, {7, 1}, {11, 3}, {4, 2}, {8, 1},
       {6, 2}, {12, 1}, {2, 3}, {10, 2}});
  const sched::FleetView fleet{kUsers};
  for (std::size_t r = start_round; r < start_round + rounds; ++r) {
    const sched::Decision decision = strategy.decide(fleet, r);
    std::vector<double> losses(decision.selected.size());
    for (std::size_t i = 0; i < losses.size(); ++i) {
      losses[i] = 0.5 + 0.01 * static_cast<double>((r * 7 + i * 3) % 13);
    }
    strategy.observe(r, decision, losses);
    // Fail every 5th participant so failure streaks accumulate too.
    std::vector<std::uint8_t> completed(decision.selected.size(), 1);
    for (std::size_t i = 0; i < completed.size(); ++i) {
      if ((r + i) % 5 == 0) completed[i] = 0;
    }
    strategy.report_completion(r, decision, completed);
  }
}

std::vector<std::uint8_t> strategy_bytes(const sched::SelectionStrategy& strategy) {
  util::ByteWriter writer;
  strategy.save_state(writer);
  return writer.take();
}

class StrategyStateRoundTrip : public ::testing::TestWithParam<std::string> {};

// save -> load -> save is byte-identical at ~100 distinct cursors.
TEST_P(StrategyStateRoundTrip, SaveLoadSaveIsByteIdenticalAtManyCursors) {
  const std::string& name = GetParam();
  const std::unique_ptr<sched::SelectionStrategy> source =
      testing::make_resume_strategy(name);
  for (std::size_t step = 0; step < 100; ++step) {
    advance_strategy(*source, 1, step);
    const std::vector<std::uint8_t> saved = strategy_bytes(*source);

    const std::unique_ptr<sched::SelectionStrategy> sink =
        testing::make_resume_strategy(name);
    util::ByteReader reader(saved);
    sink->load_state(reader);
    reader.expect_end("strategy frame");
    EXPECT_EQ(strategy_bytes(*sink), saved) << name << " at step " << step;
  }
}

// A restored strategy continues exactly like the original.
TEST_P(StrategyStateRoundTrip, RestoredStrategyContinuesIdentically) {
  const std::string& name = GetParam();
  const std::unique_ptr<sched::SelectionStrategy> original =
      testing::make_resume_strategy(name);
  advance_strategy(*original, 17);
  const std::vector<std::uint8_t> saved = strategy_bytes(*original);

  const std::unique_ptr<sched::SelectionStrategy> restored =
      testing::make_resume_strategy(name);
  util::ByteReader reader(saved);
  restored->load_state(reader);

  advance_strategy(*original, 10, 17);
  advance_strategy(*restored, 10, 17);
  EXPECT_EQ(strategy_bytes(*original), strategy_bytes(*restored));
}

// Satellite fix regression: reset() must be indistinguishable from loading
// the construction-time snapshot — one code path, no drift.
TEST_P(StrategyStateRoundTrip, ResetEqualsLoadingTheInitialSnapshot) {
  const std::string& name = GetParam();
  const std::unique_ptr<sched::SelectionStrategy> fresh =
      testing::make_resume_strategy(name);
  const std::vector<std::uint8_t> initial = strategy_bytes(*fresh);
  EXPECT_EQ(initial, std::vector<std::uint8_t>(fresh->initial_state().begin(),
                                               fresh->initial_state().end()));

  // Path 1: advance, then reset().
  const std::unique_ptr<sched::SelectionStrategy> via_reset =
      testing::make_resume_strategy(name);
  advance_strategy(*via_reset, 23);
  via_reset->reset();

  // Path 2: advance, then load_state(initial snapshot).
  const std::unique_ptr<sched::SelectionStrategy> via_load =
      testing::make_resume_strategy(name);
  advance_strategy(*via_load, 23);
  util::ByteReader reader(initial);
  via_load->load_state(reader);

  EXPECT_EQ(strategy_bytes(*via_reset), initial);
  EXPECT_EQ(strategy_bytes(*via_load), initial);

  // ... and both continue like a never-advanced strategy.
  advance_strategy(*via_reset, 5);
  advance_strategy(*via_load, 5);
  const std::unique_ptr<sched::SelectionStrategy> never_advanced =
      testing::make_resume_strategy(name);
  advance_strategy(*never_advanced, 5);
  EXPECT_EQ(strategy_bytes(*via_reset), strategy_bytes(*never_advanced));
  EXPECT_EQ(strategy_bytes(*via_load), strategy_bytes(*never_advanced));
}

// Loading a frame saved by a different strategy type fails loudly and
// leaves the target unchanged.
TEST_P(StrategyStateRoundTrip, CrossStrategyLoadIsRejected) {
  const std::string& name = GetParam();
  const std::string other = name == "HELCFL" ? "FedCS" : "HELCFL";
  const std::unique_ptr<sched::SelectionStrategy> target =
      testing::make_resume_strategy(name);
  const std::vector<std::uint8_t> before = strategy_bytes(*target);

  const std::unique_ptr<sched::SelectionStrategy> source =
      testing::make_resume_strategy(other);
  advance_strategy(*source, 3);
  util::ByteReader reader(strategy_bytes(*source));
  EXPECT_THROW(target->load_state(reader), util::SerialError);
  EXPECT_EQ(strategy_bytes(*target), before);
}

// --- utility-index frame adversarial cases (checkpoint v2) --------------
//
// The HELCFL strategy payload ends with the utility-index frame:
//   ... vec_size counters | bool initialized | vec_f64 t_cal | vec_f64 t_com
// These tests splice corrupt index frames into otherwise-valid strategy
// frames; every mutation must be rejected with the strategy untouched.

// Splits a strategy frame (str name + u64 payload length + payload) and
// re-frames a tampered payload.
std::vector<std::uint8_t> reframe_payload(const std::vector<std::uint8_t>& frame,
                                          const std::vector<std::uint8_t>& payload) {
  util::ByteReader reader(frame);
  const std::string name = reader.str();
  util::ByteWriter writer;
  writer.str(name);
  writer.u64(payload.size());
  writer.raw(payload);
  return writer.take();
}

std::vector<std::uint8_t> frame_payload(const std::vector<std::uint8_t>& frame) {
  util::ByteReader reader(frame);
  reader.str();
  const std::uint64_t length = reader.u64();
  const std::span<const std::uint8_t> payload = reader.raw(length);
  return {payload.begin(), payload.end()};
}

// Rejecting a corrupt frame must not leave a partial restore behind: the
// target still serializes to its pre-attempt bytes and keeps selecting.
void expect_index_frame_rejected(const std::vector<std::uint8_t>& frame,
                                 const std::string& message_piece) {
  const std::unique_ptr<sched::SelectionStrategy> target =
      testing::make_resume_strategy("HELCFL");
  advance_strategy(*target, 5);
  const std::vector<std::uint8_t> before = strategy_bytes(*target);
  util::ByteReader reader(frame);
  try {
    target->load_state(reader);
    FAIL() << "accepted a corrupt index frame (wanted error containing '"
           << message_piece << "')";
  } catch (const util::SerialError& error) {
    EXPECT_NE(std::string(error.what()).find(message_piece), std::string::npos)
        << "got: " << error.what();
  }
  EXPECT_EQ(strategy_bytes(*target), before);
  advance_strategy(*target, 1, 5);  // still functional after the rejection
}

class IndexFrameAdversarial : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::unique_ptr<sched::SelectionStrategy> source =
        testing::make_resume_strategy("HELCFL");
    advance_strategy(*source, 7);
    frame_ = strategy_bytes(*source);
    payload_ = frame_payload(frame_);
    // The index delay caches are two 12-user vec_f64s at the payload tail.
    ASSERT_GT(payload_.size(), 2 * kVecBytes);
  }

  static constexpr std::size_t kVecBytes = 8 + 12 * 8;  // u64 count + doubles

  std::vector<std::uint8_t> frame_;
  std::vector<std::uint8_t> payload_;
};

TEST_F(IndexFrameAdversarial, TruncatedDelayCacheIsRejected) {
  // Drop the final t_com double; the vec_f64 read overruns the payload.
  std::vector<std::uint8_t> payload = payload_;
  payload.resize(payload.size() - 8);
  expect_index_frame_rejected(reframe_payload(frame_, payload), "");
}

TEST_F(IndexFrameAdversarial, DelayCacheSizeMismatchIsRejected) {
  // Rewrite t_com as an 11-element vector against 12 counters.
  std::vector<std::uint8_t> payload(payload_.begin(),
                                    payload_.end() - static_cast<long>(kVecBytes));
  util::ByteWriter t_com;
  t_com.u64(11);
  payload.insert(payload.end(), t_com.data().begin(), t_com.data().end());
  payload.insert(payload.end(), payload_.end() - static_cast<long>(kVecBytes) + 8,
                 payload_.end() - 8);
  expect_index_frame_rejected(reframe_payload(frame_, payload), "delay");
}

TEST_F(IndexFrameAdversarial, NegativeCachedDelayIsRejected) {
  // Flip the sign bit of the last t_cal double (little-endian: high byte),
  // driving that user's cached total delay negative.
  std::vector<std::uint8_t> payload = payload_;
  payload[payload.size() - kVecBytes - 1] ^= 0x80;
  expect_index_frame_rejected(reframe_payload(frame_, payload), "delay");
}

TEST_F(IndexFrameAdversarial, UninitializedIndexFlagRoundTrips) {
  // A never-selected strategy saves initialized=false; that frame must
  // restore to a selector whose first select() builds the index afresh.
  const std::unique_ptr<sched::SelectionStrategy> fresh =
      testing::make_resume_strategy("HELCFL");
  const std::vector<std::uint8_t> initial = strategy_bytes(*fresh);
  const std::unique_ptr<sched::SelectionStrategy> restored =
      testing::make_resume_strategy("HELCFL");
  advance_strategy(*restored, 3);  // index initialized...
  util::ByteReader reader(initial);
  restored->load_state(reader);    // ...then wound back to the blank frame
  EXPECT_EQ(strategy_bytes(*restored), initial);
  advance_strategy(*restored, 4);
  const std::unique_ptr<sched::SelectionStrategy> never_restored =
      testing::make_resume_strategy("HELCFL");
  advance_strategy(*never_restored, 4);
  EXPECT_EQ(strategy_bytes(*restored), strategy_bytes(*never_restored));
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyStateRoundTrip,
                         ::testing::ValuesIn(testing::resume_strategies()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace helcfl::fl
