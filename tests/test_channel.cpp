#include "mec/channel.h"

#include <gtest/gtest.h>

#include <cmath>

namespace helcfl::mec {
namespace {

Device device_with_gain(double gain_sq) {
  Device d;
  d.tx_power_w = 0.2;
  d.channel_gain_sq = gain_sq;
  return d;
}

TEST(Channel, SnrFormula) {
  const Channel channel{2e6, 1e-9};
  const Device d = device_with_gain(1e-7);
  EXPECT_DOUBLE_EQ(channel.snr(d), 0.2 * 1e-7 / 1e-9);  // = 20
}

TEST(Channel, UploadRateIsShannon) {
  const Channel channel{2e6, 1e-9};
  const Device d = device_with_gain(1e-7);
  EXPECT_DOUBLE_EQ(channel.upload_rate_bps(d), 2e6 * std::log2(1.0 + 20.0));
}

TEST(Channel, RateGrowsWithBandwidth) {
  const Device d = device_with_gain(1e-7);
  const Channel narrow{1e6, 1e-9};
  const Channel wide{4e6, 1e-9};
  EXPECT_DOUBLE_EQ(wide.upload_rate_bps(d), 4.0 * narrow.upload_rate_bps(d));
}

TEST(Channel, RateGrowsWithGain) {
  const Channel channel{2e6, 1e-9};
  EXPECT_LT(channel.upload_rate_bps(device_with_gain(1e-8)),
            channel.upload_rate_bps(device_with_gain(1e-6)));
}

TEST(Channel, RateShrinksWithNoise) {
  const Device d = device_with_gain(1e-7);
  const Channel quiet{2e6, 1e-10};
  const Channel loud{2e6, 1e-8};
  EXPECT_GT(quiet.upload_rate_bps(d), loud.upload_rate_bps(d));
}

TEST(Channel, ZeroSnrLimitGivesZeroRate) {
  const Channel channel{2e6, 1e-9};
  Device d = device_with_gain(1e-30);  // vanishing gain
  EXPECT_NEAR(channel.upload_rate_bps(d), 0.0, 1.0);
}

TEST(Channel, PaperScaleRateIsMegabitPerSecond) {
  // With the DESIGN.md defaults the uplink lands in the Mb/s regime, which
  // puts the 4 Mb model upload at sub-second to a-few-seconds.
  const Channel channel{2e6, 1e-9};
  const double rate = channel.upload_rate_bps(device_with_gain(1e-7));
  EXPECT_GT(rate, 1e6);
  EXPECT_LT(rate, 1e8);
}

}  // namespace
}  // namespace helcfl::mec
