#include "mec/fading.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.h"

namespace helcfl::mec {
namespace {

TEST(Fading, DisabledIsUnity) {
  FadingProcess fading(5, {.enabled = false}, util::Rng(1));
  for (int round = 0; round < 10; ++round) {
    fading.step();
    for (std::size_t i = 0; i < 5; ++i) {
      EXPECT_DOUBLE_EQ(fading.multiplier(i), 1.0);
    }
  }
}

TEST(Fading, EnabledMultipliersArePositive) {
  FadingProcess fading(20, {.enabled = true, .rho = 0.9, .sigma_db = 4.0},
                       util::Rng(2));
  for (int round = 0; round < 50; ++round) {
    fading.step();
    for (std::size_t i = 0; i < 20; ++i) {
      EXPECT_GT(fading.multiplier(i), 0.0);
      EXPECT_TRUE(std::isfinite(fading.multiplier(i)));
    }
  }
}

TEST(Fading, MarginalSpreadMatchesSigma) {
  // Collect the dB states over many steps; their stddev should be close to
  // sigma_db (the process is stationary by construction).
  const double sigma = 3.0;
  FadingProcess fading(1, {.enabled = true, .rho = 0.8, .sigma_db = sigma},
                       util::Rng(3));
  std::vector<double> db;
  for (int round = 0; round < 20000; ++round) {
    fading.step();
    db.push_back(10.0 * std::log10(fading.multiplier(0)));
  }
  EXPECT_NEAR(util::stddev(db), sigma, 0.35);
  EXPECT_NEAR(util::mean(db), 0.0, 0.35);
}

TEST(Fading, HighRhoIsSmoother) {
  auto mean_abs_step = [](double rho) {
    FadingProcess fading(1, {.enabled = true, .rho = rho, .sigma_db = 4.0},
                         util::Rng(4));
    double prev = 10.0 * std::log10(fading.multiplier(0));
    double sum = 0.0;
    const int steps = 5000;
    for (int round = 0; round < steps; ++round) {
      fading.step();
      const double cur = 10.0 * std::log10(fading.multiplier(0));
      sum += std::abs(cur - prev);
      prev = cur;
    }
    return sum / steps;
  };
  EXPECT_LT(mean_abs_step(0.95), mean_abs_step(0.3));
}

TEST(Fading, DevicesAreIndependent) {
  FadingProcess fading(2, {.enabled = true, .rho = 0.5, .sigma_db = 4.0},
                       util::Rng(5));
  int identical = 0;
  for (int round = 0; round < 100; ++round) {
    fading.step();
    if (fading.multiplier(0) == fading.multiplier(1)) ++identical;
  }
  EXPECT_EQ(identical, 0);
}

TEST(Fading, DeterministicGivenSeed) {
  FadingProcess a(3, {.enabled = true, .rho = 0.9, .sigma_db = 4.0}, util::Rng(6));
  FadingProcess b(3, {.enabled = true, .rho = 0.9, .sigma_db = 4.0}, util::Rng(6));
  for (int round = 0; round < 20; ++round) {
    a.step();
    b.step();
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_DOUBLE_EQ(a.multiplier(i), b.multiplier(i));
    }
  }
}

TEST(Fading, RejectsBadParameters) {
  EXPECT_THROW(
      FadingProcess(1, {.enabled = true, .rho = 1.0, .sigma_db = 4.0}, util::Rng(7)),
      std::invalid_argument);
  EXPECT_THROW(
      FadingProcess(1, {.enabled = true, .rho = -0.1, .sigma_db = 4.0}, util::Rng(7)),
      std::invalid_argument);
  EXPECT_THROW(
      FadingProcess(1, {.enabled = true, .rho = 0.9, .sigma_db = -1.0}, util::Rng(7)),
      std::invalid_argument);
}

TEST(Fading, ZeroSigmaIsUnity) {
  FadingProcess fading(4, {.enabled = true, .rho = 0.9, .sigma_db = 0.0},
                       util::Rng(8));
  for (int round = 0; round < 5; ++round) {
    fading.step();
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_NEAR(fading.multiplier(i), 1.0, 1e-12);
    }
  }
}

}  // namespace
}  // namespace helcfl::mec
