// Robustness tests for the scheduler-service frame codec (svc/frame.h):
// round-trips, byte-at-a-time streaming, truncation, oversize, corruption,
// resynchronization past garbage, and a deterministic fuzz sweep.  The
// codec's contract is "never crash, never misparse a later healthy frame".
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "svc/frame.h"
#include "util/rng.h"

namespace svc = helcfl::svc;
using helcfl::util::Rng;

namespace {

svc::Frame make_report_frame(std::uint64_t device, std::uint64_t seq) {
  svc::DeviceReport report;
  report.device_id = device;
  report.report_seq = seq;
  report.t_cal_max_s = 0.25 + 0.001 * static_cast<double>(device);
  report.t_com_s = 0.125;
  return svc::encode(report);
}

/// Drains every decodable frame; rejections are tallied by the decoder.
std::vector<svc::Frame> drain(svc::FrameDecoder& decoder) {
  std::vector<svc::Frame> frames;
  svc::Frame frame;
  svc::FrameError error;
  for (;;) {
    const auto result = decoder.next(frame, error);
    if (result == svc::FrameDecoder::Result::kNeedMore) break;
    if (result == svc::FrameDecoder::Result::kFrame) {
      frames.push_back(frame);
    }
  }
  return frames;
}

}  // namespace

TEST(SvcFrame, MessageRoundTrips) {
  svc::DeviceReport report;
  report.device_id = 17;
  report.report_seq = 3;
  report.t_cal_max_s = 0.75;
  report.t_com_s = 0.0625;
  const svc::Frame rf = svc::encode(report);
  EXPECT_EQ(rf.type, svc::MsgType::kDeviceReport);
  const svc::DeviceReport r2 = svc::decode_device_report(rf.payload);
  EXPECT_EQ(r2.device_id, 17u);
  EXPECT_EQ(r2.report_seq, 3u);
  EXPECT_EQ(r2.t_cal_max_s, 0.75);
  EXPECT_EQ(r2.t_com_s, 0.0625);

  const svc::ReportAck a2 = svc::decode_report_ack(
      svc::encode(svc::ReportAck{17, 3}).payload);
  EXPECT_EQ(a2.device_id, 17u);
  EXPECT_EQ(a2.report_seq, 3u);

  svc::DecisionResponse response;
  response.controller_seq = 9;
  response.round = 8;
  response.degraded = true;
  response.selected = {4, 1, 7};
  response.frequencies_hz = {1e9, 2e9, 1.5e9};
  const svc::DecisionResponse d2 =
      svc::decode_decision_response(svc::encode(response).payload);
  EXPECT_EQ(d2.controller_seq, 9u);
  EXPECT_EQ(d2.round, 8u);
  EXPECT_TRUE(d2.degraded);
  EXPECT_EQ(d2.selected, response.selected);
  EXPECT_EQ(d2.frequencies_hz, response.frequencies_hz);
}

TEST(SvcFrame, MalformedPayloadsThrowSerialError) {
  // Truncated payload and trailing bytes both fail the strict decoders.
  const svc::Frame frame = make_report_frame(1, 1);
  std::vector<std::uint8_t> short_payload(frame.payload.begin(),
                                          frame.payload.end() - 1);
  EXPECT_THROW(svc::decode_device_report(short_payload),
               helcfl::util::SerialError);
  std::vector<std::uint8_t> long_payload = frame.payload;
  long_payload.push_back(0);
  EXPECT_THROW(svc::decode_device_report(long_payload),
               helcfl::util::SerialError);
  // A response whose selected/frequency lists disagree in length is
  // rejected even though both lists parse.
  svc::DecisionResponse response;
  response.controller_seq = 1;
  response.selected = {1, 2};
  response.frequencies_hz = {1e9};
  EXPECT_THROW(svc::decode_decision_response(svc::encode(response).payload),
               helcfl::util::SerialError);
}

TEST(SvcFrame, StreamingDecodeOneByteAtATime) {
  svc::FrameDecoder decoder;
  std::vector<std::uint8_t> wire;
  for (int i = 0; i < 3; ++i) {
    const auto bytes = svc::encode_frame(make_report_frame(i, i + 1));
    wire.insert(wire.end(), bytes.begin(), bytes.end());
  }
  std::vector<svc::Frame> frames;
  for (const std::uint8_t byte : wire) {
    decoder.feed({&byte, 1});
    const auto out = drain(decoder);
    frames.insert(frames.end(), out.begin(), out.end());
  }
  ASSERT_EQ(frames.size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) {
    const auto report = svc::decode_device_report(frames[i].payload);
    EXPECT_EQ(report.device_id, i);
    EXPECT_EQ(report.report_seq, i + 1);
  }
  EXPECT_EQ(decoder.stats().rejected, 0u);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(SvcFrame, ChecksumMismatchIsRejectedAndRecovered) {
  // Flip one payload byte of the first frame; the second must still parse.
  auto bad = svc::encode_frame(make_report_frame(1, 1));
  bad[svc::kFrameHeaderBytes] ^= 0x40;
  const auto good = svc::encode_frame(make_report_frame(2, 2));

  svc::FrameDecoder decoder;
  decoder.feed(bad);
  decoder.feed(good);
  const auto frames = drain(decoder);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(svc::decode_device_report(frames[0].payload).device_id, 2u);
  EXPECT_GE(decoder.stats().rejected, 1u);
}

TEST(SvcFrame, OversizedLengthIsRejectedBeforeBuffering) {
  // Hand-build a header declaring a payload far above kMaxPayloadBytes;
  // the decoder must reject from the header alone (no allocation, no wait).
  helcfl::util::ByteWriter w;
  w.u32(svc::kFrameMagic);
  w.u32(svc::kFrameVersion);
  w.u32(static_cast<std::uint32_t>(svc::MsgType::kDeviceReport));
  w.u64(std::uint64_t{1} << 60);
  w.u64(0);  // checksum, never reached
  svc::FrameDecoder decoder;
  decoder.feed(w.data());
  svc::Frame frame;
  svc::FrameError error;
  ASSERT_EQ(decoder.next(frame, error), svc::FrameDecoder::Result::kRejected);
  EXPECT_EQ(error, svc::FrameError::kOversized);
  // A healthy frame fed afterwards still decodes.
  decoder.feed(svc::encode_frame(make_report_frame(5, 1)));
  EXPECT_EQ(drain(decoder).size(), 1u);
}

TEST(SvcFrame, BadVersionAndBadTypeAreDistinctRejections) {
  helcfl::util::ByteWriter v;
  v.u32(svc::kFrameMagic);
  v.u32(svc::kFrameVersion + 7);
  v.u32(1);
  v.u64(0);
  v.u64(helcfl::util::fnv1a64({}));
  svc::FrameDecoder decoder;
  decoder.feed(v.data());
  svc::Frame frame;
  svc::FrameError error;
  ASSERT_EQ(decoder.next(frame, error), svc::FrameDecoder::Result::kRejected);
  EXPECT_EQ(error, svc::FrameError::kBadVersion);

  helcfl::util::ByteWriter t;
  t.u32(svc::kFrameMagic);
  t.u32(svc::kFrameVersion);
  t.u32(999);
  t.u64(0);
  t.u64(helcfl::util::fnv1a64({}));
  decoder.reset();
  decoder.feed(t.data());
  ASSERT_EQ(decoder.next(frame, error), svc::FrameDecoder::Result::kRejected);
  EXPECT_EQ(error, svc::FrameError::kBadType);
}

TEST(SvcFrame, ResynchronizesPastLeadingGarbage) {
  std::vector<std::uint8_t> wire(37, 0xAB);  // no magic anywhere
  const auto good = svc::encode_frame(make_report_frame(3, 4));
  wire.insert(wire.end(), good.begin(), good.end());
  svc::FrameDecoder decoder;
  decoder.feed(wire);
  const auto frames = drain(decoder);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(svc::decode_device_report(frames[0].payload).device_id, 3u);
  EXPECT_GE(decoder.stats().resync_bytes, 37u);
}

TEST(SvcFrame, DatagramModeRejectsTornTail) {
  const auto a = svc::encode_frame(make_report_frame(1, 1));
  const auto b = svc::encode_frame(make_report_frame(2, 1));
  std::vector<std::uint8_t> datagram = a;
  datagram.insert(datagram.end(), b.begin(), b.end() - 5);  // torn tail

  std::vector<svc::Frame> frames;
  std::vector<svc::FrameError> errors;
  svc::decode_datagram(datagram, frames, errors);
  ASSERT_EQ(frames.size(), 1u);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors.back(), svc::FrameError::kTruncated);
}

TEST(SvcFrame, ErrorNamesAreStable) {
  EXPECT_EQ(svc::frame_error_name(svc::FrameError::kBadMagic), "bad_magic");
  EXPECT_EQ(svc::frame_error_name(svc::FrameError::kChecksumMismatch),
            "checksum_mismatch");
  EXPECT_EQ(svc::frame_error_name(svc::FrameError::kTruncated), "truncated");
}

// Deterministic fuzz: random mutations of a healthy multi-frame stream must
// never crash the decoder or stall it (every next() call makes progress).
TEST(SvcFrame, FuzzedStreamsNeverCrashOrStall) {
  Rng rng(20260808);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> wire;
    const int n_frames = static_cast<int>(rng.uniform_int(1, 5));
    for (int i = 0; i < n_frames; ++i) {
      const auto bytes = svc::encode_frame(
          make_report_frame(static_cast<std::uint64_t>(i), trial + 1));
      wire.insert(wire.end(), bytes.begin(), bytes.end());
    }
    // Mutate: flip bytes, truncate, or splice garbage.
    const int mode = static_cast<int>(rng.uniform_int(0, 2));
    if (mode == 0) {
      const int flips = static_cast<int>(rng.uniform_int(1, 8));
      for (int f = 0; f < flips; ++f) {
        const auto at = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(wire.size()) - 1));
        wire[at] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
      }
    } else if (mode == 1) {
      wire.resize(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(wire.size()))));
    } else {
      const auto at = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(wire.size())));
      std::vector<std::uint8_t> junk(
          static_cast<std::size_t>(rng.uniform_int(1, 64)));
      for (auto& b : junk) {
        b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      }
      wire.insert(wire.begin() + static_cast<std::ptrdiff_t>(at),
                  junk.begin(), junk.end());
    }

    svc::FrameDecoder decoder;
    decoder.feed(wire);
    svc::Frame frame;
    svc::FrameError error;
    // Progress bound: a stalled decoder would loop forever; cap iterations
    // well above the theoretical maximum of one event per wire byte.
    std::size_t iterations = 0;
    const std::size_t limit = 2 * wire.size() + 16;
    for (;;) {
      const auto result = decoder.next(frame, error);
      if (result == svc::FrameDecoder::Result::kNeedMore) break;
      ASSERT_LT(++iterations, limit) << "decoder stalled on trial " << trial;
      if (result == svc::FrameDecoder::Result::kFrame) {
        // A checksum-valid frame must parse or reject cleanly — no crash.
        try {
          (void)svc::decode_device_report(frame.payload);
        } catch (const helcfl::util::SerialError&) {
        }
      }
    }
  }
}
