#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

namespace helcfl::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.5, 2.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.25);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(-2, 3));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(17);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, NormalMomentsAreStandard) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.shuffle(std::span<int>(shuffled));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(41);
  const auto sample = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (const auto v : sample) EXPECT_LT(v, 50u);
}

TEST(Rng, SampleFullRangeIsPermutation) {
  Rng rng(43);
  const auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleZero) {
  Rng rng(47);
  EXPECT_TRUE(rng.sample_without_replacement(5, 0).empty());
}

TEST(Rng, SampleIsUnbiased) {
  // Each of 10 items should appear in a size-5 sample about half the time.
  Rng rng(53);
  std::vector<int> counts(10, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (const auto i : rng.sample_without_replacement(10, 5)) ++counts[i];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.5, 0.02);
  }
}

TEST(Rng, PermutationContainsAll) {
  Rng rng(59);
  const auto perm = rng.permutation(100);
  EXPECT_EQ(perm.size(), 100u);
  std::set<std::size_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 100u);
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic) {
  Rng parent(61);
  Rng child1 = parent.fork(0);
  Rng child2 = parent.fork(1);
  Rng child1_again = Rng(61).fork(0);
  EXPECT_NE(child1.next_u64(), child2.next_u64());
  // Re-forking with the same id reproduces the stream.
  Rng c1 = Rng(61).fork(0);
  EXPECT_EQ(c1.next_u64(), child1_again.next_u64());
}

TEST(Rng, ForkDoesNotPerturbParent) {
  Rng a(67);
  Rng b(67);
  (void)a.fork(99);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

// --- checkpoint cursor capture (state()/set_state()) ---

TEST(RngState, RoundTripAtManyArbitraryCursors) {
  // Drive one generator through ~100 cursor positions, mixing raw draws,
  // distributions, and the Box-Muller cache; at each position the captured
  // state must restore a generator that continues identically.
  Rng rng(71);
  Rng stepper(72);  // decides how far to advance between captures
  for (int capture = 0; capture < 100; ++capture) {
    const auto steps = static_cast<int>(stepper.uniform_int(0, 17));
    for (int i = 0; i < steps; ++i) rng.next_u64();
    if (capture % 3 == 1) (void)rng.normal();  // sometimes leave a cached deviate
    if (capture % 5 == 2) (void)rng.uniform();

    const Rng::State state = rng.state();
    Rng restored(1);  // deliberately different seed; set_state overrides all
    restored.set_state(state);

    EXPECT_EQ(restored.state(), state) << "capture " << capture;
    // Continuations agree across every draw type, including the cached
    // normal (consumed first by whichever generator calls normal()).
    EXPECT_EQ(rng.normal(), restored.normal()) << "capture " << capture;
    EXPECT_EQ(rng.next_u64(), restored.next_u64()) << "capture " << capture;
    EXPECT_EQ(rng.uniform(), restored.uniform()) << "capture " << capture;
    // Forked children derive from the restored seed, so they agree too.
    EXPECT_EQ(rng.fork(capture).next_u64(), restored.fork(capture).next_u64())
        << "capture " << capture;
  }
}

TEST(RngState, StateSetStateStateIsIdentity) {
  Rng rng(73);
  for (int i = 0; i < 100; ++i) {
    rng.next_u64();
    const Rng::State state = rng.state();
    Rng copy(999);
    copy.set_state(state);
    EXPECT_EQ(copy.state(), state);
  }
}

TEST(RngState, AllZeroWordsAreRejected) {
  Rng rng(79);
  Rng::State state = rng.state();
  state.words = {0, 0, 0, 0};  // outside xoshiro256**'s state space
  EXPECT_THROW(rng.set_state(state), std::invalid_argument);
  // The failed set_state left the generator usable.
  Rng twin(79);
  EXPECT_EQ(rng.next_u64(), twin.next_u64());
}

}  // namespace
}  // namespace helcfl::util
