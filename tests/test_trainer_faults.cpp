// Integration tests of failure-aware round execution (DESIGN.md §8):
// bitwise no-op when faults are off, thread-count invariance with faults
// on, quorum aggregation, retry/cutoff policies, completion feedback to
// the schedulers, option validation, and aggregate task-error reporting.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/helcfl_scheduler.h"
#include "fl/trainer.h"
#include "fl_fixtures.h"
#include "nn/models.h"
#include "nn/serialize.h"
#include "sched/random_selection.h"

namespace helcfl::fl {
namespace {

class TrainerFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    split_ = testing::tiny_split(300, 80, 80);
    util::Rng prng(81);
    partition_ = data::iid_partition(split_.train.size(), kUsers, prng);
    devices_ = testing::linear_fleet(kUsers, partition_[0].size());
    for (std::size_t i = 0; i < kUsers; ++i) {
      devices_[i].num_samples = partition_[i].size();
    }
    util::Rng model_rng(82);
    model_ = nn::make_mlp(split_.train.spec(), 12, 10, model_rng);
    init_ = nn::extract_parameters(*model_);
  }

  TrainerOptions base_options() {
    TrainerOptions options;
    options.max_rounds = 12;
    options.eval_every = 6;
    options.client.learning_rate = 0.1F;
    options.client.batch_size = 16;  // exercises the per-client RNG streams
    return options;
  }

  struct RunResult {
    TrainingHistory history;
    std::vector<float> final_weights;
  };

  RunResult run(sched::SelectionStrategy& strategy, const TrainerOptions& options) {
    nn::load_parameters(*model_, init_);
    FederatedTrainer trainer(*model_, split_.train, split_.test, partition_, devices_,
                             testing::paper_channel(), strategy, options);
    RunResult result;
    result.history = trainer.run();
    result.final_weights = nn::extract_parameters(*model_);
    return result;
  }

  static void expect_identical(const RunResult& a, const RunResult& b) {
    EXPECT_EQ(a.final_weights, b.final_weights);
    ASSERT_EQ(a.history.size(), b.history.size());
    for (std::size_t i = 0; i < a.history.size(); ++i) {
      const RoundRecord& ra = a.history.rounds()[i];
      const RoundRecord& rb = b.history.rounds()[i];
      EXPECT_EQ(ra.selected, rb.selected) << "round " << i;
      EXPECT_EQ(ra.aggregated, rb.aggregated) << "round " << i;
      EXPECT_EQ(ra.round_delay_s, rb.round_delay_s) << "round " << i;
      EXPECT_EQ(ra.round_energy_j, rb.round_energy_j) << "round " << i;
      EXPECT_EQ(ra.train_loss, rb.train_loss) << "round " << i;
      EXPECT_EQ(ra.test_loss, rb.test_loss) << "round " << i;
      EXPECT_EQ(ra.test_accuracy, rb.test_accuracy) << "round " << i;
      EXPECT_EQ(ra.crashed, rb.crashed) << "round " << i;
      EXPECT_EQ(ra.upload_failures, rb.upload_failures) << "round " << i;
      EXPECT_EQ(ra.dropped_late, rb.dropped_late) << "round " << i;
      EXPECT_EQ(ra.retries, rb.retries) << "round " << i;
      EXPECT_EQ(ra.quorum_failed, rb.quorum_failed) << "round " << i;
      EXPECT_EQ(ra.wasted_energy_j, rb.wasted_energy_j) << "round " << i;
    }
  }

  static constexpr std::size_t kUsers = 10;
  data::TrainTestSplit split_;
  data::Partition partition_;
  std::vector<mec::Device> devices_;
  std::unique_ptr<nn::Sequential> model_;
  std::vector<float> init_;
};

// --- zero-fault equivalence ------------------------------------------------

TEST_F(TrainerFaultTest, EnabledInjectorWithZeroRatesIsBitwiseNoOp) {
  // The whole fault machinery active but with nothing to inject must leave
  // the trace and final weights bitwise identical to a run with the
  // subsystem disabled (the pre-PR behaviour).
  util::Rng rng1(90);
  sched::RandomSelection s1(0.4, rng1);
  const RunResult plain = run(s1, base_options());

  TrainerOptions armed = base_options();
  armed.faults.enabled = true;  // all rates at their 0.0 defaults
  armed.min_clients = 1;
  armed.max_upload_retries = 3;  // unused without failures
  armed.retry_backoff_s = 2.0;
  util::Rng rng2(90);
  sched::RandomSelection s2(0.4, rng2);
  const RunResult zero_rates = run(s2, armed);

  expect_identical(plain, zero_rates);
  EXPECT_EQ(zero_rates.history.total_crashes(), 0u);
  EXPECT_EQ(zero_rates.history.total_retries(), 0u);
  EXPECT_EQ(zero_rates.history.failed_round_count(), 0u);
  EXPECT_EQ(zero_rates.history.total_wasted_energy_j(), 0.0);
}

TEST_F(TrainerFaultTest, FaultsAreThreadCountInvariant) {
  // Injected faults are drawn per (round, user) on the coordinator, so the
  // bitwise thread-count determinism of DESIGN.md §7 must survive them.
  TrainerOptions options = base_options();
  options.faults.enabled = true;
  options.faults.crash_rate = 0.2;
  options.faults.straggler_rate = 0.3;
  options.faults.upload_failure_rate = 0.2;
  options.max_upload_retries = 2;
  options.retry_backoff_s = 0.5;
  options.min_clients = 1;

  options.num_threads = 1;
  util::Rng rng1(91);
  sched::RandomSelection s1(0.5, rng1);
  const RunResult sequential = run(s1, options);

  options.num_threads = 8;
  util::Rng rng8(91);
  sched::RandomSelection s8(0.5, rng8);
  const RunResult parallel = run(s8, options);

  expect_identical(sequential, parallel);
  // The fault config above must actually bite for this test to mean much.
  EXPECT_GT(sequential.history.total_crashes(), 0u);
}

// --- quorum aggregation ----------------------------------------------------

TEST_F(TrainerFaultTest, QuorumFailedRoundLeavesGlobalModelUnchanged) {
  // Every client crashes every round: no round can meet even a quorum of 1,
  // the global model must never move, and HELCFL's α_q counters must show
  // no appearances because every increment was revoked.
  TrainerOptions options = base_options();
  options.max_rounds = 5;
  options.faults.enabled = true;
  options.faults.crash_rate = 1.0;
  options.min_clients = 1;

  core::HelcflScheduler scheduler({.fraction = 0.3, .eta = 0.9, .enable_dvfs = true});
  const RunResult result = run(scheduler, options);

  EXPECT_EQ(result.final_weights, init_);
  EXPECT_EQ(result.history.size(), 5u);
  EXPECT_EQ(result.history.failed_round_count(), 5u);
  for (const auto& r : result.history.rounds()) {
    EXPECT_TRUE(r.quorum_failed);
    EXPECT_EQ(r.survivors, 0u);
    EXPECT_TRUE(r.aggregated.empty());
    EXPECT_GT(r.crashed, 0u);
    // The whole round's energy was wasted: burned cycles, no progress.
    EXPECT_EQ(r.wasted_energy_j, r.round_energy_j);
    EXPECT_GT(r.wasted_energy_j, 0.0);
  }
  // Crashed clients contributed no data, so their appearance counters were
  // revoked: the selector must look as if nobody ever participated.
  for (const std::size_t count : scheduler.selector().appearance_counts()) {
    EXPECT_EQ(count, 0u);
  }
}

TEST_F(TrainerFaultTest, StrictQuorumFailsRoundsAPartialOneSurvives) {
  TrainerOptions options = base_options();
  options.max_rounds = 8;
  options.faults.enabled = true;
  options.faults.crash_rate = 0.5;

  // Cohort of 5 with half crashing: min_clients = 1 accepts most rounds...
  options.min_clients = 1;
  util::Rng rng1(93);
  sched::RandomSelection s1(0.5, rng1);
  const RunResult lenient = run(s1, options);

  // ...while min_clients = 5 (the full cohort) fails any round with a crash.
  options.min_clients = 5;
  util::Rng rng2(93);
  sched::RandomSelection s2(0.5, rng2);
  const RunResult strict = run(s2, options);

  EXPECT_LT(lenient.history.failed_round_count(),
            strict.history.failed_round_count());
  EXPECT_GT(strict.history.failed_round_count(), 0u);
}

TEST_F(TrainerFaultTest, AggregationCountsNeverExceedSelectionCounts) {
  TrainerOptions options = base_options();
  options.faults.enabled = true;
  options.faults.crash_rate = 0.3;
  options.faults.upload_failure_rate = 0.2;
  options.min_clients = 1;
  util::Rng rng(94);
  sched::RandomSelection strategy(0.5, rng);
  const RunResult result = run(strategy, options);

  const auto selected = result.history.selection_counts(kUsers);
  const auto aggregated = result.history.aggregation_counts(kUsers);
  std::size_t total_selected = 0;
  std::size_t total_aggregated = 0;
  for (std::size_t i = 0; i < kUsers; ++i) {
    EXPECT_LE(aggregated[i], selected[i]) << "user " << i;
    total_selected += selected[i];
    total_aggregated += aggregated[i];
  }
  EXPECT_LT(total_aggregated, total_selected);  // the faults really dropped some
  EXPECT_GT(total_aggregated, 0u);              // but training still progressed
}

// --- retries ---------------------------------------------------------------

TEST_F(TrainerFaultTest, RetriesRecoverUploadsAtADelayCost) {
  TrainerOptions options = base_options();
  options.faults.enabled = true;
  options.faults.upload_failure_rate = 0.5;
  options.min_clients = 1;

  options.max_upload_retries = 0;
  util::Rng rng1(95);
  sched::RandomSelection s1(0.5, rng1);
  const RunResult no_retries = run(s1, options);

  options.max_upload_retries = 3;
  options.retry_backoff_s = 1.0;
  util::Rng rng2(95);
  sched::RandomSelection s2(0.5, rng2);
  const RunResult with_retries = run(s2, options);

  EXPECT_EQ(no_retries.history.total_retries(), 0u);
  EXPECT_GT(with_retries.history.total_retries(), 0u);

  // Retries rescue updates that a single attempt would lose...
  std::size_t lost_without = no_retries.history.total_upload_failures();
  std::size_t lost_with = with_retries.history.total_upload_failures();
  EXPECT_LT(lost_with, lost_without);

  // ...and each extra attempt re-occupies the TDMA uplink, so the recovered
  // updates are paid for in wall-clock delay and transmission energy.
  EXPECT_GT(with_retries.history.total_delay_s(), no_retries.history.total_delay_s());
  EXPECT_GT(with_retries.history.total_energy_j(),
            no_retries.history.total_energy_j());
}

// --- straggler cutoff ------------------------------------------------------

TEST_F(TrainerFaultTest, StragglerCutoffDropsLateUpdatesAndCapsRoundDelay) {
  // The cutoff policy stands alone: no injector needed, the TDMA tail is
  // simply discarded.  Derive a cutoff from a reference run so the test does
  // not hard-code timing constants.
  util::Rng rng1(96);
  sched::RandomSelection s1(0.8, rng1);
  const RunResult reference = run(s1, base_options());
  const double full_round_delay = reference.history.rounds()[0].round_delay_s;
  ASSERT_GT(full_round_delay, 0.0);

  TrainerOptions options = base_options();
  options.straggler_cutoff_s = 0.6 * full_round_delay;
  options.min_clients = 1;
  util::Rng rng2(96);
  sched::RandomSelection s2(0.8, rng2);
  const RunResult cut = run(s2, options);

  EXPECT_GT(cut.history.total_dropped_late(), 0u);
  EXPECT_GT(cut.history.total_wasted_energy_j(), 0.0);
  for (const auto& r : cut.history.rounds()) {
    EXPECT_LE(r.round_delay_s, options.straggler_cutoff_s);
    EXPECT_EQ(r.dropped_late + r.survivors,
              r.selected.size());  // nobody unaccounted for
  }
  EXPECT_LT(cut.history.total_delay_s(), reference.history.total_delay_s());
}

// --- churn -----------------------------------------------------------------

TEST_F(TrainerFaultTest, ChurnShrinksTheSelectableFleetTransiently) {
  TrainerOptions options = base_options();
  options.max_rounds = 30;
  options.faults.enabled = true;
  options.faults.leave_rate = 0.05;
  options.faults.rejoin_rate = 0.5;
  util::Rng rng(97);
  sched::RandomSelection strategy(0.3, rng);
  const RunResult result = run(strategy, options);

  EXPECT_EQ(result.history.size(), 30u);  // churn never terminates training
  bool saw_reduced = false;
  bool saw_full = false;
  for (const auto& r : result.history.rounds()) {
    EXPECT_LE(r.available_users, kUsers);
    if (r.available_users < kUsers) saw_reduced = true;
    if (r.available_users == kUsers) saw_full = true;
  }
  EXPECT_TRUE(saw_reduced);
  EXPECT_TRUE(saw_full);  // rejoin really brings devices back
}

// --- option validation -----------------------------------------------------

TEST_F(TrainerFaultTest, InvalidOptionsAreRejectedAtConstruction) {
  util::Rng rng(98);
  sched::RandomSelection strategy(0.4, rng);
  const auto expect_rejected = [&](TrainerOptions options) {
    EXPECT_THROW(FederatedTrainer(*model_, split_.train, split_.test, partition_,
                                  devices_, testing::paper_channel(), strategy,
                                  options),
                 std::invalid_argument);
  };

  TrainerOptions options = base_options();
  options.eval_every = 0;
  expect_rejected(options);

  options = base_options();
  options.eval_batch = 0;
  expect_rejected(options);

  options = base_options();
  options.deadline_s = -1.0;
  expect_rejected(options);

  options = base_options();
  options.model_size_bits = 0.0;
  expect_rejected(options);

  options = base_options();
  options.min_clients = 0;
  expect_rejected(options);

  options = base_options();
  options.min_clients = kUsers + 1;
  expect_rejected(options);

  options = base_options();
  options.retry_backoff_s = -0.5;
  expect_rejected(options);

  options = base_options();
  options.straggler_cutoff_s = 0.0;
  expect_rejected(options);

  options = base_options();
  options.faults.crash_rate = 1.5;
  expect_rejected(options);

  options = base_options();
  options.faults.leave_rate = 0.2;
  options.faults.rejoin_rate = 0.0;
  expect_rejected(options);
}

// --- aggregate task-error reporting ---------------------------------------

TEST_F(TrainerFaultTest, ParallelTaskErrorsAreAggregatedAcrossClients) {
  // quantization_bits = 0 makes every client's upload compression throw
  // inside its worker task; the trainer must join all tasks and report one
  // error naming every failed client, not just the first.
  TrainerOptions options = base_options();
  options.num_threads = 4;
  options.compression = {.kind = nn::CompressionKind::kQuantization,
                         .quantization_bits = 0};
  util::Rng rng(99);
  sched::RandomSelection strategy(1.0, rng);  // the whole fleet, every round
  nn::load_parameters(*model_, init_);
  FederatedTrainer trainer(*model_, split_.train, split_.test, partition_, devices_,
                           testing::paper_channel(), strategy, options);
  try {
    trainer.run();
    FAIL() << "expected the client tasks to fail";
  } catch (const std::runtime_error& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("10 client task(s) failed"), std::string::npos) << message;
    for (std::size_t user = 0; user < kUsers; ++user) {
      EXPECT_NE(message.find("user " + std::to_string(user) + ")"),
                std::string::npos)
          << "missing user " << user << " in: " << message;
    }
  }
}

}  // namespace
}  // namespace helcfl::fl
