#include "mec/tdma.h"

#include <gtest/gtest.h>

#include <vector>

namespace helcfl::mec {
namespace {

TEST(Tdma, EmptyInput) {
  const TdmaSchedule s = schedule_uploads({}, {});
  EXPECT_TRUE(s.slots.empty());
  EXPECT_DOUBLE_EQ(s.round_delay_s, 0.0);
  EXPECT_DOUBLE_EQ(s.total_slack_s, 0.0);
}

TEST(Tdma, SingleUserHasNoSlack) {
  const std::vector<double> compute = {2.0};
  const std::vector<double> upload = {1.0};
  const TdmaSchedule s = schedule_uploads(compute, upload);
  ASSERT_EQ(s.slots.size(), 1u);
  EXPECT_DOUBLE_EQ(s.slots[0].upload_start, 2.0);
  EXPECT_DOUBLE_EQ(s.slots[0].upload_end, 3.0);
  EXPECT_DOUBLE_EQ(s.slots[0].slack_s, 0.0);
  EXPECT_DOUBLE_EQ(s.round_delay_s, 3.0);
}

TEST(Tdma, SecondUserWaitsForLink) {
  // Fig. 1: user 2 finishes computing during user 1's upload and must wait.
  const std::vector<double> compute = {1.0, 1.5};
  const std::vector<double> upload = {2.0, 1.0};
  const TdmaSchedule s = schedule_uploads(compute, upload);
  ASSERT_EQ(s.slots.size(), 2u);
  EXPECT_EQ(s.slots[0].index, 0u);
  EXPECT_DOUBLE_EQ(s.slots[0].upload_start, 1.0);
  EXPECT_DOUBLE_EQ(s.slots[0].upload_end, 3.0);
  EXPECT_EQ(s.slots[1].index, 1u);
  EXPECT_DOUBLE_EQ(s.slots[1].upload_start, 3.0);   // waits for the link
  EXPECT_DOUBLE_EQ(s.slots[1].slack_s, 1.5);        // 3.0 - 1.5
  EXPECT_DOUBLE_EQ(s.round_delay_s, 4.0);
  EXPECT_DOUBLE_EQ(s.total_slack_s, 1.5);
}

TEST(Tdma, NoWaitWhenComputeDominates) {
  const std::vector<double> compute = {1.0, 10.0};
  const std::vector<double> upload = {2.0, 1.0};
  const TdmaSchedule s = schedule_uploads(compute, upload);
  EXPECT_DOUBLE_EQ(s.slots[1].upload_start, 10.0);  // link already free
  EXPECT_DOUBLE_EQ(s.slots[1].slack_s, 0.0);
  EXPECT_DOUBLE_EQ(s.round_delay_s, 11.0);
}

TEST(Tdma, GrantOrderFollowsComputeCompletion) {
  const std::vector<double> compute = {3.0, 1.0, 2.0};
  const std::vector<double> upload = {0.5, 0.5, 0.5};
  const TdmaSchedule s = schedule_uploads(compute, upload);
  EXPECT_EQ(s.slots[0].index, 1u);
  EXPECT_EQ(s.slots[1].index, 2u);
  EXPECT_EQ(s.slots[2].index, 0u);
}

TEST(Tdma, TiesBrokenByIndex) {
  const std::vector<double> compute = {1.0, 1.0, 1.0};
  const std::vector<double> upload = {0.5, 0.5, 0.5};
  const TdmaSchedule s = schedule_uploads(compute, upload);
  EXPECT_EQ(s.slots[0].index, 0u);
  EXPECT_EQ(s.slots[1].index, 1u);
  EXPECT_EQ(s.slots[2].index, 2u);
}

TEST(Tdma, UploadsNeverOverlap) {
  const std::vector<double> compute = {0.1, 0.2, 0.3, 0.4, 0.5};
  const std::vector<double> upload = {1.0, 1.0, 1.0, 1.0, 1.0};
  const TdmaSchedule s = schedule_uploads(compute, upload);
  for (std::size_t i = 1; i < s.slots.size(); ++i) {
    EXPECT_GE(s.slots[i].upload_start, s.slots[i - 1].upload_end - 1e-12);
  }
}

TEST(Tdma, RoundDelayIsLastUploadEnd) {
  const std::vector<double> compute = {0.1, 0.2, 0.3};
  const std::vector<double> upload = {1.0, 1.0, 1.0};
  const TdmaSchedule s = schedule_uploads(compute, upload);
  EXPECT_DOUBLE_EQ(s.round_delay_s, s.slots.back().upload_end);
  EXPECT_DOUBLE_EQ(s.round_delay_s, 0.1 + 3.0);  // back-to-back uploads
}

TEST(Tdma, ZeroUploadDuration) {
  const std::vector<double> compute = {1.0, 2.0};
  const std::vector<double> upload = {0.0, 0.0};
  const TdmaSchedule s = schedule_uploads(compute, upload);
  EXPECT_DOUBLE_EQ(s.round_delay_s, 2.0);
  EXPECT_DOUBLE_EQ(s.total_slack_s, 0.0);
}

TEST(Tdma, RejectsMismatchedSpans) {
  const std::vector<double> compute = {1.0};
  const std::vector<double> upload = {1.0, 2.0};
  EXPECT_THROW(schedule_uploads(compute, upload), std::invalid_argument);
}

TEST(Tdma, RejectsNegativeDelays) {
  const std::vector<double> compute = {-1.0};
  const std::vector<double> upload = {1.0};
  EXPECT_THROW(schedule_uploads(compute, upload), std::invalid_argument);
  const std::vector<double> compute2 = {1.0};
  const std::vector<double> upload2 = {-1.0};
  EXPECT_THROW(schedule_uploads(compute2, upload2), std::invalid_argument);
}

TEST(Tdma, TotalSlackSumsPerUserSlack) {
  const std::vector<double> compute = {1.0, 1.1, 1.2};
  const std::vector<double> upload = {2.0, 2.0, 2.0};
  const TdmaSchedule s = schedule_uploads(compute, upload);
  double expected = 0.0;
  for (const auto& slot : s.slots) expected += slot.slack_s;
  EXPECT_DOUBLE_EQ(s.total_slack_s, expected);
  EXPECT_GT(s.total_slack_s, 0.0);
}

}  // namespace
}  // namespace helcfl::mec
