// Loopback-TCP differential proof (ISSUE 8).
//
// The PR 7 differential proved that wire faults are invisible in the
// decision stream when the wire is an in-process datagram link.  This test
// carries that obligation onto the real transport: the same workload
// (tests/svc_workload.h) is driven through a SocketServer over loopback
// TCP with
//
//   * 10% client-side wire faults (drop / corrupt / duplicate / delay,
//     injected before the bytes reach the socket),
//   * 10% server-side egress chaos (drop / corrupt / duplicate), and
//   * reconnect churn — the client tears its connection down every few
//     pump iterations and whenever the stream stalls (a corrupted length
//     field can wedge a streaming decoder; reconnecting resets both ends'
//     decoders, which is the documented recovery path),
//
// and the resulting decision stream must be pick-for-pick identical to
// the clean in-process reference.  Retries, dedup, exactly-once request
// processing, and the report barrier absorb everything the wire does.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "svc/listener.h"
#include "svc/transport.h"
#include "svc_workload.h"

namespace svc = helcfl::svc;
using namespace helcfl;
using namespace helcfl::svc_test;

namespace {

/// Client half of the TCP exchange: ServiceClient owns the protocol
/// (retries, dedup, barrier), this owns the socket, the client-side fault
/// injection, and the reconnect churn.
class TcpExchange {
 public:
  TcpExchange(const svc::Endpoint& endpoint, svc::ServiceClient& client,
              svc::WireFaultInjector injector)
      : endpoint_(endpoint),
        client_(client),
        injector_(std::move(injector)) {}

  std::uint64_t tick = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t frames_corrupted = 0;
  std::uint64_t frames_duplicated = 0;

  /// One pump: transmit due frames (faulted), release delayed copies,
  /// collect inbound frames, churn the connection on schedule.
  void pump() {
    // Unconditional churn: every kChurnEvery pumps the connection is torn
    // down, so reconnect handling is exercised even on a lucky fault draw
    // — and a decoder wedged by a corrupted length field is freed.
    if (channel_.has_value() && tick % kChurnEvery == kChurnEvery - 1) {
      channel_->close();
      channel_.reset();
    }
    if (!channel_.has_value()) {
      channel_.emplace(endpoint_);
      ++reconnects;
    }

    for (const auto& frame : client_.poll(tick)) {
      plan_and_send(frame);
    }
    while (!delayed_.empty() && delayed_.front().due_tick <= tick) {
      send_now(delayed_.front().bytes);
      delayed_.pop_front();
    }

    std::vector<svc::Frame> inbox;
    channel_->poll_frames(inbox, /*timeout_ms=*/1);
    for (const svc::Frame& frame : inbox) {
      client_.deliver(svc::encode_frame(frame));
    }
    if (!channel_->connected()) channel_.reset();  // server closed us
    ++tick;
  }

  Pick run_round(const std::vector<sched::UserInfo>& users,
                 std::uint64_t round) {
    for (std::size_t d = 0; d < users.size(); ++d) {
      client_.send_report(report_at(users, d, round), tick);
    }
    const std::uint64_t report_deadline = tick + 10'000;
    while (client_.pending_reports() > 0) {
      pump();
      EXPECT_LT(tick, report_deadline) << "report barrier stalled";
      if (tick >= report_deadline) return {};
    }
    client_.request_decision(round, tick);
    const std::uint64_t decide_deadline = tick + 10'000;
    std::optional<svc::DecisionResponse> response;
    while (!(response = client_.take_decision()).has_value()) {
      pump();
      EXPECT_LT(tick, decide_deadline) << "decision stalled";
      if (tick >= decide_deadline) return {};
    }
    Pick pick;
    pick.round = response->round;
    pick.selected = response->selected;
    pick.frequencies_hz = response->frequencies_hz;
    pick.degraded = response->degraded;
    return pick;
  }

 private:
  static constexpr std::uint64_t kChurnEvery = 23;

  struct Delayed {
    std::uint64_t due_tick = 0;
    std::vector<std::uint8_t> bytes;
  };

  void plan_and_send(const std::vector<std::uint8_t>& frame) {
    const svc::WireFaultInjector::Plan plan = injector_.plan_frame();
    if (plan.dropped) {
      ++frames_dropped;
      return;
    }
    if (plan.copies > 1) ++frames_duplicated;
    for (std::size_t c = 0; c < plan.copies; ++c) {
      const auto& delivery = plan.delivery[c];
      std::vector<std::uint8_t> bytes = frame;
      if (delivery.corrupted && !bytes.empty()) {
        bytes[delivery.corrupt_index % bytes.size()] ^= delivery.corrupt_mask;
        ++frames_corrupted;
      }
      if (delivery.delay_ticks > 0) {
        delayed_.push_back(Delayed{tick + delivery.delay_ticks, std::move(bytes)});
      } else {
        send_now(bytes);
      }
    }
  }

  void send_now(const std::vector<std::uint8_t>& bytes) {
    if (!channel_.has_value()) return;  // lost with the connection; retry wins
    if (!channel_->send_frame(bytes)) channel_.reset();
  }

  svc::Endpoint endpoint_;
  svc::ServiceClient& client_;
  svc::WireFaultInjector injector_;
  std::optional<svc::ClientChannel> channel_;
  std::deque<Delayed> delayed_;
};

svc::WireFaultInjector make_injector(double rate, std::uint64_t stream) {
  svc::WireFaultOptions faults;
  faults.drop_rate = rate;
  faults.corrupt_rate = rate;
  faults.duplicate_rate = rate;
  faults.delay_rate = rate > 0.0 ? 0.25 : 0.0;
  faults.max_delay_ticks = 6;
  return svc::WireFaultInjector(faults, util::Rng(kSeed).fork(stream));
}

struct TcpRun {
  std::vector<Pick> picks;
  svc::ServerStats server_stats;
  std::uint64_t reconnects = 0;
  std::uint64_t client_faults = 0;
  std::uint64_t client_retries = 0;
};

TcpRun run_tcp_workload(double fault_rate, std::uint64_t rounds,
                        std::size_t ingress_threads) {
  const auto users = make_users();
  svc::SchedulerService service(users, service_options());
  svc::ServerOptions server_options;
  server_options.ingress_threads = ingress_threads;
  if (fault_rate > 0.0) {
    // Server-side egress chaos: responses are dropped/corrupted/duplicated
    // before they reach the wire (delay is meaningless on a stream).
    server_options.egress_chaos.drop_rate = fault_rate;
    server_options.egress_chaos.corrupt_rate = fault_rate;
    server_options.egress_chaos.duplicate_rate = fault_rate;
    server_options.egress_chaos_seed = kSeed + 9;
  }
  svc::SocketServer server(service, svc::Endpoint::parse("tcp:127.0.0.1:0"),
                           server_options);
  server.start();

  svc::ServiceClient client(retry_options(), util::Rng(kSeed).fork(100));
  TcpExchange exchange(server.endpoint(), client,
                       make_injector(fault_rate, 31));

  TcpRun run;
  for (std::uint64_t round = 0; round < rounds; ++round) {
    run.picks.push_back(exchange.run_round(users, round));
  }
  EXPECT_EQ(client.exhausted(), 0u);
  server.stop();
  EXPECT_EQ(service.stats().decisions, rounds);
  run.server_stats = server.stats();
  run.reconnects = exchange.reconnects;
  run.client_faults = exchange.frames_dropped + exchange.frames_corrupted +
                      exchange.frames_duplicated;
  run.client_retries = client.retries();
  return run;
}

}  // namespace

TEST(SvcTcpDifferential, FaultyTcpYieldsIdenticalDecisions) {
  constexpr std::uint64_t kRounds = 8;
  // Reference: the clean in-process datagram path from PR 7.
  const std::vector<Pick> reference = run_workload(0.0, kRounds);

  const TcpRun tcp = run_tcp_workload(0.10, kRounds, /*ingress_threads=*/2);
  ASSERT_EQ(tcp.picks.size(), reference.size());
  for (std::size_t r = 0; r < reference.size(); ++r) {
    EXPECT_EQ(tcp.picks[r].round, reference[r].round);
    EXPECT_EQ(tcp.picks[r].selected, reference[r].selected)
        << "picks diverged at round " << r << " over faulty TCP";
    EXPECT_EQ(tcp.picks[r].frequencies_hz, reference[r].frequencies_hz)
        << "frequencies diverged at round " << r;
  }

  // Guard against a vacuous proof: faults and churn must actually have
  // happened on both sides of the wire.
  EXPECT_GT(tcp.client_faults, 0u);
  EXPECT_GT(tcp.client_retries, 0u);
  EXPECT_GT(tcp.reconnects, 1u) << "churn never reconnected";
  EXPECT_GT(tcp.server_stats.chaos_dropped + tcp.server_stats.chaos_corrupted +
                tcp.server_stats.chaos_duplicated,
            0u)
      << "egress chaos never fired";
  EXPECT_GE(tcp.server_stats.conns_accepted, tcp.reconnects);
}

TEST(SvcTcpDifferential, CleanTcpMatchesCleanDatagrams) {
  // The transport alone (no faults, single reader) must also be invisible.
  constexpr std::uint64_t kRounds = 4;
  const std::vector<Pick> reference = run_workload(0.0, kRounds);
  const TcpRun tcp = run_tcp_workload(0.0, kRounds, /*ingress_threads=*/1);
  ASSERT_EQ(tcp.picks.size(), reference.size());
  for (std::size_t r = 0; r < reference.size(); ++r) {
    EXPECT_EQ(tcp.picks[r].selected, reference[r].selected);
    EXPECT_EQ(tcp.picks[r].frequencies_hz, reference[r].frequencies_hz);
  }
}
