#include "sim/simulation.h"

#include <gtest/gtest.h>

#include "fl_fixtures.h"
#include "sched/fedcs.h"

namespace helcfl::sim {
namespace {

/// A configuration small enough to run in milliseconds.
ExperimentConfig tiny_config(Scheme scheme, bool noniid = false) {
  ExperimentConfig c = paper_config();
  c.scheme = scheme;
  c.noniid = noniid;
  c.n_users = 20;
  c.dataset.train_samples = 400;
  c.dataset.test_samples = 100;
  c.trainer.max_rounds = 8;
  c.trainer.eval_every = 2;
  c.sl_eval_every = 4;
  c.sl_eval_users = 5;
  c.seed = 77;
  return c;
}

TEST(Simulation, RunsEveryScheme) {
  for (const auto scheme : {Scheme::kHelcfl, Scheme::kHelcflNoDvfs, Scheme::kClassicFl,
                            Scheme::kFedCs, Scheme::kFedl, Scheme::kSl}) {
    const ExperimentResult result = run_experiment(tiny_config(scheme));
    EXPECT_EQ(result.scheme, scheme_name(scheme));
    EXPECT_EQ(result.history.size(), 8u) << result.scheme;
    EXPECT_GT(result.model_parameters, 0u);
    EXPECT_GT(result.history.total_delay_s(), 0.0);
    EXPECT_GT(result.history.total_energy_j(), 0.0);
  }
}

TEST(Simulation, NonIidRunsEveryScheme) {
  for (const auto scheme : {Scheme::kHelcfl, Scheme::kClassicFl, Scheme::kFedCs}) {
    const ExperimentResult result = run_experiment(tiny_config(scheme, true));
    EXPECT_EQ(result.history.size(), 8u);
  }
}

TEST(Simulation, DeterministicAcrossRuns) {
  const ExperimentConfig c = tiny_config(Scheme::kHelcfl);
  const ExperimentResult a = run_experiment(c);
  const ExperimentResult b = run_experiment(c);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history.rounds()[i].selected, b.history.rounds()[i].selected);
    EXPECT_DOUBLE_EQ(a.history.rounds()[i].test_accuracy,
                     b.history.rounds()[i].test_accuracy);
    EXPECT_DOUBLE_EQ(a.history.rounds()[i].cum_energy_j,
                     b.history.rounds()[i].cum_energy_j);
  }
}

TEST(Simulation, SeedChangesResults) {
  ExperimentConfig c = tiny_config(Scheme::kClassicFl);
  const ExperimentResult a = run_experiment(c);
  c.seed = 78;
  const ExperimentResult b = run_experiment(c);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    if (a.history.rounds()[i].selected != b.history.rounds()[i].selected) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Simulation, SchemesShareWorkloadGivenSeed) {
  // Same seed, different scheme: first-round delays of FedCS vs Classic
  // differ (different users) but the fleet is identical, so the FedCS auto
  // deadline computed from either run agrees.
  const ExperimentResult a = run_experiment(tiny_config(Scheme::kFedCs));
  const ExperimentResult b = run_experiment(tiny_config(Scheme::kFedCs));
  EXPECT_DOUBLE_EQ(a.fedcs_deadline_s, b.fedcs_deadline_s);
  EXPECT_GT(a.fedcs_deadline_s, 0.0);
}

TEST(Simulation, ExplicitFedcsDeadlineIsRespected) {
  ExperimentConfig c = tiny_config(Scheme::kFedCs);
  c.fedcs_deadline_s = 42.0;
  const ExperimentResult result = run_experiment(c);
  EXPECT_DOUBLE_EQ(result.fedcs_deadline_s, 42.0);
}

TEST(Simulation, InvalidConfigThrows) {
  ExperimentConfig c = tiny_config(Scheme::kHelcfl);
  c.fraction = 2.0;
  EXPECT_THROW(run_experiment(c), std::invalid_argument);
}

TEST(Simulation, AutoFedcsDeadlineMatchesFastestCohort) {
  const auto devices = testing::linear_fleet(10, 20);
  const auto users =
      sched::build_user_info(devices, testing::paper_channel(), 4e6);
  const double deadline = auto_fedcs_deadline({users}, 0.2);
  EXPECT_GT(deadline, 0.0);
  // The deadline must admit at least the 2 * Q * C fastest users.
  sched::FedCsSelection strategy(deadline);
  const sched::Decision d = strategy.decide({users}, 0);
  EXPECT_GE(d.selected.size(), 4u);
}

TEST(Simulation, AutoFedcsDeadlineSingleUserFleet) {
  // With one user the doubled cohort still clamps to N = 1, so the auto
  // deadline is exactly that user's serial round time t_cal + t_com.
  const auto users = testing::users_with_delays({{2.0, 1.0}});
  const double deadline = auto_fedcs_deadline({users}, 0.3);
  EXPECT_DOUBLE_EQ(deadline, 3.0);
  // The deadline it derives must admit the only user there is.
  sched::FedCsSelection strategy(deadline);
  const sched::Decision d = strategy.decide({users}, 0);
  ASSERT_EQ(d.selected.size(), 1u);
  EXPECT_EQ(d.selected[0], 0u);
}

TEST(Simulation, MakeStrategyReturnsNullForSl) {
  const ExperimentConfig c = tiny_config(Scheme::kSl);
  const auto devices = testing::linear_fleet(5, 20);
  const auto users =
      sched::build_user_info(devices, testing::paper_channel(), 4e6);
  EXPECT_EQ(make_strategy(c, {users}), nullptr);
}

TEST(Simulation, HelcflUsesLessEnergyThanNoDvfs) {
  const ExperimentResult with_dvfs = run_experiment(tiny_config(Scheme::kHelcfl));
  const ExperimentResult without = run_experiment(tiny_config(Scheme::kHelcflNoDvfs));
  EXPECT_LT(with_dvfs.history.total_energy_j(), without.history.total_energy_j());
  EXPECT_NEAR(with_dvfs.history.total_delay_s(), without.history.total_delay_s(),
              1e-6);
}

}  // namespace
}  // namespace helcfl::sim
