#include "sim/config.h"

#include <gtest/gtest.h>

namespace helcfl::sim {
namespace {

TEST(Config, PaperConfigIsValid) {
  EXPECT_NO_THROW(paper_config().validate());
}

TEST(Config, PaperConstants) {
  const ExperimentConfig c = paper_config();
  EXPECT_EQ(c.n_users, 100u);
  EXPECT_DOUBLE_EQ(c.fraction, 0.1);
  EXPECT_DOUBLE_EQ(c.f_min_hz, 0.3e9);
  EXPECT_DOUBLE_EQ(c.f_max_high_hz, 2.0e9);
  EXPECT_DOUBLE_EQ(c.switched_capacitance, 2e-28);
  EXPECT_DOUBLE_EQ(c.cycles_per_sample, 1e7);
  EXPECT_DOUBLE_EQ(c.bandwidth_hz, 2e6);
  EXPECT_DOUBLE_EQ(c.tx_power_w, 0.2);
  EXPECT_EQ(c.trainer.max_rounds, 300u);
  EXPECT_EQ(c.shards_per_user, 4u);
}

TEST(Config, SchemeParseRoundTrip) {
  for (const auto scheme : {Scheme::kHelcfl, Scheme::kHelcflNoDvfs, Scheme::kClassicFl,
                            Scheme::kFedCs, Scheme::kFedl, Scheme::kSl}) {
    const std::string name = scheme_name(scheme);
    EXPECT_FALSE(name.empty());
  }
  EXPECT_EQ(parse_scheme("helcfl"), Scheme::kHelcfl);
  EXPECT_EQ(parse_scheme("helcfl_nodvfs"), Scheme::kHelcflNoDvfs);
  EXPECT_EQ(parse_scheme("classic"), Scheme::kClassicFl);
  EXPECT_EQ(parse_scheme("fedcs"), Scheme::kFedCs);
  EXPECT_EQ(parse_scheme("fedl"), Scheme::kFedl);
  EXPECT_EQ(parse_scheme("sl"), Scheme::kSl);
  EXPECT_THROW(parse_scheme("sgd"), std::invalid_argument);
}

TEST(Config, ValidateRejectsZeroUsers) {
  ExperimentConfig c = paper_config();
  c.n_users = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Config, ValidateRejectsBadFraction) {
  ExperimentConfig c = paper_config();
  c.fraction = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.fraction = 1.5;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Config, ValidateRejectsBadEta) {
  ExperimentConfig c = paper_config();
  c.eta = 1.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.eta = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Config, ValidateRejectsBadFrequencyRange) {
  ExperimentConfig c = paper_config();
  c.f_max_low_hz = 0.1e9;  // below f_min
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = paper_config();
  c.f_max_high_hz = c.f_max_low_hz / 2.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Config, ValidateRejectsBadRadio) {
  ExperimentConfig c = paper_config();
  c.bandwidth_hz = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = paper_config();
  c.gain_sq_high = c.gain_sq_low / 10.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Config, ValidateRejectsTooFewSamples) {
  ExperimentConfig c = paper_config();
  c.dataset.train_samples = 50;  // < 100 users
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Config, ValidateRejectsZeroRounds) {
  ExperimentConfig c = paper_config();
  c.trainer.max_rounds = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Config, ValidateRejectsNonIidWithoutShards) {
  ExperimentConfig c = paper_config();
  c.noniid = true;
  c.shards_per_user = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace helcfl::sim
