#include "core/helcfl_scheduler.h"

#include <gtest/gtest.h>

#include <set>

#include "core/dvfs.h"
#include "fl_fixtures.h"

namespace helcfl::core {
namespace {

std::vector<sched::UserInfo> fleet_of(std::size_t n) {
  const auto devices = testing::linear_fleet(n, 20);
  return sched::build_user_info(devices, testing::paper_channel(), 4e6);
}

TEST(HelcflScheduler, SelectsFractionAndAlignedFrequencies) {
  HelcflScheduler scheduler({.fraction = 0.2, .eta = 0.9});
  const auto users = fleet_of(20);
  const sched::Decision d = scheduler.decide({users}, 0);
  EXPECT_EQ(d.selected.size(), 4u);
  EXPECT_EQ(d.frequencies_hz.size(), 4u);
}

TEST(HelcflScheduler, FrequenciesMatchAlgorithm3) {
  HelcflScheduler scheduler({.fraction = 0.3, .eta = 0.9});
  const auto users = fleet_of(10);
  const sched::Decision d = scheduler.decide({users}, 0);
  const FrequencyPlan plan = determine_frequencies({users}, d.selected);
  for (std::size_t k = 0; k < d.selected.size(); ++k) {
    EXPECT_DOUBLE_EQ(d.frequencies_hz[k], plan.frequency_of(d.selected[k]));
  }
}

TEST(HelcflScheduler, NoDvfsRunsEveryoneAtMax) {
  HelcflScheduler scheduler({.fraction = 0.3, .eta = 0.9, .enable_dvfs = false});
  const auto users = fleet_of(10);
  const sched::Decision d = scheduler.decide({users}, 0);
  for (std::size_t k = 0; k < d.selected.size(); ++k) {
    EXPECT_DOUBLE_EQ(d.frequencies_hz[k], users[d.selected[k]].device.f_max_hz);
  }
}

TEST(HelcflScheduler, DvfsAndNoDvfsSelectSameUsers) {
  HelcflScheduler with({.fraction = 0.2, .eta = 0.9, .enable_dvfs = true});
  HelcflScheduler without({.fraction = 0.2, .eta = 0.9, .enable_dvfs = false});
  const auto users = fleet_of(15);
  for (std::size_t round = 0; round < 20; ++round) {
    EXPECT_EQ(with.decide({users}, round).selected,
              without.decide({users}, round).selected);
  }
}

TEST(HelcflScheduler, RotationCoversTheWholeFleet) {
  HelcflScheduler scheduler({.fraction = 0.1, .eta = 0.8});
  const auto users = fleet_of(30);
  std::set<std::size_t> ever;
  for (std::size_t round = 0; round < 120; ++round) {
    for (const auto i : scheduler.decide({users}, round).selected) ever.insert(i);
  }
  EXPECT_EQ(ever.size(), 30u);
}

TEST(HelcflScheduler, ResetRestartsTheDecaySequence) {
  HelcflScheduler scheduler({.fraction = 0.2, .eta = 0.9});
  const auto users = fleet_of(10);
  const auto first = scheduler.decide({users}, 0).selected;
  (void)scheduler.decide({users}, 1);
  scheduler.reset();
  EXPECT_EQ(scheduler.decide({users}, 0).selected, first);
}

TEST(HelcflScheduler, NameReflectsDvfsFlag) {
  EXPECT_EQ(HelcflScheduler({.enable_dvfs = true}).name(), "HELCFL");
  EXPECT_EQ(HelcflScheduler({.enable_dvfs = false}).name(), "HELCFL-noDVFS");
}

TEST(HelcflScheduler, FirstRoundPrefersFastUsers) {
  HelcflScheduler scheduler({.fraction = 0.2, .eta = 0.9});
  const auto users = fleet_of(20);  // ascending f_max with index
  const sched::Decision d = scheduler.decide({users}, 0);
  // The fastest devices are the highest indices in linear_fleet.
  for (const auto i : d.selected) EXPECT_GE(i, 14u);
}

TEST(HelcflScheduler, OptionsAccessors) {
  HelcflScheduler scheduler({.fraction = 0.25, .eta = 0.75});
  EXPECT_DOUBLE_EQ(scheduler.options().fraction, 0.25);
  EXPECT_DOUBLE_EQ(scheduler.selector().eta(), 0.75);
}

}  // namespace
}  // namespace helcfl::core
