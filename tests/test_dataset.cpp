#include "data/dataset.h"

#include <gtest/gtest.h>

namespace helcfl::data {
namespace {

using tensor::Shape;
using tensor::Tensor;

Dataset make_tiny() {
  // 4 samples, 1x2x2 images with values = sample index.
  Tensor images(Shape{4, 1, 2, 2});
  for (std::size_t n = 0; n < 4; ++n) {
    for (std::size_t i = 0; i < 4; ++i) images[n * 4 + i] = static_cast<float>(n);
  }
  return Dataset(std::move(images), {0, 1, 2, 1}, 3);
}

TEST(Dataset, SizeAndClasses) {
  const Dataset ds = make_tiny();
  EXPECT_EQ(ds.size(), 4u);
  EXPECT_EQ(ds.num_classes(), 3u);
}

TEST(Dataset, SpecReflectsImageGeometry) {
  const Dataset ds = make_tiny();
  const nn::ImageSpec spec = ds.spec();
  EXPECT_EQ(spec.channels, 1u);
  EXPECT_EQ(spec.height, 2u);
  EXPECT_EQ(spec.width, 2u);
}

TEST(Dataset, GatherCopiesRequestedSamples) {
  const Dataset ds = make_tiny();
  const std::vector<std::size_t> indices = {3, 1};
  const Batch batch = ds.gather(indices);
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.images.shape(), Shape({2, 1, 2, 2}));
  EXPECT_EQ(batch.images[0], 3.0F);
  EXPECT_EQ(batch.images[4], 1.0F);
  EXPECT_EQ(batch.labels, (std::vector<std::int32_t>{1, 1}));
}

TEST(Dataset, GatherEmpty) {
  const Dataset ds = make_tiny();
  const Batch batch = ds.gather(std::vector<std::size_t>{});
  EXPECT_EQ(batch.size(), 0u);
}

TEST(Dataset, GatherDuplicatesAllowed) {
  const Dataset ds = make_tiny();
  const std::vector<std::size_t> indices = {2, 2, 2};
  const Batch batch = ds.gather(indices);
  EXPECT_EQ(batch.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(batch.labels[i], 2);
}

TEST(Dataset, AllReturnsEverything) {
  const Dataset ds = make_tiny();
  const Batch batch = ds.all();
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch.labels, (std::vector<std::int32_t>{0, 1, 2, 1}));
}

TEST(Dataset, ClassHistogram) {
  const Dataset ds = make_tiny();
  EXPECT_EQ(ds.class_histogram(), (std::vector<std::size_t>{1, 2, 1}));
}

TEST(Dataset, ClassHistogramOfSubset) {
  const Dataset ds = make_tiny();
  const std::vector<std::size_t> indices = {1, 3};
  EXPECT_EQ(ds.class_histogram(indices), (std::vector<std::size_t>{0, 2, 0}));
}

TEST(Dataset, RejectsRank2Images) {
  EXPECT_THROW(Dataset(Tensor(Shape{4, 4}), {0, 1, 2, 1}, 3), std::invalid_argument);
}

TEST(Dataset, RejectsLabelCountMismatch) {
  EXPECT_THROW(Dataset(Tensor(Shape{4, 1, 2, 2}), {0, 1}, 3), std::invalid_argument);
}

TEST(Dataset, RejectsOutOfRangeLabel) {
  EXPECT_THROW(Dataset(Tensor(Shape{2, 1, 1, 1}), {0, 3}, 3), std::invalid_argument);
  EXPECT_THROW(Dataset(Tensor(Shape{2, 1, 1, 1}), {0, -1}, 3), std::invalid_argument);
}

}  // namespace
}  // namespace helcfl::data
