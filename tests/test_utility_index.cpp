// Direct unit tests of the incremental utility index (DESIGN.md §12):
// ordering and tie-break contract, lazy deletion, parking/revival, delay
// refresh, compaction bounds, and deterministic serialization.  End-to-end
// equivalence with the naive selector lives in
// tests/test_selection_differential.cpp.
#include "core/utility_index.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/utility.h"
#include "fl_fixtures.h"
#include "util/serial.h"

namespace helcfl::core {
namespace {

using testing::users_with_delays;

std::vector<UtilityIndex::Pick> top(UtilityIndex& index,
                                    const sched::FleetView& fleet, std::size_t n) {
  std::vector<UtilityIndex::Pick> picks;
  index.extract_top(fleet, n, picks);
  return picks;
}

// Re-inserts extracted users unchanged (callers that only peeked).
void reinsert(UtilityIndex& index, std::span<const std::size_t> counters,
              const std::vector<UtilityIndex::Pick>& picks) {
  for (const auto& pick : picks) index.update_counter(pick.user, counters[pick.user]);
}

TEST(UtilityIndex, RejectsBadEta) {
  EXPECT_THROW(UtilityIndex(0.0), std::invalid_argument);
  EXPECT_THROW(UtilityIndex(1.5), std::invalid_argument);
  EXPECT_NO_THROW(UtilityIndex(1.0));
}

TEST(UtilityIndex, ExtractsInUtilityThenIndexOrder) {
  const auto users =
      users_with_delays({{2.0, 0.0}, {1.0, 0.0}, {1.0, 0.0}, {4.0, 0.0}});
  const std::vector<std::size_t> counters(4, 0);
  UtilityIndex index(0.9);
  index.build(users, counters);
  ASSERT_TRUE(index.initialized());
  const auto picks = top(index, {users}, 4);
  ASSERT_EQ(picks.size(), 4u);
  // Users 1 and 2 tie at 1.0; the lower index wins (stable-sort contract).
  EXPECT_EQ(picks[0].user, 1u);
  EXPECT_EQ(picks[1].user, 2u);
  EXPECT_EQ(picks[2].user, 0u);
  EXPECT_EQ(picks[3].user, 3u);
  // Utilities are the bit-exact Eq. (20) values.
  EXPECT_EQ(picks[0].utility, utility(0, 1.0, 0.0, 0.9));
  EXPECT_EQ(picks[2].utility, utility(0, 2.0, 0.0, 0.9));
}

TEST(UtilityIndex, CounterUpdateReRanks) {
  const auto users = users_with_delays({{1.0, 0.0}, {1.5, 0.0}});
  std::vector<std::size_t> counters = {0, 0};
  UtilityIndex index(0.5);
  index.build(users, counters);
  // Decay user 0 below user 1 without extracting first: the build-time
  // user-0 entry (utility 1.0) goes stale in place.  0.5^1/1.0 = 0.5 < 1/1.5.
  counters[0] = 1;
  index.update_counter(0, 1);
  const auto picks = top(index, {users}, 2);
  EXPECT_EQ(picks[0].user, 1u);
  EXPECT_EQ(picks[1].user, 0u);
  EXPECT_GT(index.stale_discards(), 0u);  // the old user-0 entry was lazily dropped
}

TEST(UtilityIndex, ParksDeadUsersAndRevivesThem) {
  const auto users = users_with_delays({{1.0, 0.0}, {2.0, 0.0}, {3.0, 0.0}});
  const std::vector<std::size_t> counters(3, 0);
  UtilityIndex index(0.9);
  index.build(users, counters);

  std::vector<std::uint8_t> alive = {0, 1, 1};
  auto picks = top(index, {users, alive}, 2);
  EXPECT_EQ(picks[0].user, 1u);  // user 0 surfaced dead -> parked
  EXPECT_EQ(picks[1].user, 2u);
  reinsert(index, counters, picks);

  // Revived: the prologue re-inserts user 0 at its full utility.
  alive[0] = 1;
  index.begin_round({users, alive}, counters);
  picks = top(index, {users, alive}, 3);
  EXPECT_EQ(picks[0].user, 0u);
  reinsert(index, counters, picks);
}

TEST(UtilityIndex, DelaySweepRefreshesChangedUsersOnly) {
  auto users = users_with_delays({{1.0, 0.5}, {2.0, 0.5}, {3.0, 0.5}});
  const std::vector<std::size_t> counters(3, 0);
  UtilityIndex index(0.9);
  index.build(users, counters);
  index.begin_round({users}, counters);
  EXPECT_EQ(index.delay_refreshes(), 0u);  // nothing changed: pure verify

  users[1].t_com_s = 0.125;
  index.begin_round({users}, counters);
  EXPECT_EQ(index.delay_refreshes(), 1u);
  const auto picks = top(index, {users}, 3);
  EXPECT_EQ(picks[1].user, 1u);  // re-ranked: 1/2.125 > 1/3.5
  EXPECT_EQ(picks[1].utility, utility(0, 2.0, 0.125, 0.9));
}

TEST(UtilityIndex, CompactionBoundsTheHeap) {
  const std::size_t q = 64;
  std::vector<std::pair<double, double>> delays;
  for (std::size_t i = 0; i < q; ++i) {
    delays.push_back({1.0 + 0.01 * static_cast<double>(i), 0.5});
  }
  const auto users = users_with_delays(delays);
  std::vector<std::size_t> counters(q, 0);
  UtilityIndex index(0.9);
  index.build(users, counters);
  // Hammer the index with updates that are never popped (revoke-style
  // churn): each one strands a stale entry, garbage accrues, and the
  // prologue's compaction keeps the heap within its documented bound.
  for (std::size_t round = 0; round < 200; ++round) {
    index.begin_round({users}, counters);
    EXPECT_LE(index.heap_entries(), 2 * q + 64);
    for (std::size_t u = 0; u < q; ++u) index.update_counter(u, counters[u]);
  }
  EXPECT_GT(index.compactions(), 0u);
}

TEST(UtilityIndex, ExtractingWithoutReinsertionIsALogicError) {
  const auto users = users_with_delays({{1.0, 0.0}, {2.0, 0.0}});
  const std::vector<std::size_t> counters(2, 0);
  UtilityIndex index(0.9);
  index.build(users, counters);
  std::vector<UtilityIndex::Pick> picks;
  index.extract_top({users}, 2, picks);  // both entries removed, none returned
  EXPECT_THROW(index.extract_top({users}, 1, picks), std::logic_error);
}

TEST(UtilityIndex, SerializationIsDeterministicAndHeapLayoutFree) {
  const auto users = users_with_delays({{1.0, 0.5}, {2.0, 0.5}, {3.0, 0.5}});
  std::vector<std::size_t> counters = {4, 0, 2};
  UtilityIndex a(0.9);
  a.build(users, counters);
  // Churn a's heap layout: updates and extractions leave garbage around.
  for (std::size_t i = 0; i < 10; ++i) a.update_counter(1, 0);
  util::ByteWriter bytes_a;
  a.save(bytes_a);

  // A freshly built index over the same logical state serializes identically.
  UtilityIndex b(0.9);
  b.build(users, counters);
  util::ByteWriter bytes_b;
  b.save(bytes_b);
  EXPECT_EQ(bytes_a.data(), bytes_b.data());

  // load -> save round-trips, and the loaded index ranks identically.
  UtilityIndex c(0.9);
  util::ByteReader reader(bytes_a.data());
  c.load(reader, counters);
  reader.expect_end("index frame");
  util::ByteWriter bytes_c;
  c.save(bytes_c);
  EXPECT_EQ(bytes_c.data(), bytes_a.data());
  auto picks_b = top(b, {users}, 3);
  auto picks_c = top(c, {users}, 3);
  ASSERT_EQ(picks_b.size(), picks_c.size());
  for (std::size_t k = 0; k < picks_b.size(); ++k) {
    EXPECT_EQ(picks_b[k].user, picks_c[k].user);
    EXPECT_EQ(picks_b[k].utility, picks_c[k].utility);
  }
}

TEST(UtilityIndex, LoadRejectsMalformedFrames) {
  const std::vector<std::size_t> counters = {0, 0, 0};
  // Delay cache sized for 2 users against 3 counters.
  util::ByteWriter wrong_size;
  wrong_size.boolean(true);
  wrong_size.vec_f64(std::vector<double>{1.0, 2.0});
  wrong_size.vec_f64(std::vector<double>{0.5, 0.5});
  {
    UtilityIndex index(0.9);
    util::ByteReader reader(wrong_size.data());
    EXPECT_THROW(index.load(reader, counters), util::SerialError);
    EXPECT_FALSE(index.initialized());  // nothing committed
  }
  // Non-positive cached delay.
  util::ByteWriter bad_delay;
  bad_delay.boolean(true);
  bad_delay.vec_f64(std::vector<double>{1.0, -2.0, 3.0});
  bad_delay.vec_f64(std::vector<double>{0.5, 0.5, 0.5});
  {
    UtilityIndex index(0.9);
    util::ByteReader reader(bad_delay.data());
    EXPECT_THROW(index.load(reader, counters), util::SerialError);
    EXPECT_FALSE(index.initialized());
  }
  // Truncated frame (flag only).
  util::ByteWriter truncated;
  truncated.boolean(true);
  {
    UtilityIndex index(0.9);
    util::ByteReader reader(truncated.data());
    EXPECT_THROW(index.load(reader, counters), util::SerialError);
    EXPECT_FALSE(index.initialized());
  }
}

}  // namespace
}  // namespace helcfl::core
