#include "mec/cost_model.h"

#include <gtest/gtest.h>

namespace helcfl::mec {
namespace {

Device paper_device() {
  Device d;
  d.f_min_hz = 0.3e9;
  d.f_max_hz = 2.0e9;
  d.switched_capacitance = 2e-28;
  d.cycles_per_sample = 1e7;
  d.num_samples = 40;
  d.tx_power_w = 0.2;
  d.channel_gain_sq = 1e-7;
  return d;
}

const Channel kChannel{2e6, 1e-9};
constexpr double kModelBits = 4e6;

TEST(CostModel, ComputeDelayEq4) {
  const Device d = paper_device();
  // T = pi*|D| / f = 4e8 / 1e9 = 0.4 s.
  EXPECT_DOUBLE_EQ(compute_delay_s(d, 1e9), 0.4);
}

TEST(CostModel, ComputeDelayInverseInFrequency) {
  const Device d = paper_device();
  EXPECT_DOUBLE_EQ(compute_delay_s(d, 0.5e9), 2.0 * compute_delay_s(d, 1e9));
}

TEST(CostModel, ComputeDelayRejectsNonPositiveFrequency) {
  const Device d = paper_device();
  EXPECT_THROW(compute_delay_s(d, 0.0), std::invalid_argument);
  EXPECT_THROW(compute_delay_s(d, -1e9), std::invalid_argument);
}

TEST(CostModel, ComputeEnergyEq5) {
  const Device d = paper_device();
  // E = alpha/2 * pi*|D| * f^2 = 1e-28 * 4e8 * 1e18 = 0.04 J.
  EXPECT_DOUBLE_EQ(compute_energy_j(d, 1e9), 1e-28 * 4e8 * 1e18);
}

TEST(CostModel, ComputeEnergyQuadraticInFrequency) {
  const Device d = paper_device();
  EXPECT_DOUBLE_EQ(compute_energy_j(d, 2e9), 4.0 * compute_energy_j(d, 1e9));
}

TEST(CostModel, SlowingDownSavesEnergyButCostsDelay) {
  const Device d = paper_device();
  EXPECT_LT(compute_energy_j(d, d.f_min_hz), compute_energy_j(d, d.f_max_hz));
  EXPECT_GT(compute_delay_s(d, d.f_min_hz), compute_delay_s(d, d.f_max_hz));
}

TEST(CostModel, UploadDelayEq7) {
  const Device d = paper_device();
  const double rate = kChannel.upload_rate_bps(d);
  EXPECT_DOUBLE_EQ(upload_delay_s(d, kChannel, kModelBits), kModelBits / rate);
}

TEST(CostModel, UploadEnergyEq8) {
  const Device d = paper_device();
  EXPECT_DOUBLE_EQ(upload_energy_j(d, kChannel, kModelBits),
                   d.tx_power_w * upload_delay_s(d, kChannel, kModelBits));
}

TEST(CostModel, UploadDelayLinearInModelSize) {
  const Device d = paper_device();
  EXPECT_DOUBLE_EQ(upload_delay_s(d, kChannel, 2.0 * kModelBits),
                   2.0 * upload_delay_s(d, kChannel, kModelBits));
}

TEST(CostModel, UserCostAggregatesAllFour) {
  const Device d = paper_device();
  const UserCost cost = user_cost(d, kChannel, kModelBits, 1e9);
  EXPECT_DOUBLE_EQ(cost.compute_delay_s, compute_delay_s(d, 1e9));
  EXPECT_DOUBLE_EQ(cost.compute_energy_j, compute_energy_j(d, 1e9));
  EXPECT_DOUBLE_EQ(cost.upload_delay_s, upload_delay_s(d, kChannel, kModelBits));
  EXPECT_DOUBLE_EQ(cost.upload_energy_j, upload_energy_j(d, kChannel, kModelBits));
  EXPECT_DOUBLE_EQ(cost.total_delay_s(), cost.compute_delay_s + cost.upload_delay_s);
  EXPECT_DOUBLE_EQ(cost.total_energy_j(),
                   cost.compute_energy_j + cost.upload_energy_j);
}

TEST(CostModel, PaperScaleSanity) {
  // With the paper's constants a 40-sample device at 1 GHz spends well
  // under a second computing and a fraction of a joule per round.
  const Device d = paper_device();
  const UserCost cost = user_cost(d, kChannel, kModelBits, 1e9);
  EXPECT_GT(cost.total_delay_s(), 0.01);
  EXPECT_LT(cost.total_delay_s(), 10.0);
  EXPECT_GT(cost.total_energy_j(), 0.001);
  EXPECT_LT(cost.total_energy_j(), 10.0);
}

}  // namespace
}  // namespace helcfl::mec
