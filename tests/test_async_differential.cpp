// The sync-equivalence contract of the async engine (DESIGN.md §16,
// docs/ASYNC.md): with --mode=sync, fl::AsyncTrainer must reproduce
// fl::FederatedTrainer *bitwise* — final weights, every RoundRecord field,
// the metrics CSV bytes, and the full JSONL trace — across strategies,
// fault levels, and thread counts.  That identity is what proves the
// event-queue arrival path is a refactoring, not a behaviour change: TDMA
// upload ends are non-decreasing in grant order and seq breaks ties by
// insertion order, so the queue's pop order *is* the grant order.
//
// The async mode carries the repo's determinism contract instead: a run is
// bitwise reproducible and invariant under --threads, because all event
// ordering flows from the (time, seq) total order, per-client RNG forks
// key on dispatch id, and fault draws key on (dispatch, user).
//
// Default depth covers three structurally distinct strategies; set
// HELCFL_DIFF_DEEP=1 (the `slow` ctest label) for the full
// strategy x faults x threads matrix.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "fl/async_trainer.h"
#include "fl/trainer.h"
#include "fl_fixtures.h"
#include "nn/models.h"
#include "nn/serialize.h"
#include "obs/trace.h"
#include "resume_fixtures.h"
#include "util/rng.h"

namespace helcfl::testing {
namespace {

bool deep_mode() { return std::getenv("HELCFL_DIFF_DEEP") != nullptr; }

/// Strategy coverage: the shallow set spans the three structurally
/// different selection families (utility-decay, uniform-random with RNG
/// state, loss-feedback); deep mode sweeps the full resume matrix.
std::vector<std::string> differential_strategies() {
  if (deep_mode()) return resume_strategies();
  return {"HELCFL", "ClassicFL", "Oort"};
}

const ResumeWorld& shared_world() {
  static const ResumeWorld world;
  return world;
}

/// Per-process scratch: the shallow and HELCFL_DIFF_DEEP ctest entries run
/// this binary concurrently, so a shared /tmp name would race remove_all.
std::filesystem::path scratch_dir(const std::string& name) {
  return resume_tmp_dir(name + "_" + std::to_string(::getpid()));
}

/// The full bitwise identity: weights, history fields, CSV bytes, and the
/// *raw* trace strings (both engines emit the same events with the same
/// seqs in sync mode — nothing to canonicalize away).
void expect_bitwise_identical(const std::string& label, const ResumeRun& golden,
                              const ResumeRun& candidate) {
  SCOPED_TRACE(label);
  EXPECT_FALSE(golden.final_weights.empty());
  EXPECT_EQ(golden.final_weights, candidate.final_weights);
  expect_history_identical(golden.history, candidate.history);
  const auto dir = scratch_dir("async_differential");
  EXPECT_EQ(history_csv_bytes(dir, "golden", golden.history),
            history_csv_bytes(dir, "candidate", candidate.history));
  EXPECT_FALSE(golden.trace.empty());
  EXPECT_EQ(golden.trace, candidate.trace);
}

/// Cross-thread variant: --threads is configuration, not state, but the
/// run_start preamble records it, so the trace comparison canonicalizes
/// (drops run_start; every simulation event must still match byte-for-byte).
void expect_bitwise_identical_across_threads(const std::string& label,
                                             const ResumeRun& a, const ResumeRun& b) {
  SCOPED_TRACE(label);
  EXPECT_FALSE(a.final_weights.empty());
  EXPECT_EQ(a.final_weights, b.final_weights);
  expect_history_identical(a.history, b.history);
  const auto dir = scratch_dir("async_differential_threads");
  EXPECT_EQ(history_csv_bytes(dir, "a", a.history),
            history_csv_bytes(dir, "b", b.history));
  const std::vector<std::string> canon = canonical_trace(a.trace, 0);
  EXPECT_FALSE(canon.empty());
  EXPECT_EQ(canon, canonical_trace(b.trace, 0));
}

TEST(AsyncDifferential, SyncModeReproducesFederatedTrainerBitwise) {
  const ResumeWorld& world = shared_world();
  const fl::AsyncOptions sync_engine;  // mode = kSync
  for (const std::string& strategy : differential_strategies()) {
    for (const bool faults : {false, true}) {
      for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        const fl::TrainerOptions options = resume_options(faults, threads);
        const ResumeRun golden = run_resume_case(world, strategy, options);
        const ResumeRun mirrored = run_async_case(world, strategy, options, sync_engine);
        expect_bitwise_identical(strategy + (faults ? "/faults" : "/clean") +
                                     "/threads=" + std::to_string(threads),
                                 golden, mirrored);
      }
    }
  }
}

TEST(AsyncDifferential, SyncModeMatchesUnderStragglerCutoffAndQuorum) {
  // The cutoff/quorum paths reorder nothing but exercise the drop logic the
  // event loop had to reproduce (partial TDMA billing, wasted energy).
  const ResumeWorld& world = shared_world();
  fl::TrainerOptions options = resume_options(true, 2);
  options.straggler_cutoff_s = 600.0;
  options.min_clients = 2;
  const ResumeRun golden = run_resume_case(world, "HELCFL", options);
  const ResumeRun mirrored =
      run_async_case(world, "HELCFL", options, fl::AsyncOptions{});
  expect_bitwise_identical("HELCFL/cutoff", golden, mirrored);
}

fl::AsyncOptions fedbuff_engine() {
  fl::AsyncOptions async;
  async.mode = fl::AsyncOptions::Mode::kAsync;
  async.buffer_k = 3;
  async.staleness_beta = 0.5;
  async.staleness_bound = 4;
  return async;
}

TEST(AsyncDifferential, AsyncModeIsBitwiseReproducible) {
  const ResumeWorld& world = shared_world();
  for (const std::string& strategy : differential_strategies()) {
    for (const bool faults : {false, true}) {
      const fl::TrainerOptions options = resume_options(faults, 1);
      const ResumeRun first = run_async_case(world, strategy, options, fedbuff_engine());
      const ResumeRun second = run_async_case(world, strategy, options, fedbuff_engine());
      expect_bitwise_identical(strategy + (faults ? "/faults" : "/clean"), first,
                               second);
      // The async run really aggregated (non-vacuous reproduction).
      EXPECT_FALSE(first.history.rounds().empty());
    }
  }
}

TEST(AsyncDifferential, AsyncModeIsThreadInvariant) {
  // Worker threads only parallelize local training; commit order, RNG
  // forks, and event times are fixed by dispatch order, so --threads must
  // not move a single byte.
  const ResumeWorld& world = shared_world();
  for (const bool faults : {false, true}) {
    const ResumeRun threads1 =
        run_async_case(world, "HELCFL", resume_options(faults, 1), fedbuff_engine());
    const ResumeRun threads4 =
        run_async_case(world, "HELCFL", resume_options(faults, 4), fedbuff_engine());
    expect_bitwise_identical_across_threads(faults ? "faults" : "clean", threads1,
                                            threads4);
  }
}

TEST(AsyncDifferential, SemiAsyncBufferZeroLocksToFirstCohort) {
  // buffer_k = 0: K becomes the first cohort's size.  Still deterministic
  // and thread-invariant, and it must make progress.
  const ResumeWorld& world = shared_world();
  fl::AsyncOptions async = fedbuff_engine();
  async.buffer_k = 0;
  const ResumeRun threads1 = run_async_case(world, "HELCFL", resume_options(true, 1), async);
  const ResumeRun threads4 = run_async_case(world, "HELCFL", resume_options(true, 4), async);
  expect_bitwise_identical_across_threads("semi-async", threads1, threads4);
  EXPECT_FALSE(threads1.history.rounds().empty());
}

TEST(AsyncDifferential, ZeroBetaDisablesDiscountExactly) {
  // β = 0 makes every discount exactly 1.0; the engine must take the
  // undiscounted FedAvg path bitwise (x * 1.0 / t == x / t in IEEE-754).
  const ResumeWorld& world = shared_world();
  fl::AsyncOptions beta0 = fedbuff_engine();
  beta0.staleness_beta = 0.0;
  const ResumeRun run0 = run_async_case(world, "HELCFL", resume_options(false, 2), beta0);
  const ResumeRun again = run_async_case(world, "HELCFL", resume_options(false, 2), beta0);
  expect_bitwise_identical("beta0", run0, again);
  // And β > 0 genuinely changes the trajectory (the knob is live).
  const ResumeRun discounted =
      run_async_case(world, "HELCFL", resume_options(false, 2), fedbuff_engine());
  EXPECT_NE(run0.final_weights, discounted.final_weights);
}

TEST(AsyncDifferential, AsyncRejectsBufferBelowQuorum) {
  const ResumeWorld& world = shared_world();
  fl::TrainerOptions options = resume_options(false, 1);
  options.min_clients = 4;
  fl::AsyncOptions async = fedbuff_engine();
  async.buffer_k = 2;  // every aggregation would fail its quorum
  EXPECT_THROW(run_async_case(world, "HELCFL", options, async),
               std::invalid_argument);
}

}  // namespace
}  // namespace helcfl::testing
