#include "nn/sequential.h"

#include <gtest/gtest.h>

#include "gradcheck.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/flatten.h"
#include "nn/dropout.h"
#include "nn/serialize.h"
#include "util/rng.h"

namespace helcfl::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(Sequential, ChainsLayers) {
  util::Rng rng(1);
  Sequential model;
  model.emplace<Dense>(4, 3, rng);
  model.emplace<ReLU>();
  model.emplace<Dense>(3, 2, rng);
  const Tensor y = model.forward(Tensor(Shape{5, 4}), false);
  EXPECT_EQ(y.shape(), Shape({5, 2}));
  EXPECT_EQ(model.layer_count(), 3u);
}

TEST(Sequential, EmptyModelIsIdentity) {
  Sequential model;
  Tensor x(Shape{2, 2}, {1, 2, 3, 4});
  const Tensor y = model.forward(x, false);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(y[i], x[i]);
}

TEST(Sequential, AddNullThrows) {
  Sequential model;
  EXPECT_THROW(model.add(nullptr), std::invalid_argument);
}

TEST(Sequential, ParamsConcatenateInLayerOrder) {
  util::Rng rng(2);
  Sequential model;
  model.emplace<Dense>(2, 3, rng);  // 6 + 3 params
  model.emplace<Dense>(3, 1, rng);  // 3 + 1 params
  EXPECT_EQ(model.parameter_count(), 13u);
  EXPECT_EQ(model.params().size(), 4u);
}

TEST(Sequential, GradientCheckOfComposition) {
  util::Rng rng(3);
  Sequential model;
  model.emplace<Dense>(4, 5, rng);
  model.emplace<Tanh>();
  model.emplace<Dense>(5, 2, rng);
  testing::check_gradients(model, testing::random_input(Shape{2, 4}, 4));
}

TEST(Sequential, FlattenBridgesConvToDense) {
  util::Rng rng(5);
  Sequential model;
  model.emplace<Flatten>();
  model.emplace<Dense>(2 * 3 * 3, 4, rng);
  const Tensor y = model.forward(Tensor(Shape{2, 2, 3, 3}), false);
  EXPECT_EQ(y.shape(), Shape({2, 4}));
}

TEST(Sequential, ZeroGradReachesAllLayers) {
  util::Rng rng(6);
  Sequential model;
  model.emplace<Dense>(2, 2, rng);
  model.emplace<Dense>(2, 2, rng);
  const Tensor x = testing::random_input(Shape{1, 2}, 7);
  (void)model.forward(x, true);
  Tensor dy(Shape{1, 2});
  dy.fill(1.0F);
  (void)model.backward(dy);
  model.zero_grad();
  for (const float g : extract_gradients(model)) EXPECT_EQ(g, 0.0F);
}

TEST(Sequential, NameListsLayers) {
  util::Rng rng(8);
  Sequential model;
  model.emplace<Dense>(2, 3, rng);
  model.emplace<ReLU>();
  EXPECT_EQ(model.name(), "Sequential[Dense(2->3), ReLU]");
}

TEST(Sequential, LayerAccessor) {
  util::Rng rng(9);
  Sequential model;
  model.emplace<Dense>(2, 3, rng);
  EXPECT_EQ(model.layer(0).name(), "Dense(2->3)");
  EXPECT_THROW(model.layer(1), std::out_of_range);
}

TEST(Dropout, IdentityAtInference) {
  util::Rng rng(10);
  Dropout dropout(0.5F, rng);
  const Tensor x = testing::random_input(Shape{4, 4}, 11);
  const Tensor y = dropout.forward(x, false);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(y[i], x[i]);
}

TEST(Dropout, DropsApproximatelyPFraction) {
  util::Rng rng(12);
  Dropout dropout(0.3F, rng);
  Tensor x(Shape{100, 100});
  x.fill(1.0F);
  const Tensor y = dropout.forward(x, true);
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] == 0.0F) ++zeros;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / static_cast<double>(y.size()), 0.3, 0.02);
}

TEST(Dropout, SurvivorsAreRescaled) {
  util::Rng rng(13);
  Dropout dropout(0.5F, rng);
  Tensor x(Shape{1000});
  x.fill(1.0F);
  const Tensor y = dropout.forward(x, true);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_TRUE(y[i] == 0.0F || y[i] == 2.0F);
  }
}

TEST(Dropout, BackwardUsesSameMask) {
  util::Rng rng(14);
  Dropout dropout(0.5F, rng);
  Tensor x(Shape{100});
  x.fill(1.0F);
  const Tensor y = dropout.forward(x, true);
  Tensor dy(Shape{100});
  dy.fill(1.0F);
  const Tensor dx = dropout.backward(dy);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(dx[i], y[i]);  // same 0-or-2 pattern
  }
}

TEST(Dropout, RejectsInvalidProbability) {
  util::Rng rng(15);
  EXPECT_THROW(Dropout(-0.1F, rng), std::invalid_argument);
  EXPECT_THROW(Dropout(1.0F, rng), std::invalid_argument);
}

TEST(Flatten, RoundTripsThroughBackward) {
  Flatten flatten;
  const Tensor x = testing::random_input(Shape{2, 3, 4, 5}, 16);
  const Tensor y = flatten.forward(x, true);
  EXPECT_EQ(y.shape(), Shape({2, 60}));
  const Tensor dx = flatten.backward(y);
  EXPECT_EQ(dx.shape(), x.shape());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(dx[i], x[i]);
}

TEST(Flatten, RejectsRank1) {
  Flatten flatten;
  EXPECT_THROW(flatten.forward(Tensor(Shape{5}), false), std::invalid_argument);
}

}  // namespace
}  // namespace helcfl::nn
