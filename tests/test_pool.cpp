#include "nn/pool.h"

#include <gtest/gtest.h>

#include "gradcheck.h"

namespace helcfl::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(MaxPool2D, OutputShape) {
  MaxPool2D pool(2, 2);
  const Tensor y = pool.forward(Tensor(Shape{2, 3, 8, 8}), false);
  EXPECT_EQ(y.shape(), Shape({2, 3, 4, 4}));
}

TEST(MaxPool2D, OddExtentFloors) {
  MaxPool2D pool(2, 2);
  const Tensor y = pool.forward(Tensor(Shape{1, 1, 5, 5}), false);
  EXPECT_EQ(y.shape(), Shape({1, 1, 2, 2}));
}

TEST(MaxPool2D, PicksWindowMaximum) {
  MaxPool2D pool(2, 2);
  Tensor x(Shape{1, 1, 2, 2}, {1.0F, 5.0F, 3.0F, 2.0F});
  const Tensor y = pool.forward(x, false);
  EXPECT_EQ(y.size(), 1u);
  EXPECT_FLOAT_EQ(y[0], 5.0F);
}

TEST(MaxPool2D, HandlesNegativeValues) {
  MaxPool2D pool(2, 2);
  Tensor x(Shape{1, 1, 2, 2}, {-4.0F, -1.0F, -3.0F, -2.0F});
  const Tensor y = pool.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], -1.0F);
}

TEST(MaxPool2D, BackwardRoutesGradientToArgmax) {
  MaxPool2D pool(2, 2);
  Tensor x(Shape{1, 1, 2, 2}, {1.0F, 5.0F, 3.0F, 2.0F});
  (void)pool.forward(x, true);
  Tensor dy(Shape{1, 1, 1, 1}, {7.0F});
  const Tensor dx = pool.backward(dy);
  EXPECT_FLOAT_EQ(dx[0], 0.0F);
  EXPECT_FLOAT_EQ(dx[1], 7.0F);
  EXPECT_FLOAT_EQ(dx[2], 0.0F);
  EXPECT_FLOAT_EQ(dx[3], 0.0F);
}

TEST(MaxPool2D, RejectsRank2Input) {
  MaxPool2D pool(2, 2);
  EXPECT_THROW(pool.forward(Tensor(Shape{2, 4}), false), std::invalid_argument);
}

TEST(MaxPool2D, RejectsWindowLargerThanInput) {
  MaxPool2D pool(4, 4);
  EXPECT_THROW(pool.forward(Tensor(Shape{1, 1, 3, 3}), false), std::invalid_argument);
}

TEST(MaxPool2D, RejectsZeroKernel) {
  EXPECT_THROW(MaxPool2D(0, 1), std::invalid_argument);
  EXPECT_THROW(MaxPool2D(2, 0), std::invalid_argument);
}

TEST(MaxPool2D, GradientCheck) {
  MaxPool2D pool(2, 2);
  // Distinct values keep the argmax stable under the finite-difference step.
  Tensor x(Shape{1, 2, 4, 4});
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>((i * 7919) % 97) / 10.0F;
  }
  testing::check_gradients(pool, x);
}

TEST(GlobalAvgPool2D, OutputShape) {
  GlobalAvgPool2D pool;
  const Tensor y = pool.forward(Tensor(Shape{3, 5, 4, 4}), false);
  EXPECT_EQ(y.shape(), Shape({3, 5}));
}

TEST(GlobalAvgPool2D, ComputesMean) {
  GlobalAvgPool2D pool;
  Tensor x(Shape{1, 1, 2, 2}, {1.0F, 2.0F, 3.0F, 6.0F});
  const Tensor y = pool.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 3.0F);
}

TEST(GlobalAvgPool2D, PerChannelMeans) {
  GlobalAvgPool2D pool;
  Tensor x(Shape{1, 2, 1, 2}, {1.0F, 3.0F, 10.0F, 20.0F});
  const Tensor y = pool.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 2.0F);
  EXPECT_FLOAT_EQ(y.at(0, 1), 15.0F);
}

TEST(GlobalAvgPool2D, BackwardSpreadsGradientEvenly) {
  GlobalAvgPool2D pool;
  Tensor x(Shape{1, 1, 2, 2});
  (void)pool.forward(x, true);
  Tensor dy(Shape{1, 1}, {8.0F});
  const Tensor dx = pool.backward(dy);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(dx[i], 2.0F);
}

TEST(GlobalAvgPool2D, RejectsRank2Input) {
  GlobalAvgPool2D pool;
  EXPECT_THROW(pool.forward(Tensor(Shape{2, 4}), false), std::invalid_argument);
}

TEST(GlobalAvgPool2D, GradientCheck) {
  GlobalAvgPool2D pool;
  testing::check_gradients(pool, testing::random_input(Shape{2, 3, 3, 3}, 5));
}

}  // namespace
}  // namespace helcfl::nn
