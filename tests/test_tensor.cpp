#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace helcfl::tensor {
namespace {

TEST(Shape, RankAndDims) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s[0], 2u);
  EXPECT_EQ(s.dim(1), 3u);
  EXPECT_EQ(s[2], 4u);
}

TEST(Shape, NumElements) {
  EXPECT_EQ(Shape({2, 3, 4}).num_elements(), 24u);
  EXPECT_EQ(Shape({5}).num_elements(), 5u);
  EXPECT_EQ(Shape({}).num_elements(), 0u);
  EXPECT_EQ(Shape({3, 0, 2}).num_elements(), 0u);
}

TEST(Shape, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
}

TEST(Shape, ToString) {
  EXPECT_EQ(Shape({64, 3, 12, 12}).to_string(), "[64, 3, 12, 12]");
  EXPECT_EQ(Shape({}).to_string(), "[]");
}

TEST(Tensor, DefaultIsEmpty) {
  const Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
}

TEST(Tensor, ZeroInitialized) {
  const Tensor t(Shape{3, 4});
  EXPECT_EQ(t.size(), 12u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0F);
}

TEST(Tensor, ConstructFromData) {
  const Tensor t(Shape{2, 2}, {1.0F, 2.0F, 3.0F, 4.0F});
  EXPECT_EQ(t.at(0, 0), 1.0F);
  EXPECT_EQ(t.at(0, 1), 2.0F);
  EXPECT_EQ(t.at(1, 0), 3.0F);
  EXPECT_EQ(t.at(1, 1), 4.0F);
}

TEST(Tensor, ConstructSizeMismatchThrows) {
  EXPECT_THROW(Tensor(Shape{2, 2}, {1.0F, 2.0F}), std::invalid_argument);
}

TEST(Tensor, Full) {
  const Tensor t = Tensor::full(Shape{5}, 2.5F);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(t[i], 2.5F);
}

TEST(Tensor, Rank4IndexingIsRowMajor) {
  Tensor t(Shape{2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 9.0F;
  // flat = ((1*3 + 2)*4 + 3)*5 + 4 = 119
  EXPECT_EQ(t[119], 9.0F);
}

TEST(Tensor, Rank2IndexingIsRowMajor) {
  Tensor t(Shape{3, 4});
  t.at(2, 1) = 5.0F;
  EXPECT_EQ(t[9], 5.0F);
}

TEST(Tensor, CopyIsDeep) {
  Tensor a(Shape{2});
  Tensor b = a;
  b[0] = 1.0F;
  EXPECT_EQ(a[0], 0.0F);
}

TEST(Tensor, ReshapedPreservesData) {
  Tensor t(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor r = t.reshaped(Shape{3, 2});
  EXPECT_EQ(r.shape(), Shape({3, 2}));
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(r[i], t[i]);
}

TEST(Tensor, ReshapedBadCountThrows) {
  const Tensor t(Shape{2, 3});
  EXPECT_THROW(t.reshaped(Shape{7}), std::invalid_argument);
}

TEST(Tensor, Fill) {
  Tensor t(Shape{4});
  t.fill(3.0F);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], 3.0F);
}

TEST(Tensor, FillNormalHasRequestedMoments) {
  util::Rng rng(5);
  Tensor t(Shape{100, 100});
  t.fill_normal(rng, 2.0F, 0.5F);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    sum += t[i];
    sum_sq += static_cast<double>(t[i]) * t[i];
  }
  const double mu = sum / static_cast<double>(t.size());
  const double var = sum_sq / static_cast<double>(t.size()) - mu * mu;
  EXPECT_NEAR(mu, 2.0, 0.02);
  EXPECT_NEAR(var, 0.25, 0.01);
}

TEST(Tensor, FillUniformRespectsBounds) {
  util::Rng rng(6);
  Tensor t(Shape{1000});
  t.fill_uniform(rng, -1.0F, 1.0F);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_GE(t[i], -1.0F);
    EXPECT_LT(t[i], 1.0F);
  }
}

TEST(Tensor, DataSpanIsWritable) {
  Tensor t(Shape{3});
  auto span = t.data();
  span[1] = 7.0F;
  EXPECT_EQ(t[1], 7.0F);
}

}  // namespace
}  // namespace helcfl::tensor
