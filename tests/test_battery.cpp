#include "mec/battery.h"

#include <gtest/gtest.h>

namespace helcfl::mec {
namespace {

TEST(Battery, StartsFull) {
  const Battery b(10.0);
  EXPECT_FALSE(b.depleted());
  EXPECT_DOUBLE_EQ(b.remaining_j(), 10.0);
  EXPECT_DOUBLE_EQ(b.state_of_charge(), 1.0);
}

TEST(Battery, DrainReducesCharge) {
  Battery b(10.0);
  EXPECT_DOUBLE_EQ(b.drain(3.0), 3.0);
  EXPECT_DOUBLE_EQ(b.remaining_j(), 7.0);
  EXPECT_DOUBLE_EQ(b.state_of_charge(), 0.7);
  EXPECT_FALSE(b.depleted());
}

TEST(Battery, OverdrawIsClamped) {
  Battery b(5.0);
  EXPECT_DOUBLE_EQ(b.drain(8.0), 5.0);
  EXPECT_TRUE(b.depleted());
  EXPECT_DOUBLE_EQ(b.remaining_j(), 0.0);
  EXPECT_DOUBLE_EQ(b.drain(1.0), 0.0);
}

TEST(Battery, ExactDepletion) {
  Battery b(5.0);
  b.drain(5.0);
  EXPECT_TRUE(b.depleted());
}

TEST(Battery, CanAfford) {
  Battery b(5.0);
  EXPECT_TRUE(b.can_afford(5.0));
  EXPECT_FALSE(b.can_afford(5.1));
  b.drain(3.0);
  EXPECT_TRUE(b.can_afford(2.0));
  EXPECT_FALSE(b.can_afford(2.1));
}

TEST(Battery, MainsPowerNeverDepletes) {
  Battery b(0.0);
  EXPECT_TRUE(b.is_mains_powered());
  EXPECT_DOUBLE_EQ(b.drain(1e9), 1e9);
  EXPECT_FALSE(b.depleted());
  EXPECT_TRUE(b.can_afford(1e18));
  EXPECT_DOUBLE_EQ(b.state_of_charge(), 1.0);
}

TEST(Battery, NegativeDrainThrows) {
  Battery b(5.0);
  EXPECT_THROW(b.drain(-1.0), std::invalid_argument);
}

TEST(BatteryFleet, UniformConstruction) {
  const BatteryFleet fleet(10, 3.0);
  EXPECT_EQ(fleet.size(), 10u);
  EXPECT_EQ(fleet.alive_count(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(fleet.is_alive(i));
    EXPECT_DOUBLE_EQ(fleet.battery(i).capacity_j(), 3.0);
  }
}

TEST(BatteryFleet, HeterogeneousConstruction) {
  const BatteryFleet fleet(std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_EQ(fleet.size(), 3u);
  EXPECT_DOUBLE_EQ(fleet.battery(2).capacity_j(), 3.0);
}

TEST(BatteryFleet, DrainUpdatesAliveMask) {
  BatteryFleet fleet(3, 2.0);
  fleet.drain(1, 2.0);
  EXPECT_FALSE(fleet.is_alive(1));
  EXPECT_TRUE(fleet.is_alive(0));
  EXPECT_EQ(fleet.alive_count(), 2u);
  const auto mask = fleet.alive_mask();
  EXPECT_EQ(mask[0], 1);
  EXPECT_EQ(mask[1], 0);
  EXPECT_EQ(mask[2], 1);
}

TEST(BatteryFleet, PartialDrainKeepsAlive) {
  BatteryFleet fleet(2, 2.0);
  fleet.drain(0, 1.9);
  EXPECT_TRUE(fleet.is_alive(0));
  EXPECT_EQ(fleet.alive_count(), 2u);
}

TEST(BatteryFleet, MeanStateOfCharge) {
  BatteryFleet fleet(2, 4.0);
  fleet.drain(0, 2.0);  // 0.5 and 1.0
  EXPECT_DOUBLE_EQ(fleet.mean_state_of_charge(), 0.75);
}

TEST(BatteryFleet, EmptyFleet) {
  const BatteryFleet fleet;
  EXPECT_EQ(fleet.size(), 0u);
  EXPECT_EQ(fleet.alive_count(), 0u);
  EXPECT_DOUBLE_EQ(fleet.mean_state_of_charge(), 1.0);
}

}  // namespace
}  // namespace helcfl::mec
