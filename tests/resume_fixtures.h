// Shared harness for the checkpoint/resume equivalence tests.
//
// The contract under test (docs/CHECKPOINT.md): a run that saves a
// checkpoint at round k, dies, and resumes must be *bitwise* identical to
// one that never stopped — final weights, per-round metrics, the metrics
// CSV, and the trace suffix from the saved `trace_seq` on (modulo the seq
// renumbering a fresh tracer performs and the checkpoint/run lifecycle
// events themselves).  The harness runs a golden uninterrupted pass that
// drops a cadence of "{round}"-templated snapshots, then replays from one
// of them and compares everything.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/helcfl_scheduler.h"
#include "fl/async_trainer.h"
#include "fl/metrics.h"
#include "fl/trainer.h"
#include "fl_fixtures.h"
#include "nn/models.h"
#include "nn/serialize.h"
#include "obs/trace.h"
#include "sched/fedcs.h"
#include "sched/fedl.h"
#include "sched/oort.h"
#include "sched/random_selection.h"
#include "sim/report.h"
#include "util/rng.h"

namespace helcfl::testing {

constexpr std::size_t kResumeUsers = 12;
constexpr std::size_t kResumeRounds = 6;
constexpr std::uint64_t kResumeSeed = 1234;

/// Fixture keys the equivalence matrix covers.  Most are
/// SelectionStrategy::name() strings; "HELCFL-eta1" is a configuration
/// variant (η = 1, the tie-heavy no-decay regime) whose name() is still
/// "HELCFL" — the checkpoint validates name(), not the fixture key.
inline const std::vector<std::string>& resume_strategies() {
  static const std::vector<std::string> kNames = {
      "HELCFL", "HELCFL-eta1", "ClassicFL", "FedCS", "FEDL", "Oort"};
  return kNames;
}

/// Builds a fresh strategy by name().  Every call returns an identical
/// object (fixed options, fixed RNG fork), so the golden and resumed runs
/// construct the same initial state and load_state() only has to move the
/// cursors forward.
inline std::unique_ptr<sched::SelectionStrategy> make_resume_strategy(
    const std::string& name) {
  util::Rng rng = util::Rng(kResumeSeed).fork(5);
  if (name == "HELCFL") {
    return std::make_unique<core::HelcflScheduler>(
        core::HelcflOptions{.fraction = 0.34, .eta = 0.9, .enable_dvfs = true});
  }
  if (name == "HELCFL-eta1") {
    // η = 1 disables decay: every round is an all-ties ranking, the worst
    // case for the utility index's stable-sort tie-break contract.
    return std::make_unique<core::HelcflScheduler>(
        core::HelcflOptions{.fraction = 0.34, .eta = 1.0, .enable_dvfs = true});
  }
  if (name == "ClassicFL") {
    return std::make_unique<sched::RandomSelection>(0.34, rng);
  }
  if (name == "FedCS") {
    // Tight enough that the greedy packing actually excludes slow users.
    return std::make_unique<sched::FedCsSelection>(900.0, 0.5);
  }
  if (name == "FEDL") {
    return std::make_unique<sched::FedlSelection>(0.34, 0.2, rng);
  }
  if (name == "Oort") {
    sched::OortOptions options;
    options.fraction = 0.34;
    return std::make_unique<sched::OortSelection>(options, rng);
  }
  throw std::invalid_argument("make_resume_strategy: unknown strategy " + name);
}

/// Trainer options for the equivalence matrix: small but exercising
/// evaluation cadence, mini-batch RNG, retries, and (optionally) every
/// fault class at once.
inline fl::TrainerOptions resume_options(bool faults, std::size_t threads) {
  fl::TrainerOptions options;
  options.max_rounds = kResumeRounds;
  options.eval_every = 2;
  options.client.learning_rate = 0.1F;
  options.client.local_steps = 2;
  options.client.batch_size = 4;
  options.model_size_bits = 4e6;
  options.num_threads = threads;
  options.seed = kResumeSeed;
  if (faults) {
    options.faults.crash_rate = 0.15;
    options.faults.upload_failure_rate = 0.2;
    options.faults.straggler_rate = 0.3;
    options.faults.straggler_slowdown = 3.0;
    options.faults.leave_rate = 0.1;
    options.faults.rejoin_rate = 0.5;
    options.faults.enabled = true;
    options.max_upload_retries = 1;
    options.retry_backoff_s = 0.05;
  }
  return options;
}

/// The dataset / partition / fleet shared by every run of a test; building
/// it once per fixture keeps all runs paired on identical inputs.
struct ResumeWorld {
  ResumeWorld() {
    split = tiny_split(96, 48, 90);
    util::Rng partition_rng(91);
    partition = data::iid_partition(split.train.size(), kResumeUsers, partition_rng);
    devices = linear_fleet(kResumeUsers, partition[0].size());
    for (std::size_t i = 0; i < kResumeUsers; ++i) {
      devices[i].num_samples = partition[i].size();
    }
  }

  data::TrainTestSplit split;
  data::Partition partition;
  std::vector<mec::Device> devices;
};

/// Everything a run leaves behind that resume must reproduce bitwise.
struct ResumeRun {
  fl::TrainingHistory history;
  std::vector<float> final_weights;
  std::string trace;  ///< JSONL, decision level
};

/// Runs one trainer over `world` with a fresh identically-initialized model
/// and strategy.  `options.checkpoint_*` / `options.resume_from` are the
/// caller's to set.
inline ResumeRun run_resume_case(const ResumeWorld& world,
                                 const std::string& strategy_name,
                                 fl::TrainerOptions options) {
  util::Rng model_rng(92);
  const std::unique_ptr<nn::Sequential> model = nn::make_model(
      nn::ModelKind::kLogistic, world.split.train.spec(), 10, model_rng);
  const std::unique_ptr<sched::SelectionStrategy> strategy =
      make_resume_strategy(strategy_name);

  auto stream = std::make_unique<std::ostringstream>();
  std::ostringstream* raw_stream = stream.get();
  obs::Tracer tracer(std::move(stream), obs::TraceLevel::kDecision);
  options.obs.tracer = &tracer;

  fl::FederatedTrainer trainer(*model, world.split.train, world.split.test,
                               world.partition, world.devices, paper_channel(),
                               *strategy, options);
  ResumeRun run;
  run.history = trainer.run();
  run.final_weights = nn::extract_parameters(*model);
  tracer.flush();
  run.trace = raw_stream->str();
  return run;
}

/// run_resume_case's sibling for the async engine (DESIGN.md §16):
/// identical model / strategy / tracer construction, but drives
/// fl::AsyncTrainer with the given engine options.  With a default
/// AsyncOptions (mode = kSync) the output must be bitwise identical to
/// run_resume_case — tests/test_async_differential.cpp enforces exactly
/// that.
inline ResumeRun run_async_case(const ResumeWorld& world,
                                const std::string& strategy_name,
                                fl::TrainerOptions options,
                                fl::AsyncOptions async) {
  util::Rng model_rng(92);
  const std::unique_ptr<nn::Sequential> model = nn::make_model(
      nn::ModelKind::kLogistic, world.split.train.spec(), 10, model_rng);
  const std::unique_ptr<sched::SelectionStrategy> strategy =
      make_resume_strategy(strategy_name);

  auto stream = std::make_unique<std::ostringstream>();
  std::ostringstream* raw_stream = stream.get();
  obs::Tracer tracer(std::move(stream), obs::TraceLevel::kDecision);
  options.obs.tracer = &tracer;

  fl::AsyncTrainer trainer(*model, world.split.train, world.split.test,
                           world.partition, world.devices, paper_channel(),
                           *strategy, options, async);
  ResumeRun run;
  run.history = trainer.run();
  run.final_weights = nn::extract_parameters(*model);
  tracer.flush();
  run.trace = raw_stream->str();
  return run;
}

/// A per-test scratch directory under the build tree, wiped on entry.
inline std::filesystem::path resume_tmp_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("helcfl_resume_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// write_history_csv output as bytes (resume must reproduce the CSV
/// byte-for-byte, not just field-by-field).
inline std::string history_csv_bytes(const std::filesystem::path& dir,
                                     const std::string& name,
                                     const fl::TrainingHistory& history) {
  const std::string path = (dir / (name + ".csv")).string();
  sim::write_history_csv(path, history);
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// Canonicalizes a JSONL trace for suffix comparison: keeps events with
/// seq >= min_seq, drops run lifecycle and checkpoint events (they differ
/// between an uninterrupted and a resumed run by design), and strips the
/// `"seq":N,` prefix a fresh tracer renumbers.
inline std::vector<std::string> canonical_trace(const std::string& trace,
                                                std::uint64_t min_seq) {
  std::vector<std::string> lines;
  std::istringstream in(trace);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    constexpr std::string_view kSeqPrefix = "{\"seq\":";
    const std::size_t comma = line.find(',');
    if (line.rfind(kSeqPrefix, 0) != 0 || comma == std::string::npos) {
      ADD_FAILURE() << "unexpected trace line: " << line;
      continue;
    }
    const std::uint64_t seq =
        std::stoull(line.substr(kSeqPrefix.size(), comma - kSeqPrefix.size()));
    if (seq < min_seq) continue;
    const std::string rest = "{" + line.substr(comma + 1);
    if (rest.find("\"event\":\"run_start\"") != std::string::npos) continue;
    if (rest.find("\"event\":\"checkpoint_write\"") != std::string::npos) continue;
    if (rest.find("\"event\":\"checkpoint_resume\"") != std::string::npos) continue;
    lines.push_back(rest);
  }
  return lines;
}

/// Bitwise comparison of two full histories (EXPECT_EQ on double is
/// equality, not tolerance).
inline void expect_history_identical(const fl::TrainingHistory& a,
                                     const fl::TrainingHistory& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const fl::RoundRecord& ra = a.rounds()[i];
    const fl::RoundRecord& rb = b.rounds()[i];
    EXPECT_EQ(ra.round, rb.round) << "round " << i;
    EXPECT_EQ(ra.selected, rb.selected) << "round " << i;
    EXPECT_EQ(ra.round_delay_s, rb.round_delay_s) << "round " << i;
    EXPECT_EQ(ra.round_energy_j, rb.round_energy_j) << "round " << i;
    EXPECT_EQ(ra.cum_delay_s, rb.cum_delay_s) << "round " << i;
    EXPECT_EQ(ra.cum_energy_j, rb.cum_energy_j) << "round " << i;
    EXPECT_EQ(ra.train_loss, rb.train_loss) << "round " << i;
    EXPECT_EQ(ra.evaluated, rb.evaluated) << "round " << i;
    EXPECT_EQ(ra.test_loss, rb.test_loss) << "round " << i;
    EXPECT_EQ(ra.test_accuracy, rb.test_accuracy) << "round " << i;
    EXPECT_EQ(ra.alive_users, rb.alive_users) << "round " << i;
    EXPECT_EQ(ra.aggregated, rb.aggregated) << "round " << i;
    EXPECT_EQ(ra.survivors, rb.survivors) << "round " << i;
    EXPECT_EQ(ra.crashed, rb.crashed) << "round " << i;
    EXPECT_EQ(ra.upload_failures, rb.upload_failures) << "round " << i;
    EXPECT_EQ(ra.dropped_late, rb.dropped_late) << "round " << i;
    EXPECT_EQ(ra.retries, rb.retries) << "round " << i;
    EXPECT_EQ(ra.quorum_failed, rb.quorum_failed) << "round " << i;
    EXPECT_EQ(ra.wasted_energy_j, rb.wasted_energy_j) << "round " << i;
    EXPECT_EQ(ra.available_users, rb.available_users) << "round " << i;
  }
}

/// The full equivalence assertion: final weights, history, metrics CSV
/// bytes, and the golden trace suffix from `trace_seq` vs the resumed
/// run's whole trace.
inline void expect_bitwise_resume(const std::filesystem::path& dir,
                                  const ResumeRun& golden, const ResumeRun& resumed,
                                  std::uint64_t trace_seq) {
  EXPECT_FALSE(golden.final_weights.empty());
  EXPECT_EQ(golden.final_weights, resumed.final_weights);
  expect_history_identical(golden.history, resumed.history);
  EXPECT_EQ(history_csv_bytes(dir, "golden", golden.history),
            history_csv_bytes(dir, "resumed", resumed.history));
  const std::vector<std::string> golden_suffix = canonical_trace(golden.trace, trace_seq);
  EXPECT_FALSE(golden_suffix.empty());  // the comparison must not be vacuous
  EXPECT_EQ(golden_suffix, canonical_trace(resumed.trace, 0));
}

}  // namespace helcfl::testing
