#include "nn/conv2d.h"

#include <gtest/gtest.h>

#include "gradcheck.h"
#include "nn/serialize.h"
#include "util/rng.h"

namespace helcfl::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(Conv2D, OutputShapeNoPadding) {
  util::Rng rng(1);
  Conv2D conv(3, 8, /*kernel_size=*/3, /*stride=*/1, /*padding=*/0, rng);
  const Tensor y = conv.forward(Tensor(Shape{2, 3, 8, 8}), false);
  EXPECT_EQ(y.shape(), Shape({2, 8, 6, 6}));
}

TEST(Conv2D, OutputShapeSamePadding) {
  util::Rng rng(1);
  Conv2D conv(3, 4, 3, 1, 1, rng);
  const Tensor y = conv.forward(Tensor(Shape{1, 3, 8, 8}), false);
  EXPECT_EQ(y.shape(), Shape({1, 4, 8, 8}));
}

TEST(Conv2D, OutputShapeStride2) {
  util::Rng rng(1);
  Conv2D conv(1, 1, 3, 2, 1, rng);
  const Tensor y = conv.forward(Tensor(Shape{1, 1, 8, 8}), false);
  EXPECT_EQ(y.shape(), Shape({1, 1, 4, 4}));
}

TEST(Conv2D, RejectsWrongChannelCount) {
  util::Rng rng(1);
  Conv2D conv(3, 4, 3, 1, 1, rng);
  EXPECT_THROW(conv.forward(Tensor(Shape{1, 2, 8, 8}), false), std::invalid_argument);
}

TEST(Conv2D, RejectsTooSmallInput) {
  util::Rng rng(1);
  Conv2D conv(1, 1, 5, 1, 0, rng);
  EXPECT_THROW(conv.forward(Tensor(Shape{1, 1, 3, 3}), false), std::invalid_argument);
}

TEST(Conv2D, RejectsZeroStride) {
  util::Rng rng(1);
  EXPECT_THROW(Conv2D(1, 1, 3, 0, 0, rng), std::invalid_argument);
}

TEST(Conv2D, IdentityKernelPassesThrough) {
  util::Rng rng(2);
  Conv2D conv(1, 1, 1, 1, 0, rng);
  load_parameters(conv, std::vector<float>{1.0F, 0.0F});  // weight=1, bias=0
  const Tensor x = testing::random_input(Shape{1, 1, 4, 4}, 3);
  const Tensor y = conv.forward(x, false);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Conv2D, BoxKernelComputesNeighborhoodSum) {
  util::Rng rng(4);
  Conv2D conv(1, 1, 3, 1, 0, rng);
  std::vector<float> weights(10, 1.0F);
  weights[9] = 0.0F;  // bias
  load_parameters(conv, weights);
  Tensor x(Shape{1, 1, 3, 3});
  x.fill(2.0F);
  const Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.shape(), Shape({1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 18.0F);
}

TEST(Conv2D, BiasIsAddedPerOutputChannel) {
  util::Rng rng(5);
  Conv2D conv(1, 2, 1, 1, 0, rng);
  load_parameters(conv, std::vector<float>{0.0F, 0.0F, 3.0F, -2.0F});
  const Tensor y = conv.forward(Tensor(Shape{1, 1, 2, 2}), false);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(y.at(0, 0, i / 2, i % 2), 3.0F);
    EXPECT_FLOAT_EQ(y.at(0, 1, i / 2, i % 2), -2.0F);
  }
}

TEST(Conv2D, PaddingContributesZeros) {
  util::Rng rng(6);
  Conv2D conv(1, 1, 3, 1, 1, rng);
  std::vector<float> weights(10, 1.0F);
  weights[9] = 0.0F;
  load_parameters(conv, weights);
  Tensor x(Shape{1, 1, 3, 3});
  x.fill(1.0F);
  const Tensor y = conv.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 9.0F);  // center: full window
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 4.0F);  // corner: 2x2 valid window
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 1), 6.0F);  // edge: 2x3 valid window
}

TEST(Conv2D, GradientCheckNoPadding) {
  util::Rng rng(7);
  Conv2D conv(2, 3, 3, 1, 0, rng);
  testing::check_gradients(conv, testing::random_input(Shape{2, 2, 5, 5}, 8));
}

TEST(Conv2D, GradientCheckWithPadding) {
  util::Rng rng(9);
  Conv2D conv(2, 2, 3, 1, 1, rng);
  testing::check_gradients(conv, testing::random_input(Shape{1, 2, 4, 4}, 10));
}

TEST(Conv2D, GradientCheckStride2) {
  util::Rng rng(11);
  Conv2D conv(1, 2, 3, 2, 1, rng);
  testing::check_gradients(conv, testing::random_input(Shape{1, 1, 6, 6}, 12));
}

TEST(Conv2D, GradientCheck1x1) {
  util::Rng rng(13);
  Conv2D conv(3, 2, 1, 1, 0, rng);
  testing::check_gradients(conv, testing::random_input(Shape{2, 3, 3, 3}, 14));
}

TEST(Conv2D, OutputExtentFormula) {
  util::Rng rng(15);
  const Conv2D conv(1, 1, 3, 2, 1, rng);
  EXPECT_EQ(conv.output_extent(8), 4u);
  EXPECT_EQ(conv.output_extent(7), 4u);
}

TEST(Conv2D, NameContainsGeometry) {
  util::Rng rng(16);
  EXPECT_EQ(Conv2D(3, 8, 3, 1, 1, rng).name(), "Conv2D(3->8, k=3, s=1, p=1)");
}

}  // namespace
}  // namespace helcfl::nn
