#include "nn/conv2d.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "gradcheck.h"
#include "nn/serialize.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace helcfl::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(Conv2D, OutputShapeNoPadding) {
  util::Rng rng(1);
  Conv2D conv(3, 8, /*kernel_size=*/3, /*stride=*/1, /*padding=*/0, rng);
  const Tensor y = conv.forward(Tensor(Shape{2, 3, 8, 8}), false);
  EXPECT_EQ(y.shape(), Shape({2, 8, 6, 6}));
}

TEST(Conv2D, OutputShapeSamePadding) {
  util::Rng rng(1);
  Conv2D conv(3, 4, 3, 1, 1, rng);
  const Tensor y = conv.forward(Tensor(Shape{1, 3, 8, 8}), false);
  EXPECT_EQ(y.shape(), Shape({1, 4, 8, 8}));
}

TEST(Conv2D, OutputShapeStride2) {
  util::Rng rng(1);
  Conv2D conv(1, 1, 3, 2, 1, rng);
  const Tensor y = conv.forward(Tensor(Shape{1, 1, 8, 8}), false);
  EXPECT_EQ(y.shape(), Shape({1, 1, 4, 4}));
}

TEST(Conv2D, RejectsWrongChannelCount) {
  util::Rng rng(1);
  Conv2D conv(3, 4, 3, 1, 1, rng);
  EXPECT_THROW(conv.forward(Tensor(Shape{1, 2, 8, 8}), false), std::invalid_argument);
}

TEST(Conv2D, RejectsTooSmallInput) {
  util::Rng rng(1);
  Conv2D conv(1, 1, 5, 1, 0, rng);
  EXPECT_THROW(conv.forward(Tensor(Shape{1, 1, 3, 3}), false), std::invalid_argument);
}

TEST(Conv2D, RejectsZeroStride) {
  util::Rng rng(1);
  EXPECT_THROW(Conv2D(1, 1, 3, 0, 0, rng), std::invalid_argument);
}

TEST(Conv2D, IdentityKernelPassesThrough) {
  util::Rng rng(2);
  Conv2D conv(1, 1, 1, 1, 0, rng);
  load_parameters(conv, std::vector<float>{1.0F, 0.0F});  // weight=1, bias=0
  const Tensor x = testing::random_input(Shape{1, 1, 4, 4}, 3);
  const Tensor y = conv.forward(x, false);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Conv2D, BoxKernelComputesNeighborhoodSum) {
  util::Rng rng(4);
  Conv2D conv(1, 1, 3, 1, 0, rng);
  std::vector<float> weights(10, 1.0F);
  weights[9] = 0.0F;  // bias
  load_parameters(conv, weights);
  Tensor x(Shape{1, 1, 3, 3});
  x.fill(2.0F);
  const Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.shape(), Shape({1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 18.0F);
}

TEST(Conv2D, BiasIsAddedPerOutputChannel) {
  util::Rng rng(5);
  Conv2D conv(1, 2, 1, 1, 0, rng);
  load_parameters(conv, std::vector<float>{0.0F, 0.0F, 3.0F, -2.0F});
  const Tensor y = conv.forward(Tensor(Shape{1, 1, 2, 2}), false);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(y.at(0, 0, i / 2, i % 2), 3.0F);
    EXPECT_FLOAT_EQ(y.at(0, 1, i / 2, i % 2), -2.0F);
  }
}

TEST(Conv2D, PaddingContributesZeros) {
  util::Rng rng(6);
  Conv2D conv(1, 1, 3, 1, 1, rng);
  std::vector<float> weights(10, 1.0F);
  weights[9] = 0.0F;
  load_parameters(conv, weights);
  Tensor x(Shape{1, 1, 3, 3});
  x.fill(1.0F);
  const Tensor y = conv.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 9.0F);  // center: full window
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 4.0F);  // corner: 2x2 valid window
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 1), 6.0F);  // edge: 2x3 valid window
}

TEST(Conv2D, GradientCheckNoPadding) {
  util::Rng rng(7);
  Conv2D conv(2, 3, 3, 1, 0, rng);
  testing::check_gradients(conv, testing::random_input(Shape{2, 2, 5, 5}, 8));
}

TEST(Conv2D, GradientCheckWithPadding) {
  util::Rng rng(9);
  Conv2D conv(2, 2, 3, 1, 1, rng);
  testing::check_gradients(conv, testing::random_input(Shape{1, 2, 4, 4}, 10));
}

TEST(Conv2D, GradientCheckStride2) {
  util::Rng rng(11);
  Conv2D conv(1, 2, 3, 2, 1, rng);
  testing::check_gradients(conv, testing::random_input(Shape{1, 1, 6, 6}, 12));
}

TEST(Conv2D, GradientCheck1x1) {
  util::Rng rng(13);
  Conv2D conv(3, 2, 1, 1, 0, rng);
  testing::check_gradients(conv, testing::random_input(Shape{2, 3, 3, 3}, 14));
}

// ---------------------------------------------------------------------------
// im2col + GEMM against a direct 7-loop convolution reference.

/// Naive direct convolution: the definition the GEMM lowering must match.
Tensor direct_conv(const Tensor& x, std::span<const float> weight,
                   std::span<const float> bias, std::size_t in_ch,
                   std::size_t out_ch, std::size_t k, std::size_t stride,
                   std::size_t pad) {
  const std::size_t batch = x.shape()[0];
  const std::size_t h_in = x.shape()[2];
  const std::size_t w_in = x.shape()[3];
  const std::size_t h_out = (h_in + 2 * pad - k) / stride + 1;
  const std::size_t w_out = (w_in + 2 * pad - k) / stride + 1;
  Tensor y(Shape{batch, out_ch, h_out, w_out});
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t oc = 0; oc < out_ch; ++oc) {
      for (std::size_t oy = 0; oy < h_out; ++oy) {
        for (std::size_t ox = 0; ox < w_out; ++ox) {
          double sum = bias[oc];
          for (std::size_t ic = 0; ic < in_ch; ++ic) {
            for (std::size_t ky = 0; ky < k; ++ky) {
              for (std::size_t kx = 0; kx < k; ++kx) {
                const std::size_t iy = oy * stride + ky;
                const std::size_t ix = ox * stride + kx;
                if (iy < pad || ix < pad) continue;
                if (iy - pad >= h_in || ix - pad >= w_in) continue;
                sum += static_cast<double>(x.at(n, ic, iy - pad, ix - pad)) *
                       weight[((oc * in_ch + ic) * k + ky) * k + kx];
              }
            }
          }
          y.at(n, oc, oy, ox) = static_cast<float>(sum);
        }
      }
    }
  }
  return y;
}

struct ConvConfig {
  std::size_t in_ch, out_ch, k, stride, pad, h, w, batch;
};

TEST(Conv2D, MatchesDirectConvolutionReference) {
  const ConvConfig configs[] = {
      {1, 1, 3, 1, 0, 5, 5, 1},   // minimal valid conv
      {3, 8, 3, 1, 1, 8, 8, 2},   // same-padding, multi-channel, batch
      {2, 4, 3, 2, 1, 9, 7, 2},   // stride 2, non-square input
      {2, 3, 5, 1, 2, 7, 10, 1},  // large kernel, padding 2, non-square
      {4, 2, 1, 1, 0, 6, 6, 3},   // 1x1 pointwise
      {1, 2, 3, 3, 1, 11, 8, 1},  // stride 3
  };
  std::size_t seed = 20;
  for (const ConvConfig& cfg : configs) {
    util::Rng rng(seed++);
    Conv2D conv(cfg.in_ch, cfg.out_ch, cfg.k, cfg.stride, cfg.pad, rng);
    const std::vector<float> params = extract_parameters(conv);
    const std::size_t wsize = cfg.out_ch * cfg.in_ch * cfg.k * cfg.k;
    const std::span<const float> weight(params.data(), wsize);
    const std::span<const float> bias(params.data() + wsize, cfg.out_ch);

    const Tensor x =
        testing::random_input(Shape{cfg.batch, cfg.in_ch, cfg.h, cfg.w}, seed++);
    const Tensor got = conv.forward(x, false);
    const Tensor want = direct_conv(x, weight, bias, cfg.in_ch, cfg.out_ch,
                                    cfg.k, cfg.stride, cfg.pad);
    ASSERT_EQ(got.shape(), want.shape());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_NEAR(got[i], want[i], 1e-4)
          << "mismatch at flat index " << i << " for config in_ch=" << cfg.in_ch
          << " out_ch=" << cfg.out_ch << " k=" << cfg.k << " s=" << cfg.stride
          << " p=" << cfg.pad << " h=" << cfg.h << " w=" << cfg.w;
    }
  }
}

TEST(Conv2D, GradientCheckStride2Pad2NonSquare) {
  util::Rng rng(31);
  Conv2D conv(2, 2, 3, 2, 2, rng);
  testing::check_gradients(conv, testing::random_input(Shape{1, 2, 5, 7}, 32));
}

TEST(Conv2D, GradientCheckKernel5) {
  util::Rng rng(33);
  Conv2D conv(1, 2, 5, 1, 2, rng);
  testing::check_gradients(conv, testing::random_input(Shape{1, 1, 6, 6}, 34));
}

TEST(Conv2D, ScratchIsReusedAcrossSteadyStateSteps) {
  util::Rng rng(35);
  Conv2D conv(3, 8, 3, 1, 1, rng);
  const Tensor x = testing::random_input(Shape{2, 3, 8, 8}, 36);
  // Warm-up grows the column scratch to this shape; afterwards repeated
  // forward/backward passes must not reallocate it.
  Tensor y = conv.forward(x, true);
  conv.backward(y);
  const std::uint64_t before = tensor::scratch_realloc_count();
  for (int step = 0; step < 4; ++step) {
    y = conv.forward(x, true);
    conv.backward(y);
  }
  EXPECT_EQ(tensor::scratch_realloc_count(), before)
      << "Conv2D must not allocate scratch in steady state";
}

TEST(Conv2D, OutputExtentFormula) {
  util::Rng rng(15);
  const Conv2D conv(1, 1, 3, 2, 1, rng);
  EXPECT_EQ(conv.output_extent(8), 4u);
  EXPECT_EQ(conv.output_extent(7), 4u);
}

TEST(Conv2D, NameContainsGeometry) {
  util::Rng rng(16);
  EXPECT_EQ(Conv2D(3, 8, 3, 1, 1, rng).name(), "Conv2D(3->8, k=3, s=1, p=1)");
}

}  // namespace
}  // namespace helcfl::nn
