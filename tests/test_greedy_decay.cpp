#include "core/greedy_decay_selection.h"

#include <gtest/gtest.h>

#include <set>

#include "fl_fixtures.h"

namespace helcfl::core {
namespace {

using testing::users_with_delays;

TEST(GreedyDecay, RejectsBadParameters) {
  EXPECT_THROW(GreedyDecaySelector(0.1, 0.0), std::invalid_argument);
  EXPECT_THROW(GreedyDecaySelector(0.1, 1.5), std::invalid_argument);
  EXPECT_THROW(GreedyDecaySelector(0.0, 0.9), std::invalid_argument);
  EXPECT_THROW(GreedyDecaySelector(1.5, 0.9), std::invalid_argument);
  EXPECT_NO_THROW(GreedyDecaySelector(0.1, 1.0));  // no-decay regime
}

TEST(GreedyDecay, FirstRoundPicksFastestUsers) {
  const auto users =
      users_with_delays({{4.0, 0.5}, {1.0, 0.5}, {2.0, 0.5}, {3.0, 0.5}});
  GreedyDecaySelector selector(0.5, 0.9);
  const auto selected = selector.select({users});
  const std::set<std::size_t> set(selected.begin(), selected.end());
  EXPECT_EQ(set, (std::set<std::size_t>{1, 2}));
}

TEST(GreedyDecay, CountersTrackSelections) {
  const auto users = users_with_delays({{1.0, 0.5}, {2.0, 0.5}, {3.0, 0.5}});
  GreedyDecaySelector selector(0.34, 0.9);
  (void)selector.select({users});
  const auto counts = selector.appearance_counts();
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 0u);
  EXPECT_EQ(counts[2], 0u);
}

TEST(GreedyDecay, DecayEventuallyRotatesSlowUsersIn) {
  // 1 fast + 1 slow user, select 1 per round: the slow user must appear
  // once the fast user's utility decays below it.
  const auto users = users_with_delays({{1.0, 0.0}, {4.0, 0.0}});
  GreedyDecaySelector selector(0.5, 0.9);
  std::size_t first_slow_round = 0;
  for (std::size_t round = 0; round < 40; ++round) {
    const auto selected = selector.select({users});
    ASSERT_EQ(selected.size(), 1u);
    if (selected[0] == 1) {
      first_slow_round = round;
      break;
    }
  }
  // selections_until_overtaken(1, 4, 0.9) = 14.
  EXPECT_EQ(first_slow_round, 14u);
}

TEST(GreedyDecay, AllUsersEventuallySelected) {
  std::vector<std::pair<double, double>> delays;
  for (std::size_t i = 0; i < 20; ++i) {
    delays.push_back({0.5 + static_cast<double>(i), 0.5});
  }
  const auto users = users_with_delays(delays);
  GreedyDecaySelector selector(0.1, 0.7);
  std::set<std::size_t> ever_selected;
  for (std::size_t round = 0; round < 100; ++round) {
    for (const auto i : selector.select({users})) ever_selected.insert(i);
  }
  EXPECT_EQ(ever_selected.size(), 20u);
}

TEST(GreedyDecay, PureGreedyWouldStarveWithHighEta) {
  // With eta close to 1 decay is slow: within a short horizon the slow
  // user never appears (this is the FedCS-like degenerate regime that the
  // ablation bench A3 quantifies).
  const auto users = users_with_delays({{1.0, 0.0}, {50.0, 0.0}});
  GreedyDecaySelector selector(0.5, 0.99);
  for (std::size_t round = 0; round < 100; ++round) {
    const auto selected = selector.select({users});
    EXPECT_EQ(selected[0], 0u);
  }
}

TEST(GreedyDecay, SelectionCountFollowsFraction) {
  const auto users = users_with_delays(
      {{1, 1}, {2, 1}, {3, 1}, {4, 1}, {5, 1}, {6, 1}, {7, 1}, {8, 1}, {9, 1}, {10, 1}});
  GreedyDecaySelector selector(0.3, 0.9);
  EXPECT_EQ(selector.select({users}).size(), 3u);
}

TEST(GreedyDecay, ResetClearsCounters) {
  const auto users = users_with_delays({{1.0, 0.5}, {2.0, 0.5}});
  GreedyDecaySelector selector(0.5, 0.9);
  const auto first = selector.select({users});
  (void)selector.select({users});
  selector.reset();
  EXPECT_TRUE(selector.appearance_counts().empty());
  EXPECT_EQ(selector.select({users}), first);
}

TEST(GreedyDecay, RejectsFleetSizeChange) {
  const auto users_a = users_with_delays({{1.0, 0.5}, {2.0, 0.5}});
  const auto users_b = users_with_delays({{1.0, 0.5}});
  GreedyDecaySelector selector(0.5, 0.9);
  (void)selector.select({users_a});
  EXPECT_THROW(selector.select({users_b}), std::invalid_argument);
}

TEST(GreedyDecay, DeterministicTieBreakByIndex) {
  const auto users = users_with_delays({{1.0, 0.5}, {1.0, 0.5}, {1.0, 0.5}});
  GreedyDecaySelector selector(0.34, 0.9);
  EXPECT_EQ(selector.select({users}), (std::vector<std::size_t>{0}));
}

TEST(GreedyDecay, LongRunParticipationIsBalanced) {
  // Over many rounds the decay equalizes participation: the ratio between
  // the most- and least-selected users stays small.
  std::vector<std::pair<double, double>> delays;
  for (std::size_t i = 0; i < 10; ++i) {
    delays.push_back({0.5 + 0.4 * static_cast<double>(i), 0.5});
  }
  const auto users = users_with_delays(delays);
  GreedyDecaySelector selector(0.2, 0.8);
  for (std::size_t round = 0; round < 500; ++round) (void)selector.select({users});
  const auto counts = selector.appearance_counts();
  const auto [min_it, max_it] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_GT(*min_it, 0u);
  EXPECT_LT(static_cast<double>(*max_it) / static_cast<double>(*min_it), 2.0);
}

// --- edge cases of the incremental-index selector ------------------------

TEST(GreedyDecayEdge, RevokeToZeroIsSaturating) {
  const auto users = users_with_delays({{1.0, 0.5}, {2.0, 0.5}, {3.0, 0.5}});
  GreedyDecaySelector selector(0.34, 0.9);
  const auto first = selector.select({users});
  ASSERT_EQ(first, (std::vector<std::size_t>{0}));
  // Revoke the one appearance, then revoke again: the counter saturates at
  // zero instead of wrapping, and revoking a never-selected user is a no-op.
  selector.revoke_appearance(0);
  selector.revoke_appearance(0);
  selector.revoke_appearance(1);
  selector.revoke_appearance(99);  // out of range: ignored
  const auto counts = selector.appearance_counts();
  EXPECT_EQ(counts[0], 0u);
  EXPECT_EQ(counts[1], 0u);
  // With the decay undone, the next round repeats the first pick exactly.
  EXPECT_EQ(selector.select({users}), first);
}

TEST(GreedyDecayEdge, AllDepletedFleetSelectsNobody) {
  const auto users = users_with_delays({{1.0, 0.5}, {2.0, 0.5}, {3.0, 0.5}});
  const std::vector<std::uint8_t> dead(users.size(), 0);
  GreedyDecaySelector selector(0.5, 0.9);
  EXPECT_TRUE(selector.select({users, dead}).empty());
  // The first call still pins the fleet size (counters allocated)...
  EXPECT_EQ(selector.appearance_counts().size(), users.size());
  // ... and a later all-alive round works off the same index.
  EXPECT_EQ(selector.select({users}).size(), 2u);
  // Back to all-dead mid-run: still nobody, and no counter moves.
  const std::vector<std::size_t> before(selector.appearance_counts().begin(),
                                        selector.appearance_counts().end());
  EXPECT_TRUE(selector.select({users, dead}).empty());
  EXPECT_EQ(std::vector<std::size_t>(selector.appearance_counts().begin(),
                                     selector.appearance_counts().end()),
            before);
}

TEST(GreedyDecayEdge, SelectionCappedByAliveUsers) {
  // N = max(Q*C, 1) = 4, but only 2 users are alive: the round takes 2.
  const auto users =
      users_with_delays({{1.0, 0.5}, {2.0, 0.5}, {3.0, 0.5}, {4.0, 0.5}});
  const std::vector<std::uint8_t> alive = {0, 1, 0, 1};
  GreedyDecaySelector selector(1.0, 0.9);
  EXPECT_EQ(selector.select({users, alive}), (std::vector<std::size_t>{1, 3}));
}

TEST(GreedyDecayEdge, RestorePinsFleetSize) {
  const auto two = users_with_delays({{1.0, 0.5}, {2.0, 0.5}});
  const auto three = users_with_delays({{1.0, 0.5}, {2.0, 0.5}, {3.0, 0.5}});
  GreedyDecaySelector selector(0.5, 0.9);
  // A non-empty restore pins the fleet to its size...
  selector.restore_appearance_counts({9, 0, 0});
  EXPECT_THROW(selector.select({two}), std::invalid_argument);
  const auto picked = selector.select({three});
  // alpha = {9, 0, 0}: 0.9^9/1.5 < 1/3.5 < 1/2.5 — the restored decay
  // pushes the fastest user below both never-selected ones.
  EXPECT_EQ(picked, (std::vector<std::size_t>{1, 2}));
  // ... and an empty restore returns to the fully unpinned state.
  selector.restore_appearance_counts({});
  EXPECT_TRUE(selector.appearance_counts().empty());
  EXPECT_EQ(selector.select({two}).size(), 1u);
}

TEST(GreedyDecayEdge, SingleUserFleet) {
  const auto users = users_with_delays({{1.0, 0.5}});
  GreedyDecaySelector selector(0.01, 0.9);  // N = max(Q*C, 1) = 1
  for (std::size_t round = 0; round < 50; ++round) {
    EXPECT_EQ(selector.select({users}), (std::vector<std::size_t>{0}));
  }
  EXPECT_EQ(selector.appearance_counts()[0], 50u);
}

TEST(GreedyDecayEdge, EtaOneNeverRotates) {
  // eta = 1: no decay, the fastest user wins every round and ties keep
  // resolving to the lowest index.
  const auto users = users_with_delays({{1.0, 0.0}, {1.0, 0.0}, {4.0, 0.0}});
  GreedyDecaySelector selector(0.34, 1.0);
  for (std::size_t round = 0; round < 30; ++round) {
    EXPECT_EQ(selector.select({users}), (std::vector<std::size_t>{0}));
  }
  EXPECT_EQ(selector.appearance_counts()[0], 30u);
  EXPECT_EQ(selector.appearance_counts()[1], 0u);
}

TEST(GreedyDecayEdge, DelayReportUpdatesReRankNextRound) {
  // A per-round delay report (e.g. a refreshed T^com) must re-rank the
  // affected user immediately — the index refresh path.
  auto users = users_with_delays({{1.0, 0.5}, {2.0, 0.5}, {3.0, 0.5}});
  GreedyDecaySelector selector(0.34, 0.99);
  EXPECT_EQ(selector.select({users}), (std::vector<std::size_t>{0}));
  users[2].t_cal_max_s = 0.1;  // the slowest user reports a tiny new delay
  EXPECT_EQ(selector.select({users}), (std::vector<std::size_t>{2}));
  EXPECT_GT(selector.index().delay_refreshes(), 0u);
}

TEST(GreedyDecayEdge, SelectorStateRoundTripsThroughBytes) {
  const auto users = users_with_delays({{1.0, 0.5}, {2.0, 0.5}, {3.0, 0.5}});
  GreedyDecaySelector a(0.34, 0.9);
  for (std::size_t round = 0; round < 9; ++round) (void)a.select({users});
  util::ByteWriter saved;
  a.save_state(saved);

  GreedyDecaySelector b(0.34, 0.9);
  util::ByteReader reader(saved.data());
  b.load_state(reader);
  reader.expect_end("selector state");

  // The restored selector continues identically, and its serialization is
  // deterministic (save -> load -> save is byte-identical).
  util::ByteWriter resaved;
  b.save_state(resaved);
  EXPECT_EQ(saved.data(), resaved.data());
  for (std::size_t round = 0; round < 9; ++round) {
    EXPECT_EQ(a.select({users}), b.select({users}));
  }
}

}  // namespace
}  // namespace helcfl::core
