#include "core/greedy_decay_selection.h"

#include <gtest/gtest.h>

#include <set>

#include "fl_fixtures.h"

namespace helcfl::core {
namespace {

using testing::users_with_delays;

TEST(GreedyDecay, RejectsBadParameters) {
  EXPECT_THROW(GreedyDecaySelector(0.1, 0.0), std::invalid_argument);
  EXPECT_THROW(GreedyDecaySelector(0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(GreedyDecaySelector(0.0, 0.9), std::invalid_argument);
  EXPECT_THROW(GreedyDecaySelector(1.5, 0.9), std::invalid_argument);
}

TEST(GreedyDecay, FirstRoundPicksFastestUsers) {
  const auto users =
      users_with_delays({{4.0, 0.5}, {1.0, 0.5}, {2.0, 0.5}, {3.0, 0.5}});
  GreedyDecaySelector selector(0.5, 0.9);
  const auto selected = selector.select({users});
  const std::set<std::size_t> set(selected.begin(), selected.end());
  EXPECT_EQ(set, (std::set<std::size_t>{1, 2}));
}

TEST(GreedyDecay, CountersTrackSelections) {
  const auto users = users_with_delays({{1.0, 0.5}, {2.0, 0.5}, {3.0, 0.5}});
  GreedyDecaySelector selector(0.34, 0.9);
  (void)selector.select({users});
  const auto counts = selector.appearance_counts();
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 0u);
  EXPECT_EQ(counts[2], 0u);
}

TEST(GreedyDecay, DecayEventuallyRotatesSlowUsersIn) {
  // 1 fast + 1 slow user, select 1 per round: the slow user must appear
  // once the fast user's utility decays below it.
  const auto users = users_with_delays({{1.0, 0.0}, {4.0, 0.0}});
  GreedyDecaySelector selector(0.5, 0.9);
  std::size_t first_slow_round = 0;
  for (std::size_t round = 0; round < 40; ++round) {
    const auto selected = selector.select({users});
    ASSERT_EQ(selected.size(), 1u);
    if (selected[0] == 1) {
      first_slow_round = round;
      break;
    }
  }
  // selections_until_overtaken(1, 4, 0.9) = 14.
  EXPECT_EQ(first_slow_round, 14u);
}

TEST(GreedyDecay, AllUsersEventuallySelected) {
  std::vector<std::pair<double, double>> delays;
  for (std::size_t i = 0; i < 20; ++i) {
    delays.push_back({0.5 + static_cast<double>(i), 0.5});
  }
  const auto users = users_with_delays(delays);
  GreedyDecaySelector selector(0.1, 0.7);
  std::set<std::size_t> ever_selected;
  for (std::size_t round = 0; round < 100; ++round) {
    for (const auto i : selector.select({users})) ever_selected.insert(i);
  }
  EXPECT_EQ(ever_selected.size(), 20u);
}

TEST(GreedyDecay, PureGreedyWouldStarveWithHighEta) {
  // With eta close to 1 decay is slow: within a short horizon the slow
  // user never appears (this is the FedCS-like degenerate regime that the
  // ablation bench A3 quantifies).
  const auto users = users_with_delays({{1.0, 0.0}, {50.0, 0.0}});
  GreedyDecaySelector selector(0.5, 0.99);
  for (std::size_t round = 0; round < 100; ++round) {
    const auto selected = selector.select({users});
    EXPECT_EQ(selected[0], 0u);
  }
}

TEST(GreedyDecay, SelectionCountFollowsFraction) {
  const auto users = users_with_delays(
      {{1, 1}, {2, 1}, {3, 1}, {4, 1}, {5, 1}, {6, 1}, {7, 1}, {8, 1}, {9, 1}, {10, 1}});
  GreedyDecaySelector selector(0.3, 0.9);
  EXPECT_EQ(selector.select({users}).size(), 3u);
}

TEST(GreedyDecay, ResetClearsCounters) {
  const auto users = users_with_delays({{1.0, 0.5}, {2.0, 0.5}});
  GreedyDecaySelector selector(0.5, 0.9);
  const auto first = selector.select({users});
  (void)selector.select({users});
  selector.reset();
  EXPECT_TRUE(selector.appearance_counts().empty());
  EXPECT_EQ(selector.select({users}), first);
}

TEST(GreedyDecay, RejectsFleetSizeChange) {
  const auto users_a = users_with_delays({{1.0, 0.5}, {2.0, 0.5}});
  const auto users_b = users_with_delays({{1.0, 0.5}});
  GreedyDecaySelector selector(0.5, 0.9);
  (void)selector.select({users_a});
  EXPECT_THROW(selector.select({users_b}), std::invalid_argument);
}

TEST(GreedyDecay, DeterministicTieBreakByIndex) {
  const auto users = users_with_delays({{1.0, 0.5}, {1.0, 0.5}, {1.0, 0.5}});
  GreedyDecaySelector selector(0.34, 0.9);
  EXPECT_EQ(selector.select({users}), (std::vector<std::size_t>{0}));
}

TEST(GreedyDecay, LongRunParticipationIsBalanced) {
  // Over many rounds the decay equalizes participation: the ratio between
  // the most- and least-selected users stays small.
  std::vector<std::pair<double, double>> delays;
  for (std::size_t i = 0; i < 10; ++i) {
    delays.push_back({0.5 + 0.4 * static_cast<double>(i), 0.5});
  }
  const auto users = users_with_delays(delays);
  GreedyDecaySelector selector(0.2, 0.8);
  for (std::size_t round = 0; round < 500; ++round) (void)selector.select({users});
  const auto counts = selector.appearance_counts();
  const auto [min_it, max_it] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_GT(*min_it, 0u);
  EXPECT_LT(static_cast<double>(*max_it) / static_cast<double>(*min_it), 2.0);
}

}  // namespace
}  // namespace helcfl::core
