#include "data/synthetic_cifar.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.h"
#include "nn/models.h"
#include "nn/optimizer.h"
#include "util/rng.h"

namespace helcfl::data {
namespace {

TEST(SyntheticCifar, ProducesRequestedCounts) {
  SyntheticCifarOptions options;
  options.train_samples = 500;
  options.test_samples = 100;
  util::Rng rng(1);
  const TrainTestSplit split = make_synthetic_cifar(options, rng);
  EXPECT_EQ(split.train.size(), 500u);
  EXPECT_EQ(split.test.size(), 100u);
  EXPECT_EQ(split.train.num_classes(), 10u);
}

TEST(SyntheticCifar, ImageGeometryMatchesOptions) {
  SyntheticCifarOptions options;
  options.channels = 2;
  options.height = 5;
  options.width = 7;
  options.train_samples = 10;
  options.test_samples = 5;
  util::Rng rng(2);
  const TrainTestSplit split = make_synthetic_cifar(options, rng);
  const nn::ImageSpec spec = split.train.spec();
  EXPECT_EQ(spec.channels, 2u);
  EXPECT_EQ(spec.height, 5u);
  EXPECT_EQ(spec.width, 7u);
}

TEST(SyntheticCifar, DeterministicGivenSeed) {
  SyntheticCifarOptions options;
  options.train_samples = 50;
  options.test_samples = 10;
  util::Rng rng_a(3);
  util::Rng rng_b(3);
  const TrainTestSplit a = make_synthetic_cifar(options, rng_a);
  const TrainTestSplit b = make_synthetic_cifar(options, rng_b);
  for (std::size_t i = 0; i < a.train.images().size(); ++i) {
    EXPECT_EQ(a.train.images()[i], b.train.images()[i]);
  }
  EXPECT_TRUE(std::equal(a.train.labels().begin(), a.train.labels().end(),
                         b.train.labels().begin()));
}

TEST(SyntheticCifar, DifferentSeedsDiffer) {
  SyntheticCifarOptions options;
  options.train_samples = 50;
  options.test_samples = 10;
  util::Rng rng_a(4);
  util::Rng rng_b(5);
  const TrainTestSplit a = make_synthetic_cifar(options, rng_a);
  const TrainTestSplit b = make_synthetic_cifar(options, rng_b);
  std::size_t differing = 0;
  for (std::size_t i = 0; i < a.train.images().size(); ++i) {
    if (a.train.images()[i] != b.train.images()[i]) ++differing;
  }
  EXPECT_GT(differing, a.train.images().size() / 2);
}

TEST(SyntheticCifar, AllClassesPresent) {
  SyntheticCifarOptions options;
  options.train_samples = 1000;
  options.test_samples = 10;
  util::Rng rng(6);
  const TrainTestSplit split = make_synthetic_cifar(options, rng);
  for (const std::size_t count : split.train.class_histogram()) {
    EXPECT_GT(count, 50u);  // roughly balanced draws
  }
}

TEST(SyntheticCifar, PixelsAreFinite) {
  SyntheticCifarOptions options;
  options.train_samples = 100;
  options.test_samples = 10;
  util::Rng rng(7);
  const TrainTestSplit split = make_synthetic_cifar(options, rng);
  for (std::size_t i = 0; i < split.train.images().size(); ++i) {
    EXPECT_TRUE(std::isfinite(split.train.images()[i]));
  }
}

TEST(SyntheticCifar, RejectsZeroDimensions) {
  SyntheticCifarOptions options;
  options.channels = 0;
  util::Rng rng(8);
  EXPECT_THROW(make_synthetic_cifar(options, rng), std::invalid_argument);
}

TEST(SyntheticCifar, TaskIsLearnableAboveChance) {
  // A logistic model trained briefly on the full training set must beat
  // chance on the test set by a wide margin — the task carries signal.
  SyntheticCifarOptions options;
  options.train_samples = 1500;
  options.test_samples = 500;
  util::Rng rng(9);
  const TrainTestSplit split = make_synthetic_cifar(options, rng);

  util::Rng model_rng(10);
  auto model = nn::make_logistic(split.train.spec(), options.num_classes, model_rng);
  nn::Sgd sgd({.learning_rate = 0.05F});
  const Batch train = split.train.all();
  for (int step = 0; step < 60; ++step) {
    model->zero_grad();
    const auto logits = model->forward(train.images, true);
    const auto loss = nn::softmax_cross_entropy(logits, train.labels);
    model->backward(loss.grad_logits);
    sgd.step(model->params());
  }
  const Batch test = split.test.all();
  const auto logits = model->forward(test.images, false);
  const double accuracy = static_cast<double>(nn::count_correct(logits, test.labels)) /
                          static_cast<double>(test.labels.size());
  EXPECT_GT(accuracy, 0.35);  // chance is 0.10
}

TEST(SyntheticCifar, LabelNoiseCapsAccuracy) {
  // With label_noise = 0.5, at least ~45% of test labels are re-drawn, so
  // even a perfect classifier stays below ~60%.
  SyntheticCifarOptions options;
  options.train_samples = 200;
  options.test_samples = 2000;
  options.label_noise = 0.5F;
  options.noise_stddev = 0.01F;  // nearly clean pixels
  util::Rng rng(11);
  const TrainTestSplit split = make_synthetic_cifar(options, rng);
  // Count how many test labels disagree with the class that generated the
  // pixels: a classifier cannot beat 1 - that fraction + guessing credit.
  // We can't see the true class directly, but the histogram stays roughly
  // balanced; instead verify that a strong model cannot reach 70%.
  util::Rng model_rng(12);
  auto model = nn::make_logistic(split.train.spec(), options.num_classes, model_rng);
  nn::Sgd sgd({.learning_rate = 0.1F});
  const Batch train = split.train.all();
  for (int step = 0; step < 200; ++step) {
    model->zero_grad();
    const auto logits = model->forward(train.images, true);
    const auto loss = nn::softmax_cross_entropy(logits, train.labels);
    model->backward(loss.grad_logits);
    sgd.step(model->params());
  }
  const Batch test = split.test.all();
  const auto logits = model->forward(test.images, false);
  const double accuracy = static_cast<double>(nn::count_correct(logits, test.labels)) /
                          static_cast<double>(test.labels.size());
  EXPECT_LT(accuracy, 0.70);
}

}  // namespace
}  // namespace helcfl::data
