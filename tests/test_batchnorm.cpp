#include "nn/batchnorm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "gradcheck.h"
#include "nn/serialize.h"

namespace helcfl::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(BatchNorm, RejectsBadConstruction) {
  EXPECT_THROW(BatchNorm(0), std::invalid_argument);
  EXPECT_THROW(BatchNorm(4, -0.1F), std::invalid_argument);
  EXPECT_THROW(BatchNorm(4, 0.1F, 0.0F), std::invalid_argument);
}

TEST(BatchNorm, RejectsWrongFeatureCount) {
  BatchNorm bn(4);
  EXPECT_THROW(bn.forward(Tensor(Shape{2, 3}), true), std::invalid_argument);
  EXPECT_THROW(bn.forward(Tensor(Shape{2, 3, 4, 4}), true), std::invalid_argument);
}

TEST(BatchNorm, RejectsSingleSampleTraining) {
  BatchNorm bn(4);
  EXPECT_THROW(bn.forward(Tensor(Shape{1, 4}), true), std::invalid_argument);
}

TEST(BatchNorm, TrainingOutputIsNormalizedPerFeature) {
  BatchNorm bn(3);
  Tensor x = testing::random_input(Shape{16, 3}, 1);
  // Shift feature 1 far away to prove per-feature normalization.
  for (std::size_t n = 0; n < 16; ++n) x.at(n, 1) += 100.0F;
  const Tensor y = bn.forward(x, true);
  for (std::size_t f = 0; f < 3; ++f) {
    double sum = 0.0;
    double sum_sq = 0.0;
    for (std::size_t n = 0; n < 16; ++n) {
      sum += y.at(n, f);
      sum_sq += static_cast<double>(y.at(n, f)) * y.at(n, f);
    }
    EXPECT_NEAR(sum / 16.0, 0.0, 1e-4);
    EXPECT_NEAR(sum_sq / 16.0, 1.0, 2e-3);  // biased variance, eps slack
  }
}

TEST(BatchNorm, Rank4NormalizesPerChannel) {
  BatchNorm bn(2);
  Tensor x = testing::random_input(Shape{4, 2, 3, 3}, 2);
  const Tensor y = bn.forward(x, true);
  for (std::size_t c = 0; c < 2; ++c) {
    double sum = 0.0;
    std::size_t count = 0;
    for (std::size_t n = 0; n < 4; ++n) {
      for (std::size_t i = 0; i < 9; ++i) {
        sum += y[(n * 2 + c) * 9 + i];
        ++count;
      }
    }
    EXPECT_NEAR(sum / static_cast<double>(count), 0.0, 1e-4);
  }
}

TEST(BatchNorm, GammaBetaApplyAffine) {
  BatchNorm bn(2);
  load_parameters(bn, std::vector<float>{2.0F, 3.0F, 10.0F, -5.0F});  // gamma, beta
  Tensor x(Shape{4, 2});
  for (std::size_t n = 0; n < 4; ++n) {
    x.at(n, 0) = static_cast<float>(n);
    x.at(n, 1) = static_cast<float>(2 * n);
  }
  const Tensor y = bn.forward(x, true);
  double sum0 = 0.0;
  double sum1 = 0.0;
  for (std::size_t n = 0; n < 4; ++n) {
    sum0 += y.at(n, 0);
    sum1 += y.at(n, 1);
  }
  EXPECT_NEAR(sum0 / 4.0, 10.0, 1e-4);  // mean = beta
  EXPECT_NEAR(sum1 / 4.0, -5.0, 1e-4);
}

TEST(BatchNorm, RunningStatsConvergeToBatchStats) {
  BatchNorm bn(1, /*momentum=*/0.5F);
  Tensor x(Shape{8, 1});
  for (std::size_t n = 0; n < 8; ++n) x.at(n, 0) = static_cast<float>(n);  // mean 3.5
  for (int step = 0; step < 30; ++step) (void)bn.forward(x, true);
  EXPECT_NEAR(bn.running_mean()[0], 3.5F, 1e-3F);
  EXPECT_NEAR(bn.running_var()[0], 5.25F, 1e-2F);  // population variance
}

TEST(BatchNorm, InferenceUsesRunningStats) {
  BatchNorm bn(1, 0.5F);
  Tensor x(Shape{8, 1});
  for (std::size_t n = 0; n < 8; ++n) x.at(n, 0) = static_cast<float>(n);
  for (int step = 0; step < 30; ++step) (void)bn.forward(x, true);
  // A single inference sample normalized by the (converged) running stats.
  Tensor one(Shape{1, 1}, {3.5F});
  const Tensor y = bn.forward(one, false);
  EXPECT_NEAR(y[0], 0.0F, 1e-3F);
}

TEST(BatchNorm, InferenceDoesNotTouchRunningStats) {
  BatchNorm bn(2);
  const float mean_before = bn.running_mean()[0];
  (void)bn.forward(testing::random_input(Shape{4, 2}, 3), false);
  EXPECT_EQ(bn.running_mean()[0], mean_before);
}

TEST(BatchNorm, GradientCheckRank2) {
  BatchNorm bn(3);
  testing::check_gradients(bn, testing::random_input(Shape{6, 3}, 4), 1e-3, 3e-2,
                           /*fd_training=*/true);
}

TEST(BatchNorm, GradientCheckRank4) {
  BatchNorm bn(2);
  testing::check_gradients(bn, testing::random_input(Shape{3, 2, 2, 2}, 5), 1e-3,
                           3e-2, /*fd_training=*/true);
}

TEST(BatchNorm, GradInputSumsToZeroPerFeature) {
  // Normalization makes the output invariant to a constant shift of the
  // input, so the input gradient must sum to ~0 within each feature.
  BatchNorm bn(2);
  const Tensor x = testing::random_input(Shape{8, 2}, 6);
  bn.zero_grad();
  (void)bn.forward(x, true);
  util::Rng rng(7);
  Tensor dy(Shape{8, 2});
  dy.fill_uniform(rng, -1.0F, 1.0F);
  const Tensor dx = bn.backward(dy);
  for (std::size_t f = 0; f < 2; ++f) {
    double sum = 0.0;
    for (std::size_t n = 0; n < 8; ++n) sum += dx.at(n, f);
    EXPECT_NEAR(sum, 0.0, 1e-4);
  }
}

TEST(BatchNorm, ParameterLayout) {
  BatchNorm bn(5);
  EXPECT_EQ(parameter_count(bn), 10u);
  EXPECT_EQ(bn.name(), "BatchNorm(5)");
}

}  // namespace
}  // namespace helcfl::nn
