// Numerical gradient checking shared by the layer tests.
//
// Verifies both the input gradient and every parameter gradient of a layer
// against central finite differences of a scalar loss L = sum(w .* y),
// where w is a fixed random weighting (so all output components are
// exercised).
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "nn/layer.h"
#include "util/rng.h"

namespace helcfl::testing {

/// Scalar loss: weighted sum of all outputs.  Returns loss and the gradient
/// dL/dy (= the weights themselves).
inline double weighted_sum(const tensor::Tensor& y, std::span<const float> w) {
  double loss = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) loss += static_cast<double>(w[i]) * y[i];
  return loss;
}

/// Checks dL/dInput and all dL/dParam of `layer` at input `x` by central
/// differences with step `eps`.  `tolerance` is the max allowed absolute
/// error, compared against gradients normalized by max(1, |analytic|).
/// When `fd_training` is true the finite-difference evaluations use
/// training-mode forwards; required for layers whose inference path is a
/// different function (BatchNorm's running statistics).
inline void check_gradients(nn::Layer& layer, tensor::Tensor x, double eps = 1e-3,
                            double tolerance = 2e-2, bool fd_training = false) {
  util::Rng rng(0xC0FFEE);

  // Fixed output weighting.
  tensor::Tensor y0 = layer.forward(x, /*training=*/true);
  std::vector<float> w(y0.size());
  for (auto& v : w) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  // Analytic gradients.
  layer.zero_grad();
  tensor::Tensor y = layer.forward(x, /*training=*/true);
  tensor::Tensor dy(y.shape());
  for (std::size_t i = 0; i < dy.size(); ++i) dy[i] = w[i];
  const tensor::Tensor dx = layer.backward(dy);
  ASSERT_EQ(dx.shape(), x.shape());

  // Finite-difference input gradient.
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float saved = x[i];
    x[i] = saved + static_cast<float>(eps);
    const double plus = weighted_sum(layer.forward(x, fd_training), w);
    x[i] = saved - static_cast<float>(eps);
    const double minus = weighted_sum(layer.forward(x, fd_training), w);
    x[i] = saved;
    const double numeric = (plus - minus) / (2.0 * eps);
    const double denom = std::max(1.0, std::abs(static_cast<double>(dx[i])));
    EXPECT_NEAR(dx[i] / denom, numeric / denom, tolerance)
        << "input gradient mismatch at flat index " << i;
  }

  // Finite-difference parameter gradients.  Each perturbation writes the
  // parameter span directly, bypassing the standard mutation paths, so the
  // layer's prepacked weight panels must be invalidated by hand before
  // every forward (nn/layer.h invalidation contract) — this doubles as
  // coverage that the prepacked forward tracks fresh weights.
  auto params = layer.params();
  for (std::size_t p = 0; p < params.size(); ++p) {
    auto value = params[p].value;
    auto grad = params[p].grad;
    for (std::size_t i = 0; i < value.size(); ++i) {
      const float saved = value[i];
      value[i] = saved + static_cast<float>(eps);
      layer.mark_weights_dirty();
      const double plus = weighted_sum(layer.forward(x, fd_training), w);
      value[i] = saved - static_cast<float>(eps);
      layer.mark_weights_dirty();
      const double minus = weighted_sum(layer.forward(x, fd_training), w);
      value[i] = saved;
      layer.mark_weights_dirty();
      const double numeric = (plus - minus) / (2.0 * eps);
      const double denom = std::max(1.0, std::abs(static_cast<double>(grad[i])));
      EXPECT_NEAR(grad[i] / denom, numeric / denom, tolerance)
          << "param " << p << " gradient mismatch at flat index " << i;
    }
  }
}

/// Random input tensor in [-1, 1].
inline tensor::Tensor random_input(tensor::Shape shape, std::uint64_t seed) {
  util::Rng rng(seed);
  tensor::Tensor x(std::move(shape));
  x.fill_uniform(rng, -1.0F, 1.0F);
  return x;
}

}  // namespace helcfl::testing
