// Tests for svc::SchedulerService: decision parity with a directly-driven
// HelcflScheduler, report dedup, lease expiry/revival, load shedding with
// degraded flagging, exactly-once request processing, malformed-ingress
// tolerance, and snapshot/restore semantics.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "core/helcfl_scheduler.h"
#include "obs/instruments.h"
#include "obs/registry.h"
#include "sched/scheduler.h"
#include "sim/config.h"
#include "sim/fleet.h"
#include "svc/frame.h"
#include "svc/service.h"
#include "util/rng.h"

namespace svc = helcfl::svc;
using namespace helcfl;

namespace {

constexpr std::size_t kQ = 16;

std::vector<sched::UserInfo> make_users(std::size_t q = kQ) {
  sim::ExperimentConfig config = sim::paper_config();
  config.n_users = q;
  util::Rng rng(42);
  const std::vector<std::size_t> samples(q, 40);
  const auto devices = sim::make_fleet(config, samples, rng);
  return sched::build_user_info(devices, sim::make_channel(config), 4e6);
}

svc::ServiceOptions small_options() {
  svc::ServiceOptions options;
  options.fraction = 0.25;  // 4 of 16 selected
  options.eta = 0.9;
  return options;
}

std::vector<std::uint8_t> request_bytes(std::uint64_t seq,
                                        std::uint64_t round) {
  svc::DecisionRequest request;
  request.controller_seq = seq;
  request.round = round;
  return svc::encode_frame(svc::encode(request));
}

std::vector<std::uint8_t> report_bytes(std::uint64_t device,
                                       std::uint64_t seq, double t_cal,
                                       double t_com) {
  svc::DeviceReport report;
  report.device_id = device;
  report.report_seq = seq;
  report.t_cal_max_s = t_cal;
  report.t_com_s = t_com;
  return svc::encode_frame(svc::encode(report));
}

/// Every decoded message in the outbox, split by type.
struct Outbox {
  std::vector<svc::ReportAck> acks;
  std::vector<svc::DecisionResponse> responses;
};

Outbox drain_outbox(svc::SchedulerService& service) {
  Outbox out;
  for (const auto& datagram : service.take_outbox()) {
    std::vector<svc::Frame> frames;
    std::vector<svc::FrameError> errors;
    svc::decode_datagram(datagram, frames, errors);
    EXPECT_TRUE(errors.empty());
    for (const svc::Frame& frame : frames) {
      if (frame.type == svc::MsgType::kReportAck) {
        out.acks.push_back(svc::decode_report_ack(frame.payload));
      } else if (frame.type == svc::MsgType::kDecisionResponse) {
        out.responses.push_back(svc::decode_decision_response(frame.payload));
      } else {
        ADD_FAILURE() << "unexpected outbox frame type";
      }
    }
  }
  return out;
}

/// Runs one request/decision exchange on a healthy wire.
svc::DecisionResponse serve_round(svc::SchedulerService& service,
                                  std::uint64_t seq, std::uint64_t round,
                                  std::uint64_t tick) {
  service.ingest(request_bytes(seq, round), tick);
  service.poll(tick);
  const Outbox out = drain_outbox(service);
  EXPECT_EQ(out.responses.size(), 1u);
  return out.responses.empty() ? svc::DecisionResponse{} : out.responses[0];
}

}  // namespace

TEST(SvcService, BadOptionsAreRejected) {
  const auto users = make_users();
  svc::ServiceOptions options = small_options();
  options.lease_ticks = 0;
  EXPECT_THROW(svc::SchedulerService(users, options), svc::ServiceError);
  options = small_options();
  options.queue_capacity = 0;
  EXPECT_THROW(svc::SchedulerService(users, options), svc::ServiceError);
  options = small_options();
  options.snapshot_every = 4;  // without a path
  EXPECT_THROW(svc::SchedulerService(users, options), svc::ServiceError);
  EXPECT_THROW(svc::SchedulerService({}, small_options()), svc::ServiceError);
}

TEST(SvcService, DecisionsMatchDirectScheduler) {
  const auto users = make_users();
  svc::SchedulerService service(users, small_options());

  core::HelcflOptions helcfl;
  helcfl.fraction = small_options().fraction;
  helcfl.eta = small_options().eta;
  core::HelcflScheduler oracle(helcfl);

  for (std::uint64_t round = 0; round < 12; ++round) {
    const auto response = serve_round(service, round + 1, round, round + 1);
    const sched::Decision expected =
        oracle.decide(sched::FleetView{users}, round);
    EXPECT_EQ(response.selected, expected.selected) << "round " << round;
    EXPECT_EQ(response.frequencies_hz, expected.frequencies_hz);
    EXPECT_EQ(response.round, round);
    EXPECT_FALSE(response.degraded);
  }
  EXPECT_EQ(service.stats().decisions, 12u);
}

TEST(SvcService, DuplicateReportsAreReackedNotReapplied) {
  const auto users = make_users();
  svc::SchedulerService service(users, small_options());
  service.ingest(report_bytes(3, 1, 0.5, 0.25), 1);
  service.ingest(report_bytes(3, 1, 9.0, 9.0), 1);  // dup seq, new values
  service.poll(1);
  const Outbox out = drain_outbox(service);
  ASSERT_EQ(out.acks.size(), 2u);  // both acked so the sender completes
  EXPECT_EQ(service.stats().reports_applied, 1u);
  EXPECT_EQ(service.stats().reports_deduped, 1u);
  // The duplicate's values were discarded: the next decision must see the
  // first report's delays, which serve_round verifies indirectly via the
  // oracle in DecisionsMatchDirectScheduler; here just confirm stats.
}

TEST(SvcService, LeaseExpiryParksAndReportRevives) {
  const auto users = make_users();
  svc::ServiceOptions options = small_options();
  options.lease_ticks = 10;
  svc::SchedulerService service(users, options);

  // No reports: at tick 10 every initial lease lapses.
  service.poll(10);
  EXPECT_EQ(service.stats().leases_expired, kQ);
  for (std::size_t d = 0; d < kQ; ++d) EXPECT_FALSE(service.device_alive(d));

  // A decision over an all-dead fleet selects nobody (and says so).
  const auto empty = serve_round(service, 1, 0, 11);
  EXPECT_TRUE(empty.selected.empty());

  // One valid report revives its sender; the next decision selects it.
  service.ingest(report_bytes(5, 1, users[5].t_cal_max_s, users[5].t_com_s),
                 12);
  service.poll(12);
  EXPECT_TRUE(service.device_alive(5));
  EXPECT_EQ(service.stats().leases_revived, 1u);
  const auto revived = serve_round(service, 2, 1, 13);
  ASSERT_EQ(revived.selected.size(), 1u);  // the only alive device
  EXPECT_EQ(revived.selected[0], 5u);
}

TEST(SvcService, ReportsRefreshDelaysUsedByDecisions) {
  const auto users = make_users();
  svc::SchedulerService service(users, small_options());

  // Update device 0's delays through the protocol, then compare against an
  // oracle whose fleet got the same update directly.
  auto shadow = users;
  shadow[0].t_cal_max_s *= 3.0;
  shadow[0].t_com_s *= 2.0;
  service.ingest(
      report_bytes(0, 1, shadow[0].t_cal_max_s, shadow[0].t_com_s), 1);
  service.poll(1);
  drain_outbox(service);

  core::HelcflOptions helcfl;
  helcfl.fraction = small_options().fraction;
  helcfl.eta = small_options().eta;
  core::HelcflScheduler oracle(helcfl);
  const auto response = serve_round(service, 1, 0, 2);
  const auto expected = oracle.decide(sched::FleetView{shadow}, 0);
  EXPECT_EQ(response.selected, expected.selected);
  EXPECT_EQ(response.frequencies_hz, expected.frequencies_hz);
}

TEST(SvcService, OverflowShedsOldestAndFlagsDegraded) {
  const auto users = make_users();
  svc::ServiceOptions options = small_options();
  options.queue_capacity = 4;
  svc::SchedulerService service(users, options);

  // 6 distinct reports into a 4-deep queue: the 2 oldest are shed.
  for (std::uint64_t d = 0; d < 6; ++d) {
    service.ingest(report_bytes(d, 1, users[d].t_cal_max_s, users[d].t_com_s),
                   1);
  }
  EXPECT_EQ(service.stats().reports_shed, 2u);
  EXPECT_EQ(service.queue_depth(), 4u);

  // The next decision is degraded; the shed senders were never acked.
  const auto degraded = serve_round(service, 1, 0, 2);
  EXPECT_TRUE(degraded.degraded);
  EXPECT_EQ(service.stats().reports_applied, 4u);

  // Once the queue drains and no new shed occurs, the flag clears.
  const auto healthy = serve_round(service, 2, 1, 3);
  EXPECT_FALSE(healthy.degraded);
}

TEST(SvcService, DuplicateRequestGetsCachedResponseBytes) {
  const auto users = make_users();
  svc::SchedulerService service(users, small_options());

  service.ingest(request_bytes(1, 0), 1);
  service.poll(1);
  const auto first = service.take_outbox();
  ASSERT_EQ(first.size(), 1u);

  // Same controller_seq again: the service must NOT re-run selection (α_q
  // would decay twice) — it retransmits the identical cached bytes.
  service.ingest(request_bytes(1, 0), 2);
  service.poll(2);
  const auto second = service.take_outbox();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0], first[0]);
  EXPECT_EQ(service.stats().decisions, 1u);
  EXPECT_EQ(service.stats().responses_retransmitted, 1u);
}

TEST(SvcService, StaleAndGappedRequestsAreDropped) {
  const auto users = make_users();
  svc::SchedulerService service(users, small_options());
  serve_round(service, 1, 0, 1);
  serve_round(service, 2, 1, 2);

  service.ingest(request_bytes(1, 0), 3);  // superseded seq
  service.ingest(request_bytes(9, 7), 3);  // gap the protocol can't produce
  service.poll(3);
  EXPECT_TRUE(drain_outbox(service).responses.empty());
  EXPECT_EQ(service.stats().requests_stale, 2u);
  EXPECT_EQ(service.stats().decisions, 2u);
}

TEST(SvcService, MalformedIngressIsCountedNeverFatal) {
  const auto users = make_users();
  obs::Registry registry;
  obs::Instruments instruments;
  instruments.registry = &registry;
  svc::SchedulerService service(users, small_options(), instruments);

  const std::vector<std::uint8_t> garbage(64, 0xEE);
  service.ingest(garbage, 1);                           // no magic at all
  service.ingest(report_bytes(kQ + 5, 1, 0.5, 0.25), 1);  // unknown device
  service.ingest(report_bytes(2, 1, -1.0, 0.25), 1);      // negative delay
  service.ingest(report_bytes(2, 0, 0.5, 0.25), 1);       // zero seq
  auto torn = request_bytes(1, 0);
  torn.resize(torn.size() - 3);
  service.ingest(torn, 1);

  service.poll(1);
  EXPECT_GE(service.stats().frames_rejected, 2u);  // garbage + torn
  EXPECT_EQ(service.stats().reports_invalid, 3u);
  EXPECT_EQ(service.stats().reports_applied, 0u);
  EXPECT_EQ(registry.counter("svc.frames_rejected"),
            service.stats().frames_rejected);
  EXPECT_EQ(registry.counter("svc.reports_invalid"), 3u);

  // The service still works after all that abuse.
  const auto response = serve_round(service, 1, 0, 2);
  EXPECT_FALSE(response.selected.empty());
}

TEST(SvcService, SnapshotRestoreContinuesIdentically) {
  const auto users = make_users();
  svc::SchedulerService a(users, small_options());
  for (std::uint64_t round = 0; round < 5; ++round) {
    serve_round(a, round + 1, round, round + 1);
  }
  // Mid-flight state: a queued report and a staged request survive too.
  a.ingest(report_bytes(7, 1, users[7].t_cal_max_s * 2, users[7].t_com_s), 6);
  a.ingest(request_bytes(6, 5), 6);
  const auto image = a.snapshot();

  svc::SchedulerService b(users, small_options());
  b.restore(image);
  EXPECT_EQ(b.snapshot(), image);  // snapshot(restore(x)) == x

  // Both services answer the staged request and five more rounds with
  // byte-identical outboxes.
  a.poll(7);
  b.poll(7);
  EXPECT_EQ(a.take_outbox(), b.take_outbox());
  for (std::uint64_t round = 6; round < 11; ++round) {
    const auto ra = serve_round(a, round + 1, round, round + 2);
    const auto rb = serve_round(b, round + 1, round, round + 2);
    EXPECT_EQ(ra.selected, rb.selected) << "round " << round;
    EXPECT_EQ(ra.frequencies_hz, rb.frequencies_hz);
  }
}

TEST(SvcService, RestoreRejectsCorruptionAndMismatch) {
  const auto users = make_users();
  svc::SchedulerService service(users, small_options());
  serve_round(service, 1, 0, 1);
  const auto image = service.snapshot();

  // Truncated header and torn payload.
  svc::SchedulerService victim(users, small_options());
  std::vector<std::uint8_t> tiny(image.begin(), image.begin() + 10);
  EXPECT_THROW(victim.restore(tiny), svc::ServiceError);
  std::vector<std::uint8_t> torn(image.begin(), image.end() - 4);
  EXPECT_THROW(victim.restore(torn), svc::ServiceError);

  // One flipped payload byte must fail the checksum.
  auto corrupt = image;
  corrupt[corrupt.size() - 1] ^= 0x01;
  EXPECT_THROW(victim.restore(corrupt), svc::ServiceError);

  // Restoring onto a differently-configured service fails the config echo.
  svc::ServiceOptions other = small_options();
  other.fraction = 0.5;
  svc::SchedulerService mismatched(users, other);
  EXPECT_THROW(mismatched.restore(image), svc::ServiceError);

  // A failed restore leaves the victim fully functional and unchanged.
  const auto response = serve_round(victim, 1, 0, 2);
  EXPECT_FALSE(response.selected.empty());
}

TEST(SvcService, AutosnapshotWritesEveryNthDecision) {
  const auto users = make_users();
  svc::ServiceOptions options = small_options();
  options.snapshot_every = 2;
  options.snapshot_path = ::testing::TempDir() + "svc_auto_snapshot.bin";
  svc::SchedulerService service(users, options);
  for (std::uint64_t round = 0; round < 4; ++round) {
    serve_round(service, round + 1, round, round + 1);
  }
  EXPECT_EQ(service.stats().snapshots_written, 2u);

  // The file on disk restores into a service that matches the live one.
  svc::SchedulerService recovered(users, options);
  recovered.restore_file(options.snapshot_path);
  const auto ra = serve_round(service, 5, 4, 10);
  const auto rb = serve_round(recovered, 5, 4, 10);
  EXPECT_EQ(ra.selected, rb.selected);
  EXPECT_EQ(ra.frequencies_hz, rb.frequencies_hz);
}
