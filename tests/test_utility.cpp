#include "core/utility.h"

#include <gtest/gtest.h>

#include <cmath>

namespace helcfl::core {
namespace {

TEST(Utility, Eq20Formula) {
  // u = eta^alpha / (t_cal + t_com).
  EXPECT_DOUBLE_EQ(utility(0, 1.0, 1.0, 0.9), 0.5);
  EXPECT_DOUBLE_EQ(utility(1, 1.0, 1.0, 0.9), 0.45);
  EXPECT_DOUBLE_EQ(utility(2, 2.0, 2.0, 0.5), 0.25 / 4.0);
}

TEST(Utility, ZeroAppearancesIsInverseDelay) {
  EXPECT_DOUBLE_EQ(utility(0, 0.7, 1.3, 0.5), 1.0 / 2.0);
}

TEST(Utility, DecreasesWithAppearances) {
  double prev = utility(0, 1.0, 0.5, 0.9);
  for (std::size_t a = 1; a < 20; ++a) {
    const double u = utility(a, 1.0, 0.5, 0.9);
    EXPECT_LT(u, prev);
    prev = u;
  }
}

TEST(Utility, DecreasesWithDelay) {
  EXPECT_GT(utility(0, 0.5, 0.5, 0.9), utility(0, 1.0, 0.5, 0.9));
  EXPECT_GT(utility(0, 0.5, 0.5, 0.9), utility(0, 0.5, 1.0, 0.9));
}

TEST(Utility, GeometricDecayRatio) {
  const double eta = 0.8;
  for (std::size_t a = 0; a < 10; ++a) {
    EXPECT_NEAR(utility(a + 1, 1.0, 1.0, eta) / utility(a, 1.0, 1.0, eta), eta,
                1e-12);
  }
}

TEST(Utility, RejectsBadEta) {
  EXPECT_THROW(utility(0, 1.0, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(utility(0, 1.0, 1.0, -0.5), std::invalid_argument);
  EXPECT_THROW(utility(0, 1.0, 1.0, 1.5), std::invalid_argument);
  EXPECT_THROW(utility(0, 1.0, 1.0, std::nextafter(1.0, 2.0)),
               std::invalid_argument);
}

TEST(Utility, EtaOneDisablesDecay) {
  // The tie-heavy degenerate regime: u_q = 1/delay for every alpha_q.
  for (std::size_t a = 0; a < 100; a += 7) {
    EXPECT_EQ(utility(a, 1.5, 0.5, 1.0), 0.5);
  }
}

TEST(Utility, RejectsNonPositiveDelay) {
  EXPECT_THROW(utility(0, 0.0, 0.0, 0.9), std::invalid_argument);
  EXPECT_THROW(utility(0, -1.0, 0.5, 0.9), std::invalid_argument);
}

TEST(SelectionsUntilOvertaken, FastUserEventuallyDropsBelowSlow) {
  // fast 1s vs slow 4s with eta = 0.9: need eta^a < 1/4,
  // a > ln(0.25)/ln(0.9) = 13.16 -> 14 selections.
  const std::size_t a = selections_until_overtaken(1.0, 4.0, 0.9);
  EXPECT_EQ(a, 14u);
  // Verify the boundary: after a selections the fast user is below.
  EXPECT_LT(utility(a, 1.0, 0.0, 0.9), utility(0, 4.0, 0.0, 0.9));
  EXPECT_GE(utility(a - 1, 1.0, 0.0, 0.9), utility(0, 4.0, 0.0, 0.9));
}

TEST(SelectionsUntilOvertaken, EqualDelaysNeedOneSelection) {
  EXPECT_EQ(selections_until_overtaken(2.0, 2.0, 0.9), 1u);
}

TEST(SelectionsUntilOvertaken, SmallerEtaOvertakesSooner) {
  EXPECT_LT(selections_until_overtaken(1.0, 6.0, 0.5),
            selections_until_overtaken(1.0, 6.0, 0.95));
}

TEST(SelectionsUntilOvertaken, RejectsBadArguments) {
  EXPECT_THROW(selections_until_overtaken(1.0, 2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(selections_until_overtaken(0.0, 2.0, 0.9), std::invalid_argument);
  EXPECT_THROW(selections_until_overtaken(3.0, 2.0, 0.9), std::invalid_argument);
}

class UtilityEtaSweep : public ::testing::TestWithParam<double> {};

TEST_P(UtilityEtaSweep, AlwaysPositiveAndDecaying) {
  const double eta = GetParam();
  double prev = utility(0, 0.8, 0.4, eta);
  EXPECT_GT(prev, 0.0);
  for (std::size_t a = 1; a <= 50; ++a) {
    const double u = utility(a, 0.8, 0.4, eta);
    EXPECT_GT(u, 0.0);
    EXPECT_LT(u, prev);
    prev = u;
  }
}

INSTANTIATE_TEST_SUITE_P(EtaRange, UtilityEtaSweep,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9, 0.99));

}  // namespace
}  // namespace helcfl::core
