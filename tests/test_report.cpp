#include "sim/report.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace helcfl::sim {
namespace {

fl::TrainingHistory sample_history() {
  fl::TrainingHistory h;
  for (std::size_t round = 0; round < 4; ++round) {
    fl::RoundRecord r;
    r.round = round;
    r.cum_delay_s = 10.0 * static_cast<double>(round + 1);
    r.cum_energy_j = 5.0 * static_cast<double>(round + 1);
    r.train_loss = 2.0 - 0.3 * static_cast<double>(round);
    r.evaluated = round % 2 == 0;
    r.test_loss = 1.5 - 0.2 * static_cast<double>(round);
    r.test_accuracy = 0.2 * static_cast<double>(round + 1);
    h.add(r);
  }
  return h;
}

TEST(Report, FormatMinutes) {
  EXPECT_EQ(format_minutes(409.2), "6.82min");
  EXPECT_EQ(format_minutes(60.0), "1.00min");
  EXPECT_EQ(format_minutes(0.0), "0.00min");
}

TEST(Report, FormatMinutesOrX) {
  EXPECT_EQ(format_minutes_or_x(std::nullopt), "X");
  EXPECT_EQ(format_minutes_or_x(120.0), "2.00min");
}

TEST(Report, FormatJoules) {
  EXPECT_EQ(format_joules(123.456), "123.46J");
  EXPECT_EQ(format_joules_or_x(std::nullopt), "X");
  EXPECT_EQ(format_joules_or_x(1.0), "1.00J");
}

TEST(Report, FormatPercent) {
  EXPECT_EQ(format_percent(0.8731), "87.31%");
  EXPECT_EQ(format_percent(1.0), "100.00%");
}

TEST(Report, AccuracyAtRoundUsesLastEvaluation) {
  const fl::TrainingHistory h = sample_history();
  // Rounds 0 and 2 evaluated with accuracies 0.2 and 0.6.
  EXPECT_DOUBLE_EQ(accuracy_at_round(h, 0), 0.2);
  EXPECT_DOUBLE_EQ(accuracy_at_round(h, 1), 0.2);  // carries forward
  EXPECT_DOUBLE_EQ(accuracy_at_round(h, 2), 0.6);
  EXPECT_DOUBLE_EQ(accuracy_at_round(h, 3), 0.6);
  EXPECT_DOUBLE_EQ(accuracy_at_round(h, 100), 0.6);
}

TEST(Report, AccuracyAtRoundNanWhenNothingEvaluated) {
  fl::TrainingHistory h;
  fl::RoundRecord r;
  r.round = 0;
  h.add(r);
  EXPECT_TRUE(std::isnan(accuracy_at_round(h, 0)));
}

TEST(Report, WriteHistoryCsvRoundTrips) {
  const std::string path = ::testing::TempDir() + "/helcfl_report_test.csv";
  write_history_csv(path, sample_history());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line,
            "round,cum_delay_s,cum_energy_j,train_loss,survivors,crashed,"
            "upload_failures,dropped_late,retries,quorum_failed,wasted_energy_j,"
            "test_loss,test_accuracy");
  std::size_t rows = 0;
  std::size_t rows_with_eval = 0;
  while (std::getline(in, line)) {
    ++rows;
    // Unevaluated rounds leave the test columns empty (trailing ",,").
    if (line.back() != ',') ++rows_with_eval;
  }
  EXPECT_EQ(rows, 4u);
  EXPECT_EQ(rows_with_eval, 2u);
  std::remove(path.c_str());
}

TEST(Report, PrintAccuracyCurvesDoesNotCrash) {
  const std::string labels[] = {"A", "B"};
  const fl::TrainingHistory histories[] = {sample_history(), sample_history()};
  print_accuracy_curves(labels, histories, 4);
  // Mismatched sizes are a silent no-op.
  print_accuracy_curves(std::span<const std::string>(labels, 1), histories, 4);
}

}  // namespace
}  // namespace helcfl::sim
