#include "data/partition.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "util/rng.h"

namespace helcfl::data {
namespace {

std::vector<std::int32_t> cyclic_labels(std::size_t n, std::int32_t classes) {
  std::vector<std::int32_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) labels[i] = static_cast<std::int32_t>(i) % classes;
  return labels;
}

TEST(IidPartition, ExactCover) {
  util::Rng rng(1);
  const Partition p = iid_partition(1000, 100, rng);
  EXPECT_EQ(p.size(), 100u);
  EXPECT_TRUE(is_exact_cover(p, 1000));
}

TEST(IidPartition, EvenSizes) {
  util::Rng rng(2);
  const Partition p = iid_partition(1000, 100, rng);
  for (const auto& slice : p) EXPECT_EQ(slice.size(), 10u);
}

TEST(IidPartition, RemainderSpreadOverFirstUsers) {
  util::Rng rng(3);
  const Partition p = iid_partition(103, 10, rng);
  for (std::size_t u = 0; u < 10; ++u) {
    EXPECT_EQ(p[u].size(), u < 3 ? 11u : 10u);
  }
  EXPECT_TRUE(is_exact_cover(p, 103));
}

TEST(IidPartition, SingleUserGetsEverything) {
  util::Rng rng(4);
  const Partition p = iid_partition(50, 1, rng);
  EXPECT_EQ(p[0].size(), 50u);
}

TEST(IidPartition, ZeroUsersThrows) {
  util::Rng rng(5);
  EXPECT_THROW(iid_partition(10, 0, rng), std::invalid_argument);
}

TEST(IidPartition, IsShuffled) {
  util::Rng rng(6);
  const Partition p = iid_partition(1000, 2, rng);
  // First user's slice should not be {0..499}.
  auto sorted = p[0];
  std::sort(sorted.begin(), sorted.end());
  EXPECT_NE(p[0], sorted);
}

TEST(IidPartition, UsersSeeMostClassesOnAverage) {
  util::Rng rng(7);
  const auto labels = cyclic_labels(4000, 10);
  const Partition p = iid_partition(4000, 100, rng);
  const auto coverage = classes_per_user(p, labels, 10);
  const double avg = std::accumulate(coverage.begin(), coverage.end(), 0.0) / 100.0;
  EXPECT_GT(avg, 8.0);
}

TEST(ShardPartition, ExactCover) {
  util::Rng rng(8);
  const auto labels = cyclic_labels(4000, 10);
  const Partition p = shard_noniid_partition(labels, 100, 4, rng);
  EXPECT_EQ(p.size(), 100u);
  EXPECT_TRUE(is_exact_cover(p, 4000));
}

TEST(ShardPartition, PaperGeometry400Shards) {
  // 100 users x 4 shards = the paper's "400 pieces, each four assigned".
  util::Rng rng(9);
  const auto labels = cyclic_labels(4000, 10);
  const Partition p = shard_noniid_partition(labels, 100, 4, rng);
  for (const auto& slice : p) EXPECT_EQ(slice.size(), 40u);
}

TEST(ShardPartition, UsersSeeFewClasses) {
  util::Rng rng(10);
  const auto labels = cyclic_labels(4000, 10);
  const Partition p = shard_noniid_partition(labels, 100, 4, rng);
  const auto coverage = classes_per_user(p, labels, 10);
  const double avg = std::accumulate(coverage.begin(), coverage.end(), 0.0) / 100.0;
  EXPECT_LT(avg, 6.0);  // each user holds at most ~4-5 of 10 classes
  for (const auto c : coverage) EXPECT_GE(c, 1u);
}

TEST(ShardPartition, ShardsAreLabelContiguous) {
  util::Rng rng(11);
  // Sorted labels: shard partition with 1 shard per user over 10 users and
  // 10 one-class groups puts exactly one class per user.
  std::vector<std::int32_t> labels(100);
  for (std::size_t i = 0; i < 100; ++i) labels[i] = static_cast<std::int32_t>(i / 10);
  const Partition p = shard_noniid_partition(labels, 10, 1, rng);
  const auto coverage = classes_per_user(p, labels, 10);
  for (const auto c : coverage) EXPECT_EQ(c, 1u);
}

TEST(ShardPartition, MoreShardsThanSamplesThrows) {
  util::Rng rng(12);
  const auto labels = cyclic_labels(10, 2);
  EXPECT_THROW(shard_noniid_partition(labels, 10, 4, rng), std::invalid_argument);
}

TEST(ShardPartition, ZeroArgsThrow) {
  util::Rng rng(13);
  const auto labels = cyclic_labels(100, 10);
  EXPECT_THROW(shard_noniid_partition(labels, 0, 4, rng), std::invalid_argument);
  EXPECT_THROW(shard_noniid_partition(labels, 10, 0, rng), std::invalid_argument);
}

TEST(DirichletPartition, ExactCover) {
  util::Rng rng(14);
  const auto labels = cyclic_labels(2000, 10);
  const Partition p = dirichlet_partition(labels, 50, 10, 0.5, rng);
  EXPECT_EQ(p.size(), 50u);
  EXPECT_TRUE(is_exact_cover(p, 2000));
}

TEST(DirichletPartition, SmallAlphaIsMoreSkewedThanLarge) {
  const auto labels = cyclic_labels(5000, 10);
  util::Rng rng_small(15);
  util::Rng rng_large(15);
  const Partition skewed = dirichlet_partition(labels, 50, 10, 0.05, rng_small);
  const Partition smooth = dirichlet_partition(labels, 50, 10, 100.0, rng_large);
  const auto cov_skewed = classes_per_user(skewed, labels, 10);
  const auto cov_smooth = classes_per_user(smooth, labels, 10);
  const double avg_skewed =
      std::accumulate(cov_skewed.begin(), cov_skewed.end(), 0.0) / 50.0;
  const double avg_smooth =
      std::accumulate(cov_smooth.begin(), cov_smooth.end(), 0.0) / 50.0;
  EXPECT_LT(avg_skewed, avg_smooth);
}

TEST(DirichletPartition, RejectsBadAlpha) {
  util::Rng rng(16);
  const auto labels = cyclic_labels(100, 10);
  EXPECT_THROW(dirichlet_partition(labels, 10, 10, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(dirichlet_partition(labels, 10, 10, -1.0, rng), std::invalid_argument);
}

TEST(IsExactCover, DetectsMissingAndDuplicate) {
  Partition missing = {{0, 1}, {3}};
  EXPECT_FALSE(is_exact_cover(missing, 4));
  Partition duplicate = {{0, 1}, {1, 2, 3}};
  EXPECT_FALSE(is_exact_cover(duplicate, 4));
  Partition out_of_range = {{0, 1}, {2, 4}};
  EXPECT_FALSE(is_exact_cover(out_of_range, 4));
  Partition good = {{0, 3}, {1, 2}};
  EXPECT_TRUE(is_exact_cover(good, 4));
}

}  // namespace
}  // namespace helcfl::data
