#include "mec/device.h"

#include <gtest/gtest.h>

namespace helcfl::mec {
namespace {

Device paper_device() {
  Device d;
  d.id = 3;
  d.f_min_hz = 0.3e9;
  d.f_max_hz = 2.0e9;
  d.switched_capacitance = 2e-28;
  d.cycles_per_sample = 1e7;
  d.num_samples = 40;
  d.tx_power_w = 0.2;
  d.channel_gain_sq = 1e-7;
  return d;
}

TEST(Device, TotalCycles) {
  const Device d = paper_device();
  EXPECT_DOUBLE_EQ(d.total_cycles(), 1e7 * 40);
}

TEST(Device, TotalCyclesZeroSamples) {
  Device d = paper_device();
  d.num_samples = 0;
  EXPECT_DOUBLE_EQ(d.total_cycles(), 0.0);
}

TEST(Device, ClampWithinRangeIsIdentity) {
  const Device d = paper_device();
  EXPECT_DOUBLE_EQ(d.clamp_frequency(1.0e9), 1.0e9);
}

TEST(Device, ClampBelowMin) {
  const Device d = paper_device();
  EXPECT_DOUBLE_EQ(d.clamp_frequency(0.1e9), 0.3e9);
}

TEST(Device, ClampAboveMax) {
  const Device d = paper_device();
  EXPECT_DOUBLE_EQ(d.clamp_frequency(5.0e9), 2.0e9);
}

TEST(Device, ClampAtBounds) {
  const Device d = paper_device();
  EXPECT_DOUBLE_EQ(d.clamp_frequency(0.3e9), 0.3e9);
  EXPECT_DOUBLE_EQ(d.clamp_frequency(2.0e9), 2.0e9);
}

TEST(Device, ValidDevice) {
  EXPECT_TRUE(paper_device().is_valid());
}

TEST(Device, InvalidFrequencyRange) {
  Device d = paper_device();
  d.f_max_hz = 0.1e9;  // below f_min
  EXPECT_FALSE(d.is_valid());
  d = paper_device();
  d.f_min_hz = 0.0;
  EXPECT_FALSE(d.is_valid());
}

TEST(Device, InvalidPhysicalConstants) {
  Device d = paper_device();
  d.switched_capacitance = 0.0;
  EXPECT_FALSE(d.is_valid());
  d = paper_device();
  d.cycles_per_sample = -1.0;
  EXPECT_FALSE(d.is_valid());
  d = paper_device();
  d.tx_power_w = 0.0;
  EXPECT_FALSE(d.is_valid());
  d = paper_device();
  d.channel_gain_sq = 0.0;
  EXPECT_FALSE(d.is_valid());
}

TEST(Device, DegenerateRangeIsValid) {
  Device d = paper_device();
  d.f_max_hz = d.f_min_hz;
  EXPECT_TRUE(d.is_valid());
  EXPECT_DOUBLE_EQ(d.clamp_frequency(1e9), d.f_min_hz);
}

TEST(Device, ToStringMentionsId) {
  const std::string s = paper_device().to_string();
  EXPECT_NE(s.find("id=3"), std::string::npos);
}

}  // namespace
}  // namespace helcfl::mec
