#include "sched/random_selection.h"

#include <gtest/gtest.h>

#include <set>

#include "fl_fixtures.h"

namespace helcfl::sched {
namespace {

std::vector<UserInfo> fleet_of(std::size_t n) {
  const auto devices = testing::linear_fleet(n, 20);
  return build_user_info(devices, testing::paper_channel(), 4e6);
}

TEST(RandomSelection, SelectsRequestedFraction) {
  const auto users = fleet_of(100);
  RandomSelection strategy(0.1, util::Rng(1));
  const Decision d = strategy.decide({users}, 0);
  EXPECT_EQ(d.selected.size(), 10u);
  EXPECT_EQ(d.frequencies_hz.size(), 10u);
}

TEST(RandomSelection, SelectionsAreDistinct) {
  const auto users = fleet_of(50);
  RandomSelection strategy(0.2, util::Rng(2));
  const Decision d = strategy.decide({users}, 0);
  const std::set<std::size_t> unique(d.selected.begin(), d.selected.end());
  EXPECT_EQ(unique.size(), d.selected.size());
}

TEST(RandomSelection, RunsAtMaxFrequency) {
  const auto users = fleet_of(20);
  RandomSelection strategy(0.25, util::Rng(3));
  const Decision d = strategy.decide({users}, 0);
  for (std::size_t k = 0; k < d.selected.size(); ++k) {
    EXPECT_DOUBLE_EQ(d.frequencies_hz[k], users[d.selected[k]].device.f_max_hz);
  }
}

TEST(RandomSelection, VariesAcrossRounds) {
  const auto users = fleet_of(100);
  RandomSelection strategy(0.1, util::Rng(4));
  const Decision d0 = strategy.decide({users}, 0);
  const Decision d1 = strategy.decide({users}, 1);
  EXPECT_NE(d0.selected, d1.selected);
}

TEST(RandomSelection, CoverageIsUnbiasedOverManyRounds) {
  const auto users = fleet_of(20);
  RandomSelection strategy(0.25, util::Rng(5));
  std::vector<std::size_t> counts(20, 0);
  const int rounds = 4000;
  for (int round = 0; round < rounds; ++round) {
    for (const auto i : strategy.decide({users}, round).selected) ++counts[i];
  }
  // Expected 1000 selections each.
  for (const auto c : counts) {
    EXPECT_NEAR(static_cast<double>(c), 1000.0, 80.0);
  }
}

TEST(RandomSelection, ResetReplaysSameSequence) {
  const auto users = fleet_of(30);
  RandomSelection strategy(0.2, util::Rng(6));
  const Decision first = strategy.decide({users}, 0);
  (void)strategy.decide({users}, 1);
  strategy.reset();
  const Decision replay = strategy.decide({users}, 0);
  EXPECT_EQ(first.selected, replay.selected);
}

TEST(RandomSelection, NameIsClassicFL) {
  RandomSelection strategy(0.1, util::Rng(7));
  EXPECT_EQ(strategy.name(), "ClassicFL");
}

TEST(RandomSelection, SingleUserFleet) {
  const auto users = fleet_of(1);
  RandomSelection strategy(0.1, util::Rng(8));
  const Decision d = strategy.decide({users}, 0);
  EXPECT_EQ(d.selected, (std::vector<std::size_t>{0}));
}

}  // namespace
}  // namespace helcfl::sched
