// The differential harness that carries the correctness of the incremental
// utility index (DESIGN.md §12): the index-backed GreedyDecaySelector and
// the retained naive re-sort (GreedyDecayReference) are driven through
// thousands of seed-generated randomized rounds — decay, revocation,
// fault-completion patterns, battery depletion/revival, delay reports,
// mid-run serialization — and must agree pick-for-pick, rank-for-rank,
// utility-bit-for-bit, and counter-for-counter after every round.
//
// Any mismatch prints the scenario seed so the exact sequence reproduces
// with  --gtest_filter=...  HELCFL_DIFF_SEED=<seed>.
//
// Depth: the default run executes >= 2000 randomized rounds (the
// acceptance floor).  Setting HELCFL_DIFF_DEEP=1 — the `slow`-labelled
// ctest registration CI runs — multiplies the scenario count and raises
// the fleet-size ceiling.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/greedy_decay_reference.h"
#include "core/utility.h"
#include "core/greedy_decay_selection.h"
#include "fl_fixtures.h"
#include "util/rng.h"
#include "util/serial.h"

namespace helcfl::core {
namespace {

bool deep_mode() {
  const char* deep = std::getenv("HELCFL_DIFF_DEEP");
  return deep != nullptr && deep[0] == '1';
}

// One randomized scenario configuration, derived entirely from `seed`.
struct Scenario {
  std::uint64_t seed = 0;
  std::size_t q = 0;          // fleet size
  double fraction = 0.0;      // selection fraction C
  double eta = 0.0;           // decay coefficient (1.0 = tie-heavy regime)
  std::size_t rounds = 0;
  double depletion_rate = 0.0;   // alive 1 -> 0 per user per round
  double revival_rate = 0.0;     // alive 0 -> 1 per user per round
  double fault_rate = 0.0;       // selected user fails -> revoke
  double delay_report_rate = 0.0;  // per-round chance of a delay report
  bool tie_prone_delays = false;   // draw delays from a tiny discrete set

  std::string describe() const {
    std::ostringstream out;
    out << "seed=" << seed << " Q=" << q << " C=" << fraction << " eta=" << eta
        << " rounds=" << rounds << " depletion=" << depletion_rate
        << " revival=" << revival_rate << " faults=" << fault_rate
        << " delay_reports=" << delay_report_rate
        << " tie_prone=" << tie_prone_delays;
    return out.str();
  }
};

Scenario make_scenario(std::uint64_t seed, std::size_t max_q) {
  util::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  Scenario s;
  s.seed = seed;
  // Bias toward tiny fleets (edge cases live there) but sweep up to max_q.
  s.q = rng.bernoulli(0.4)
            ? static_cast<std::size_t>(rng.uniform_int(1, 8))
            : static_cast<std::size_t>(
                  rng.uniform_int(9, static_cast<std::int64_t>(max_q)));
  s.fraction = rng.bernoulli(0.2) ? 1.0 : rng.uniform(0.05, 0.9);
  // Cover the full eta domain with extra mass on the tie-heavy eta = 1.
  const double eta_draw = rng.uniform();
  if (eta_draw < 0.25) {
    s.eta = 1.0;
  } else if (eta_draw < 0.5) {
    s.eta = 0.5;  // exact-power ties with power-of-two delays
  } else {
    s.eta = rng.uniform(0.05, 0.999);
  }
  s.rounds = static_cast<std::size_t>(rng.uniform_int(20, 60));
  s.depletion_rate = rng.bernoulli(0.5) ? rng.uniform(0.0, 0.3) : 0.0;
  s.revival_rate = rng.uniform(0.1, 0.6);
  s.fault_rate = rng.bernoulli(0.5) ? rng.uniform(0.0, 0.5) : 0.0;
  s.delay_report_rate = rng.bernoulli(0.4) ? rng.uniform(0.0, 0.4) : 0.0;
  s.tie_prone_delays = rng.bernoulli(0.5);
  return s;
}

// Delays drawn either from a tiny discrete set (forcing utility ties, the
// stable-sort tie-break regime) or continuously.
double draw_delay(util::Rng& rng, bool tie_prone) {
  if (tie_prone) {
    static constexpr double kChoices[] = {0.5, 1.0, 1.0, 2.0, 2.0, 4.0};
    return kChoices[rng.uniform_int(0, 5)];
  }
  return rng.uniform(0.2, 8.0);
}

// Runs one scenario, accumulating the number of rounds executed into
// `executed` (void so ASSERT_* can abort it; the caller checks
// HasFatalFailure).  All failures carry the scenario description for
// seed-driven reproduction.
void run_scenario(const Scenario& s, std::size_t& executed) {
  SCOPED_TRACE("reproduce with: " + s.describe());
  util::Rng rng(s.seed);

  std::vector<sched::UserInfo> users;
  users.reserve(s.q);
  for (std::size_t i = 0; i < s.q; ++i) {
    sched::UserInfo info;
    info.device = testing::make_device(i, 2.0, 20);
    info.t_cal_max_s = draw_delay(rng, s.tie_prone_delays);
    info.t_com_s = draw_delay(rng, s.tie_prone_delays) * 0.25;
    users.push_back(info);
  }
  std::vector<std::uint8_t> alive(s.q, 1);

  GreedyDecaySelector index_selector(s.fraction, s.eta);
  GreedyDecayReference reference(s.fraction, s.eta);

  std::vector<SelectionTraceEntry> index_trace;
  std::vector<SelectionTraceEntry> reference_trace;
  for (std::size_t round = 0; round < s.rounds; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));

    // Battery / churn evolution (skipped on round 0 so every scenario
    // exercises at least one all-alive round).
    if (round > 0) {
      for (std::size_t i = 0; i < s.q; ++i) {
        if (alive[i] != 0 && rng.bernoulli(s.depletion_rate)) alive[i] = 0;
        else if (alive[i] == 0 && rng.bernoulli(s.revival_rate)) alive[i] = 1;
      }
    }

    // Delay reports: a few users re-report T^cal/T^com before the round.
    if (round > 0 && rng.bernoulli(s.delay_report_rate)) {
      const std::size_t n_reports =
          static_cast<std::size_t>(rng.uniform_int(1, static_cast<std::int64_t>(s.q)));
      for (const std::size_t i : rng.sample_without_replacement(s.q, n_reports)) {
        users[i].t_cal_max_s = draw_delay(rng, s.tie_prone_delays);
        users[i].t_com_s = draw_delay(rng, s.tie_prone_delays) * 0.25;
      }
    }

    const sched::FleetView fleet{users, alive};
    const std::vector<std::size_t> picks_index =
        index_selector.select(fleet, &index_trace);
    const std::vector<std::size_t> picks_reference =
        reference.select(fleet, &reference_trace);
    ++executed;

    // Pick-for-pick: same users in the same rank order.
    ASSERT_EQ(picks_index, picks_reference);
    // Rank-for-rank and utility-bit-for-bit (EXPECT_EQ on double is exact
    // equality, not tolerance).
    ASSERT_EQ(index_trace.size(), reference_trace.size());
    for (std::size_t k = 0; k < index_trace.size(); ++k) {
      EXPECT_EQ(index_trace[k].user, reference_trace[k].user) << "rank " << k;
      EXPECT_EQ(index_trace[k].rank, reference_trace[k].rank) << "rank " << k;
      EXPECT_EQ(index_trace[k].utility, reference_trace[k].utility) << "rank " << k;
      EXPECT_EQ(index_trace[k].appearances, reference_trace[k].appearances)
          << "rank " << k;
    }

    // Fault-completion pattern: failed participants get their appearance
    // revoked on both selectors (HelcflScheduler::report_completion).
    for (const std::size_t user : picks_index) {
      if (rng.bernoulli(s.fault_rate)) {
        index_selector.revoke_appearance(user);
        reference.revoke_appearance(user);
      }
    }

    // Post-round alpha_q agreement, every round.
    const auto counts_index = index_selector.appearance_counts();
    const auto counts_reference = reference.appearance_counts();
    ASSERT_EQ(counts_index.size(), counts_reference.size());
    for (std::size_t i = 0; i < counts_index.size(); ++i) {
      ASSERT_EQ(counts_index[i], counts_reference[i]) << "alpha of user " << i;
    }

    // Occasionally push the index selector through its serialization path
    // mid-run: save, reload into a fresh instance, continue.  Divergence
    // after this point would indicate the frame loses index state.
    if (rng.bernoulli(0.05)) {
      util::ByteWriter saved;
      index_selector.save_state(saved);
      GreedyDecaySelector reloaded(s.fraction, s.eta);
      util::ByteReader reader(saved.data());
      reloaded.load_state(reader);
      reader.expect_end("differential selector frame");
      index_selector = std::move(reloaded);
    }
  }
}

TEST(SelectionDifferential, RandomizedRoundsAgreeExactly) {
  const bool deep = deep_mode();
  const std::size_t scenarios = deep ? 300 : 64;
  const std::size_t max_q = deep ? 2048 : 256;

  // A pinned seed reproduces one failing scenario in isolation.
  std::size_t total_rounds = 0;
  if (const char* pinned = std::getenv("HELCFL_DIFF_SEED")) {
    const Scenario s = make_scenario(std::strtoull(pinned, nullptr, 10), max_q);
    run_scenario(s, total_rounds);
    return;
  }

  for (std::uint64_t seed = 1; seed <= scenarios; ++seed) {
    run_scenario(make_scenario(seed, max_q), total_rounds);
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "stopping after first mismatching scenario (seed " << seed
             << "); reproduce with HELCFL_DIFF_SEED=" << seed;
    }
  }
  // The acceptance floor: >= 2000 randomized rounds with zero mismatches.
  EXPECT_GE(total_rounds, 2000u);
}

// Directed tie-torture: every user identical under eta = 1 — the ordering
// is pure stable-sort tie-breaking, so any index tie-break deviation shows
// immediately.
TEST(SelectionDifferential, EtaOneAllTiedMatchesStableOrder) {
  const std::size_t q = 97;
  std::vector<std::pair<double, double>> delays(q, {1.0, 0.5});
  const auto users = testing::users_with_delays(delays);
  GreedyDecaySelector index_selector(0.13, 1.0);
  GreedyDecayReference reference(0.13, 1.0);
  for (std::size_t round = 0; round < 40; ++round) {
    const auto a = index_selector.select({users});
    const auto b = reference.select({users});
    ASSERT_EQ(a, b) << "round " << round;
    // With everything tied, stable order selects the lowest indices.
    const std::size_t n = sched::selection_count(q, 0.13);
    for (std::size_t k = 0; k < n; ++k) EXPECT_EQ(a[k], k);
  }
}

// Directed underflow torture: after enough selections eta^alpha underflows
// to exactly 0.0 and whole cohorts tie at zero utility; ordering must stay
// the stable index order among them.
TEST(SelectionDifferential, UnderflowedUtilitiesStayOrdered) {
  const auto users = testing::users_with_delays({{1.0, 0.0}, {2.0, 0.0}});
  GreedyDecaySelector index_selector(0.5, 0.001);  // brutal decay
  GreedyDecayReference reference(0.5, 0.001);
  for (std::size_t round = 0; round < 300; ++round) {
    ASSERT_EQ(index_selector.select({users}), reference.select({users}))
        << "round " << round;
  }
  // By now both counters are large enough that eta^alpha == 0.0 exactly.
  EXPECT_EQ(utility(index_selector.appearance_counts()[0], 1.0, 0.0, 0.001), 0.0);
}

// The index must actually be incremental, not a re-sort in disguise: after
// warm-up, a steady-state round touches O(N log Q) heap entries and the
// heap never exceeds the compaction bound.
TEST(SelectionDifferential, IndexWorksIncrementally) {
  util::Rng rng(7);
  std::vector<std::pair<double, double>> delays;
  const std::size_t q = 4096;
  delays.reserve(q);
  for (std::size_t i = 0; i < q; ++i) {
    delays.push_back({rng.uniform(0.2, 8.0), rng.uniform(0.05, 2.0)});
  }
  const auto users = testing::users_with_delays(delays);
  GreedyDecaySelector selector(0.01, 0.9);  // N = 41
  (void)selector.select({users});           // build
  const std::uint64_t discards_before = selector.index().stale_discards();
  for (std::size_t round = 0; round < 50; ++round) (void)selector.select({users});
  // Steady state: stale discards stay proportional to picks, far below a
  // per-round re-sort's Q touches.
  const std::uint64_t discards = selector.index().stale_discards() - discards_before;
  EXPECT_LT(discards, 50 * 2 * sched::selection_count(q, 0.01));
  EXPECT_LE(selector.index().heap_entries(), 2 * q + 64 + sched::selection_count(q, 0.01));
}

}  // namespace
}  // namespace helcfl::core
