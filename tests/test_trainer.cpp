#include "fl/trainer.h"

#include <gtest/gtest.h>

#include "core/helcfl_scheduler.h"
#include "fl_fixtures.h"
#include "nn/models.h"
#include "nn/serialize.h"
#include "sched/random_selection.h"

namespace helcfl::fl {
namespace {

class TrainerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    split_ = testing::tiny_split(400, 100, 50);
    util::Rng prng(51);
    partition_ = data::iid_partition(split_.train.size(), kUsers, prng);
    std::vector<std::size_t> samples;
    for (const auto& s : partition_) samples.push_back(s.size());
    devices_ = testing::linear_fleet(kUsers, samples[0]);
    for (std::size_t i = 0; i < kUsers; ++i) devices_[i].num_samples = samples[i];
    util::Rng model_rng(52);
    model_ = nn::make_mlp(split_.train.spec(), 16, 10, model_rng);
  }

  TrainerOptions quick_options() {
    TrainerOptions options;
    options.max_rounds = 10;
    options.client.learning_rate = 0.1F;
    options.model_size_bits = 4e6;
    return options;
  }

  static constexpr std::size_t kUsers = 10;
  data::TrainTestSplit split_;
  data::Partition partition_;
  std::vector<mec::Device> devices_;
  std::unique_ptr<nn::Sequential> model_;
};

TEST_F(TrainerTest, RunsRequestedRounds) {
  util::Rng rng(1);
  sched::RandomSelection strategy(0.3, rng);
  FederatedTrainer trainer(*model_, split_.train, split_.test, partition_, devices_,
                           testing::paper_channel(), strategy, quick_options());
  const TrainingHistory history = trainer.run();
  EXPECT_EQ(history.size(), 10u);
  for (std::size_t i = 0; i < history.size(); ++i) {
    EXPECT_EQ(history.rounds()[i].round, i);
  }
}

TEST_F(TrainerTest, AccuracyImprovesOverTraining) {
  util::Rng rng(2);
  sched::RandomSelection strategy(0.5, rng);
  TrainerOptions options = quick_options();
  options.max_rounds = 40;
  FederatedTrainer trainer(*model_, split_.train, split_.test, partition_, devices_,
                           testing::paper_channel(), strategy, options);
  const TrainingHistory history = trainer.run();
  EXPECT_GT(history.best_accuracy(), 0.3);  // chance = 0.1
  EXPECT_GT(history.back().test_accuracy, history.rounds().front().test_accuracy);
}

TEST_F(TrainerTest, CumulativeDelayAndEnergyAreMonotone) {
  util::Rng rng(3);
  sched::RandomSelection strategy(0.3, rng);
  FederatedTrainer trainer(*model_, split_.train, split_.test, partition_, devices_,
                           testing::paper_channel(), strategy, quick_options());
  const TrainingHistory history = trainer.run();
  double prev_delay = 0.0;
  double prev_energy = 0.0;
  for (const auto& r : history.rounds()) {
    EXPECT_GT(r.round_delay_s, 0.0);
    EXPECT_GT(r.round_energy_j, 0.0);
    EXPECT_NEAR(r.cum_delay_s, prev_delay + r.round_delay_s, 1e-9);
    EXPECT_NEAR(r.cum_energy_j, prev_energy + r.round_energy_j, 1e-9);
    prev_delay = r.cum_delay_s;
    prev_energy = r.cum_energy_j;
  }
}

TEST_F(TrainerTest, DeadlineStopsTraining) {
  util::Rng rng(4);
  sched::RandomSelection strategy(0.3, rng);
  TrainerOptions options = quick_options();
  options.max_rounds = 1000;
  options.deadline_s = 30.0;  // a few rounds at most
  FederatedTrainer trainer(*model_, split_.train, split_.test, partition_, devices_,
                           testing::paper_channel(), strategy, options);
  const TrainingHistory history = trainer.run();
  EXPECT_LT(history.size(), 1000u);
  EXPECT_GT(history.total_delay_s(), 30.0);  // crossed the deadline, then stopped
  // All rounds before the last are within the deadline.
  for (std::size_t i = 0; i + 1 < history.size(); ++i) {
    EXPECT_LE(history.rounds()[i].cum_delay_s, 30.0);
  }
}

TEST_F(TrainerTest, TargetAccuracyStopsEarly) {
  util::Rng rng(5);
  sched::RandomSelection strategy(0.5, rng);
  TrainerOptions options = quick_options();
  options.max_rounds = 200;
  options.target_accuracy = 0.25;
  FederatedTrainer trainer(*model_, split_.train, split_.test, partition_, devices_,
                           testing::paper_channel(), strategy, options);
  const TrainingHistory history = trainer.run();
  EXPECT_LT(history.size(), 200u);
  EXPECT_GE(history.back().test_accuracy, 0.25);
}

TEST_F(TrainerTest, EvalEverySkipsEvaluations) {
  util::Rng rng(6);
  sched::RandomSelection strategy(0.3, rng);
  TrainerOptions options = quick_options();
  options.eval_every = 3;
  FederatedTrainer trainer(*model_, split_.train, split_.test, partition_, devices_,
                           testing::paper_channel(), strategy, options);
  const TrainingHistory history = trainer.run();
  for (const auto& r : history.rounds()) {
    const bool expected = r.round % 3 == 0 || r.round == 9;
    EXPECT_EQ(r.evaluated, expected) << "round " << r.round;
  }
}

TEST_F(TrainerTest, DeterministicAcrossRuns) {
  TrainerOptions options = quick_options();
  const std::vector<float> init = nn::extract_parameters(*model_);

  util::Rng rng1(7);
  sched::RandomSelection s1(0.3, rng1);
  FederatedTrainer t1(*model_, split_.train, split_.test, partition_, devices_,
                      testing::paper_channel(), s1, options);
  const TrainingHistory h1 = t1.run();
  const std::vector<float> w1 = nn::extract_parameters(*model_);

  nn::load_parameters(*model_, init);
  util::Rng rng2(7);
  sched::RandomSelection s2(0.3, rng2);
  FederatedTrainer t2(*model_, split_.train, split_.test, partition_, devices_,
                      testing::paper_channel(), s2, options);
  const TrainingHistory h2 = t2.run();
  const std::vector<float> w2 = nn::extract_parameters(*model_);

  EXPECT_EQ(w1, w2);
  ASSERT_EQ(h1.size(), h2.size());
  for (std::size_t i = 0; i < h1.size(); ++i) {
    EXPECT_EQ(h1.rounds()[i].selected, h2.rounds()[i].selected);
    EXPECT_DOUBLE_EQ(h1.rounds()[i].cum_delay_s, h2.rounds()[i].cum_delay_s);
  }
}

TEST_F(TrainerTest, SelectedSetRespectsFraction) {
  util::Rng rng(8);
  sched::RandomSelection strategy(0.3, rng);
  FederatedTrainer trainer(*model_, split_.train, split_.test, partition_, devices_,
                           testing::paper_channel(), strategy, quick_options());
  const TrainingHistory history = trainer.run();
  for (const auto& r : history.rounds()) {
    EXPECT_EQ(r.selected.size(), 3u);  // 10 users * 0.3
  }
}

TEST_F(TrainerTest, RejectsDeviceSampleMismatch) {
  devices_[0].num_samples += 1;
  util::Rng rng(9);
  sched::RandomSelection strategy(0.3, rng);
  EXPECT_THROW(FederatedTrainer(*model_, split_.train, split_.test, partition_,
                                devices_, testing::paper_channel(), strategy,
                                quick_options()),
               std::invalid_argument);
}

TEST_F(TrainerTest, RejectsPartitionSizeMismatch) {
  partition_.pop_back();
  util::Rng rng(10);
  sched::RandomSelection strategy(0.3, rng);
  EXPECT_THROW(FederatedTrainer(*model_, split_.train, split_.test, partition_,
                                devices_, testing::paper_channel(), strategy,
                                quick_options()),
               std::invalid_argument);
}

TEST_F(TrainerTest, HelcflStrategyKeepsDelayEqualToNoDvfs) {
  // Algorithm 3 must not lengthen rounds: with the same selection sequence,
  // the DVFS and no-DVFS arms have identical round delays but DVFS costs
  // less energy.
  const std::vector<float> init = nn::extract_parameters(*model_);
  TrainerOptions options = quick_options();

  core::HelcflScheduler dvfs({.fraction = 0.3, .eta = 0.9, .enable_dvfs = true});
  FederatedTrainer t1(*model_, split_.train, split_.test, partition_, devices_,
                      testing::paper_channel(), dvfs, options);
  const TrainingHistory with_dvfs = t1.run();

  nn::load_parameters(*model_, init);
  core::HelcflScheduler nodvfs({.fraction = 0.3, .eta = 0.9, .enable_dvfs = false});
  FederatedTrainer t2(*model_, split_.train, split_.test, partition_, devices_,
                      testing::paper_channel(), nodvfs, options);
  const TrainingHistory without_dvfs = t2.run();

  ASSERT_EQ(with_dvfs.size(), without_dvfs.size());
  for (std::size_t i = 0; i < with_dvfs.size(); ++i) {
    EXPECT_EQ(with_dvfs.rounds()[i].selected, without_dvfs.rounds()[i].selected);
    EXPECT_NEAR(with_dvfs.rounds()[i].round_delay_s,
                without_dvfs.rounds()[i].round_delay_s, 1e-9);
    EXPECT_LE(with_dvfs.rounds()[i].round_energy_j,
              without_dvfs.rounds()[i].round_energy_j + 1e-12);
  }
  EXPECT_LT(with_dvfs.total_energy_j(), without_dvfs.total_energy_j());
}

}  // namespace
}  // namespace helcfl::fl
