#include "nn/dense.h"

#include <gtest/gtest.h>

#include "gradcheck.h"
#include "nn/serialize.h"
#include "util/rng.h"

namespace helcfl::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(Dense, OutputShape) {
  util::Rng rng(1);
  Dense layer(5, 3, rng);
  const Tensor y = layer.forward(Tensor(Shape{4, 5}), false);
  EXPECT_EQ(y.shape(), Shape({4, 3}));
}

TEST(Dense, RejectsWrongInputWidth) {
  util::Rng rng(1);
  Dense layer(5, 3, rng);
  EXPECT_THROW(layer.forward(Tensor(Shape{4, 6}), false), std::invalid_argument);
}

TEST(Dense, RejectsRank4Input) {
  util::Rng rng(1);
  Dense layer(5, 3, rng);
  EXPECT_THROW(layer.forward(Tensor(Shape{1, 5, 1, 1}), false), std::invalid_argument);
}

TEST(Dense, ComputesAffineMap) {
  util::Rng rng(2);
  Dense layer(2, 2, rng);
  // Overwrite weights to a known affine map: y = [[1, 2], [3, 4]] x + [10, 20].
  load_parameters(layer, std::vector<float>{1, 2, 3, 4, 10, 20});
  const Tensor x(Shape{1, 2}, {1.0F, 1.0F});
  const Tensor y = layer.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 13.0F);  // 1*1 + 2*1 + 10
  EXPECT_FLOAT_EQ(y.at(0, 1), 27.0F);  // 3*1 + 4*1 + 20
}

TEST(Dense, AffineMapAtTileBoundaryCrossingShapes) {
  // Shapes straddling the GEMM micro-tile sizes (4x8 generic, 6x16 AVX2):
  // the fused-bias store pass must handle full and partial edge tiles alike.
  const std::size_t shapes[][3] = {{7, 17, 33}, {1, 5, 16}, {6, 16, 1}};
  std::size_t seed = 40;
  for (const auto& s : shapes) {
    const std::size_t batch = s[0], in_f = s[1], out_f = s[2];
    util::Rng rng(seed++);
    Dense layer(in_f, out_f, rng);
    const std::vector<float> params = extract_parameters(layer);
    const float* weight = params.data();            // [out_f, in_f]
    const float* bias = params.data() + out_f * in_f;
    const Tensor x = testing::random_input(Shape{batch, in_f}, seed++);
    const Tensor y = layer.forward(x, false);
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t o = 0; o < out_f; ++o) {
        double want = bias[o];
        for (std::size_t i = 0; i < in_f; ++i) {
          want += static_cast<double>(x.at(b, i)) * weight[o * in_f + i];
        }
        ASSERT_NEAR(y.at(b, o), want, 1e-4)
            << "batch=" << batch << " in=" << in_f << " out=" << out_f;
      }
    }
  }
}

TEST(Dense, BiasInitializedToZero) {
  util::Rng rng(3);
  Dense layer(4, 2, rng);
  const auto params = layer.params();
  ASSERT_EQ(params.size(), 2u);
  for (const float b : params[1].value) EXPECT_EQ(b, 0.0F);
}

TEST(Dense, HeInitializationScale) {
  util::Rng rng(4);
  Dense layer(1000, 100, rng);
  const auto params = layer.params();
  double sum_sq = 0.0;
  for (const float w : params[0].value) sum_sq += static_cast<double>(w) * w;
  const double var = sum_sq / static_cast<double>(params[0].value.size());
  EXPECT_NEAR(var, 2.0 / 1000.0, 3e-4);
}

TEST(Dense, GradientCheck) {
  util::Rng rng(5);
  Dense layer(4, 3, rng);
  testing::check_gradients(layer, testing::random_input(Shape{2, 4}, 99));
}

TEST(Dense, GradientsAccumulateAcrossBackwardCalls) {
  util::Rng rng(6);
  Dense layer(2, 2, rng);
  const Tensor x = testing::random_input(Shape{1, 2}, 7);
  layer.zero_grad();
  (void)layer.forward(x, true);
  Tensor dy(Shape{1, 2});
  dy.fill(1.0F);
  (void)layer.backward(dy);
  const std::vector<float> grad_once = extract_gradients(layer);
  (void)layer.forward(x, true);
  (void)layer.backward(dy);
  const std::vector<float> grad_twice = extract_gradients(layer);
  for (std::size_t i = 0; i < grad_once.size(); ++i) {
    EXPECT_NEAR(grad_twice[i], 2.0F * grad_once[i], 1e-5F);
  }
}

TEST(Dense, ZeroGradClears) {
  util::Rng rng(8);
  Dense layer(2, 2, rng);
  const Tensor x = testing::random_input(Shape{1, 2}, 9);
  (void)layer.forward(x, true);
  Tensor dy(Shape{1, 2});
  dy.fill(1.0F);
  (void)layer.backward(dy);
  layer.zero_grad();
  for (const float g : extract_gradients(layer)) EXPECT_EQ(g, 0.0F);
}

TEST(Dense, NameDescribesDimensions) {
  util::Rng rng(10);
  EXPECT_EQ(Dense(192, 64, rng).name(), "Dense(192->64)");
}

TEST(Dense, BatchRowsAreIndependent) {
  util::Rng rng(11);
  Dense layer(3, 2, rng);
  Tensor x2(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor y2 = layer.forward(x2, false);
  const Tensor x1(Shape{1, 3}, {4, 5, 6});
  const Tensor y1 = layer.forward(x1, false);
  EXPECT_FLOAT_EQ(y2.at(1, 0), y1.at(0, 0));
  EXPECT_FLOAT_EQ(y2.at(1, 1), y1.at(0, 1));
}

}  // namespace
}  // namespace helcfl::nn
