#include "fl/server.h"

#include <gtest/gtest.h>

#include "fl/client.h"
#include "fl_fixtures.h"
#include "nn/loss.h"
#include "nn/models.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"

namespace helcfl::fl {
namespace {

TEST(FedAvg, SingleUploadIsIdentity) {
  const std::vector<float> w = {1.0F, 2.0F, 3.0F};
  const WeightedModel upload{w, 10};
  const std::vector<float> avg = fedavg(std::vector<WeightedModel>{upload});
  EXPECT_EQ(avg, w);
}

TEST(FedAvg, EqualWeightsAverage) {
  const std::vector<float> a = {0.0F, 2.0F};
  const std::vector<float> b = {4.0F, 0.0F};
  const std::vector<WeightedModel> uploads = {{a, 5}, {b, 5}};
  const std::vector<float> avg = fedavg(uploads);
  EXPECT_FLOAT_EQ(avg[0], 2.0F);
  EXPECT_FLOAT_EQ(avg[1], 1.0F);
}

TEST(FedAvg, SampleCountWeighting) {
  // Eq. (18): weights proportional to |D_q|.
  const std::vector<float> a = {0.0F};
  const std::vector<float> b = {10.0F};
  const std::vector<WeightedModel> uploads = {{a, 1}, {b, 3}};
  const std::vector<float> avg = fedavg(uploads);
  EXPECT_FLOAT_EQ(avg[0], 7.5F);
}

TEST(FedAvg, ZeroWeightUploadIsIgnored) {
  const std::vector<float> a = {2.0F};
  const std::vector<float> b = {100.0F};
  const std::vector<WeightedModel> uploads = {{a, 4}, {b, 0}};
  const std::vector<float> avg = fedavg(uploads);
  EXPECT_FLOAT_EQ(avg[0], 2.0F);
}

TEST(FedAvg, RejectsEmptyUploadList) {
  EXPECT_THROW(fedavg({}), std::invalid_argument);
}

TEST(FedAvg, RejectsDimensionMismatch) {
  const std::vector<float> a = {1.0F};
  const std::vector<float> b = {1.0F, 2.0F};
  const std::vector<WeightedModel> uploads = {{a, 1}, {b, 1}};
  EXPECT_THROW(fedavg(uploads), std::invalid_argument);
}

TEST(FedAvg, RejectsAllZeroSampleCounts) {
  const std::vector<float> a = {1.0F};
  const std::vector<WeightedModel> uploads = {{a, 0}};
  EXPECT_THROW(fedavg(uploads), std::invalid_argument);
}

TEST(FedAvg, Eq19EquivalenceToCentralizedGd) {
  // The paper's Eq. (19): FedAvg over clients that each took ONE full-batch
  // GD step from the same global model equals one centralized GD step on
  // the union of their data.  This is the theoretical foundation of the
  // HELCFL utility function; verify it numerically.
  const auto split = testing::tiny_split(300, 50, 200);
  util::Rng model_rng(1);
  auto model = nn::make_mlp(split.train.spec(), 12, 10, model_rng);
  const std::vector<float> global = nn::extract_parameters(*model);
  const float lr = 0.1F;

  // Three clients with different (and differently sized) slices.
  std::vector<std::vector<std::size_t>> slices = {{}, {}, {}};
  for (std::size_t i = 0; i < 300; ++i) slices[i % 2 == 0 ? 0 : (i % 3 == 0 ? 1 : 2)].push_back(i);

  std::vector<ClientUpdate> updates;
  std::vector<std::size_t> all_indices;
  for (const auto& slice : slices) {
    util::Rng rng(3);
    updates.push_back(local_update(*model, global, split.train.gather(slice),
                                   {.learning_rate = lr, .local_steps = 1}, rng));
    all_indices.insert(all_indices.end(), slice.begin(), slice.end());
  }
  std::vector<WeightedModel> uploads;
  for (const auto& u : updates) uploads.push_back({u.weights, u.num_samples});
  const std::vector<float> aggregated = fedavg(uploads);

  // Centralized GD step on the union.
  util::Rng rng(4);
  const ClientUpdate central =
      local_update(*model, global, split.train.gather(all_indices),
                   {.learning_rate = lr, .local_steps = 1}, rng);

  for (std::size_t i = 0; i < aggregated.size(); ++i) {
    EXPECT_NEAR(aggregated[i], central.weights[i], 2e-4F) << "weight " << i;
  }
}

TEST(Evaluate, PerfectModelScoresOne) {
  const auto split = testing::tiny_split(100, 50, 300);
  util::Rng model_rng(5);
  auto model = nn::make_logistic(split.train.spec(), 10, model_rng);
  // Train to convergence on the test set itself (cheating on purpose) to
  // verify evaluate() reports high accuracy for a fitted model.
  const data::Batch test = split.test.all();
  nn::Sgd sgd({.learning_rate = 0.1F});
  for (int step = 0; step < 300; ++step) {
    model->zero_grad();
    const auto logits = model->forward(test.images, true);
    const auto loss = nn::softmax_cross_entropy(logits, test.labels);
    model->backward(loss.grad_logits);
    sgd.step(model->params());
  }
  const Evaluation eval =
      evaluate(*model, nn::extract_parameters(*model), split.test);
  EXPECT_GT(eval.accuracy, 0.9);
  EXPECT_LT(eval.loss, 1.0);
}

TEST(Evaluate, BatchSizeDoesNotChangeResult) {
  const auto split = testing::tiny_split(50, 130, 400);
  util::Rng model_rng(6);
  auto model = nn::make_mlp(split.train.spec(), 8, 10, model_rng);
  const auto weights = nn::extract_parameters(*model);
  const Evaluation small = evaluate(*model, weights, split.test, 7);
  const Evaluation large = evaluate(*model, weights, split.test, 1000);
  EXPECT_NEAR(small.accuracy, large.accuracy, 1e-12);
  EXPECT_NEAR(small.loss, large.loss, 1e-9);
}

TEST(Evaluate, RejectsEmptyDataset) {
  util::Rng model_rng(7);
  const nn::ImageSpec spec{1, 2, 2};
  auto model = nn::make_logistic(spec, 3, model_rng);
  data::Dataset empty;
  EXPECT_THROW(evaluate(*model, nn::extract_parameters(*model), empty),
               std::invalid_argument);
}

}  // namespace
}  // namespace helcfl::fl
