file(REMOVE_RECURSE
  "CMakeFiles/helcfl_core.dir/dvfs.cpp.o"
  "CMakeFiles/helcfl_core.dir/dvfs.cpp.o.d"
  "CMakeFiles/helcfl_core.dir/greedy_decay_selection.cpp.o"
  "CMakeFiles/helcfl_core.dir/greedy_decay_selection.cpp.o.d"
  "CMakeFiles/helcfl_core.dir/helcfl_scheduler.cpp.o"
  "CMakeFiles/helcfl_core.dir/helcfl_scheduler.cpp.o.d"
  "CMakeFiles/helcfl_core.dir/utility.cpp.o"
  "CMakeFiles/helcfl_core.dir/utility.cpp.o.d"
  "libhelcfl_core.a"
  "libhelcfl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helcfl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
