file(REMOVE_RECURSE
  "libhelcfl_core.a"
)
