
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dvfs.cpp" "src/core/CMakeFiles/helcfl_core.dir/dvfs.cpp.o" "gcc" "src/core/CMakeFiles/helcfl_core.dir/dvfs.cpp.o.d"
  "/root/repo/src/core/greedy_decay_selection.cpp" "src/core/CMakeFiles/helcfl_core.dir/greedy_decay_selection.cpp.o" "gcc" "src/core/CMakeFiles/helcfl_core.dir/greedy_decay_selection.cpp.o.d"
  "/root/repo/src/core/helcfl_scheduler.cpp" "src/core/CMakeFiles/helcfl_core.dir/helcfl_scheduler.cpp.o" "gcc" "src/core/CMakeFiles/helcfl_core.dir/helcfl_scheduler.cpp.o.d"
  "/root/repo/src/core/utility.cpp" "src/core/CMakeFiles/helcfl_core.dir/utility.cpp.o" "gcc" "src/core/CMakeFiles/helcfl_core.dir/utility.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/helcfl_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/mec/CMakeFiles/helcfl_mec.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/helcfl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
