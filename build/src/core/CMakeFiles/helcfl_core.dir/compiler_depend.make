# Empty compiler generated dependencies file for helcfl_core.
# This may be replaced when dependencies are built.
