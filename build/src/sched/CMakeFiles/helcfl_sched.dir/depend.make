# Empty dependencies file for helcfl_sched.
# This may be replaced when dependencies are built.
