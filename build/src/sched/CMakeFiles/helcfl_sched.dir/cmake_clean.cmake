file(REMOVE_RECURSE
  "CMakeFiles/helcfl_sched.dir/fedcs.cpp.o"
  "CMakeFiles/helcfl_sched.dir/fedcs.cpp.o.d"
  "CMakeFiles/helcfl_sched.dir/fedl.cpp.o"
  "CMakeFiles/helcfl_sched.dir/fedl.cpp.o.d"
  "CMakeFiles/helcfl_sched.dir/oort.cpp.o"
  "CMakeFiles/helcfl_sched.dir/oort.cpp.o.d"
  "CMakeFiles/helcfl_sched.dir/random_selection.cpp.o"
  "CMakeFiles/helcfl_sched.dir/random_selection.cpp.o.d"
  "CMakeFiles/helcfl_sched.dir/scheduler.cpp.o"
  "CMakeFiles/helcfl_sched.dir/scheduler.cpp.o.d"
  "libhelcfl_sched.a"
  "libhelcfl_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helcfl_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
