
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/fedcs.cpp" "src/sched/CMakeFiles/helcfl_sched.dir/fedcs.cpp.o" "gcc" "src/sched/CMakeFiles/helcfl_sched.dir/fedcs.cpp.o.d"
  "/root/repo/src/sched/fedl.cpp" "src/sched/CMakeFiles/helcfl_sched.dir/fedl.cpp.o" "gcc" "src/sched/CMakeFiles/helcfl_sched.dir/fedl.cpp.o.d"
  "/root/repo/src/sched/oort.cpp" "src/sched/CMakeFiles/helcfl_sched.dir/oort.cpp.o" "gcc" "src/sched/CMakeFiles/helcfl_sched.dir/oort.cpp.o.d"
  "/root/repo/src/sched/random_selection.cpp" "src/sched/CMakeFiles/helcfl_sched.dir/random_selection.cpp.o" "gcc" "src/sched/CMakeFiles/helcfl_sched.dir/random_selection.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/sched/CMakeFiles/helcfl_sched.dir/scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/helcfl_sched.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mec/CMakeFiles/helcfl_mec.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/helcfl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
