file(REMOVE_RECURSE
  "libhelcfl_sched.a"
)
