file(REMOVE_RECURSE
  "libhelcfl_tensor.a"
)
