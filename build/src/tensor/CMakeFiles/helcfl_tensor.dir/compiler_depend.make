# Empty compiler generated dependencies file for helcfl_tensor.
# This may be replaced when dependencies are built.
