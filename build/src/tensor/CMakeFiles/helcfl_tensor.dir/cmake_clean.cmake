file(REMOVE_RECURSE
  "CMakeFiles/helcfl_tensor.dir/ops.cpp.o"
  "CMakeFiles/helcfl_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/helcfl_tensor.dir/tensor.cpp.o"
  "CMakeFiles/helcfl_tensor.dir/tensor.cpp.o.d"
  "libhelcfl_tensor.a"
  "libhelcfl_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helcfl_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
