# Empty compiler generated dependencies file for helcfl_data.
# This may be replaced when dependencies are built.
