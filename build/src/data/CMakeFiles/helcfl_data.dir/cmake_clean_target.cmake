file(REMOVE_RECURSE
  "libhelcfl_data.a"
)
