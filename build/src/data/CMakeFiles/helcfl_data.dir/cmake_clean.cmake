file(REMOVE_RECURSE
  "CMakeFiles/helcfl_data.dir/dataset.cpp.o"
  "CMakeFiles/helcfl_data.dir/dataset.cpp.o.d"
  "CMakeFiles/helcfl_data.dir/partition.cpp.o"
  "CMakeFiles/helcfl_data.dir/partition.cpp.o.d"
  "CMakeFiles/helcfl_data.dir/synthetic_cifar.cpp.o"
  "CMakeFiles/helcfl_data.dir/synthetic_cifar.cpp.o.d"
  "libhelcfl_data.a"
  "libhelcfl_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helcfl_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
