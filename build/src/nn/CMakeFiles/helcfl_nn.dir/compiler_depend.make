# Empty compiler generated dependencies file for helcfl_nn.
# This may be replaced when dependencies are built.
