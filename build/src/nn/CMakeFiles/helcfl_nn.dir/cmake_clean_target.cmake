file(REMOVE_RECURSE
  "libhelcfl_nn.a"
)
