
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/nn/CMakeFiles/helcfl_nn.dir/activations.cpp.o" "gcc" "src/nn/CMakeFiles/helcfl_nn.dir/activations.cpp.o.d"
  "/root/repo/src/nn/batchnorm.cpp" "src/nn/CMakeFiles/helcfl_nn.dir/batchnorm.cpp.o" "gcc" "src/nn/CMakeFiles/helcfl_nn.dir/batchnorm.cpp.o.d"
  "/root/repo/src/nn/compression.cpp" "src/nn/CMakeFiles/helcfl_nn.dir/compression.cpp.o" "gcc" "src/nn/CMakeFiles/helcfl_nn.dir/compression.cpp.o.d"
  "/root/repo/src/nn/conv2d.cpp" "src/nn/CMakeFiles/helcfl_nn.dir/conv2d.cpp.o" "gcc" "src/nn/CMakeFiles/helcfl_nn.dir/conv2d.cpp.o.d"
  "/root/repo/src/nn/dense.cpp" "src/nn/CMakeFiles/helcfl_nn.dir/dense.cpp.o" "gcc" "src/nn/CMakeFiles/helcfl_nn.dir/dense.cpp.o.d"
  "/root/repo/src/nn/dropout.cpp" "src/nn/CMakeFiles/helcfl_nn.dir/dropout.cpp.o" "gcc" "src/nn/CMakeFiles/helcfl_nn.dir/dropout.cpp.o.d"
  "/root/repo/src/nn/fire.cpp" "src/nn/CMakeFiles/helcfl_nn.dir/fire.cpp.o" "gcc" "src/nn/CMakeFiles/helcfl_nn.dir/fire.cpp.o.d"
  "/root/repo/src/nn/flatten.cpp" "src/nn/CMakeFiles/helcfl_nn.dir/flatten.cpp.o" "gcc" "src/nn/CMakeFiles/helcfl_nn.dir/flatten.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/helcfl_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/helcfl_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/models.cpp" "src/nn/CMakeFiles/helcfl_nn.dir/models.cpp.o" "gcc" "src/nn/CMakeFiles/helcfl_nn.dir/models.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/helcfl_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/helcfl_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/pool.cpp" "src/nn/CMakeFiles/helcfl_nn.dir/pool.cpp.o" "gcc" "src/nn/CMakeFiles/helcfl_nn.dir/pool.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "src/nn/CMakeFiles/helcfl_nn.dir/sequential.cpp.o" "gcc" "src/nn/CMakeFiles/helcfl_nn.dir/sequential.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/helcfl_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/helcfl_nn.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/helcfl_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/helcfl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
