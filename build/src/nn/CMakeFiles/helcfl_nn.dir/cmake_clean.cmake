file(REMOVE_RECURSE
  "CMakeFiles/helcfl_nn.dir/activations.cpp.o"
  "CMakeFiles/helcfl_nn.dir/activations.cpp.o.d"
  "CMakeFiles/helcfl_nn.dir/batchnorm.cpp.o"
  "CMakeFiles/helcfl_nn.dir/batchnorm.cpp.o.d"
  "CMakeFiles/helcfl_nn.dir/compression.cpp.o"
  "CMakeFiles/helcfl_nn.dir/compression.cpp.o.d"
  "CMakeFiles/helcfl_nn.dir/conv2d.cpp.o"
  "CMakeFiles/helcfl_nn.dir/conv2d.cpp.o.d"
  "CMakeFiles/helcfl_nn.dir/dense.cpp.o"
  "CMakeFiles/helcfl_nn.dir/dense.cpp.o.d"
  "CMakeFiles/helcfl_nn.dir/dropout.cpp.o"
  "CMakeFiles/helcfl_nn.dir/dropout.cpp.o.d"
  "CMakeFiles/helcfl_nn.dir/fire.cpp.o"
  "CMakeFiles/helcfl_nn.dir/fire.cpp.o.d"
  "CMakeFiles/helcfl_nn.dir/flatten.cpp.o"
  "CMakeFiles/helcfl_nn.dir/flatten.cpp.o.d"
  "CMakeFiles/helcfl_nn.dir/loss.cpp.o"
  "CMakeFiles/helcfl_nn.dir/loss.cpp.o.d"
  "CMakeFiles/helcfl_nn.dir/models.cpp.o"
  "CMakeFiles/helcfl_nn.dir/models.cpp.o.d"
  "CMakeFiles/helcfl_nn.dir/optimizer.cpp.o"
  "CMakeFiles/helcfl_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/helcfl_nn.dir/pool.cpp.o"
  "CMakeFiles/helcfl_nn.dir/pool.cpp.o.d"
  "CMakeFiles/helcfl_nn.dir/sequential.cpp.o"
  "CMakeFiles/helcfl_nn.dir/sequential.cpp.o.d"
  "CMakeFiles/helcfl_nn.dir/serialize.cpp.o"
  "CMakeFiles/helcfl_nn.dir/serialize.cpp.o.d"
  "libhelcfl_nn.a"
  "libhelcfl_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helcfl_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
