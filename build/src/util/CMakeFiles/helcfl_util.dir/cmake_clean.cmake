file(REMOVE_RECURSE
  "CMakeFiles/helcfl_util.dir/args.cpp.o"
  "CMakeFiles/helcfl_util.dir/args.cpp.o.d"
  "CMakeFiles/helcfl_util.dir/csv.cpp.o"
  "CMakeFiles/helcfl_util.dir/csv.cpp.o.d"
  "CMakeFiles/helcfl_util.dir/log.cpp.o"
  "CMakeFiles/helcfl_util.dir/log.cpp.o.d"
  "CMakeFiles/helcfl_util.dir/rng.cpp.o"
  "CMakeFiles/helcfl_util.dir/rng.cpp.o.d"
  "CMakeFiles/helcfl_util.dir/stats.cpp.o"
  "CMakeFiles/helcfl_util.dir/stats.cpp.o.d"
  "libhelcfl_util.a"
  "libhelcfl_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helcfl_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
