file(REMOVE_RECURSE
  "libhelcfl_util.a"
)
