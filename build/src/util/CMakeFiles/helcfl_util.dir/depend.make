# Empty dependencies file for helcfl_util.
# This may be replaced when dependencies are built.
