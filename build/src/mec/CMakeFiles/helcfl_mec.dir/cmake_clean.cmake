file(REMOVE_RECURSE
  "CMakeFiles/helcfl_mec.dir/battery.cpp.o"
  "CMakeFiles/helcfl_mec.dir/battery.cpp.o.d"
  "CMakeFiles/helcfl_mec.dir/channel.cpp.o"
  "CMakeFiles/helcfl_mec.dir/channel.cpp.o.d"
  "CMakeFiles/helcfl_mec.dir/cost_model.cpp.o"
  "CMakeFiles/helcfl_mec.dir/cost_model.cpp.o.d"
  "CMakeFiles/helcfl_mec.dir/device.cpp.o"
  "CMakeFiles/helcfl_mec.dir/device.cpp.o.d"
  "CMakeFiles/helcfl_mec.dir/fading.cpp.o"
  "CMakeFiles/helcfl_mec.dir/fading.cpp.o.d"
  "CMakeFiles/helcfl_mec.dir/tdma.cpp.o"
  "CMakeFiles/helcfl_mec.dir/tdma.cpp.o.d"
  "libhelcfl_mec.a"
  "libhelcfl_mec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helcfl_mec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
