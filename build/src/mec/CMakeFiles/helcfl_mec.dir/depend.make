# Empty dependencies file for helcfl_mec.
# This may be replaced when dependencies are built.
