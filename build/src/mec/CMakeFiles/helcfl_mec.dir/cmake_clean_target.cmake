file(REMOVE_RECURSE
  "libhelcfl_mec.a"
)
