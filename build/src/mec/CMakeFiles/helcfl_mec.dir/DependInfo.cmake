
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mec/battery.cpp" "src/mec/CMakeFiles/helcfl_mec.dir/battery.cpp.o" "gcc" "src/mec/CMakeFiles/helcfl_mec.dir/battery.cpp.o.d"
  "/root/repo/src/mec/channel.cpp" "src/mec/CMakeFiles/helcfl_mec.dir/channel.cpp.o" "gcc" "src/mec/CMakeFiles/helcfl_mec.dir/channel.cpp.o.d"
  "/root/repo/src/mec/cost_model.cpp" "src/mec/CMakeFiles/helcfl_mec.dir/cost_model.cpp.o" "gcc" "src/mec/CMakeFiles/helcfl_mec.dir/cost_model.cpp.o.d"
  "/root/repo/src/mec/device.cpp" "src/mec/CMakeFiles/helcfl_mec.dir/device.cpp.o" "gcc" "src/mec/CMakeFiles/helcfl_mec.dir/device.cpp.o.d"
  "/root/repo/src/mec/fading.cpp" "src/mec/CMakeFiles/helcfl_mec.dir/fading.cpp.o" "gcc" "src/mec/CMakeFiles/helcfl_mec.dir/fading.cpp.o.d"
  "/root/repo/src/mec/tdma.cpp" "src/mec/CMakeFiles/helcfl_mec.dir/tdma.cpp.o" "gcc" "src/mec/CMakeFiles/helcfl_mec.dir/tdma.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/helcfl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
