file(REMOVE_RECURSE
  "CMakeFiles/helcfl_sim.dir/config.cpp.o"
  "CMakeFiles/helcfl_sim.dir/config.cpp.o.d"
  "CMakeFiles/helcfl_sim.dir/fleet.cpp.o"
  "CMakeFiles/helcfl_sim.dir/fleet.cpp.o.d"
  "CMakeFiles/helcfl_sim.dir/report.cpp.o"
  "CMakeFiles/helcfl_sim.dir/report.cpp.o.d"
  "CMakeFiles/helcfl_sim.dir/simulation.cpp.o"
  "CMakeFiles/helcfl_sim.dir/simulation.cpp.o.d"
  "libhelcfl_sim.a"
  "libhelcfl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helcfl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
