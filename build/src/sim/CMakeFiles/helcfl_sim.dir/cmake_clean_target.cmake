file(REMOVE_RECURSE
  "libhelcfl_sim.a"
)
