# Empty dependencies file for helcfl_sim.
# This may be replaced when dependencies are built.
