file(REMOVE_RECURSE
  "CMakeFiles/helcfl_fl.dir/client.cpp.o"
  "CMakeFiles/helcfl_fl.dir/client.cpp.o.d"
  "CMakeFiles/helcfl_fl.dir/metrics.cpp.o"
  "CMakeFiles/helcfl_fl.dir/metrics.cpp.o.d"
  "CMakeFiles/helcfl_fl.dir/separated.cpp.o"
  "CMakeFiles/helcfl_fl.dir/separated.cpp.o.d"
  "CMakeFiles/helcfl_fl.dir/server.cpp.o"
  "CMakeFiles/helcfl_fl.dir/server.cpp.o.d"
  "CMakeFiles/helcfl_fl.dir/trainer.cpp.o"
  "CMakeFiles/helcfl_fl.dir/trainer.cpp.o.d"
  "libhelcfl_fl.a"
  "libhelcfl_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helcfl_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
