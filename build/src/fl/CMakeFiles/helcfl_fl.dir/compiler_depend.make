# Empty compiler generated dependencies file for helcfl_fl.
# This may be replaced when dependencies are built.
