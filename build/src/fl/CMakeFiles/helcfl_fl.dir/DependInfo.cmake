
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fl/client.cpp" "src/fl/CMakeFiles/helcfl_fl.dir/client.cpp.o" "gcc" "src/fl/CMakeFiles/helcfl_fl.dir/client.cpp.o.d"
  "/root/repo/src/fl/metrics.cpp" "src/fl/CMakeFiles/helcfl_fl.dir/metrics.cpp.o" "gcc" "src/fl/CMakeFiles/helcfl_fl.dir/metrics.cpp.o.d"
  "/root/repo/src/fl/separated.cpp" "src/fl/CMakeFiles/helcfl_fl.dir/separated.cpp.o" "gcc" "src/fl/CMakeFiles/helcfl_fl.dir/separated.cpp.o.d"
  "/root/repo/src/fl/server.cpp" "src/fl/CMakeFiles/helcfl_fl.dir/server.cpp.o" "gcc" "src/fl/CMakeFiles/helcfl_fl.dir/server.cpp.o.d"
  "/root/repo/src/fl/trainer.cpp" "src/fl/CMakeFiles/helcfl_fl.dir/trainer.cpp.o" "gcc" "src/fl/CMakeFiles/helcfl_fl.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/helcfl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/helcfl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/mec/CMakeFiles/helcfl_mec.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/helcfl_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/helcfl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/helcfl_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
