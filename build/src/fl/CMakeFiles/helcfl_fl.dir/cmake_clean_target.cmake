file(REMOVE_RECURSE
  "libhelcfl_fl.a"
)
