file(REMOVE_RECURSE
  "CMakeFiles/helcfl_cli.dir/helcfl_cli.cpp.o"
  "CMakeFiles/helcfl_cli.dir/helcfl_cli.cpp.o.d"
  "helcfl_cli"
  "helcfl_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helcfl_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
