# Empty dependencies file for helcfl_cli.
# This may be replaced when dependencies are built.
