file(REMOVE_RECURSE
  "CMakeFiles/energy_audit.dir/energy_audit.cpp.o"
  "CMakeFiles/energy_audit.dir/energy_audit.cpp.o.d"
  "energy_audit"
  "energy_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
