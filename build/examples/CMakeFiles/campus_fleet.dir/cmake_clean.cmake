file(REMOVE_RECURSE
  "CMakeFiles/campus_fleet.dir/campus_fleet.cpp.o"
  "CMakeFiles/campus_fleet.dir/campus_fleet.cpp.o.d"
  "campus_fleet"
  "campus_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
