# Empty dependencies file for campus_fleet.
# This may be replaced when dependencies are built.
