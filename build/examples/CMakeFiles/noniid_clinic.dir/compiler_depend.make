# Empty compiler generated dependencies file for noniid_clinic.
# This may be replaced when dependencies are built.
