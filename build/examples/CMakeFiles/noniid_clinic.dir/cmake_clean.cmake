file(REMOVE_RECURSE
  "CMakeFiles/noniid_clinic.dir/noniid_clinic.cpp.o"
  "CMakeFiles/noniid_clinic.dir/noniid_clinic.cpp.o.d"
  "noniid_clinic"
  "noniid_clinic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noniid_clinic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
