# Empty dependencies file for noniid_clinic.
# This may be replaced when dependencies are built.
