file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_delay.dir/bench_table1_delay.cpp.o"
  "CMakeFiles/bench_table1_delay.dir/bench_table1_delay.cpp.o.d"
  "bench_table1_delay"
  "bench_table1_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
