# Empty compiler generated dependencies file for bench_fig1_slack_timeline.
# This may be replaced when dependencies are built.
