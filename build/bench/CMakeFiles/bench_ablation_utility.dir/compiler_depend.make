# Empty compiler generated dependencies file for bench_ablation_utility.
# This may be replaced when dependencies are built.
