file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_utility.dir/bench_ablation_utility.cpp.o"
  "CMakeFiles/bench_ablation_utility.dir/bench_ablation_utility.cpp.o.d"
  "bench_ablation_utility"
  "bench_ablation_utility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_utility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
