file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_compression.dir/bench_ext_compression.cpp.o"
  "CMakeFiles/bench_ext_compression.dir/bench_ext_compression.cpp.o.d"
  "bench_ext_compression"
  "bench_ext_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
