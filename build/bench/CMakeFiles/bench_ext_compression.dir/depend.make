# Empty dependencies file for bench_ext_compression.
# This may be replaced when dependencies are built.
