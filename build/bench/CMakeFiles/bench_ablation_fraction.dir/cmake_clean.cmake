file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fraction.dir/bench_ablation_fraction.cpp.o"
  "CMakeFiles/bench_ablation_fraction.dir/bench_ablation_fraction.cpp.o.d"
  "bench_ablation_fraction"
  "bench_ablation_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
