# Empty dependencies file for bench_ablation_fraction.
# This may be replaced when dependencies are built.
