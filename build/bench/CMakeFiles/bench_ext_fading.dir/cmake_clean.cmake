file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_fading.dir/bench_ext_fading.cpp.o"
  "CMakeFiles/bench_ext_fading.dir/bench_ext_fading.cpp.o.d"
  "bench_ext_fading"
  "bench_ext_fading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_fading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
