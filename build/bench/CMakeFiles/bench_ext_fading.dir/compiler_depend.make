# Empty compiler generated dependencies file for bench_ext_fading.
# This may be replaced when dependencies are built.
