file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_battery_lifetime.dir/bench_ext_battery_lifetime.cpp.o"
  "CMakeFiles/bench_ext_battery_lifetime.dir/bench_ext_battery_lifetime.cpp.o.d"
  "bench_ext_battery_lifetime"
  "bench_ext_battery_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_battery_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
