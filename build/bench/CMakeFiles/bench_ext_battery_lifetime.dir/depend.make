# Empty dependencies file for bench_ext_battery_lifetime.
# This may be replaced when dependencies are built.
