# Empty dependencies file for test_client.
# This may be replaced when dependencies are built.
