file(REMOVE_RECURSE
  "CMakeFiles/test_client.dir/test_client.cpp.o"
  "CMakeFiles/test_client.dir/test_client.cpp.o.d"
  "test_client"
  "test_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
