file(REMOVE_RECURSE
  "CMakeFiles/test_loss.dir/test_loss.cpp.o"
  "CMakeFiles/test_loss.dir/test_loss.cpp.o.d"
  "test_loss"
  "test_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
