file(REMOVE_RECURSE
  "CMakeFiles/test_greedy_decay.dir/test_greedy_decay.cpp.o"
  "CMakeFiles/test_greedy_decay.dir/test_greedy_decay.cpp.o.d"
  "test_greedy_decay"
  "test_greedy_decay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_greedy_decay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
