# Empty compiler generated dependencies file for test_greedy_decay.
# This may be replaced when dependencies are built.
