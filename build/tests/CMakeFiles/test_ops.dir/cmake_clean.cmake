file(REMOVE_RECURSE
  "CMakeFiles/test_ops.dir/test_ops.cpp.o"
  "CMakeFiles/test_ops.dir/test_ops.cpp.o.d"
  "test_ops"
  "test_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
