# Empty compiler generated dependencies file for test_dense.
# This may be replaced when dependencies are built.
