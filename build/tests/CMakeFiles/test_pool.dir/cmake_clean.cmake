file(REMOVE_RECURSE
  "CMakeFiles/test_pool.dir/test_pool.cpp.o"
  "CMakeFiles/test_pool.dir/test_pool.cpp.o.d"
  "test_pool"
  "test_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
