file(REMOVE_RECURSE
  "CMakeFiles/test_models.dir/test_models.cpp.o"
  "CMakeFiles/test_models.dir/test_models.cpp.o.d"
  "test_models"
  "test_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
