file(REMOVE_RECURSE
  "CMakeFiles/test_simulation.dir/test_simulation.cpp.o"
  "CMakeFiles/test_simulation.dir/test_simulation.cpp.o.d"
  "test_simulation"
  "test_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
