# Empty dependencies file for test_simulation.
# This may be replaced when dependencies are built.
