# Empty compiler generated dependencies file for test_random_selection.
# This may be replaced when dependencies are built.
