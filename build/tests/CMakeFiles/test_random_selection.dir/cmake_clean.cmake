file(REMOVE_RECURSE
  "CMakeFiles/test_random_selection.dir/test_random_selection.cpp.o"
  "CMakeFiles/test_random_selection.dir/test_random_selection.cpp.o.d"
  "test_random_selection"
  "test_random_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
