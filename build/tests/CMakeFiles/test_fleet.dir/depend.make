# Empty dependencies file for test_fleet.
# This may be replaced when dependencies are built.
