# Empty compiler generated dependencies file for test_gradcheck.
# This may be replaced when dependencies are built.
