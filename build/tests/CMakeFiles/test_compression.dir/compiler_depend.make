# Empty compiler generated dependencies file for test_compression.
# This may be replaced when dependencies are built.
