file(REMOVE_RECURSE
  "CMakeFiles/test_compression.dir/test_compression.cpp.o"
  "CMakeFiles/test_compression.dir/test_compression.cpp.o.d"
  "test_compression"
  "test_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
