file(REMOVE_RECURSE
  "CMakeFiles/test_synthetic_cifar.dir/test_synthetic_cifar.cpp.o"
  "CMakeFiles/test_synthetic_cifar.dir/test_synthetic_cifar.cpp.o.d"
  "test_synthetic_cifar"
  "test_synthetic_cifar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synthetic_cifar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
