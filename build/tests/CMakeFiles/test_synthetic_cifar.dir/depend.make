# Empty dependencies file for test_synthetic_cifar.
# This may be replaced when dependencies are built.
