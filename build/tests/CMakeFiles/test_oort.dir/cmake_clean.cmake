file(REMOVE_RECURSE
  "CMakeFiles/test_oort.dir/test_oort.cpp.o"
  "CMakeFiles/test_oort.dir/test_oort.cpp.o.d"
  "test_oort"
  "test_oort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
