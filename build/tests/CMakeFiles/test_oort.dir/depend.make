# Empty dependencies file for test_oort.
# This may be replaced when dependencies are built.
