file(REMOVE_RECURSE
  "CMakeFiles/test_fire.dir/test_fire.cpp.o"
  "CMakeFiles/test_fire.dir/test_fire.cpp.o.d"
  "test_fire"
  "test_fire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
