# Empty compiler generated dependencies file for test_fire.
# This may be replaced when dependencies are built.
