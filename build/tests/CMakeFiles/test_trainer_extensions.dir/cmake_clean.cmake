file(REMOVE_RECURSE
  "CMakeFiles/test_trainer_extensions.dir/test_trainer_extensions.cpp.o"
  "CMakeFiles/test_trainer_extensions.dir/test_trainer_extensions.cpp.o.d"
  "test_trainer_extensions"
  "test_trainer_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trainer_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
