# Empty dependencies file for test_trainer_extensions.
# This may be replaced when dependencies are built.
