file(REMOVE_RECURSE
  "CMakeFiles/test_battery.dir/test_battery.cpp.o"
  "CMakeFiles/test_battery.dir/test_battery.cpp.o.d"
  "test_battery"
  "test_battery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_battery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
