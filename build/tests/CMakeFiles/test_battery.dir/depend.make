# Empty dependencies file for test_battery.
# This may be replaced when dependencies are built.
