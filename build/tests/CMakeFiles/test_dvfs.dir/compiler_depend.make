# Empty compiler generated dependencies file for test_dvfs.
# This may be replaced when dependencies are built.
