# Empty dependencies file for test_activations.
# This may be replaced when dependencies are built.
