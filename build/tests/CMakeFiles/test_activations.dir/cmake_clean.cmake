file(REMOVE_RECURSE
  "CMakeFiles/test_activations.dir/test_activations.cpp.o"
  "CMakeFiles/test_activations.dir/test_activations.cpp.o.d"
  "test_activations"
  "test_activations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_activations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
