file(REMOVE_RECURSE
  "CMakeFiles/test_helcfl_scheduler.dir/test_helcfl_scheduler.cpp.o"
  "CMakeFiles/test_helcfl_scheduler.dir/test_helcfl_scheduler.cpp.o.d"
  "test_helcfl_scheduler"
  "test_helcfl_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_helcfl_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
