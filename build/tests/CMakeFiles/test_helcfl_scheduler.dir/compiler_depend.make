# Empty compiler generated dependencies file for test_helcfl_scheduler.
# This may be replaced when dependencies are built.
