file(REMOVE_RECURSE
  "CMakeFiles/test_adam.dir/test_adam.cpp.o"
  "CMakeFiles/test_adam.dir/test_adam.cpp.o.d"
  "test_adam"
  "test_adam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
