# Empty dependencies file for test_adam.
# This may be replaced when dependencies are built.
