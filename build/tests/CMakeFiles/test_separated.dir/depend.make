# Empty dependencies file for test_separated.
# This may be replaced when dependencies are built.
