file(REMOVE_RECURSE
  "CMakeFiles/test_separated.dir/test_separated.cpp.o"
  "CMakeFiles/test_separated.dir/test_separated.cpp.o.d"
  "test_separated"
  "test_separated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_separated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
