
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_fading.cpp" "tests/CMakeFiles/test_fading.dir/test_fading.cpp.o" "gcc" "tests/CMakeFiles/test_fading.dir/test_fading.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/helcfl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/helcfl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fl/CMakeFiles/helcfl_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/helcfl_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/mec/CMakeFiles/helcfl_mec.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/helcfl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/helcfl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/helcfl_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/helcfl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
