file(REMOVE_RECURSE
  "CMakeFiles/test_fading.dir/test_fading.cpp.o"
  "CMakeFiles/test_fading.dir/test_fading.cpp.o.d"
  "test_fading"
  "test_fading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
