# Empty compiler generated dependencies file for test_batchnorm.
# This may be replaced when dependencies are built.
