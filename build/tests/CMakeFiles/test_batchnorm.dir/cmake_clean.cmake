file(REMOVE_RECURSE
  "CMakeFiles/test_batchnorm.dir/test_batchnorm.cpp.o"
  "CMakeFiles/test_batchnorm.dir/test_batchnorm.cpp.o.d"
  "test_batchnorm"
  "test_batchnorm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_batchnorm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
