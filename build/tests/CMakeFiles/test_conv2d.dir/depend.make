# Empty dependencies file for test_conv2d.
# This may be replaced when dependencies are built.
