file(REMOVE_RECURSE
  "CMakeFiles/test_fedl.dir/test_fedl.cpp.o"
  "CMakeFiles/test_fedl.dir/test_fedl.cpp.o.d"
  "test_fedl"
  "test_fedl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fedl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
