# Empty compiler generated dependencies file for test_fedl.
# This may be replaced when dependencies are built.
