file(REMOVE_RECURSE
  "CMakeFiles/test_dataset.dir/test_dataset.cpp.o"
  "CMakeFiles/test_dataset.dir/test_dataset.cpp.o.d"
  "test_dataset"
  "test_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
