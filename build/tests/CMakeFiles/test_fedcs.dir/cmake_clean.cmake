file(REMOVE_RECURSE
  "CMakeFiles/test_fedcs.dir/test_fedcs.cpp.o"
  "CMakeFiles/test_fedcs.dir/test_fedcs.cpp.o.d"
  "test_fedcs"
  "test_fedcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fedcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
