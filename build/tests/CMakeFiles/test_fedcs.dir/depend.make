# Empty dependencies file for test_fedcs.
# This may be replaced when dependencies are built.
