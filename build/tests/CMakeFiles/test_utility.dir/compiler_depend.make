# Empty compiler generated dependencies file for test_utility.
# This may be replaced when dependencies are built.
