file(REMOVE_RECURSE
  "CMakeFiles/test_utility.dir/test_utility.cpp.o"
  "CMakeFiles/test_utility.dir/test_utility.cpp.o.d"
  "test_utility"
  "test_utility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_utility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
