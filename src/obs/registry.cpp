#include "obs/registry.h"

#include <cstdio>

namespace helcfl::obs {

void Registry::add(std::string_view name, std::uint64_t delta) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void Registry::set_gauge(std::string_view name, double value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

std::uint64_t Registry::counter(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::optional<double> Registry::gauge(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it == gauges_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counters() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {counters_.begin(), counters_.end()};
}

std::vector<std::pair<std::string, double>> Registry::gauges() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {gauges_.begin(), gauges_.end()};
}

bool Registry::empty() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counters_.empty() && gauges_.empty();
}

std::string Registry::format_table() const {
  std::string out;
  char line[160];
  for (const auto& [name, value] : counters()) {
    std::snprintf(line, sizeof(line), "%-32s %20llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += line;
  }
  for (const auto& [name, value] : gauges()) {
    std::snprintf(line, sizeof(line), "%-32s %20.6g\n", name.c_str(), value);
    out += line;
  }
  return out;
}

void Registry::emit_to(Tracer& tracer) const {
  if (!tracer.enabled(TraceLevel::kRound)) return;
  for (const auto& [name, value] : counters()) {
    tracer.emit(TraceLevel::kRound, "counter", {{"name", name}, {"value", value}});
  }
  for (const auto& [name, value] : gauges()) {
    tracer.emit(TraceLevel::kRound, "gauge", {{"name", name}, {"value", value}});
  }
}

}  // namespace helcfl::obs
