#include "obs/profiler.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "util/thread_pool.h"

namespace helcfl::obs {

namespace {

/// 0 = coordinator (or any non-pool thread), 1..N = pool worker index + 1.
std::uint32_t current_tid() {
  const std::size_t worker = util::ThreadPool::worker_index();
  return worker == util::ThreadPool::npos
             ? 0
             : static_cast<std::uint32_t>(worker + 1);
}

}  // namespace

ScopedSpan::ScopedSpan(PhaseProfiler* profiler, std::string_view phase,
                       std::int64_t round, std::int64_t user, TraceLevel level)
    : profiler_(profiler),
      phase_(phase),
      round_(round),
      user_(user),
      level_(level),
      start_(std::chrono::steady_clock::now()) {}

ScopedSpan::ScopedSpan(ScopedSpan&& other) noexcept
    : profiler_(other.profiler_),
      phase_(other.phase_),
      round_(other.round_),
      user_(other.user_),
      level_(other.level_),
      start_(other.start_) {
  other.profiler_ = nullptr;
}

ScopedSpan& ScopedSpan::operator=(ScopedSpan&& other) noexcept {
  if (this != &other) {
    finish();
    profiler_ = other.profiler_;
    phase_ = other.phase_;
    round_ = other.round_;
    user_ = other.user_;
    level_ = other.level_;
    start_ = other.start_;
    other.profiler_ = nullptr;
  }
  return *this;
}

void ScopedSpan::finish() {
  if (profiler_ == nullptr) return;
  PhaseProfiler* profiler = profiler_;
  profiler_ = nullptr;
  const auto end = std::chrono::steady_clock::now();
  const auto dur_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(end - start_).count());
  const std::uint64_t end_us = profiler->now_us();
  const std::uint64_t start_us = end_us >= dur_us ? end_us - dur_us : 0;
  profiler->record(phase_, round_, user_, start_us, dur_us, current_tid(), level_);
}

PhaseProfiler::PhaseProfiler(Tracer* tracer)
    : epoch_(std::chrono::steady_clock::now()), tracer_(tracer) {}

std::uint64_t PhaseProfiler::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void PhaseProfiler::record(std::string_view phase, std::int64_t round,
                           std::int64_t user, std::uint64_t start_us,
                           std::uint64_t dur_us, std::uint32_t tid,
                           TraceLevel level) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    spans_.push_back({std::string(phase), round, user, start_us, dur_us, tid});
  }
  if (tracer_ != nullptr && tracer_->enabled(level)) {
    if (user >= 0) {
      tracer_->emit(level, "phase",
                    {{"phase", phase},
                     {"round", round},
                     {"user", user},
                     {"tid", tid},
                     {"start_us", start_us},
                     {"dur_us", dur_us}});
    } else {
      tracer_->emit(level, "phase",
                    {{"phase", phase},
                     {"round", round},
                     {"tid", tid},
                     {"start_us", start_us},
                     {"dur_us", dur_us}});
    }
  }
}

std::size_t PhaseProfiler::span_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

std::vector<PhaseStats> PhaseProfiler::summary() const {
  std::vector<PhaseStats> stats;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const SpanRecord& span : spans_) {
      const double dur_s = static_cast<double>(span.dur_us) * 1e-6;
      auto it = std::find_if(stats.begin(), stats.end(), [&](const PhaseStats& s) {
        return s.phase == span.phase;
      });
      if (it == stats.end()) {
        stats.push_back({span.phase, 1, dur_s, dur_s, dur_s});
      } else {
        ++it->count;
        it->total_s += dur_s;
        it->min_s = std::min(it->min_s, dur_s);
        it->max_s = std::max(it->max_s, dur_s);
      }
    }
  }
  std::stable_sort(stats.begin(), stats.end(),
                   [](const PhaseStats& a, const PhaseStats& b) {
                     return a.total_s > b.total_s;
                   });
  return stats;
}

std::string PhaseProfiler::format_summary() const {
  const std::vector<PhaseStats> stats = summary();
  std::string out =
      "phase                       count     total      mean       min       max\n";
  char line[160];
  for (const PhaseStats& s : stats) {
    std::snprintf(line, sizeof(line),
                  "%-24s %8llu %8.3fs %8.3fms %7.3fms %7.3fms\n", s.phase.c_str(),
                  static_cast<unsigned long long>(s.count), s.total_s,
                  s.mean_s() * 1e3, s.min_s * 1e3, s.max_s * 1e3);
    out += line;
  }
  return out;
}

std::string PhaseProfiler::format_round(std::int64_t round) const {
  std::string out;
  char line[160];
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const SpanRecord& span : spans_) {
    if (span.round != round || span.tid != 0) continue;
    std::snprintf(line, sizeof(line), "  %-24s %8.3fms\n", span.phase.c_str(),
                  static_cast<double>(span.dur_us) * 1e-3);
    out += line;
  }
  return out;
}

void PhaseProfiler::write_chrome_trace(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file.is_open()) {
    throw std::runtime_error("PhaseProfiler: cannot open '" + path + "'");
  }
  file << "{\"traceEvents\":[";
  const std::lock_guard<std::mutex> lock(mutex_);
  bool first = true;
  for (const SpanRecord& span : spans_) {
    if (!first) file << ",";
    first = false;
    file << "\n{\"name\":\"" << span.phase << "\",\"ph\":\"X\",\"pid\":0,\"tid\":"
         << span.tid << ",\"ts\":" << span.start_us << ",\"dur\":" << span.dur_us
         << ",\"args\":{\"round\":" << span.round << ",\"user\":" << span.user
         << "}}";
  }
  file << "\n]}\n";
  if (!file.good()) {
    throw std::runtime_error("PhaseProfiler: write to '" + path + "' failed");
  }
}

}  // namespace helcfl::obs
