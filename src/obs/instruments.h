// Bundle of borrowed observability sinks (`helcfl::obs`).
//
// One copyable value carries the optional Tracer / PhaseProfiler /
// Registry pointers through TrainerOptions and into the strategies, so
// adding a new sink never changes a constructor signature.  All pointers
// are non-owning and may be null (the default Instruments is fully inert);
// the pointees must outlive every component they are attached to.
#pragma once

namespace helcfl::obs {

class Tracer;
class PhaseProfiler;
class Registry;

/// Optional observability sinks, all borrowed, all nullable.
struct Instruments {
  Tracer* tracer = nullptr;        ///< JSONL event sink
  PhaseProfiler* profiler = nullptr;  ///< wall-clock phase spans
  Registry* registry = nullptr;    ///< counters/gauges

  /// True when at least one sink is attached.
  bool any() const {
    return tracer != nullptr || profiler != nullptr || registry != nullptr;
  }
};

}  // namespace helcfl::obs
