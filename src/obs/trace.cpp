#include "obs/trace.h"

#include <charconv>
#include <cmath>
#include <fstream>
#include <stdexcept>
#include <system_error>

namespace helcfl::obs {

namespace {

/// Appends `value` JSON-escaped (without the surrounding quotes).
void append_escaped(std::string& out, std::string_view value) {
  for (const char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += hex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
}

/// Appends `value` as a JSON number: shortest round-trip representation;
/// non-finite values (invalid JSON) become null.
void append_double(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  char buffer[32];
  const std::to_chars_result result =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  out.append(buffer, result.ptr);
}

void append_field(std::string& out, std::string_view key) {
  out += ",\"";
  append_escaped(out, key);
  out += "\":";
}

}  // namespace

TraceLevel parse_trace_level(std::string_view text) {
  if (text == "off") return TraceLevel::kOff;
  if (text == "round") return TraceLevel::kRound;
  if (text == "decision") return TraceLevel::kDecision;
  if (text == "debug") return TraceLevel::kDebug;
  throw std::invalid_argument("parse_trace_level: '" + std::string(text) +
                              "' is not off|round|decision|debug");
}

std::string_view trace_level_name(TraceLevel level) {
  switch (level) {
    case TraceLevel::kOff: return "off";
    case TraceLevel::kRound: return "round";
    case TraceLevel::kDecision: return "decision";
    case TraceLevel::kDebug: return "debug";
  }
  return "off";
}

Tracer::Tracer(const std::string& path, TraceLevel level) : level_(level) {
  auto file = std::make_unique<std::ofstream>(path, std::ios::trunc);
  if (!file->is_open()) {
    throw std::runtime_error("Tracer: cannot open trace file '" + path + "'");
  }
  sink_ = std::move(file);
}

Tracer::Tracer(std::unique_ptr<std::ostream> sink, TraceLevel level)
    : level_(level), sink_(std::move(sink)) {}

Tracer::~Tracer() {
  if (sink_ != nullptr) sink_->flush();
}

void Tracer::emit(TraceLevel level, std::string_view event,
                  std::span<const Field> fields) {
  if (!enabled(level)) return;

  // Serialize everything but the seq number outside the lock; the seq slot
  // is left blank-width-free by splitting the line in two parts.
  std::string body = ",\"event\":\"";
  append_escaped(body, event);
  body += '"';
  for (const Field& field : fields) {
    append_field(body, field.key_);
    switch (field.kind_) {
      case Field::Kind::kDouble: append_double(body, field.double_); break;
      case Field::Kind::kInt: body += std::to_string(field.int_); break;
      case Field::Kind::kUint: body += std::to_string(field.uint_); break;
      case Field::Kind::kBool: body += field.bool_ ? "true" : "false"; break;
      case Field::Kind::kString:
        body += '"';
        append_escaped(body, field.string_);
        body += '"';
        break;
    }
  }
  body += "}\n";

  const std::lock_guard<std::mutex> lock(mutex_);
  *sink_ << "{\"seq\":" << seq_++ << body;
}

std::uint64_t Tracer::event_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return seq_;
}

void Tracer::flush() {
  if (sink_ == nullptr) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  sink_->flush();
}

}  // namespace helcfl::obs
