// Structured event tracing for the round engine (`helcfl::obs`).
//
// A `Tracer` turns the scheduler's and trainer's per-decision telemetry —
// Eq. (20) utilities at selection time, Algorithm-3 frequency assignments,
// TDMA upload spans, injected faults — into one JSON object per line
// (JSONL), the format Oort-style FL schedulers are debugged with.  The full
// event schema lives in docs/OBSERVABILITY.md.
//
// Design constraints (DESIGN.md §9):
//   * observability must never perturb the simulation: a Tracer only reads
//     values the simulation already computed — it draws no RNG, reorders no
//     reduction, and adds no floating-point operation to any simulated
//     quantity;
//   * thread-safe emission: events may be emitted from pool workers; each
//     event is serialized outside the lock and written as one atomic line,
//     with a `seq` number assigned under the sink mutex (so `seq` order ==
//     file order even under concurrent emit);
//   * zero cost when off: a default-constructed Tracer is disabled —
//     `enabled()` is false, `emit()` returns immediately, and no line is
//     ever written.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>

namespace helcfl::obs {

/// Verbosity of a trace.  Each event type declares the level it belongs
/// to; an event is written iff its level <= the tracer's level.
enum class TraceLevel {
  kOff = 0,       ///< no events at all (the disabled tracer's level)
  kRound = 1,     ///< run/round lifecycle, faults, churn, quorum, phases
  kDecision = 2,  ///< + per-user selection, DVFS, and TDMA events
  kDebug = 3,     ///< + per-client phase spans (chatty)
};

/// Parses "off" | "round" | "decision" | "debug" (case-sensitive); throws
/// std::invalid_argument otherwise.
TraceLevel parse_trace_level(std::string_view text);

/// The inverse of parse_trace_level.
std::string_view trace_level_name(TraceLevel level);

/// One key/value pair of a trace event.  Keys and string values are
/// borrowed (std::string_view) and must outlive the emit() call — in
/// practice both are literals or locals of the emitting statement.
class Field {
 public:
  template <typename T,
            std::enable_if_t<std::is_floating_point_v<T>, int> = 0>
  Field(std::string_view key, T value)
      : key_(key), kind_(Kind::kDouble), double_(static_cast<double>(value)) {}

  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && std::is_signed_v<T> &&
                                 !std::is_same_v<T, bool>,
                             int> = 0>
  Field(std::string_view key, T value)
      : key_(key), kind_(Kind::kInt), int_(static_cast<std::int64_t>(value)) {}

  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && std::is_unsigned_v<T> &&
                                 !std::is_same_v<T, bool>,
                             int> = 0>
  Field(std::string_view key, T value)
      : key_(key), kind_(Kind::kUint), uint_(static_cast<std::uint64_t>(value)) {}

  Field(std::string_view key, bool value)
      : key_(key), kind_(Kind::kBool), bool_(value) {}

  Field(std::string_view key, std::string_view value)
      : key_(key), kind_(Kind::kString), string_(value) {}

  Field(std::string_view key, const std::string& value)
      : key_(key), kind_(Kind::kString), string_(value) {}

  Field(std::string_view key, const char* value)
      : key_(key), kind_(Kind::kString), string_(value) {}

 private:
  friend class Tracer;
  enum class Kind { kDouble, kInt, kUint, kBool, kString };

  std::string_view key_;
  Kind kind_;
  double double_ = 0.0;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  bool bool_ = false;
  std::string_view string_;
};

/// Thread-safe JSONL event sink.  See the header comment for guarantees.
class Tracer {
 public:
  /// Disabled tracer: every emit() is a no-op, enabled() is always false.
  Tracer() = default;

  /// Opens `path` (truncating) and records events at or below `level`.
  /// Throws std::runtime_error if the file cannot be opened.
  Tracer(const std::string& path, TraceLevel level);

  /// Records to a caller-supplied stream (tests use std::ostringstream).
  Tracer(std::unique_ptr<std::ostream> sink, TraceLevel level);

  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// True iff an event of `level` would be written.  Call sites use this to
  /// skip building field values that are not literally free.
  bool enabled(TraceLevel level) const {
    return sink_ != nullptr && level != TraceLevel::kOff &&
           static_cast<int>(level) <= static_cast<int>(level_);
  }

  TraceLevel level() const { return level_; }

  /// Writes `{"seq":N,"event":"<event>",...fields}` as one line, if
  /// `level` passes the filter.  Safe to call from any thread.
  void emit(TraceLevel level, std::string_view event,
            std::initializer_list<Field> fields) {
    emit(level, event, std::span<const Field>(fields.begin(), fields.size()));
  }

  /// Span overload for dynamically built field lists.
  void emit(TraceLevel level, std::string_view event,
            std::span<const Field> fields);

  /// Events written so far (0 for a disabled tracer).
  std::uint64_t event_count() const;

  /// Flushes the underlying stream.
  void flush();

 private:
  TraceLevel level_ = TraceLevel::kOff;
  std::unique_ptr<std::ostream> sink_;
  mutable std::mutex mutex_;
  std::uint64_t seq_ = 0;
};

}  // namespace helcfl::obs
