// Counters/gauges registry (`helcfl::obs`).
//
// Unifies the ad-hoc run tallies (crash counts, retries, wasted energy,
// cumulative delay) behind one thread-safe, name-addressed registry:
//   * a *counter* is a monotonically increasing unsigned total
//     ("clients.crashed", "uploads.retries");
//   * a *gauge* is a last-written double ("delay.cum_s", "accuracy.best").
// Names are dot-separated lowercase paths; the trainer's vocabulary is
// documented in docs/OBSERVABILITY.md.  Like the Tracer, the registry only
// observes values the simulation already produced — it never feeds back.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/trace.h"

namespace helcfl::obs {

/// Thread-safe counters/gauges store; see the header comment.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Adds `delta` to counter `name` (created at 0 on first use).
  void add(std::string_view name, std::uint64_t delta = 1);

  /// Sets gauge `name` to `value` (overwrites).
  void set_gauge(std::string_view name, double value);

  /// Current counter value; 0 if never touched.
  std::uint64_t counter(std::string_view name) const;

  /// Current gauge value; nullopt if never set.
  std::optional<double> gauge(std::string_view name) const;

  /// All counters, sorted by name.
  std::vector<std::pair<std::string, std::uint64_t>> counters() const;

  /// All gauges, sorted by name.
  std::vector<std::pair<std::string, double>> gauges() const;

  bool empty() const;

  /// Fixed-width console table of every counter and gauge.
  std::string format_table() const;

  /// Emits one `counter` / `gauge` JSONL event per entry (at kRound level)
  /// — the end-of-run dump the CLI writes before closing the trace.
  void emit_to(Tracer& tracer) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
};

}  // namespace helcfl::obs
