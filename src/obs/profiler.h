// Monotonic-clock phase profiling for the round engine (`helcfl::obs`).
//
// A `PhaseProfiler` collects wall-clock spans — selection, frequency
// determination, parallel local training (per client and per pool worker),
// aggregation, evaluation — and aggregates them into per-phase summary
// statistics.  Spans can also be exported as a Chrome `trace_event` JSON
// (load in chrome://tracing or Perfetto) and, when a Tracer is attached,
// are mirrored as `phase` events into the JSONL stream.
//
// Wall-clock timing is inherently non-deterministic, but it only ever
// flows *out* of the simulation (into the profile report); no simulated
// quantity reads the clock, so profiling never perturbs training
// (DESIGN.md §9).  Recording is thread-safe: worker threads append spans
// under a mutex, tagged with their pool-worker index.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"

namespace helcfl::obs {

class PhaseProfiler;

/// RAII span: records the elapsed time between construction and
/// destruction into the profiler.  Constructed with a null profiler it is
/// inert, so call sites need no branching.  Movable, not copyable.
class ScopedSpan {
 public:
  /// Starts a span of `phase`.  `round` and `user` are optional labels
  /// (< 0 = not applicable); `level` is the TraceLevel of the mirrored
  /// `phase` event when a Tracer is attached to the profiler.
  ScopedSpan(PhaseProfiler* profiler, std::string_view phase,
             std::int64_t round = -1, std::int64_t user = -1,
             TraceLevel level = TraceLevel::kRound);

  ScopedSpan(ScopedSpan&& other) noexcept;
  ScopedSpan& operator=(ScopedSpan&& other) noexcept;
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Records the span (also called by the destructor; idempotent).
  void finish();

  ~ScopedSpan() { finish(); }

 private:
  PhaseProfiler* profiler_ = nullptr;  ///< null once finished
  std::string_view phase_;
  std::int64_t round_;
  std::int64_t user_;
  TraceLevel level_;
  std::chrono::steady_clock::time_point start_;
};

/// Aggregated statistics of one phase over the whole run.
struct PhaseStats {
  std::string phase;       ///< span name, e.g. "local_training"
  std::uint64_t count = 0; ///< spans recorded
  double total_s = 0.0;    ///< summed duration
  double min_s = 0.0;
  double max_s = 0.0;

  double mean_s() const {
    return count == 0 ? 0.0 : total_s / static_cast<double>(count);
  }
};

/// Thread-safe span collector; see the header comment.
class PhaseProfiler {
 public:
  /// `tracer` (optional, borrowed) mirrors every finished span as a
  /// `phase` JSONL event at the span's level.
  explicit PhaseProfiler(Tracer* tracer = nullptr);

  PhaseProfiler(const PhaseProfiler&) = delete;
  PhaseProfiler& operator=(const PhaseProfiler&) = delete;

  /// Convenience factory for a span of this profiler.
  ScopedSpan span(std::string_view phase, std::int64_t round = -1,
                  std::int64_t user = -1, TraceLevel level = TraceLevel::kRound) {
    return ScopedSpan(this, phase, round, user, level);
  }

  /// Records one finished span.  `start_us` is microseconds since the
  /// profiler's construction; `tid` 0 is the coordinator, 1..N pool
  /// workers.  Usually called by ScopedSpan, exposed for tests.
  void record(std::string_view phase, std::int64_t round, std::int64_t user,
              std::uint64_t start_us, std::uint64_t dur_us, std::uint32_t tid,
              TraceLevel level);

  /// Microseconds elapsed since construction (the span timebase).
  std::uint64_t now_us() const;

  std::size_t span_count() const;

  /// Per-phase aggregates, sorted by descending total time.
  std::vector<PhaseStats> summary() const;

  /// Fixed-width console table of summary() (the --profile report).
  std::string format_summary() const;

  /// Per-round breakdown of one round's phases (coordinator spans only),
  /// one line per span in recording order.
  std::string format_round(std::int64_t round) const;

  /// Writes all spans as a Chrome trace_event JSON array ("X" complete
  /// events; ts/dur in microseconds, tid = pool worker index + 1, 0 for
  /// the coordinator).  Throws std::runtime_error on I/O failure.
  void write_chrome_trace(const std::string& path) const;

 private:
  struct SpanRecord {
    std::string phase;
    std::int64_t round;
    std::int64_t user;
    std::uint64_t start_us;
    std::uint64_t dur_us;
    std::uint32_t tid;
  };

  std::chrono::steady_clock::time_point epoch_;
  Tracer* tracer_;
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
};

}  // namespace helcfl::obs
