#include "sched/scheduler.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mec/cost_model.h"

namespace helcfl::sched {

void SelectionStrategy::save_state(util::ByteWriter& out) const {
  out.str(name());
  util::ByteWriter payload;
  do_save_state(payload);
  out.vec_u8(payload.data());
}

void SelectionStrategy::load_state(util::ByteReader& in) {
  const std::string stored = in.str();
  if (stored != name()) {
    throw util::SerialError("SelectionStrategy::load_state: state was saved by '" +
                            stored + "' but this strategy is '" + name() + "'");
  }
  const std::vector<std::uint8_t> payload = in.vec_u8();
  util::ByteReader reader(payload);
  do_load_state(reader);
  reader.expect_end("strategy payload (" + name() + ")");
}

void SelectionStrategy::capture_initial_state() {
  util::ByteWriter writer;
  save_state(writer);
  initial_state_ = writer.take();
}

void SelectionStrategy::reset() {
  if (initial_state_.empty()) return;
  util::ByteReader reader(initial_state_);
  load_state(reader);
  reader.expect_end("strategy initial snapshot (" + name() + ")");
}

std::size_t selection_count(std::size_t n_users, double fraction) {
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("selection_count: fraction must be in [0, 1]");
  }
  const double raw = static_cast<double>(n_users) * fraction;
  const auto n = static_cast<std::size_t>(std::llround(raw));
  return std::clamp<std::size_t>(n, 1, n_users);
}

std::vector<UserInfo> build_user_info(std::span<const mec::Device> devices,
                                      const mec::Channel& channel,
                                      double model_size_bits) {
  std::vector<UserInfo> users;
  users.reserve(devices.size());
  for (const auto& device : devices) {
    if (!device.is_valid()) {
      throw std::invalid_argument("build_user_info: invalid device " +
                                  device.to_string());
    }
    UserInfo info;
    info.device = device;
    info.t_cal_max_s = mec::compute_delay_s(device, device.f_max_hz);
    info.t_com_s = mec::upload_delay_s(device, channel, model_size_bits);
    users.push_back(info);
  }
  return users;
}

}  // namespace helcfl::sched
