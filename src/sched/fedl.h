// FEDL baseline (Tran et al. [12]): Classic-FL random selection combined
// with a closed-form per-device frequency that balances computation energy
// against delay.
//
// Per device, FEDL trades E^cal = alpha/2 * pi*|D| * f^2 against the delay
// cost kappa * T^cal = kappa * pi*|D| / f.  Minimizing
//   alpha/2 * pi*|D| * f^2 + kappa * pi*|D| / f
// over f gives d/df = alpha * pi*|D| * f - kappa * pi*|D| / f^2 = 0, i.e.
//   f* = (kappa / alpha)^(1/3),
// clamped into the device's DVFS range.  This is the closed-form
// delay/energy balance the paper attributes to FEDL; its user selection is
// the same as Classic FL (Section VII-B: "FEDL takes the same user
// selection method as Classic FL").
#pragma once

#include "sched/scheduler.h"
#include "util/rng.h"

namespace helcfl::sched {

class FedlSelection : public SelectionStrategy {
 public:
  /// `kappa` is the delay weight (J/s); larger kappa pushes devices toward
  /// f_max.  Default 0.2 puts f* = 1 GHz for the paper's alpha = 2e-28.
  FedlSelection(double fraction, double kappa, util::Rng rng);

  Decision decide(const FleetView& fleet, std::size_t round) override;
  std::string name() const override { return "FEDL"; }

  /// The closed-form optimum before clamping.
  static double unconstrained_frequency(double kappa, double switched_capacitance);

 protected:
  void do_save_state(util::ByteWriter& out) const override;
  void do_load_state(util::ByteReader& in) override;

 private:
  double fraction_;
  double kappa_;
  util::Rng rng_;
};

}  // namespace helcfl::sched
