// FedCS baseline (Nishio & Yonetani [10]): deadline-constrained greedy
// selection of as many *fast* users as fit into a per-round deadline.
//
// The original FedCS solves a knapsack-flavoured maximization of the user
// count under the round deadline; we reproduce its published greedy
// heuristic: scan candidates in ascending order of their marginal round
// time and admit every user that keeps the estimated TDMA round time within
// the deadline.  All admitted users run at maximum frequency.
#pragma once

#include "sched/scheduler.h"

namespace helcfl::sched {

class FedCsSelection : public SelectionStrategy {
 public:
  /// `deadline_s` is the per-round time budget T_round.  `max_fraction`
  /// bounds the admitted user count at selection_count(Q, max_fraction)
  /// so FedCS competes with the other schemes under the same uplink budget
  /// (<= 0 disables the bound).
  explicit FedCsSelection(double deadline_s, double max_fraction = 0.0);

  Decision decide(const FleetView& fleet, std::size_t round) override;
  void reset() override {}
  std::string name() const override { return "FedCS"; }

  double deadline_s() const { return deadline_s_; }

 private:
  double deadline_s_;
  double max_fraction_;
};

/// Estimated TDMA round time if exactly `members` participate at f_max:
/// compute in parallel, upload serially in compute-completion order.
double estimate_round_time(const FleetView& fleet,
                           std::span<const std::size_t> members);

}  // namespace helcfl::sched
