// FedCS baseline (Nishio & Yonetani [10]): deadline-constrained greedy
// selection of as many *fast* users as fit into a per-round deadline.
//
// The original FedCS solves a knapsack-flavoured maximization of the user
// count under the round deadline; we reproduce its published greedy
// heuristic: scan candidates in ascending order of their marginal round
// time and admit every user that keeps the estimated TDMA round time within
// the deadline.  All admitted users run at maximum frequency.
#pragma once

#include <vector>

#include "sched/scheduler.h"

namespace helcfl::sched {

class FedCsSelection : public SelectionStrategy {
 public:
  /// `deadline_s` is the per-round time budget T_round.  `max_fraction`
  /// bounds the admitted user count at selection_count(Q, max_fraction)
  /// so FedCS competes with the other schemes under the same uplink budget
  /// (<= 0 disables the bound).
  explicit FedCsSelection(double deadline_s, double max_fraction = 0.0);

  Decision decide(const FleetView& fleet, std::size_t round) override;
  /// Failure-aware deadline set: FedCS admits by estimated delay, so a
  /// client that keeps missing the round (crash, lost upload, straggling
  /// past the cutoff) has a stale estimate.  Each consecutive failure
  /// inflates the client's ranking delay (doubling per miss), pushing it
  /// behind candidates that actually deliver; a completed round clears the
  /// streak.  With no failures every streak is 0 and decide() is unchanged.
  void report_completion(std::size_t round, const Decision& decision,
                         std::span<const std::uint8_t> completed) override;
  std::string name() const override { return "FedCS"; }

  double deadline_s() const { return deadline_s_; }

  /// Consecutive missed rounds of `user` (0 = last participation worked).
  std::size_t failure_streak(std::size_t user) const {
    return user < failure_streaks_.size() ? failure_streaks_[user] : 0;
  }

 protected:
  void do_save_state(util::ByteWriter& out) const override;
  void do_load_state(util::ByteReader& in) override;

 private:
  double deadline_s_;
  double max_fraction_;
  std::vector<std::size_t> failure_streaks_;
};

/// Estimated TDMA round time if exactly `members` participate at f_max:
/// compute in parallel, upload serially in compute-completion order.
double estimate_round_time(const FleetView& fleet,
                           std::span<const std::size_t> members);

}  // namespace helcfl::sched
