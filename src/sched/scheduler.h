// Per-round user selection and frequency determination interface.
//
// Algorithm 1 calls a SelectionStrategy at the top of every round (line 4)
// to obtain (a) the selected user set Γ_j and (b) the operating frequency
// F_Γj of each selected user.  Strategies are stateful across rounds (e.g.
// HELCFL's appearance counters); reset() restores the initial state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mec/channel.h"
#include "mec/device.h"
#include "obs/instruments.h"
#include "util/serial.h"

namespace helcfl::sched {

/// What the FLCC knows about one user after the initialization phase
/// (Algorithm 1 lines 1-2): its device parameters and the delays derived
/// from them at maximum frequency.
struct UserInfo {
  mec::Device device;        ///< static resource description of v_q
  double t_cal_max_s = 0.0;  ///< T^cal at f_max — Eq. (4)
  double t_com_s = 0.0;      ///< T^com — Eq. (7)

  /// Standalone round delay at f_max (Eq. 9, ignoring TDMA queueing) —
  /// the denominator of the Eq. (20) utility.
  double total_delay_max_s() const { return t_cal_max_s + t_com_s; }
};

/// Fleet snapshot passed to strategies each round.
///
/// `alive` is the availability mask maintained by the battery model
/// (1 = selectable); an empty mask means every user is available.  A
/// strategy must never select a user whose mask entry is 0.
struct FleetView {
  std::span<const UserInfo> users;         ///< all Q users, index = user id
  std::span<const std::uint8_t> alive = {};  ///< 1 = selectable; empty = all

  /// Whether user i may be selected this round.
  bool is_alive(std::size_t i) const { return alive.empty() || alive[i] != 0; }

  /// Number of selectable users.
  std::size_t alive_count() const {
    if (alive.empty()) return users.size();
    std::size_t count = 0;
    for (const auto a : alive) count += a != 0 ? 1 : 0;
    return count;
  }

  /// Indices of all selectable users, ascending.
  std::vector<std::size_t> alive_indices() const {
    std::vector<std::size_t> indices;
    indices.reserve(users.size());
    for (std::size_t i = 0; i < users.size(); ++i) {
      if (is_alive(i)) indices.push_back(i);
    }
    return indices;
  }
};

/// One round's scheduling decision: Γ_j and F_Γj, index-aligned.
struct Decision {
  std::vector<std::size_t> selected;     ///< indices into FleetView::users
  std::vector<double> frequencies_hz;    ///< operating frequency per selected user
};

/// Strategy interface (Algorithm 1 line 4).
class SelectionStrategy {
 public:
  SelectionStrategy() = default;
  SelectionStrategy(const SelectionStrategy&) = delete;
  SelectionStrategy& operator=(const SelectionStrategy&) = delete;
  virtual ~SelectionStrategy() = default;

  /// Chooses the users and frequencies for round `round` (0-based).
  virtual Decision decide(const FleetView& fleet, std::size_t round) = 0;

  /// Training feedback delivered after each round.  With failure-aware
  /// execution the trainer filters this down to the clients whose updates
  /// actually entered the global model, so loss-aware strategies (e.g.
  /// Oort-like selection) never learn from losses the server discarded;
  /// `decision` then holds only those survivors.  The default
  /// implementation ignores it.
  virtual void observe(std::size_t round, const Decision& decision,
                       std::span<const double> client_losses) {
    (void)round;
    (void)decision;
    (void)client_losses;
  }

  /// Completion feedback delivered after each round: `completed[k]` is 1
  /// iff the update of `decision.selected[k]` entered the global model
  /// (trained, uploaded within the retry budget, arrived before the
  /// straggler cutoff, and the round met its quorum).  Strategies whose
  /// state assumes participation (HELCFL's α_q appearance counters, FedCS's
  /// deadline set, Oort's reliability view) correct themselves here; the
  /// default implementation ignores it.  Called every round, after
  /// observe(); with faults disabled the mask is all-ones.
  virtual void report_completion(std::size_t round, const Decision& decision,
                                 std::span<const std::uint8_t> completed) {
    (void)round;
    (void)decision;
    (void)completed;
  }

  /// Restores construction-time state (counters, RNG stream).  The default
  /// implementation replays the snapshot captured by capture_initial_state()
  /// through load_state() — the same code path a checkpoint resume takes —
  /// so reset() cannot drift from restore semantics (no-op if the subclass
  /// never captured).  Override only if the strategy has state that
  /// save_state/load_state deliberately do not cover.
  virtual void reset();

  /// Serializes all mutable state into `out`.  Frame: the strategy name(),
  /// then a length-prefixed payload produced by do_save_state().  The
  /// payload also echoes the construction-time configuration so that
  /// load_state() onto a differently-configured strategy fails loudly.
  void save_state(util::ByteWriter& out) const;

  /// Restores state written by save_state() on an identically-configured
  /// strategy.  Throws util::SerialError if the stored name does not match
  /// name(), if the configuration echo mismatches, or if the payload is
  /// malformed; implementations parse the full payload before mutating any
  /// member, so a throwing load leaves the strategy unchanged.
  void load_state(util::ByteReader& in);

  /// The construction-time snapshot reset() restores (empty if the
  /// subclass never called capture_initial_state()).
  std::span<const std::uint8_t> initial_state() const { return initial_state_; }

  /// Human-readable scheme label ("HELCFL", "FedCS", ...); also the
  /// `strategy` field of every traced selection event.
  virtual std::string name() const = 0;

  /// Attaches observability sinks (all borrowed, all nullable; see
  /// `obs::Instruments`).  The trainer calls this at the start of run()
  /// with its own instruments so strategy decisions land in the same
  /// trace.  Tracing must never perturb a decision: strategies only read
  /// already-computed values when emitting (no RNG, no reordering).
  void set_instruments(const obs::Instruments& instruments) {
    instruments_ = instruments;
  }

 protected:
  /// Writes the strategy-specific payload: configuration echo first, then
  /// mutable state.  Default: empty payload (stateless strategy).
  virtual void do_save_state(util::ByteWriter& out) const { (void)out; }

  /// Parses a payload written by do_save_state().  Must validate and parse
  /// everything into locals before assigning to members ("no partial
  /// restore").  Default: accepts only the empty payload.
  virtual void do_load_state(util::ByteReader& in) { (void)in; }

  /// Records the current state as the reset() target.  Call at the end of
  /// the most-derived constructor (virtual dispatch to do_save_state() is
  /// correct there — the object is fully constructed as that type).
  void capture_initial_state();

  /// The attached sinks (default: all null, i.e. tracing off).
  obs::Instruments instruments_{};

 private:
  std::vector<std::uint8_t> initial_state_;
};

/// N = max(Q * C, 1) of Algorithm 2 line 11.
std::size_t selection_count(std::size_t n_users, double fraction);

/// Builds the per-user FleetView entries from raw devices (initialization
/// phase: derive T^cal at f_max and T^com).
std::vector<UserInfo> build_user_info(std::span<const mec::Device> devices,
                                      const mec::Channel& channel,
                                      double model_size_bits);

}  // namespace helcfl::sched
