#include "sched/random_selection.h"

#include <algorithm>

#include "obs/trace.h"

namespace helcfl::sched {

RandomSelection::RandomSelection(double fraction, util::Rng rng)
    : fraction_(fraction), rng_(rng) {
  capture_initial_state();
}

Decision RandomSelection::decide(const FleetView& fleet, std::size_t round) {
  const std::vector<std::size_t> alive = fleet.alive_indices();
  Decision decision;
  if (alive.empty()) return decision;
  const std::size_t n =
      std::min(selection_count(fleet.users.size(), fraction_), alive.size());
  for (const std::size_t pick : rng_.sample_without_replacement(alive.size(), n)) {
    decision.selected.push_back(alive[pick]);
  }
  decision.frequencies_hz.reserve(n);
  for (const std::size_t i : decision.selected) {
    decision.frequencies_hz.push_back(fleet.users[i].device.f_max_hz);
  }
  // Uniform draws carry no ranking signal; the trace still records who was
  // picked so runs are comparable across strategies.
  if (obs::Tracer* tracer = instruments_.tracer;
      tracer != nullptr && tracer->enabled(obs::TraceLevel::kDecision)) {
    for (std::size_t rank = 0; rank < decision.selected.size(); ++rank) {
      tracer->emit(obs::TraceLevel::kDecision, "selection",
                   {{"round", round},
                    {"user", decision.selected[rank]},
                    {"rank", rank},
                    {"strategy", name()}});
    }
  }
  return decision;
}

void RandomSelection::do_save_state(util::ByteWriter& out) const {
  out.f64(fraction_);
  util::write_rng(out, rng_);
}

void RandomSelection::do_load_state(util::ByteReader& in) {
  const double fraction = in.f64();
  if (fraction != fraction_) {
    throw util::SerialError("RandomSelection: state was saved with fraction " +
                            std::to_string(fraction) + ", this strategy uses " +
                            std::to_string(fraction_));
  }
  rng_ = util::read_rng(in);
}

}  // namespace helcfl::sched
