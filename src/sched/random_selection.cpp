#include "sched/random_selection.h"

#include <algorithm>

namespace helcfl::sched {

RandomSelection::RandomSelection(double fraction, util::Rng rng)
    : fraction_(fraction), initial_rng_(rng), rng_(rng) {}

Decision RandomSelection::decide(const FleetView& fleet, std::size_t /*round*/) {
  const std::vector<std::size_t> alive = fleet.alive_indices();
  Decision decision;
  if (alive.empty()) return decision;
  const std::size_t n =
      std::min(selection_count(fleet.users.size(), fraction_), alive.size());
  for (const std::size_t pick : rng_.sample_without_replacement(alive.size(), n)) {
    decision.selected.push_back(alive[pick]);
  }
  decision.frequencies_hz.reserve(n);
  for (const std::size_t i : decision.selected) {
    decision.frequencies_hz.push_back(fleet.users[i].device.f_max_hz);
  }
  return decision;
}

void RandomSelection::reset() { rng_ = initial_rng_; }

}  // namespace helcfl::sched
