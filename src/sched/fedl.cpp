#include "sched/fedl.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/trace.h"

namespace helcfl::sched {

FedlSelection::FedlSelection(double fraction, double kappa, util::Rng rng)
    : fraction_(fraction), kappa_(kappa), rng_(rng) {
  if (kappa <= 0.0) throw std::invalid_argument("FedlSelection: kappa must be > 0");
  capture_initial_state();
}

double FedlSelection::unconstrained_frequency(double kappa,
                                              double switched_capacitance) {
  return std::cbrt(kappa / switched_capacitance);
}

Decision FedlSelection::decide(const FleetView& fleet, std::size_t round) {
  const std::vector<std::size_t> alive = fleet.alive_indices();
  Decision decision;
  if (alive.empty()) return decision;
  const std::size_t n =
      std::min(selection_count(fleet.users.size(), fraction_), alive.size());
  for (const std::size_t pick : rng_.sample_without_replacement(alive.size(), n)) {
    decision.selected.push_back(alive[pick]);
  }
  obs::Tracer* tracer = instruments_.tracer;
  const bool trace_decisions =
      tracer != nullptr && tracer->enabled(obs::TraceLevel::kDecision);
  decision.frequencies_hz.reserve(n);
  for (std::size_t rank = 0; rank < decision.selected.size(); ++rank) {
    const std::size_t i = decision.selected[rank];
    const auto& device = fleet.users[i].device;
    const double f_star =
        unconstrained_frequency(kappa_, device.switched_capacitance);
    decision.frequencies_hz.push_back(device.clamp_frequency(f_star));
    // Decision telemetry: selection is uniform, the interesting signal is
    // the closed-form frequency and whether the DVFS range clamped it.
    if (trace_decisions) {
      tracer->emit(obs::TraceLevel::kDecision, "selection",
                   {{"round", round},
                    {"user", i},
                    {"rank", rank},
                    {"strategy", name()},
                    {"f_star_hz", f_star},
                    {"f_hz", decision.frequencies_hz.back()}});
    }
  }
  return decision;
}

void FedlSelection::do_save_state(util::ByteWriter& out) const {
  out.f64(fraction_);
  out.f64(kappa_);
  util::write_rng(out, rng_);
}

void FedlSelection::do_load_state(util::ByteReader& in) {
  const double fraction = in.f64();
  const double kappa = in.f64();
  if (fraction != fraction_ || kappa != kappa_) {
    throw util::SerialError(
        "FedlSelection: state was saved with fraction=" + std::to_string(fraction) +
        " kappa=" + std::to_string(kappa) + ", this strategy uses fraction=" +
        std::to_string(fraction_) + " kappa=" + std::to_string(kappa_));
  }
  rng_ = util::read_rng(in);
}

}  // namespace helcfl::sched
