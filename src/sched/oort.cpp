#include "sched/oort.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/trace.h"

namespace helcfl::sched {

OortSelection::OortSelection(const OortOptions& options, util::Rng rng)
    : options_(options), rng_(rng) {
  if (options.fraction <= 0.0 || options.fraction > 1.0) {
    throw std::invalid_argument("OortSelection: fraction must be in (0, 1]");
  }
  if (options.alpha < 0.0) {
    throw std::invalid_argument("OortSelection: alpha must be >= 0");
  }
  if (options.explore_ratio < 0.0 || options.explore_ratio > 1.0) {
    throw std::invalid_argument("OortSelection: explore_ratio must be in [0, 1]");
  }
  capture_initial_state();
}

double OortSelection::statistical_utility(std::size_t user) const {
  if (user >= explored_.size() || !explored_[user]) return max_seen_loss_;
  return last_loss_[user];
}

Decision OortSelection::decide(const FleetView& fleet, std::size_t round) {
  const std::size_t q = fleet.users.size();
  if (last_loss_.empty()) {
    last_loss_.assign(q, 0.0);
    explored_.assign(q, false);
  } else if (last_loss_.size() != q) {
    throw std::invalid_argument("OortSelection: fleet size changed");
  }
  if (resolved_t_pref_ <= 0.0) {
    if (options_.preferred_duration_s > 0.0) {
      resolved_t_pref_ = options_.preferred_duration_s;
    } else {
      std::vector<double> delays;
      delays.reserve(q);
      for (const auto& user : fleet.users) delays.push_back(user.total_delay_max_s());
      std::nth_element(delays.begin(), delays.begin() + static_cast<std::ptrdiff_t>(q / 2),
                       delays.end());
      resolved_t_pref_ = delays[q / 2];
    }
  }

  const std::vector<std::size_t> alive = fleet.alive_indices();
  Decision decision;
  if (alive.empty()) return decision;
  const std::size_t n = std::min(selection_count(q, options_.fraction), alive.size());
  const auto n_explore = static_cast<std::size_t>(
      std::floor(options_.explore_ratio * static_cast<double>(n)));
  const std::size_t n_exploit = n - n_explore;

  // Exploit arm: top users by loss x system utility.
  std::vector<std::size_t> order = alive;
  std::vector<double> utilities(q, 0.0);
  for (const std::size_t i : alive) {
    const double stat =
        static_cast<double>(fleet.users[i].device.num_samples) *
        statistical_utility(i);
    const double t = fleet.users[i].total_delay_max_s();
    const double system =
        t <= resolved_t_pref_ ? 1.0 : std::pow(resolved_t_pref_ / t, options_.alpha);
    utilities[i] = stat * system * reliability_multiplier(i);
  }
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return utilities[a] > utilities[b];
  });
  decision.selected.assign(order.begin(),
                           order.begin() + static_cast<std::ptrdiff_t>(n_exploit));

  // Explore arm: uniform over the remaining alive users.
  if (n_explore > 0) {
    std::vector<std::size_t> rest(order.begin() + static_cast<std::ptrdiff_t>(n_exploit),
                                  order.end());
    for (const std::size_t pick :
         rng_.sample_without_replacement(rest.size(), std::min(n_explore, rest.size()))) {
      decision.selected.push_back(rest[pick]);
    }
  }

  decision.frequencies_hz.reserve(decision.selected.size());
  for (const std::size_t i : decision.selected) {
    decision.frequencies_hz.push_back(fleet.users[i].device.f_max_hz);
  }
  // Decision telemetry: Oort is debugged through exactly this per-decision
  // view (Lai et al., OSDI 2021) — the utility each pick was ranked by,
  // whether it came from the exploit or explore arm, and the reliability
  // discount its failure streak currently costs it.
  if (obs::Tracer* tracer = instruments_.tracer;
      tracer != nullptr && tracer->enabled(obs::TraceLevel::kDecision)) {
    for (std::size_t rank = 0; rank < decision.selected.size(); ++rank) {
      const std::size_t user = decision.selected[rank];
      tracer->emit(obs::TraceLevel::kDecision, "selection",
                   {{"round", round},
                    {"user", user},
                    {"rank", rank},
                    {"strategy", name()},
                    {"utility", utilities[user]},
                    {"explore_arm", rank >= n_exploit},
                    {"reliability", reliability_multiplier(user)}});
    }
  }
  return decision;
}

void OortSelection::observe(std::size_t /*round*/, const Decision& decision,
                            std::span<const double> client_losses) {
  if (decision.selected.size() != client_losses.size()) {
    throw std::invalid_argument("OortSelection::observe: size mismatch");
  }
  for (std::size_t k = 0; k < decision.selected.size(); ++k) {
    const std::size_t user = decision.selected[k];
    if (user >= last_loss_.size()) continue;
    last_loss_[user] = client_losses[k];
    explored_[user] = true;
    max_seen_loss_ = std::max(max_seen_loss_, client_losses[k]);
  }
}

double OortSelection::reliability_multiplier(std::size_t user) const {
  const std::size_t misses =
      user < failure_streaks_.size() ? std::min<std::size_t>(failure_streaks_[user], 60)
                                     : 0;
  return misses == 0 ? 1.0 : std::ldexp(1.0, -static_cast<int>(misses));
}

void OortSelection::report_completion(std::size_t /*round*/, const Decision& decision,
                                      std::span<const std::uint8_t> completed) {
  if (decision.selected.size() != completed.size()) {
    throw std::invalid_argument("OortSelection::report_completion: size mismatch");
  }
  for (std::size_t k = 0; k < decision.selected.size(); ++k) {
    const std::size_t user = decision.selected[k];
    if (user >= failure_streaks_.size()) failure_streaks_.resize(user + 1, 0);
    failure_streaks_[user] = completed[k] != 0 ? 0 : failure_streaks_[user] + 1;
  }
}

void OortSelection::do_save_state(util::ByteWriter& out) const {
  out.f64(options_.fraction);
  out.f64(options_.alpha);
  out.f64(options_.explore_ratio);
  out.f64(options_.preferred_duration_s);
  util::write_rng(out, rng_);
  out.f64(resolved_t_pref_);
  out.f64(max_seen_loss_);
  out.vec_f64(last_loss_);
  std::vector<std::uint8_t> explored(explored_.size());
  for (std::size_t i = 0; i < explored_.size(); ++i) explored[i] = explored_[i] ? 1 : 0;
  out.vec_u8(explored);
  out.vec_size(failure_streaks_);
}

void OortSelection::do_load_state(util::ByteReader& in) {
  const double fraction = in.f64();
  const double alpha = in.f64();
  const double explore_ratio = in.f64();
  const double preferred = in.f64();
  if (fraction != options_.fraction || alpha != options_.alpha ||
      explore_ratio != options_.explore_ratio ||
      preferred != options_.preferred_duration_s) {
    throw util::SerialError(
        "OortSelection: state was saved under different options "
        "(fraction/alpha/explore_ratio/preferred_duration_s mismatch)");
  }
  // Parse everything before assigning any member: a malformed payload must
  // not leave the strategy half-restored.
  util::Rng rng = util::read_rng(in);
  const double resolved_t_pref = in.f64();
  const double max_seen_loss = in.f64();
  std::vector<double> last_loss = in.vec_f64();
  const std::vector<std::uint8_t> explored_bytes = in.vec_u8();
  std::vector<std::size_t> failure_streaks = in.vec_size();
  if (explored_bytes.size() != last_loss.size()) {
    throw util::SerialError(
        "OortSelection: explored/last_loss length mismatch in saved state");
  }
  std::vector<bool> explored(explored_bytes.size());
  for (std::size_t i = 0; i < explored_bytes.size(); ++i) {
    explored[i] = explored_bytes[i] != 0;
  }
  rng_ = rng;
  resolved_t_pref_ = resolved_t_pref;
  max_seen_loss_ = max_seen_loss;
  last_loss_ = std::move(last_loss);
  explored_ = std::move(explored);
  failure_streaks_ = std::move(failure_streaks);
}

}  // namespace helcfl::sched
