#include "sched/fedcs.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "mec/tdma.h"
#include "obs/trace.h"

namespace helcfl::sched {

FedCsSelection::FedCsSelection(double deadline_s, double max_fraction)
    : deadline_s_(deadline_s), max_fraction_(max_fraction) {
  if (deadline_s <= 0.0) {
    throw std::invalid_argument("FedCsSelection: deadline must be positive");
  }
  capture_initial_state();
}

void FedCsSelection::do_save_state(util::ByteWriter& out) const {
  out.f64(deadline_s_);
  out.f64(max_fraction_);
  out.vec_size(failure_streaks_);
}

void FedCsSelection::do_load_state(util::ByteReader& in) {
  const double deadline_s = in.f64();
  const double max_fraction = in.f64();
  if (deadline_s != deadline_s_ || max_fraction != max_fraction_) {
    throw util::SerialError(
        "FedCsSelection: state was saved with deadline_s=" +
        std::to_string(deadline_s) + " max_fraction=" + std::to_string(max_fraction) +
        ", this strategy uses deadline_s=" + std::to_string(deadline_s_) +
        " max_fraction=" + std::to_string(max_fraction_));
  }
  failure_streaks_ = in.vec_size();
}

double estimate_round_time(const FleetView& fleet,
                           std::span<const std::size_t> members) {
  std::vector<double> compute;
  std::vector<double> upload;
  compute.reserve(members.size());
  upload.reserve(members.size());
  for (const std::size_t i : members) {
    compute.push_back(fleet.users[i].t_cal_max_s);
    upload.push_back(fleet.users[i].t_com_s);
  }
  return mec::schedule_uploads(compute, upload).round_delay_s;
}

Decision FedCsSelection::decide(const FleetView& fleet, std::size_t round) {
  // Candidates in ascending order of standalone delay — the "short training
  // delay first" greedy of the paper.  Failure-aware ranking: a consecutive
  // miss doubles a candidate's effective delay, so unreliable clients sink
  // behind deliverers without ever being excluded outright (a recovered
  // client clears its streak on the next completed round).
  const auto ranking_delay = [&](std::size_t i) {
    const double streak_penalty =
        static_cast<double>(std::uint64_t{1} << std::min<std::size_t>(failure_streak(i), 32));
    return fleet.users[i].total_delay_max_s() * streak_penalty;
  };
  std::vector<std::size_t> order(fleet.users.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return ranking_delay(a) < ranking_delay(b);
  });

  const std::size_t cap = max_fraction_ > 0.0
                              ? selection_count(fleet.users.size(), max_fraction_)
                              : fleet.users.size();

  Decision decision;
  for (const std::size_t candidate : order) {
    if (!fleet.is_alive(candidate)) continue;
    if (decision.selected.size() >= cap) break;
    decision.selected.push_back(candidate);
    if (estimate_round_time(fleet, decision.selected) > deadline_s_) {
      decision.selected.pop_back();
      // Later candidates are even slower; no further candidate can fit.
      break;
    }
  }
  // Never return an empty round: admit the single fastest *alive* user even
  // if it alone exceeds the deadline (FedCS's "at least one" behaviour).
  if (decision.selected.empty()) {
    for (const std::size_t candidate : order) {
      if (fleet.is_alive(candidate)) {
        decision.selected.push_back(candidate);
        break;
      }
    }
  }

  decision.frequencies_hz.reserve(decision.selected.size());
  for (const std::size_t i : decision.selected) {
    decision.frequencies_hz.push_back(fleet.users[i].device.f_max_hz);
  }
  // Decision telemetry: the deadline-greedy admits by ranking delay (the
  // standalone delay inflated by the failure streak), so the trace records
  // the value each admitted user was actually ranked by.
  if (obs::Tracer* tracer = instruments_.tracer;
      tracer != nullptr && tracer->enabled(obs::TraceLevel::kDecision)) {
    for (std::size_t rank = 0; rank < decision.selected.size(); ++rank) {
      const std::size_t user = decision.selected[rank];
      tracer->emit(obs::TraceLevel::kDecision, "selection",
                   {{"round", round},
                    {"user", user},
                    {"rank", rank},
                    {"strategy", name()},
                    {"ranking_delay_s", ranking_delay(user)},
                    {"deadline_s", deadline_s_}});
    }
  }
  return decision;
}

void FedCsSelection::report_completion(std::size_t /*round*/,
                                       const Decision& decision,
                                       std::span<const std::uint8_t> completed) {
  if (decision.selected.size() != completed.size()) {
    throw std::invalid_argument("FedCsSelection::report_completion: size mismatch");
  }
  for (std::size_t k = 0; k < decision.selected.size(); ++k) {
    const std::size_t user = decision.selected[k];
    if (user >= failure_streaks_.size()) failure_streaks_.resize(user + 1, 0);
    failure_streaks_[user] = completed[k] != 0 ? 0 : failure_streaks_[user] + 1;
  }
}

}  // namespace helcfl::sched
