// Classic FL baseline (McMahan et al. [9]): uniform random selection of
// Q*C users each round; everyone runs at maximum frequency.
#pragma once

#include "sched/scheduler.h"
#include "util/rng.h"

namespace helcfl::sched {

class RandomSelection : public SelectionStrategy {
 public:
  /// `fraction` is the user selection fraction C.
  RandomSelection(double fraction, util::Rng rng);

  Decision decide(const FleetView& fleet, std::size_t round) override;
  std::string name() const override { return "ClassicFL"; }

 protected:
  void do_save_state(util::ByteWriter& out) const override;
  void do_load_state(util::ByteReader& in) override;

 private:
  double fraction_;
  util::Rng rng_;
};

}  // namespace helcfl::sched
