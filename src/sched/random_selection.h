// Classic FL baseline (McMahan et al. [9]): uniform random selection of
// Q*C users each round; everyone runs at maximum frequency.
#pragma once

#include "sched/scheduler.h"
#include "util/rng.h"

namespace helcfl::sched {

class RandomSelection : public SelectionStrategy {
 public:
  /// `fraction` is the user selection fraction C.
  RandomSelection(double fraction, util::Rng rng);

  Decision decide(const FleetView& fleet, std::size_t round) override;
  void reset() override;
  std::string name() const override { return "ClassicFL"; }

 private:
  double fraction_;
  util::Rng initial_rng_;
  util::Rng rng_;
};

}  // namespace helcfl::sched
