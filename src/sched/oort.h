// Oort-like loss-aware selection (extension; see DESIGN.md §6).
//
// Oort (Lai et al., OSDI 2021) ranks clients by the product of a
// *statistical utility* (how informative their data currently is — proxied
// by their last observed training loss) and a *system utility* (a penalty
// for clients slower than a target round duration).  The reproduction
// bands note that HELCFL's selection is "Oort-like"; this strategy makes
// the comparison concrete on our substrate:
//
//   u_q = stat_q * min(1, (T_pref / T_q))^alpha,
//   stat_q = |D_q| * last_loss_q   (initially optimistic: unexplored users
//                                   carry the maximum observed loss)
//
// with epsilon-greedy exploration so unexplored or long-unseen users keep
// entering the pool.
#pragma once

#include <cstddef>
#include <vector>

#include "sched/scheduler.h"
#include "util/rng.h"

namespace helcfl::sched {

struct OortOptions {
  double fraction = 0.1;       ///< user selection fraction C
  double alpha = 2.0;          ///< system-penalty exponent
  double explore_ratio = 0.2;  ///< fraction of each cohort drawn at random
  /// Preferred round duration T_pref; <= 0 = auto (median user delay at
  /// f_max, resolved on the first decide()).
  double preferred_duration_s = 0.0;
};

class OortSelection : public SelectionStrategy {
 public:
  OortSelection(const OortOptions& options, util::Rng rng);

  Decision decide(const FleetView& fleet, std::size_t round) override;
  void observe(std::size_t round, const Decision& decision,
               std::span<const double> client_losses) override;
  /// Reliability feedback: the trainer filters observe() down to clients
  /// whose updates entered the model, so a crashed client stays unexplored
  /// (optimism prior intact).  Here each consecutive miss additionally
  /// halves the client's utility — real Oort's blacklist, softened — and a
  /// completed round clears the penalty.
  void report_completion(std::size_t round, const Decision& decision,
                         std::span<const std::uint8_t> completed) override;
  std::string name() const override { return "Oort"; }

  /// The statistical utility the strategy currently assigns to `user`.
  double statistical_utility(std::size_t user) const;

  /// Multiplier in (0, 1] applied to `user`'s total utility: 2^-misses for
  /// `misses` consecutive failed participations.
  double reliability_multiplier(std::size_t user) const;

 protected:
  void do_save_state(util::ByteWriter& out) const override;
  void do_load_state(util::ByteReader& in) override;

 private:
  OortOptions options_;
  util::Rng rng_;
  double resolved_t_pref_ = 0.0;
  std::vector<double> last_loss_;   ///< most recent observed loss per user
  std::vector<bool> explored_;      ///< has the user ever been selected
  std::vector<std::size_t> failure_streaks_;  ///< consecutive missed rounds
  double max_seen_loss_ = 1.0;      ///< optimism prior for unexplored users
};

}  // namespace helcfl::sched
