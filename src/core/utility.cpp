#include "core/utility.h"

#include <cmath>
#include <stdexcept>

namespace helcfl::core {

double utility(std::size_t appearance_count, double t_cal_s, double t_com_s,
               double eta) {
  if (eta <= 0.0 || eta > 1.0) {
    throw std::invalid_argument("utility: eta must be in (0, 1]");
  }
  const double total_delay = t_cal_s + t_com_s;
  if (total_delay <= 0.0) {
    throw std::invalid_argument("utility: total delay must be positive");
  }
  return std::pow(eta, static_cast<double>(appearance_count)) / total_delay;
}

std::size_t selections_until_overtaken(double fast_s, double slow_s, double eta) {
  if (eta <= 0.0 || eta >= 1.0) {
    throw std::invalid_argument("selections_until_overtaken: eta must be in (0, 1)");
  }
  if (fast_s <= 0.0 || slow_s < fast_s) {
    throw std::invalid_argument(
        "selections_until_overtaken: require 0 < fast_s <= slow_s");
  }
  // eta^a / fast < 1 / slow  <=>  a > ln(fast / slow) / ln(eta).
  const double threshold = std::log(fast_s / slow_s) / std::log(eta);
  const double a = std::floor(threshold) + 1.0;
  return a < 0.0 ? 0 : static_cast<std::size_t>(a);
}

}  // namespace helcfl::core
