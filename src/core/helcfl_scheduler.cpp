#include "core/helcfl_scheduler.h"

#include <stdexcept>

#include "core/dvfs.h"

namespace helcfl::core {

HelcflScheduler::HelcflScheduler(const HelcflOptions& options)
    : options_(options), selector_(options.fraction, options.eta) {}

sched::Decision HelcflScheduler::decide(const sched::FleetView& fleet,
                                        std::size_t /*round*/) {
  sched::Decision decision;
  decision.selected = selector_.select(fleet);

  decision.frequencies_hz.reserve(decision.selected.size());
  if (options_.enable_dvfs) {
    const FrequencyPlan plan = determine_frequencies(fleet, decision.selected);
    for (const std::size_t user : decision.selected) {
      decision.frequencies_hz.push_back(plan.frequency_of(user));
    }
  } else {
    for (const std::size_t user : decision.selected) {
      decision.frequencies_hz.push_back(fleet.users[user].device.f_max_hz);
    }
  }
  return decision;
}

void HelcflScheduler::report_completion(std::size_t /*round*/,
                                        const sched::Decision& decision,
                                        std::span<const std::uint8_t> completed) {
  if (decision.selected.size() != completed.size()) {
    throw std::invalid_argument("HelcflScheduler::report_completion: size mismatch");
  }
  for (std::size_t k = 0; k < completed.size(); ++k) {
    if (completed[k] == 0) selector_.revoke_appearance(decision.selected[k]);
  }
}

void HelcflScheduler::reset() { selector_.reset(); }

std::string HelcflScheduler::name() const {
  return options_.enable_dvfs ? "HELCFL" : "HELCFL-noDVFS";
}

}  // namespace helcfl::core
