#include "core/helcfl_scheduler.h"

#include <stdexcept>

#include "core/dvfs.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace helcfl::core {

HelcflScheduler::HelcflScheduler(const HelcflOptions& options)
    : options_(options), selector_(options.fraction, options.eta) {
  capture_initial_state();
}

sched::Decision HelcflScheduler::decide(const sched::FleetView& fleet,
                                        std::size_t round) {
  obs::Tracer* tracer = instruments_.tracer;
  const bool trace_decisions =
      tracer != nullptr && tracer->enabled(obs::TraceLevel::kDecision);

  sched::Decision decision;
  std::vector<SelectionTraceEntry> selection_trace;
  {
    const obs::ScopedSpan span(instruments_.profiler, "greedy_decay",
                               static_cast<std::int64_t>(round));
    decision.selected =
        selector_.select(fleet, trace_decisions ? &selection_trace : nullptr);
  }
  // Per-user selection decisions: the Eq. (20) inputs exactly as the
  // greedy ranking saw them (α_q pre-increment).
  for (const SelectionTraceEntry& entry : selection_trace) {
    const sched::UserInfo& info = fleet.users[entry.user];
    tracer->emit(obs::TraceLevel::kDecision, "selection",
                 {{"round", round},
                  {"user", entry.user},
                  {"rank", entry.rank},
                  {"strategy", name()},
                  {"utility", entry.utility},
                  {"alpha", entry.appearances},
                  {"t_cal_max_s", info.t_cal_max_s},
                  {"t_com_s", info.t_com_s}});
  }

  decision.frequencies_hz.reserve(decision.selected.size());
  if (options_.enable_dvfs) {
    const obs::ScopedSpan span(instruments_.profiler, "freq_determination",
                               static_cast<std::int64_t>(round));
    const FrequencyPlan plan = determine_frequencies(fleet, decision.selected);
    for (const std::size_t user : decision.selected) {
      decision.frequencies_hz.push_back(plan.frequency_of(user));
    }
    // Per-user DVFS assignments in upload order: the Algorithm-3 timeline
    // plus what each slowdown bought (slack reclaimed, Eq.-(5) savings).
    if (trace_decisions) {
      for (const FrequencyAssignment& a : plan.assignments) {
        tracer->emit(obs::TraceLevel::kDecision, "dvfs",
                     {{"round", round},
                      {"user", a.user},
                      {"f_hz", a.frequency_hz},
                      {"f_max_hz", fleet.users[a.user].device.f_max_hz},
                      {"clamped", a.clamped},
                      {"slack_reclaimed_s", a.slack_reclaimed_s},
                      {"energy_saved_j", a.energy_saved_j},
                      {"compute_end_s", a.compute_end_s},
                      {"upload_start_s", a.upload_start_s},
                      {"upload_end_s", a.upload_end_s}});
      }
    }
  } else {
    for (const std::size_t user : decision.selected) {
      decision.frequencies_hz.push_back(fleet.users[user].device.f_max_hz);
    }
  }
  return decision;
}

void HelcflScheduler::report_completion(std::size_t /*round*/,
                                        const sched::Decision& decision,
                                        std::span<const std::uint8_t> completed) {
  if (decision.selected.size() != completed.size()) {
    throw std::invalid_argument("HelcflScheduler::report_completion: size mismatch");
  }
  for (std::size_t k = 0; k < completed.size(); ++k) {
    if (completed[k] == 0) selector_.revoke_appearance(decision.selected[k]);
  }
}

void HelcflScheduler::do_save_state(util::ByteWriter& out) const {
  out.f64(options_.fraction);
  out.f64(options_.eta);
  out.boolean(options_.enable_dvfs);
  // Selector frame: appearance counters, then the utility-index frame
  // (initialized flag + delay cache) — deterministic, heap-layout-free.
  selector_.save_state(out);
}

void HelcflScheduler::do_load_state(util::ByteReader& in) {
  const double fraction = in.f64();
  const double eta = in.f64();
  const bool enable_dvfs = in.boolean();
  if (fraction != options_.fraction || eta != options_.eta ||
      enable_dvfs != options_.enable_dvfs) {
    throw util::SerialError(
        "HelcflScheduler: state was saved under different options "
        "(fraction/eta/enable_dvfs mismatch)");
  }
  selector_.load_state(in);
}

std::string HelcflScheduler::name() const {
  return options_.enable_dvfs ? "HELCFL" : "HELCFL-noDVFS";
}

}  // namespace helcfl::core
