// Algorithm 2: greedy-decay heuristic user selection.
//
// Maintains an appearance counter per user across rounds and greedily takes
// the top N = max(Q*C, 1) users by Eq. (20) utility, incrementing the
// counters of those selected.  Since PR 6 the ranking runs on an
// incremental utility index (core::UtilityIndex): instead of recomputing
// and re-sorting all Q utilities each round (O(Q log Q)), the selector
// keeps a persistent lazy-deletion max-heap that only the ≤ N changed users
// touch, making a round O(N log Q) plus an O(Q) delay-verification sweep.
// The selection it produces is pick-for-pick, rank-for-rank, and
// utility-bit-for-bit identical to the retained naive implementation
// (core::GreedyDecayReference) — proven by the differential harness in
// tests/test_selection_differential.cpp.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/utility_index.h"
#include "sched/scheduler.h"
#include "util/serial.h"

namespace helcfl::core {

/// Decision-time telemetry of one selected user: why Algorithm 2 took it
/// this round.  Captured *at* the decision (α_q before its increment), so
/// a trace consumer can recompute the Eq. (20) ranking exactly.
struct SelectionTraceEntry {
  std::size_t user = 0;         ///< index into FleetView::users
  std::size_t rank = 0;         ///< 0 = highest utility this round
  double utility = 0.0;         ///< u_q = η^α_q / (T^cal_max + T^com), Eq. (20)
  std::size_t appearances = 0;  ///< α_q at decision time (pre-increment)
};

class GreedyDecaySelector {
 public:
  /// `fraction` is the user selection fraction C; `eta` the decay
  /// coefficient of Eq. (20).  η = 1 is permitted: it disables decay
  /// (pure fastest-first selection, the tie-heavy degenerate regime).
  GreedyDecaySelector(double fraction, double eta);

  /// Selects the round's user set and updates the appearance counters
  /// (Algorithm 2 lines 8-19).  Counters are lazily sized to the fleet on
  /// first call; the fleet size must not change across calls.  When
  /// `trace` is non-null it is filled with one entry per selected user in
  /// rank order — pure observation, the selection itself is unchanged.
  std::vector<std::size_t> select(const sched::FleetView& fleet,
                                  std::vector<SelectionTraceEntry>* trace = nullptr);

  /// Appearance counters alpha_q (empty before the first select()).
  std::span<const std::size_t> appearance_counts() const { return counters_; }

  /// Reverts the appearance increment of one selected user (failure-aware
  /// execution: a crashed/dropped client's data never entered the model, so
  /// its Eq.-(20) utility must not decay).  No-op if the counter is 0.
  void revoke_appearance(std::size_t user);

  /// Clears all counters and the utility index (start of a fresh run).
  void reset();

  /// Replaces the counters wholesale (checkpoint resume).  An empty vector
  /// returns the selector to its pre-first-select() state; a non-empty one
  /// pins the fleet size, so the next select() must see exactly
  /// `counters.size()` users.  The utility index is dropped and rebuilt
  /// lazily on the next select().
  void restore_appearance_counts(std::vector<std::size_t> counters);

  /// Serializes the mutable state: the appearance counters followed by the
  /// index frame (initialized flag + delay cache).  Deterministic — a pure
  /// function of the logical state, independent of heap layout.
  void save_state(util::ByteWriter& out) const;

  /// Restores state written by save_state().  Parses and validates the
  /// whole frame before mutating any member; throws util::SerialError on a
  /// malformed frame and leaves the selector unchanged.
  void load_state(util::ByteReader& in);

  /// The live utility index (uninitialized before the first select()) —
  /// read-only introspection for tests and benches.
  const UtilityIndex& index() const { return index_; }

  double fraction() const { return fraction_; }
  double eta() const { return eta_; }

 private:
  double fraction_;
  double eta_;
  std::vector<std::size_t> counters_;
  UtilityIndex index_;
  std::vector<UtilityIndex::Pick> picks_;  ///< round scratch, no steady-state alloc
};

}  // namespace helcfl::core
