// Algorithm 2: greedy-decay heuristic user selection.
//
// Maintains an appearance counter per user across rounds; each round it
// computes every user's Eq. (20) utility and greedily takes the top
// N = max(Q*C, 1), incrementing the counters of those selected.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sched/scheduler.h"

namespace helcfl::core {

/// Decision-time telemetry of one selected user: why Algorithm 2 took it
/// this round.  Captured *at* the decision (α_q before its increment), so
/// a trace consumer can recompute the Eq. (20) ranking exactly.
struct SelectionTraceEntry {
  std::size_t user = 0;         ///< index into FleetView::users
  std::size_t rank = 0;         ///< 0 = highest utility this round
  double utility = 0.0;         ///< u_q = η^α_q / (T^cal_max + T^com), Eq. (20)
  std::size_t appearances = 0;  ///< α_q at decision time (pre-increment)
};

class GreedyDecaySelector {
 public:
  /// `fraction` is the user selection fraction C; `eta` the decay
  /// coefficient of Eq. (20).
  GreedyDecaySelector(double fraction, double eta);

  /// Selects the round's user set and updates the appearance counters
  /// (Algorithm 2 lines 8-19).  Counters are lazily sized to the fleet on
  /// first call; the fleet size must not change across calls.  When
  /// `trace` is non-null it is filled with one entry per selected user in
  /// rank order — pure observation, the selection itself is unchanged.
  std::vector<std::size_t> select(const sched::FleetView& fleet,
                                  std::vector<SelectionTraceEntry>* trace = nullptr);

  /// Appearance counters alpha_q (empty before the first select()).
  std::span<const std::size_t> appearance_counts() const { return counters_; }

  /// Reverts the appearance increment of one selected user (failure-aware
  /// execution: a crashed/dropped client's data never entered the model, so
  /// its Eq.-(20) utility must not decay).  No-op if the counter is 0.
  void revoke_appearance(std::size_t user);

  /// Clears all counters (start of a fresh training run).
  void reset();

  /// Replaces the counters wholesale (checkpoint resume).  An empty vector
  /// returns the selector to its pre-first-select() state; a non-empty one
  /// pins the fleet size, so the next select() must see exactly
  /// `counters.size()` users.
  void restore_appearance_counts(std::vector<std::size_t> counters);

  double fraction() const { return fraction_; }
  double eta() const { return eta_; }

 private:
  double fraction_;
  double eta_;
  std::vector<std::size_t> counters_;
};

}  // namespace helcfl::core
