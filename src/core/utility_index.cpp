#include "core/utility_index.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/utility.h"

namespace helcfl::core {

UtilityIndex::UtilityIndex(double eta) : eta_(eta) {
  if (eta <= 0.0 || eta > 1.0) {
    throw std::invalid_argument("UtilityIndex: eta must be in (0, 1]");
  }
}

void UtilityIndex::build(std::span<const sched::UserInfo> users,
                         std::span<const std::size_t> counters) {
  if (users.size() != counters.size()) {
    throw std::invalid_argument("UtilityIndex::build: users/counters size mismatch");
  }
  if (users.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument("UtilityIndex::build: fleet too large");
  }
  clear();
  const std::size_t q = users.size();
  t_cal_.reserve(q);
  t_com_.reserve(q);
  for (const sched::UserInfo& info : users) {
    t_cal_.push_back(info.t_cal_max_s);
    t_com_.push_back(info.t_com_s);
  }
  versions_.assign(q, 0);
  parked_.assign(q, 0);
  heap_.reserve(2 * q + 64);
  for (std::size_t i = 0; i < q; ++i) {
    heap_.push_back(Entry{utility(counters[i], t_cal_[i], t_com_[i], eta_), 0,
                          static_cast<std::uint32_t>(i)});
  }
  std::make_heap(heap_.begin(), heap_.end(), outranked);
  initialized_ = true;
}

void UtilityIndex::clear() {
  initialized_ = false;
  t_cal_.clear();
  t_com_.clear();
  versions_.clear();
  parked_.clear();
  parked_list_.clear();
  heap_.clear();
}

void UtilityIndex::begin_round(const sched::FleetView& fleet,
                               std::span<const std::size_t> counters) {
  const std::size_t q = t_cal_.size();
  if (!initialized_ || fleet.users.size() != q || counters.size() != q) {
    throw std::logic_error("UtilityIndex::begin_round: index not built for this fleet");
  }

  // Delay-report verification: an O(Q) compare-only sweep (the common case
  // is zero changes — the init-phase delays are static for most runs).
  // Each changed user gets its cache updated and a refreshed entry pushed.
  for (std::size_t i = 0; i < q; ++i) {
    const sched::UserInfo& info = fleet.users[i];
    if (info.t_cal_max_s == t_cal_[i] && info.t_com_s == t_com_[i]) continue;
    t_cal_[i] = info.t_cal_max_s;
    t_com_[i] = info.t_com_s;
    ++delay_refreshes_;
    if (parked_[i] == 0) push_fresh(i, counters[i]);
    // Parked users only carry the cache update; revival below re-inserts
    // them with the fresh values.
  }

  // Revive parked users the alive mask readmits.  Entries whose flag was
  // already cleared by an update (revocation while parked) are dropped.
  if (!parked_list_.empty()) {
    std::size_t kept = 0;
    for (const std::uint32_t user : parked_list_) {
      if (parked_[user] == 0) continue;  // un-parked since; entry is live
      if (fleet.is_alive(user)) {
        push_fresh(user, counters[user]);
      } else {
        parked_list_[kept++] = user;
      }
    }
    parked_list_.resize(kept);
  }

  if (heap_.size() > 2 * q + 64) compact(counters);
}

void UtilityIndex::extract_top(const sched::FleetView& fleet, std::size_t n,
                               std::vector<Pick>& out) {
  out.clear();
  while (out.size() < n) {
    if (heap_.empty()) {
      throw std::logic_error(
          "UtilityIndex::extract_top: heap exhausted before n picks "
          "(extracted user not re-inserted?)");
    }
    std::pop_heap(heap_.begin(), heap_.end(), outranked);
    const Entry top = heap_.back();
    heap_.pop_back();
    if (top.version != versions_[top.user]) {  // lazy deletion
      ++stale_discards_;
      continue;
    }
    if (!fleet.is_alive(top.user)) {  // depleted/absent: park until revived
      parked_[top.user] = 1;
      parked_list_.push_back(top.user);
      continue;
    }
    out.push_back({top.user, top.utility});
  }
}

void UtilityIndex::update_counter(std::size_t user, std::size_t alpha) {
  if (!initialized_ || user >= versions_.size()) {
    throw std::logic_error("UtilityIndex::update_counter: unknown user");
  }
  push_fresh(user, alpha);
}

void UtilityIndex::push_fresh(std::size_t user, std::size_t alpha) {
  ++versions_[user];
  parked_[user] = 0;  // parked_list_ entry (if any) lazily dropped later
  heap_.push_back(Entry{utility(alpha, t_cal_[user], t_com_[user], eta_),
                        versions_[user], static_cast<std::uint32_t>(user)});
  std::push_heap(heap_.begin(), heap_.end(), outranked);
}

void UtilityIndex::compact(std::span<const std::size_t> counters) {
  ++compactions_;
  heap_.clear();
  const std::size_t q = t_cal_.size();
  for (std::size_t i = 0; i < q; ++i) {
    if (parked_[i] != 0) continue;
    heap_.push_back(Entry{utility(counters[i], t_cal_[i], t_com_[i], eta_),
                          versions_[i], static_cast<std::uint32_t>(i)});
  }
  std::make_heap(heap_.begin(), heap_.end(), outranked);
}

void UtilityIndex::save(util::ByteWriter& out) const {
  out.boolean(initialized_);
  if (!initialized_) return;
  out.vec_f64(t_cal_);
  out.vec_f64(t_com_);
}

void UtilityIndex::load(util::ByteReader& in, std::span<const std::size_t> counters) {
  const bool stored_initialized = in.boolean();
  if (!stored_initialized) {
    clear();
    return;
  }
  std::vector<double> t_cal = in.vec_f64();
  std::vector<double> t_com = in.vec_f64();
  if (t_cal.size() != counters.size() || t_com.size() != counters.size()) {
    throw util::SerialError(
        "UtilityIndex: delay cache size does not match the appearance "
        "counters (" +
        std::to_string(t_cal.size()) + "/" + std::to_string(t_com.size()) +
        " vs " + std::to_string(counters.size()) + ")");
  }
  for (std::size_t i = 0; i < t_cal.size(); ++i) {
    if (!(t_cal[i] + t_com[i] > 0.0)) {
      throw util::SerialError("UtilityIndex: non-positive cached delay for user " +
                              std::to_string(i));
    }
  }
  // All parsed and validated — commit, then rebuild the heap canonically
  // (ascending user order, version 0, nobody parked; dead users re-park on
  // their next extraction).
  clear();
  t_cal_ = std::move(t_cal);
  t_com_ = std::move(t_com);
  const std::size_t q = t_cal_.size();
  versions_.assign(q, 0);
  parked_.assign(q, 0);
  heap_.reserve(2 * q + 64);
  for (std::size_t i = 0; i < q; ++i) {
    heap_.push_back(Entry{utility(counters[i], t_cal_[i], t_com_[i], eta_), 0,
                          static_cast<std::uint32_t>(i)});
  }
  std::make_heap(heap_.begin(), heap_.end(), outranked);
  initialized_ = true;
}

}  // namespace helcfl::core
