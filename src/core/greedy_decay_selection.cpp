#include "core/greedy_decay_selection.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace helcfl::core {

GreedyDecaySelector::GreedyDecaySelector(double fraction, double eta)
    : fraction_(fraction), eta_(eta), index_(eta) {
  if (eta <= 0.0 || eta > 1.0) {
    throw std::invalid_argument("GreedyDecaySelector: eta must be in (0, 1]");
  }
  if (fraction <= 0.0 || fraction > 1.0) {
    throw std::invalid_argument("GreedyDecaySelector: fraction must be in (0, 1]");
  }
}

std::vector<std::size_t> GreedyDecaySelector::select(
    const sched::FleetView& fleet, std::vector<SelectionTraceEntry>* trace) {
  const std::size_t q = fleet.users.size();
  if (counters_.empty()) {
    counters_.assign(q, 0);
  } else if (counters_.size() != q) {
    throw std::invalid_argument("GreedyDecaySelector: fleet size changed");
  }

  // Lines 8-10: depleted devices are not in V' (battery extension).
  const std::size_t alive = fleet.alive_count();
  if (alive == 0) return {};

  // The index carries every selectable user's Eq. (20) utility across
  // rounds; the prologue only reconciles delay reports and revivals.
  if (!index_.initialized()) {
    index_.build(fleet.users, counters_);
  } else {
    index_.begin_round(fleet, counters_);
  }

  // Lines 11-19: greedily take the top N by utility — O(N log Q) pops in
  // (utility desc, index asc) order, the stable-sort tie-break contract.
  const std::size_t n = std::min(sched::selection_count(q, fraction_), alive);
  index_.extract_top(fleet, n, picks_);

  // Decision-time telemetry (pure observation: α_q captured before the
  // line-18 increment below, so the trace shows the counters the Eq. (20)
  // ranking actually used).
  if (trace != nullptr) {
    trace->clear();
    trace->reserve(picks_.size());
    for (std::size_t rank = 0; rank < picks_.size(); ++rank) {
      const UtilityIndex::Pick& pick = picks_[rank];
      trace->push_back({pick.user, rank, pick.utility, counters_[pick.user]});
    }
  }

  // Line 18: decay the selected users' future utility, re-inserting each
  // extracted user with its post-increment utility.
  std::vector<std::size_t> order;
  order.reserve(picks_.size());
  for (const UtilityIndex::Pick& pick : picks_) {
    order.push_back(pick.user);
    ++counters_[pick.user];
    index_.update_counter(pick.user, counters_[pick.user]);
  }
  return order;
}

void GreedyDecaySelector::revoke_appearance(std::size_t user) {
  if (user < counters_.size() && counters_[user] > 0) {
    --counters_[user];
    if (index_.initialized()) index_.update_counter(user, counters_[user]);
  }
}

void GreedyDecaySelector::reset() {
  counters_.clear();
  index_.clear();
}

void GreedyDecaySelector::restore_appearance_counts(std::vector<std::size_t> counters) {
  counters_ = std::move(counters);
  index_.clear();
}

void GreedyDecaySelector::save_state(util::ByteWriter& out) const {
  out.vec_size(counters_);
  index_.save(out);
}

void GreedyDecaySelector::load_state(util::ByteReader& in) {
  std::vector<std::size_t> counters = in.vec_size();
  UtilityIndex staged(eta_);
  staged.load(in, counters);
  counters_ = std::move(counters);
  index_ = std::move(staged);
}

}  // namespace helcfl::core
