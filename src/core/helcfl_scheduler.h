// The HELCFL scheduler: Algorithm 2 (greedy-decay selection) followed by
// Algorithm 3 (DVFS frequency determination), exposed through the common
// SelectionStrategy interface so Algorithm 1 can drive it like any
// baseline.
#pragma once

#include "core/greedy_decay_selection.h"
#include "sched/scheduler.h"

namespace helcfl::core {

struct HelcflOptions {
  double fraction = 0.1;  ///< user selection fraction C
  double eta = 0.9;       ///< decay coefficient of Eq. (20)
  bool enable_dvfs = true;  ///< false = run selected users at f_max
                            ///< (the "w/o DVFS" arm of Fig. 3)
};

class HelcflScheduler : public sched::SelectionStrategy {
 public:
  explicit HelcflScheduler(const HelcflOptions& options);

  sched::Decision decide(const sched::FleetView& fleet, std::size_t round) override;
  /// Failure-aware correction: Algorithm 2 increments α_q at selection
  /// time, but a client whose update never entered the model contributed
  /// no data, so its appearance (and thus its Eq.-(20) utility decay) is
  /// revoked here.
  void report_completion(std::size_t round, const sched::Decision& decision,
                         std::span<const std::uint8_t> completed) override;
  std::string name() const override;

  const GreedyDecaySelector& selector() const { return selector_; }
  const HelcflOptions& options() const { return options_; }

 protected:
  void do_save_state(util::ByteWriter& out) const override;
  void do_load_state(util::ByteReader& in) override;

 private:
  HelcflOptions options_;
  GreedyDecaySelector selector_;
};

}  // namespace helcfl::core
