// The utility function of HELCFL (Eq. 20 of the paper):
//   u_q(alpha_q, T^cal, T^com) = eta^alpha_q * 1 / (T^cal + T^com)
// with decay coefficient eta in (0, 1] and appearance counter alpha_q.
//
// Users with short training delay have high utility and are selected
// preferentially; every selection increments alpha_q, multiplying future
// utility by eta, so slow users eventually overtake and their data enters
// training (the accuracy mechanism of Section V-A).
#pragma once

#include <cstddef>

namespace helcfl::core {

/// Evaluates Eq. (20).  Requires eta in (0, 1] and a positive total delay;
/// throws std::invalid_argument otherwise.  eta = 1 disables decay
/// (u_q = 1/delay regardless of alpha_q — pure fastest-first selection,
/// the tie-heavy degenerate regime the differential harness exercises).
double utility(std::size_t appearance_count, double t_cal_s, double t_com_s,
               double eta);

/// Number of selections after which a user with total delay `fast_s` drops
/// below a never-selected user with total delay `slow_s`:
///   smallest a with eta^a / fast < 1 / slow.
/// Useful for reasoning about catch-up latency; requires slow_s >= fast_s.
std::size_t selections_until_overtaken(double fast_s, double slow_s, double eta);

}  // namespace helcfl::core
