// The retained naive Algorithm 2 implementation: recompute every
// selectable user's Eq. (20) utility and std::stable_sort all of them,
// every round — O(Q log Q).
//
// This is the pre-index GreedyDecaySelector, kept verbatim as the
// *differential oracle*: tests/test_selection_differential.cpp drives it
// and the incremental-index selector through thousands of randomized
// select/decay/revoke/depletion rounds and requires pick-for-pick,
// rank-for-rank, utility-bit-for-bit agreement; bench_sched_scale measures
// the index speedup against it.  Its behaviour is the selection contract —
// do not "optimize" it.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/greedy_decay_selection.h"  // SelectionTraceEntry
#include "sched/scheduler.h"

namespace helcfl::core {

class GreedyDecayReference {
 public:
  /// Same parameter domain as GreedyDecaySelector: C in (0, 1],
  /// eta in (0, 1] (η = 1 disables decay — the tie-heavy regime).
  GreedyDecayReference(double fraction, double eta);

  /// The original Algorithm 2 lines 8-19: full utility recompute, full
  /// stable sort (ties broken by lower index), top-N, counter increment.
  std::vector<std::size_t> select(const sched::FleetView& fleet,
                                  std::vector<SelectionTraceEntry>* trace = nullptr);

  std::span<const std::size_t> appearance_counts() const { return counters_; }
  void revoke_appearance(std::size_t user);
  void reset();
  void restore_appearance_counts(std::vector<std::size_t> counters);

  double fraction() const { return fraction_; }
  double eta() const { return eta_; }

 private:
  double fraction_;
  double eta_;
  std::vector<std::size_t> counters_;
};

}  // namespace helcfl::core
