#include "core/greedy_decay_reference.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/utility.h"

namespace helcfl::core {

GreedyDecayReference::GreedyDecayReference(double fraction, double eta)
    : fraction_(fraction), eta_(eta) {
  if (eta <= 0.0 || eta > 1.0) {
    throw std::invalid_argument("GreedyDecayReference: eta must be in (0, 1]");
  }
  if (fraction <= 0.0 || fraction > 1.0) {
    throw std::invalid_argument("GreedyDecayReference: fraction must be in (0, 1]");
  }
}

std::vector<std::size_t> GreedyDecayReference::select(
    const sched::FleetView& fleet, std::vector<SelectionTraceEntry>* trace) {
  const std::size_t q = fleet.users.size();
  if (counters_.empty()) {
    counters_.assign(q, 0);
  } else if (counters_.size() != q) {
    throw std::invalid_argument("GreedyDecayReference: fleet size changed");
  }

  // Lines 8-10: utility of every selectable user (depleted devices are
  // not in V' — battery extension).
  const std::vector<std::size_t> alive = fleet.alive_indices();
  if (alive.empty()) return {};
  std::vector<double> utilities(q, 0.0);
  for (const std::size_t i : alive) {
    utilities[i] =
        utility(counters_[i], fleet.users[i].t_cal_max_s, fleet.users[i].t_com_s, eta_);
  }

  // Lines 11-19: greedily take the top N by utility.  A full sort of an
  // index array keeps ties deterministic (lower index wins).
  const std::size_t n = std::min(sched::selection_count(q, fraction_), alive.size());
  std::vector<std::size_t> order = alive;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return utilities[a] > utilities[b];
  });
  order.resize(n);

  // Decision-time telemetry (pure observation: α_q captured before the
  // line-18 increment below, so the trace shows the counters the Eq. (20)
  // ranking actually used).
  if (trace != nullptr) {
    trace->clear();
    trace->reserve(order.size());
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
      const std::size_t i = order[rank];
      trace->push_back({i, rank, utilities[i], counters_[i]});
    }
  }

  // Line 18: decay the selected users' future utility.
  for (const std::size_t i : order) ++counters_[i];
  return order;
}

void GreedyDecayReference::revoke_appearance(std::size_t user) {
  if (user < counters_.size() && counters_[user] > 0) --counters_[user];
}

void GreedyDecayReference::reset() { counters_.clear(); }

void GreedyDecayReference::restore_appearance_counts(std::vector<std::size_t> counters) {
  counters_ = std::move(counters);
}

}  // namespace helcfl::core
