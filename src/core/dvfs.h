// Algorithm 3: DVFS-enabled operating frequency determination.
//
// Under TDMA the selected users upload one after another; a user whose
// local update ends while the link is busy idles (Fig. 1).  Algorithm 3
// removes that idle energy: users are sorted by compute delay at f_max, the
// fastest runs at f_max, and each subsequent user's frequency is lowered so
// its local update completes exactly when its predecessor's upload ends
// (f_{q+1} = pi*|D_{q+1}| / T_q).  Because E^cal grows with f^2 (Eq. 5),
// stretching computation into slack strictly saves energy while the round
// delay is unchanged.
//
// Our implementation additionally clamps each derived frequency into the
// device's DVFS range [f_min, f_max] (the paper's constraint (15)) and
// propagates the chain with T_q = max(T^cal_q(f_q), T_{q-1}) + T^com_q so
// the plan stays consistent when a clamp fires.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sched/scheduler.h"

namespace helcfl::core {

/// Result of a frequency determination for one selected user.  The last
/// three fields are decision telemetry (traced as `dvfs` events); they are
/// derived from the same inputs as `frequency_hz` and never feed back into
/// the plan.
struct FrequencyAssignment {
  std::size_t user = 0;          ///< index into FleetView::users
  double frequency_hz = 0.0;     ///< determined operating frequency
  double compute_end_s = 0.0;    ///< T^cal at the determined frequency
  double upload_start_s = 0.0;   ///< when this user's uplink grant begins
  double upload_end_s = 0.0;     ///< upload_start + T^com
  bool clamped = false;          ///< constraint (15) fired: the ideal
                                 ///< f = pi*|D|/T_prev fell outside
                                 ///< [f_min, f_max] (false for the first user)
  double slack_reclaimed_s = 0.0;  ///< compute stretch vs f_max
                                   ///< (T^cal(f) - T^cal(f_max)): the Fig.-1
                                   ///< idle time Algorithm 3 converted into
                                   ///< slow computation
  double energy_saved_j = 0.0;   ///< Eq. (5) at f_max minus Eq. (5) at f —
                                 ///< the compute energy the stretch saved
};

/// The full plan, in upload (ascending compute delay) order.
struct FrequencyPlan {
  std::vector<FrequencyAssignment> assignments;
  double round_delay_s = 0.0;  ///< last upload end

  /// The frequency assigned to fleet user `user`; throws if not in plan.
  double frequency_of(std::size_t user) const;
};

/// Runs Algorithm 3 for `selected` (indices into `fleet`).
FrequencyPlan determine_frequencies(const sched::FleetView& fleet,
                                    std::span<const std::size_t> selected);

}  // namespace helcfl::core
