// Incremental Eq. (20) utility index: the persistent max-ordered structure
// behind Algorithm 2 (`GreedyDecaySelector`).
//
// The naive Algorithm 2 recomputes every user's utility and re-sorts all Q
// of them each round, O(Q log Q).  But between rounds only the ≤ N selected
// (line-18 α_q increment) and revoked users change their utility, and a
// delay report changes only the affected users' denominators — so the
// ordering is almost entirely reusable.  This index keeps one binary
// max-heap of (utility, user) entries with *lazy deletion*: a per-user
// version counter stamps every entry, any state change bumps the version
// and pushes a fresh entry, and stale entries are discarded when they
// surface at the top.  A round's pick is then O((N + stale) log Q) pops
// plus an O(Q) branch-light delay-verification sweep; the heap is
// compacted back to Q live entries whenever lazy garbage doubles its size,
// which amortizes to O(1) per push.
//
// Ordering contract (must match the retained reference selector exactly,
// see DESIGN.md §12): entries are ordered by (utility descending, user
// index ascending), where utility is the *bit-exact* double produced by
// core::utility().  This reproduces std::stable_sort over an ascending
// index array with a `utility >` comparator — including the η = 1 and
// η^α_q-underflow regimes where ties are pervasive.
//
// Depleted/absent users (FleetView alive mask) are handled by *parking*:
// a dead user's entry is removed when it surfaces during extraction and
// the user is re-inserted by the next round prologue that sees it alive.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sched/scheduler.h"
#include "util/serial.h"

namespace helcfl::core {

class UtilityIndex {
 public:
  /// `eta` is the Eq. (20) decay coefficient, in (0, 1].
  explicit UtilityIndex(double eta);

  /// One extracted candidate: the user and the bit-exact Eq. (20) utility
  /// its ranking used.
  struct Pick {
    std::size_t user = 0;
    double utility = 0.0;
  };

  /// Whether build()/load() has populated the delay cache and heap.
  bool initialized() const { return initialized_; }

  /// Number of indexed users (0 before build()).
  std::size_t size() const { return t_cal_.size(); }

  /// Builds the index from scratch: caches every user's (T^cal_max, T^com),
  /// computes utilities from `counters`, and heapifies.  O(Q).
  void build(std::span<const sched::UserInfo> users,
             std::span<const std::size_t> counters);

  /// Returns to the uninitialized state (selector reset / fleet re-pin).
  void clear();

  /// Round prologue: verifies the cached delays against the fleet (an O(Q)
  /// compare-only sweep; each changed user is refreshed in O(log Q)) and
  /// re-inserts parked users that are alive again.  Compacts the heap when
  /// lazy-deletion garbage has doubled it.
  void begin_round(const sched::FleetView& fleet,
                   std::span<const std::size_t> counters);

  /// Pops the top `n` alive users in (utility desc, index asc) order into
  /// `out` (cleared first).  Requires n <= alive count.  The extracted
  /// users' entries leave the heap: the caller must re-insert each one via
  /// update_counter() (with its post-round α_q) before the next
  /// begin_round()/extract_top() — GreedyDecaySelector does exactly that.
  void extract_top(const sched::FleetView& fleet, std::size_t n,
                   std::vector<Pick>& out);

  /// α_q changed for `user` (line-18 increment, revocation): re-inserts it
  /// with the utility of the new counter value.  O(log Q).
  void update_counter(std::size_t user, std::size_t alpha);

  /// Deterministic serialization of the *logical* state: the initialized
  /// flag and the delay cache.  Heap layout, versions, and parking are
  /// deliberately excluded — load() rebuilds them canonically — so the
  /// bytes are a pure function of (counters, delays) and save→load→save
  /// is byte-identical.
  void save(util::ByteWriter& out) const;

  /// Restores a save()d index; `counters` supplies the α_q values the
  /// rebuilt utilities use (the selector owns them).  Parses and validates
  /// everything before mutating any member; throws util::SerialError on a
  /// size mismatch or a non-positive cached delay.
  void load(util::ByteReader& in, std::span<const std::size_t> counters);

  // --- incrementality audit (tests and benches) ---------------------------
  std::size_t heap_entries() const { return heap_.size(); }
  std::uint64_t stale_discards() const { return stale_discards_; }
  std::uint64_t delay_refreshes() const { return delay_refreshes_; }
  std::uint64_t compactions() const { return compactions_; }

 private:
  struct Entry {
    double utility = 0.0;
    std::uint64_t version = 0;  ///< stale iff != versions_[user]
    std::uint32_t user = 0;
  };

  /// Max-heap "less" (std::push_heap orders the *largest* first): a is
  /// outranked by b iff b has higher utility, or equal utility and a
  /// lower index.  Strict weak ordering; equal (utility, user) pairs can
  /// only be one fresh + stale duplicates, which extraction discards.
  static bool outranked(const Entry& a, const Entry& b) {
    if (a.utility != b.utility) return a.utility < b.utility;
    return a.user > b.user;
  }

  /// Bumps the user's version and pushes its current-utility entry;
  /// un-parks it if parked.
  void push_fresh(std::size_t user, std::size_t alpha);

  /// Drops lazy-deletion garbage: rebuilds the heap with exactly one
  /// fresh entry per non-parked user, in ascending user order.  O(Q).
  void compact(std::span<const std::size_t> counters);

  double eta_;
  bool initialized_ = false;
  std::vector<double> t_cal_;  ///< cached T^cal at f_max per user
  std::vector<double> t_com_;  ///< cached T^com per user
  std::vector<std::uint64_t> versions_;
  std::vector<std::uint8_t> parked_;   ///< 1 = no live heap entry (was dead)
  std::vector<std::uint32_t> parked_list_;  ///< users with parked_ == 1
  std::vector<Entry> heap_;  ///< std::*_heap-managed, outranked() order

  std::uint64_t stale_discards_ = 0;
  std::uint64_t delay_refreshes_ = 0;
  std::uint64_t compactions_ = 0;
};

}  // namespace helcfl::core
