#include "core/dvfs.h"

#include <algorithm>
#include <stdexcept>

#include "mec/cost_model.h"

namespace helcfl::core {

double FrequencyPlan::frequency_of(std::size_t user) const {
  for (const auto& a : assignments) {
    if (a.user == user) return a.frequency_hz;
  }
  throw std::out_of_range("FrequencyPlan: user " + std::to_string(user) +
                          " not in plan");
}

FrequencyPlan determine_frequencies(const sched::FleetView& fleet,
                                    std::span<const std::size_t> selected) {
  FrequencyPlan plan;
  if (selected.empty()) return plan;

  // Line 1: ascending by model-update delay at maximum frequency.
  std::vector<std::size_t> order(selected.begin(), selected.end());
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return fleet.users[a].t_cal_max_s < fleet.users[b].t_cal_max_s;
  });

  plan.assignments.reserve(order.size());
  double prev_total_s = 0.0;  // T_q of the previous user (its upload end)
  for (std::size_t position = 0; position < order.size(); ++position) {
    const std::size_t user = order[position];
    const auto& info = fleet.users[user];
    const auto& device = info.device;

    FrequencyAssignment assignment;
    assignment.user = user;
    if (position == 0) {
      // Lines 3-4: the first (fastest) user has no slack.
      assignment.frequency_hz = device.f_max_hz;
      assignment.compute_end_s = info.t_cal_max_s;
    } else {
      // Line 9: stretch computation to the predecessor's upload end,
      // clamped into the DVFS range (constraint (15)).
      const double f_ideal = device.total_cycles() / prev_total_s;
      assignment.frequency_hz = device.clamp_frequency(f_ideal);
      assignment.compute_end_s = device.total_cycles() / assignment.frequency_hz;
      assignment.clamped = assignment.frequency_hz != f_ideal;
      // Decision telemetry: how much Fig.-1 idle time became slow
      // computation, and the Eq.-(5) energy that stretch saved vs f_max.
      assignment.slack_reclaimed_s = assignment.compute_end_s - info.t_cal_max_s;
      assignment.energy_saved_j =
          mec::compute_energy_j(device, device.f_max_hz) -
          mec::compute_energy_j(device, assignment.frequency_hz);
    }
    assignment.upload_start_s = std::max(assignment.compute_end_s, prev_total_s);
    assignment.upload_end_s = assignment.upload_start_s + info.t_com_s;
    prev_total_s = assignment.upload_end_s;  // line 8 for the next user

    plan.assignments.push_back(assignment);
  }
  plan.round_delay_s = plan.assignments.back().upload_end_s;
  return plan;
}

}  // namespace helcfl::core
