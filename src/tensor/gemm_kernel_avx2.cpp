// AVX2+FMA GEMM driver: same source as the generic TU, compiled with
// -mavx2 -mfma (per-file flags set in CMakeLists.txt) and a 6x16
// micro-tile — 12 YMM accumulators + 2 B vectors + 1 broadcast fits the
// 16-register file.  Selected at runtime by detail::active_kernel() only
// when CPUID reports both AVX2 and FMA.
#define HELCFL_KERNEL_FN gemm_avx2
#define HELCFL_KERNEL_PACK_A_FN gemm_avx2_pack_a
#define HELCFL_KERNEL_PACK_B_FN gemm_avx2_pack_b
#define HELCFL_KERNEL_VTABLE_FN gemm_avx2_vtable
#define HELCFL_KERNEL_ISA_NAME "avx2_fma"
#define HELCFL_KERNEL_MR 6
#define HELCFL_KERNEL_NR 16
#define HELCFL_KERNEL_VW 8
#include "tensor/gemm_kernel.inl"
