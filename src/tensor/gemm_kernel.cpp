// Kernel dispatch, row-sharded threading, and scratch accounting
// (tensor/gemm_kernel.h).
#include "tensor/gemm_kernel.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <string_view>
#include <vector>

#include "util/thread_pool.h"

namespace helcfl::tensor::detail {
namespace {

std::atomic<std::uint64_t> g_scratch_reallocs{0};

/// Picks the widest kernel the CPU supports, once per process.  The choice
/// is a pure function of CPUID and the environment, so every thread (and
/// every call) in a run executes the same kernel — results are bitwise
/// deterministic within a machine.  HELCFL_KERNEL_ISA *caps* the dispatch
/// (generic < avx2_fma < avx512): pinning "generic" gives cross-machine
/// bit-reproducibility, pinning "avx512" on a machine without AVX-512
/// degrades gracefully to the best kernel CPUID allows (docs/KERNELS.md).
const KernelVTable* resolve() {
  const char* pin_env = std::getenv("HELCFL_KERNEL_ISA");
  const std::string_view pin = pin_env == nullptr ? "" : pin_env;
  int cap = 2;  // 0 = generic, 1 = avx2_fma, 2 = avx512
  if (pin == "generic") {
    cap = 0;
  } else if (pin == "avx2_fma" || pin == "avx2") {
    cap = 1;
  } else if (pin == "avx512") {
    cap = 2;
  } else if (!pin.empty()) {
    std::fprintf(stderr,
                 "helcfl: ignoring unknown HELCFL_KERNEL_ISA '%s' "
                 "(expected generic|avx2_fma|avx512)\n",
                 pin_env);
  }
#if defined(HELCFL_HAVE_AVX512_KERNELS)
  if (cap >= 2 && __builtin_cpu_supports("avx512f")) {
    return &gemm_avx512_vtable();
  }
#endif
#if defined(HELCFL_HAVE_AVX2_KERNELS)
  if (cap >= 1 && __builtin_cpu_supports("avx2") &&
      __builtin_cpu_supports("fma")) {
    return &gemm_avx2_vtable();
  }
#endif
  (void)cap;
  return &gemm_generic_vtable();
}

const KernelVTable& resolved() {
  static const KernelVTable* const vt = resolve();
  return *vt;
}

/// Problems below this many flops (2*m*n*k) run single-threaded even when a
/// kernel pool exists: at ~10 GFLOP/s/core a 4M-flop GEMM takes ~0.4 ms,
/// roughly where fork/join overhead stops being noise.
constexpr std::size_t kParallelMinFlops = std::size_t{1} << 22;

/// The dedicated GEMM worker pool.  Separate from the trainer's round pool
/// on purpose: a GEMM issued *from* a pool worker must never block on that
/// same pool (deadlock), so run_gemm falls back to the calling thread
/// whenever it already runs on any util::ThreadPool worker — the two pools
/// therefore never nest, and "trainer threads × kernel threads"
/// oversubscription cannot happen.
struct KernelTeam {
  std::size_t threads = 1;
  std::unique_ptr<util::ThreadPool> pool;

  void configure(std::size_t n) {
    threads = util::ThreadPool::resolve_thread_count(n == 0 ? 0 : n);
    if (threads < 1) threads = 1;
    pool.reset();
    if (threads > 1) pool = std::make_unique<util::ThreadPool>(threads);
  }
};

std::size_t env_kernel_threads() {
  const char* env = std::getenv("HELCFL_KERNEL_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  const long parsed = std::strtol(env, nullptr, 10);
  if (parsed < 0) return 1;
  return util::ThreadPool::resolve_thread_count(
      static_cast<std::size_t>(parsed));
}

KernelTeam& team() {
  // Magic-static init is thread-safe; the environment default is applied
  // exactly once, before any caller can observe the team.
  static KernelTeam* const t = [] {
    auto* fresh = new KernelTeam;
    fresh->configure(env_kernel_threads());
    return fresh;
  }();
  return *t;
}

}  // namespace

const KernelVTable& active_kernel_vtable() { return resolved(); }

GemmFn active_kernel() { return resolved().gemm; }

void run_gemm(const GemmArgs& args) {
  const KernelVTable& vt = resolved();
  KernelTeam& t = team();
  const std::size_t flops = 2 * args.m * args.n * args.k;
  if (t.pool == nullptr || flops < kParallelMinFlops ||
      util::ThreadPool::worker_index() != util::ThreadPool::npos) {
    vt.gemm(args);
    return;
  }
  // Shard C's rows at mc granularity: chunk boundaries land on the same kMc
  // block edges a sequential sweep visits, and every element's ascending-k
  // reduction stays whole on one thread — bitwise equal to 1-thread runs.
  const auto chunks =
      util::ThreadPool::partition_chunks(args.m, t.threads, vt.mc);
  if (chunks.size() <= 1) {
    vt.gemm(args);
    return;
  }
  std::vector<std::future<void>> joins;
  joins.reserve(chunks.size());
  for (const auto& chunk : chunks) {
    GemmArgs shard = args;
    shard.row_begin = chunk.begin;
    shard.row_end = chunk.end;
    joins.push_back(t.pool->submit([shard, &vt] { vt.gemm(shard); }));
  }
  // Join every shard before rethrowing so no worker touches freed operands.
  std::exception_ptr first_error;
  for (auto& join : joins) {
    try {
      join.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void set_kernel_threads(std::size_t n) { team().configure(n); }

std::size_t kernel_threads() { return team().threads; }

std::string_view kernel_isa() { return resolved().isa; }

std::uint64_t scratch_reallocs() {
  return g_scratch_reallocs.load(std::memory_order_relaxed);
}

void note_scratch_realloc() {
  g_scratch_reallocs.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace helcfl::tensor::detail
