// Kernel dispatch and scratch accounting (tensor/gemm_kernel.h).
#include "tensor/gemm_kernel.h"

#include <atomic>
#include <cstdlib>
#include <string_view>

namespace helcfl::tensor::detail {
namespace {

std::atomic<std::uint64_t> g_scratch_reallocs{0};

struct Resolved {
  GemmFn fn;
  std::string_view isa;
};

/// Picks the widest kernel the CPU supports, once per process.  The choice
/// is a pure function of CPUID and the environment, so every thread (and
/// every call) in a run executes the same kernel — results are bitwise
/// deterministic within a machine.  HELCFL_KERNEL_ISA=generic pins the
/// portable kernel when bit-reproducibility across machines matters more
/// than speed (docs/KERNELS.md).
Resolved resolve() {
  const char* pin = std::getenv("HELCFL_KERNEL_ISA");
  const bool force_generic =
      pin != nullptr && std::string_view(pin) == "generic";
#if defined(HELCFL_HAVE_AVX2_KERNELS)
  if (!force_generic && __builtin_cpu_supports("avx2") &&
      __builtin_cpu_supports("fma")) {
    return {&gemm_avx2, "avx2_fma"};
  }
#else
  (void)force_generic;
#endif
  return {&gemm_generic, "generic"};
}

const Resolved& resolved() {
  static const Resolved r = resolve();
  return r;
}

}  // namespace

GemmFn active_kernel() { return resolved().fn; }

std::string_view kernel_isa() { return resolved().isa; }

std::uint64_t scratch_reallocs() {
  return g_scratch_reallocs.load(std::memory_order_relaxed);
}

void note_scratch_realloc() {
  g_scratch_reallocs.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace helcfl::tensor::detail
