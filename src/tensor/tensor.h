// Dense float32 N-dimensional tensor with value semantics.
//
// The NN library (src/nn) works with rank-2 activations [batch, features]
// and rank-4 activations [batch, channels, height, width]; this class keeps
// shape handling generic up to rank 4 so layers stay readable.
#pragma once

#include <cstddef>
#include <string>
#include <initializer_list>
#include <span>
#include <vector>

namespace helcfl::util {
class Rng;
}

namespace helcfl::tensor {

/// Tensor shape: a short list of dimension sizes.  Rank 0 denotes an empty
/// tensor with zero elements.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::size_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<std::size_t> dims) : dims_(std::move(dims)) {}

  std::size_t rank() const { return dims_.size(); }
  std::size_t dim(std::size_t axis) const { return dims_.at(axis); }
  std::size_t operator[](std::size_t axis) const { return dims_[axis]; }

  /// Total number of elements (product of dims; 0 for rank-0).
  std::size_t num_elements() const;

  bool operator==(const Shape& other) const = default;

  const std::vector<std::size_t>& dims() const { return dims_; }

  /// Human-readable form like "[64, 3, 12, 12]".
  std::string to_string() const;

 private:
  std::vector<std::size_t> dims_;
};

/// Owning dense float tensor.  Copyable, movable; copies are deep.
class Tensor {
 public:
  Tensor() = default;
  /// Allocates zero-initialized storage for `shape`.
  explicit Tensor(Shape shape);
  /// Adopts `data`, which must have shape.num_elements() entries.
  Tensor(Shape shape, std::vector<float> data);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value);

  const Shape& shape() const { return shape_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Flat element access.
  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// Multi-index access with debug-mode bounds checking.
  float& at(std::size_t i0);
  float at(std::size_t i0) const;
  float& at(std::size_t i0, std::size_t i1);
  float at(std::size_t i0, std::size_t i1) const;
  float& at(std::size_t i0, std::size_t i1, std::size_t i2, std::size_t i3);
  float at(std::size_t i0, std::size_t i1, std::size_t i2, std::size_t i3) const;

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }

  /// Returns a tensor sharing no storage but holding the same data with a
  /// new shape.  Requires identical element count.
  Tensor reshaped(Shape new_shape) const;

  /// Sets every element to `value`.
  void fill(float value);

  /// Fills with N(mean, stddev) draws.
  void fill_normal(util::Rng& rng, float mean, float stddev);

  /// Fills with U[lo, hi) draws.
  void fill_uniform(util::Rng& rng, float lo, float hi);

 private:
  std::size_t flat_index(std::size_t i0, std::size_t i1) const;
  std::size_t flat_index(std::size_t i0, std::size_t i1, std::size_t i2,
                         std::size_t i3) const;

  Shape shape_;
  std::vector<float> data_;
};

}  // namespace helcfl::tensor
