// Internal GEMM kernel layer (`helcfl::tensor::detail`).
//
// The public entry points in tensor/ops.h all lower to one descriptor,
// `GemmArgs`, dispatched to a register-blocked, cache-tiled driver
// (gemm_kernel.inl).  The driver is compiled once per instruction set the
// build supports — a portable baseline TU and, on x86-64 with GCC/Clang,
// an AVX2+FMA TU built with per-file -m flags — and the fastest kernel the
// running CPU supports is resolved exactly once per process, so every call
// in a run (and every worker thread) executes the same instruction
// sequence.  docs/KERNELS.md documents the tiling scheme, the accumulation
// policy, and the determinism contract.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace helcfl::tensor::detail {

/// One C = op(A)·op(B) [+ C] [+ bias] problem over row-major storage.
struct GemmArgs {
  std::size_t m = 0;  ///< rows of op(A) and C
  std::size_t k = 0;  ///< inner (reduction) dimension
  std::size_t n = 0;  ///< columns of op(B) and C
  const float* a = nullptr;  ///< [m,k], or [k,m] when trans_a
  const float* b = nullptr;  ///< [k,n], or [n,k] when trans_b
  float* c = nullptr;        ///< [m,n]; must not alias a or b
  /// Optional fused bias: [m] broadcast across each row, or [n] broadcast
  /// down each column when bias_per_col.  Requires !accumulate.
  const float* bias = nullptr;
  bool bias_per_col = false;
  bool trans_a = false;
  bool trans_b = false;
  bool accumulate = false;  ///< C += product instead of C = product
};

using GemmFn = void (*)(const GemmArgs&);

/// Portable driver: 4x8 micro-tiles, whatever SIMD the base -march allows.
void gemm_generic(const GemmArgs& args);

#if defined(HELCFL_HAVE_AVX2_KERNELS)
/// Same driver compiled with -mavx2 -mfma and 6x16 micro-tiles.
void gemm_avx2(const GemmArgs& args);
#endif

/// The kernel this process dispatches to.  Resolved once (thread-safe) from
/// CPUID; `HELCFL_KERNEL_ISA=generic` in the environment pins the portable
/// kernel for cross-machine bit-reproducibility.
GemmFn active_kernel();

/// Name of the resolved kernel: "avx2_fma" or "generic".
std::string_view kernel_isa();

/// Process-wide count of scratch-buffer growths (GEMM packing panels and
/// layer im2col buffers).  In steady state — repeated calls with shapes no
/// larger than already seen — this must not advance; tests and the micro
/// benches assert it.
std::uint64_t scratch_reallocs();

/// Records one scratch growth (used by ensure_scratch and the nn layers).
void note_scratch_realloc();

/// Grows `buf` to at least `need` floats, counting the reallocation.
/// Never shrinks, so steady-state calls are allocation-free.
inline void ensure_scratch(std::vector<float>& buf, std::size_t need) {
  if (buf.size() < need) {
    buf.resize(need);
    note_scratch_realloc();
  }
}

}  // namespace helcfl::tensor::detail
