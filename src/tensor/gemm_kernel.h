// Internal GEMM kernel layer (`helcfl::tensor::detail`).
//
// The public entry points in tensor/ops.h all lower to one descriptor,
// `GemmArgs`, dispatched to a register-blocked, cache-tiled driver
// (gemm_kernel.inl).  The driver is compiled once per instruction set the
// build supports — a portable baseline TU and, on x86-64 with GCC/Clang,
// AVX2+FMA and AVX-512 TUs built with per-file -m flags — and the fastest
// kernel the running CPU supports is resolved exactly once per process, so
// every call in a run (and every worker thread) executes the same
// instruction sequence.  On top of the per-ISA drivers sit two orthogonal
// accelerations that both preserve the bitwise-determinism contract:
//
//   * run_gemm() partitions C's **rows** across a dedicated kernel thread
//     pool (set_kernel_threads / HELCFL_KERNEL_THREADS).  Every output
//     element still accumulates its full k extent in the documented
//     ascending-k order on exactly one thread, so the bits are identical
//     for any thread count — including 1 — on a given kernel.
//   * Callers may supply prepacked operand panels (packed_a / packed_b,
//     produced by the vtable pack functions) so a weight matrix reused
//     across many products — the FedAvg global model forwarded by every
//     selected client — is packed once instead of per call.  Packing is a
//     pure data rearrangement; the product bits do not change.
//
// docs/KERNELS.md documents the tiling scheme, the accumulation policy,
// the threading partition, the packed-panel layout, and the determinism
// contract.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace helcfl::tensor::detail {

/// One C = op(A)·op(B) [+ C] [+ bias] problem over row-major storage.
struct GemmArgs {
  std::size_t m = 0;  ///< rows of op(A) and C
  std::size_t k = 0;  ///< inner (reduction) dimension
  std::size_t n = 0;  ///< columns of op(B) and C
  const float* a = nullptr;  ///< [m,k], or [k,m] when trans_a
  const float* b = nullptr;  ///< [k,n], or [n,k] when trans_b
  float* c = nullptr;        ///< [m,n]; must not alias a or b
  /// Optional fused bias: [m] broadcast across each row, or [n] broadcast
  /// down each column when bias_per_col.  Requires !accumulate.
  const float* bias = nullptr;
  bool bias_per_col = false;
  bool trans_a = false;
  bool trans_b = false;
  bool accumulate = false;  ///< C += product instead of C = product
  /// Prepacked operand panels in the active kernel's layout (produced by
  /// KernelVTable::pack_a / pack_b for the *full* matrix).  When set, the
  /// corresponding raw pointer and trans flag are ignored.  Panel layouts
  /// are kernel-specific — a pack made under one ISA must never be fed to
  /// another kernel (tensor::PackedWeights enforces this).
  const float* packed_a = nullptr;
  const float* packed_b = nullptr;
  /// Row range [row_begin, row_end) of C to compute; row_end == 0 means m.
  /// Used by run_gemm() to shard rows across threads.  With packed_a the
  /// range must start on a multiple of the kernel's mc block (run_gemm
  /// guarantees this by partitioning at mc granularity).
  std::size_t row_begin = 0;
  std::size_t row_end = 0;
};

using GemmFn = void (*)(const GemmArgs&);
/// Packs the full op(A) (resp. op(B)) of `args` into `dst`, whose capacity
/// must be packed_a_size(vt, m, k) (resp. packed_b_size(vt, k, n)) floats.
using PackFn = void (*)(const GemmArgs&, float*);

/// Everything the engine knows about one compiled kernel.  `mr/nr` are the
/// micro-tile dimensions (they fix the packed-panel layout), `mc/kc` the
/// cache-block sizes (mc is the row-partition granularity for threading).
struct KernelVTable {
  GemmFn gemm = nullptr;
  PackFn pack_a = nullptr;
  PackFn pack_b = nullptr;
  std::size_t mr = 0;
  std::size_t nr = 0;
  std::size_t mc = 0;
  std::size_t kc = 0;
  std::string_view isa;
};

/// Floats needed to hold a full prepacked op(A) of shape [m, k] (zero-padded
/// kMr-row panels) or op(B) of shape [k, n] (zero-padded kNr-column panels).
inline std::size_t packed_a_size(const KernelVTable& vt, std::size_t m,
                                 std::size_t k) {
  return ((m + vt.mr - 1) / vt.mr) * vt.mr * k;
}
inline std::size_t packed_b_size(const KernelVTable& vt, std::size_t k,
                                 std::size_t n) {
  return ((n + vt.nr - 1) / vt.nr) * vt.nr * k;
}

/// Portable driver: 4x8 micro-tiles, whatever SIMD the base -march allows.
void gemm_generic(const GemmArgs& args);
void gemm_generic_pack_a(const GemmArgs& args, float* dst);
void gemm_generic_pack_b(const GemmArgs& args, float* dst);
const KernelVTable& gemm_generic_vtable();

#if defined(HELCFL_HAVE_AVX2_KERNELS)
/// Same driver compiled with -mavx2 -mfma and 6x16 micro-tiles.
void gemm_avx2(const GemmArgs& args);
void gemm_avx2_pack_a(const GemmArgs& args, float* dst);
void gemm_avx2_pack_b(const GemmArgs& args, float* dst);
const KernelVTable& gemm_avx2_vtable();
#endif

#if defined(HELCFL_HAVE_AVX512_KERNELS)
/// Same driver compiled with -mavx512f and 12x32 micro-tiles.
void gemm_avx512(const GemmArgs& args);
void gemm_avx512_pack_a(const GemmArgs& args, float* dst);
void gemm_avx512_pack_b(const GemmArgs& args, float* dst);
const KernelVTable& gemm_avx512_vtable();
#endif

/// The kernel this process dispatches to.  Resolved once (thread-safe) from
/// CPUID; `HELCFL_KERNEL_ISA` in the environment *caps* the dispatch below
/// the CPUID ceiling (generic < avx2_fma < avx512), so pinning an ISA the
/// machine lacks degrades gracefully to the best supported one.
/// `HELCFL_KERNEL_ISA=generic` pins the portable kernel for cross-machine
/// bit-reproducibility.
const KernelVTable& active_kernel_vtable();

/// The resolved kernel's GEMM entry (no threading, no packing cache).
GemmFn active_kernel();

/// Runs one GEMM through the resolved kernel, sharding C's rows across the
/// kernel thread pool when (a) more than one kernel thread is configured,
/// (b) the problem is large enough to amortize the fork/join, and (c) the
/// calling thread is not itself a util::ThreadPool worker (nested
/// parallelism would deadlock a pool waiting on itself and oversubscribe
/// the machine; trainer workers each run whole GEMMs instead).  Bitwise
/// deterministic for any thread count: row sharding never changes any
/// element's ascending-k accumulation order.
void run_gemm(const GemmArgs& args);

/// Sets the kernel-pool width: 1 (default) disables threading, 0 resolves
/// to hardware_concurrency, n >= 2 spawns a dedicated n-thread pool.  Not
/// thread-safe against in-flight GEMMs — configure from the main thread
/// between computations.  First use reads HELCFL_KERNEL_THREADS from the
/// environment when the knob was never set programmatically.
void set_kernel_threads(std::size_t n);

/// Currently configured kernel-pool width (>= 1).
std::size_t kernel_threads();

/// Name of the resolved kernel: "avx512", "avx2_fma" or "generic".
std::string_view kernel_isa();

/// Process-wide count of scratch-buffer growths (GEMM packing panels and
/// layer im2col buffers), aggregated across every thread — the panels are
/// thread_local but the counter is one process-global atomic, so pool
/// workers' growths are visible here too.  In steady state — repeated calls
/// with shapes no larger than already seen on each thread — this must not
/// advance; tests and the micro benches assert it, and the trainer exports
/// it per round as the `kernel.scratch_reallocs` obs counter.
std::uint64_t scratch_reallocs();

/// Records one scratch growth (used by ensure_scratch and the nn layers).
void note_scratch_realloc();

/// Grows `buf` to at least `need` floats, counting the reallocation.
/// Never shrinks, so steady-state calls are allocation-free.
inline void ensure_scratch(std::vector<float>& buf, std::size_t need) {
  if (buf.size() < need) {
    buf.resize(need);
    note_scratch_realloc();
  }
}

}  // namespace helcfl::tensor::detail
