#include "tensor/tensor.h"

#include <cassert>
#include <stdexcept>
#include <string>

#include "util/rng.h"

namespace helcfl::tensor {

std::size_t Shape::num_elements() const {
  if (dims_.empty()) return 0;
  std::size_t total = 1;
  for (const std::size_t d : dims_) total *= d;
  return total;
}

std::string Shape::to_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(dims_[i]);
  }
  out += "]";
  return out;
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(shape_.num_elements(), 0.0F) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (data_.size() != shape_.num_elements()) {
    throw std::invalid_argument("Tensor: data size " + std::to_string(data_.size()) +
                                " does not match shape " + shape_.to_string());
  }
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

float& Tensor::at(std::size_t i0) {
  assert(shape_.rank() == 1 && i0 < shape_[0]);
  return data_[i0];
}

float Tensor::at(std::size_t i0) const {
  assert(shape_.rank() == 1 && i0 < shape_[0]);
  return data_[i0];
}

std::size_t Tensor::flat_index(std::size_t i0, std::size_t i1) const {
  assert(shape_.rank() == 2);
  assert(i0 < shape_[0] && i1 < shape_[1]);
  return i0 * shape_[1] + i1;
}

std::size_t Tensor::flat_index(std::size_t i0, std::size_t i1, std::size_t i2,
                               std::size_t i3) const {
  assert(shape_.rank() == 4);
  assert(i0 < shape_[0] && i1 < shape_[1] && i2 < shape_[2] && i3 < shape_[3]);
  return ((i0 * shape_[1] + i1) * shape_[2] + i2) * shape_[3] + i3;
}

float& Tensor::at(std::size_t i0, std::size_t i1) { return data_[flat_index(i0, i1)]; }

float Tensor::at(std::size_t i0, std::size_t i1) const {
  return data_[flat_index(i0, i1)];
}

float& Tensor::at(std::size_t i0, std::size_t i1, std::size_t i2, std::size_t i3) {
  return data_[flat_index(i0, i1, i2, i3)];
}

float Tensor::at(std::size_t i0, std::size_t i1, std::size_t i2, std::size_t i3) const {
  return data_[flat_index(i0, i1, i2, i3)];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  if (new_shape.num_elements() != data_.size()) {
    throw std::invalid_argument("Tensor::reshaped: element count mismatch (" +
                                shape_.to_string() + " -> " + new_shape.to_string() +
                                ")");
  }
  return Tensor(std::move(new_shape), data_);
}

void Tensor::fill(float value) {
  for (auto& v : data_) v = value;
}

void Tensor::fill_normal(util::Rng& rng, float mean, float stddev) {
  for (auto& v : data_) v = static_cast<float>(rng.normal(mean, stddev));
}

void Tensor::fill_uniform(util::Rng& rng, float lo, float hi) {
  for (auto& v : data_) v = static_cast<float>(rng.uniform(lo, hi));
}

}  // namespace helcfl::tensor
