// Blocked GEMM driver, included once per instruction-set TU.
//
// The including .cpp must define:
//   HELCFL_KERNEL_FN  — name of the driver function to emit
//   HELCFL_KERNEL_MR  — micro-tile rows (accumulator rows held in registers)
//   HELCFL_KERNEL_NR  — micro-tile columns (must span >= one SIMD vector)
//   HELCFL_KERNEL_VW  — SIMD vector width in floats (divides NR)
//
// Design (docs/KERNELS.md):
//   * Loop nest kb -> mb -> j0 -> i0: k is cut into kKc blocks, m into kMc
//     blocks; inside a block the B panel (kc x kNr, L1-resident) is reused
//     by every A panel (kc x kMr).
//   * A and B are packed into zero-padded panels so the micro-kernel always
//     runs full kMr x kNr tiles with unit-stride loads — the packing
//     routines absorb both transposes, so all four public GEMM variants
//     share this one inner loop.
//   * The micro-kernel holds its accumulator tile in GCC/Clang portable
//     vector types (__attribute__((vector_size))) — element-wise IEEE
//     arithmetic the compiler lowers to whatever SIMD the TU's -m flags
//     allow (or scalar code on targets without it).  No intrinsics, no
//     headers, no dependencies; a plain-array fallback covers other
//     compilers.  Plain float arrays were measured first and rejected: GCC
//     refuses scalar replacement of a 6x16 tile, spilling every
//     accumulator to the stack (2.4 GFLOP/s vs 68 with vector types).
//   * Accumulation policy: float accumulators, ascending-k order within a
//     k-block, k-blocks folded into C in ascending order.  For fixed shapes
//     the reduction order is fixed, so results are bitwise deterministic
//     for a given kernel (thread count and tracing never change it).
//   * Packing panels live in thread_local buffers that only ever grow
//     (ensure_scratch), so steady-state calls are allocation-free and
//     worker threads never share scratch.

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <vector>

#include "tensor/gemm_kernel.h"

namespace helcfl::tensor::detail {
namespace {

constexpr std::size_t kMr = HELCFL_KERNEL_MR;
constexpr std::size_t kNr = HELCFL_KERNEL_NR;
constexpr std::size_t kKc = 256;  // k-block: B panel = kKc*kNr floats (L1)
constexpr std::size_t kMc = 96;   // m-block: packed A = kMc*kKc floats (L2)

struct PackBuffers {
  std::vector<float> a;
  std::vector<float> b;
};

PackBuffers& pack_buffers() {
  thread_local PackBuffers buffers;
  return buffers;
}

/// Packs A(mb:mb+mc, kb:kb+kc) into consecutive kMr-row panels.  Panel i0
/// stores element (ii, p) at [p*kMr + ii]; rows past m are zero so the
/// micro-kernel needs no row tail cases.  trans_a reads A stored [k, m].
void pack_a_block(const GemmArgs& g, std::size_t mb, std::size_t mc,
                  std::size_t kb, std::size_t kc, float* __restrict__ dst) {
  for (std::size_t i0 = 0; i0 < mc; i0 += kMr) {
    const std::size_t mr = std::min(kMr, mc - i0);
    for (std::size_t p = 0; p < kc; ++p) {
      const std::size_t kk = kb + p;
      float* __restrict__ col = dst + p * kMr;
      for (std::size_t ii = 0; ii < mr; ++ii) {
        const std::size_t row = mb + i0 + ii;
        col[ii] = g.trans_a ? g.a[kk * g.m + row] : g.a[row * g.k + kk];
      }
      for (std::size_t ii = mr; ii < kMr; ++ii) col[ii] = 0.0F;
    }
    dst += kc * kMr;
  }
}

/// Packs B(kb:kb+kc, 0:n) into consecutive kNr-column panels.  Panel j0
/// stores element (p, jj) at [p*kNr + jj]; columns past n are zero.
/// trans_b reads B stored [n, k].
void pack_b_block(const GemmArgs& g, std::size_t kb, std::size_t kc,
                  float* __restrict__ dst) {
  for (std::size_t j0 = 0; j0 < g.n; j0 += kNr) {
    const std::size_t nr = std::min(kNr, g.n - j0);
    for (std::size_t p = 0; p < kc; ++p) {
      float* __restrict__ row = dst + p * kNr;
      if (g.trans_b) {
        for (std::size_t jj = 0; jj < nr; ++jj) {
          row[jj] = g.b[(j0 + jj) * g.k + kb + p];
        }
      } else {
        const float* __restrict__ src = g.b + (kb + p) * g.n + j0;
        for (std::size_t jj = 0; jj < nr; ++jj) row[jj] = src[jj];
      }
      for (std::size_t jj = nr; jj < kNr; ++jj) row[jj] = 0.0F;
    }
    dst += kc * kNr;
  }
}

/// Writes tile[kMr][kNr] = A-panel * B-panel over kc steps, ascending k.
#if defined(__GNUC__) || defined(__clang__)

typedef float Vec
    __attribute__((vector_size(HELCFL_KERNEL_VW * sizeof(float))));
constexpr std::size_t kVw = HELCFL_KERNEL_VW;
constexpr std::size_t kNv = kNr / kVw;  // vectors per tile row
static_assert(kNr % kVw == 0, "NR must be a multiple of the vector width");

inline void micro_kernel(std::size_t kc, const float* __restrict__ ap,
                         const float* __restrict__ bp,
                         float* __restrict__ tile) {
  Vec acc[kMr][kNv] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    Vec b[kNv];
    for (std::size_t v = 0; v < kNv; ++v) {
      std::memcpy(&b[v], bp + p * kNr + v * kVw, sizeof(Vec));
    }
    const float* __restrict__ arow = ap + p * kMr;
    for (std::size_t i = 0; i < kMr; ++i) {
      const Vec av = Vec{} + arow[i];  // broadcast
      for (std::size_t v = 0; v < kNv; ++v) acc[i][v] += av * b[v];
    }
  }
  for (std::size_t i = 0; i < kMr; ++i) {
    for (std::size_t v = 0; v < kNv; ++v) {
      std::memcpy(tile + i * kNr + v * kVw, &acc[i][v], sizeof(Vec));
    }
  }
}

#else  // fallback for compilers without vector extensions

inline void micro_kernel(std::size_t kc, const float* __restrict__ ap,
                         const float* __restrict__ bp,
                         float* __restrict__ tile) {
  for (std::size_t i = 0; i < kMr * kNr; ++i) tile[i] = 0.0F;
  for (std::size_t p = 0; p < kc; ++p) {
    const float* __restrict__ arow = ap + p * kMr;
    const float* __restrict__ brow = bp + p * kNr;
    for (std::size_t i = 0; i < kMr; ++i) {
      const float av = arow[i];
      float* __restrict__ out = tile + i * kNr;
      for (std::size_t j = 0; j < kNr; ++j) out[j] += av * brow[j];
    }
  }
}

#endif

}  // namespace

void HELCFL_KERNEL_FN(const GemmArgs& g) {
  if (g.m == 0 || g.n == 0) return;
  if (g.k == 0) {
    // No products: honour the store semantics (C = bias or 0) and leave.
    if (g.accumulate) return;
    for (std::size_t i = 0; i < g.m; ++i) {
      float* row = g.c + i * g.n;
      for (std::size_t j = 0; j < g.n; ++j) {
        row[j] = g.bias == nullptr ? 0.0F
                                   : (g.bias_per_col ? g.bias[j] : g.bias[i]);
      }
    }
    return;
  }

  PackBuffers& bufs = pack_buffers();
  const std::size_t n_panels = (g.n + kNr - 1) / kNr;
  const std::size_t m_panels = (std::min(g.m, kMc) + kMr - 1) / kMr;
  ensure_scratch(bufs.b, n_panels * kKc * kNr);
  ensure_scratch(bufs.a, m_panels * kKc * kMr);

  for (std::size_t kb = 0; kb < g.k; kb += kKc) {
    const std::size_t kc = std::min(kKc, g.k - kb);
    pack_b_block(g, kb, kc, bufs.b.data());
    // First k-block overwrites C (fusing the bias); later blocks add.
    const bool first = kb == 0 && !g.accumulate;
    for (std::size_t mb = 0; mb < g.m; mb += kMc) {
      const std::size_t mc = std::min(kMc, g.m - mb);
      pack_a_block(g, mb, mc, kb, kc, bufs.a.data());
      for (std::size_t j0 = 0; j0 < g.n; j0 += kNr) {
        const std::size_t nr = std::min(kNr, g.n - j0);
        const float* bp = bufs.b.data() + (j0 / kNr) * kc * kNr;
        for (std::size_t i0 = 0; i0 < mc; i0 += kMr) {
          const std::size_t mr = std::min(kMr, mc - i0);
          const float* ap = bufs.a.data() + (i0 / kMr) * kc * kMr;
          float acc[kMr * kNr];
          micro_kernel(kc, ap, bp, acc);
          for (std::size_t ii = 0; ii < mr; ++ii) {
            float* __restrict__ crow = g.c + (mb + i0 + ii) * g.n + j0;
            const float* __restrict__ arow = acc + ii * kNr;
            if (!first) {
              for (std::size_t jj = 0; jj < nr; ++jj) crow[jj] += arow[jj];
            } else if (g.bias == nullptr) {
              for (std::size_t jj = 0; jj < nr; ++jj) crow[jj] = arow[jj];
            } else if (g.bias_per_col) {
              for (std::size_t jj = 0; jj < nr; ++jj) {
                crow[jj] = arow[jj] + g.bias[j0 + jj];
              }
            } else {
              const float bias_i = g.bias[mb + i0 + ii];
              for (std::size_t jj = 0; jj < nr; ++jj) {
                crow[jj] = arow[jj] + bias_i;
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace helcfl::tensor::detail
