// Blocked GEMM driver, included once per instruction-set TU.
//
// The including .cpp must define:
//   HELCFL_KERNEL_FN         — name of the driver function to emit
//   HELCFL_KERNEL_PACK_A_FN  — name of the full-matrix A-pack function
//   HELCFL_KERNEL_PACK_B_FN  — name of the full-matrix B-pack function
//   HELCFL_KERNEL_VTABLE_FN  — name of the KernelVTable accessor
//   HELCFL_KERNEL_ISA_NAME   — string literal reported as the ISA name
//   HELCFL_KERNEL_MR  — micro-tile rows (accumulator rows held in registers)
//   HELCFL_KERNEL_NR  — micro-tile columns (must span >= one SIMD vector)
//   HELCFL_KERNEL_VW  — SIMD vector width in floats (divides NR)
//
// Design (docs/KERNELS.md):
//   * Loop nest kb -> mb -> j0 -> i0: k is cut into kKc blocks, m into kMc
//     blocks; inside a block the B panel (kc x kNr, L1-resident) is reused
//     by every A panel (kc x kMr).
//   * A and B are packed into zero-padded panels so the micro-kernel always
//     runs full kMr x kNr tiles with unit-stride loads — the packing
//     routines absorb both transposes, so all four public GEMM variants
//     share this one inner loop.  Callers that reuse one operand across
//     many products can pass prepacked full-matrix panels (GemmArgs
//     packed_a/packed_b, produced by the PACK functions below); the driver
//     then skips its own per-block packing for that operand.  Packing is a
//     pure data rearrangement, so prepacked and freshly packed runs produce
//     identical bits.
//   * The micro-kernel holds its accumulator tile in GCC/Clang portable
//     vector types (__attribute__((vector_size))) — element-wise IEEE
//     arithmetic the compiler lowers to whatever SIMD the TU's -m flags
//     allow (or scalar code on targets without it).  No intrinsics, no
//     headers, no dependencies; a plain-array fallback covers other
//     compilers.  Plain float arrays were measured first and rejected: GCC
//     refuses scalar replacement of a 6x16 tile, spilling every
//     accumulator to the stack (2.4 GFLOP/s vs 68 with vector types).
//   * Accumulation policy: float accumulators, ascending-k order within a
//     k-block, k-blocks folded into C in ascending order.  For fixed shapes
//     the reduction order is fixed, so results are bitwise deterministic
//     for a given kernel (thread count and tracing never change it).
//   * Row sharding: the driver computes only C rows in
//     [row_begin, row_end) (0,0 = all), walking them in the same kMc blocks
//     a full-matrix call would use when the range starts on a kMc boundary
//     — which run_gemm() guarantees by partitioning at mc granularity.
//     Every element's reduction runs entirely on one thread in the same
//     ascending-k order, so sharded and unsharded runs are bitwise equal.
//   * Packing panels live in thread_local buffers that only ever grow
//     (ensure_scratch), so steady-state calls are allocation-free and
//     worker threads never share scratch.

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <vector>

#include "tensor/gemm_kernel.h"

namespace helcfl::tensor::detail {
namespace {

constexpr std::size_t kMr = HELCFL_KERNEL_MR;
constexpr std::size_t kNr = HELCFL_KERNEL_NR;
constexpr std::size_t kKc = 256;  // k-block: B panel = kKc*kNr floats (L1)
constexpr std::size_t kMc = 96;   // m-block: packed A = kMc*kKc floats (L2)
// Prepacked-A addressing assumes every kMc row block holds whole panels.
static_assert(kMc % kMr == 0, "MR must divide the m cache block");

struct PackBuffers {
  std::vector<float> a;
  std::vector<float> b;
};

PackBuffers& pack_buffers() {
  thread_local PackBuffers buffers;
  return buffers;
}

/// Packs A(mb:mb+mc, kb:kb+kc) into consecutive kMr-row panels.  Panel i0
/// stores element (ii, p) at [p*kMr + ii]; rows past m are zero so the
/// micro-kernel needs no row tail cases.  trans_a reads A stored [k, m].
void pack_a_block(const GemmArgs& g, std::size_t mb, std::size_t mc,
                  std::size_t kb, std::size_t kc, float* __restrict__ dst) {
  for (std::size_t i0 = 0; i0 < mc; i0 += kMr) {
    const std::size_t mr = std::min(kMr, mc - i0);
    for (std::size_t p = 0; p < kc; ++p) {
      const std::size_t kk = kb + p;
      float* __restrict__ col = dst + p * kMr;
      for (std::size_t ii = 0; ii < mr; ++ii) {
        const std::size_t row = mb + i0 + ii;
        col[ii] = g.trans_a ? g.a[kk * g.m + row] : g.a[row * g.k + kk];
      }
      for (std::size_t ii = mr; ii < kMr; ++ii) col[ii] = 0.0F;
    }
    dst += kc * kMr;
  }
}

/// Packs B(kb:kb+kc, 0:n) into consecutive kNr-column panels.  Panel j0
/// stores element (p, jj) at [p*kNr + jj]; columns past n are zero.
/// trans_b reads B stored [n, k].
void pack_b_block(const GemmArgs& g, std::size_t kb, std::size_t kc,
                  float* __restrict__ dst) {
  for (std::size_t j0 = 0; j0 < g.n; j0 += kNr) {
    const std::size_t nr = std::min(kNr, g.n - j0);
    for (std::size_t p = 0; p < kc; ++p) {
      float* __restrict__ row = dst + p * kNr;
      if (g.trans_b) {
        for (std::size_t jj = 0; jj < nr; ++jj) {
          row[jj] = g.b[(j0 + jj) * g.k + kb + p];
        }
      } else {
        const float* __restrict__ src = g.b + (kb + p) * g.n + j0;
        for (std::size_t jj = 0; jj < nr; ++jj) row[jj] = src[jj];
      }
      for (std::size_t jj = nr; jj < kNr; ++jj) row[jj] = 0.0F;
    }
    dst += kc * kNr;
  }
}

/// Writes tile[kMr][kNr] = A-panel * B-panel over kc steps, ascending k.
#if defined(__GNUC__) || defined(__clang__)

typedef float Vec
    __attribute__((vector_size(HELCFL_KERNEL_VW * sizeof(float))));
constexpr std::size_t kVw = HELCFL_KERNEL_VW;
constexpr std::size_t kNv = kNr / kVw;  // vectors per tile row
static_assert(kNr % kVw == 0, "NR must be a multiple of the vector width");

inline void micro_kernel(std::size_t kc, const float* __restrict__ ap,
                         const float* __restrict__ bp,
                         float* __restrict__ tile) {
  Vec acc[kMr][kNv] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    Vec b[kNv];
    for (std::size_t v = 0; v < kNv; ++v) {
      std::memcpy(&b[v], bp + p * kNr + v * kVw, sizeof(Vec));
    }
    const float* __restrict__ arow = ap + p * kMr;
    for (std::size_t i = 0; i < kMr; ++i) {
      const Vec av = Vec{} + arow[i];  // broadcast
      for (std::size_t v = 0; v < kNv; ++v) acc[i][v] += av * b[v];
    }
  }
  for (std::size_t i = 0; i < kMr; ++i) {
    for (std::size_t v = 0; v < kNv; ++v) {
      std::memcpy(tile + i * kNr + v * kVw, &acc[i][v], sizeof(Vec));
    }
  }
}

#else  // fallback for compilers without vector extensions

inline void micro_kernel(std::size_t kc, const float* __restrict__ ap,
                         const float* __restrict__ bp,
                         float* __restrict__ tile) {
  for (std::size_t i = 0; i < kMr * kNr; ++i) tile[i] = 0.0F;
  for (std::size_t p = 0; p < kc; ++p) {
    const float* __restrict__ arow = ap + p * kMr;
    const float* __restrict__ brow = bp + p * kNr;
    for (std::size_t i = 0; i < kMr; ++i) {
      const float av = arow[i];
      float* __restrict__ out = tile + i * kNr;
      for (std::size_t j = 0; j < kNr; ++j) out[j] += av * brow[j];
    }
  }
}

#endif

}  // namespace

void HELCFL_KERNEL_FN(const GemmArgs& g) {
  const std::size_t rb = std::min(g.row_begin, g.m);
  const std::size_t re = g.row_end == 0 ? g.m : std::min(g.row_end, g.m);
  if (rb >= re || g.n == 0) return;
  if (g.k == 0) {
    // No products: honour the store semantics (C = bias or 0) and leave.
    if (g.accumulate) return;
    for (std::size_t i = rb; i < re; ++i) {
      float* row = g.c + i * g.n;
      for (std::size_t j = 0; j < g.n; ++j) {
        row[j] = g.bias == nullptr ? 0.0F
                                   : (g.bias_per_col ? g.bias[j] : g.bias[i]);
      }
    }
    return;
  }

  PackBuffers& bufs = pack_buffers();
  const std::size_t n_panels = (g.n + kNr - 1) / kNr;
  // Full-matrix panel count: the stride of one k-block in a prepacked A.
  const std::size_t a_panels = (g.m + kMr - 1) / kMr;
  if (g.packed_b == nullptr) ensure_scratch(bufs.b, n_panels * kKc * kNr);
  if (g.packed_a == nullptr) {
    const std::size_t m_panels = (std::min(re - rb, kMc) + kMr - 1) / kMr;
    ensure_scratch(bufs.a, m_panels * kKc * kMr);
  }

  for (std::size_t kb = 0; kb < g.k; kb += kKc) {
    const std::size_t kc = std::min(kKc, g.k - kb);
    const float* bbase;
    if (g.packed_b != nullptr) {
      // k-block kb of the prepacked B starts after kb full rows of panels.
      bbase = g.packed_b + n_panels * kNr * kb;
    } else {
      pack_b_block(g, kb, kc, bufs.b.data());
      bbase = bufs.b.data();
    }
    // First k-block overwrites C (fusing the bias); later blocks add.
    const bool first = kb == 0 && !g.accumulate;
    for (std::size_t mb = rb; mb < re; mb += kMc) {
      const std::size_t mc = std::min(kMc, re - mb);
      const float* abase;
      if (g.packed_a != nullptr) {
        // Needs mb % kMr == 0 — holds whenever row_begin is kMc-aligned.
        abase = g.packed_a + a_panels * kMr * kb + (mb / kMr) * kc * kMr;
      } else {
        pack_a_block(g, mb, mc, kb, kc, bufs.a.data());
        abase = bufs.a.data();
      }
      for (std::size_t j0 = 0; j0 < g.n; j0 += kNr) {
        const std::size_t nr = std::min(kNr, g.n - j0);
        const float* bp = bbase + (j0 / kNr) * kc * kNr;
        for (std::size_t i0 = 0; i0 < mc; i0 += kMr) {
          const std::size_t mr = std::min(kMr, mc - i0);
          const float* ap = abase + (i0 / kMr) * kc * kMr;
          float acc[kMr * kNr];
          micro_kernel(kc, ap, bp, acc);
          for (std::size_t ii = 0; ii < mr; ++ii) {
            float* __restrict__ crow = g.c + (mb + i0 + ii) * g.n + j0;
            const float* __restrict__ arow = acc + ii * kNr;
            if (!first) {
              for (std::size_t jj = 0; jj < nr; ++jj) crow[jj] += arow[jj];
            } else if (g.bias == nullptr) {
              for (std::size_t jj = 0; jj < nr; ++jj) crow[jj] = arow[jj];
            } else if (g.bias_per_col) {
              for (std::size_t jj = 0; jj < nr; ++jj) {
                crow[jj] = arow[jj] + g.bias[j0 + jj];
              }
            } else {
              const float bias_i = g.bias[mb + i0 + ii];
              for (std::size_t jj = 0; jj < nr; ++jj) {
                crow[jj] = arow[jj] + bias_i;
              }
            }
          }
        }
      }
    }
  }
}

/// Packs all of op(A) into `dst` (capacity packed_a_size(vt, m, k)): the
/// same k-block/panel layout the driver builds incrementally, so the driver
/// can index any (kb, mb) block directly.  Uses only m/k/a/trans_a of `g`.
void HELCFL_KERNEL_PACK_A_FN(const GemmArgs& g, float* dst) {
  const std::size_t a_panels = (g.m + kMr - 1) / kMr;
  for (std::size_t kb = 0; kb < g.k; kb += kKc) {
    const std::size_t kc = std::min(kKc, g.k - kb);
    pack_a_block(g, 0, g.m, kb, kc, dst + a_panels * kMr * kb);
  }
}

/// Packs all of op(B) into `dst` (capacity packed_b_size(vt, k, n)).
/// Uses only k/n/b/trans_b of `g`.
void HELCFL_KERNEL_PACK_B_FN(const GemmArgs& g, float* dst) {
  const std::size_t n_panels = (g.n + kNr - 1) / kNr;
  for (std::size_t kb = 0; kb < g.k; kb += kKc) {
    const std::size_t kc = std::min(kKc, g.k - kb);
    pack_b_block(g, kb, kc, dst + n_panels * kNr * kb);
  }
}

const KernelVTable& HELCFL_KERNEL_VTABLE_FN() {
  static constexpr KernelVTable vtable{
      &HELCFL_KERNEL_FN, &HELCFL_KERNEL_PACK_A_FN, &HELCFL_KERNEL_PACK_B_FN,
      kMr,               kNr,                      kMc,
      kKc,               HELCFL_KERNEL_ISA_NAME};
  return vtable;
}

}  // namespace helcfl::tensor::detail
