// Portable GEMM driver: compiled with the project's base flags only, so it
// runs (and produces identical bits) on any target the build supports.
// 4x8 micro-tiles keep the accumulator within the 16 XMM registers of
// baseline x86-64; other targets simply unroll scalar code.
#define HELCFL_KERNEL_FN gemm_generic
#define HELCFL_KERNEL_PACK_A_FN gemm_generic_pack_a
#define HELCFL_KERNEL_PACK_B_FN gemm_generic_pack_b
#define HELCFL_KERNEL_VTABLE_FN gemm_generic_vtable
#define HELCFL_KERNEL_ISA_NAME "generic"
#define HELCFL_KERNEL_MR 4
#define HELCFL_KERNEL_NR 8
#define HELCFL_KERNEL_VW 4
#include "tensor/gemm_kernel.inl"
