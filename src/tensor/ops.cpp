#include "tensor/ops.h"

#include <atomic>
#include <cassert>
#include <cstdlib>
#include <stdexcept>

#include "tensor/gemm_kernel.h"

namespace helcfl::tensor {

void add_inplace(std::span<float> y, std::span<const float> x) {
  assert(y.size() == x.size());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += x[i];
}

void sub_inplace(std::span<float> y, std::span<const float> x) {
  assert(y.size() == x.size());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] -= x[i];
}

void scale_inplace(std::span<float> y, float s) {
  for (auto& v : y) v *= s;
}

void axpy(float a, std::span<const float> x, std::span<float> y) {
  assert(y.size() == x.size());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += a * x[i];
}

double dot(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += static_cast<double>(a[i]) * b[i];
  return sum;
}

double squared_norm(std::span<const float> a) { return dot(a, a); }

// Every GEMM variant below fills one detail::GemmArgs descriptor and hands
// it to detail::run_gemm, which shards output rows across the kernel pool
// when profitable and jumps through the kernel resolved at startup
// (generic, AVX2+FMA, or AVX-512); the packing routines absorb the
// transposes, so all variants share one micro-kernel and one accumulation
// order (see ops.h header comment).

void gemm(std::size_t m, std::size_t k, std::size_t n, std::span<const float> a,
          std::span<const float> b, std::span<float> c) {
  assert(a.size() == m * k && b.size() == k * n && c.size() == m * n);
  detail::GemmArgs args{.m = m, .k = k, .n = n, .a = a.data(), .b = b.data(),
                        .c = c.data()};
  detail::run_gemm(args);
}

void gemm_accumulate(std::size_t m, std::size_t k, std::size_t n,
                     std::span<const float> a, std::span<const float> b,
                     std::span<float> c) {
  assert(a.size() == m * k && b.size() == k * n && c.size() == m * n);
  detail::GemmArgs args{.m = m, .k = k, .n = n, .a = a.data(), .b = b.data(),
                        .c = c.data(), .accumulate = true};
  detail::run_gemm(args);
}

void gemm_bias_rows(std::size_t m, std::size_t k, std::size_t n,
                    std::span<const float> a, std::span<const float> b,
                    std::span<const float> bias, std::span<float> c) {
  assert(a.size() == m * k && b.size() == k * n && c.size() == m * n &&
         bias.size() == m);
  detail::GemmArgs args{.m = m, .k = k, .n = n, .a = a.data(), .b = b.data(),
                        .c = c.data(), .bias = bias.data()};
  detail::run_gemm(args);
}

void gemm_at_b(std::size_t m, std::size_t k, std::size_t n, std::span<const float> a,
               std::span<const float> b, std::span<float> c) {
  assert(a.size() == k * m && b.size() == k * n && c.size() == m * n);
  detail::GemmArgs args{.m = m, .k = k, .n = n, .a = a.data(), .b = b.data(),
                        .c = c.data(), .trans_a = true};
  detail::run_gemm(args);
}

void gemm_at_b_accumulate(std::size_t m, std::size_t k, std::size_t n,
                          std::span<const float> a, std::span<const float> b,
                          std::span<float> c) {
  assert(a.size() == k * m && b.size() == k * n && c.size() == m * n);
  detail::GemmArgs args{.m = m, .k = k, .n = n, .a = a.data(), .b = b.data(),
                        .c = c.data(), .trans_a = true, .accumulate = true};
  detail::run_gemm(args);
}

void gemm_a_bt(std::size_t m, std::size_t k, std::size_t n, std::span<const float> a,
               std::span<const float> b, std::span<float> c) {
  assert(a.size() == m * k && b.size() == n * k && c.size() == m * n);
  detail::GemmArgs args{.m = m, .k = k, .n = n, .a = a.data(), .b = b.data(),
                        .c = c.data(), .trans_b = true};
  detail::run_gemm(args);
}

void gemm_a_bt_accumulate(std::size_t m, std::size_t k, std::size_t n,
                          std::span<const float> a, std::span<const float> b,
                          std::span<float> c) {
  assert(a.size() == m * k && b.size() == n * k && c.size() == m * n);
  detail::GemmArgs args{.m = m, .k = k, .n = n, .a = a.data(), .b = b.data(),
                        .c = c.data(), .trans_b = true, .accumulate = true};
  detail::run_gemm(args);
}

void gemm_a_bt_bias_cols(std::size_t m, std::size_t k, std::size_t n,
                         std::span<const float> a, std::span<const float> b,
                         std::span<const float> bias, std::span<float> c) {
  assert(a.size() == m * k && b.size() == n * k && c.size() == m * n &&
         bias.size() == n);
  detail::GemmArgs args{.m = m, .k = k, .n = n, .a = a.data(), .b = b.data(),
                        .c = c.data(), .bias = bias.data(),
                        .bias_per_col = true, .trans_b = true};
  detail::run_gemm(args);
}

void PackedWeights::pack_a(std::size_t m, std::size_t k,
                           std::span<const float> w) {
  assert(w.size() == m * k);
  const detail::KernelVTable& vt = detail::active_kernel_vtable();
  detail::ensure_scratch(buf_, detail::packed_a_size(vt, m, k));
  detail::GemmArgs args{.m = m, .k = k, .a = w.data()};
  vt.pack_a(args, buf_.data());
  m_ = m;
  k_ = k;
  n_ = 0;
  side_ = 'a';
  valid_ = true;
}

void PackedWeights::pack_b_trans(std::size_t k, std::size_t n,
                                 std::span<const float> w) {
  assert(w.size() == n * k);
  const detail::KernelVTable& vt = detail::active_kernel_vtable();
  detail::ensure_scratch(buf_, detail::packed_b_size(vt, k, n));
  detail::GemmArgs args{.k = k, .n = n, .b = w.data(), .trans_b = true};
  vt.pack_b(args, buf_.data());
  m_ = 0;
  k_ = k;
  n_ = n;
  side_ = 'b';
  valid_ = true;
}

void gemm_bias_rows(std::size_t m, std::size_t k, std::size_t n,
                    const PackedWeights& a, std::span<const float> b,
                    std::span<const float> bias, std::span<float> c) {
  assert(a.is_a(m, k) && b.size() == k * n && c.size() == m * n &&
         bias.size() == m);
  detail::GemmArgs args{.m = m, .k = k, .n = n, .b = b.data(), .c = c.data(),
                        .bias = bias.data(), .packed_a = a.panels()};
  detail::run_gemm(args);
}

void gemm_a_bt_bias_cols(std::size_t m, std::size_t k, std::size_t n,
                         std::span<const float> a, const PackedWeights& b,
                         std::span<const float> bias, std::span<float> c) {
  assert(b.is_b_trans(k, n) && a.size() == m * k && c.size() == m * n &&
         bias.size() == n);
  detail::GemmArgs args{.m = m, .k = k, .n = n, .a = a.data(), .c = c.data(),
                        .bias = bias.data(), .bias_per_col = true,
                        .packed_b = b.panels()};
  detail::run_gemm(args);
}

namespace {
std::atomic<bool> g_weight_prepack{[] {
  const char* env = std::getenv("HELCFL_PREPACK");
  return !(env != nullptr && env[0] == '0');
}()};
}  // namespace

void set_weight_prepack(bool enabled) {
  g_weight_prepack.store(enabled, std::memory_order_relaxed);
}

bool weight_prepack_enabled() {
  return g_weight_prepack.load(std::memory_order_relaxed);
}

void set_kernel_threads(std::size_t n) { detail::set_kernel_threads(n); }

std::size_t kernel_threads() { return detail::kernel_threads(); }

std::string_view kernel_isa() { return detail::kernel_isa(); }

std::uint64_t scratch_realloc_count() { return detail::scratch_reallocs(); }

namespace {
void require_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                a.shape().to_string() + " vs " + b.shape().to_string());
  }
}
}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "tensor::add");
  Tensor out = a;
  add_inplace(out.data(), b.data());
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "tensor::sub");
  Tensor out = a;
  sub_inplace(out.data(), b.data());
  return out;
}

Tensor scale(const Tensor& a, float s) {
  Tensor out = a;
  scale_inplace(out.data(), s);
  return out;
}

}  // namespace helcfl::tensor
