#include "tensor/ops.h"

#include <cassert>
#include <stdexcept>

namespace helcfl::tensor {

void add_inplace(std::span<float> y, std::span<const float> x) {
  assert(y.size() == x.size());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += x[i];
}

void sub_inplace(std::span<float> y, std::span<const float> x) {
  assert(y.size() == x.size());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] -= x[i];
}

void scale_inplace(std::span<float> y, float s) {
  for (auto& v : y) v *= s;
}

void axpy(float a, std::span<const float> x, std::span<float> y) {
  assert(y.size() == x.size());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += a * x[i];
}

double dot(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += static_cast<double>(a[i]) * b[i];
  return sum;
}

double squared_norm(std::span<const float> a) { return dot(a, a); }

void gemm(std::size_t m, std::size_t k, std::size_t n, std::span<const float> a,
          std::span<const float> b, std::span<float> c) {
  assert(a.size() == m * k && b.size() == k * n && c.size() == m * n);
  for (auto& v : c) v = 0.0F;
  gemm_accumulate(m, k, n, a, b, c);
}

void gemm_accumulate(std::size_t m, std::size_t k, std::size_t n,
                     std::span<const float> a, std::span<const float> b,
                     std::span<float> c) {
  assert(a.size() == m * k && b.size() == k * n && c.size() == m * n);
  // i-k-j loop order keeps the inner loop streaming over contiguous rows of
  // B and C, which the compiler auto-vectorizes.
  for (std::size_t i = 0; i < m; ++i) {
    const float* a_row = a.data() + i * k;
    float* c_row = c.data() + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float a_ik = a_row[kk];
      if (a_ik == 0.0F) continue;
      const float* b_row = b.data() + kk * n;
      for (std::size_t j = 0; j < n; ++j) c_row[j] += a_ik * b_row[j];
    }
  }
}

void gemm_at_b(std::size_t m, std::size_t k, std::size_t n, std::span<const float> a,
               std::span<const float> b, std::span<float> c) {
  assert(a.size() == k * m && b.size() == k * n && c.size() == m * n);
  for (auto& v : c) v = 0.0F;
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* a_row = a.data() + kk * m;  // row kk of A holds column kk of A^T
    const float* b_row = b.data() + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float a_ki = a_row[i];
      if (a_ki == 0.0F) continue;
      float* c_row = c.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) c_row[j] += a_ki * b_row[j];
    }
  }
}

void gemm_a_bt(std::size_t m, std::size_t k, std::size_t n, std::span<const float> a,
               std::span<const float> b, std::span<float> c) {
  assert(a.size() == m * k && b.size() == n * k && c.size() == m * n);
  for (std::size_t i = 0; i < m; ++i) {
    const float* a_row = a.data() + i * k;
    float* c_row = c.data() + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* b_row = b.data() + j * k;
      double sum = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        sum += static_cast<double>(a_row[kk]) * b_row[kk];
      }
      c_row[j] = static_cast<float>(sum);
    }
  }
}

namespace {
void require_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                a.shape().to_string() + " vs " + b.shape().to_string());
  }
}
}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "tensor::add");
  Tensor out = a;
  add_inplace(out.data(), b.data());
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "tensor::sub");
  Tensor out = a;
  sub_inplace(out.data(), b.data());
  return out;
}

Tensor scale(const Tensor& a, float s) {
  Tensor out = a;
  scale_inplace(out.data(), s);
  return out;
}

}  // namespace helcfl::tensor
