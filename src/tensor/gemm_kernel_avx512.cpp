// AVX-512 GEMM driver: same source as the generic TU, compiled with
// -mavx512f (per-file flags set in CMakeLists.txt) and a 12x32 micro-tile —
// 24 ZMM accumulators + 2 B vectors + 1 broadcast uses 27 of the 32
// 512-bit registers, and MR=12 divides the kMc=96 row block so prepacked-A
// panel addressing stays aligned.  Selected at runtime by
// detail::active_kernel() only when CPUID reports AVX512F (and the
// HELCFL_KERNEL_ISA cap allows it).
#define HELCFL_KERNEL_FN gemm_avx512
#define HELCFL_KERNEL_PACK_A_FN gemm_avx512_pack_a
#define HELCFL_KERNEL_PACK_B_FN gemm_avx512_pack_b
#define HELCFL_KERNEL_VTABLE_FN gemm_avx512_vtable
#define HELCFL_KERNEL_ISA_NAME "avx512"
#define HELCFL_KERNEL_MR 12
#define HELCFL_KERNEL_NR 32
#define HELCFL_KERNEL_VW 16
#include "tensor/gemm_kernel.inl"
