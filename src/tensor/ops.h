// Math kernels on raw float spans and on Tensors.
//
// Layers in src/nn call these instead of hand-rolling loops so the hot
// paths live in one place (and are covered by the micro-benchmarks).
#pragma once

#include <span>

#include "tensor/tensor.h"

namespace helcfl::tensor {

/// y[i] += x[i].  Spans must be the same length.
void add_inplace(std::span<float> y, std::span<const float> x);

/// y[i] -= x[i].
void sub_inplace(std::span<float> y, std::span<const float> x);

/// y[i] *= s.
void scale_inplace(std::span<float> y, float s);

/// y[i] += a * x[i].
void axpy(float a, std::span<const float> x, std::span<float> y);

/// Inner product.
double dot(std::span<const float> a, std::span<const float> b);

/// Squared L2 norm.
double squared_norm(std::span<const float> a);

/// C[M,N] = A[M,K] * B[K,N].  C is overwritten.
void gemm(std::size_t m, std::size_t k, std::size_t n, std::span<const float> a,
          std::span<const float> b, std::span<float> c);

/// C[M,N] += A[M,K] * B[K,N].
void gemm_accumulate(std::size_t m, std::size_t k, std::size_t n,
                     std::span<const float> a, std::span<const float> b,
                     std::span<float> c);

/// C[M,N] = A^T[M,K] * B[K,N] where A is stored as [K,M].
void gemm_at_b(std::size_t m, std::size_t k, std::size_t n, std::span<const float> a,
               std::span<const float> b, std::span<float> c);

/// C[M,N] = A[M,K] * B^T[K,N] where B is stored as [N,K].
void gemm_a_bt(std::size_t m, std::size_t k, std::size_t n, std::span<const float> a,
               std::span<const float> b, std::span<float> c);

/// Elementwise tensor sum; shapes must match.
Tensor add(const Tensor& a, const Tensor& b);

/// Elementwise tensor difference; shapes must match.
Tensor sub(const Tensor& a, const Tensor& b);

/// Scalar multiple.
Tensor scale(const Tensor& a, float s);

}  // namespace helcfl::tensor
