// Math kernels on raw float spans and on Tensors.
//
// Layers in src/nn call these instead of hand-rolling loops so the hot
// paths live in one place (and are covered by the micro-benchmarks).
//
// All GEMM variants run on the register-blocked, cache-tiled driver in
// tensor/gemm_kernel.inl (docs/KERNELS.md).  Accumulation policy: every
// variant accumulates in float, in a fixed ascending-k order (k-blocks of
// 256 folded into C in ascending order), independent of thread count,
// tracing, and call history — so results are bitwise deterministic for a
// given machine.  Expected rounding error against an exact product is
// O(k) ulp; the layer gradchecks budget for it with tolerances >= 1e-2.
// The non-GEMM reductions (dot, squared_norm) accumulate in double, as
// does softmax_cross_entropy's log-sum-exp: they feed metrics and loss
// values where drift across long sums would be visible.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "tensor/tensor.h"

namespace helcfl::tensor {

/// y[i] += x[i].  Spans must be the same length.
void add_inplace(std::span<float> y, std::span<const float> x);

/// y[i] -= x[i].
void sub_inplace(std::span<float> y, std::span<const float> x);

/// y[i] *= s.
void scale_inplace(std::span<float> y, float s);

/// y[i] += a * x[i].
void axpy(float a, std::span<const float> x, std::span<float> y);

/// Inner product.
double dot(std::span<const float> a, std::span<const float> b);

/// Squared L2 norm.
double squared_norm(std::span<const float> a);

/// C[M,N] = A[M,K] * B[K,N].  C is overwritten.
void gemm(std::size_t m, std::size_t k, std::size_t n, std::span<const float> a,
          std::span<const float> b, std::span<float> c);

/// C[M,N] += A[M,K] * B[K,N].
void gemm_accumulate(std::size_t m, std::size_t k, std::size_t n,
                     std::span<const float> a, std::span<const float> b,
                     std::span<float> c);

/// C[M,N] = A[M,K] * B[K,N] + bias[i] broadcast across row i.  The bias
/// lands in the kernel's store pass (no second sweep over C); Conv2D's
/// im2col forward uses it with bias = per-output-channel.
void gemm_bias_rows(std::size_t m, std::size_t k, std::size_t n,
                    std::span<const float> a, std::span<const float> b,
                    std::span<const float> bias, std::span<float> c);

/// C[M,N] = A^T[M,K] * B[K,N] where A is stored as [K,M].
void gemm_at_b(std::size_t m, std::size_t k, std::size_t n, std::span<const float> a,
               std::span<const float> b, std::span<float> c);

/// C[M,N] += A^T[M,K] * B[K,N] where A is stored as [K,M] (Dense
/// grad_weight accumulation).
void gemm_at_b_accumulate(std::size_t m, std::size_t k, std::size_t n,
                          std::span<const float> a, std::span<const float> b,
                          std::span<float> c);

/// C[M,N] = A[M,K] * B^T[K,N] where B is stored as [N,K].
void gemm_a_bt(std::size_t m, std::size_t k, std::size_t n, std::span<const float> a,
               std::span<const float> b, std::span<float> c);

/// C[M,N] += A[M,K] * B^T[K,N] where B is stored as [N,K] (Conv2D
/// grad_weight accumulation over im2col panels).
void gemm_a_bt_accumulate(std::size_t m, std::size_t k, std::size_t n,
                          std::span<const float> a, std::span<const float> b,
                          std::span<float> c);

/// C[M,N] = A[M,K] * B^T[K,N] + bias[j] broadcast down column j, with B
/// stored as [N,K].  Dense forward: y = x W^T + b fused in one pass.
void gemm_a_bt_bias_cols(std::size_t m, std::size_t k, std::size_t n,
                         std::span<const float> a, std::span<const float> b,
                         std::span<const float> bias, std::span<float> c);

/// Name of the GEMM kernel this process resolved to ("avx2_fma" or
/// "generic").  Set HELCFL_KERNEL_ISA=generic to pin the portable kernel
/// when bitwise reproducibility across machines matters more than speed.
std::string_view kernel_isa();

/// Process-wide count of kernel/layer scratch-buffer growths.  Constant in
/// steady state (shapes no larger than already seen); the micro benches
/// and tests assert no growth in their hot loops.
std::uint64_t scratch_realloc_count();

/// Elementwise tensor sum; shapes must match.
Tensor add(const Tensor& a, const Tensor& b);

/// Elementwise tensor difference; shapes must match.
Tensor sub(const Tensor& a, const Tensor& b);

/// Scalar multiple.
Tensor scale(const Tensor& a, float s);

}  // namespace helcfl::tensor
