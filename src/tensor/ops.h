// Math kernels on raw float spans and on Tensors.
//
// Layers in src/nn call these instead of hand-rolling loops so the hot
// paths live in one place (and are covered by the micro-benchmarks).
//
// All GEMM variants run on the register-blocked, cache-tiled driver in
// tensor/gemm_kernel.inl (docs/KERNELS.md).  Accumulation policy: every
// variant accumulates in float, in a fixed ascending-k order (k-blocks of
// 256 folded into C in ascending order), independent of thread count,
// tracing, and call history — so results are bitwise deterministic for a
// given machine.  Expected rounding error against an exact product is
// O(k) ulp; the layer gradchecks budget for it with tolerances >= 1e-2.
// The non-GEMM reductions (dot, squared_norm) accumulate in double, as
// does softmax_cross_entropy's log-sum-exp: they feed metrics and loss
// values where drift across long sums would be visible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "tensor/tensor.h"

namespace helcfl::tensor {

/// y[i] += x[i].  Spans must be the same length.
void add_inplace(std::span<float> y, std::span<const float> x);

/// y[i] -= x[i].
void sub_inplace(std::span<float> y, std::span<const float> x);

/// y[i] *= s.
void scale_inplace(std::span<float> y, float s);

/// y[i] += a * x[i].
void axpy(float a, std::span<const float> x, std::span<float> y);

/// Inner product.
double dot(std::span<const float> a, std::span<const float> b);

/// Squared L2 norm.
double squared_norm(std::span<const float> a);

/// C[M,N] = A[M,K] * B[K,N].  C is overwritten.
void gemm(std::size_t m, std::size_t k, std::size_t n, std::span<const float> a,
          std::span<const float> b, std::span<float> c);

/// C[M,N] += A[M,K] * B[K,N].
void gemm_accumulate(std::size_t m, std::size_t k, std::size_t n,
                     std::span<const float> a, std::span<const float> b,
                     std::span<float> c);

/// C[M,N] = A[M,K] * B[K,N] + bias[i] broadcast across row i.  The bias
/// lands in the kernel's store pass (no second sweep over C); Conv2D's
/// im2col forward uses it with bias = per-output-channel.
void gemm_bias_rows(std::size_t m, std::size_t k, std::size_t n,
                    std::span<const float> a, std::span<const float> b,
                    std::span<const float> bias, std::span<float> c);

/// C[M,N] = A^T[M,K] * B[K,N] where A is stored as [K,M].
void gemm_at_b(std::size_t m, std::size_t k, std::size_t n, std::span<const float> a,
               std::span<const float> b, std::span<float> c);

/// C[M,N] += A^T[M,K] * B[K,N] where A is stored as [K,M] (Dense
/// grad_weight accumulation).
void gemm_at_b_accumulate(std::size_t m, std::size_t k, std::size_t n,
                          std::span<const float> a, std::span<const float> b,
                          std::span<float> c);

/// C[M,N] = A[M,K] * B^T[K,N] where B is stored as [N,K].
void gemm_a_bt(std::size_t m, std::size_t k, std::size_t n, std::span<const float> a,
               std::span<const float> b, std::span<float> c);

/// C[M,N] += A[M,K] * B^T[K,N] where B is stored as [N,K] (Conv2D
/// grad_weight accumulation over im2col panels).
void gemm_a_bt_accumulate(std::size_t m, std::size_t k, std::size_t n,
                          std::span<const float> a, std::span<const float> b,
                          std::span<float> c);

/// C[M,N] = A[M,K] * B^T[K,N] + bias[j] broadcast down column j, with B
/// stored as [N,K].  Dense forward: y = x W^T + b fused in one pass.
void gemm_a_bt_bias_cols(std::size_t m, std::size_t k, std::size_t n,
                         std::span<const float> a, std::span<const float> b,
                         std::span<const float> bias, std::span<float> c);

/// A weight matrix pre-arranged into the active kernel's panel layout, for
/// operands reused across many products: the FedAvg global model is
/// forwarded by every selected client every round, so Dense/Conv2D pack
/// their weight panels once per mutation instead of once per GEMM call.
/// Packing is a pure data rearrangement — packed and unpacked products are
/// bitwise identical.
///
/// Lifecycle: starts invalid; a layer packs lazily on first forward and
/// calls invalidate() whenever its weights change (Layer::
/// mark_weights_dirty, hooked into zero_grad and load_parameters — see
/// nn/layer.h for the invalidation contract).  The buffer only ever grows
/// (scratch_realloc_count audits growth), so steady-state repacks are
/// allocation-free.  Each instance is single-owner state like any other
/// layer scratch: never share one across threads.
class PackedWeights {
 public:
  /// Packs W[m,k] as the left operand of gemm_bias_rows/gemm-style
  /// products (Conv2D forward: W * im2col-panel).
  void pack_a(std::size_t m, std::size_t k, std::span<const float> w);

  /// Packs W[n,k] as the transposed right operand of
  /// gemm_a_bt_bias_cols-style products (Dense forward: x * W^T).
  void pack_b_trans(std::size_t k, std::size_t n, std::span<const float> w);

  /// True when the panels match the last-packed weights; false after
  /// invalidate() or before any pack.
  bool valid() const { return valid_; }

  /// Marks the panels stale (weights changed); next forward repacks.
  void invalidate() { valid_ = false; }

  // Used by the packed GEMM entry points below.
  const float* panels() const { return buf_.data(); }
  bool is_a(std::size_t m, std::size_t k) const {
    return valid_ && side_ == 'a' && m_ == m && k_ == k;
  }
  bool is_b_trans(std::size_t k, std::size_t n) const {
    return valid_ && side_ == 'b' && k_ == k && n_ == n;
  }

 private:
  std::vector<float> buf_;
  std::size_t m_ = 0;
  std::size_t k_ = 0;
  std::size_t n_ = 0;
  char side_ = 0;  // 'a' or 'b'
  bool valid_ = false;
};

/// gemm_bias_rows with a prepacked A (weights.is_a(m, k) must hold).
void gemm_bias_rows(std::size_t m, std::size_t k, std::size_t n,
                    const PackedWeights& a, std::span<const float> b,
                    std::span<const float> bias, std::span<float> c);

/// gemm_a_bt_bias_cols with a prepacked B^T (weights.is_b_trans(k, n) must
/// hold).
void gemm_a_bt_bias_cols(std::size_t m, std::size_t k, std::size_t n,
                         std::span<const float> a, const PackedWeights& b,
                         std::span<const float> bias, std::span<float> c);

/// Process-wide switch for the layer-level weight-prepacking path (Dense /
/// Conv2D forwards).  Defaults to on; HELCFL_PREPACK=0 in the environment
/// starts it off.  Exists for A/B benchmarking and packed-vs-unpacked
/// differential tests — flip it only from a single thread between
/// computations.
void set_weight_prepack(bool enabled);
bool weight_prepack_enabled();

/// Sets the GEMM worker count: 1 (default) keeps every product on the
/// calling thread, 0 resolves to hardware_concurrency, n >= 2 shards large
/// products' output rows across a dedicated n-thread kernel pool.  Bitwise
/// deterministic for any value — sharding never changes an element's
/// ascending-k accumulation order.  First use reads HELCFL_KERNEL_THREADS
/// when never set programmatically.  Not thread-safe against in-flight
/// GEMMs; configure between computations.
void set_kernel_threads(std::size_t n);

/// Currently configured GEMM worker count (>= 1).
std::size_t kernel_threads();

/// Name of the GEMM kernel this process resolved to ("avx512", "avx2_fma"
/// or "generic").  Set HELCFL_KERNEL_ISA=generic to pin the portable kernel
/// when bitwise reproducibility across machines matters more than speed;
/// pins above the CPU's capability degrade to the best supported kernel.
std::string_view kernel_isa();

/// Process-wide count of kernel/layer scratch-buffer growths.  Constant in
/// steady state (shapes no larger than already seen); the micro benches
/// and tests assert no growth in their hot loops.
std::uint64_t scratch_realloc_count();

/// Elementwise tensor sum; shapes must match.
Tensor add(const Tensor& a, const Tensor& b);

/// Elementwise tensor difference; shapes must match.
Tensor sub(const Tensor& a, const Tensor& b);

/// Scalar multiple.
Tensor scale(const Tensor& a, float s);

}  // namespace helcfl::tensor
