#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <string>

namespace helcfl::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

std::string_view tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  // One formatted buffer, one fwrite: POSIX stdio streams lock around each
  // call, so concurrent messages from pool workers never interleave.
  std::string line;
  line.reserve(message.size() + 10);
  line += '[';
  line += tag(level);
  line += "] ";
  line += message;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

void log_debug(std::string_view message) { log(LogLevel::kDebug, message); }
void log_info(std::string_view message) { log(LogLevel::kInfo, message); }
void log_warn(std::string_view message) { log(LogLevel::kWarn, message); }
void log_error(std::string_view message) { log(LogLevel::kError, message); }

}  // namespace helcfl::util
