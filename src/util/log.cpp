#include "util/log.h"

#include <iostream>

namespace helcfl::util {

namespace {
LogLevel g_level = LogLevel::kInfo;

std::string_view tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

void log(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  std::cerr << "[" << tag(level) << "] " << message << '\n';
}

void log_debug(std::string_view message) { log(LogLevel::kDebug, message); }
void log_info(std::string_view message) { log(LogLevel::kInfo, message); }
void log_warn(std::string_view message) { log(LogLevel::kWarn, message); }
void log_error(std::string_view message) { log(LogLevel::kError, message); }

}  // namespace helcfl::util
