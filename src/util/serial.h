// Little-endian binary serialization primitives for checkpointing.
//
// Every stateful component that participates in checkpoint/resume
// (strategies, RNG streams, fault injector, batteries, the trainer itself)
// writes its state through a ByteWriter and restores it through a
// ByteReader.  The encoding is deliberately dumb: fixed-width little-endian
// integers, IEEE-754 bit patterns for floats, and u64 length prefixes for
// strings and vectors.  There is no schema negotiation here — framing,
// versioning, and integrity checks live one level up in fl::Checkpoint.
//
// Readers are strict: any read past the end of the buffer throws
// SerialError, and callers that expect to consume a buffer exactly call
// expect_end().  Nothing in this header ever silently truncates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace helcfl::util {

class Rng;

/// Thrown on any malformed read: overrun, bad length prefix, trailing
/// bytes where none were expected.
class SerialError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Appends fixed-width little-endian values to a growable byte buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f32(float v);   ///< IEEE-754 bit pattern, preserves NaN payloads
  void f64(double v);  ///< IEEE-754 bit pattern, preserves NaN payloads
  void boolean(bool v);

  /// u64 byte length followed by the raw bytes.
  void str(std::string_view s);

  /// Raw bytes, no length prefix (caller frames them).
  void raw(std::span<const std::uint8_t> bytes);

  /// u64 element count followed by each element.
  void vec_f32(std::span<const float> v);
  void vec_f64(std::span<const double> v);
  void vec_u64(std::span<const std::uint64_t> v);
  void vec_u8(std::span<const std::uint8_t> v);
  /// std::size_t vectors are widened to u64 on the wire.
  void vec_size(std::span<const std::size_t> v);

  const std::vector<std::uint8_t>& data() const { return buffer_; }
  std::vector<std::uint8_t> take() { return std::move(buffer_); }
  std::size_t size() const { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Consumes a byte buffer written by ByteWriter.  Borrow semantics: the
/// underlying bytes must outlive the reader.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  float f32();
  double f64();
  bool boolean();
  std::string str();

  /// Next `n` bytes without copying; advances the cursor.
  std::span<const std::uint8_t> raw(std::size_t n);

  std::vector<float> vec_f32();
  std::vector<double> vec_f64();
  std::vector<std::uint64_t> vec_u64();
  std::vector<std::uint8_t> vec_u8();
  std::vector<std::size_t> vec_size();

  std::size_t remaining() const { return data_.size() - cursor_; }
  bool done() const { return cursor_ == data_.size(); }

  /// Throws SerialError if any bytes remain unconsumed.  `what` names the
  /// structure being decoded so the error is actionable.
  void expect_end(std::string_view what) const;

 private:
  /// Bounds-checked element count for a vector of `elem_size`-byte items.
  std::size_t read_count(std::size_t elem_size);

  std::span<const std::uint8_t> data_;
  std::size_t cursor_ = 0;
};

/// FNV-1a 64-bit hash — the checkpoint payload checksum.  Not
/// cryptographic; it detects corruption, not tampering.
std::uint64_t fnv1a64(std::span<const std::uint8_t> data);

/// Serializes a full Rng cursor (state words, seed, Box-Muller cache).
void write_rng(ByteWriter& out, const Rng& rng);

/// Restores an Rng cursor written by write_rng().
Rng read_rng(ByteReader& in);

}  // namespace helcfl::util
