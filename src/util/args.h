// Minimal command-line argument parser for the example/CLI binaries.
//
// Grammar (kept unambiguous on purpose):
//   --key=value   an option with a value
//   --flag        a boolean flag
//   anything else a positional argument
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace helcfl::util {

class ArgParser {
 public:
  /// Parses argv[1..argc); argv[0] (the program name) is skipped.
  ArgParser(int argc, const char* const* argv);

  /// True if `--name` appeared as a bare flag or with any value.
  bool has(std::string_view name) const;

  /// The value of `--name=value`; nullopt if absent or a bare flag.
  std::optional<std::string> get(std::string_view name) const;

  /// Typed accessors with defaults.  Throw std::invalid_argument when the
  /// option is present but not parseable as the requested type.
  std::string get_or(std::string_view name, std::string fallback) const;
  double get_double_or(std::string_view name, double fallback) const;
  std::int64_t get_int_or(std::string_view name, std::int64_t fallback) const;
  bool get_bool_or(std::string_view name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Option names that were provided but never queried through any
  /// accessor — typo detection for the CLI.
  std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string, std::less<>> values_;
  std::set<std::string, std::less<>> flags_;
  std::vector<std::string> positional_;
  mutable std::set<std::string, std::less<>> queried_;
};

}  // namespace helcfl::util
