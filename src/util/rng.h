// Deterministic pseudo-random number generation for reproducible simulation.
//
// Every stochastic component in this library takes an explicit Rng (or a
// stream forked from one) so that an experiment is reproducible bit-for-bit
// from a single 64-bit seed.  The generator is xoshiro256**, seeded through
// splitmix64 as recommended by its authors.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace helcfl::util {

/// xoshiro256** PRNG with convenience distributions.
///
/// Not thread-safe; fork() independent streams for concurrent use.
class Rng {
 public:
  /// Complete generator cursor: copying this out and back restores the
  /// exact output sequence, including the cached Box-Muller deviate and
  /// the seed that fork() derives child streams from.  The checkpoint
  /// subsystem serializes these via util/serial.h.
  struct State {
    std::array<std::uint64_t, 4> words{};
    std::uint64_t seed = 0;
    double cached_normal = 0.0;
    bool has_cached_normal = false;

    bool operator==(const State&) const = default;
  };

  /// Seeds the four 64-bit state words by iterating splitmix64 over `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit output.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).  Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (caches the second deviate).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Fisher-Yates shuffle of `items` in place.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// k distinct indices drawn uniformly from {0, ..., n-1}, in random order.
  /// Requires k <= n.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  /// A permutation of {0, ..., n-1}.
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derives an independent stream; streams with distinct ids do not overlap
  /// in practice (re-seeded through splitmix64 on a mixed key).
  Rng fork(std::uint64_t stream_id) const;

  /// Snapshot of the full cursor (see State).
  State state() const;

  /// Restores a cursor captured by state().  Rejects the all-zero word
  /// vector, which is outside xoshiro256**'s state space.
  void set_state(const State& state);

 private:
  std::array<std::uint64_t, 4> state_{};
  std::uint64_t seed_ = 0;  // retained so fork() can derive child seeds
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace helcfl::util
