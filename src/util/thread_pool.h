// Fixed-size worker pool used by the parallel round-execution engine.
//
// Design goals (DESIGN.md §7):
//   * deterministic orchestration — the pool itself has no work stealing
//     and no scheduling randomness; callers submit tasks and join their
//     futures in a caller-chosen order, so reductions stay reproducible;
//   * exception propagation — a task that throws stores the exception in
//     its future; future.get() rethrows on the submitting thread;
//   * graceful shutdown — the destructor drains every queued task before
//     joining, so submitted work is never silently dropped;
//   * inline fallback — a pool constructed with 0 or 1 threads spawns no
//     workers and runs submitted tasks inline on the calling thread,
//     making `num_threads = 1` byte-for-byte the sequential code path.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace helcfl::util {

class ThreadPool {
 public:
  /// Sentinel returned by worker_index() on non-worker threads.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Spawns `num_threads` workers; 0 or 1 means inline execution (no
  /// worker threads at all).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains all queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of spawned worker threads (0 in inline mode).
  std::size_t worker_count() const { return workers_.size(); }

  /// Index in [0, worker_count()) of the calling pool worker, or `npos`
  /// when called from a thread this pool does not own.  Lets callers keep
  /// per-worker scratch state (e.g. a model replica) without locking.
  static std::size_t worker_index();

  /// Maps the user-facing thread knob to a concrete worker count:
  /// 0 = auto (hardware_concurrency, at least 1), anything else verbatim.
  static std::size_t resolve_thread_count(std::size_t requested);

  /// One contiguous [begin, end) slice of a partitioned range.
  struct Chunk {
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  /// Splits [0, total) into at most `parts` contiguous chunks whose interior
  /// boundaries fall on multiples of `granularity` (0 is treated as 1).  The
  /// split is a pure function of its arguments — larger chunks first, sizes
  /// differing by at most one granularity unit — so a parallel caller that
  /// processes chunk i on worker i gets the same work assignment every run.
  /// Fewer than `parts` chunks come back when `total` is too small to give
  /// every part a whole granularity unit; `total == 0` yields no chunks.
  static std::vector<Chunk> partition_chunks(std::size_t total,
                                             std::size_t parts,
                                             std::size_t granularity);

  /// Schedules `fn` and returns a future for its result.  In inline mode
  /// the task runs immediately on the calling thread; either way a throwing
  /// task surfaces its exception from future.get(), never std::terminate.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using Result = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<Result()>>(std::forward<F>(fn));
    std::future<Result> future = task->get_future();
    if (workers_.empty()) {
      (*task)();  // inline fallback; exception lands in the future
      return future;
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

 private:
  void worker_loop(std::size_t index);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace helcfl::util
