#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace helcfl::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
  // zeros from any seed, but guard anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
  std::uint64_t draw = next_u64();
  while (draw >= limit) draw = next_u64();
  return lo + static_cast<std::int64_t>(draw % range);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

bool Rng::bernoulli(double p) { return uniform() < p; }

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  assert(k <= n);
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  // Partial Fisher-Yates: shuffle only the first k positions.
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i), static_cast<std::int64_t>(n) - 1));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  return sample_without_replacement(n, n);
}

Rng::State Rng::state() const {
  State state;
  state.words = state_;
  state.seed = seed_;
  state.cached_normal = cached_normal_;
  state.has_cached_normal = has_cached_normal_;
  return state;
}

void Rng::set_state(const State& state) {
  if (state.words[0] == 0 && state.words[1] == 0 && state.words[2] == 0 &&
      state.words[3] == 0) {
    throw std::invalid_argument("Rng::set_state: all-zero state is invalid");
  }
  state_ = state.words;
  seed_ = state.seed;
  cached_normal_ = state.cached_normal;
  has_cached_normal_ = state.has_cached_normal;
}

Rng Rng::fork(std::uint64_t stream_id) const {
  // Mix the parent seed with the stream id through splitmix64 so that
  // adjacent stream ids yield unrelated child seeds.
  std::uint64_t key = seed_ ^ (0xd1342543de82ef95ULL * (stream_id + 1));
  return Rng(splitmix64(key));
}

}  // namespace helcfl::util
