// Crash-safe file I/O shared by every snapshot format (fl::Checkpoint,
// svc::SchedulerService snapshots).
//
// write_file_atomic() writes to `path` + ".tmp" and renames over `path`,
// so a crash mid-write never leaves a torn file under the final name —
// the reader either sees the old complete snapshot or the new one.
// Callers wrap the thrown std::runtime_error into their own error type
// (CheckpointError, ServiceError) to keep messages domain-specific.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace helcfl::util {

/// Atomically replaces `path` with `bytes` via tmp + rename.  Throws
/// std::runtime_error naming the failing path on any I/O error; the tmp
/// file is removed on failure.
void write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> bytes);

/// Reads all of `path`.  Throws std::runtime_error naming the path if the
/// file cannot be opened or read.
std::vector<std::uint8_t> read_file_bytes(const std::string& path);

}  // namespace helcfl::util
