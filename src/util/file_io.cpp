#include "util/file_io.h"

#include <cstdio>
#include <fstream>
#include <iterator>
#include <stdexcept>

namespace helcfl::util {

void write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("cannot open '" + tmp + "' for writing");
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      throw std::runtime_error("failed to write '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("failed to rename '" + tmp + "' to '" + path + "'");
  }
}

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open '" + path + "' for reading");
  }
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  if (in.bad()) {
    throw std::runtime_error("failed to read '" + path + "'");
  }
  return bytes;
}

}  // namespace helcfl::util
