#include "util/csv.h"

#include <charconv>
#include <stdexcept>

namespace helcfl::util {

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : out_(path, std::ios::trunc) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  bool first = true;
  for (const auto& name : header) {
    if (!first) out_ << ',';
    out_ << escape(name);
    first = false;
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  bool first = true;
  for (const auto& value : fields) {
    if (!first) out_ << ',';
    out_ << escape(value);
    first = false;
  }
  out_ << '\n';
  ++rows_;
}

std::string CsvWriter::field(double value) {
  char buffer[64];
  const auto result = std::to_chars(buffer, buffer + sizeof buffer, value);
  return std::string(buffer, result.ptr);
}

std::string CsvWriter::field(std::size_t value) { return std::to_string(value); }

std::string CsvWriter::field(int value) { return std::to_string(value); }

std::string CsvWriter::escape(std::string_view raw) {
  const bool needs_quotes =
      raw.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(raw);
  std::string quoted = "\"";
  for (const char c : raw) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace helcfl::util
