#include "util/serial.h"

#include <bit>
#include <cstring>
#include <type_traits>

#include "util/rng.h"

namespace helcfl::util {

namespace {

template <typename T>
void append_le(std::vector<std::uint8_t>& buffer, T value) {
  static_assert(std::is_unsigned_v<T>);
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    buffer.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
}

/// Out-of-bounds reads name the offending offset so a malformed buffer
/// can be diagnosed from the error message alone.
[[noreturn]] void fail_overrun(std::size_t need, std::size_t offset,
                               std::size_t size) {
  throw SerialError("ByteReader: read of " + std::to_string(need) +
                    " byte(s) at offset " + std::to_string(offset) +
                    " past end of " + std::to_string(size) + "-byte buffer");
}

}  // namespace

void ByteWriter::u8(std::uint8_t v) { buffer_.push_back(v); }
void ByteWriter::u32(std::uint32_t v) { append_le(buffer_, v); }
void ByteWriter::u64(std::uint64_t v) { append_le(buffer_, v); }
void ByteWriter::f32(float v) { u32(std::bit_cast<std::uint32_t>(v)); }
void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
void ByteWriter::boolean(bool v) { u8(v ? 1 : 0); }

void ByteWriter::str(std::string_view s) {
  u64(s.size());
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void ByteWriter::raw(std::span<const std::uint8_t> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::vec_f32(std::span<const float> v) {
  u64(v.size());
  for (const float x : v) f32(x);
}

void ByteWriter::vec_f64(std::span<const double> v) {
  u64(v.size());
  for (const double x : v) f64(x);
}

void ByteWriter::vec_u64(std::span<const std::uint64_t> v) {
  u64(v.size());
  for (const std::uint64_t x : v) u64(x);
}

void ByteWriter::vec_u8(std::span<const std::uint8_t> v) {
  u64(v.size());
  raw(v);
}

void ByteWriter::vec_size(std::span<const std::size_t> v) {
  u64(v.size());
  for (const std::size_t x : v) u64(static_cast<std::uint64_t>(x));
}

std::uint8_t ByteReader::u8() {
  if (remaining() < 1) fail_overrun(1, cursor_, data_.size());
  return data_[cursor_++];
}

std::uint32_t ByteReader::u32() {
  if (remaining() < 4) fail_overrun(4, cursor_, data_.size());
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[cursor_ + i]) << (8 * i);
  }
  cursor_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  if (remaining() < 8) fail_overrun(8, cursor_, data_.size());
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[cursor_ + i]) << (8 * i);
  }
  cursor_ += 8;
  return v;
}

float ByteReader::f32() { return std::bit_cast<float>(u32()); }
double ByteReader::f64() { return std::bit_cast<double>(u64()); }

bool ByteReader::boolean() {
  const std::uint8_t v = u8();
  if (v > 1) throw SerialError("ByteReader: boolean byte is neither 0 nor 1");
  return v != 0;
}

std::string ByteReader::str() {
  const std::size_t n = read_count(1);
  std::string s(reinterpret_cast<const char*>(data_.data() + cursor_), n);
  cursor_ += n;
  return s;
}

std::span<const std::uint8_t> ByteReader::raw(std::size_t n) {
  if (remaining() < n) fail_overrun(n, cursor_, data_.size());
  const auto view = data_.subspan(cursor_, n);
  cursor_ += n;
  return view;
}

std::size_t ByteReader::read_count(std::size_t elem_size) {
  const std::size_t prefix_offset = cursor_;
  const std::uint64_t n = u64();
  // Reject counts the remaining bytes cannot possibly satisfy *before*
  // sizing a vector from them: a corrupt length prefix must fail cleanly,
  // not attempt a huge allocation.
  if (n > remaining() / elem_size) {
    throw SerialError("ByteReader: length prefix " + std::to_string(n) +
                      " at offset " + std::to_string(prefix_offset) +
                      " exceeds the " + std::to_string(remaining()) +
                      " remaining byte(s)");
  }
  return static_cast<std::size_t>(n);
}

std::vector<float> ByteReader::vec_f32() {
  const std::size_t n = read_count(4);
  std::vector<float> v(n);
  for (auto& x : v) x = f32();
  return v;
}

std::vector<double> ByteReader::vec_f64() {
  const std::size_t n = read_count(8);
  std::vector<double> v(n);
  for (auto& x : v) x = f64();
  return v;
}

std::vector<std::uint64_t> ByteReader::vec_u64() {
  const std::size_t n = read_count(8);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = u64();
  return v;
}

std::vector<std::uint8_t> ByteReader::vec_u8() {
  const std::size_t n = read_count(1);
  const auto view = raw(n);
  return std::vector<std::uint8_t>(view.begin(), view.end());
}

std::vector<std::size_t> ByteReader::vec_size() {
  const std::size_t n = read_count(8);
  std::vector<std::size_t> v(n);
  for (auto& x : v) x = static_cast<std::size_t>(u64());
  return v;
}

void ByteReader::expect_end(std::string_view what) const {
  if (!done()) {
    throw SerialError(std::string(what) + ": " + std::to_string(remaining()) +
                      " trailing byte(s) after the last field");
  }
}

std::uint64_t fnv1a64(std::span<const std::uint8_t> data) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const std::uint8_t byte : data) {
    hash ^= byte;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void write_rng(ByteWriter& out, const Rng& rng) {
  const Rng::State state = rng.state();
  for (const std::uint64_t word : state.words) out.u64(word);
  out.u64(state.seed);
  out.f64(state.cached_normal);
  out.boolean(state.has_cached_normal);
}

Rng read_rng(ByteReader& in) {
  Rng::State state;
  for (auto& word : state.words) word = in.u64();
  state.seed = in.u64();
  state.cached_normal = in.f64();
  state.has_cached_normal = in.boolean();
  Rng rng(state.seed);
  rng.set_state(state);
  return rng;
}

}  // namespace helcfl::util
