#include "util/thread_pool.h"

#include <algorithm>

namespace helcfl::util {

namespace {
// Each worker thread belongs to exactly one pool for its whole lifetime,
// so a plain thread_local index is unambiguous.
thread_local std::size_t tls_worker_index = ThreadPool::npos;
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads <= 1) return;  // inline mode
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::size_t ThreadPool::worker_index() { return tls_worker_index; }

std::size_t ThreadPool::resolve_thread_count(std::size_t requested) {
  if (requested != 0) return requested;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

std::vector<ThreadPool::Chunk> ThreadPool::partition_chunks(
    std::size_t total, std::size_t parts, std::size_t granularity) {
  std::vector<Chunk> chunks;
  if (total == 0 || parts == 0) return chunks;
  if (granularity == 0) granularity = 1;
  const std::size_t units = (total + granularity - 1) / granularity;
  const std::size_t count = std::min(parts, units);
  chunks.reserve(count);
  std::size_t unit = 0;
  for (std::size_t i = 0; i < count; ++i) {
    // First (units % count) chunks carry one extra unit: larger chunks first.
    const std::size_t take = units / count + (i < units % count ? 1 : 0);
    const Chunk chunk{unit * granularity,
                      std::min((unit + take) * granularity, total)};
    chunks.push_back(chunk);
    unit += take;
  }
  return chunks;
}

void ThreadPool::worker_loop(std::size_t index) {
  tls_worker_index = index;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures any exception into its future
  }
}

}  // namespace helcfl::util
