#include "util/thread_pool.h"

#include <algorithm>

namespace helcfl::util {

namespace {
// Each worker thread belongs to exactly one pool for its whole lifetime,
// so a plain thread_local index is unambiguous.
thread_local std::size_t tls_worker_index = ThreadPool::npos;
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads <= 1) return;  // inline mode
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::size_t ThreadPool::worker_index() { return tls_worker_index; }

std::size_t ThreadPool::resolve_thread_count(std::size_t requested) {
  if (requested != 0) return requested;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void ThreadPool::worker_loop(std::size_t index) {
  tls_worker_index = index;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures any exception into its future
  }
}

}  // namespace helcfl::util
