// Descriptive statistics helpers used by metrics reporting and tests.
#pragma once

#include <cstddef>
#include <span>

namespace helcfl::util {

/// Arithmetic mean.  Returns 0 for an empty span.
double mean(std::span<const double> values);

/// Population variance (divides by N).  Returns 0 for fewer than 1 element.
double variance(std::span<const double> values);

/// Population standard deviation.
double stddev(std::span<const double> values);

/// Minimum / maximum.  Require a non-empty span.
double min_value(std::span<const double> values);
double max_value(std::span<const double> values);

/// Linear-interpolated percentile, p in [0, 100].  Requires non-empty span.
/// Copies and sorts internally; O(n log n).
double percentile(std::span<const double> values, double p);

/// Welford online accumulator for mean/variance without storing samples.
class RunningStat {
 public:
  void push(double value);
  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Population variance; 0 if fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace helcfl::util
