#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace helcfl::util {

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double variance(std::span<const double> values) {
  if (values.empty()) return 0.0;
  const double mu = mean(values);
  double sum_sq = 0.0;
  for (const double v : values) sum_sq += (v - mu) * (v - mu);
  return sum_sq / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) { return std::sqrt(variance(values)); }

double min_value(std::span<const double> values) {
  assert(!values.empty());
  return *std::min_element(values.begin(), values.end());
}

double max_value(std::span<const double> values) {
  assert(!values.empty());
  return *std::max_element(values.begin(), values.end());
}

double percentile(std::span<const double> values, double p) {
  assert(!values.empty());
  assert(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void RunningStat::push(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

}  // namespace helcfl::util
