// Small leveled logger for simulation progress output.
//
// Not a general-purpose logging framework — just a global level filter and
// a stderr sink — but it IS thread-safe: the parallel round engine logs
// from pool workers, so each message is formatted into one buffer and
// written to stderr with a single fwrite (messages never interleave), and
// the level filter is an atomic.
#pragma once

#include <string_view>

namespace helcfl::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that will be emitted.
void set_log_level(LogLevel level);

/// Current global level.
LogLevel log_level();

/// Emits `message` to stderr with a level tag if `level` passes the filter.
void log(LogLevel level, std::string_view message);

void log_debug(std::string_view message);
void log_info(std::string_view message);
void log_warn(std::string_view message);
void log_error(std::string_view message);

}  // namespace helcfl::util
