// Minimal CSV writer used by the benchmark harness to persist experiment
// series (accuracy curves, delay/energy timelines) for external plotting.
#pragma once

#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace helcfl::util {

/// Streams rows of a CSV file.  Fields containing commas, quotes, or
/// newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncating) and emits `header` as first row.
  /// Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one row.  The number of fields should match the header.
  void write_row(const std::vector<std::string>& fields);

  /// Convenience: formats doubles with full round-trip precision.
  static std::string field(double value);
  static std::string field(std::size_t value);
  static std::string field(int value);

  /// Number of data rows written so far (excluding the header).
  std::size_t rows_written() const { return rows_; }

 private:
  static std::string escape(std::string_view raw);

  std::ofstream out_;
  std::size_t rows_ = 0;
};

}  // namespace helcfl::util
