#include "util/args.h"

#include <charconv>
#include <stdexcept>

namespace helcfl::util {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.emplace_back(arg);
      continue;
    }
    const std::string_view body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq == std::string_view::npos) {
      flags_.emplace(body);
    } else {
      values_.emplace(std::string(body.substr(0, eq)), std::string(body.substr(eq + 1)));
    }
  }
}

bool ArgParser::has(std::string_view name) const {
  queried_.emplace(name);
  return flags_.contains(name) || values_.contains(name);
}

std::optional<std::string> ArgParser::get(std::string_view name) const {
  queried_.emplace(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string ArgParser::get_or(std::string_view name, std::string fallback) const {
  return get(name).value_or(std::move(fallback));
}

double ArgParser::get_double_or(std::string_view name, double fallback) const {
  const auto raw = get(name);
  if (!raw) return fallback;
  try {
    std::size_t consumed = 0;
    const double value = std::stod(*raw, &consumed);
    if (consumed != raw->size()) throw std::invalid_argument("trailing characters");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + std::string(name) + "=" + *raw +
                                " is not a number");
  }
}

std::int64_t ArgParser::get_int_or(std::string_view name, std::int64_t fallback) const {
  const auto raw = get(name);
  if (!raw) return fallback;
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(raw->data(), raw->data() + raw->size(), value);
  if (ec != std::errc() || ptr != raw->data() + raw->size()) {
    throw std::invalid_argument("--" + std::string(name) + "=" + *raw +
                                " is not an integer");
  }
  return value;
}

bool ArgParser::get_bool_or(std::string_view name, bool fallback) const {
  queried_.emplace(name);
  if (flags_.contains(name)) return true;  // bare --flag means true
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  if (it->second == "true" || it->second == "1" || it->second == "yes") return true;
  if (it->second == "false" || it->second == "0" || it->second == "no") return false;
  throw std::invalid_argument("--" + std::string(name) + "=" + it->second +
                              " is not a boolean");
}

std::vector<std::string> ArgParser::unused() const {
  std::vector<std::string> names;
  for (const auto& [key, value] : values_) {
    if (!queried_.contains(key)) names.push_back(key);
  }
  for (const auto& flag : flags_) {
    if (!queried_.contains(flag)) names.push_back(flag);
  }
  return names;
}

}  // namespace helcfl::util
