#include "sim/simulation.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "core/helcfl_scheduler.h"
#include "data/synthetic_cifar.h"
#include "fl/separated.h"
#include "fl/trainer.h"
#include "nn/serialize.h"
#include "sched/fedcs.h"
#include "sched/fedl.h"
#include "sched/oort.h"
#include "sched/random_selection.h"
#include "sim/fleet.h"
#include "util/log.h"

namespace helcfl::sim {

namespace {

// Fixed sub-stream ids off the master seed; every scheme sees the same
// dataset, partition, fleet, and model initialization.
constexpr std::uint64_t kDatasetStream = 1;
constexpr std::uint64_t kPartitionStream = 2;
constexpr std::uint64_t kFleetStream = 3;
constexpr std::uint64_t kModelStream = 4;
constexpr std::uint64_t kStrategyStream = 5;
constexpr std::uint64_t kTrainingStream = 6;

}  // namespace

double auto_fedcs_deadline(const sched::FleetView& fleet, double fraction) {
  // FedCS tries to pack as many users as possible into the deadline; give
  // it headroom for roughly twice the nominal cohort of fastest users, the
  // regime where its greedy "short delays first" behaviour shows both its
  // early speed and its accuracy ceiling (Section VII-C).
  const std::size_t n =
      sched::selection_count(fleet.users.size(), std::min(1.0, 2.0 * fraction));
  std::vector<std::size_t> order(fleet.users.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return fleet.users[a].total_delay_max_s() < fleet.users[b].total_delay_max_s();
  });
  order.resize(n);
  return sched::estimate_round_time(fleet, order);
}

std::unique_ptr<sched::SelectionStrategy> make_strategy(const ExperimentConfig& config,
                                                        const sched::FleetView& fleet) {
  util::Rng strategy_rng = util::Rng(config.seed).fork(kStrategyStream);
  switch (config.scheme) {
    case Scheme::kHelcfl: {
      core::HelcflOptions options;
      options.fraction = config.fraction;
      options.eta = config.eta;
      options.enable_dvfs = true;
      return std::make_unique<core::HelcflScheduler>(options);
    }
    case Scheme::kHelcflNoDvfs: {
      core::HelcflOptions options;
      options.fraction = config.fraction;
      options.eta = config.eta;
      options.enable_dvfs = false;
      return std::make_unique<core::HelcflScheduler>(options);
    }
    case Scheme::kClassicFl:
      return std::make_unique<sched::RandomSelection>(config.fraction, strategy_rng);
    case Scheme::kFedCs: {
      const double deadline = config.fedcs_deadline_s > 0.0
                                  ? config.fedcs_deadline_s
                                  : auto_fedcs_deadline(fleet, config.fraction);
      return std::make_unique<sched::FedCsSelection>(deadline);
    }
    case Scheme::kFedl:
      return std::make_unique<sched::FedlSelection>(config.fraction, config.fedl_kappa,
                                                    strategy_rng);
    case Scheme::kOort: {
      sched::OortOptions options;
      options.fraction = config.fraction;
      return std::make_unique<sched::OortSelection>(options, strategy_rng);
    }
    case Scheme::kSl:
      return nullptr;
  }
  throw std::invalid_argument("make_strategy: bad scheme");
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  config.validate();
  const util::Rng master(config.seed);

  // Workload: dataset, then per-user partition.
  util::Rng dataset_rng = master.fork(kDatasetStream);
  const data::TrainTestSplit split =
      data::make_synthetic_cifar(config.dataset, dataset_rng);

  util::Rng partition_rng = master.fork(kPartitionStream);
  data::Partition partition;
  if (config.noniid) {
    partition = data::shard_noniid_partition(split.train.labels(), config.n_users,
                                             config.shards_per_user, partition_rng);
  } else {
    partition = data::iid_partition(split.train.size(), config.n_users, partition_rng);
  }

  // Fleet: the per-user |D_q| ties the delay/energy model to the data.
  std::vector<std::size_t> samples_per_user;
  samples_per_user.reserve(partition.size());
  for (const auto& slice : partition) samples_per_user.push_back(slice.size());
  util::Rng fleet_rng = master.fork(kFleetStream);
  const std::vector<mec::Device> devices =
      make_fleet(config, samples_per_user, fleet_rng);
  const mec::Channel channel = make_channel(config);

  // Model: identical initialization across schemes.
  util::Rng model_rng = master.fork(kModelStream);
  const std::unique_ptr<nn::Sequential> model = nn::make_model(
      config.model, split.train.spec(), config.dataset.num_classes, model_rng);

  ExperimentResult result;
  result.scheme = scheme_name(config.scheme);
  result.model_parameters = nn::parameter_count(*model);
  result.n_users = config.n_users;

  if (config.scheme == Scheme::kSl) {
    fl::SeparatedOptions options;
    options.max_rounds = config.trainer.max_rounds;
    options.client = config.trainer.client;
    options.eval_every = config.sl_eval_every;
    options.eval_user_sample = config.sl_eval_users;
    options.eval_batch = config.trainer.eval_batch;
    options.seed = master.fork(kTrainingStream).next_u64();
    result.history = fl::train_separated(*model, split.train, split.test, partition,
                                         devices, options);
    return result;
  }

  fl::TrainerOptions trainer_options = config.trainer;
  trainer_options.seed = master.fork(kTrainingStream).next_u64();

  // The strategy needs the FLCC's fleet view (for FedCS's auto deadline);
  // build it the same way the trainer will.
  const std::vector<sched::UserInfo> users =
      sched::build_user_info(devices, channel, trainer_options.model_size_bits);
  const std::unique_ptr<sched::SelectionStrategy> strategy =
      make_strategy(config, {users});
  if (config.scheme == Scheme::kFedCs) {
    result.fedcs_deadline_s =
        static_cast<sched::FedCsSelection&>(*strategy).deadline_s();
  }

  if (config.async.mode == fl::AsyncOptions::Mode::kAsync) {
    fl::AsyncTrainer trainer(*model, split.train, split.test, partition, devices,
                             channel, *strategy, trainer_options, config.async);
    result.history = trainer.run();
  } else {
    fl::FederatedTrainer trainer(*model, split.train, split.test, partition,
                                 devices, channel, *strategy, trainer_options);
    result.history = trainer.run();
  }
  result.final_weights = nn::extract_parameters(*model);
  return result;
}

}  // namespace helcfl::sim
