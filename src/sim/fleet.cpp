#include "sim/fleet.h"

#include <cmath>
#include <stdexcept>

namespace helcfl::sim {

std::vector<mec::Device> make_fleet(const ExperimentConfig& config,
                                    std::span<const std::size_t> samples_per_user,
                                    util::Rng& rng) {
  if (samples_per_user.size() != config.n_users) {
    throw std::invalid_argument("make_fleet: samples_per_user size mismatch");
  }
  std::vector<mec::Device> fleet;
  fleet.reserve(config.n_users);
  for (std::size_t i = 0; i < config.n_users; ++i) {
    mec::Device device;
    device.id = i;
    device.f_min_hz = config.f_min_hz;
    device.f_max_hz = rng.uniform(config.f_max_low_hz, config.f_max_high_hz);
    if (device.f_max_hz < device.f_min_hz) device.f_max_hz = device.f_min_hz;
    device.switched_capacitance = config.switched_capacitance;
    device.cycles_per_sample = config.cycles_per_sample * config.compute_scale;
    device.num_samples = samples_per_user[i];
    device.tx_power_w = config.tx_power_w;
    // Log-uniform gains: heterogeneity in upload rate matching the spread
    // of a cell with users at different distances from the base station.
    const double log_low = std::log(config.gain_sq_low);
    const double log_high = std::log(config.gain_sq_high);
    device.channel_gain_sq = std::exp(rng.uniform(log_low, log_high));
    fleet.push_back(device);
  }
  return fleet;
}

mec::Channel make_channel(const ExperimentConfig& config) {
  return {config.bandwidth_hz, config.noise_w};
}

}  // namespace helcfl::sim
