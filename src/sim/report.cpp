#include "sim/report.h"

#include <cmath>
#include <cstdio>
#include <limits>

#include "util/csv.h"

namespace helcfl::sim {

namespace {
std::string fixed2(double value, const char* suffix) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.2f%s", value, suffix);
  return buffer;
}
}  // namespace

std::string format_minutes(double seconds) { return fixed2(seconds / 60.0, "min"); }

std::string format_minutes_or_x(const std::optional<double>& seconds) {
  return seconds ? format_minutes(*seconds) : "X";
}

std::string format_joules(double joules) { return fixed2(joules, "J"); }

std::string format_joules_or_x(const std::optional<double>& joules) {
  return joules ? format_joules(*joules) : "X";
}

std::string format_percent(double fraction) { return fixed2(fraction * 100.0, "%"); }

void write_history_csv(const std::string& path, const fl::TrainingHistory& history) {
  util::CsvWriter csv(path, {"round", "cum_delay_s", "cum_energy_j", "train_loss",
                             "survivors", "crashed", "upload_failures", "dropped_late",
                             "retries", "quorum_failed", "wasted_energy_j",
                             "test_loss", "test_accuracy"});
  for (const auto& r : history.rounds()) {
    csv.write_row({util::CsvWriter::field(r.round), util::CsvWriter::field(r.cum_delay_s),
                   util::CsvWriter::field(r.cum_energy_j),
                   util::CsvWriter::field(r.train_loss),
                   util::CsvWriter::field(r.survivors), util::CsvWriter::field(r.crashed),
                   util::CsvWriter::field(r.upload_failures),
                   util::CsvWriter::field(r.dropped_late),
                   util::CsvWriter::field(r.retries),
                   util::CsvWriter::field(r.quorum_failed ? 1 : 0),
                   util::CsvWriter::field(r.wasted_energy_j),
                   r.evaluated ? util::CsvWriter::field(r.test_loss) : "",
                   r.evaluated ? util::CsvWriter::field(r.test_accuracy) : ""});
  }
}

double accuracy_at_round(const fl::TrainingHistory& history, std::size_t round) {
  double accuracy = std::numeric_limits<double>::quiet_NaN();
  for (const auto& r : history.rounds()) {
    if (r.round > round) break;
    if (r.evaluated) accuracy = r.test_accuracy;
  }
  return accuracy;
}

void print_accuracy_curves(std::span<const std::string> labels,
                           std::span<const fl::TrainingHistory> histories,
                           std::size_t checkpoints) {
  if (labels.size() != histories.size() || histories.empty() || checkpoints == 0) {
    return;
  }
  std::size_t max_round = 0;
  for (const auto& h : histories) {
    if (!h.empty()) max_round = std::max(max_round, h.back().round);
  }

  std::printf("%-8s", "round");
  for (const auto& label : labels) std::printf("  %12s", label.c_str());
  std::printf("\n");
  for (std::size_t k = 1; k <= checkpoints; ++k) {
    const std::size_t round = max_round * k / checkpoints;
    std::printf("%-8zu", round);
    for (const auto& h : histories) {
      const double accuracy = accuracy_at_round(h, round);
      if (std::isnan(accuracy)) {
        std::printf("  %12s", "-");
      } else {
        std::printf("  %11.2f%%", accuracy * 100.0);
      }
    }
    std::printf("\n");
  }
}

Observability::Observability(const std::string& trace_path,
                             const std::string& level, bool profile,
                             const std::string& chrome_path)
    : print_tables_(profile),
      trace_path_(trace_path),
      chrome_path_(chrome_path) {
  if (!trace_path.empty()) {
    tracer_ = std::make_unique<obs::Tracer>(trace_path,
                                            obs::parse_trace_level(level));
  }
  if (profile || !chrome_path.empty()) {
    profiler_ = std::make_unique<obs::PhaseProfiler>(tracer_.get());
  }
  if (tracer_ || profiler_) registry_ = std::make_unique<obs::Registry>();
}

obs::Instruments Observability::instruments() {
  return {tracer_.get(), profiler_.get(), registry_.get()};
}

void Observability::finish() {
  if (registry_ && tracer_) registry_->emit_to(*tracer_);
  if (print_tables_ && profiler_) {
    std::printf("\n%s", profiler_->format_summary().c_str());
  }
  if (print_tables_ && registry_ && !registry_->empty()) {
    std::printf("\n%s", registry_->format_table().c_str());
  }
  if (profiler_ && !chrome_path_.empty()) {
    profiler_->write_chrome_trace(chrome_path_);
    std::printf("chrome trace    %s\n", chrome_path_.c_str());
  }
  if (tracer_) {
    tracer_->flush();
    std::printf("trace           %s (%llu events, level %s)\n",
                trace_path_.c_str(),
                static_cast<unsigned long long>(tracer_->event_count()),
                std::string(obs::trace_level_name(tracer_->level())).c_str());
  }
}

}  // namespace helcfl::sim
