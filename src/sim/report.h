// Console/CSV reporting helpers shared by the benches and examples.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "fl/metrics.h"
#include "obs/instruments.h"
#include "obs/profiler.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace helcfl::sim {

/// "6.82min" for 409.2 s; fixed two decimals.
std::string format_minutes(double seconds);

/// format_minutes for a reached target, the paper's "X" otherwise.
std::string format_minutes_or_x(const std::optional<double>& seconds);

/// "123.4J" with two decimals.
std::string format_joules(double joules);
std::string format_joules_or_x(const std::optional<double>& joules);

/// "87.31%" for 0.8731.
std::string format_percent(double fraction);

/// Writes one history to CSV with the columns
/// round,cum_delay_s,cum_energy_j,train_loss,survivors,crashed,
/// upload_failures,dropped_late,retries,quorum_failed,wasted_energy_j,
/// test_loss,test_accuracy (test columns empty on rounds without
/// evaluation; the failure columns are all zero when faults are disabled).
void write_history_csv(const std::string& path, const fl::TrainingHistory& history);

/// Prints a fixed-width table row set: the accuracy of each scheme at
/// evenly spaced checkpoints (for Fig. 2-style curves on the console).
/// `labels` and `histories` are index-aligned.
void print_accuracy_curves(std::span<const std::string> labels,
                           std::span<const fl::TrainingHistory> histories,
                           std::size_t checkpoints);

/// Accuracy of the last evaluated round at or before `round` (NaN if none).
double accuracy_at_round(const fl::TrainingHistory& history, std::size_t round);

/// Owns the observability sinks behind the shared `--trace-out` /
/// `--trace-level` / `--profile` / `--chrome-trace` flags of `helcfl_cli`
/// and the benches (docs/OBSERVABILITY.md documents the flags and the
/// emitted schema).  Default-constructed it is fully inert; attach with
/// `config.trainer.obs = observability.instruments()` and call `finish()`
/// once after the run(s) to print the profile/counter tables, dump the
/// counters into the trace, write the Chrome trace, and flush.
class Observability {
 public:
  /// Inert: instruments() is all-null, finish() is a no-op.
  Observability() = default;

  /// `trace_path` empty = no JSONL trace; `level` is parsed with
  /// obs::parse_trace_level ("round" | "decision" | "debug").  `profile`
  /// enables the phase profiler and the end-of-run console tables;
  /// `chrome_path` empty = no Chrome trace (non-empty implies profiling).
  Observability(const std::string& trace_path, const std::string& level,
                bool profile, const std::string& chrome_path);

  /// Borrowed pointers to the owned sinks (null for disabled ones);
  /// valid until this object is destroyed.
  obs::Instruments instruments();

  /// True when any sink is live.
  bool any() const { return tracer_ || profiler_ || registry_; }

  /// End-of-run reporting; safe to call on an inert instance.
  void finish();

 private:
  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<obs::PhaseProfiler> profiler_;
  std::unique_ptr<obs::Registry> registry_;
  bool print_tables_ = false;
  std::string trace_path_;
  std::string chrome_path_;
};

}  // namespace helcfl::sim
