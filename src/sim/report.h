// Console/CSV reporting helpers shared by the benches and examples.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "fl/metrics.h"

namespace helcfl::sim {

/// "6.82min" for 409.2 s; fixed two decimals.
std::string format_minutes(double seconds);

/// format_minutes for a reached target, the paper's "X" otherwise.
std::string format_minutes_or_x(const std::optional<double>& seconds);

/// "123.4J" with two decimals.
std::string format_joules(double joules);
std::string format_joules_or_x(const std::optional<double>& joules);

/// "87.31%" for 0.8731.
std::string format_percent(double fraction);

/// Writes one history to CSV with the columns
/// round,cum_delay_s,cum_energy_j,train_loss,survivors,crashed,
/// upload_failures,dropped_late,retries,quorum_failed,wasted_energy_j,
/// test_loss,test_accuracy (test columns empty on rounds without
/// evaluation; the failure columns are all zero when faults are disabled).
void write_history_csv(const std::string& path, const fl::TrainingHistory& history);

/// Prints a fixed-width table row set: the accuracy of each scheme at
/// evenly spaced checkpoints (for Fig. 2-style curves on the console).
/// `labels` and `histories` are index-aligned.
void print_accuracy_curves(std::span<const std::string> labels,
                           std::span<const fl::TrainingHistory> histories,
                           std::size_t checkpoints);

/// Accuracy of the last evaluated round at or before `round` (NaN if none).
double accuracy_at_round(const fl::TrainingHistory& history, std::size_t round);

}  // namespace helcfl::sim
