// End-to-end experiment driver: config -> dataset -> partition -> fleet ->
// scheduler -> trainer -> history.
//
// All randomness is forked from the master seed into fixed sub-streams
// (dataset, partition, fleet, model init, training), so two configs that
// differ only in `scheme` train on identical data, devices, and initial
// weights — the comparisons of Fig. 2 / Table I / Fig. 3 are paired.
#pragma once

#include <memory>
#include <string>

#include "data/partition.h"
#include "fl/metrics.h"
#include "sched/scheduler.h"
#include "sim/config.h"

namespace helcfl::sim {

/// Everything a bench or example needs after a run.
struct ExperimentResult {
  std::string scheme;            ///< scheme_name(config.scheme)
  fl::TrainingHistory history;
  std::size_t model_parameters = 0;
  std::size_t n_users = 0;
  double fedcs_deadline_s = 0.0; ///< the deadline FedCS actually used (auto-resolved)
  /// Final global model weights (flat, nn/serialize.h order).  The resume
  /// test harness compares these bitwise between a golden run and a
  /// save/kill/resume run; empty only for Scheme::kSl.
  std::vector<float> final_weights;
};

/// Runs one experiment to completion.  Throws on invalid configuration.
ExperimentResult run_experiment(const ExperimentConfig& config);

/// The auto deadline used for FedCS when config.fedcs_deadline_s == 0: the
/// estimated TDMA round time of the N fastest users at f_max, where
/// N = selection_count(Q, C).  Exposed for tests/benches.
double auto_fedcs_deadline(const sched::FleetView& fleet, double fraction);

/// Builds the strategy for `config` (nullptr for Scheme::kSl, which does
/// not go through the SelectionStrategy interface).  `fleet` is only used
/// to resolve the FedCS auto deadline.
std::unique_ptr<sched::SelectionStrategy> make_strategy(const ExperimentConfig& config,
                                                        const sched::FleetView& fleet);

}  // namespace helcfl::sim
