// Heterogeneous device fleet generation (Section VII-A).
#pragma once

#include <span>
#include <vector>

#include "mec/channel.h"
#include "mec/device.h"
#include "sim/config.h"
#include "util/rng.h"

namespace helcfl::sim {

/// Draws Q devices: f_max uniform in (f_max_low, f_max_high), channel gain
/// h^2 log-uniform in [gain_sq_low, gain_sq_high], and the per-user sample
/// counts taken from `samples_per_user` (so Eq. (4) and Eq. (18) agree).
std::vector<mec::Device> make_fleet(const ExperimentConfig& config,
                                    std::span<const std::size_t> samples_per_user,
                                    util::Rng& rng);

/// The shared uplink of the configured MEC system.
mec::Channel make_channel(const ExperimentConfig& config);

}  // namespace helcfl::sim
