// Experiment configuration: every knob of the paper's Section VII-A plus
// the substitution parameters documented in DESIGN.md.
#pragma once

#include <cstdint>
#include <string>

#include "data/synthetic_cifar.h"
#include "fl/async_trainer.h"
#include "fl/trainer.h"
#include "nn/models.h"

namespace helcfl::sim {

/// Which scheduler drives training (the paper's five compared schemes plus
/// the HELCFL-without-DVFS arm of Fig. 3).
enum class Scheme {
  kHelcfl,        ///< Algorithm 2 + Algorithm 3
  kHelcflNoDvfs,  ///< Algorithm 2, everyone at f_max (Fig. 3 baseline arm)
  kClassicFl,     ///< random selection [9]
  kFedCs,         ///< deadline-greedy selection [10]
  kFedl,          ///< random selection + closed-form frequency [12]
  kSl,            ///< separated learning [4]
  kOort,          ///< loss-aware utility selection (extension; DESIGN.md §6)
};

/// Parses "helcfl" | "helcfl_nodvfs" | "classic" | "fedcs" | "fedl" | "sl"
/// | "oort".
Scheme parse_scheme(const std::string& text);
std::string scheme_name(Scheme scheme);

struct ExperimentConfig {
  // --- workload (Section VII-A) ---
  data::SyntheticCifarOptions dataset;        ///< synthetic CIFAR-10 stand-in
  bool noniid = false;                        ///< IID vs sort-and-shard
  std::size_t shards_per_user = 4;            ///< paper: 400 shards / 4 per user
  nn::ModelKind model = nn::ModelKind::kMlp;  ///< trained architecture

  // --- fleet (paper constants) ---
  std::size_t n_users = 100;       ///< Q
  double f_min_hz = 0.3e9;         ///< lowest CPU frequency
  double f_max_low_hz = 0.3e9;     ///< f_max ~ U(f_max_low, f_max_high)
  double f_max_high_hz = 2.0e9;
  double switched_capacitance = 2e-28;  ///< alpha (paper's 2x10^28 is a typo)
  double cycles_per_sample = 1e7;  ///< pi
  /// The paper's users hold 500 CIFAR-10 samples each; our synthetic
  /// partitions hold train_samples / n_users (40 by default).  This factor
  /// scales each device's per-sample cycle cost so the compute *workload*
  /// matches the paper's 500-sample partitions (12.5 = 500 / 40).  The
  /// resulting compute-dominated regime is what produces the paper's
  /// Table-I speedups (heterogeneous compute delays >> the TDMA upload
  /// floor) and Fig.-3 savings (slack within delay-clustered cohorts).
  /// See DESIGN.md §3 and EXPERIMENTS.md for the sensitivity sweep.
  double compute_scale = 12.5;
  double tx_power_w = 0.2;         ///< p_q
  double bandwidth_hz = 2e6;       ///< Z (total RBs)
  double noise_w = 1e-9;           ///< N0
  double gain_sq_low = 3e-8;       ///< h^2 ~ log-uniform(low, high); paper does
  double gain_sq_high = 3e-7;      ///< not give gains, see DESIGN.md

  // --- scheduling ---
  Scheme scheme = Scheme::kHelcfl;
  double fraction = 0.1;           ///< C
  double eta = 0.9;                ///< HELCFL decay coefficient
  double fedcs_deadline_s = 0.0;   ///< 0 = auto (round time of the N fastest)
  double fedl_kappa = 0.2;         ///< FEDL delay weight (J/s)

  // --- training loop ---
  fl::TrainerOptions trainer;      ///< rounds, lr, C_model, deadline, ...
  /// Round engine: sync (default; FederatedTrainer's barrier loop) or the
  /// event-driven FedBuff engine of fl::AsyncTrainer (docs/ASYNC.md).
  /// Ignored by the SL scheme, which has no server rounds.
  fl::AsyncOptions async;
  std::size_t sl_eval_every = 10;  ///< SL evaluates Q models: keep sparse
  std::size_t sl_eval_users = 20;

  // --- reproducibility ---
  std::uint64_t seed = 42;  ///< master seed; dataset/fleet/init are forked
                            ///< sub-streams so all schemes share them

  /// Throws std::invalid_argument if any field is inconsistent.
  void validate() const;
};

/// The configuration used by the paper's evaluation (Section VII-A) with
/// our documented substitutions: Q=100, C=0.1, J=300, MLP on synthetic
/// CIFAR-10, C_model = 4 Mb.
ExperimentConfig paper_config();

}  // namespace helcfl::sim
