#include "sim/config.h"

#include <stdexcept>
#include <string>

#include "sched/scheduler.h"

namespace helcfl::sim {

Scheme parse_scheme(const std::string& text) {
  if (text == "helcfl") return Scheme::kHelcfl;
  if (text == "helcfl_nodvfs") return Scheme::kHelcflNoDvfs;
  if (text == "classic") return Scheme::kClassicFl;
  if (text == "fedcs") return Scheme::kFedCs;
  if (text == "fedl") return Scheme::kFedl;
  if (text == "sl") return Scheme::kSl;
  if (text == "oort") return Scheme::kOort;
  throw std::invalid_argument("unknown scheme: " + text);
}

std::string scheme_name(Scheme scheme) {
  switch (scheme) {
    case Scheme::kHelcfl: return "HELCFL";
    case Scheme::kHelcflNoDvfs: return "HELCFL-noDVFS";
    case Scheme::kClassicFl: return "ClassicFL";
    case Scheme::kFedCs: return "FedCS";
    case Scheme::kFedl: return "FEDL";
    case Scheme::kSl: return "SL";
    case Scheme::kOort: return "Oort";
  }
  return "unknown";
}

void ExperimentConfig::validate() const {
  if (n_users == 0) throw std::invalid_argument("config: n_users == 0");
  if (fraction <= 0.0 || fraction > 1.0) {
    throw std::invalid_argument("config: fraction must be in (0, 1]");
  }
  if (eta <= 0.0 || eta >= 1.0) {
    throw std::invalid_argument("config: eta must be in (0, 1)");
  }
  if (f_min_hz <= 0.0 || f_max_low_hz < f_min_hz || f_max_high_hz < f_max_low_hz) {
    throw std::invalid_argument("config: bad frequency range");
  }
  if (switched_capacitance <= 0.0 || cycles_per_sample <= 0.0 || compute_scale <= 0.0) {
    throw std::invalid_argument("config: bad compute constants");
  }
  if (tx_power_w <= 0.0 || bandwidth_hz <= 0.0 || noise_w <= 0.0) {
    throw std::invalid_argument("config: bad radio constants");
  }
  if (gain_sq_low <= 0.0 || gain_sq_high < gain_sq_low) {
    throw std::invalid_argument("config: bad channel gain range");
  }
  if (noniid && shards_per_user == 0) {
    throw std::invalid_argument("config: shards_per_user == 0");
  }
  if (dataset.train_samples < n_users) {
    throw std::invalid_argument("config: fewer training samples than users");
  }
  if (trainer.max_rounds == 0) throw std::invalid_argument("config: max_rounds == 0");
  if (fedl_kappa <= 0.0) throw std::invalid_argument("config: fedl_kappa <= 0");
  trainer.validate(n_users);
  // A quorum larger than the per-round cohort ⌈Q·C⌉ could never be met even
  // when every selected client survives.
  const std::size_t cohort = sched::selection_count(n_users, fraction);
  if (trainer.min_clients > cohort) {
    throw std::invalid_argument(
        "config: trainer.min_clients = " + std::to_string(trainer.min_clients) +
        " exceeds the per-round cohort size " + std::to_string(cohort) +
        " (= max(Q*C, 1)); every round would fail its quorum");
  }
}

ExperimentConfig paper_config() {
  ExperimentConfig config;
  config.dataset.train_samples = 4000;
  config.dataset.test_samples = 1000;
  config.trainer.max_rounds = 300;
  config.trainer.client.learning_rate = 0.05F;
  // FedAvg-style local mini-batch steps with momentum; the client drift
  // they cause is what makes non-IID training visibly harder than IID
  // (Fig. 2).  Set local_steps = 1, batch_size = 0, momentum = 0 for the
  // literal Eq. (3) GD step.
  config.trainer.client.local_steps = 5;
  config.trainer.client.batch_size = 20;
  config.trainer.client.momentum = 0.5F;
  config.trainer.model_size_bits = 4e6;  // SqueezeNet + deep compression ~0.5 MB
  return config;
}

}  // namespace helcfl::sim
