#include "svc/service.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/registry.h"
#include "obs/trace.h"
#include "util/file_io.h"

namespace helcfl::svc {

namespace {

constexpr std::size_t kSnapshotHeaderBytes = 4 + 4 + 8 + 8;

core::HelcflOptions scheduler_options(const ServiceOptions& options) {
  core::HelcflOptions helcfl;
  helcfl.fraction = options.fraction;
  helcfl.eta = options.eta;
  helcfl.enable_dvfs = options.enable_dvfs;
  return helcfl;
}

void write_report(util::ByteWriter& out, const DeviceReport& r) {
  out.u64(r.device_id);
  out.u64(r.report_seq);
  out.f64(r.t_cal_max_s);
  out.f64(r.t_com_s);
}

DeviceReport read_report(util::ByteReader& in) {
  DeviceReport r;
  r.device_id = in.u64();
  r.report_seq = in.u64();
  r.t_cal_max_s = in.f64();
  r.t_com_s = in.f64();
  return r;
}

bool valid_delay(double value) {
  return std::isfinite(value) && value > 0.0;
}

/// Replaces the first "{decisions}" in a snapshot path template.
std::string expand_snapshot_path(const std::string& path,
                                 std::uint64_t decisions) {
  const std::string token = "{decisions}";
  const std::size_t at = path.find(token);
  if (at == std::string::npos) return path;
  return path.substr(0, at) + std::to_string(decisions) +
         path.substr(at + token.size());
}

}  // namespace

void ServiceOptions::validate() const {
  // fraction/eta are range-checked by the scheduler's own constructor.
  if (lease_ticks == 0) {
    throw ServiceError("ServiceOptions: lease_ticks must be >= 1");
  }
  if (queue_capacity == 0) {
    throw ServiceError("ServiceOptions: queue_capacity must be >= 1");
  }
  if (snapshot_every > 0 && snapshot_path.empty()) {
    throw ServiceError(
        "ServiceOptions: snapshot_every > 0 requires a snapshot_path");
  }
}

SchedulerService::SchedulerService(std::vector<sched::UserInfo> users,
                                   const ServiceOptions& options,
                                   obs::Instruments instruments)
    : options_(options),
      instruments_(instruments),
      scheduler_(scheduler_options(options)),
      users_(std::move(users)) {
  options_.validate();
  if (users_.empty()) {
    throw ServiceError("SchedulerService: the fleet must have >= 1 device");
  }
  for (std::size_t i = 0; i < users_.size(); ++i) {
    if (!valid_delay(users_[i].t_cal_max_s) || !valid_delay(users_[i].t_com_s)) {
      throw ServiceError("SchedulerService: device " + std::to_string(i) +
                         " has a non-positive initial delay");
    }
  }
  scheduler_.set_instruments(instruments_);
  // Every device starts alive with one lease's worth of grace: it must
  // report within lease_ticks of service start or it is parked.
  alive_.assign(users_.size(), 1);
  lease_expiry_tick_.assign(users_.size(), options_.lease_ticks);
  last_report_seq_.assign(users_.size(), 0);
}

void SchedulerService::count(std::string_view name, std::uint64_t delta) {
  if (instruments_.registry != nullptr) instruments_.registry->add(name, delta);
}

void SchedulerService::emit(const Frame& frame) {
  outbox_.push_back(encode_frame(frame));
}

void SchedulerService::ingest(std::span<const std::uint8_t> bytes,
                              std::uint64_t now_tick) {
  now_tick_ = std::max(now_tick_, now_tick);
  std::vector<Frame> frames;
  std::vector<FrameError> errors;
  decode_datagram(bytes, frames, errors);

  obs::Tracer* tracer = instruments_.tracer;
  for (const FrameError error : errors) {
    ++stats_.frames_rejected;
    count("svc.frames_rejected");
    count(std::string("svc.frames_rejected.") +
          std::string(frame_error_name(error)));
    if (tracer != nullptr && tracer->enabled(obs::TraceLevel::kDecision)) {
      tracer->emit(obs::TraceLevel::kDecision, "svc_reject",
                   {{"tick", now_tick}, {"reason", frame_error_name(error)}});
    }
  }

  for (const Frame& frame : frames) {
    dispatch_frame(frame, now_tick);
  }
}

void SchedulerService::ingest(const Frame& frame, std::uint64_t now_tick) {
  now_tick_ = std::max(now_tick_, now_tick);
  dispatch_frame(frame, now_tick);
}

void SchedulerService::dispatch_frame(const Frame& frame,
                                      std::uint64_t now_tick) {
  switch (frame.type) {
    case MsgType::kDeviceReport: {
      DeviceReport report;
      try {
        report = decode_device_report(frame.payload);
      } catch (const util::SerialError&) {
        ++stats_.frames_rejected;
        count("svc.frames_rejected");
        count("svc.frames_rejected.malformed");
        return;
      }
      ++stats_.frames_accepted;
      handle_report(report, now_tick);
      break;
    }
    case MsgType::kDecisionRequest: {
      DecisionRequest request;
      try {
        request = decode_decision_request(frame.payload);
      } catch (const util::SerialError&) {
        ++stats_.frames_rejected;
        count("svc.frames_rejected");
        count("svc.frames_rejected.malformed");
        return;
      }
      ++stats_.frames_accepted;
      handle_request(request);
      break;
    }
    case MsgType::kReportAck:
    case MsgType::kDecisionResponse:
      // Server-to-client messages looped back at us (misrouted or
      // reflected): valid frames, wrong direction.
      ++stats_.frames_rejected;
      count("svc.frames_rejected");
      count("svc.frames_rejected.unexpected_type");
      break;
  }
}

void SchedulerService::handle_report(const DeviceReport& report,
                                     std::uint64_t now_tick) {
  if (report.device_id >= users_.size() || !valid_delay(report.t_cal_max_s) ||
      !valid_delay(report.t_com_s) || report.report_seq == 0) {
    ++stats_.reports_invalid;
    count("svc.reports_invalid");
    return;
  }
  if (report_queue_.size() >= options_.queue_capacity) {
    // Oldest-first shedding: the most recent state is the most valuable,
    // and the shed sender's retry (never acked) re-delivers it later.
    const DeviceReport shed = report_queue_.front();
    report_queue_.pop_front();
    ++stats_.reports_shed;
    degraded_ = true;
    count("svc.sheds");
    obs::Tracer* tracer = instruments_.tracer;
    if (tracer != nullptr && tracer->enabled(obs::TraceLevel::kRound)) {
      tracer->emit(obs::TraceLevel::kRound, "svc_shed",
                   {{"tick", now_tick},
                    {"device", shed.device_id},
                    {"report_seq", shed.report_seq},
                    {"queue_capacity", options_.queue_capacity}});
    }
  }
  report_queue_.push_back(report);
}

void SchedulerService::handle_request(const DecisionRequest& request) {
  if (request.controller_seq == last_controller_seq_ &&
      !cached_response_.empty()) {
    // Exactly-once processing: the response was already computed; the
    // request retry means it was lost — retransmit, never re-decide.
    outbox_.push_back(cached_response_);
    ++stats_.responses_retransmitted;
    count("svc.responses_retransmitted");
    return;
  }
  if (request.controller_seq == last_controller_seq_ + 1) {
    if (pending_request_.has_value() &&
        pending_request_->controller_seq == request.controller_seq) {
      // Duplicate of the not-yet-answered request; the pending one wins.
      ++stats_.responses_retransmitted;
      count("svc.responses_retransmitted");
      return;
    }
    pending_request_ = request;
    return;
  }
  // From the past (already superseded) or from the future (a gap the
  // controller protocol cannot produce): count and drop.
  ++stats_.requests_stale;
  count("svc.requests_stale");
}

void SchedulerService::poll(std::uint64_t now_tick, std::size_t budget) {
  now_tick_ = std::max(now_tick_, now_tick);
  expire_leases(now_tick);
  std::size_t applied = 0;
  while (!report_queue_.empty() && applied < budget) {
    const DeviceReport report = report_queue_.front();
    report_queue_.pop_front();
    apply_report(report, now_tick);
    ++applied;
  }
  if (pending_request_.has_value()) answer_request(now_tick);
}

void SchedulerService::apply_report(const DeviceReport& report,
                                    std::uint64_t now_tick) {
  const std::size_t d = static_cast<std::size_t>(report.device_id);
  if (report.report_seq <= last_report_seq_[d]) {
    // Duplicate or out-of-date: the state was already applied (or
    // superseded), but the ack may have been lost — re-ack so the sender
    // completes, and leave the state untouched.
    ++stats_.reports_deduped;
    count("svc.reports_deduped");
    emit(encode(ReportAck{report.device_id, report.report_seq}));
    return;
  }
  users_[d].t_cal_max_s = report.t_cal_max_s;
  users_[d].t_com_s = report.t_com_s;
  last_report_seq_[d] = report.report_seq;
  lease_expiry_tick_[d] = now_tick + options_.lease_ticks;
  if (alive_[d] == 0) {
    alive_[d] = 1;  // revival: the utility index re-inserts it next round
    ++stats_.leases_revived;
    count("svc.leases_revived");
    obs::Tracer* tracer = instruments_.tracer;
    if (tracer != nullptr && tracer->enabled(obs::TraceLevel::kRound)) {
      tracer->emit(obs::TraceLevel::kRound, "svc_lease",
                   {{"tick", now_tick}, {"device", d}, {"kind", "revive"}});
    }
  }
  ++stats_.reports_applied;
  count("svc.reports_applied");
  emit(encode(ReportAck{report.device_id, report.report_seq}));
}

void SchedulerService::expire_leases(std::uint64_t now_tick) {
  obs::Tracer* tracer = instruments_.tracer;
  const bool trace =
      tracer != nullptr && tracer->enabled(obs::TraceLevel::kRound);
  for (std::size_t d = 0; d < alive_.size(); ++d) {
    if (alive_[d] == 0 || lease_expiry_tick_[d] > now_tick) continue;
    alive_[d] = 0;  // parked by the utility index when it next surfaces
    ++stats_.leases_expired;
    count("svc.leases_expired");
    if (trace) {
      tracer->emit(obs::TraceLevel::kRound, "svc_lease",
                   {{"tick", now_tick},
                    {"device", d},
                    {"kind", "expire"},
                    {"expired_at", lease_expiry_tick_[d]}});
    }
  }
}

void SchedulerService::answer_request(std::uint64_t now_tick) {
  const DecisionRequest request = *pending_request_;
  const sched::FleetView fleet{users_, alive_};
  const sched::Decision decision =
      scheduler_.decide(fleet, static_cast<std::size_t>(request.round));

  DecisionResponse response;
  response.controller_seq = request.controller_seq;
  response.round = request.round;
  // Degraded while sheds are unabsorbed or reports are still queued: the
  // decision may not reflect every report the fleet has sent.
  response.degraded = degraded_ || !report_queue_.empty();
  if (report_queue_.empty()) degraded_ = false;
  response.selected = decision.selected;
  response.frequencies_hz = decision.frequencies_hz;

  cached_response_ = encode_frame(encode(response));
  outbox_.push_back(cached_response_);
  last_controller_seq_ = request.controller_seq;
  pending_request_.reset();

  ++stats_.decisions;
  count("svc.decisions");
  if (response.degraded) {
    ++stats_.decisions_degraded;
    count("svc.decisions_degraded");
  }
  obs::Tracer* tracer = instruments_.tracer;
  if (tracer != nullptr && tracer->enabled(obs::TraceLevel::kRound)) {
    tracer->emit(obs::TraceLevel::kRound, "svc_decision",
                 {{"tick", now_tick},
                  {"round", request.round},
                  {"controller_seq", request.controller_seq},
                  {"n_selected", response.selected.size()},
                  {"degraded", response.degraded},
                  {"queue_depth", report_queue_.size()}});
  }
  maybe_autosnapshot();
}

void SchedulerService::maybe_autosnapshot() {
  if (options_.snapshot_every == 0 ||
      stats_.decisions % options_.snapshot_every != 0) {
    return;
  }
  const std::string path =
      expand_snapshot_path(options_.snapshot_path, stats_.decisions);
  write_snapshot(path);
  ++stats_.snapshots_written;
  count("svc.snapshots");
  obs::Tracer* tracer = instruments_.tracer;
  if (tracer != nullptr && tracer->enabled(obs::TraceLevel::kRound)) {
    tracer->emit(obs::TraceLevel::kRound, "svc_snapshot",
                 {{"decisions", stats_.decisions}, {"path", path}});
  }
}

std::vector<std::vector<std::uint8_t>> SchedulerService::take_outbox() {
  return std::exchange(outbox_, {});
}

std::vector<std::uint8_t> SchedulerService::snapshot() const {
  util::ByteWriter payload;
  // Configuration echo — restore() onto a differently-configured service
  // must fail loudly, mirroring the checkpoint's identity fields.
  payload.u64(users_.size());
  payload.f64(options_.fraction);
  payload.f64(options_.eta);
  payload.boolean(options_.enable_dvfs);
  payload.u64(options_.lease_ticks);
  payload.u64(options_.queue_capacity);

  payload.u64(now_tick_);

  // Per-device dynamic state (static params are construction inputs).
  std::vector<double> t_cal(users_.size());
  std::vector<double> t_com(users_.size());
  for (std::size_t i = 0; i < users_.size(); ++i) {
    t_cal[i] = users_[i].t_cal_max_s;
    t_com[i] = users_[i].t_com_s;
  }
  payload.vec_f64(t_cal);
  payload.vec_f64(t_com);
  payload.vec_u8(alive_);
  payload.vec_u64(lease_expiry_tick_);
  payload.vec_u64(last_report_seq_);

  // Strategy frame (name + config echo + counters + utility-index frame),
  // length-prefixed so restore can stage it.
  util::ByteWriter strategy;
  scheduler_.save_state(strategy);
  payload.vec_u8(strategy.data());

  // Controller session (exactly-once dedup) and overload latch.
  payload.u64(last_controller_seq_);
  payload.vec_u8(cached_response_);
  payload.boolean(degraded_);

  // In-flight work: queued reports and the staged request survive a crash.
  payload.u64(report_queue_.size());
  for (const DeviceReport& r : report_queue_) write_report(payload, r);
  payload.boolean(pending_request_.has_value());
  if (pending_request_.has_value()) {
    payload.u64(pending_request_->controller_seq);
    payload.u64(pending_request_->round);
  }

  util::ByteWriter file;
  file.u32(kSnapshotMagic);
  file.u32(kSnapshotVersion);
  file.u64(payload.size());
  file.u64(util::fnv1a64(payload.data()));
  file.raw(payload.data());
  return file.take();
}

void SchedulerService::restore(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kSnapshotHeaderBytes) {
    throw ServiceError("service snapshot is truncated: " +
                       std::to_string(bytes.size()) +
                       " bytes, shorter than the " +
                       std::to_string(kSnapshotHeaderBytes) + "-byte header");
  }
  util::ByteReader header(bytes.subspan(0, kSnapshotHeaderBytes));
  if (header.u32() != kSnapshotMagic) {
    throw ServiceError("not a scheduler-service snapshot: bad magic "
                       "(expected \"HSVS\")");
  }
  const std::uint32_t version = header.u32();
  if (version != kSnapshotVersion) {
    throw ServiceError("service snapshot version " + std::to_string(version) +
                       " is not supported by this build (expected version " +
                       std::to_string(kSnapshotVersion) + ")");
  }
  const std::uint64_t payload_size = header.u64();
  const std::uint64_t checksum = header.u64();
  const std::span<const std::uint8_t> rest = bytes.subspan(kSnapshotHeaderBytes);
  if (payload_size > rest.size()) {
    throw ServiceError("service snapshot is truncated: header declares a " +
                       std::to_string(payload_size) +
                       "-byte payload but only " + std::to_string(rest.size()) +
                       " bytes follow");
  }
  if (payload_size < rest.size()) {
    throw ServiceError("service snapshot has " +
                       std::to_string(rest.size() - payload_size) +
                       " trailing byte(s) after the declared payload");
  }
  if (util::fnv1a64(rest) != checksum) {
    throw ServiceError(
        "service snapshot payload checksum mismatch: the file is corrupted");
  }

  try {
    util::ByteReader payload(rest);

    const std::uint64_t n_devices = payload.u64();
    const double fraction = payload.f64();
    const double eta = payload.f64();
    const bool enable_dvfs = payload.boolean();
    const std::uint64_t lease_ticks = payload.u64();
    const std::uint64_t queue_capacity = payload.u64();
    if (n_devices != users_.size() || fraction != options_.fraction ||
        eta != options_.eta || enable_dvfs != options_.enable_dvfs ||
        lease_ticks != options_.lease_ticks ||
        queue_capacity != options_.queue_capacity) {
      throw ServiceError(
          "service snapshot was taken under a different configuration "
          "(fleet size or options mismatch)");
    }

    const std::uint64_t now_tick = payload.u64();
    std::vector<double> t_cal = payload.vec_f64();
    std::vector<double> t_com = payload.vec_f64();
    std::vector<std::uint8_t> alive = payload.vec_u8();
    std::vector<std::uint64_t> lease_expiry = payload.vec_u64();
    std::vector<std::uint64_t> last_seq = payload.vec_u64();
    if (t_cal.size() != users_.size() || t_com.size() != users_.size() ||
        alive.size() != users_.size() ||
        lease_expiry.size() != users_.size() ||
        last_seq.size() != users_.size()) {
      throw ServiceError(
          "service snapshot per-device state does not match the fleet size");
    }
    for (std::size_t i = 0; i < users_.size(); ++i) {
      if (!valid_delay(t_cal[i]) || !valid_delay(t_com[i])) {
        throw ServiceError("service snapshot holds a non-positive delay for "
                           "device " + std::to_string(i));
      }
      if (alive[i] > 1) {
        throw ServiceError("service snapshot alive mask is not 0/1");
      }
    }

    std::vector<std::uint8_t> strategy_bytes = payload.vec_u8();

    const std::uint64_t last_controller_seq = payload.u64();
    std::vector<std::uint8_t> cached_response = payload.vec_u8();
    const bool degraded = payload.boolean();

    const std::uint64_t queue_size = payload.u64();
    if (queue_size > queue_capacity) {
      throw ServiceError("service snapshot queue (" +
                         std::to_string(queue_size) +
                         " reports) exceeds queue_capacity (" +
                         std::to_string(queue_capacity) + ")");
    }
    std::deque<DeviceReport> queue;
    for (std::uint64_t i = 0; i < queue_size; ++i) {
      const DeviceReport r = read_report(payload);
      if (r.device_id >= users_.size() || !valid_delay(r.t_cal_max_s) ||
          !valid_delay(r.t_com_s) || r.report_seq == 0) {
        throw ServiceError("service snapshot holds an invalid queued report");
      }
      queue.push_back(r);
    }
    std::optional<DecisionRequest> pending;
    if (payload.boolean()) {
      DecisionRequest request;
      request.controller_seq = payload.u64();
      request.round = payload.u64();
      pending = request;
    }
    payload.expect_end("service snapshot payload");

    // Everything parsed and validated.  The strategy restore is itself
    // parse-then-commit, so running it first keeps the whole restore
    // atomic: if it throws, no member has changed yet.
    util::ByteReader strategy(strategy_bytes);
    scheduler_.load_state(strategy);
    strategy.expect_end("service snapshot strategy frame");

    now_tick_ = now_tick;
    for (std::size_t i = 0; i < users_.size(); ++i) {
      users_[i].t_cal_max_s = t_cal[i];
      users_[i].t_com_s = t_com[i];
    }
    alive_ = std::move(alive);
    lease_expiry_tick_ = std::move(lease_expiry);
    last_report_seq_ = std::move(last_seq);
    last_controller_seq_ = last_controller_seq;
    cached_response_ = std::move(cached_response);
    degraded_ = degraded;
    report_queue_ = std::move(queue);
    pending_request_ = pending;
    outbox_.clear();
  } catch (const util::SerialError& error) {
    // The checksum passed, so this is a layout (not corruption) problem.
    throw ServiceError(std::string("service snapshot payload is malformed: ") +
                       error.what());
  }
}

void SchedulerService::write_snapshot(const std::string& path) const {
  try {
    util::write_file_atomic(path, snapshot());
  } catch (const std::runtime_error& error) {
    throw ServiceError(std::string("service snapshot: ") + error.what());
  }
}

void SchedulerService::restore_file(const std::string& path) {
  std::vector<std::uint8_t> bytes;
  try {
    bytes = util::read_file_bytes(path);
  } catch (const std::runtime_error& error) {
    throw ServiceError(std::string("service snapshot: ") + error.what());
  }
  try {
    restore(bytes);
  } catch (const ServiceError& error) {
    throw ServiceError("'" + path + "': " + error.what());
  }
}

}  // namespace helcfl::svc
